// bench_compare: the benchmark regression gate.
//
//   bench_compare <baseline.json> <candidate.json> [--threshold f]
//   bench_compare --self-check <file.json> [--threshold f]
//
// Compares two BENCH_*.json artifacts (bench_util.hpp schemas) metric by
// metric and exits nonzero on a regression. The comparison is structural:
// every numeric leaf of the baseline must exist at the same path in the
// candidate (a vanished metric is a regression — renames must update the
// baseline artifact in the same change). Arrays whose rows all carry a
// string "name" key (the BENCH_blas classes) are matched by name instead
// of index, so a candidate may *add* rows — e.g. new precision twins —
// without tripping the gate, while a vanished row still fails. Leaves
// are classified by key name:
//
//   larger-is-worse   *_ns, *_s (timing medians and totals): candidate
//                     may exceed baseline by at most the per-metric noise
//                     threshold (default 25% — the medians are wall-clock
//                     on shared machines; deterministic *_sim_s columns
//                     use a tight 1e-9 relative tolerance instead)
//   larger-is-better  *speedup*, *gflops*, *hit_rate*, *ratio*: candidate
//                     may fall short of baseline by at most the threshold
//   info-only         counts, sizes, booleans, strings: reported when
//                     different, never gated
//
// The "meta" provenance object (git_sha/generated_utc/hostname) is
// skipped entirely — it differs between any two honest artifacts.
//
// --self-check gates the gate itself: <file> vs itself must pass, and
// <file> vs a copy with every gated metric perturbed past the threshold
// must fail. CI runs this against the committed artifacts so a silently
// broken comparator cannot wave regressions through.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace {

using irrlu::json::Value;

enum class Metric { kLargerWorse, kLargerBetter, kInfo };

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

Metric classify(const std::string& key) {
  if (contains(key, "speedup") || contains(key, "gflops") ||
      contains(key, "hit_rate") || contains(key, "ratio"))
    return Metric::kLargerBetter;
  if (ends_with(key, "_ns") || ends_with(key, "_s"))
    return Metric::kLargerWorse;
  return Metric::kInfo;
}

/// Deterministic simulated-seconds columns: equal between honest runs of
/// the same build, so noise tolerance does not apply.
bool is_deterministic(const std::string& key) {
  return ends_with(key, "sim_s");
}

struct Gate {
  double threshold = 0.25;  ///< relative noise allowance for wall metrics
  int compared = 0;
  int infos = 0;
  std::vector<std::string> regressions;

  void check(const std::string& path, const std::string& key, double base,
             double cand) {
    const Metric m = classify(key);
    if (m == Metric::kInfo) {
      if (base != cand) ++infos;
      return;
    }
    ++compared;
    const double tol = is_deterministic(key) ? 1e-9 : threshold;
    char buf[512];
    if (m == Metric::kLargerWorse) {
      if (cand > base * (1.0 + tol) + 1e-300) {
        std::snprintf(buf, sizeof buf,
                      "%s: %.6g -> %.6g (+%.1f%%, allowed +%.1f%%)",
                      path.c_str(), base, cand, (cand / base - 1.0) * 100,
                      tol * 100);
        regressions.emplace_back(buf);
      }
    } else {
      if (cand < base * (1.0 - tol) - 1e-300) {
        std::snprintf(buf, sizeof buf,
                      "%s: %.6g -> %.6g (-%.1f%%, allowed -%.1f%%)",
                      path.c_str(), base, cand, (1.0 - cand / base) * 100,
                      tol * 100);
        regressions.emplace_back(buf);
      }
    }
  }
};

/// Walks the baseline tree; every numeric leaf must exist in the
/// candidate at the same path and pass its gate. Extra candidate keys
/// are fine (new metrics need no baseline yet).
void compare(const Value& base, const Value& cand, const std::string& path,
             const std::string& key, Gate& g) {
  if (base.type != cand.type) {
    g.regressions.push_back(path + ": type changed");
    return;
  }
  switch (base.type) {
    case Value::Type::kObject:
      for (const auto& [k, v] : base.fields) {
        if (k == "meta") continue;  // provenance: differs by construction
        const Value* cv = cand.find(k);
        if (cv == nullptr) {
          g.regressions.push_back(path + "/" + k + ": missing in candidate");
          continue;
        }
        compare(v, *cv, path + "/" + k, k, g);
      }
      break;
    case Value::Type::kArray: {
      // Arrays of rows with a stable string "name" key match by name:
      // every baseline row must still exist (a vanished row is a
      // regression, same as a vanished metric), while rows new to the
      // candidate need no baseline yet — exactly the object-key rule.
      const auto named = [](const Value& v) {
        for (const Value& item : v.items) {
          if (item.type != Value::Type::kObject) return false;
          const Value* n = item.find("name");
          if (n == nullptr || n->type != Value::Type::kString) return false;
        }
        return !v.items.empty();
      };
      if (named(base) && named(cand)) {
        for (const Value& row : base.items) {
          const std::string name = row.string_or("name", "");
          const Value* match = nullptr;
          for (const Value& c : cand.items)
            if (c.string_or("name", "") == name) {
              match = &c;
              break;
            }
          if (match == nullptr) {
            g.regressions.push_back(path + "[name=" + name +
                                    "]: missing in candidate");
            continue;
          }
          compare(row, *match, path + "[name=" + name + "]", key, g);
        }
        break;
      }
      if (base.items.size() != cand.items.size()) {
        g.regressions.push_back(path + ": array length " +
                                std::to_string(base.items.size()) + " -> " +
                                std::to_string(cand.items.size()));
        return;
      }
      for (std::size_t i = 0; i < base.items.size(); ++i)
        compare(base.items[i], cand.items[i],
                path + "[" + std::to_string(i) + "]", key, g);
      break;
    }
    case Value::Type::kNumber:
      g.check(path, key, base.number, cand.number);
      break;
    default:
      break;  // strings/bools/null: schema markers, not metrics
  }
}

int run_compare(const Value& base, const Value& cand, double threshold,
                bool quiet) {
  Gate g;
  g.threshold = threshold;
  const std::string bs = base.string_or("schema", "");
  const std::string cs = cand.string_or("schema", "");
  if (bs.empty() || bs != cs) {
    if (!quiet)
      std::fprintf(stderr, "bench_compare: schema mismatch: '%s' vs '%s'\n",
                   bs.c_str(), cs.c_str());
    return 2;
  }
  compare(base, cand, "", "", g);
  if (!g.regressions.empty()) {
    if (!quiet) {
      std::fprintf(stderr, "bench_compare: %zu regression(s) [%s]:\n",
                   g.regressions.size(), bs.c_str());
      for (const std::string& r : g.regressions)
        std::fprintf(stderr, "  %s\n", r.c_str());
    }
    return 1;
  }
  if (!quiet)
    std::printf("bench_compare: OK [%s] — %d gated metrics within "
                "threshold, %d info-only differences\n",
                bs.c_str(), g.compared, g.infos);
  return 0;
}

/// Multiplies every gated metric past its threshold, in place.
void perturb(Value& v, const std::string& key, double threshold) {
  switch (v.type) {
    case Value::Type::kObject:
      for (auto& [k, child] : v.fields) {
        if (k == "meta") continue;
        perturb(child, k, threshold);
      }
      break;
    case Value::Type::kArray:
      for (Value& item : v.items) perturb(item, key, threshold);
      break;
    case Value::Type::kNumber: {
      const Metric m = classify(key);
      const double tol =
          is_deterministic(key) ? 1e-9 : threshold;
      if (m == Metric::kLargerWorse)
        v.number = v.number * (1.0 + 2 * tol) + 1e-12;
      else if (m == Metric::kLargerBetter)
        v.number = v.number * (1.0 - std::min(2 * tol, 0.999)) - 1e-12;
      break;
    }
    default:
      break;
  }
}

int self_check(const Value& doc, double threshold) {
  if (run_compare(doc, doc, threshold, /*quiet=*/true) != 0) {
    std::fprintf(stderr,
                 "bench_compare: self-check FAILED — identical artifacts "
                 "did not pass\n");
    return 1;
  }
  Value worse = doc;
  perturb(worse, "", threshold);
  if (run_compare(doc, worse, threshold, /*quiet=*/true) == 0) {
    std::fprintf(stderr,
                 "bench_compare: self-check FAILED — perturbed artifact "
                 "was not flagged\n");
    return 1;
  }
  std::printf("bench_compare: self-check OK [%s]\n",
              doc.string_or("schema", "?").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    double threshold = 0.25;
    std::vector<std::string> files;
    bool self = false;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--self-check") {
        self = true;
      } else if (arg == "--threshold") {
        IRRLU_CHECK_MSG(i + 1 < argc, "--threshold needs a value");
        threshold = std::atof(argv[++i]);
        IRRLU_CHECK_MSG(threshold > 0, "--threshold must be > 0");
      } else {
        files.push_back(arg);
      }
    }
    if (self) {
      IRRLU_CHECK_MSG(files.size() == 1,
                      "usage: bench_compare --self-check <file.json>");
      return self_check(irrlu::json::parse_file(files[0]), threshold);
    }
    IRRLU_CHECK_MSG(
        files.size() == 2,
        "usage: bench_compare <baseline.json> <candidate.json> "
        "[--threshold f] | bench_compare --self-check <file.json>");
    return run_compare(irrlu::json::parse_file(files[0]),
                       irrlu::json::parse_file(files[1]), threshold,
                       /*quiet=*/false);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_compare: %s\n", e.what());
    return 2;
  }
}
