// Doc-consistency check for benchmark artifacts: every `BENCH_*.json`
// file name mentioned anywhere in the repo documentation or the CI
// workflow must exist at the repository root and parse as a JSON object
// carrying a "schema" field and a "meta" provenance object
// (git_sha/generated_utc/hostname, see bench_util.hpp). PR 8 grew out of exactly this failure mode:
// BENCH_service.json was referenced by README/CHANGES/EXPERIMENTS and
// uploaded by CI, but the artifact itself was never committed — nothing
// noticed until a reader followed the link. Registered as a ctest (see
// tools/CMakeLists.txt) with the repo root as working directory, so the
// drift is caught the moment a doc gains a reference or an artifact is
// dropped. Exits nonzero listing every violation.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace {

// Files scanned for artifact references. Relative to the working
// directory, which the ctest registration pins to the repo root.
const char* const kDocs[] = {
    "README.md",    "EXPERIMENTS.md", "DESIGN.md",
    "ROADMAP.md",   "CHANGES.md",     ".github/workflows/ci.yml",
};

bool token_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') ||
         (c >= '0' && c <= '9') || c == '_';
}

/// Every maximal token of the form BENCH_<word>.json in `text`.
void collect_refs(const std::string& text, std::set<std::string>& out) {
  const std::string prefix = "BENCH_";
  for (std::size_t pos = text.find(prefix); pos != std::string::npos;
       pos = text.find(prefix, pos + 1)) {
    // Reject a partial match inside a longer identifier (e.g. FOO_BENCH_).
    if (pos > 0 && token_char(text[pos - 1])) continue;
    std::size_t end = pos + prefix.size();
    while (end < text.size() && token_char(text[end])) ++end;
    if (text.compare(end, 5, ".json") == 0)
      out.insert(text.substr(pos, end + 5 - pos));
  }
}

}  // namespace

int main() {
  std::set<std::string> refs;
  int failures = 0;
  for (const char* doc : kDocs) {
    std::ifstream in(doc);
    if (!in) {
      std::fprintf(stderr, "FAIL: cannot open %s (run from the repo root)\n",
                   doc);
      ++failures;
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    std::set<std::string> here;
    collect_refs(ss.str(), here);
    for (const auto& r : here) std::printf("%-24s referenced by %s\n",
                                           r.c_str(), doc);
    refs.insert(here.begin(), here.end());
  }

  for (const auto& name : refs) {
    // Ignore explicit non-root paths (e.g. build/BENCH_foo.quick.json
    // would not match the token grammar anyway, but be safe).
    try {
      const irrlu::json::Value v = irrlu::json::parse_file(name);
      if (!v.is_object() || v.find("schema") == nullptr) {
        std::fprintf(stderr,
                     "FAIL: %s parses but has no top-level \"schema\"\n",
                     name.c_str());
        ++failures;
      } else {
        // Provenance stamp (bench_util.hpp write_bench_meta): every
        // committed artifact must say which commit/machine produced it.
        const irrlu::json::Value* meta = v.find("meta");
        if (meta == nullptr || !meta->is_object() ||
            meta->find("git_sha") == nullptr ||
            meta->find("generated_utc") == nullptr ||
            meta->find("hostname") == nullptr) {
          std::fprintf(stderr,
                       "FAIL: %s has no \"meta\" provenance object "
                       "(git_sha/generated_utc/hostname)\n",
                       name.c_str());
          ++failures;
        }
      }
    } catch (const irrlu::Error& e) {
      std::fprintf(stderr, "FAIL: %s: %s\n", name.c_str(), e.what());
      ++failures;
    }
  }

  if (failures > 0) {
    std::fprintf(stderr, "%d bench-doc violation(s)\n", failures);
    return 1;
  }
  std::printf("ok: %zu artifact(s) referenced, all present and parse\n",
              refs.size());
  return 0;
}
