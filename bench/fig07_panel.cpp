// Figure 7: fused shared-memory panel (irrGETF2) vs the column-wise
// four-kernel path, for panels of fixed width and growing heights, on both
// GPU models. The fused kernel requires the estimated largest panel to fit
// in shared memory, so on the MI100 (64 KB LDS) it becomes unavailable at
// much smaller heights than on the A100 (164 KB) — the architectural
// effect §IV-E discusses.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"

using namespace irrlu;
using namespace irrlu::batch;
using namespace irrlu::bench;

namespace {

double run_panel(gpusim::Device& dev, const std::vector<int>& heights,
                 int width, bool fused, double* out_flops) {
  const int batch = static_cast<int>(heights.size());
  std::vector<int> cols(heights.size(), width);
  VBatch<double> A(dev, heights, cols);
  Rng rng(3);
  A.fill_uniform(rng);
  PivotBatch piv(dev, heights, cols);
  const int hmax = *std::max_element(heights.begin(), heights.end());

  *out_flops = 0;
  for (int i = 0; i < batch; ++i)
    *out_flops += la::getrf_flops(heights[static_cast<std::size_t>(i)],
                                  std::min(width, heights[i]));

  dev.reset_timeline();
  if (fused) {
    if (irr_getf2_smem_bytes<double>(hmax, width) >
        dev.model().shared_mem_per_block)
      return -1.0;  // does not fit: unavailable on this device
    irr_getf2_fused<double>(dev, dev.stream(), hmax, width, A.ptrs(),
                            A.lda(), 0, 0, A.m_vec(), A.n_vec(), piv.ptrs(),
                            piv.info(), batch);
  } else {
    irr_panel_columnwise<double>(dev, dev.stream(), hmax, width, A.ptrs(),
                                 A.lda(), 0, 0, A.m_vec(), A.n_vec(),
                                 piv.ptrs(), piv.info(), batch);
  }
  return dev.synchronize_all();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int batch = args.get_int("batch", 500);
  const int width = args.get_int("width", 32);

  std::printf("Figure 7 reproduction: fused vs column-wise panel\n");
  std::printf("batch=%d panels, width=%d, heights U[1,H]\n\n", batch, width);

  TextTable table({"H", "A100 fused GF/s", "A100 colwise GF/s",
                   "MI100 fused GF/s", "MI100 colwise GF/s"});
  for (int h : {32, 64, 128, 256, 512, 1024, 2048, 4096}) {
    const auto heights = paper_batch_sizes(batch, 1, h, 77 + h);
    std::vector<std::string> row;
    row.push_back(std::to_string(h));
    for (const char* devname : {"a100", "mi100"}) {
      gpusim::Device dev(model_by_name(devname));
      for (bool fused : {true, false}) {
        double flops = 0;
        const double t = run_panel(dev, heights, width, fused, &flops);
        row.push_back(t < 0 ? "n/a (smem)"
                            : TextTable::fmt(gflops(flops, t), 1));
      }
    }
    table.add_row(row[0], row[1], row[2], row[3], row[4]);
  }
  table.print();
  std::printf(
      "\npaper: fused panel wins for short panels (memory-traffic saving);"
      "\nthe small-LDS device loses the fused path at smaller heights.\n");
  return 0;
}
