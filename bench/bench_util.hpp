// Shared helpers for the paper-reproduction benchmark drivers: device
// construction, the paper's workload generators, and FLOP-rate reporting.
//
// Reported times are *simulated device seconds* from the gpusim cost model
// (see DESIGN.md §1: the paper's GPUs are simulated); every kernel still
// executes its numerics for real, so the results double as correctness
// runs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "lapack/flops.hpp"
#include "trace/report.hpp"
#include "trace/session.hpp"

namespace irrlu::bench {

inline gpusim::DeviceModel model_by_name(const std::string& name) {
  if (name == "a100") return gpusim::DeviceModel::a100();
  if (name == "mi100") return gpusim::DeviceModel::mi100();
  if (name == "cpu") return gpusim::DeviceModel::xeon6140x2();
  IRRLU_CHECK_MSG(false, "unknown device '" << name << "'");
  return {};
}

/// The paper's Fig. 10/11 batch: `count` square matrices with sizes
/// uniformly sampled in [lo, hi].
inline std::vector<int> paper_batch_sizes(int count, int lo, int hi,
                                          std::uint64_t seed) {
  Rng rng(seed);
  return rng.uniform_sizes(count, lo, hi);
}

/// Aggregate LU operation count over a batch (all low-order terms kept,
/// §V-A).
inline double batch_getrf_flops(const std::vector<int>& n) {
  double f = 0;
  for (int v : n) f += la::getrf_flops(v, v);
  return f;
}

/// Aggregate TRSM count: sum n_i * m_i^2 (Fig. 6 caption).
inline double batch_trsm_flops(const std::vector<int>& m,
                               const std::vector<int>& n) {
  double f = 0;
  for (std::size_t i = 0; i < m.size(); ++i) f += la::trsm_flops(m[i], n[i]);
  return f;
}

inline double gflops(double flops, double seconds) {
  return seconds > 0 ? flops / seconds / 1e9 : 0.0;
}

/// The commit the benchmark binary ran against: GITHUB_SHA when CI set
/// it, otherwise `git rev-parse HEAD`, otherwise "unknown" (tarball
/// builds). Never throws.
inline std::string bench_git_sha() {
  if (const char* sha = std::getenv("GITHUB_SHA"); sha != nullptr && *sha)
    return sha;
#if defined(__unix__) || defined(__APPLE__)
  if (FILE* p = popen("git rev-parse HEAD 2>/dev/null", "r")) {
    char buf[64] = {};
    const std::size_t got = fread(buf, 1, sizeof buf - 1, p);
    const int rc = pclose(p);
    buf[got] = '\0';
    if (char* nl = std::strchr(buf, '\n')) *nl = '\0';
    if (rc == 0 && std::strlen(buf) >= 7) return buf;
  }
#endif
  return "unknown";
}

/// Emits the "meta" provenance object every BENCH_*.json carries (see the
/// schema docs below): the git commit, the UTC generation timestamp, and
/// the hostname. Call between kv("schema", ...) and the payload keys.
inline void write_bench_meta(json::Writer& w) {
  w.key("meta");
  w.begin_object(/*compact=*/true);
  w.kv("git_sha", bench_git_sha());
  char stamp[32] = "unknown";
  const std::time_t now = std::time(nullptr);
  if (std::tm tm{}; gmtime_r(&now, &tm) != nullptr)
    std::strftime(stamp, sizeof stamp, "%Y-%m-%dT%H:%M:%SZ", &tm);
  w.kv("generated_utc", stamp);
  char host[256] = "unknown";
#if defined(__unix__) || defined(__APPLE__)
  if (gethostname(host, sizeof host - 1) != 0)
    std::strcpy(host, "unknown");
  host[sizeof host - 1] = '\0';
#endif
  w.kv("hostname", host);
  w.end_object();
}

/// Standard tracing hook for the driver binaries: `--trace path.json`
/// (or the IRRLU_TRACE environment variable) attaches a recorder to `dev`
/// and writes the Chrome trace plus the "irrlu-trace-summary-v2" JSON on
/// destruction. With neither set the session is disabled and the device
/// runs the untraced fast path.
inline std::unique_ptr<trace::TraceSession> make_trace_session(
    gpusim::Device& dev, const CliArgs& args) {
  return std::make_unique<trace::TraceSession>(dev,
                                               args.get_string("trace", ""));
}

/// Variant for drivers that construct several Devices in one run (one per
/// memory mode, per device model, per sweep point): inserts ".<suffix>"
/// before the ".json" extension of the resolved trace path so each
/// configuration writes its own Chrome trace + summary pair. Resolution
/// order matches the single-device overload: `--trace`, then IRRLU_TRACE,
/// else a disabled session.
inline std::unique_ptr<trace::TraceSession> make_trace_session(
    gpusim::Device& dev, const CliArgs& args, const std::string& suffix) {
  std::string path = args.get_string("trace", "");
  if (path.empty()) {
    const char* env = std::getenv("IRRLU_TRACE");
    if (env != nullptr) path = env;
  }
  if (!path.empty() && !suffix.empty()) {
    const std::string ext = ".json";
    if (path.size() > ext.size() &&
        path.compare(path.size() - ext.size(), ext.size(), ext) == 0) {
      path.insert(path.size() - ext.size(), "." + suffix);
    } else {
      path += "." + suffix;
    }
  }
  return std::make_unique<trace::TraceSession>(dev, path);
}

// ---------------------------------------------------------------------------
// Trace summary schema ("irrlu-trace-summary-v3", written by
// trace::write_summary_json next to every Chrome trace; read back with
// trace::read_summary_json, which also accepts v1/v2 files). Top level:
//
//   schema            "irrlu-trace-summary-v3"
//   device            DeviceModel name the run simulated
//   peak_gflops       roofline compute peak (num_sms * peak_flops_per_sm *
//                     compute_efficiency)
//   peak_gbs          roofline memory bandwidth
//   dropped_launches  launches past the recorder cap (0 for healthy runs)
//   rows              one entry per (scope x kernel) pair:
//
//   scope             full scope path at enqueue ("factor/level=3/panel")
//   kernel            LaunchConfig name
//   launches, blocks  counts
//   flops, bytes      work recorded by the kernel bodies
//   sim_seconds       sum of per-launch device intervals (end - start);
//                     overlapping launches double-count by design
//   excl_seconds      exclusive attribution; per-kernel sums across scopes
//                     reproduce Device::profile() exactly
//   wall_seconds      real host seconds executing the kernel bodies
//   gflops, gbs       flops/bytes over sim_seconds
//
// Rows are keyed by (scope, kernel), so per-phase numbers compare PR over
// PR as long as the scope labels stay stable.
//
// v2 adds an optional "memory" object (present when the run recorded any
// device allocations; see trace/memory.hpp, read back with
// trace::read_memory_summary):
//
//   peak_bytes        high-water device bytes over the traced run
//   current_bytes     bytes still live at write time (0 after teardown)
//   events            allocation/free events recorded
//   dropped_events    events past the recorder cap (aggregate stats stay
//                     exact even when > 0)
//   tags              one entry per allocation tag, sorted by peak_bytes
//                     descending: {tag, allocs, frees, current_bytes,
//                     peak_bytes, lifetime_bytes}
//
// v3 adds two more optional objects (set IRRLU_TRACE_ANALYSIS=0 to
// suppress the first; both are read back with present=false on absence):
//
//   analysis          critical-path / utilization / what-if results from
//                     trace::analyze_trace (trace/analysis.hpp; read back
//                     with trace::read_analysis_summary). Present when the
//                     run recorded launches. Keys: valid, caveat?,
//                     makespan_s, critical_path_s, path_nodes,
//                     kernels[] and scopes[] (top-10 on-path contributors:
//                     {name, launches, seconds, run_s, stall_s, slack_s}),
//                     streams[] ({stream, launches, busy_s, idle_s,
//                     busy_fraction, gaps, largest_gap_s, waits_on[]}),
//                     what_if[] ({kind, target, k, projected_s, speedup,
//                     bound})
//   histograms        the Tracer's latency-histogram registry
//                     (trace/histogram.hpp; read back with
//                     trace::read_histograms_summary). Present when any
//                     phase observed a latency. One key per metric
//                     ("service.factor_s", "solve.refine_s", ...):
//                     {count, sum, min, max, p50, p90, p99, underflow?,
//                     buckets[] ({le, count}, log-spaced, 8 per octave)}
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// BENCH_blas.json schema (written by bench/bench_blas_core, schema id
// "irrlu-bench-blas-v1"): host wall-clock perf trajectory of the packed
// micro-kernel engine vs the retained naive reference (la::ref). Top level:
//
//   {
//     "schema":  "irrlu-bench-blas-v1",
//     "meta":    { provenance stamp, see below },
//     "unit":    "ns",
//     "classes": [ <class>, ... ]
//   }
//
// Every BENCH_*.json carries the same "meta" object (write_bench_meta):
//
//   git_sha          commit of the producing build (GITHUB_SHA in CI,
//                    `git rev-parse HEAD` locally, "unknown" otherwise)
//   generated_utc    ISO-8601 UTC generation time
//   hostname         machine that produced the numbers (wall-clock columns
//                    are machine-dependent; compare only same-host runs)
//
// tools/bench_compare ignores "meta" when gating (timestamps and hosts
// differ between baseline and candidate by construction).
//
// Each <class> is one shape class from the Figure-13-style front-size
// distribution (leaf / mid / sep / root representative (s, u) pairs mapped
// onto the GEMM Schur update u x u x s and the TRSM panel solves):
//
//   name             "gemm_nn_mid", "trsm_ll_root", ... (stable key)
//   op               "gemm" | "trsm" | "getf2"
//   transa, transb   "N" | "T"       (gemm; "N"/"N" placeholders for trsm)
//   side, uplo       "L"/"R", "L"/"U" (trsm; placeholders for gemm)
//   m, n, k          problem extents (k is 0 for trsm/getf2)
//   flops            operation count for one call (la::*_flops)
//   engine_median_ns median wall-clock ns per call through la::gemm/la::trsm
//   naive_median_ns  same through la::ref::gemm/la::ref::trsm (the pre-
//                    engine algorithms, compiled with project-default flags)
//   engine_gflops, naive_gflops    flops / median_ns
//   speedup          naive_median_ns / engine_median_ns
//   layout           "strided" | "interleaved"
//   batch            lanes per call (1 for the strided single-call rows)
//   prec             "f64" | "f32" — element type of both sides of the
//                    row. The f32 twin rows (DESIGN.md §14) re-run the
//                    interleaved leaf classes in single precision; the
//                    ilv-ns ratio f64-row / f32-row is the throughput
//                    win the FP32 multifrontal levels inherit
//
// The interleaved_* rows (layout "interleaved", DESIGN.md §12) time one
// whole batch of `batch` same-shape leaf-class matrices per call: the
// contender ("engine") is the dispatch-cached SoA launch (irr_*_ilv, warm
// KernelCache), the baseline ("naive") is the strided engine batch path
// (irr_gemm/irr_trsm/irr_getrf) on the same simulated device — i.e. what
// the multifrontal leaf levels would otherwise run. The medians cover the
// batch, so ns and gflops compare directly row-to-row; speedup is the SoA
// win over the strided layout at that shape. getf2 rows carry the batched
// boosted factorization of m x n panels.
//
// Medians are taken over a work-scaled, odd repetition count after a
// wall-time-bounded warm-up (a few ms of sustained work, so microsecond-
// scale bodies are timed at steady-state frequency rather than mid-ramp).
// Compare engine_median_ns per class across PRs (the rows are stable);
// speedup tracks the engine against the frozen pre-PR baseline.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// BENCH_factor.json schema (written by bench/bench_factor, schema id
// "irrlu-bench-factor-v1"): end-to-end host wall-clock of the sparse solver
// pipeline over a family of Maxwell torus systems, with the device memory
// pool on vs off. Top level:
//
//   {
//     "schema":  "irrlu-bench-factor-v1",
//     "device":  DeviceModel name,
//     "repeats": refactor repetitions per configuration,
//     "points":  [ <point>, ... ]
//   }
//
// Each <point> is one torus resolution:
//
//   ntheta, ncross    mesh parameters (torus(ntheta, ncross, ncross))
//   n, nnz            system dimension and nonzero count
//   configs           two entries, pool on first:
//     pool                    true | false
//     analyze_wall_s          phase-1 host seconds (ordering + symbolic)
//     factor_wall_s           first numeric factorization, host seconds
//     refactor_wall_median_s  median over `repeats` same-pattern refactors
//                             (the sequence-of-systems scenario the pool
//                             accelerates; every allocation recycles here)
//     solve_wall_s            one solve with refinement, host seconds
//     factor_sim_s            simulated device seconds — bitwise equal
//                             between the two configs by construction
//     launches, allocs        device launch / allocation event counts
//                             (also bitwise equal pool on/off)
//     host_allocs             actual host mallocs behind those events;
//                             the pool makes this strictly smaller
//     pool_hits, pool_misses, pool_bytes_served, pool_hit_rate
//                             MemPool::Stats (zero when pool is false)
//     peak_bytes              device high-water mark (equal on/off)
//     residual                normwise residual of the final solve
//   refactor_speedup  pool-off / pool-on refactor medians (wall clock,
//                     machine-dependent — report, do not gate on it)
//   host_alloc_ratio  pool-on / pool-off host mallocs (deterministic)
//   interleaved       SoA leaf-routing A/B on the same point (pool on both
//                     sides; DESIGN.md §12):
//     configs                  two entries, routing on first:
//       enabled                    true | false
//       factor_wall_s              first numeric factorization, host s
//       refactor_wall_median_s     median same-pattern refactor, host s
//       factor_sim_s               simulated device seconds
//       launches                   device launch count
//     refactor_speedup         routing-off / routing-on refactor medians
//                              (wall clock — report, do not gate)
//     sim_speedup              routing-off / routing-on factor_sim_s
//     refactor_dispatch_hits / _misses / _plan_hits
//                              KernelCache traffic summed over the
//                              routing-on refactor loop
//     refactor_dispatch_hit_rate   (hits + plan_hits) / total over that
//                              loop; 1.0 when the recorded DispatchPlan
//                              replays cleanly
//     factor_bits_identical    routing-on factor bytes == routing-off
//   precision         FP32-vs-FP64 LU-IR A/B on the same point
//                     (DESIGN.md §14; fresh solver per config, pool on):
//     configs                  two entries, f32 first:
//       policy                     "f32" | "f64"
//       factor_wall_s              first numeric factorization, host s
//       factor_sim_s               simulated device seconds
//       fp32_fronts                fronts factored in single precision
//       solve_status               "converged" | "degraded" | "failed"
//       refine_steps, berr         refinement sweeps and final
//                                  componentwise backward error
//       refactored_fp64            the solve escalated to the FP64
//                                  fallback refactor
//     sim_speedup              f64 / f32 factor_sim_s (deterministic)
//
// Top level additionally carries (non-quick runs):
//
//   precision_anchor_points   [ { ntheta, ncross, n, precision }, ... ] —
//                             two large meshes ({48,12}, {64,16}) run for
//                             the precision A/B only (no pool/interleaved
//                             columns; they would dominate the runtime)
//   precision_family_sim_speedup
//                             work-weighted family aggregate: sum of f64
//                             factor_sim_s over points + anchors divided
//                             by the f32 sum; the driver exits nonzero
//                             below 1.5 on the full family, and whenever
//                             an FP32-path solve fails to converge on a
//                             point where pure FP64 converges without
//                             fallback
//
// The torus family mixes fat 3D points (ntheta x ncross x ncross with
// ncross >= 6), whose fronts exceed the routable class sizes — the
// interleaved columns are neutral there and the dispatch counters are
// zero — with thin-tube points (ncross == 2) whose assembly trees consist
// entirely of small fronts, the paper's deep-level regime where the SoA
// routing has material coverage.
//
// The driver itself exits nonzero when any deterministic invariant fails
// (sim time / launches / allocs / peak differ between pool configs, the
// pool does not reduce host_allocs, the interleaved factor bits differ
// from strided, or the family-wide refactor dispatch hit rate falls below
// 0.9); ctest runs it as bench_factor_smoke.
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// BENCH_service.json schema (written by bench/bench_service, schema id
// "irrlu-bench-service-v1"): the solver-service layer — interleaved
// many-RHS solve vs sequential solves, and a replay stream through the
// pattern-keyed symbolic/factor cache. Top level:
//
//   {
//     "schema":  "irrlu-bench-service-v1",
//     "device":  DeviceModel name,
//     "n":       dimension of the many-RHS Maxwell system,
//     "manyrhs": [ <width>, ... ],
//     "replay":  { ... }
//   }
//
// Each <width> compares one batch size on one shared factorization:
//
//   nrhs                         right-hand sides in the batch
//   seq_sim_s, batched_sim_s     simulated device seconds of nrhs
//                                sequential solve_report() calls vs one
//                                solve_report_many() (deterministic)
//   speedup                      seq_sim_s / batched_sim_s; asserted
//                                >= 2 at nrhs >= 64
//   seq_wall_s, batched_wall_s   host wall clock (report only)
//   seq_launches, batched_launches
//                                device launches per phase: per-RHS-per-
//                                level vs per-level
//   statuses_match               per-request SolveStatus identical across
//                                the two paths (asserted)
//   max_berr                     worst componentwise backward error of the
//                                interleaved path
//
// "replay" summarizes the request stream through SolverService (three
// tenants, three sparsity patterns, values perturbed between same-pattern
// requests, flush window 8):
//
//   requests, patterns, flushes  stream shape
//   analyze_runs                 symbolic analyses executed — asserted
//                                == patterns (each analyzed exactly once)
//   symbolic_hits, hit_rate      requests that skipped analyze();
//                                hit_rate asserted >= 0.8
//   factors, refactors, factor_reuses
//                                fresh / same-pattern-new-values /
//                                same-values factorization outcomes
//   batches, batched_rhs         interleaved sweeps issued and the RHS
//                                they carried
//   evictions, rejected          cache evictions, admission rejections
//   factor_bits_identical        cached-refactor factor store bitwise
//                                equal to an uncached twin (asserted; the
//                                replay disables MC64, whose scaling is
//                                values-dependent by design)
//   wall_s                       host wall clock of all flushes (report
//                                only)
//
// The driver exits nonzero when any asserted invariant fails; ctest runs
// it as bench_service_smoke.
// ---------------------------------------------------------------------------

}  // namespace irrlu::bench
