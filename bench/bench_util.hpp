// Shared helpers for the paper-reproduction benchmark drivers: device
// construction, the paper's workload generators, and FLOP-rate reporting.
//
// Reported times are *simulated device seconds* from the gpusim cost model
// (see DESIGN.md §1: the paper's GPUs are simulated); every kernel still
// executes its numerics for real, so the results double as correctness
// runs.
#pragma once

#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "gpusim/device.hpp"
#include "lapack/flops.hpp"

namespace irrlu::bench {

inline gpusim::DeviceModel model_by_name(const std::string& name) {
  if (name == "a100") return gpusim::DeviceModel::a100();
  if (name == "mi100") return gpusim::DeviceModel::mi100();
  if (name == "cpu") return gpusim::DeviceModel::xeon6140x2();
  IRRLU_CHECK_MSG(false, "unknown device '" << name << "'");
  return {};
}

/// The paper's Fig. 10/11 batch: `count` square matrices with sizes
/// uniformly sampled in [lo, hi].
inline std::vector<int> paper_batch_sizes(int count, int lo, int hi,
                                          std::uint64_t seed) {
  Rng rng(seed);
  return rng.uniform_sizes(count, lo, hi);
}

/// Aggregate LU operation count over a batch (all low-order terms kept,
/// §V-A).
inline double batch_getrf_flops(const std::vector<int>& n) {
  double f = 0;
  for (int v : n) f += la::getrf_flops(v, v);
  return f;
}

/// Aggregate TRSM count: sum n_i * m_i^2 (Fig. 6 caption).
inline double batch_trsm_flops(const std::vector<int>& m,
                               const std::vector<int>& n) {
  double f = 0;
  for (std::size_t i = 0; i < m.size(); ++i) f += la::trsm_flops(m[i], n[i]);
  return f;
}

inline double gflops(double flops, double seconds) {
  return seconds > 0 ? flops / seconds / 1e9 : 0.0;
}

}  // namespace irrlu::bench
