// Figure 11: a small number of relatively large matrices — the workload
// near the root of the assembly tree. The stream count of the per-matrix
// baseline is tuned per point (as in the paper). Expect the streamed
// vendor-style solver to close the gap and eventually overtake irrLU-GPU:
// a design dedicated to batches of small matrices loses to per-matrix
// kernels once single matrices can fill the device.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "refbatch/streamed_solver.hpp"

using namespace irrlu;
using namespace irrlu::batch;
using namespace irrlu::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int batch = args.get_int("batch", 4);
  const bool full = args.get_bool("full");
  const std::string device = args.get_string("device", "a100");

  std::printf(
      "Figure 11 reproduction: %d large matrices, sizes U[N/2, N], %s\n\n",
      batch, model_by_name(device).name.c_str());

  std::vector<int> points = {256, 512, 1024, 2048};
  if (full) points.push_back(4096);

  TextTable table({"N", "irrLU GF/s", "streamed GF/s", "best #streams",
                   "streamed/irrLU"});
  for (int n : points) {
    Rng rng(555 + n);
    std::vector<int> sizes(static_cast<std::size_t>(batch));
    for (auto& v : sizes) v = rng.uniform_int(n / 2, n);
    const double flops = batch_getrf_flops(sizes);

    gpusim::Device dev(model_by_name(device));
    double t_irr;
    {
      VBatch<double> A(dev, sizes);
      A.fill_uniform(rng);
      PivotBatch piv(dev, sizes, sizes);
      dev.reset_timeline();
      irr_getrf<double>(dev, dev.stream(), n, n, A.ptrs(), A.lda(), 0, 0,
                        A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), batch);
      t_irr = dev.synchronize_all();
    }

    // Tune the stream count empirically, as the paper does per test point.
    double t_best = 0;
    int s_best = 0;
    for (int s : {1, 2, 4, 8, 16}) {
      if (s > batch) break;
      VBatch<double> A(dev, sizes);
      A.fill_uniform(rng);
      PivotBatch piv(dev, sizes, sizes);
      dev.reset_timeline();
      refbatch::StreamedOptions so;
      so.num_streams = s;
      refbatch::streamed_getrf<double>(dev, sizes, sizes, A.ptrs(), A.lda(),
                                       piv.ptrs(), piv.info(), so);
      const double t = dev.synchronize_all();
      if (s_best == 0 || t < t_best) {
        t_best = t;
        s_best = s;
      }
    }

    table.add_row(n, TextTable::fmt(gflops(flops, t_irr), 1),
                  TextTable::fmt(gflops(flops, t_best), 1), s_best,
                  TextTable::fmt(t_irr / t_best, 2));
  }
  table.print();
  std::printf(
      "\npaper: the gap narrows with size and flips in favor of the"
      "\nstreamed per-matrix solver for the largest matrices.\n");
  return 0;
}
