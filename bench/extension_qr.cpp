// Extension benchmark (paper §VI future work, implemented here): the
// irregular-batch QR (irr_geqrf) across size sweeps and devices, with the
// LU rates alongside for context — QR does ~2x the flops of LU on the same
// matrix and should land in the same performance regime if the interface +
// DCWI design carries over as the paper predicts.
#include <cstdio>

#include "bench_util.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/qr.hpp"

using namespace irrlu;
using namespace irrlu::batch;
using namespace irrlu::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int batch = args.get_int("batch", 300);

  std::printf("irrQR extension: %d matrices, sizes U[1,N]\n\n", batch);
  TextTable table({"N", "QR A100 GF/s", "QR MI100 GF/s", "LU A100 GF/s",
                   "QR/LU flops-rate ratio"});
  for (int n : {32, 64, 128, 256}) {
    const auto sizes = paper_batch_sizes(batch, 1, n, 2000 + n);
    double qr_flops = 0;
    for (int v : sizes) qr_flops += la::geqrf_flops(v, v);
    const double lu_flops = batch_getrf_flops(sizes);

    double qr_rate[2];
    int c = 0;
    for (const char* devname : {"a100", "mi100"}) {
      gpusim::Device dev(model_by_name(devname));
      const auto session = make_trace_session(
          dev, args, std::string("qr-") + devname + "-" + std::to_string(n));
      VBatch<double> A(dev, sizes);
      Rng rng(5);
      A.fill_uniform(rng);
      TauBatch<double> tau(dev, sizes, sizes);
      dev.reset_timeline();
      irr_geqrf<double>(dev, dev.stream(), n, n, A.ptrs(), A.lda(),
                        A.m_vec(), A.n_vec(), tau.ptrs(), batch);
      qr_rate[c++] = gflops(qr_flops, dev.synchronize_all());
    }
    double lu_rate;
    {
      gpusim::Device dev(model_by_name("a100"));
      const auto session =
          make_trace_session(dev, args, "lu-a100-" + std::to_string(n));
      VBatch<double> A(dev, sizes);
      Rng rng(5);
      A.fill_uniform(rng);
      PivotBatch piv(dev, sizes, sizes);
      dev.reset_timeline();
      irr_getrf<double>(dev, dev.stream(), n, n, A.ptrs(), A.lda(), 0, 0,
                        A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), batch);
      lu_rate = gflops(lu_flops, dev.synchronize_all());
    }
    table.add_row(n, TextTable::fmt(qr_rate[0], 1),
                  TextTable::fmt(qr_rate[1], 1), TextTable::fmt(lu_rate, 1),
                  TextTable::fmt(qr_rate[0] / lu_rate, 2));
  }
  table.print();
  std::printf(
      "\nthe same interface + DCWI concepts drive QR at LU-class rates, as"
      "\nthe paper's future-work section anticipates.\n");
  return 0;
}
