// Figure 6: irrTRSM vs the MAGMA-2.6.1-style inversion-based TRSM.
// 1000 lower-triangular systems of sizes uniform in [1, 128], sweeping the
// number of right-hand sides; reports Gflop/s (flops = sum n_i m_i^2) and
// the max backward error over the batch, on the A100 model.
//
// Paper result to reproduce (shape): irrTRSM asymptotically ~7.6x faster
// and slightly *more* accurate (substitution vs explicit inversion).
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/verify.hpp"
#include "refbatch/inv_trsm.hpp"

using namespace irrlu;
using namespace irrlu::batch;
using namespace irrlu::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int batch = args.get_int("batch", 1000);
  const int tri_max = args.get_int("tri", 128);
  const std::string device = args.get_string("device", "a100");
  gpusim::Device dev(model_by_name(device));

  std::printf("Figure 6 reproduction: irrTRSM vs inversion-based TRSM\n");
  std::printf("batch=%d, triangle sizes U[1,%d], device=%s\n\n", batch,
              tri_max, dev.model().name.c_str());

  TextTable table({"nrhs", "irrTRSM GF/s", "invTRSM GF/s", "speedup",
                   "irr max err", "inv max err"});

  for (int nrhs : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512}) {
    const auto tri = paper_batch_sizes(batch, 1, tri_max, 1234 + nrhs);
    std::vector<int> rhs(tri.size());
    Rng rr(99 + nrhs);
    for (auto& v : rhs) v = rr.uniform_int(1, nrhs);

    VBatch<double> T(dev, tri, tri), B0(dev, tri, rhs), B1(dev, tri, rhs),
        B2(dev, tri, rhs);
    Rng rng(7);
    T.fill_uniform(rng);
    for (int i = 0; i < batch; ++i)
      for (int d = 0; d < tri[static_cast<std::size_t>(i)]; ++d)
        T.view(i)(d, d) += 4.0;
    B0.fill_uniform(rng);
    B1.copy_from(B0);
    B2.copy_from(B0);
    const double flops = batch_trsm_flops(tri, rhs);

    dev.reset_timeline();
    irr_trsm<double>(dev, dev.stream(), la::Side::Left, la::Uplo::Lower,
                     la::Trans::No, la::Diag::NonUnit, tri_max, nrhs, 1.0,
                     T.ptrs(), T.lda(), 0, 0, B1.ptrs(), B1.lda(), 0, 0,
                     B1.m_vec(), B1.n_vec(), batch);
    const double t_irr = dev.synchronize_all();

    dev.reset_timeline();
    refbatch::inv_trsm<double>(dev, dev.stream(), la::Uplo::Lower,
                               la::Trans::No, la::Diag::NonUnit, tri_max,
                               nrhs, T.ptrs(), T.lda(), B2.ptrs(), B2.lda(),
                               B2.m_vec(), B2.n_vec(), batch);
    const double t_inv = dev.synchronize_all();

    double err_irr = 0, err_inv = 0;
    for (int i = 0; i < batch; i += 23) {  // sampled verification
      err_irr = std::max(err_irr, la::trsm_backward_error(
                                      la::Uplo::Lower, la::Trans::No,
                                      la::Diag::NonUnit, T.view(i),
                                      B1.view(i), B0.view(i)));
      err_inv = std::max(err_inv, la::trsm_backward_error(
                                      la::Uplo::Lower, la::Trans::No,
                                      la::Diag::NonUnit, T.view(i),
                                      B2.view(i), B0.view(i)));
    }

    table.add_row(nrhs, TextTable::fmt(gflops(flops, t_irr), 1),
                  TextTable::fmt(gflops(flops, t_inv), 1),
                  TextTable::fmt(t_inv / t_irr, 2), TextTable::sci(err_irr),
                  TextTable::sci(err_inv));
  }
  table.print();
  std::printf(
      "\npaper: asymptotic gain ~7.6x, irrTRSM slightly more accurate.\n");
  return 0;
}
