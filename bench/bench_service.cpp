// Solver-service benchmark: (1) the interleaved many-RHS solve path
// against N sequential device solves on one factorization — simulated
// device seconds and launch counts, the win the interleaved-batch access
// pattern buys (factor blocks read once per front per sweep, launches per
// level instead of per RHS per level); (2) a replay stream of mixed
// same-pattern / new-pattern requests through SolverService — cache hit
// rate, analyze/refactor/reuse counts, batching behaviour. Writes
// BENCH_service.json ("irrlu-bench-service-v1", schema documented in
// bench_util.hpp).
//
// Invariants (asserted, nonzero exit on violation — the ctest smoke
// target):
//   - per-request SolveStatus identical between the sequential and the
//     interleaved path at every batch width;
//   - simulated-time speedup of the interleaved path >= 2x at 64+ RHS
//     (deterministic: the simulated timeline is machine-independent);
//   - replay symbolic cache hit rate >= 0.8 and analyze runs == distinct
//     patterns;
//   - cached-refactor factors bit-identical to an uncached twin (MC64 is
//     disabled in the replay: its scaling is values-dependent by design,
//     so bit-identity is only a meaningful oracle for the
//     values-independent pipeline).
// Wall-clock is reported but never asserted.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "service/solver_service.hpp"
#include "sparse/solver.hpp"

using namespace irrlu;
using namespace irrlu::bench;

namespace {

double wall_s(const std::function<void()>& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

std::vector<double> random_rhs(int n, unsigned seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1, 1);
  return b;
}

struct ManyRhsResult {
  int nrhs = 0;
  double seq_sim_s = 0, batched_sim_s = 0;
  double seq_wall_s = 0, batched_wall_s = 0;
  long seq_launches = 0, batched_launches = 0;
  bool statuses_match = true;
  double max_berr = 0;
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quick = args.get_bool("quick");
  const std::string device = args.get_string("device", "a100");
  const std::string out_path = args.get_string("out", "BENCH_service.json");
  const int requests = args.get_int("requests", quick ? 24 : 48);
  bool ok = true;

  // -------------------------------------------------------------------
  // Part 1: interleaved many-RHS solve vs N sequential device solves on
  // one Maxwell torus factorization.
  // -------------------------------------------------------------------
  const int nt = quick ? 8 : 12, nc = quick ? 4 : 6;
  const fem::HexMesh mesh = fem::HexMesh::torus(nt, nc, nc);
  const double omega = 16.0;
  const fem::EdgeSystem sys = fem::assemble_maxwell(
      mesh, omega, fem::paper_maxwell_load(omega, omega / 1.05));
  const int n = sys.a.rows();

  gpusim::Device dev(model_by_name(device));
  auto session = make_trace_session(dev, args, "service");
  sparse::SolverOptions sopts;
  sopts.nd.leaf_size = 16;
  sopts.solve_on_device = true;  // the sequential baseline must also run
                                 // on the device to have a sim timeline
  sparse::SparseDirectSolver solver(sopts);
  solver.analyze(sys.a);
  solver.factor(dev);

  std::printf("interleaved many-RHS solve vs sequential (torus %dx%d, "
              "N=%d, device=%s)\n\n",
              nt, nc, n, device.c_str());
  TextTable table({"nrhs", "seq sim (ms)", "batched sim (ms)", "speedup",
                   "seq launches", "batched launches", "statuses"});

  std::vector<ManyRhsResult> manyrhs;
  for (const int nrhs : std::vector<int>{4, 16, 64}) {
    std::vector<std::vector<double>> bs;
    for (int j = 0; j < nrhs; ++j)
      bs.push_back(random_rhs(n, 1000u + static_cast<unsigned>(j)));

    ManyRhsResult r;
    r.nrhs = nrhs;

    std::vector<sparse::SolveReport> seq;
    double t0 = dev.synchronize_all();
    long l0 = solver.numeric().launch_count();  // factor launches, constant
    const long launches0 = dev.launch_count();
    (void)l0;
    r.seq_wall_s = wall_s([&] {
      for (const auto& b : bs) seq.push_back(solver.solve_report(b));
    });
    double t1 = dev.synchronize_all();
    const long launches1 = dev.launch_count();

    std::vector<sparse::SolveReport> bat;
    r.batched_wall_s =
        wall_s([&] { bat = solver.solve_report_many(bs); });
    double t2 = dev.synchronize_all();
    const long launches2 = dev.launch_count();

    r.seq_sim_s = t1 - t0;
    r.batched_sim_s = t2 - t1;
    r.seq_launches = launches1 - launches0;
    r.batched_launches = launches2 - launches1;
    for (int j = 0; j < nrhs; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      if (bat[ju].status != seq[ju].status) r.statuses_match = false;
      r.max_berr = std::max(r.max_berr, bat[ju].berr);
    }

    const double speedup =
        r.batched_sim_s > 0 ? r.seq_sim_s / r.batched_sim_s : 0.0;
    table.add_row(nrhs, TextTable::fmt(r.seq_sim_s * 1e3, 3),
                  TextTable::fmt(r.batched_sim_s * 1e3, 3),
                  TextTable::fmt(speedup, 2), r.seq_launches,
                  r.batched_launches, r.statuses_match ? "match" : "DIFFER");

    if (!r.statuses_match) {
      std::fprintf(stderr,
                   "FAIL: nrhs=%d per-request SolveStatus differs between "
                   "sequential and interleaved path\n",
                   nrhs);
      ok = false;
    }
    if (nrhs >= 64 && speedup < 2.0) {
      std::fprintf(stderr,
                   "FAIL: nrhs=%d interleaved speedup %.2fx < 2x "
                   "(sim %.6e s vs %.6e s)\n",
                   nrhs, speedup, r.seq_sim_s, r.batched_sim_s);
      ok = false;
    }
    manyrhs.push_back(r);
  }
  table.print();

  // -------------------------------------------------------------------
  // Part 2: replay stream through the SolverService — three tenants,
  // three sparsity patterns, values perturbed between same-pattern
  // requests (the sequence-of-systems scenario), flushed in windows so
  // same-pattern requests batch.
  // -------------------------------------------------------------------
  std::printf("\nservice replay stream (%d requests, 3 patterns, "
              "flush window 8)\n\n",
              requests);

  service::ServiceOptions svc_opts;
  svc_opts.solver.nd.leaf_size = 16;
  svc_opts.solver.use_mc64 = false;  // bit-identity oracle, see header
  gpusim::Device sdev(model_by_name(device));
  auto ssession = make_trace_session(sdev, args, "service.replay");
  service::SolverService svc(sdev, svc_opts);

  const std::vector<sparse::CsrMatrix> patterns = {
      sparse::laplacian2d(20, 20), sparse::laplacian2d(24, 16),
      sparse::laplacian2d(18, 21)};
  const std::vector<std::string> tenants = {"em", "power", "circuit"};

  Rng rng(7);
  std::vector<sparse::CsrMatrix> current = patterns;  // live values
  double replay_wall = 0;
  int flushes = 0;
  for (int q = 0; q < requests; ++q) {
    const auto p = static_cast<std::size_t>(q) % patterns.size();
    // Every third visit to a pattern changes its values (refactor);
    // otherwise the resident factor is reused.
    if (q >= static_cast<int>(patterns.size()) && q % 3 == 0)
      for (auto& v : current[p].val()) v *= 1.0 + 0.01 * rng.uniform(-1, 1);
    service::SolveRequest req;
    req.tenant = tenants[p];
    req.a = current[p];
    req.b = random_rhs(current[p].rows(), 2000u + static_cast<unsigned>(q));
    svc.submit(std::move(req));
    if (svc.pending() == 8 || q + 1 == requests) {
      replay_wall += wall_s([&] {
        const auto out = svc.flush();
        for (const auto& resp : out)
          if (resp.report.status == sparse::SolveStatus::kFailed) ok = false;
      });
      ++flushes;
    }
  }

  const auto& st = svc.stats();
  std::printf("  requests %ld | analyze runs %ld | symbolic hits %ld "
              "(rate %.3f)\n",
              st.requests, st.analyze_runs, st.symbolic_hits,
              st.symbolic_hit_rate());
  std::printf("  factors %ld | refactors %ld | factor reuses %ld | "
              "batches %ld (%.1f RHS/batch)\n",
              st.factors, st.refactors, st.factor_reuses, st.batches,
              st.batches > 0 ? static_cast<double>(st.batched_rhs) /
                                   static_cast<double>(st.batches)
                             : 0.0);

  if (st.symbolic_hit_rate() < 0.8) {
    std::fprintf(stderr, "FAIL: replay symbolic hit rate %.3f < 0.8\n",
                 st.symbolic_hit_rate());
    ok = false;
  }
  if (st.analyze_runs != static_cast<long>(patterns.size())) {
    std::fprintf(stderr,
                 "FAIL: %ld analyze runs for %zu distinct patterns\n",
                 st.analyze_runs, patterns.size());
    ok = false;
  }

  // Bit-identity of a cached-refactor factor against an uncached twin.
  bool bits_identical = false;
  {
    const sparse::SparseDirectSolver* cached = svc.peek(current[0]);
    if (cached != nullptr) {
      gpusim::Device fdev(model_by_name(device));
      sparse::SparseDirectSolver fresh(svc_opts.solver);
      fresh.analyze(current[0]);
      fresh.factor(fdev);
      bits_identical =
          cached->numeric().factor_elems() == fresh.numeric().factor_elems() &&
          std::memcmp(cached->numeric().factor_data(),
                      fresh.numeric().factor_data(),
                      fresh.numeric().factor_elems() * sizeof(double)) == 0;
    }
    if (!bits_identical) {
      std::fprintf(stderr,
                   "FAIL: cached-refactor factors not bit-identical to the "
                   "uncached path\n");
      ok = false;
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  IRRLU_CHECK_MSG(f != nullptr, "bench_service: cannot open " << out_path);
  json::Writer w(f);
  w.begin_object();
  w.kv("schema", "irrlu-bench-service-v1");
  bench::write_bench_meta(w);
  w.kv("device", device);
  w.kv_int("n", n);
  w.key("manyrhs");
  w.begin_array();
  for (const ManyRhsResult& r : manyrhs) {
    w.begin_object(/*compact=*/true);
    w.kv_int("nrhs", r.nrhs);
    w.kv("seq_sim_s", r.seq_sim_s, "%.17g");
    w.kv("batched_sim_s", r.batched_sim_s, "%.17g");
    w.kv("speedup",
         r.batched_sim_s > 0 ? r.seq_sim_s / r.batched_sim_s : 0.0, "%.4f");
    w.kv("seq_wall_s", r.seq_wall_s, "%.6e");
    w.kv("batched_wall_s", r.batched_wall_s, "%.6e");
    w.kv_int("seq_launches", r.seq_launches);
    w.kv_int("batched_launches", r.batched_launches);
    w.kv_bool("statuses_match", r.statuses_match);
    w.kv("max_berr", r.max_berr, "%.6e");
    w.end_object();
  }
  w.end_array();
  w.key("replay");
  w.begin_object();
  w.kv_int("requests", st.requests);
  w.kv_int("patterns", static_cast<long long>(patterns.size()));
  w.kv_int("flushes", flushes);
  w.kv_int("analyze_runs", st.analyze_runs);
  w.kv_int("symbolic_hits", st.symbolic_hits);
  w.kv("hit_rate", st.symbolic_hit_rate(), "%.6f");
  w.kv_int("factors", st.factors);
  w.kv_int("refactors", st.refactors);
  w.kv_int("factor_reuses", st.factor_reuses);
  w.kv_int("batches", st.batches);
  w.kv_int("batched_rhs", st.batched_rhs);
  w.kv_int("evictions", st.evictions);
  w.kv_int("rejected", st.rejected);
  w.kv_bool("factor_bits_identical", bits_identical);
  w.kv("wall_s", replay_wall, "%.6e");
  w.end_object();
  w.end_object();
  std::fprintf(f, "\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (ok)
    std::printf("statuses identical seq vs interleaved; hit rate %.3f; "
                "cached factors bit-identical.\n",
                svc.stats().symbolic_hit_rate());
  return ok ? 0 : 1;
}
