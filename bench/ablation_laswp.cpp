// Ablation (§IV-F): the looped-irrSWAP reference vs the rehearsal-based
// irrLASWP, under (a) realistic random pivoting and (b) the corner case
// where every pivot is already on the diagonal. The paper predicts the
// optimized kernel wins on realistic pivoting but can lose in the
// all-diagonal corner, because it cannot cheaply isolate rows that stayed
// in place.
#include <cstdio>

#include "bench_util.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"

using namespace irrlu;
using namespace irrlu::batch;
using namespace irrlu::bench;

namespace {

double run(gpusim::Device& dev, const std::vector<int>& sizes, int j, int jb,
           LaswpMethod method, bool diagonal_pivots) {
  const int batch = static_cast<int>(sizes.size());
  VBatch<double> A(dev, sizes);
  Rng rng(5);
  A.fill_uniform(rng);
  PivotBatch piv(dev, sizes, sizes);
  // Synthesize pivots directly (absolute rows in [r, m)).
  for (int i = 0; i < batch; ++i) {
    const int m = sizes[static_cast<std::size_t>(i)];
    int* ip = const_cast<int*>(piv.ipiv_of(i));
    for (int r = j; r < std::min(j + jb, m); ++r)
      ip[r] = diagonal_pivots ? r : rng.uniform_int(r, m - 1);
  }
  dev.reset_timeline();
  irr_laswp<double>(dev, dev.stream(), j, jb, A.ptrs(), A.lda(), A.m_vec(),
                    A.n_vec(), piv.ptrs(), batch, method);
  return dev.synchronize_all();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int batch = args.get_int("batch", 1000);
  const int jb = args.get_int("jb", 32);
  gpusim::Device dev(model_by_name(args.get_string("device", "a100")));
  const auto session = make_trace_session(dev, args);

  std::printf("irrLASWP ablation (batch=%d, jb=%d, %s)\n\n", batch, jb,
              dev.model().name.c_str());
  TextTable table({"N", "pivots", "looped (us)", "rehearsal (us)",
                   "rehearsal speedup"});
  for (int n : {64, 128, 256, 512}) {
    const auto sizes = paper_batch_sizes(batch, jb + 1, n, 31 + n);
    const int j = jb;  // a mid-factorization panel
    for (bool diag : {false, true}) {
      const double t_loop = run(dev, sizes, j, jb, LaswpMethod::kLooped, diag);
      const double t_reh =
          run(dev, sizes, j, jb, LaswpMethod::kRehearsal, diag);
      table.add_row(n, diag ? "all-diagonal" : "random",
                    TextTable::fmt(t_loop * 1e6, 1),
                    TextTable::fmt(t_reh * 1e6, 1),
                    TextTable::fmt(t_loop / t_reh, 2));
    }
  }
  table.print();
  std::printf(
      "\npaper: rehearsal wins on realistic (random) pivoting; the looped"
      "\nreference wins when pivots are already on the diagonal.\n");
  return 0;
}
