// Ablation (paper §III-A): the memory discipline of the working fronts.
// "If the entire assembly tree does not fit in the device memory, then the
// factorization is split in multiple traversals of subtrees that do fit on
// the device" — our stacked-levels discipline keeps only two adjacent
// levels of fronts live and releases each level as soon as its Schur
// complements are absorbed. This bench reports the peak device memory and
// the time cost of the extra allocation churn, side by side with the
// symbolic predictor's peak (SymbolicAnalysis::predicted_peak_bytes) so
// the out-of-core planning story can be validated without running the
// numeric phase.
//
// With --trace base.json (or IRRLU_TRACE=base.json) each memory mode
// writes its own Chrome trace + summary pair (base.all-upfront.json,
// base.stacked-levels.json, ...) carrying the per-tag allocation counter
// tracks.
//
// The predicted-vs-measured agreement is asserted on every run (exact for
// kAllUpfront, within 10% for kStackedLevels); a violation exits nonzero,
// which is what the ctest smoke target checks.
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "sparse/solver.hpp"

using namespace irrlu;
using namespace irrlu::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int nt = args.get_int("ntheta", args.get_bool("large") ? 40 : 24);
  const int nc = args.get_int("ncross", args.get_bool("large") ? 12 : 8);
  const double omega = args.get_double("omega", 16.0);

  const fem::HexMesh mesh = fem::HexMesh::torus(nt, nc, nc);
  const fem::EdgeSystem sys = fem::assemble_maxwell(
      mesh, omega, fem::paper_maxwell_load(omega, omega / 1.05));
  std::printf("front-memory discipline ablation (Maxwell torus, N=%d)\n\n",
              sys.a.rows());

  TextTable table({"memory mode", "factor (s)", "peak device (MB)",
                   "predicted peak (MB)", "pred/meas",
                   "retained factors (MB)", "residual"});
  std::vector<double> b(sys.b.begin(), sys.b.end());
  bool agree = true;
  for (auto mode : {sparse::MemoryMode::kAllUpfront,
                    sparse::MemoryMode::kStackedLevels}) {
    gpusim::Device dev(model_by_name(args.get_string("device", "a100")));
    const auto session =
        make_trace_session(dev, args, sparse::to_string(mode));
    sparse::SolverOptions opts;
    opts.nd.leaf_size = 16;
    opts.factor.memory = mode;
    sparse::SparseDirectSolver solver(opts);
    solver.analyze(sys.a);
    solver.factor(dev);
    const auto x = solver.solve(b);
    const auto& rep = solver.numeric().report();
    const double ratio =
        rep.measured_peak_bytes > 0
            ? static_cast<double>(rep.predicted_peak_bytes) /
                  static_cast<double>(rep.measured_peak_bytes)
            : 0.0;
    table.add_row(sparse::to_string(mode),
                  TextTable::fmt(solver.numeric().factor_seconds(), 4),
                  TextTable::fmt(solver.numeric().peak_device_bytes() / 1e6,
                                 2),
                  TextTable::fmt(rep.predicted_peak_bytes / 1e6, 2),
                  TextTable::fmt(ratio, 4),
                  TextTable::fmt(solver.numeric().factor_bytes() / 1e6, 2),
                  TextTable::sci(solver.residual(x, b)));
    // The symbolic predictor must agree with the measured window: exactly
    // for the upfront discipline, within 10% for the stacked one (the
    // acceptance bound; on this tree it is exact there too).
    const double tol = mode == sparse::MemoryMode::kAllUpfront ? 0.0 : 0.10;
    if (std::abs(ratio - 1.0) > tol) {
      std::fprintf(stderr,
                   "FAIL: %s predicted %zu B vs measured %zu B "
                   "(ratio %.4f, tol %.2f)\n",
                   sparse::to_string(mode), rep.predicted_peak_bytes,
                   rep.measured_peak_bytes, ratio, tol);
      agree = false;
    }
  }
  table.print();
  std::printf(
      "\nthe stacked discipline trades a little allocation latency for a"
      "\nmuch smaller working set, enabling problems whose assembly tree"
      "\nexceeds device memory; the symbolic predictor plans that split"
      "\nbefore any numeric allocation.\n");
  return agree ? 0 : 1;
}
