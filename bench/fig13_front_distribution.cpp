// Figure 13: distribution of the front (matrix) sizes and the batch count
// per assembly-tree level for the indefinite Maxwell matrix. As the tree
// is traversed from the leaves toward the root (level 0), the average
// front size grows while the batch size shrinks — the irregular workload
// that motivates irrLU-GPU.
#include <cstdio>

#include "bench_util.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "sparse/solver.hpp"

using namespace irrlu;
using namespace irrlu::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int nt = args.get_int("ntheta", args.get_bool("large") ? 40 : 24);
  const int nc = args.get_int("ncross", args.get_bool("large") ? 12 : 8);
  const double omega = args.get_double("omega", 16.0);

  const fem::HexMesh mesh = fem::HexMesh::torus(nt, nc, nc);
  const fem::EdgeSystem sys = fem::assemble_maxwell(
      mesh, omega, fem::paper_maxwell_load(omega, omega / 1.05));

  std::printf(
      "Figure 13 reproduction: front-size distribution per tree level\n");
  std::printf("Maxwell torus %dx%dx%d, omega=%g, N=%d, nnz=%lld\n\n", nt, nc,
              nc, omega, sys.a.rows(),
              static_cast<long long>(sys.a.nnz()));

  sparse::SolverOptions opts;
  opts.nd.leaf_size = args.get_int("leaf", 16);  // deep tree, tiny leaves
  sparse::SparseDirectSolver solver(opts);
  solver.analyze(sys.a);

  TextTable table(
      {"level", "batch (fronts)", "min size", "avg size", "max size"});
  for (const auto& st : solver.level_stats())
    table.add_row(st.level, st.batch, st.min_dim,
                  TextTable::fmt(st.avg_dim, 1), st.max_dim);
  table.print();

  const auto& sym = solver.symbolic();
  std::printf("\nfactor flops: %.3g, factor nnz: %lld, max front: %d\n",
              sym.factor_flops, static_cast<long long>(sym.factor_nnz),
              sym.max_front_dim);
  std::printf(
      "paper shape: average size grows toward the root while the batch"
      "\ncount shrinks (leaves: thousands of tiny fronts).\n");
  return 0;
}
