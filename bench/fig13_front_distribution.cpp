// Figure 13: distribution of the front (matrix) sizes and the batch count
// per assembly-tree level for the indefinite Maxwell matrix. As the tree
// is traversed from the leaves toward the root (level 0), the average
// front size grows while the batch size shrinks — the irregular workload
// that motivates irrLU-GPU.
//
// The per-level device time columns come from the trace subsystem: a
// factorization runs with a trace::Tracer attached and every launch is
// attributed to its enclosing "level=N" scope.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "sparse/solver.hpp"
#include "trace/trace.hpp"

using namespace irrlu;
using namespace irrlu::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int nt = args.get_int("ntheta", args.get_bool("large") ? 40 : 24);
  const int nc = args.get_int("ncross", args.get_bool("large") ? 12 : 8);
  const double omega = args.get_double("omega", 16.0);

  const fem::HexMesh mesh = fem::HexMesh::torus(nt, nc, nc);
  const fem::EdgeSystem sys = fem::assemble_maxwell(
      mesh, omega, fem::paper_maxwell_load(omega, omega / 1.05));

  std::printf(
      "Figure 13 reproduction: front-size distribution per tree level\n");
  std::printf("Maxwell torus %dx%dx%d, omega=%g, N=%d, nnz=%lld\n\n", nt, nc,
              nc, omega, sys.a.rows(),
              static_cast<long long>(sys.a.nnz()));

  // Factor under tracing (A100 model) to attribute simulated device time
  // to the elimination-tree levels via the "level=N" scopes. The device
  // (and the tracers) must be declared before the solver: the factored
  // fronts are DeviceBuffers that release through the device when the
  // solver is destroyed.
  gpusim::Device dev(model_by_name(args.get_string("device", "a100")));
  auto session = make_trace_session(dev, args);
  trace::Tracer local_tracer;
  if (!session->enabled()) dev.set_tracer(&local_tracer);
  trace::Tracer& tracer =
      session->enabled() ? *session->tracer() : local_tracer;

  sparse::SolverOptions opts;
  opts.nd.leaf_size = args.get_int("leaf", 16);  // deep tree, tiny leaves
  sparse::SparseDirectSolver solver(opts);
  solver.analyze(sys.a);
  solver.factor(dev);

  // Per-level rollup: each launch is charged to the innermost "level=N"
  // ancestor of its scope.
  const auto& nodes = tracer.scopes();
  std::vector<double> level_excl;
  std::vector<long> level_launches;
  auto at_level = [&](std::size_t lvl) -> std::pair<double&, long&> {
    if (level_excl.size() <= lvl) {
      level_excl.resize(lvl + 1, 0.0);
      level_launches.resize(lvl + 1, 0);
    }
    return {level_excl[lvl], level_launches[lvl]};
  };
  for (const auto& r : tracer.launches())
    for (int s = r.scope; s >= 0;
         s = nodes[static_cast<std::size_t>(s)].parent) {
      const std::string& label = nodes[static_cast<std::size_t>(s)].label;
      if (label.rfind("level=", 0) != 0) continue;
      auto [excl, count] = at_level(
          static_cast<std::size_t>(std::stoi(label.substr(6))));
      excl += r.excl_seconds;
      ++count;
      break;
    }

  TextTable table({"level", "batch (fronts)", "min size", "avg size",
                   "max size", "sim ms", "launches"});
  for (const auto& st : solver.level_stats()) {
    const auto lvl = static_cast<std::size_t>(st.level);
    const double ms =
        lvl < level_excl.size() ? level_excl[lvl] * 1e3 : 0.0;
    const long nl = lvl < level_launches.size() ? level_launches[lvl] : 0;
    table.add_row(st.level, st.batch, st.min_dim,
                  TextTable::fmt(st.avg_dim, 1), st.max_dim,
                  TextTable::fmt(ms, 3), nl);
  }
  table.print();

  const auto& sym = solver.symbolic();
  std::printf("\nfactor flops: %.3g, factor nnz: %lld, max front: %d\n",
              sym.factor_flops, static_cast<long long>(sym.factor_nnz),
              sym.max_front_dim);
  std::printf("factor time on %s: %.4f simulated s over %ld launches\n",
              dev.model().name.c_str(), solver.numeric().factor_seconds(),
              solver.numeric().launch_count());
  if (session->enabled())
    std::printf("trace: %s (+ %s)\n", session->path().c_str(),
                session->summary_path().c_str());
  std::printf(
      "paper shape: average size grows toward the root while the batch"
      "\ncount shrinks (leaves: thousands of tiny fronts); the device time"
      "\nconcentrates in the few large root-side levels.\n");
  if (!session->enabled()) dev.set_tracer(nullptr);
  return 0;
}
