// Host BLAS core perf trajectory: packed micro-kernel engine vs the
// retained naive reference (la::ref), swept over a Figure-13-style front
// size distribution.
//
// Unlike the fig*/table* drivers this benchmark measures *host wall
// clock*, not simulated device time: the packed engine is a host-side
// optimization and by construction cannot move any simulated number (see
// DESIGN.md, "Host execution performance"). Results go to a
// machine-readable BENCH_blas.json (schema documented in bench_util.hpp)
// so the perf trajectory is tracked PR over PR.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "gpusim/device.hpp"
#include "irrblas/dispatch.hpp"
#include "irrblas/interleaved.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/blas.hpp"
#include "lapack/flops.hpp"
#include "lapack/lapack.hpp"
#include "lapack/microkernel_ilv.hpp"

namespace la = irrlu::la;
namespace batch = irrlu::batch;
using irrlu::Rng;
using irrlu::WallTimer;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;

namespace {

const char* tr_name(la::Trans t) { return t == la::Trans::No ? "N" : "T"; }

/// One timed shape class. Fronts in the multifrontal tree (Fig. 13) range
/// from thousands of tiny leaves through mid-tree panels to a handful of
/// large separators near the root; each class is a representative
/// (separator s, update u) pair mapped onto the GEMM Schur update
/// (u x u x s) or the TRSM panel solve (s x u).
struct ShapeClass {
  std::string name;
  std::string op;  // "gemm" | "trsm"
  la::Trans transa = la::Trans::No, transb = la::Trans::No;
  la::Side side = la::Side::Left;
  la::Uplo uplo = la::Uplo::Lower;
  int m = 0, n = 0, k = 0;  // trsm ignores k
  double flops() const {
    return op == "gemm" ? la::gemm_flops(m, n, k)
                        : la::trsm_flops(side == la::Side::Left ? m : n,
                                         side == la::Side::Left ? n : m);
  }
};

/// Median wall-clock nanoseconds of `body` over enough repetitions to be
/// stable (work-scaled rep count, odd so the median is a real sample).
template <typename F>
double median_ns_for(double flops, int rep_scale, F&& body) {
  int reps = static_cast<int>(2e8 / (flops + 1e3) / rep_scale);
  reps = std::clamp(reps, 5, 201) | 1;
  std::vector<double> ns(static_cast<std::size_t>(reps));
  // Warm up on wall time, not a fixed rep count: the microsecond-scale
  // classes need a few ms of sustained work before the core settles at its
  // steady-state frequency, and a single call lands mid-ramp (~2x high).
  {
    WallTimer warm;
    do body();
    while (warm.seconds() < 5e-3);
  }
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    body();
    ns[static_cast<std::size_t>(r)] = t.seconds() * 1e9;
  }
  std::nth_element(ns.begin(), ns.begin() + reps / 2, ns.end());
  return ns[static_cast<std::size_t>(reps) / 2];
}

struct Result {
  ShapeClass c;
  double engine_ns, naive_ns;
};

Result run_class(const ShapeClass& c, int rep_scale) {
  Rng rng(4242);
  Result res{c, 0, 0};
  if (c.op == "gemm") {
    const int ar = c.transa == la::Trans::No ? c.m : c.k;
    const int ac = c.transa == la::Trans::No ? c.k : c.m;
    const int br = c.transb == la::Trans::No ? c.k : c.n;
    const int bc = c.transb == la::Trans::No ? c.n : c.k;
    std::vector<double> a(static_cast<std::size_t>(ar) * ac),
        b(static_cast<std::size_t>(br) * bc),
        cc(static_cast<std::size_t>(c.m) * c.n, 0.0);
    for (auto& v : a) v = rng.uniform(-1, 1);
    for (auto& v : b) v = rng.uniform(-1, 1);
    res.engine_ns = median_ns_for(c.flops(), rep_scale, [&] {
      la::gemm(c.transa, c.transb, c.m, c.n, c.k, -1.0, a.data(), ar,
               b.data(), br, 1.0, cc.data(), c.m);
    });
    res.naive_ns = median_ns_for(c.flops(), rep_scale, [&] {
      la::ref::gemm(c.transa, c.transb, c.m, c.n, c.k, -1.0, a.data(), ar,
                    b.data(), br, 1.0, cc.data(), c.m);
    });
  } else {
    const int ta = c.side == la::Side::Left ? c.m : c.n;
    std::vector<double> t(static_cast<std::size_t>(ta) * ta),
        b0(static_cast<std::size_t>(c.m) * c.n);
    for (auto& v : t) v = rng.uniform(-1, 1);
    for (int i = 0; i < ta; ++i)
      t[static_cast<std::size_t>(i) * ta + i] += 4.0;
    for (auto& v : b0) v = rng.uniform(-1, 1);
    std::vector<double> x = b0;
    res.engine_ns = median_ns_for(c.flops(), rep_scale, [&] {
      x = b0;
      la::trsm(c.side, c.uplo, la::Trans::No, la::Diag::NonUnit, c.m, c.n,
               1.0, t.data(), ta, x.data(), c.m);
    });
    res.naive_ns = median_ns_for(c.flops(), rep_scale, [&] {
      x = b0;
      la::ref::trsm(c.side, c.uplo, la::Trans::No, la::Diag::NonUnit, c.m,
                    c.n, 1.0, t.data(), ta, x.data(), c.m);
    });
  }
  return res;
}

/// One interleaved (SoA) leaf class: `batch` same-shape matrices with the
/// batch index innermost (DESIGN.md §12). The contender is the dispatch-
/// cached interleaved launch (irr_*_ilv, warm cache); the baseline is the
/// strided engine path the multifrontal router would otherwise take for
/// the same fronts — irr_getrf / irr_trsm / irr_gemm on the simulated
/// device, whose per-matrix block scheduling is exactly the overhead the
/// SoA layout amortizes (the paper's small-size regime). Same math, same
/// bits (asserted; the ctest suite pins this contract at every size).
struct IlvClass {
  std::string name;
  std::string op;  // "gemm" | "trsm" | "getf2"
  la::Side side = la::Side::Left;
  la::Uplo uplo = la::Uplo::Lower;
  la::Diag diag = la::Diag::NonUnit;
  int m = 0, n = 0, k = 0, batch = 0;
  std::string prec = "f64";  // "f64" | "f32" — element type of both sides
  double flops() const {
    const double per =
        op == "gemm"   ? la::gemm_flops(m, n, k)
        : op == "trsm" ? la::trsm_flops(side == la::Side::Left ? m : n,
                                        side == la::Side::Left ? n : m)
                       : la::getrf_flops(m, n);
    return per * batch;
  }
};

struct IlvResult {
  IlvClass c;
  double ilv_ns, strided_ns;
  bool bits_match = true;
};

/// Packs a uniform strided batch into an interleaved class buffer through
/// the device pack kernel.
template <typename T>
void pack_batch(Device& dev, const batch::VBatch<T>& src,
                batch::InterleavedBatch<T>& dst) {
  batch::IlvPackDescT<T> d;
  d.dst = dst.view();
  d.m = dst.m();
  d.n = dst.n();
  d.lanes = src.batch_size();
  d.src = src.ptrs();
  d.src_ld = src.lda();
  batch::ilv_pack<T>(dev, dev.stream(), {d});
}

/// Lane-by-lane bitwise comparison of an interleaved buffer against the
/// strided batch.
template <typename T>
bool ilv_bits_equal(const batch::VBatch<T>& str,
                    const batch::InterleavedBatch<T>& ilv) {
  for (int i = 0; i < str.batch_size(); ++i) {
    const auto v = str.view(i);
    for (int col = 0; col < ilv.n(); ++col)
      for (int r = 0; r < ilv.m(); ++r)
        if (ilv.at(r, col, i) != v(r, col)) return false;
  }
  return true;
}

template <typename T>
IlvResult run_ilv_class_t(const IlvClass& c, int rep_scale) {
  Rng rng(777u + static_cast<unsigned>(c.m + 64 * c.n));
  IlvResult res{c, 0, 0, true};
  const int bs = c.batch;
  Device dev(DeviceModel::a100());
  auto& stream = dev.stream();
  batch::KernelCache cache;
  const batch::Dispatch disp{&cache, nullptr};
  const auto sizes = [bs](int d) {
    return std::vector<int>(static_cast<std::size_t>(bs), d);
  };

  if (c.op == "gemm") {
    batch::VBatch<T> a(dev, sizes(c.m), sizes(c.k)),
        b(dev, sizes(c.k), sizes(c.n)), cc(dev, sizes(c.m), sizes(c.n));
    a.fill_uniform(rng);
    b.fill_uniform(rng);
    cc.fill_uniform(rng);
    batch::InterleavedBatch<T> ai(dev, c.m, c.k, bs), bi(dev, c.k, c.n, bs),
        ci(dev, c.m, c.n, bs);
    pack_batch(dev, a, ai);
    pack_batch(dev, b, bi);
    pack_batch(dev, cc, ci);
    // beta == 1 accumulates, so restore C every rep to keep the two sides
    // bit-comparable regardless of how many warm-up reps each one ran.
    const std::size_t nc = static_cast<std::size_t>(c.m) * c.n * bs;
    const std::vector<T> ci0(ci.data(), ci.data() + nc);
    batch::VBatch<T> cc0(dev, sizes(c.m), sizes(c.n));
    cc0.copy_from(cc);
    res.ilv_ns = median_ns_for(c.flops(), rep_scale, [&] {
      std::copy(ci0.begin(), ci0.end(), ci.data());
      batch::irr_gemm_ilv<T>(dev, stream, disp, c.m, c.n, c.k, -1.0,
                             ai.view(), bi.view(), 1.0, ci.view(), bs);
    });
    res.strided_ns = median_ns_for(c.flops(), rep_scale, [&] {
      cc.copy_from(cc0);
      batch::irr_gemm<T>(
          dev, stream, la::Trans::No, la::Trans::No, c.m, c.n, c.k, T(-1),
          a.ptrs(), a.lda(), 0, 0, b.ptrs(), b.lda(), 0, 0, T(1), cc.ptrs(),
          cc.lda(), 0, 0, cc.m_vec(), cc.n_vec(), a.n_vec(), bs);
    });
    dev.synchronize_all();
    res.bits_match = ilv_bits_equal(cc, ci);
  } else if (c.op == "trsm") {
    const int tri = c.side == la::Side::Left ? c.m : c.n;
    batch::VBatch<T> t(dev, sizes(tri), sizes(tri)),
        b(dev, sizes(c.m), sizes(c.n));
    t.fill_uniform(rng);
    for (int i = 0; i < bs; ++i) {
      auto v = t.view(i);
      for (int d = 0; d < tri; ++d) v(d, d) += T(4);
    }
    b.fill_uniform(rng);
    batch::InterleavedBatch<T> ti(dev, tri, tri, bs), bi(dev, c.m, c.n, bs);
    pack_batch(dev, t, ti);
    pack_batch(dev, b, bi);
    const std::size_t nb = static_cast<std::size_t>(c.m) * c.n * bs;
    const std::vector<T> bi0(bi.data(), bi.data() + nb);
    batch::VBatch<T> b0(dev, sizes(c.m), sizes(c.n));
    b0.copy_from(b);
    res.ilv_ns = median_ns_for(c.flops(), rep_scale, [&] {
      std::copy(bi0.begin(), bi0.end(), bi.data());
      batch::irr_trsm_ilv<T>(dev, stream, disp, c.side, c.uplo, c.diag, c.m,
                             c.n, 1.0, ti.view(), bi.view(), bs);
    });
    res.strided_ns = median_ns_for(c.flops(), rep_scale, [&] {
      b.copy_from(b0);
      batch::irr_trsm<T>(
          dev, stream, c.side, c.uplo, la::Trans::No, c.diag, c.m, c.n, T(1),
          const_cast<T const* const*>(t.ptrs()), t.lda(), 0, 0, b.ptrs(),
          b.lda(), 0, 0, b.m_vec(), b.n_vec(), bs);
    });
    dev.synchronize_all();
    res.bits_match = ilv_bits_equal(b, bi);
  } else {  // getf2
    batch::VBatch<T> a(dev, sizes(c.m), sizes(c.n));
    a.fill_uniform(rng);
    batch::InterleavedBatch<T> ai(dev, c.m, c.n, bs);
    pack_batch(dev, a, ai);
    const std::size_t na = static_cast<std::size_t>(c.m) * c.n * bs;
    const std::vector<T> ai0(ai.data(), ai.data() + na);
    batch::VBatch<T> a0(dev, sizes(c.m), sizes(c.n));
    a0.copy_from(a);
    batch::PivotBatch piv_ilv(dev, sizes(c.m), sizes(c.n)),
        piv_str(dev, sizes(c.m), sizes(c.n));
    res.ilv_ns = median_ns_for(c.flops(), rep_scale, [&] {
      std::copy(ai0.begin(), ai0.end(), ai.data());
      batch::irr_getf2_ilv<T>(dev, stream, disp, ai.view(), c.m, c.n, bs,
                              piv_ilv.ptrs(), piv_ilv.info());
    });
    const batch::IrrLuOptions lu;  // nb = 32 >= leaf dims: fused panel path
    res.strided_ns = median_ns_for(c.flops(), rep_scale, [&] {
      a.copy_from(a0);
      batch::irr_getrf<T>(dev, stream, c.m, c.n, a.ptrs(), a.lda(), 0, 0,
                          a.m_vec(), a.n_vec(), piv_str.ptrs(),
                          piv_str.info(), bs, lu);
    });
    dev.synchronize_all();
    res.bits_match = ilv_bits_equal(a, ai);
    for (int i = 0; i < bs && res.bits_match; ++i) {
      if (piv_str.info()[i] != piv_ilv.info()[i]) res.bits_match = false;
      for (int j = 0; j < std::min(c.m, c.n) && res.bits_match; ++j)
        if (piv_str.ipiv_of(i)[j] != piv_ilv.ipiv_of(i)[j])
          res.bits_match = false;
    }
  }
  return res;
}

IlvResult run_ilv_class(const IlvClass& c, int rep_scale) {
  return c.prec == "f32" ? run_ilv_class_t<float>(c, rep_scale)
                         : run_ilv_class_t<double>(c, rep_scale);
}

}  // namespace

int main(int argc, char** argv) {
  irrlu::CliArgs args(argc, argv);
  const std::string out = args.get_string("out", "BENCH_blas.json");
  // --quick shrinks rep counts for smoke runs; default is still seconds.
  const int rep_scale = args.get_bool("quick") ? 8 : 1;

  // Figure-13-style front distribution: (s, u) representative pairs from
  // leaf to root, GEMM Schur updates u x u x s in all four transpose
  // combinations at the mid size, plus the TRSM panel classes.
  std::vector<ShapeClass> classes;
  const struct { const char* tag; int s, u; } fronts[] = {
      {"leaf", 16, 24}, {"mid", 64, 96}, {"sep", 128, 160}, {"root", 256, 320},
  };
  for (const auto& f : fronts)
    classes.push_back({std::string("gemm_nn_") + f.tag, "gemm", la::Trans::No,
                       la::Trans::No, la::Side::Left, la::Uplo::Lower, f.u,
                       f.u, f.s});
  for (la::Trans ta : {la::Trans::No, la::Trans::Yes})
    for (la::Trans tb : {la::Trans::No, la::Trans::Yes}) {
      if (ta == la::Trans::No && tb == la::Trans::No) continue;
      classes.push_back({std::string("gemm_") +
                             (ta == la::Trans::No ? "n" : "t") +
                             (tb == la::Trans::No ? "n" : "t") + "_mid",
                         "gemm", ta, tb, la::Side::Left, la::Uplo::Lower, 96,
                         96, 64});
    }
  for (const auto& f : fronts) {
    classes.push_back({std::string("trsm_ll_") + f.tag, "trsm", la::Trans::No,
                       la::Trans::No, la::Side::Left, la::Uplo::Lower, f.s,
                       f.u, 0});
    classes.push_back({std::string("trsm_ru_") + f.tag, "trsm", la::Trans::No,
                       la::Trans::No, la::Side::Right, la::Uplo::Upper, f.u,
                       f.s, 0});
  }

  irrlu::TextTable table({"class", "shape", "engine ns", "naive ns",
                          "engine GF/s", "speedup"});
  std::vector<Result> results;
  for (const auto& c : classes) {
    results.push_back(run_class(c, rep_scale));
    const Result& r = results.back();
    char shape[64];
    std::snprintf(shape, sizeof shape, "%dx%dx%d", c.m, c.n, c.k);
    table.add_row(c.name, shape, irrlu::TextTable::fmt(r.engine_ns, 0),
                  irrlu::TextTable::fmt(r.naive_ns, 0),
                  irrlu::TextTable::fmt(c.flops() / r.engine_ns, 2),
                  irrlu::TextTable::fmt(r.naive_ns / r.engine_ns, 2));
  }
  table.print();

  // Interleaved (SoA) leaf classes at a Figure-13-plausible lane count:
  // one batch-axis-vectorized microkernel sweep vs the strided engine
  // path called per matrix. Lane results are bit-identical by contract
  // (checked here; nonzero exit on violation) — the wall-clock ratio is
  // pure memory-layout effect.
  // Leaf-class shapes sit below the measured host crossover (~12 on the
  // AVX-512 dev box): above it the SoA lane stride (batch * 8 B per row
  // step) defeats the packed engine's contiguous tiles, below it the
  // per-matrix scheduling overhead of the strided engine dominates and
  // the batch-axis vectorization wins — the paper's small-size regime,
  // and the same threshold InterleavedOptions::max_class_dim defaults to.
  const int ilv_batch = 64;
  std::vector<IlvClass> ilv_classes{
      {"interleaved_getf2_leaf", "getf2", la::Side::Left, la::Uplo::Lower,
       la::Diag::NonUnit, 8, 8, 0, ilv_batch},
      {"interleaved_gemm_nn_leaf", "gemm", la::Side::Left, la::Uplo::Lower,
       la::Diag::NonUnit, 8, 8, 4, ilv_batch},
      {"interleaved_trsm_ll_leaf", "trsm", la::Side::Left, la::Uplo::Lower,
       la::Diag::Unit, 8, 12, 0, ilv_batch},
      {"interleaved_trsm_ru_leaf", "trsm", la::Side::Right, la::Uplo::Upper,
       la::Diag::NonUnit, 6, 9, 0, ilv_batch},
  };
  // FP32 twins of the same classes (DESIGN.md §14): the element type the
  // mixed-precision factor levels run in. Same SoA-vs-strided contract —
  // per-lane bits must match between the two float paths; the fp64 : fp32
  // ns ratio row-to-row is the single-precision throughput win the LU-IR
  // policy banks on (half the bytes per lane step, twice the SIMD lanes).
  {
    const std::size_t nd = ilv_classes.size();
    for (std::size_t i = 0; i < nd; ++i) {
      IlvClass f = ilv_classes[i];
      f.name += "_f32";
      f.prec = "f32";
      ilv_classes.push_back(std::move(f));
    }
  }
  bool ok = true;
  irrlu::TextTable ilv_table({"class", "shape", "batch", "prec", "ilv ns",
                              "strided ns", "speedup", "bits"});
  std::vector<IlvResult> ilv_results;
  for (const auto& c : ilv_classes) {
    ilv_results.push_back(run_ilv_class(c, rep_scale));
    const IlvResult& r = ilv_results.back();
    ok = ok && r.bits_match;
    char shape[64];
    std::snprintf(shape, sizeof shape, "%dx%dx%d", c.m, c.n, c.k);
    ilv_table.add_row(c.name, shape, irrlu::TextTable::fmt(c.batch, 0),
                      c.prec, irrlu::TextTable::fmt(r.ilv_ns, 0),
                      irrlu::TextTable::fmt(r.strided_ns, 0),
                      irrlu::TextTable::fmt(r.strided_ns / r.ilv_ns, 2),
                      r.bits_match ? "match" : "MISMATCH");
  }
  std::printf("\n");
  ilv_table.print();

  FILE* f = std::fopen(out.c_str(), "w");
  IRRLU_CHECK_MSG(f != nullptr, "cannot open " << out);
  irrlu::json::Writer w(f);
  w.begin_object();
  w.kv("schema", "irrlu-bench-blas-v1");
  irrlu::bench::write_bench_meta(w);
  w.kv("unit", "ns");
  w.key("classes");
  w.begin_array();
  for (const Result& r : results) {
    const ShapeClass& c = r.c;
    w.begin_object(/*compact=*/true);
    w.kv("name", c.name);
    w.kv("op", c.op);
    w.kv("transa", tr_name(c.transa));
    w.kv("transb", tr_name(c.transb));
    w.kv("side", c.side == la::Side::Left ? "L" : "R");
    w.kv("uplo", c.uplo == la::Uplo::Lower ? "L" : "U");
    w.kv_int("m", c.m);
    w.kv_int("n", c.n);
    w.kv_int("k", c.k);
    w.kv("flops", c.flops(), "%.0f");
    w.kv("engine_median_ns", r.engine_ns, "%.0f");
    w.kv("naive_median_ns", r.naive_ns, "%.0f");
    w.kv("engine_gflops", c.flops() / r.engine_ns, "%.3f");
    w.kv("naive_gflops", c.flops() / r.naive_ns, "%.3f");
    w.kv("speedup", r.naive_ns / r.engine_ns, "%.3f");
    w.kv("layout", "strided");
    w.kv_int("batch", 1);
    w.kv("prec", "f64");
    w.end_object();
  }
  for (const IlvResult& r : ilv_results) {
    const IlvClass& c = r.c;
    w.begin_object(/*compact=*/true);
    w.kv("name", c.name);
    w.kv("op", c.op);
    w.kv("transa", "N");
    w.kv("transb", "N");
    w.kv("side", c.side == la::Side::Left ? "L" : "R");
    w.kv("uplo", c.uplo == la::Uplo::Lower ? "L" : "U");
    w.kv_int("m", c.m);
    w.kv_int("n", c.n);
    w.kv_int("k", c.k);
    w.kv("flops", c.flops(), "%.0f");
    w.kv("engine_median_ns", r.ilv_ns, "%.0f");
    w.kv("naive_median_ns", r.strided_ns, "%.0f");
    w.kv("engine_gflops", c.flops() / r.ilv_ns, "%.3f");
    w.kv("naive_gflops", c.flops() / r.strided_ns, "%.3f");
    w.kv("speedup", r.strided_ns / r.ilv_ns, "%.3f");
    w.kv("layout", "interleaved");
    w.kv_int("batch", c.batch);
    w.kv("prec", c.prec);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::fprintf(f, "\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out.c_str());
  if (!ok) {
    std::fprintf(stderr,
                 "FAIL: interleaved lane results diverge from the strided "
                 "engine path\n");
    return 1;
  }
  return 0;
}
