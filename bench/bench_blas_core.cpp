// Host BLAS core perf trajectory: packed micro-kernel engine vs the
// retained naive reference (la::ref), swept over a Figure-13-style front
// size distribution.
//
// Unlike the fig*/table* drivers this benchmark measures *host wall
// clock*, not simulated device time: the packed engine is a host-side
// optimization and by construction cannot move any simulated number (see
// DESIGN.md, "Host execution performance"). Results go to a
// machine-readable BENCH_blas.json (schema documented in bench_util.hpp)
// so the perf trajectory is tracked PR over PR.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/cli.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/timer.hpp"
#include "lapack/blas.hpp"
#include "lapack/flops.hpp"

namespace la = irrlu::la;
using irrlu::Rng;
using irrlu::WallTimer;

namespace {

const char* tr_name(la::Trans t) { return t == la::Trans::No ? "N" : "T"; }

/// One timed shape class. Fronts in the multifrontal tree (Fig. 13) range
/// from thousands of tiny leaves through mid-tree panels to a handful of
/// large separators near the root; each class is a representative
/// (separator s, update u) pair mapped onto the GEMM Schur update
/// (u x u x s) or the TRSM panel solve (s x u).
struct ShapeClass {
  std::string name;
  std::string op;  // "gemm" | "trsm"
  la::Trans transa = la::Trans::No, transb = la::Trans::No;
  la::Side side = la::Side::Left;
  la::Uplo uplo = la::Uplo::Lower;
  int m = 0, n = 0, k = 0;  // trsm ignores k
  double flops() const {
    return op == "gemm" ? la::gemm_flops(m, n, k)
                        : la::trsm_flops(side == la::Side::Left ? m : n,
                                         side == la::Side::Left ? n : m);
  }
};

/// Median wall-clock nanoseconds of `body` over enough repetitions to be
/// stable (work-scaled rep count, odd so the median is a real sample).
template <typename F>
double median_ns(const ShapeClass& c, int rep_scale, F&& body) {
  int reps = static_cast<int>(2e8 / (c.flops() + 1e3) / rep_scale);
  reps = std::clamp(reps, 5, 201) | 1;
  std::vector<double> ns(static_cast<std::size_t>(reps));
  body();  // warm up caches and pack buffers
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    body();
    ns[static_cast<std::size_t>(r)] = t.seconds() * 1e9;
  }
  std::nth_element(ns.begin(), ns.begin() + reps / 2, ns.end());
  return ns[static_cast<std::size_t>(reps) / 2];
}

struct Result {
  ShapeClass c;
  double engine_ns, naive_ns;
};

Result run_class(const ShapeClass& c, int rep_scale) {
  Rng rng(4242);
  Result res{c, 0, 0};
  if (c.op == "gemm") {
    const int ar = c.transa == la::Trans::No ? c.m : c.k;
    const int ac = c.transa == la::Trans::No ? c.k : c.m;
    const int br = c.transb == la::Trans::No ? c.k : c.n;
    const int bc = c.transb == la::Trans::No ? c.n : c.k;
    std::vector<double> a(static_cast<std::size_t>(ar) * ac),
        b(static_cast<std::size_t>(br) * bc),
        cc(static_cast<std::size_t>(c.m) * c.n, 0.0);
    for (auto& v : a) v = rng.uniform(-1, 1);
    for (auto& v : b) v = rng.uniform(-1, 1);
    res.engine_ns = median_ns(c, rep_scale, [&] {
      la::gemm(c.transa, c.transb, c.m, c.n, c.k, -1.0, a.data(), ar,
               b.data(), br, 1.0, cc.data(), c.m);
    });
    res.naive_ns = median_ns(c, rep_scale, [&] {
      la::ref::gemm(c.transa, c.transb, c.m, c.n, c.k, -1.0, a.data(), ar,
                    b.data(), br, 1.0, cc.data(), c.m);
    });
  } else {
    const int ta = c.side == la::Side::Left ? c.m : c.n;
    std::vector<double> t(static_cast<std::size_t>(ta) * ta),
        b0(static_cast<std::size_t>(c.m) * c.n);
    for (auto& v : t) v = rng.uniform(-1, 1);
    for (int i = 0; i < ta; ++i)
      t[static_cast<std::size_t>(i) * ta + i] += 4.0;
    for (auto& v : b0) v = rng.uniform(-1, 1);
    std::vector<double> x = b0;
    res.engine_ns = median_ns(c, rep_scale, [&] {
      x = b0;
      la::trsm(c.side, c.uplo, la::Trans::No, la::Diag::NonUnit, c.m, c.n,
               1.0, t.data(), ta, x.data(), c.m);
    });
    res.naive_ns = median_ns(c, rep_scale, [&] {
      x = b0;
      la::ref::trsm(c.side, c.uplo, la::Trans::No, la::Diag::NonUnit, c.m,
                    c.n, 1.0, t.data(), ta, x.data(), c.m);
    });
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  irrlu::CliArgs args(argc, argv);
  const std::string out = args.get_string("out", "BENCH_blas.json");
  // --quick shrinks rep counts for smoke runs; default is still seconds.
  const int rep_scale = args.get_bool("quick") ? 8 : 1;

  // Figure-13-style front distribution: (s, u) representative pairs from
  // leaf to root, GEMM Schur updates u x u x s in all four transpose
  // combinations at the mid size, plus the TRSM panel classes.
  std::vector<ShapeClass> classes;
  const struct { const char* tag; int s, u; } fronts[] = {
      {"leaf", 16, 24}, {"mid", 64, 96}, {"sep", 128, 160}, {"root", 256, 320},
  };
  for (const auto& f : fronts)
    classes.push_back({std::string("gemm_nn_") + f.tag, "gemm", la::Trans::No,
                       la::Trans::No, la::Side::Left, la::Uplo::Lower, f.u,
                       f.u, f.s});
  for (la::Trans ta : {la::Trans::No, la::Trans::Yes})
    for (la::Trans tb : {la::Trans::No, la::Trans::Yes}) {
      if (ta == la::Trans::No && tb == la::Trans::No) continue;
      classes.push_back({std::string("gemm_") +
                             (ta == la::Trans::No ? "n" : "t") +
                             (tb == la::Trans::No ? "n" : "t") + "_mid",
                         "gemm", ta, tb, la::Side::Left, la::Uplo::Lower, 96,
                         96, 64});
    }
  for (const auto& f : fronts) {
    classes.push_back({std::string("trsm_ll_") + f.tag, "trsm", la::Trans::No,
                       la::Trans::No, la::Side::Left, la::Uplo::Lower, f.s,
                       f.u, 0});
    classes.push_back({std::string("trsm_ru_") + f.tag, "trsm", la::Trans::No,
                       la::Trans::No, la::Side::Right, la::Uplo::Upper, f.u,
                       f.s, 0});
  }

  irrlu::TextTable table({"class", "shape", "engine ns", "naive ns",
                          "engine GF/s", "speedup"});
  std::vector<Result> results;
  for (const auto& c : classes) {
    results.push_back(run_class(c, rep_scale));
    const Result& r = results.back();
    char shape[64];
    std::snprintf(shape, sizeof shape, "%dx%dx%d", c.m, c.n, c.k);
    table.add_row(c.name, shape, irrlu::TextTable::fmt(r.engine_ns, 0),
                  irrlu::TextTable::fmt(r.naive_ns, 0),
                  irrlu::TextTable::fmt(c.flops() / r.engine_ns, 2),
                  irrlu::TextTable::fmt(r.naive_ns / r.engine_ns, 2));
  }
  table.print();

  FILE* f = std::fopen(out.c_str(), "w");
  IRRLU_CHECK_MSG(f != nullptr, "cannot open " << out);
  irrlu::json::Writer w(f);
  w.begin_object();
  w.kv("schema", "irrlu-bench-blas-v1");
  w.kv("unit", "ns");
  w.key("classes");
  w.begin_array();
  for (const Result& r : results) {
    const ShapeClass& c = r.c;
    w.begin_object(/*compact=*/true);
    w.kv("name", c.name);
    w.kv("op", c.op);
    w.kv("transa", tr_name(c.transa));
    w.kv("transb", tr_name(c.transb));
    w.kv("side", c.side == la::Side::Left ? "L" : "R");
    w.kv("uplo", c.uplo == la::Uplo::Lower ? "L" : "U");
    w.kv_int("m", c.m);
    w.kv_int("n", c.n);
    w.kv_int("k", c.k);
    w.kv("flops", c.flops(), "%.0f");
    w.kv("engine_median_ns", r.engine_ns, "%.0f");
    w.kv("naive_median_ns", r.naive_ns, "%.0f");
    w.kv("engine_gflops", c.flops() / r.engine_ns, "%.3f");
    w.kv("naive_gflops", c.flops() / r.naive_ns, "%.3f");
    w.kv("speedup", r.naive_ns / r.engine_ns, "%.3f");
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::fprintf(f, "\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out.c_str());
  return 0;
}
