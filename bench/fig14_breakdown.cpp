// Figure 14: runtime breakdown of the numeric factorization by operation
// class (panel/LU, pivoting, TRSM, GEMM, assembly/extend-add), comparing
// the batched irr* schedule against the naive per-front loop, on the A100
// model. The batched GEMM path is hybrid, as in the paper: fronts larger
// than a threshold run dedicated per-front GEMM launches ("cuBLAS GEMM in
// a loop for sizes > 256").
//
// The breakdown is computed from the trace subsystem: every run attaches
// a trace::Tracer and the class table aggregates per-launch exclusive
// times by kernel name. This must agree exactly with the legacy
// hand-timer path (Device::profile()), and the driver verifies that it
// does. The trace's scope annotations additionally give the *phase* view
// (panel/swap/trsm/update as enqueued by irr_getrf), which kernel names
// alone cannot: the recursive irrTRSM launches internal irr_gemm kernels
// that name-based classing files under GEMM but phase-based classing
// charges to TRSM.
#include <cmath>
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "sparse/solver.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/report.hpp"
#include "trace/trace.hpp"

using namespace irrlu;
using namespace irrlu::bench;

namespace {

std::string op_class(const std::string& kernel) {
  if (kernel.rfind("irr_gemm", 0) == 0) return "GEMM";
  if (kernel.rfind("irr_trsm", 0) == 0) return "TRSM";
  if (kernel.rfind("irr_laswp", 0) == 0) return "row swaps (LASWP)";
  if (kernel.rfind("mf_", 0) == 0) return "assembly/extend-add";
  return "LU panel+pivot";  // getf2 / iamax / swap / scal / ger / setup
}

const char* const kPhases[] = {"panel",    "swap",       "trsm",   "update",
                               "assemble", "extend-add", "extract"};

struct Breakdown {
  std::map<std::string, double> by_class;  ///< trace, aggregated by kernel
  std::map<std::string, double> by_phase;  ///< trace, aggregated by scope
  double total = 0;
  long launches = 0;
  double agree_abs = 0;  ///< max |profile() - trace| over classes
};

Breakdown breakdown(sparse::Engine engine, const sparse::CsrMatrix& a,
                    int hybrid_threshold = 256,
                    const std::string& trace_path = {}) {
  gpusim::Device dev(model_by_name("a100"));
  trace::Tracer tracer;
  dev.set_tracer(&tracer);
  sparse::SolverOptions opts;
  opts.nd.leaf_size = 16;  // deep tree: many small fronts, as in the paper
  opts.factor.hybrid_gemm_threshold = hybrid_threshold;
  opts.factor.engine = engine;
  sparse::SparseDirectSolver solver(opts);
  solver.analyze(a);
  solver.factor(dev);

  Breakdown b;
  // Trace-derived class breakdown (exclusive per-launch attribution).
  for (const auto& [name, agg] : trace::aggregate_by_kernel(tracer))
    b.by_class[op_class(name)] += agg.excl_seconds;
  // The legacy hand-timer path: lifetime-aggregated KernelStats.
  std::map<std::string, double> from_profile;
  for (const auto& [name, st] : dev.profile())
    from_profile[op_class(name)] += st.sim_seconds;
  for (const auto& [cls, t] : from_profile)
    b.agree_abs = std::max(
        b.agree_abs, std::abs(t - (b.by_class.count(cls) ? b.by_class.at(cls)
                                                         : 0.0)));
  // Scope-derived phase breakdown.
  for (const char* ph : kPhases)
    b.by_phase[ph] = trace::excl_seconds_in_scope(tracer, ph);
  b.total = solver.numeric().factor_seconds();
  b.launches = solver.numeric().launch_count();

  if (!trace_path.empty()) {
    trace::write_chrome_trace(trace_path, tracer, dev.model());
    std::printf("wrote %s\n\n", trace_path.c_str());
  }
  dev.set_tracer(nullptr);
  return b;
}

double at_or_zero(const std::map<std::string, double>& m,
                  const std::string& k) {
  const auto it = m.find(k);
  return it == m.end() ? 0.0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int nt = args.get_int("ntheta", args.get_bool("large") ? 40 : 24);
  const int nc = args.get_int("ncross", args.get_bool("large") ? 12 : 8);
  const double omega = args.get_double("omega", 16.0);

  const fem::HexMesh mesh = fem::HexMesh::torus(nt, nc, nc);
  const fem::EdgeSystem sys = fem::assemble_maxwell(
      mesh, omega, fem::paper_maxwell_load(omega, omega / 1.05));
  std::printf(
      "Figure 14 reproduction: factorization breakdown by operation\n");
  std::printf("Maxwell torus, N=%d, A100 model (trace-derived)\n\n",
              sys.a.rows());

  const auto bat = breakdown(sparse::Engine::kBatched, sys.a, 256,
                             args.get_string("trace", ""));
  const auto nohyb = breakdown(sparse::Engine::kBatched, sys.a, 0);
  const auto loop = breakdown(sparse::Engine::kLooped, sys.a);

  TextTable table({"operation", "batched+hybrid (ms)", "batched only (ms)",
                   "looped (ms)", "loop/hybrid"});
  for (const char* cls : {"LU panel+pivot", "row swaps (LASWP)", "TRSM",
                          "GEMM", "assembly/extend-add"}) {
    const double b = at_or_zero(bat.by_class, cls);
    const double nh = at_or_zero(nohyb.by_class, cls);
    const double l = at_or_zero(loop.by_class, cls);
    table.add_row(cls, TextTable::fmt(b * 1e3, 3), TextTable::fmt(nh * 1e3, 3),
                  TextTable::fmt(l * 1e3, 3),
                  TextTable::fmt(b > 0 ? l / b : 0.0, 1));
  }
  table.add_row("TOTAL (timeline)", TextTable::fmt(bat.total * 1e3, 3),
                TextTable::fmt(nohyb.total * 1e3, 3),
                TextTable::fmt(loop.total * 1e3, 3),
                TextTable::fmt(loop.total / bat.total, 1));
  table.print();

  // The trace must reproduce the hand-timer numbers bit for bit: the same
  // exclusive attribution accumulated in the same order.
  const double agree =
      std::max(bat.agree_abs, std::max(nohyb.agree_abs, loop.agree_abs));
  IRRLU_CHECK_MSG(agree <= 1e-12 * std::max(1e-30, bat.total),
                  "trace-derived breakdown diverged from Device::profile() "
                  "by " << agree << " s");
  std::printf("\ntrace vs hand-timer (Device::profile) max |delta|: %.3g s "
              "(exact agreement)\n\n",
              agree);

  // The phase view only the trace can provide: work classed by the scope
  // the solver enqueued it under. TRSM here includes the internal GEMM
  // launches of the recursive solve; "update" is the trailing GEMM alone.
  TextTable phases({"phase (trace scope)", "batched+hybrid (ms)",
                    "batched only (ms)", "looped (ms)"});
  for (const char* ph : kPhases)
    phases.add_row(ph, TextTable::fmt(at_or_zero(bat.by_phase, ph) * 1e3, 3),
                   TextTable::fmt(at_or_zero(nohyb.by_phase, ph) * 1e3, 3),
                   TextTable::fmt(at_or_zero(loop.by_phase, ph) * 1e3, 3));
  phases.print();

  std::printf("\nkernel launches: batched+hybrid=%ld, batched-only=%ld, "
              "looped=%ld\n",
              bat.launches, nohyb.launches, loop.launches);
  std::printf(
      "paper: irrLU and irrTRSM beat the looped GETRF/GETRS at almost all"
      "\nsizes; GEMM is hybrid (irrGEMM <= 256, per-front beyond).\n");
  return 0;
}
