// Figure 14: runtime breakdown of the numeric factorization by operation
// class (panel/LU, pivoting, TRSM, GEMM, assembly/extend-add), comparing
// the batched irr* schedule against the naive per-front loop, on the A100
// model. The batched GEMM path is hybrid, as in the paper: fronts larger
// than a threshold run dedicated per-front GEMM launches ("cuBLAS GEMM in
// a loop for sizes > 256").
#include <cstdio>
#include <map>
#include <string>

#include "bench_util.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "sparse/solver.hpp"

using namespace irrlu;
using namespace irrlu::bench;

namespace {

std::string op_class(const std::string& kernel) {
  if (kernel.rfind("irr_gemm", 0) == 0) return "GEMM";
  if (kernel.rfind("irr_trsm", 0) == 0) return "TRSM";
  if (kernel.rfind("irr_laswp", 0) == 0) return "row swaps (LASWP)";
  if (kernel.rfind("mf_", 0) == 0) return "assembly/extend-add";
  return "LU panel+pivot";  // getf2 / iamax / swap / scal / ger / setup
}

std::map<std::string, double> breakdown(sparse::Engine engine,
                                        const sparse::CsrMatrix& a,
                                        double* total, long* launches,
                                        int hybrid_threshold = 256) {
  gpusim::Device dev(model_by_name("a100"));
  sparse::SolverOptions opts;
  opts.nd.leaf_size = 16;  // deep tree: many small fronts, as in the paper
  opts.factor.hybrid_gemm_threshold = hybrid_threshold;
  opts.factor.engine = engine;
  sparse::SparseDirectSolver solver(opts);
  solver.analyze(a);
  solver.factor(dev);
  std::map<std::string, double> by_class;
  for (const auto& [name, st] : dev.profile())
    by_class[op_class(name)] += st.sim_seconds;
  *total = solver.numeric().factor_seconds();
  *launches = solver.numeric().launch_count();
  return by_class;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int nt = args.get_int("ntheta", args.get_bool("large") ? 40 : 24);
  const int nc = args.get_int("ncross", args.get_bool("large") ? 12 : 8);
  const double omega = args.get_double("omega", 16.0);

  const fem::HexMesh mesh = fem::HexMesh::torus(nt, nc, nc);
  const fem::EdgeSystem sys = fem::assemble_maxwell(
      mesh, omega, fem::paper_maxwell_load(omega, omega / 1.05));
  std::printf(
      "Figure 14 reproduction: factorization breakdown by operation\n");
  std::printf("Maxwell torus, N=%d, A100 model\n\n", sys.a.rows());

  double t_b = 0, t_n = 0, t_l = 0;
  long l_b = 0, l_n = 0, l_l = 0;
  const auto bat = breakdown(sparse::Engine::kBatched, sys.a, &t_b, &l_b);
  const auto nohyb =
      breakdown(sparse::Engine::kBatched, sys.a, &t_n, &l_n, 0);
  const auto loop = breakdown(sparse::Engine::kLooped, sys.a, &t_l, &l_l);

  TextTable table({"operation", "batched+hybrid (ms)", "batched only (ms)",
                   "looped (ms)", "loop/hybrid"});
  for (const char* cls : {"LU panel+pivot", "row swaps (LASWP)", "TRSM",
                          "GEMM", "assembly/extend-add"}) {
    const double b = bat.count(cls) ? bat.at(cls) : 0.0;
    const double nh = nohyb.count(cls) ? nohyb.at(cls) : 0.0;
    const double l = loop.count(cls) ? loop.at(cls) : 0.0;
    table.add_row(cls, TextTable::fmt(b * 1e3, 3), TextTable::fmt(nh * 1e3, 3),
                  TextTable::fmt(l * 1e3, 3),
                  TextTable::fmt(b > 0 ? l / b : 0.0, 1));
  }
  table.add_row("TOTAL (timeline)", TextTable::fmt(t_b * 1e3, 3),
                TextTable::fmt(t_n * 1e3, 3), TextTable::fmt(t_l * 1e3, 3),
                TextTable::fmt(t_l / t_b, 1));
  table.print();
  std::printf("\nkernel launches: batched+hybrid=%ld, batched-only=%ld, "
              "looped=%ld\n",
              l_b, l_n, l_l);
  std::printf(
      "paper: irrLU and irrTRSM beat the looped GETRF/GETRS at almost all"
      "\nsizes; GEMM is hybrid (irrGEMM <= 256, per-front beyond).\n");
  return 0;
}
