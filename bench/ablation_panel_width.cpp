// Ablation (§IV-E): sensitivity of irrLU-GPU to the panel width nb (the
// paper suggests 16-32 columns per iteration). Wider panels amortize
// launches but raise the shared-memory estimate, switching to the slow
// column-wise path earlier; narrower panels shift work out of GEMM.
#include <cstdio>

#include "bench_util.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"

using namespace irrlu;
using namespace irrlu::batch;
using namespace irrlu::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int batch = args.get_int("batch", 500);

  TextTable table({"N", "nb=8", "nb=16", "nb=32", "nb=64"});
  std::printf("irrLU panel-width ablation (Gflop/s, A100 model)\n\n");
  for (int n : {64, 128, 256}) {
    const auto sizes = paper_batch_sizes(batch, 1, n, 7 + n);
    const double flops = batch_getrf_flops(sizes);
    std::vector<std::string> row = {std::to_string(n)};
    for (int nb : {8, 16, 32, 64}) {
      gpusim::Device dev(model_by_name(args.get_string("device", "a100")));
      const auto session = make_trace_session(
          dev, args, "n" + std::to_string(n) + "-nb" + std::to_string(nb));
      VBatch<double> A(dev, sizes);
      Rng rng(3);
      A.fill_uniform(rng);
      PivotBatch piv(dev, sizes, sizes);
      IrrLuOptions opts;
      opts.nb = nb;
      dev.reset_timeline();
      irr_getrf<double>(dev, dev.stream(), n, n, A.ptrs(), A.lda(), 0, 0,
                        A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), batch,
                        opts);
      const double t = dev.synchronize_all();
      row.push_back(TextTable::fmt(gflops(flops, t), 1));
    }
    table.add_row(row[0], row[1], row[2], row[3], row[4]);
  }
  table.print();
  return 0;
}
