// Figure 10: FP64 irrLU-GPU performance on 1000 square matrices with
// sizes uniformly sampled in [1, N], sweeping N — against the streamed
// per-matrix solver (cuSOLVER/rocSOLVER in 16 streams) and the CPU batched
// LU (MKL getrf_batch on the dual-socket Xeon model).
//
// Paper shape to reproduce: streamed vendor solvers stay flat and slow
// (host-serialized dispatch); irrLU on the A100 model reaches ~4.5x the
// CPU; the MI100 model overtakes the CPU only for larger workloads (its
// smaller shared memory and less mature toolchain cost it).
#include <cstdio>

#include "bench_util.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/verify.hpp"
#include "refbatch/cpu_batch.hpp"
#include "refbatch/streamed_solver.hpp"

using namespace irrlu;
using namespace irrlu::batch;
using namespace irrlu::bench;

namespace {

struct Run {
  double seconds = 0;
  double worst_residual = 0;
};

template <typename F>
Run timed(gpusim::Device& dev, const std::vector<int>& sizes, F&& go) {
  const int batch = static_cast<int>(sizes.size());
  VBatch<double> A(dev, sizes), A0(dev, sizes);
  Rng rng(11);
  A.fill_uniform(rng);
  A0.copy_from(A);
  PivotBatch piv(dev, sizes, sizes);
  dev.reset_timeline();
  go(dev, A, piv);
  Run r;
  r.seconds = dev.synchronize_all();
  for (int i = 0; i < batch; i += 37)
    r.worst_residual = std::max(
        r.worst_residual,
        la::lu_residual(A.view(i), piv.ipiv_of(i), A0.view(i)));
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int batch = args.get_int("batch", 300);
  const bool full = args.get_bool("full");
  const int streams = args.get_int("streams", 16);
  // --pool 0 disables the device slab pool. Simulated results are
  // byte-identical either way (the pool is a host-side optimization;
  // test_pool asserts the invariant, this flag lets you see it here).
  const bool pool = args.get_int("pool", 1) != 0;

  std::printf("Figure 10 reproduction: irrLU-GPU FP64, %d matrices U[1,N]\n",
              batch);
  std::printf("(paper uses batch=1000; pass --batch 1000 to match exactly)\n");
  std::printf("(streamed baseline uses %d streams, as in the paper)\n\n",
              streams);

  std::vector<int> points = {32, 64, 128, 256, 512};
  if (full) points.push_back(1024);  // the paper's full x-range

  TextTable table({"N", "irrLU A100", "irrLU MI100", "strm A100",
                   "strm MI100", "CPU batch", "A100/CPU", "max resid"});
  for (int n : points) {
    const auto sizes = paper_batch_sizes(batch, 1, n, 1000 + n);
    const double flops = batch_getrf_flops(sizes);
    double col[5];
    double resid = 0;

    int c = 0;
    for (const char* devname : {"a100", "mi100"}) {
      gpusim::Device dev(model_by_name(devname), pool);
      const Run r = timed(dev, sizes, [&](gpusim::Device& d,
                                          VBatch<double>& A,
                                          PivotBatch& piv) {
        irr_getrf<double>(d, d.stream(), n, n, A.ptrs(), A.lda(), 0, 0,
                          A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(),
                          static_cast<int>(sizes.size()));
      });
      col[c++] = gflops(flops, r.seconds);
      resid = std::max(resid, r.worst_residual);
    }
    for (const char* devname : {"a100", "mi100"}) {
      gpusim::Device dev(model_by_name(devname), pool);
      const Run r = timed(dev, sizes, [&](gpusim::Device& d,
                                          VBatch<double>& A,
                                          PivotBatch& piv) {
        refbatch::StreamedOptions so;
        so.num_streams = streams;
        refbatch::streamed_getrf<double>(d, sizes, sizes, A.ptrs(), A.lda(),
                                         piv.ptrs(), piv.info(), so);
      });
      col[c++] = gflops(flops, r.seconds);
      resid = std::max(resid, r.worst_residual);
    }
    {
      gpusim::Device cpu(model_by_name("cpu"), pool);
      const Run r = timed(cpu, sizes, [&](gpusim::Device& d,
                                          VBatch<double>& A,
                                          PivotBatch& piv) {
        refbatch::cpu_getrf_batch<double>(d, d.stream(), A.ptrs(), A.lda(),
                                          A.m_vec(), A.n_vec(), piv.ptrs(),
                                          piv.info(),
                                          static_cast<int>(sizes.size()));
      });
      col[c++] = gflops(flops, r.seconds);
      resid = std::max(resid, r.worst_residual);
    }

    table.add_row(n, TextTable::fmt(col[0], 1), TextTable::fmt(col[1], 1),
                  TextTable::fmt(col[2], 1), TextTable::fmt(col[3], 1),
                  TextTable::fmt(col[4], 1),
                  TextTable::fmt(col[0] / (col[4] > 0 ? col[4] : 1), 2),
                  TextTable::fmt(resid, 1));
  }
  table.print();
  std::printf(
      "\nrates in Gflop/s (simulated device time; residuals verify the"
      "\nnumerics). paper: A100 ~4.5x CPU asymptotically, MI100 up to"
      " ~2.7x,\nstreamed vendor solvers far below both.\n");
  return 0;
}
