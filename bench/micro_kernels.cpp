// Google-benchmark microbenchmarks of the irregular-batch kernels' *host
// execution* (real wall time of the simulator running the numerics). These
// complement the paper-figure drivers, which report simulated device time:
// here the framework's statistics track regressions of the actual C++
// kernels in this repository.
//
// No --trace / IRRLU_TRACE hook here on purpose: google-benchmark owns
// main() and argument parsing, and each benchmark constructs short-lived
// Devices inside the timed loop — attaching a recorder would perturb the
// wall-clock numbers this driver exists to measure. Use the figure /
// ablation drivers for traced runs.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/flops.hpp"

using namespace irrlu;
using namespace irrlu::batch;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;

namespace {

void BM_IrrGemm(benchmark::State& state) {
  const int batch = 64;
  const int n = static_cast<int>(state.range(0));
  Device dev(DeviceModel::a100());
  Rng rng(1);
  auto sizes = rng.uniform_sizes(batch, 1, n);
  VBatch<double> A(dev, sizes), B(dev, sizes), C(dev, sizes);
  A.fill_uniform(rng);
  B.fill_uniform(rng);
  C.fill_uniform(rng);
  double flops = 0;
  for (int v : sizes) flops += la::gemm_flops(v, v, v);
  for (auto _ : state) {
    irr_gemm<double>(dev, dev.stream(), la::Trans::No, la::Trans::No, n, n,
                     n, 1.0, A.ptrs(), A.lda(), 0, 0, B.ptrs(), B.lda(), 0,
                     0, 0.0, C.ptrs(), C.lda(), 0, 0, A.m_vec(), A.n_vec(),
                     A.m_vec(), batch);
    dev.synchronize_all();
    benchmark::DoNotOptimize(C.view(0).data());
  }
  state.counters["host_gflops"] = benchmark::Counter(
      flops * static_cast<double>(state.iterations()) / 1e9,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IrrGemm)->Arg(32)->Arg(64)->Arg(128);

void BM_IrrTrsm(benchmark::State& state) {
  const int batch = 64;
  const int n = static_cast<int>(state.range(0));
  Device dev(DeviceModel::a100());
  Rng rng(2);
  auto tri = rng.uniform_sizes(batch, 1, n);
  std::vector<int> rhs(tri.size(), 16);
  VBatch<double> T(dev, tri, tri), B(dev, tri, rhs);
  T.fill_uniform(rng);
  for (int i = 0; i < batch; ++i)
    for (int d = 0; d < tri[static_cast<std::size_t>(i)]; ++d)
      T.view(i)(d, d) += 4.0;
  B.fill_uniform(rng);
  for (auto _ : state) {
    irr_trsm<double>(dev, dev.stream(), la::Side::Left, la::Uplo::Lower,
                     la::Trans::No, la::Diag::NonUnit, n, 16, 1.0, T.ptrs(),
                     T.lda(), 0, 0, B.ptrs(), B.lda(), 0, 0, B.m_vec(),
                     B.n_vec(), batch);
    dev.synchronize_all();
    benchmark::DoNotOptimize(B.view(0).data());
  }
}
BENCHMARK(BM_IrrTrsm)->Arg(64)->Arg(128);

void BM_IrrGetrf(benchmark::State& state) {
  const int batch = 64;
  const int n = static_cast<int>(state.range(0));
  Device dev(DeviceModel::a100());
  Rng rng(3);
  auto sizes = rng.uniform_sizes(batch, 1, n);
  VBatch<double> A0(dev, sizes), A(dev, sizes);
  A0.fill_uniform(rng);
  PivotBatch piv(dev, sizes, sizes);
  for (auto _ : state) {
    state.PauseTiming();
    A.copy_from(A0);
    state.ResumeTiming();
    irr_getrf<double>(dev, dev.stream(), n, n, A.ptrs(), A.lda(), 0, 0,
                      A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), batch);
    dev.synchronize_all();
  }
}
BENCHMARK(BM_IrrGetrf)->Arg(32)->Arg(64)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
