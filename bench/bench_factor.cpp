// End-to-end factorization benchmark: analyze / factor / refactor / solve
// wall-clock over a family of Maxwell torus systems, run twice per point —
// once with the device memory pool enabled (the default) and once with it
// disabled — writing BENCH_factor.json ("irrlu-bench-factor-v1", schema
// documented in bench_util.hpp).
//
// What this measures is *host* time: the simulated-device timeline is, by
// design, bit-identical with the pool on or off (a pool hit charges the
// same alloc_overhead as a fresh allocation; see DESIGN.md §10). The
// driver hard-asserts that identity — factor sim seconds, launch count,
// raw allocation count and peak device bytes must match bitwise between
// the two configurations — and that the pool strictly reduces the number
// of host mallocs once allocations recycle (the repeated-refactor loop,
// i.e. the paper's "sequence of systems with one sparsity pattern"
// scenario). A violation exits nonzero, which is what the ctest smoke
// target checks. Wall-clock ratios are reported but never asserted:
// timings are machine-dependent, the invariants are not.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "common/json.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "sparse/solver.hpp"

using namespace irrlu;
using namespace irrlu::bench;

namespace {

double wall_s(const std::function<void()>& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

/// Everything recorded about one (mesh point, pool flag) run.
struct ConfigResult {
  bool pool = false;
  double analyze_s = 0, factor_s = 0, refactor_median_s = 0, solve_s = 0;
  double factor_sim_s = 0;
  long launches = 0, allocs = 0, host_allocs = 0;
  long pool_hits = 0, pool_misses = 0;
  double pool_bytes_served = 0;
  std::size_t peak_bytes = 0;
  double residual = 0;
};

/// One side of the interleaved-routing A/B (DESIGN.md §12).
struct IlvConfig {
  bool enabled = false;
  double factor_s = 0, refactor_median_s = 0;
  double factor_sim_s = 0;
  long launches = 0;
};

/// The interleaved experiment of one mesh point: routing on vs off (both
/// with the pool), the dispatch-cache traffic of the refactor loop, and
/// the factor-bits identity between the two sides.
struct IlvExperiment {
  IlvConfig cfg[2];  // [0] = routing on, [1] = routing off
  long refactor_hits = 0, refactor_misses = 0, refactor_plan_hits = 0;
  double refactor_hit_rate = 0;
  bool bits_identical = false;
};

/// One side of the mixed-precision A/B (DESIGN.md §14): the same system
/// factored under one precision policy, then solved with the LU-IR
/// refinement loop.
struct PrecConfig {
  sparse::PrecisionPolicy policy = sparse::PrecisionPolicy::kF64;
  double factor_wall_s = 0;
  double factor_sim_s = 0;
  long fp32_fronts = 0;
  std::string solve_status;
  int refine_steps = 0;
  double berr = 0;
  bool refactored_fp64 = false;
};

/// The mixed-precision experiment of one mesh point: FP32 policy vs FP64
/// policy. The simulated-time ratio is the headline LU-IR win (half the
/// bytes, double the microkernel rate); the FP32 side must still converge
/// to the FP64 refinement tolerance without tripping the fallback.
struct PrecExperiment {
  PrecConfig cfg[2];  // [0] = kF32, [1] = kF64
  double sim_speedup = 0;
};

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool quick = args.get_bool("quick");
  const int repeats = args.get_int("repeats", quick ? 3 : 5);
  const std::string device = args.get_string("device", "a100");
  const std::string out_path = args.get_string("out", "BENCH_factor.json");
  const double omega = args.get_double("omega", 16.0);
  // Interleaved-routing class-dim cap for the A/B below; 0 keeps the
  // library default (see InterleavedOptions::max_class_dim).
  const int ilv_cap = args.get_int("ilv_cap", 0);
  // Precision policy of the pool experiment's solvers ("f64" | "f32" |
  // "adaptive"). The mixed-precision A/B below always runs f32 vs f64
  // regardless of this flag; the default keeps the committed artifact on
  // the reference FP64 path.
  sparse::PrecisionPolicy main_policy = sparse::PrecisionPolicy::kF64;
  {
    const std::string p = args.get_string("precision", "f64");
    IRRLU_CHECK_MSG(sparse::policy_from_string(p.c_str(), main_policy),
                    "--precision must be f64, f32, or adaptive (got '"
                        << p << "')");
  }

  // (ntheta, ncross) torus resolutions; edge-element counts grow with
  // ntheta * ncross^2. --quick keeps the smoke target in ctest seconds.
  // The ncross = 2 points are thin tubes whose assembly trees consist
  // entirely of small fronts — the paper's deep-level regime, where the
  // interleaved leaf routing has material coverage; on the fat 3D points
  // nearly every front exceeds the routable class sizes.
  std::vector<std::pair<int, int>> family;
  if (quick)
    family = {{8, 4}, {48, 2}};
  else if (args.get_bool("large"))
    family = {{12, 6}, {16, 8}, {24, 8}, {32, 10}, {384, 2}, {1536, 2}};
  else
    family = {{12, 6}, {16, 8}, {24, 8}, {384, 2}, {768, 2}};

  std::printf("factorization benchmark (Maxwell torus family, device=%s, "
              "%d refactor repeats)\n\n",
              device.c_str(), repeats);
  TextTable table({"point", "N", "pool", "factor (ms)", "refactor med (ms)",
                   "host allocs", "pool hits", "hit rate"});
  TextTable ilv_table({"point", "N", "refactor strided (ms)",
                       "refactor ilv (ms)", "wall speedup", "sim speedup",
                       "disp hit rate"});
  TextTable prec_table({"point", "N", "f64 sim (ms)", "f32 sim (ms)",
                        "sim speedup", "f32 status", "f32 steps",
                        "f32 berr"});

  struct PointResult {
    int ntheta, ncross, n;
    long nnz;
    ConfigResult cfg[2];  // [0] = pool on, [1] = pool off
    IlvExperiment ilv;
    PrecExperiment prec;
  };
  std::vector<PointResult> points;
  bool ok = true;

  // Mixed-precision A/B (DESIGN.md §14): the same system factored under
  // the uniform FP32 policy vs the reference FP64 policy, defaults
  // otherwise. The simulated-time ratio is deterministic. Wherever the
  // FP64 reference solve converges, the FP32 side must recover the same
  // refinement tolerance through LU-IR without tripping the fallback
  // refactor — near-resonant points where even FP64 partial pivoting
  // degrades (e.g. the 32x10 torus of --large) are exempt; the fallback
  // still engages there and keeps the better of the two results.
  auto run_prec_ab = [&](const fem::EdgeSystem& sys,
                         const std::vector<double>& b, int nt, int nc) {
    const int n = sys.a.rows();
    const sparse::PrecisionPolicy pols[2] = {sparse::PrecisionPolicy::kF32,
                                             sparse::PrecisionPolicy::kF64};
    PrecExperiment px;
    for (int i = 0; i < 2; ++i) {
      gpusim::Device pdev(model_by_name(device));
      sparse::SolverOptions opts;
      opts.nd.leaf_size = 16;
      opts.factor.precision = pols[i];
      sparse::SparseDirectSolver s(opts);
      s.analyze(sys.a);
      PrecConfig& r = px.cfg[i];
      r.policy = pols[i];
      r.factor_wall_s = wall_s([&] { s.factor(pdev); });
      // Read the simulated factor time and front census before the
      // solve: a fallback refactor would replace the numeric factor.
      r.factor_sim_s = s.numeric().factor_seconds();
      r.fp32_fronts = s.numeric().report().fp32_fronts;
      const sparse::SolveReport rep = s.solve_report(b);
      r.solve_status = sparse::to_string(rep.status);
      r.refine_steps = rep.refine_steps;
      r.berr = rep.berr;
      r.refactored_fp64 = rep.refactored_fp64;
    }
    px.sim_speedup = px.cfg[0].factor_sim_s > 0
                         ? px.cfg[1].factor_sim_s / px.cfg[0].factor_sim_s
                         : 0.0;
    if (px.cfg[1].solve_status == "converged" &&
        (px.cfg[0].solve_status != "converged" ||
         px.cfg[0].refactored_fp64)) {
      std::fprintf(stderr,
                   "FAIL: N=%d FP32-policy solve did not converge through "
                   "LU-IR (status %s, refactored_fp64=%d, berr %.3e)\n",
                   n, px.cfg[0].solve_status.c_str(),
                   px.cfg[0].refactored_fp64 ? 1 : 0, px.cfg[0].berr);
      ok = false;
    }
    prec_table.add_row(
        "torus " + std::to_string(nt) + "x" + std::to_string(nc), n,
        TextTable::fmt(px.cfg[1].factor_sim_s * 1e3, 3),
        TextTable::fmt(px.cfg[0].factor_sim_s * 1e3, 3),
        TextTable::fmt(px.sim_speedup, 2), px.cfg[0].solve_status,
        px.cfg[0].refine_steps, TextTable::sci(px.cfg[0].berr, 2));
    return px;
  };
  struct PrecPoint {
    int ntheta, ncross, n;
    PrecExperiment prec;
  };
  std::vector<PrecPoint> prec_anchors;

  for (const auto& [nt, nc] : family) {
    const fem::HexMesh mesh = fem::HexMesh::torus(nt, nc, nc);
    const fem::EdgeSystem sys = fem::assemble_maxwell(
        mesh, omega, fem::paper_maxwell_load(omega, omega / 1.05));
    const std::vector<double> b(sys.b.begin(), sys.b.end());

    PointResult pt;
    pt.ntheta = nt;
    pt.ncross = nc;
    pt.n = sys.a.rows();
    pt.nnz = static_cast<long>(sys.a.nnz());

    {
      // Untimed warmup of the whole pipeline at this size so the first
      // measured sample does not absorb one-time process costs (page
      // faults, packing-buffer growth, branch warmup).
      gpusim::Device dev(model_by_name(device));
      sparse::SolverOptions opts;
      opts.nd.leaf_size = 16;
      opts.factor.precision = main_policy;
      sparse::SparseDirectSolver warm(opts);
      warm.analyze(sys.a);
      warm.factor(dev);
    }

    // Samples are interleaved pool-on / pool-off (one A/B pair per
    // repetition, medians per config) so slow machine drift — frequency
    // scaling, noisy neighbours — cancels instead of biasing whichever
    // configuration happened to run second.
    std::vector<double> analyze_t[2], factor_t[2], refactor_t[2];
    std::unique_ptr<gpusim::Device> devs[2];
    std::unique_ptr<trace::TraceSession> sessions[2];
    std::unique_ptr<sparse::SparseDirectSolver> solvers[2];
    for (int k = 0; k < repeats; ++k)
      for (int i = 0; i < 2; ++i) {
        const bool pool = i == 0;
        solvers[i].reset();  // drop device buffers before their device
        sessions[i].reset();
        devs[i] = std::make_unique<gpusim::Device>(model_by_name(device),
                                                   pool);
        sessions[i] = make_trace_session(
            *devs[i], args,
            "N" + std::to_string(pt.n) + (pool ? ".pool-on" : ".pool-off"));
        sparse::SolverOptions opts;
        opts.nd.leaf_size = 16;
        opts.factor.precision = main_policy;
        solvers[i] = std::make_unique<sparse::SparseDirectSolver>(opts);
        analyze_t[i].push_back(wall_s([&] { solvers[i]->analyze(sys.a); }));
        factor_t[i].push_back(wall_s([&] { solvers[i]->factor(*devs[i]); }));
      }
    // Refactor with the same values on the surviving pair: the
    // sequence-of-systems pattern. From the second factorization on,
    // every front and every kernel workspace has a recycled block of
    // exactly the right class, so the pool configuration is what
    // separates the two columns.
    for (int k = 0; k < repeats; ++k)
      for (int i = 0; i < 2; ++i)
        refactor_t[i].push_back(
            wall_s([&] { solvers[i]->refactor(*devs[i], sys.a); }));

    for (int i = 0; i < 2; ++i) {
      ConfigResult& r = pt.cfg[i];
      r.pool = i == 0;
      r.analyze_s = median(analyze_t[i]);
      r.factor_s = median(factor_t[i]);
      r.refactor_median_s = median(refactor_t[i]);
      std::vector<double> x;
      r.solve_s = wall_s([&] { x = solvers[i]->solve(b); });
      r.residual = solvers[i]->residual(x, b);

      r.factor_sim_s = solvers[i]->numeric().factor_seconds();
      r.launches = devs[i]->launch_count();
      r.allocs = devs[i]->alloc_count();
      r.host_allocs = devs[i]->host_alloc_count();
      r.pool_hits = devs[i]->pool_stats().hits;
      r.pool_misses = devs[i]->pool_stats().misses;
      r.pool_bytes_served =
          static_cast<double>(devs[i]->pool_stats().bytes_served);
      r.peak_bytes = devs[i]->peak_bytes();
      solvers[i].reset();  // release device buffers before the device
      sessions[i].reset();
      devs[i].reset();

      const double hit_rate =
          r.allocs > 0 ? static_cast<double>(r.pool_hits) /
                             static_cast<double>(r.allocs)
                       : 0.0;
      table.add_row("torus " + std::to_string(nt) + "x" + std::to_string(nc),
                    pt.n, r.pool ? "on" : "off",
                    TextTable::fmt(r.factor_s * 1e3, 2),
                    TextTable::fmt(r.refactor_median_s * 1e3, 2),
                    r.host_allocs, r.pool_hits, TextTable::fmt(hit_rate, 3));
    }

    // Invariants (never timing): the pool is invisible to the simulated
    // device and to the allocation stream, and strictly cheaper in host
    // mallocs once the refactor loop recycles.
    const ConfigResult& on = pt.cfg[0];
    const ConfigResult& off = pt.cfg[1];
    if (on.factor_sim_s != off.factor_sim_s || on.launches != off.launches ||
        on.allocs != off.allocs || on.peak_bytes != off.peak_bytes) {
      std::fprintf(stderr,
                   "FAIL: N=%d simulated runs diverge pool on/off "
                   "(sim %.17g vs %.17g s, launches %ld vs %ld, allocs %ld "
                   "vs %ld, peak %zu vs %zu B)\n",
                   pt.n, on.factor_sim_s, off.factor_sim_s, on.launches,
                   off.launches, on.allocs, off.allocs, on.peak_bytes,
                   off.peak_bytes);
      ok = false;
    }
    if (on.host_allocs >= off.host_allocs) {
      std::fprintf(stderr,
                   "FAIL: N=%d pool did not reduce host allocations "
                   "(%ld with pool vs %ld without)\n",
                   pt.n, on.host_allocs, off.host_allocs);
      ok = false;
    }
    if (on.residual > 1e-10 || off.residual > 1e-10) {
      std::fprintf(stderr, "FAIL: N=%d residual too large (%.3e / %.3e)\n",
                   pt.n, on.residual, off.residual);
      ok = false;
    }

    // Interleaved leaf-routing A/B (DESIGN.md §12): same solver, pool on
    // both sides, SoA leaf routing on vs off, with the same A/B pairing as
    // the pool experiment. The factor bits are asserted identical between
    // the two sides, and the refactor loop — the sequence-of-systems
    // pattern the routing's dispatch plan exists for — must resolve its
    // kernels almost entirely without rebuilding (hit rate >= 0.9;
    // deterministic, so a miss-heavy loop exits nonzero).
    {
      std::vector<double> ifactor_t[2], irefactor_t[2];
      std::unique_ptr<gpusim::Device> idevs[2];
      std::unique_ptr<trace::TraceSession> isessions[2];
      std::unique_ptr<sparse::SparseDirectSolver> isolvers[2];
      for (int k = 0; k < repeats; ++k)
        for (int i = 0; i < 2; ++i) {
          const bool ilv_on = i == 0;
          isolvers[i].reset();
          isessions[i].reset();
          idevs[i] = std::make_unique<gpusim::Device>(model_by_name(device));
          isessions[i] = make_trace_session(
              *idevs[i], args,
              "N" + std::to_string(pt.n) +
                  (ilv_on ? ".ilv-on" : ".ilv-off"));
          sparse::SolverOptions opts;
          opts.nd.leaf_size = 16;
          opts.factor.interleaved.enabled = ilv_on;
          if (ilv_cap > 0) opts.factor.interleaved.max_class_dim = ilv_cap;
          isolvers[i] = std::make_unique<sparse::SparseDirectSolver>(opts);
          isolvers[i]->analyze(sys.a);
          ifactor_t[i].push_back(
              wall_s([&] { isolvers[i]->factor(*idevs[i]); }));
        }
      IlvExperiment& ex = pt.ilv;
      for (int k = 0; k < repeats; ++k)
        for (int i = 0; i < 2; ++i) {
          irefactor_t[i].push_back(
              wall_s([&] { isolvers[i]->refactor(*idevs[i], sys.a); }));
          if (i == 0) {
            const sparse::FactorReport& rep = isolvers[0]->numeric().report();
            ex.refactor_hits += rep.dispatch_hits;
            ex.refactor_misses += rep.dispatch_misses;
            ex.refactor_plan_hits += rep.dispatch_plan_hits;
          }
        }
      for (int i = 0; i < 2; ++i) {
        IlvConfig& r = ex.cfg[i];
        r.enabled = i == 0;
        r.factor_s = median(ifactor_t[i]);
        r.refactor_median_s = median(irefactor_t[i]);
        r.factor_sim_s = isolvers[i]->numeric().factor_seconds();
        r.launches = idevs[i]->launch_count();
      }
      const long total = ex.refactor_hits + ex.refactor_misses +
                         ex.refactor_plan_hits;
      ex.refactor_hit_rate =
          total > 0 ? static_cast<double>(ex.refactor_hits +
                                          ex.refactor_plan_hits) /
                          static_cast<double>(total)
                    : 0.0;
      const auto& f_on = isolvers[0]->numeric();
      const auto& f_off = isolvers[1]->numeric();
      ex.bits_identical =
          f_on.factor_elems() == f_off.factor_elems() &&
          std::memcmp(f_on.factor_data(), f_off.factor_data(),
                      f_on.factor_elems() * sizeof(double)) == 0;
      if (!ex.bits_identical) {
        std::fprintf(stderr,
                     "FAIL: N=%d interleaved factor bits differ from the "
                     "strided path\n",
                     pt.n);
        ok = false;
      }
      if (total > 0 && ex.refactor_hit_rate < 0.9) {
        std::fprintf(stderr,
                     "FAIL: N=%d interleaved refactor dispatch hit rate "
                     "%.3f < 0.9 (%ld hits, %ld plan hits, %ld misses)\n",
                     pt.n, ex.refactor_hit_rate, ex.refactor_hits,
                     ex.refactor_plan_hits, ex.refactor_misses);
        ok = false;
      }
      ilv_table.add_row(
          "torus " + std::to_string(nt) + "x" + std::to_string(nc), pt.n,
          TextTable::fmt(ex.cfg[1].refactor_median_s * 1e3, 2),
          TextTable::fmt(ex.cfg[0].refactor_median_s * 1e3, 2),
          TextTable::fmt(ex.cfg[0].refactor_median_s > 0
                             ? ex.cfg[1].refactor_median_s /
                                   ex.cfg[0].refactor_median_s
                             : 0.0,
                         2),
          TextTable::fmt(ex.cfg[0].factor_sim_s > 0
                             ? ex.cfg[1].factor_sim_s / ex.cfg[0].factor_sim_s
                             : 0.0,
                         2),
          TextTable::fmt(ex.refactor_hit_rate, 3));
      for (int i = 0; i < 2; ++i) {
        isolvers[i].reset();
        isessions[i].reset();
        idevs[i].reset();
      }
    }

    pt.prec = run_prec_ab(sys, b, nt, nc);
    points.push_back(pt);
  }

  // Large fat-torus anchors for the family-wide LU-IR speedup: on the
  // thin tubes and small points every front is latency-floor bound (the
  // per-launch and per-block overheads are precision-independent), so the
  // FP32 policy gains little there — the fat 3D points are where halved
  // bytes and the doubled microkernel rate have compute to win back.
  // The anchors run the precision A/B only (no pool / interleaved
  // experiments), keeping the added bench runtime bounded; --quick skips
  // them along with the family-wide assertion below.
  if (!quick) {
    const std::vector<std::pair<int, int>> anchors = {{48, 12}, {64, 16}};
    for (const auto& [nt, nc] : anchors) {
      const fem::HexMesh mesh = fem::HexMesh::torus(nt, nc, nc);
      const fem::EdgeSystem sys = fem::assemble_maxwell(
          mesh, omega, fem::paper_maxwell_load(omega, omega / 1.05));
      const std::vector<double> b(sys.b.begin(), sys.b.end());
      PrecPoint ap;
      ap.ntheta = nt;
      ap.ncross = nc;
      ap.n = sys.a.rows();
      ap.prec = run_prec_ab(sys, b, nt, nc);
      prec_anchors.push_back(std::move(ap));
    }
  }

  table.print();
  std::printf("\ninterleaved leaf routing (pool on, strided vs SoA):\n");
  ilv_table.print();
  std::printf("\nmixed precision (FP32 LU-IR vs FP64 reference):\n");
  prec_table.print();

  // Family-wide LU-IR win: summed over the torus family (sweep points +
  // fat anchors), the FP32 policy must factor at least 1.5x faster in
  // simulated device time than the FP64 reference. The sum is a
  // work-weighted average, so the fat anchors dominate exactly as real
  // factorization time does; the thin tubes honestly report per-point
  // ratios below 1 (their all-small-front trees are bound by
  // precision-independent launch and block-start floors, and the FP32
  // conversion kernels are pure overhead there). --quick runs only the
  // two smallest points, which is why it logs the ratio instead of
  // asserting on it.
  double prec_sim_f32 = 0, prec_sim_f64 = 0;
  for (const PointResult& pt : points) {
    prec_sim_f32 += pt.prec.cfg[0].factor_sim_s;
    prec_sim_f64 += pt.prec.cfg[1].factor_sim_s;
  }
  for (const PrecPoint& ap : prec_anchors) {
    prec_sim_f32 += ap.prec.cfg[0].factor_sim_s;
    prec_sim_f64 += ap.prec.cfg[1].factor_sim_s;
  }
  const double family_prec_speedup =
      prec_sim_f32 > 0 ? prec_sim_f64 / prec_sim_f32 : 0.0;
  if (!quick && family_prec_speedup < 1.5) {
    std::fprintf(stderr,
                 "FAIL: family-wide FP32 simulated factor speedup %.3f < "
                 "1.5 (f64 %.6e s vs f32 %.6e s)\n",
                 family_prec_speedup, prec_sim_f64, prec_sim_f32);
    ok = false;
  }

  // Family-wide dispatch traffic: the refactor loop must exist (at least
  // one point routes fronts through the dispatch cache) and must resolve
  // its kernels almost entirely from the recorded plan.
  long agg_hits = 0, agg_misses = 0, agg_plan = 0;
  for (const PointResult& pt : points) {
    agg_hits += pt.ilv.refactor_hits;
    agg_misses += pt.ilv.refactor_misses;
    agg_plan += pt.ilv.refactor_plan_hits;
  }
  const long agg_total = agg_hits + agg_misses + agg_plan;
  const double agg_rate =
      agg_total > 0
          ? static_cast<double>(agg_hits + agg_plan) /
                static_cast<double>(agg_total)
          : 0.0;
  if (agg_total == 0 || agg_rate < 0.9) {
    std::fprintf(stderr,
                 "FAIL: family-wide interleaved refactor dispatch hit rate "
                 "%.3f < 0.9 (%ld hits, %ld plan hits, %ld misses)\n",
                 agg_rate, agg_hits, agg_plan, agg_misses);
    ok = false;
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  IRRLU_CHECK_MSG(f != nullptr, "bench_factor: cannot open " << out_path);
  json::Writer w(f);
  auto write_prec = [&w](const PrecExperiment& px) {
    w.key("configs");
    w.begin_array();
    for (const PrecConfig& r : px.cfg) {
      w.begin_object(/*compact=*/true);
      w.kv("policy", sparse::to_string(r.policy));
      w.kv("factor_wall_s", r.factor_wall_s, "%.6e");
      w.kv("factor_sim_s", r.factor_sim_s, "%.17g");
      w.kv_int("fp32_fronts", r.fp32_fronts);
      w.kv("solve_status", r.solve_status);
      w.kv_int("refine_steps", r.refine_steps);
      w.kv("berr", r.berr, "%.6e");
      w.kv_bool("refactored_fp64", r.refactored_fp64);
      w.end_object();
    }
    w.end_array();
    w.kv("sim_speedup", px.sim_speedup, "%.4f");
  };
  w.begin_object();
  w.kv("schema", "irrlu-bench-factor-v1");
  bench::write_bench_meta(w);
  w.kv("device", device);
  w.kv_int("repeats", repeats);
  w.key("points");
  w.begin_array();
  for (const PointResult& pt : points) {
    w.begin_object();
    w.kv_int("ntheta", pt.ntheta);
    w.kv_int("ncross", pt.ncross);
    w.kv_int("n", pt.n);
    w.kv_int("nnz", pt.nnz);
    w.key("configs");
    w.begin_array();
    for (const ConfigResult& r : pt.cfg) {
      w.begin_object(/*compact=*/true);
      w.kv_bool("pool", r.pool);
      w.kv("analyze_wall_s", r.analyze_s, "%.6e");
      w.kv("factor_wall_s", r.factor_s, "%.6e");
      w.kv("refactor_wall_median_s", r.refactor_median_s, "%.6e");
      w.kv("solve_wall_s", r.solve_s, "%.6e");
      w.kv("factor_sim_s", r.factor_sim_s, "%.17g");
      w.kv_int("launches", r.launches);
      w.kv_int("allocs", r.allocs);
      w.kv_int("host_allocs", r.host_allocs);
      w.kv_int("pool_hits", r.pool_hits);
      w.kv_int("pool_misses", r.pool_misses);
      w.kv("pool_bytes_served", r.pool_bytes_served, "%.0f");
      w.kv("pool_hit_rate",
           r.allocs > 0 ? static_cast<double>(r.pool_hits) /
                              static_cast<double>(r.allocs)
                        : 0.0,
           "%.6f");
      w.kv_int("peak_bytes", static_cast<long long>(r.peak_bytes));
      w.kv("residual", r.residual, "%.6e");
      w.end_object();
    }
    w.end_array();
    w.kv("refactor_speedup",
         pt.cfg[0].refactor_median_s > 0
             ? pt.cfg[1].refactor_median_s / pt.cfg[0].refactor_median_s
             : 0.0,
         "%.4f");
    w.kv("host_alloc_ratio",
         pt.cfg[1].host_allocs > 0
             ? static_cast<double>(pt.cfg[0].host_allocs) /
                   static_cast<double>(pt.cfg[1].host_allocs)
             : 0.0,
         "%.6f");
    w.key("interleaved");
    w.begin_object();
    w.key("configs");
    w.begin_array();
    for (const IlvConfig& r : pt.ilv.cfg) {
      w.begin_object(/*compact=*/true);
      w.kv_bool("enabled", r.enabled);
      w.kv("factor_wall_s", r.factor_s, "%.6e");
      w.kv("refactor_wall_median_s", r.refactor_median_s, "%.6e");
      w.kv("factor_sim_s", r.factor_sim_s, "%.17g");
      w.kv_int("launches", r.launches);
      w.end_object();
    }
    w.end_array();
    w.kv("refactor_speedup",
         pt.ilv.cfg[0].refactor_median_s > 0
             ? pt.ilv.cfg[1].refactor_median_s /
                   pt.ilv.cfg[0].refactor_median_s
             : 0.0,
         "%.4f");
    w.kv("sim_speedup",
         pt.ilv.cfg[0].factor_sim_s > 0
             ? pt.ilv.cfg[1].factor_sim_s / pt.ilv.cfg[0].factor_sim_s
             : 0.0,
         "%.4f");
    w.kv_int("refactor_dispatch_hits", pt.ilv.refactor_hits);
    w.kv_int("refactor_dispatch_misses", pt.ilv.refactor_misses);
    w.kv_int("refactor_dispatch_plan_hits", pt.ilv.refactor_plan_hits);
    w.kv("refactor_dispatch_hit_rate", pt.ilv.refactor_hit_rate, "%.6f");
    w.kv_bool("factor_bits_identical", pt.ilv.bits_identical);
    w.end_object();
    w.key("precision");
    w.begin_object();
    write_prec(pt.prec);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  // Fat-torus anchors (non-quick runs): precision A/B only, included in
  // the family speedup sum.
  w.key("precision_anchor_points");
  w.begin_array();
  for (const PrecPoint& ap : prec_anchors) {
    w.begin_object();
    w.kv_int("ntheta", ap.ntheta);
    w.kv_int("ncross", ap.ncross);
    w.kv_int("n", ap.n);
    w.key("precision");
    w.begin_object();
    write_prec(ap.prec);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.kv("precision_family_sim_speedup", family_prec_speedup, "%.4f");
  w.end_object();
  std::fprintf(f, "\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  if (ok) {
    std::printf("pool on/off simulated timelines identical; host mallocs "
                "strictly lower with the pool; interleaved factor bits "
                "identical to strided with refactor dispatch hit rate >= "
                "0.9; FP32 LU-IR converged wherever FP64 does");
    if (quick)
      std::printf(" (family sim speedup %.2fx; the >= 1.5x assertion "
                  "needs the full family's fat anchors).\n",
                  family_prec_speedup);
    else
      std::printf(" with family sim speedup %.2fx >= 1.5.\n",
                  family_prec_speedup);
  }
  return ok ? 0 : 1;
}
