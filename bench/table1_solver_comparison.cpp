// Table I: total numeric-factorization time of the sparse direct solver on
// the indefinite Maxwell problem, across schedules and devices:
//   - irr-batched (the paper's optimized solution) on A100 and MI100,
//   - the naive cuBLAS/cuSOLVER-style per-front loop,
//   - the STRUMPACK-v6.3.1-style legacy schedule (batched only below 32,
//     per-level synchronization) — the paper's closest competitor,
//   - a SuperLU-style right-looking schedule (eager per-front scatter),
//   - the batched schedule on the CPU model (the CPU-only reference).
// Also reports launch counts and synchronization wait, mirroring the
// paper's Nsight observations (STRUMPACK: 9.1 s in cudaStreamSynchronize,
// 6.5 s in cudaLaunchKernel; optimized: 0.33 s / 0.16 s).
#include <cstdio>

#include "bench_util.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "sparse/solver.hpp"

using namespace irrlu;
using namespace irrlu::bench;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int nt = args.get_int("ntheta", args.get_bool("large") ? 40 : 24);
  const int nc = args.get_int("ncross", args.get_bool("large") ? 12 : 8);
  const double omega = args.get_double("omega", 16.0);

  const fem::HexMesh mesh = fem::HexMesh::torus(nt, nc, nc);
  const fem::EdgeSystem sys = fem::assemble_maxwell(
      mesh, omega, fem::paper_maxwell_load(omega, omega / 1.05));
  std::printf("Table I reproduction: sparse direct solver comparison\n");
  std::printf("Maxwell torus %dx%dx%d, omega=%g, N=%d, nnz=%lld\n\n", nt, nc,
              nc, omega, sys.a.rows(),
              static_cast<long long>(sys.a.nnz()));

  struct Config {
    const char* label;
    const char* device;
    sparse::Engine engine;
  };
  const Config configs[] = {
      {"irr-batched", "a100", sparse::Engine::kBatched},
      {"irr-batched", "mi100", sparse::Engine::kBatched},
      {"naive loop (cuSOLVER-style)", "a100", sparse::Engine::kLooped},
      {"naive loop (cuSOLVER-style)", "mi100", sparse::Engine::kLooped},
      {"legacy <32 batch (STRUMPACK-style)", "a100",
       sparse::Engine::kLegacySmallBatch},
      {"right-looking (SuperLU-style)", "a100",
       sparse::Engine::kRightLooking},
      {"irr-batched", "cpu", sparse::Engine::kBatched},
  };

  TextTable table({"solver", "device", "factor (s)", "launches", "syncs",
                   "sync wait (s)", "berr", "steps", "status", "growth"});
  double t_batched_a100 = 0;
  std::vector<double> b(static_cast<std::size_t>(sys.a.rows()), 0.0);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = sys.b[i];

  for (const Config& cfg : configs) {
    gpusim::Device dev(model_by_name(cfg.device));
    sparse::SolverOptions opts;
    opts.nd.leaf_size = 16;  // deep tree: many small fronts, as in the paper
    opts.factor.engine = cfg.engine;
    sparse::SparseDirectSolver solver(opts);
    solver.analyze(sys.a);
    solver.factor(dev);
    const auto rep = solver.solve_report(b);
    const auto& num = solver.numeric();
    if (cfg.engine == sparse::Engine::kBatched &&
        std::string(cfg.device) == "a100")
      t_batched_a100 = num.factor_seconds();
    table.add_row(cfg.label, cfg.device,
                  TextTable::fmt(num.factor_seconds(), 4),
                  num.launch_count(), num.sync_count(),
                  TextTable::fmt(num.sync_wait_seconds(), 4),
                  TextTable::sci(rep.berr), rep.refine_steps,
                  sparse::to_string(rep.status),
                  TextTable::fmt(num.report().pivot_growth, 2));
  }
  table.print();
  std::printf(
      "\nfastest expected: irr-batched on A100, with the MI100 close"
      "\nbehind (launch-overhead removal matters more there); the legacy"
      "\nand looped schedules pay heavy launch + sync costs. "
      "(A100 batched: %.4f s)\n",
      t_batched_a100);
  return 0;
}
