// The paper's application (§V-B): the indefinite Maxwell problem
//   curl curl E - Omega^2 E = f
// discretized with lowest-order Nédélec elements on a toroidal hexahedral
// mesh, solved with the batched multifrontal sparse direct solver.
//
//   build/examples/maxwell_solver [--ntheta 24] [--ncross 8] [--omega 16]
//                                 [--device a100|mi100|cpu]
//                                 [--precision f64|f32|adaptive]
//                                 [--trace trace.json] [--mem-report]
//
// Prints the three solver phases with their statistics, mirroring the
// paper's reporting: analysis (MC64 + nested dissection + symbolic),
// numeric factorization (simulated device time, launches, pivot
// diagnostics), and solve with adaptive iterative refinement driven to
// the componentwise backward-error tolerance (the paper reports machine
// precision after one step).
//
// With --trace (or IRRLU_TRACE=trace.json in the environment) the run
// records every kernel launch and device allocation and writes a
// chrome://tracing JSON plus an aggregate summary; load the trace in
// Perfetto (ui.perfetto.dev) to see per-stream timelines, the per-level /
// front-class scope spans, and the per-tag memory counter tracks.
//
// --mem-report prints the factorization's measured peak device memory next
// to the symbolic predictor's peak (exact for the default upfront
// discipline), plus the per-tag allocation attribution table when a trace
// recorder is attached.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/timer.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "gpusim/device.hpp"
#include "sparse/solver.hpp"
#include "trace/memory.hpp"
#include "trace/session.hpp"

using namespace irrlu;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int nt = args.get_int("ntheta", 24);
  const int nc = args.get_int("ncross", 8);
  const double omega = args.get_double("omega", 16.0);
  const std::string device = args.get_string("device", "a100");

  // --- discretization ----------------------------------------------------
  WallTimer t_mesh;
  const fem::HexMesh mesh = fem::HexMesh::torus(nt, nc, nc);
  const fem::EdgeSystem sys = fem::assemble_maxwell(
      mesh, omega, fem::paper_maxwell_load(omega, omega / 1.05));
  std::printf("indefinite Maxwell on a torus (%dx%dx%d hexes), omega=%g\n",
              nt, nc, nc, omega);
  std::printf("N = %d edge dofs, nnz = %lld  (assembled in %.2f s)\n\n",
              sys.a.rows(), static_cast<long long>(sys.a.nnz()),
              t_mesh.seconds());

  // The device (and its trace session) must outlive the solver: the
  // factored fronts are DeviceBuffers that release through the device on
  // destruction.
  gpusim::DeviceModel model = device == "mi100"
                                  ? gpusim::DeviceModel::mi100()
                                  : device == "cpu"
                                        ? gpusim::DeviceModel::xeon6140x2()
                                        : gpusim::DeviceModel::a100();
  gpusim::Device dev(model);
  trace::TraceSession trace_session(dev, args.get_string("trace", ""));

  // --- phase 1: reordering and symbolic analysis --------------------------
  sparse::SolverOptions opts;
  opts.nd.leaf_size = 16;
  // Mixed-precision LU-IR (DESIGN.md §14): factor under --precision, then
  // recover FP64 accuracy through the refinement loop in phase 3; a
  // non-converged FP32-path solve refactors in FP64 automatically.
  const std::string prec = args.get_string("precision", "f64");
  IRRLU_CHECK_MSG(
      sparse::policy_from_string(prec.c_str(), opts.factor.precision),
      "--precision must be f64, f32, or adaptive (got '" << prec << "')");
  sparse::SparseDirectSolver solver(opts);
  WallTimer t_analyze;
  solver.analyze(sys.a);
  const auto& sym = solver.symbolic();
  std::printf("phase 1 (analysis):     %.2f s host\n", t_analyze.seconds());
  std::printf("  assembly tree: %zu fronts over %zu levels, largest front "
              "%d\n",
              sym.fronts.size(), sym.levels.size(), sym.max_front_dim);
  std::printf("  predicted factor: %.3g flops, %lld nonzeros\n",
              sym.factor_flops, static_cast<long long>(sym.factor_nnz));

  // --- phase 2: numeric factorization -------------------------------------
  solver.factor(dev);
  const auto& num = solver.numeric();
  std::printf("phase 2 (factorization) on %s:\n", model.name.c_str());
  std::printf("  %.4f simulated s, %ld launches, %.1f MB device peak\n",
              num.factor_seconds(), num.launch_count(),
              num.peak_device_bytes() / 1e6);

  // Robustness diagnostics of the factorization (the paper reports the
  // Maxwell system is indefinite — exactly where these matter).
  const auto& frep = num.report();
  std::printf("  numerics: %ld boosted pivots, %d zero-pivot fronts, "
              "growth %.3g\n",
              frep.boosted_pivots, frep.zero_pivot_fronts,
              frep.pivot_growth);
  if (frep.fp32_fronts > 0)
    std::printf("  precision: policy %s, %ld of %d fronts in FP32\n",
                sparse::to_string(frep.precision_policy), frep.fp32_fronts,
                frep.fronts);

  // --- phase 3: solve + adaptive iterative refinement ----------------------
  std::vector<double> b(sys.b.begin(), sys.b.end());
  const auto rep = solver.solve_report(b);
  const auto& x = rep.x;
  std::printf("phase 3 (solve):        status = %s\n",
              sparse::to_string(rep.status));
  std::printf("  componentwise backward error = %.2e after %d refinement "
              "step(s)\n",
              rep.berr, rep.refine_steps);
  if (rep.refactored_fp64)
    std::printf("  (FP32 LU-IR did not reach tolerance; automatically "
                "refactored in FP64)\n");
  std::printf("  normwise residual = %.2e, condest_1 = %.3g\n",
              solver.residual(x, b), num.condest_1());

  // A physical sanity number: the discrete field energy.
  double emax = 0;
  for (double v : x) emax = std::max(emax, std::abs(v));
  std::printf("\nmax |E| circulation: %.4g\n", emax);

  if (args.get_bool("mem-report")) {
    const double pred = static_cast<double>(frep.predicted_peak_bytes);
    const double meas = static_cast<double>(frep.measured_peak_bytes);
    std::printf("\nmemory report (factorization window):\n");
    std::printf("  measured peak:  %.2f MB\n", meas / 1e6);
    std::printf("  predicted peak: %.2f MB (symbolic, %s)  ratio %.4f\n",
                pred / 1e6, sparse::to_string(opts.factor.memory),
                meas > 0 ? pred / meas : 0.0);
    if (trace_session.enabled()) {
      std::printf("\n");
      trace::print_memory_report(std::cout, *trace_session.tracer());
    } else {
      std::printf("  (run with --trace for the per-tag attribution table)\n");
    }
  }

  if (trace_session.enabled()) {
    trace_session.write();
    std::printf("\nwrote trace: %s (load in Perfetto / chrome://tracing)\n",
                trace_session.path().c_str());
    std::printf("wrote summary: %s\n", trace_session.summary_path().c_str());
  }
  return 0;
}
