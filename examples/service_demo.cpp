// Solver-service demo: drive a stream of solve requests from several
// tenants through SolverService and watch the pattern-keyed cache,
// interleaved batching, and admission control at work.
//
//   build/examples/service_demo [--requests N] [--flush-window W]
//                               [--patterns P] [--budget-mb M]
//                               [--max-cached K] [--device NAME]
//                               [--trace out.json]
//
// --trace (or the IRRLU_TRACE environment variable) attaches a recorder
// and writes the Chrome trace plus the v3 summary JSON — including the
// critical-path analysis and the service's per-phase/per-tenant latency
// histograms — on exit; the per-tenant table then gains p50/p90/p99
// latency columns from the same registry.
//
// The replay stream models the paper's motivating applications: a few
// distinct sparsity patterns (one per tenant — an electromagnetics mesh, a
// power grid, a circuit), revisited over and over with drifting values
// (refactor) or identical values (factor reuse), plus occasional
// right-hand-side bursts that exercise the interleaved many-RHS path.
// Prints per-request provenance and the per-tenant accounting table.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "service/solver_service.hpp"
#include "sparse/csr.hpp"
#include "sparse/solver.hpp"
#include "trace/histogram.hpp"
#include "trace/session.hpp"

using namespace irrlu;
using service::SolveRequest;
using service::SolveResponse;

namespace {

std::vector<double> random_rhs(int n, Rng& rng) {
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1, 1);
  return b;
}

gpusim::DeviceModel model_by_name(const std::string& name) {
  if (name == "mi100") return gpusim::DeviceModel::mi100();
  if (name == "max1550") return gpusim::DeviceModel::max1550();
  if (name == "xeon6140x2") return gpusim::DeviceModel::xeon6140x2();
  if (name == "test_tiny") return gpusim::DeviceModel::test_tiny();
  return gpusim::DeviceModel::a100();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int requests = args.get_int("requests", 32);
  const int window = args.get_int("flush-window", 8);
  const int npat = args.get_int("patterns", 3);
  const int budget_mb = args.get_int("budget-mb", 0);
  const int max_cached = args.get_int("max-cached", 8);
  const std::string device = args.get_string("device", "a100");

  gpusim::Device dev(model_by_name(device));
  trace::TraceSession trace_session(dev, args.get_string("trace", ""));
  service::ServiceOptions opts;
  opts.solver.nd.leaf_size = 16;
  opts.max_cached_patterns = static_cast<std::size_t>(max_cached);
  opts.memory_budget_bytes =
      static_cast<std::size_t>(budget_mb) * std::size_t{1} << 20;
  service::SolverService svc(dev, opts);

  // One sparsity pattern per tenant; same pattern, drifting values.
  struct Workload {
    std::string tenant;
    sparse::CsrMatrix a;
  };
  std::vector<Workload> loads;
  const std::vector<std::string> names = {"em", "power", "circuit", "mems",
                                          "thermal", "acoustic"};
  for (int p = 0; p < npat; ++p)
    loads.push_back({names[static_cast<std::size_t>(p) % names.size()] +
                         (p >= static_cast<int>(names.size())
                              ? std::to_string(p)
                              : ""),
                     sparse::laplacian2d(16 + 2 * p, 16 + p)});

  std::printf("solver service demo: %d requests, %d patterns, flush window "
              "%d, budget %s\n\n",
              requests, npat, window,
              budget_mb > 0 ? (std::to_string(budget_mb) + " MiB").c_str()
                            : "unlimited");
  std::printf("%-4s %-9s %-7s %-10s %-9s %-6s %-10s %s\n", "req", "tenant",
              "n", "admission", "symbolic", "factor", "batch", "status");

  Rng rng(11);
  int submitted = 0, base = 0;
  auto drain = [&] {
    const auto out = svc.flush();
    for (std::size_t i = 0; i < out.size(); ++i) {
      const SolveResponse& r = out[i];
      std::printf("%-4d %-9s %-7d %-10s %-9s %-6s %-10d %s\n",
                  base + static_cast<int>(i),
                  loads[(static_cast<std::size_t>(base) + i) % loads.size()]
                      .tenant.c_str(),
                  static_cast<int>(r.report.x.size()),
                  service::to_string(r.admission),
                  r.symbolic_cache_hit ? "hit" : "miss",
                  r.factor_reused ? "reuse" : "build", r.batch_width,
                  sparse::to_string(r.report.status));
    }
    base += static_cast<int>(out.size());
  };

  for (int q = 0; q < requests; ++q) {
    Workload& wl = loads[static_cast<std::size_t>(q) % loads.size()];
    // Values drift periodically (a modulus coprime to the pattern cycle,
    // so every tenant sees refactors) — otherwise the resident factor
    // serves the request untouched.
    if (q >= npat && q % 4 == 0)
      for (auto& v : wl.a.val()) v *= 1.0 + 0.01 * rng.uniform(-1, 1);
    SolveRequest req;
    req.tenant = wl.tenant;
    req.a = wl.a;
    req.b = random_rhs(wl.a.rows(), rng);
    svc.submit(std::move(req));
    ++submitted;
    if (static_cast<int>(svc.pending()) >= window || q + 1 == requests)
      drain();
  }

  const auto& st = svc.stats();
  std::printf("\nstream totals: %ld requests in %d submissions\n",
              st.requests, submitted);
  std::printf("  symbolic: %ld analyze runs, %ld hits (rate %.3f)\n",
              st.analyze_runs, st.symbolic_hits, st.symbolic_hit_rate());
  std::printf("  numeric:  %ld factors, %ld refactors, %ld reuses\n",
              st.factors, st.refactors, st.factor_reuses);
  std::printf("  batching: %ld interleaved sweeps for %ld RHS "
              "(%.1f RHS/sweep)\n",
              st.batches, st.batched_rhs,
              st.batches > 0 ? static_cast<double>(st.batched_rhs) /
                                   static_cast<double>(st.batches)
                             : 0.0);
  std::printf("  cache:    %zu patterns resident (%.2f MiB), %ld evictions, "
              "%ld rejected\n",
              svc.cached_patterns(),
              static_cast<double>(svc.resident_factor_bytes()) / (1 << 20),
              st.evictions, st.rejected);

  std::printf("\nper-tenant:\n");
  const bool traced = trace_session.enabled();
  std::printf(traced ? "  %-10s %9s %14s %14s %9s %10s %10s %10s\n"
                     : "  %-10s %9s %14s %14s %9s\n",
              "tenant", "requests", "symbolic hits", "factor reuses",
              "rejected", "p50 ms", "p90 ms", "p99 ms");
  for (const auto& [tenant, t] : st.tenants) {
    std::printf("  %-10s %9ld %14ld %14ld %9ld", tenant.c_str(), t.requests,
                t.symbolic_hits, t.factor_reuses, t.rejected);
    if (traced) {
      // Simulated-latency percentiles from the tracer's histogram
      // registry (the same data the summary JSON's "histograms" carries).
      const trace::Histogram& h = trace_session.tracer()->histogram(
          "service.tenant." + tenant + ".latency_s");
      std::printf(" %10.3f %10.3f %10.3f", h.percentile(0.50) * 1e3,
                  h.percentile(0.90) * 1e3, h.percentile(0.99) * 1e3);
    }
    std::printf("\n");
  }

  std::printf("\nsimulated device time: %.6f s\n", dev.synchronize_all());
  if (traced) {
    trace_session.write();
    std::printf("trace written to %s (summary: %s, report: %s)\n",
                trace_session.path().c_str(),
                trace_session.summary_path().c_str(),
                trace_session.report_path().c_str());
  }
  return 0;
}
