// Solving an external system: reads a Matrix Market file (e.g. from the
// SuiteSparse collection), runs the full pipeline, and reports phase
// statistics — or, when no file is given, writes a demo .mtx first and
// then consumes it, so the example is runnable standalone.
//
//   build/examples/import_solve [path/to/matrix.mtx] [--engine batched|
//       looped|legacy|rightlooking] [--device a100|mi100|cpu]
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "sparse/io.hpp"
#include "sparse/solver.hpp"

using namespace irrlu;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  std::string path;
  if (!args.positional().empty()) {
    path = args.positional()[0];
  } else {
    path = "/tmp/irrlu_demo.mtx";
    // An indefinite 3-D Helmholtz-like demo system.
    sparse::write_matrix_market_file(path,
                                     sparse::laplacian3d(9, 9, 9, -2.4));
    std::printf("no input given; wrote a demo system to %s\n", path.c_str());
  }

  const sparse::CsrMatrix a = sparse::read_matrix_market_file(path);
  std::printf("read %s: N = %d, nnz = %lld\n", path.c_str(), a.rows(),
              static_cast<long long>(a.nnz()));

  sparse::SolverOptions opts;
  const std::string engine = args.get_string("engine", "batched");
  opts.factor.engine =
      engine == "looped"
          ? sparse::Engine::kLooped
          : engine == "legacy"
                ? sparse::Engine::kLegacySmallBatch
                : engine == "rightlooking" ? sparse::Engine::kRightLooking
                                           : sparse::Engine::kBatched;
  opts.factor.memory = sparse::MemoryMode::kStackedLevels;
  sparse::SparseDirectSolver solver(opts);
  solver.analyze(a);

  const std::string device = args.get_string("device", "a100");
  gpusim::Device dev(device == "mi100"
                         ? gpusim::DeviceModel::mi100()
                         : device == "cpu"
                               ? gpusim::DeviceModel::xeon6140x2()
                               : gpusim::DeviceModel::a100());
  solver.factor(dev);

  Rng rng(1);
  std::vector<double> b(static_cast<std::size_t>(a.rows()));
  for (auto& v : b) v = rng.uniform(-1, 1);
  const auto x = solver.solve(b);

  std::printf("engine %s on %s: factor %.4f sim-s (%ld launches, peak %.1f"
              " MB), residual %.2e\n",
              sparse::to_string(opts.factor.engine), dev.model().name.c_str(),
              solver.numeric().factor_seconds(),
              solver.numeric().launch_count(),
              solver.numeric().peak_device_bytes() / 1e6,
              solver.residual(x, b));
  return 0;
}
