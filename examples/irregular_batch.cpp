// Working with the expanded interface directly (§IV-A): performs a blocked
// two-step factorization "by hand" with offset-carrying irrGEMM / irrTRSM
// calls on submatrices, demonstrating how the interface eliminates pointer
// and integer arithmetic between steps — and how DCWI classifies each
// matrix's workload (full / partial / none) at every step.
//
//   build/examples/irregular_batch
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "irrblas/dcwi.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/verify.hpp"

using namespace irrlu;
using namespace irrlu::batch;

int main() {
  gpusim::Device dev(gpusim::DeviceModel::a100());

  // Three matrices as in the paper's Figure 4: sizes that finish at
  // different stages of the blocked factorization.
  const std::vector<int> sizes = {15, 8, 3};
  VBatch<double> A(dev, sizes), A0(dev, sizes);
  Rng rng(5);
  A.fill_uniform(rng);
  A0.copy_from(A);
  PivotBatch piv(dev, sizes, sizes);
  const int nb = 5;  // blocked decomposition, five columns at a time

  std::printf("blocked LU by hand, 3 matrices (15, 8, 3), panel width %d\n",
              nb);
  for (int j = 0; j < 15; j += nb) {
    // DCWI classifies each matrix at this iteration, as in Fig. 4/5.
    std::printf("iteration j=%2d:", j);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const LuWork w = dcwi_lu(15 - j, 15 - j, j, j, sizes[i], sizes[i]);
      std::printf("  matrix %zu: %s (%dx%d)", i,
                  w.none() ? "none" : (w.kmin() > nb ? "full" : "partial"),
                  w.m, w.n);
    }
    std::printf("\n");

    // Panel at offset (j, j); pivots land at absolute row indices.
    irr_getf2_fused<double>(dev, dev.stream(), 15 - j, nb, A.ptrs(), A.lda(),
                            j, j, A.m_vec(), A.n_vec(), piv.ptrs(),
                            piv.info(), 3);
    // Row interchanges left and right of the panel.
    irr_laswp<double>(dev, dev.stream(), j, nb, A.ptrs(), A.lda(), A.m_vec(),
                      A.n_vec(), piv.ptrs(), 3);
    // U block row: solve L11 X = A12. The same pointer arrays, only the
    // offsets change — no per-step setup kernels.
    irr_trsm<double>(dev, dev.stream(), la::Side::Left, la::Uplo::Lower,
                     la::Trans::No, la::Diag::Unit, nb, 15 - j - nb, 1.0,
                     A.ptrs(), A.lda(), j, j, A.ptrs(), A.lda(), j, j + nb,
                     A.m_vec(), A.n_vec(), 3);
    // Trailing update A22 -= A21 * A12.
    irr_gemm<double>(dev, dev.stream(), la::Trans::No, la::Trans::No,
                     15 - j - nb, 15 - j - nb, nb, -1.0, A.ptrs(), A.lda(),
                     j + nb, j, A.ptrs(), A.lda(), j, j + nb, 1.0, A.ptrs(),
                     A.lda(), j + nb, j + nb, A.m_vec(), A.n_vec(),
                     A.m_vec(), 3);
  }
  dev.synchronize_all();

  for (std::size_t i = 0; i < sizes.size(); ++i)
    std::printf("matrix %zu: scaled LU residual %.2f\n", i,
                la::lu_residual(A.view(static_cast<int>(i)),
                                piv.ipiv_of(static_cast<int>(i)),
                                A0.view(static_cast<int>(i))));
  std::printf("(values of O(1..10) indicate a backward-stable result)\n");
  return 0;
}
