// Quickstart: factor a batch of matrices of completely different sizes
// with irrLU-GPU and solve one right-hand side per matrix.
//
//   build/examples/quickstart [--batch N] [--max-size M]
//
// Walks through the library's core concepts: the simulated device, the
// VBatch container, the flat irregular-batch interface, and verification.
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/lapack.hpp"
#include "lapack/verify.hpp"

using namespace irrlu;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int batch = args.get_int("batch", 100);
  const int max_size = args.get_int("max-size", 200);

  // 1. A simulated device. All kernels execute their numerics for real on
  //    the host; the device model provides GPU-like semantics (thread
  //    blocks, shared-memory limits, streams) and a simulated clock.
  gpusim::Device dev(gpusim::DeviceModel::a100());

  // 2. A batch of square matrices of completely arbitrary sizes — the
  //    paper's headline workload. Sizes 1 .. max_size, no distribution
  //    assumptions whatsoever.
  Rng rng(/*seed=*/2024);
  const std::vector<int> sizes = rng.uniform_sizes(batch, 1, max_size);
  batch::VBatch<double> A(dev, sizes), A0(dev, sizes);
  A.fill_uniform(rng);
  A0.copy_from(A);  // keep originals for verification
  batch::PivotBatch piv(dev, sizes, sizes);

  // 3. One call factors everything: the host loop inside irr_getrf is
  //    written against the *largest* workload; DCWI retires each matrix
  //    exactly when its own factorization completes.
  batch::irr_getrf<double>(dev, dev.stream(), A.max_m(), A.max_n(), A.ptrs(),
                           A.lda(), /*Ai=*/0, /*Aj=*/0, A.m_vec(), A.n_vec(),
                           piv.ptrs(), piv.info(), batch);
  const double sim_seconds = dev.synchronize_all();

  // 4. Verify: reconstruct P*L*U per matrix and solve a system.
  double worst = 0;
  for (int i = 0; i < batch; ++i)
    worst = std::max(worst,
                     la::lu_residual(A.view(i), piv.ipiv_of(i), A0.view(i)));

  const int demo = batch / 2;
  const int n = sizes[static_cast<std::size_t>(demo)];
  std::vector<double> b(static_cast<std::size_t>(n), 1.0), x = b;
  la::getrs(la::Trans::No, n, 1, A.view(demo).data(), n, piv.ipiv_of(demo),
            x.data(), n);

  std::printf("factored %d matrices, sizes 1..%d\n", batch, max_size);
  std::printf("simulated A100 time: %.3f ms over %ld kernel launches\n",
              sim_seconds * 1e3, dev.launch_count());
  std::printf("worst scaled LU residual: %.2f (O(1..10) = backward stable)\n",
              worst);
  std::printf("solve residual on matrix %d (n=%d): %.2e\n", demo, n,
              la::solve_residual(A0.view(demo), x.data(), b.data()));
  return 0;
}
