// The preprocessing substrates in isolation: MC64-style matching/scaling
// and the fill-reducing orderings (nested dissection vs minimum degree vs
// reverse Cuthill-McKee vs natural), compared by the fill they produce on
// a model problem — the solver-agnostic part of the paper's phase 1.
//
//   build/examples/ordering_demo [--nx 24] [--ny 24]
#include <cstdio>
#include <numeric>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "ordering/graph.hpp"
#include "ordering/mc64.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/csr.hpp"
#include "sparse/symbolic.hpp"

using namespace irrlu;
using namespace irrlu::ordering;

namespace {

// Fill of a symbolic Cholesky-style elimination in the given order,
// counted with a quotient-free sparse algorithm (fine up to a few
// thousand vertices).
long fill_of(const Graph& g, const std::vector<int>& perm) {
  const int n = g.num_vertices();
  std::vector<int> pos(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    pos[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
  std::vector<std::vector<int>> adj(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v)
    for (int k = g.ptr()[static_cast<std::size_t>(v)];
         k < g.ptr()[static_cast<std::size_t>(v) + 1]; ++k)
      adj[static_cast<std::size_t>(v)].push_back(
          g.adj()[static_cast<std::size_t>(k)]);
  long fill = 0;
  std::vector<char> mark(static_cast<std::size_t>(n), 0);
  for (int s = 0; s < n; ++s) {
    const int v = perm[static_cast<std::size_t>(s)];
    std::vector<int> later;
    for (int u : adj[static_cast<std::size_t>(v)])
      if (pos[static_cast<std::size_t>(u)] > s &&
          !mark[static_cast<std::size_t>(u)]) {
        mark[static_cast<std::size_t>(u)] = 1;
        later.push_back(u);
      }
    for (int u : later) mark[static_cast<std::size_t>(u)] = 0;
    fill += static_cast<long>(later.size());
    // Clique among the later neighbors.
    for (std::size_t i = 0; i < later.size(); ++i)
      for (std::size_t j = i + 1; j < later.size(); ++j) {
        adj[static_cast<std::size_t>(later[i])].push_back(later[j]);
        adj[static_cast<std::size_t>(later[j])].push_back(later[i]);
      }
  }
  return fill;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const int nx = args.get_int("nx", 24);
  const int ny = args.get_int("ny", 24);

  // --- MC64 on a badly scaled unsymmetric matrix -------------------------
  Rng rng(9);
  sparse::CsrMatrix lap = sparse::laplacian2d(8, 8);
  auto val = lap.val();
  for (std::size_t k = 0; k < val.size(); ++k)
    val[k] *= std::pow(10.0, rng.uniform_int(-5, 5));
  sparse::CsrMatrix bad(lap.rows(), lap.ptr(), lap.ind(), val);
  const Mc64Result mc = mc64_scaling(bad.rows(), bad.ptr().data(),
                                     bad.ind().data(), bad.val().data());
  double max_off = 0;
  int unit_diag = 0;
  for (int i = 0; i < bad.rows(); ++i)
    for (int k = bad.ptr()[static_cast<std::size_t>(i)];
         k < bad.ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = bad.ind()[static_cast<std::size_t>(k)];
      const double s = mc.dr[static_cast<std::size_t>(i)] *
                       std::abs(bad.val()[static_cast<std::size_t>(k)]) *
                       mc.dc[static_cast<std::size_t>(j)];
      if (j == mc.col_of_row[static_cast<std::size_t>(i)])
        unit_diag += std::abs(s - 1.0) < 1e-9;
      else
        max_off = std::max(max_off, s);
    }
  std::printf("MC64 matching/scaling on a matrix with entries spanning 10"
              " orders:\n  matched diagonal |.| == 1 for %d/%d rows, max"
              " off-diagonal %.3f\n\n",
              unit_diag, bad.rows(), max_off);

  // --- ordering comparison ------------------------------------------------
  const Graph g = Graph::grid2d(nx, ny);
  std::printf("fill comparison on a %dx%d grid (%d vertices):\n\n", nx, ny,
              g.num_vertices());
  TextTable table({"ordering", "fill entries", "vs natural"});

  std::vector<int> natural(static_cast<std::size_t>(g.num_vertices()));
  std::iota(natural.begin(), natural.end(), 0);
  const long f_nat = fill_of(g, natural);
  table.add_row("natural", f_nat, "1.00");

  const auto f_rcm = fill_of(g, rcm(g));
  table.add_row("reverse Cuthill-McKee", f_rcm,
                TextTable::fmt(double(f_rcm) / f_nat, 2));

  const auto f_md = fill_of(g, minimum_degree(g));
  table.add_row("minimum degree", f_md,
                TextTable::fmt(double(f_md) / f_nat, 2));

  const Ordering nd = nested_dissection(g);
  const long f_nd = fill_of(g, nd.perm);
  table.add_row("nested dissection", f_nd,
                TextTable::fmt(double(f_nd) / f_nat, 2));
  table.print();

  std::printf("\nND separator tree: %zu nodes; the paper's solver builds "
              "its assembly tree from exactly this structure.\n",
              nd.tree.size());
  return 0;
}
