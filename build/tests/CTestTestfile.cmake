# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_lapack "/root/repo/build/tests/test_lapack")
set_tests_properties(test_lapack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;13;irrlu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_gpusim "/root/repo/build/tests/test_gpusim")
set_tests_properties(test_gpusim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;14;irrlu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_irrblas "/root/repo/build/tests/test_irrblas")
set_tests_properties(test_irrblas PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;15;irrlu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_refbatch "/root/repo/build/tests/test_refbatch")
set_tests_properties(test_refbatch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;16;irrlu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ordering "/root/repo/build/tests/test_ordering")
set_tests_properties(test_ordering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;17;irrlu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sparse "/root/repo/build/tests/test_sparse")
set_tests_properties(test_sparse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;18;irrlu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_fem "/root/repo/build/tests/test_fem")
set_tests_properties(test_fem PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;19;irrlu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_qr "/root/repo/build/tests/test_qr")
set_tests_properties(test_qr PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;20;irrlu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;21;irrlu_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_complex "/root/repo/build/tests/test_complex")
set_tests_properties(test_complex PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;10;add_test;/root/repo/tests/CMakeLists.txt;22;irrlu_add_test;/root/repo/tests/CMakeLists.txt;0;")
