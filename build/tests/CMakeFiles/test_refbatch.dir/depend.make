# Empty dependencies file for test_refbatch.
# This may be replaced when dependencies are built.
