file(REMOVE_RECURSE
  "CMakeFiles/test_refbatch.dir/test_refbatch.cpp.o"
  "CMakeFiles/test_refbatch.dir/test_refbatch.cpp.o.d"
  "test_refbatch"
  "test_refbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_refbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
