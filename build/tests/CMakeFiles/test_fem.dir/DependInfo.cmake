
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_fem.cpp" "tests/CMakeFiles/test_fem.dir/test_fem.cpp.o" "gcc" "tests/CMakeFiles/test_fem.dir/test_fem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/irrlu_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/irrlu_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/lapack/CMakeFiles/irrlu_lapack.dir/DependInfo.cmake"
  "/root/repo/build/src/irrblas/CMakeFiles/irrlu_irrblas.dir/DependInfo.cmake"
  "/root/repo/build/src/refbatch/CMakeFiles/irrlu_refbatch.dir/DependInfo.cmake"
  "/root/repo/build/src/ordering/CMakeFiles/irrlu_ordering.dir/DependInfo.cmake"
  "/root/repo/build/src/sparse/CMakeFiles/irrlu_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/fem/CMakeFiles/irrlu_fem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
