# Empty dependencies file for test_complex.
# This may be replaced when dependencies are built.
