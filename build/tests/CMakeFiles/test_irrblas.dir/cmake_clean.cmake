file(REMOVE_RECURSE
  "CMakeFiles/test_irrblas.dir/test_irrblas.cpp.o"
  "CMakeFiles/test_irrblas.dir/test_irrblas.cpp.o.d"
  "test_irrblas"
  "test_irrblas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irrblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
