# Empty dependencies file for test_irrblas.
# This may be replaced when dependencies are built.
