# Empty dependencies file for ordering_demo.
# This may be replaced when dependencies are built.
