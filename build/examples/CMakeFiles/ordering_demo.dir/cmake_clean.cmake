file(REMOVE_RECURSE
  "CMakeFiles/ordering_demo.dir/ordering_demo.cpp.o"
  "CMakeFiles/ordering_demo.dir/ordering_demo.cpp.o.d"
  "ordering_demo"
  "ordering_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ordering_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
