# Empty dependencies file for maxwell_solver.
# This may be replaced when dependencies are built.
