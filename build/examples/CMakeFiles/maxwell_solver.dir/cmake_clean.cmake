file(REMOVE_RECURSE
  "CMakeFiles/maxwell_solver.dir/maxwell_solver.cpp.o"
  "CMakeFiles/maxwell_solver.dir/maxwell_solver.cpp.o.d"
  "maxwell_solver"
  "maxwell_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maxwell_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
