file(REMOVE_RECURSE
  "CMakeFiles/irregular_batch.dir/irregular_batch.cpp.o"
  "CMakeFiles/irregular_batch.dir/irregular_batch.cpp.o.d"
  "irregular_batch"
  "irregular_batch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irregular_batch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
