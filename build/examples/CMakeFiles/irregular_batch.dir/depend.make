# Empty dependencies file for irregular_batch.
# This may be replaced when dependencies are built.
