# Empty dependencies file for import_solve.
# This may be replaced when dependencies are built.
