file(REMOVE_RECURSE
  "CMakeFiles/import_solve.dir/import_solve.cpp.o"
  "CMakeFiles/import_solve.dir/import_solve.cpp.o.d"
  "import_solve"
  "import_solve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/import_solve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
