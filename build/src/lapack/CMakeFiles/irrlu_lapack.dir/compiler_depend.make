# Empty compiler generated dependencies file for irrlu_lapack.
# This may be replaced when dependencies are built.
