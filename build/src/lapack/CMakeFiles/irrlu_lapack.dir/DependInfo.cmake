
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lapack/blas.cpp" "src/lapack/CMakeFiles/irrlu_lapack.dir/blas.cpp.o" "gcc" "src/lapack/CMakeFiles/irrlu_lapack.dir/blas.cpp.o.d"
  "/root/repo/src/lapack/lapack.cpp" "src/lapack/CMakeFiles/irrlu_lapack.dir/lapack.cpp.o" "gcc" "src/lapack/CMakeFiles/irrlu_lapack.dir/lapack.cpp.o.d"
  "/root/repo/src/lapack/qr.cpp" "src/lapack/CMakeFiles/irrlu_lapack.dir/qr.cpp.o" "gcc" "src/lapack/CMakeFiles/irrlu_lapack.dir/qr.cpp.o.d"
  "/root/repo/src/lapack/verify.cpp" "src/lapack/CMakeFiles/irrlu_lapack.dir/verify.cpp.o" "gcc" "src/lapack/CMakeFiles/irrlu_lapack.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/irrlu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
