file(REMOVE_RECURSE
  "CMakeFiles/irrlu_lapack.dir/blas.cpp.o"
  "CMakeFiles/irrlu_lapack.dir/blas.cpp.o.d"
  "CMakeFiles/irrlu_lapack.dir/lapack.cpp.o"
  "CMakeFiles/irrlu_lapack.dir/lapack.cpp.o.d"
  "CMakeFiles/irrlu_lapack.dir/qr.cpp.o"
  "CMakeFiles/irrlu_lapack.dir/qr.cpp.o.d"
  "CMakeFiles/irrlu_lapack.dir/verify.cpp.o"
  "CMakeFiles/irrlu_lapack.dir/verify.cpp.o.d"
  "libirrlu_lapack.a"
  "libirrlu_lapack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irrlu_lapack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
