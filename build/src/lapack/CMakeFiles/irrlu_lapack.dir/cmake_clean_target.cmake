file(REMOVE_RECURSE
  "libirrlu_lapack.a"
)
