# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("gpusim")
subdirs("lapack")
subdirs("irrblas")
subdirs("refbatch")
subdirs("ordering")
subdirs("sparse")
subdirs("fem")
