file(REMOVE_RECURSE
  "CMakeFiles/irrlu_sparse.dir/csr.cpp.o"
  "CMakeFiles/irrlu_sparse.dir/csr.cpp.o.d"
  "CMakeFiles/irrlu_sparse.dir/io.cpp.o"
  "CMakeFiles/irrlu_sparse.dir/io.cpp.o.d"
  "CMakeFiles/irrlu_sparse.dir/multifrontal.cpp.o"
  "CMakeFiles/irrlu_sparse.dir/multifrontal.cpp.o.d"
  "CMakeFiles/irrlu_sparse.dir/solver.cpp.o"
  "CMakeFiles/irrlu_sparse.dir/solver.cpp.o.d"
  "CMakeFiles/irrlu_sparse.dir/symbolic.cpp.o"
  "CMakeFiles/irrlu_sparse.dir/symbolic.cpp.o.d"
  "libirrlu_sparse.a"
  "libirrlu_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irrlu_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
