# Empty compiler generated dependencies file for irrlu_sparse.
# This may be replaced when dependencies are built.
