file(REMOVE_RECURSE
  "libirrlu_sparse.a"
)
