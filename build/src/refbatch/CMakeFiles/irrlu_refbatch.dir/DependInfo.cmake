
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/refbatch/cpu_batch.cpp" "src/refbatch/CMakeFiles/irrlu_refbatch.dir/cpu_batch.cpp.o" "gcc" "src/refbatch/CMakeFiles/irrlu_refbatch.dir/cpu_batch.cpp.o.d"
  "/root/repo/src/refbatch/inv_trsm.cpp" "src/refbatch/CMakeFiles/irrlu_refbatch.dir/inv_trsm.cpp.o" "gcc" "src/refbatch/CMakeFiles/irrlu_refbatch.dir/inv_trsm.cpp.o.d"
  "/root/repo/src/refbatch/streamed_solver.cpp" "src/refbatch/CMakeFiles/irrlu_refbatch.dir/streamed_solver.cpp.o" "gcc" "src/refbatch/CMakeFiles/irrlu_refbatch.dir/streamed_solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/irrblas/CMakeFiles/irrlu_irrblas.dir/DependInfo.cmake"
  "/root/repo/build/src/gpusim/CMakeFiles/irrlu_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/lapack/CMakeFiles/irrlu_lapack.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/irrlu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
