# Empty dependencies file for irrlu_refbatch.
# This may be replaced when dependencies are built.
