file(REMOVE_RECURSE
  "libirrlu_refbatch.a"
)
