file(REMOVE_RECURSE
  "CMakeFiles/irrlu_refbatch.dir/cpu_batch.cpp.o"
  "CMakeFiles/irrlu_refbatch.dir/cpu_batch.cpp.o.d"
  "CMakeFiles/irrlu_refbatch.dir/inv_trsm.cpp.o"
  "CMakeFiles/irrlu_refbatch.dir/inv_trsm.cpp.o.d"
  "CMakeFiles/irrlu_refbatch.dir/streamed_solver.cpp.o"
  "CMakeFiles/irrlu_refbatch.dir/streamed_solver.cpp.o.d"
  "libirrlu_refbatch.a"
  "libirrlu_refbatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irrlu_refbatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
