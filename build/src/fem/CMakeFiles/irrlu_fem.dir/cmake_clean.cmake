file(REMOVE_RECURSE
  "CMakeFiles/irrlu_fem.dir/mesh.cpp.o"
  "CMakeFiles/irrlu_fem.dir/mesh.cpp.o.d"
  "CMakeFiles/irrlu_fem.dir/nedelec.cpp.o"
  "CMakeFiles/irrlu_fem.dir/nedelec.cpp.o.d"
  "CMakeFiles/irrlu_fem.dir/nodal.cpp.o"
  "CMakeFiles/irrlu_fem.dir/nodal.cpp.o.d"
  "libirrlu_fem.a"
  "libirrlu_fem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irrlu_fem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
