# Empty dependencies file for irrlu_fem.
# This may be replaced when dependencies are built.
