file(REMOVE_RECURSE
  "libirrlu_fem.a"
)
