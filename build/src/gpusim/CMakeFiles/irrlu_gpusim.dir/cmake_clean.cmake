file(REMOVE_RECURSE
  "CMakeFiles/irrlu_gpusim.dir/device.cpp.o"
  "CMakeFiles/irrlu_gpusim.dir/device.cpp.o.d"
  "CMakeFiles/irrlu_gpusim.dir/device_model.cpp.o"
  "CMakeFiles/irrlu_gpusim.dir/device_model.cpp.o.d"
  "libirrlu_gpusim.a"
  "libirrlu_gpusim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irrlu_gpusim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
