# Empty dependencies file for irrlu_gpusim.
# This may be replaced when dependencies are built.
