file(REMOVE_RECURSE
  "libirrlu_gpusim.a"
)
