# Empty compiler generated dependencies file for irrlu_common.
# This may be replaced when dependencies are built.
