file(REMOVE_RECURSE
  "libirrlu_common.a"
)
