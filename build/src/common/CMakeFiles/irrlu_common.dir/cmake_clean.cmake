file(REMOVE_RECURSE
  "CMakeFiles/irrlu_common.dir/cli.cpp.o"
  "CMakeFiles/irrlu_common.dir/cli.cpp.o.d"
  "libirrlu_common.a"
  "libirrlu_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irrlu_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
