
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ordering/bisection.cpp" "src/ordering/CMakeFiles/irrlu_ordering.dir/bisection.cpp.o" "gcc" "src/ordering/CMakeFiles/irrlu_ordering.dir/bisection.cpp.o.d"
  "/root/repo/src/ordering/graph.cpp" "src/ordering/CMakeFiles/irrlu_ordering.dir/graph.cpp.o" "gcc" "src/ordering/CMakeFiles/irrlu_ordering.dir/graph.cpp.o.d"
  "/root/repo/src/ordering/mc64.cpp" "src/ordering/CMakeFiles/irrlu_ordering.dir/mc64.cpp.o" "gcc" "src/ordering/CMakeFiles/irrlu_ordering.dir/mc64.cpp.o.d"
  "/root/repo/src/ordering/nested_dissection.cpp" "src/ordering/CMakeFiles/irrlu_ordering.dir/nested_dissection.cpp.o" "gcc" "src/ordering/CMakeFiles/irrlu_ordering.dir/nested_dissection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/irrlu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
