file(REMOVE_RECURSE
  "CMakeFiles/irrlu_ordering.dir/bisection.cpp.o"
  "CMakeFiles/irrlu_ordering.dir/bisection.cpp.o.d"
  "CMakeFiles/irrlu_ordering.dir/graph.cpp.o"
  "CMakeFiles/irrlu_ordering.dir/graph.cpp.o.d"
  "CMakeFiles/irrlu_ordering.dir/mc64.cpp.o"
  "CMakeFiles/irrlu_ordering.dir/mc64.cpp.o.d"
  "CMakeFiles/irrlu_ordering.dir/nested_dissection.cpp.o"
  "CMakeFiles/irrlu_ordering.dir/nested_dissection.cpp.o.d"
  "libirrlu_ordering.a"
  "libirrlu_ordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irrlu_ordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
