# Empty dependencies file for irrlu_ordering.
# This may be replaced when dependencies are built.
