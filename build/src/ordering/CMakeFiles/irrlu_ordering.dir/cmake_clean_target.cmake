file(REMOVE_RECURSE
  "libirrlu_ordering.a"
)
