
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/irrblas/autotune.cpp" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/autotune.cpp.o" "gcc" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/autotune.cpp.o.d"
  "/root/repo/src/irrblas/irr_gemm.cpp" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_gemm.cpp.o" "gcc" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_gemm.cpp.o.d"
  "/root/repo/src/irrblas/irr_geqrf.cpp" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_geqrf.cpp.o" "gcc" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_geqrf.cpp.o.d"
  "/root/repo/src/irrblas/irr_getrf.cpp" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_getrf.cpp.o" "gcc" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_getrf.cpp.o.d"
  "/root/repo/src/irrblas/irr_getrs.cpp" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_getrs.cpp.o" "gcc" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_getrs.cpp.o.d"
  "/root/repo/src/irrblas/irr_laswp.cpp" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_laswp.cpp.o" "gcc" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_laswp.cpp.o.d"
  "/root/repo/src/irrblas/irr_panel.cpp" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_panel.cpp.o" "gcc" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_panel.cpp.o.d"
  "/root/repo/src/irrblas/irr_trsm.cpp" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_trsm.cpp.o" "gcc" "src/irrblas/CMakeFiles/irrlu_irrblas.dir/irr_trsm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gpusim/CMakeFiles/irrlu_gpusim.dir/DependInfo.cmake"
  "/root/repo/build/src/lapack/CMakeFiles/irrlu_lapack.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/irrlu_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
