# Empty compiler generated dependencies file for irrlu_irrblas.
# This may be replaced when dependencies are built.
