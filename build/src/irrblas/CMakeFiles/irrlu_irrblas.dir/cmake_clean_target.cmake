file(REMOVE_RECURSE
  "libirrlu_irrblas.a"
)
