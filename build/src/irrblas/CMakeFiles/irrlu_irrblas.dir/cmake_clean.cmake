file(REMOVE_RECURSE
  "CMakeFiles/irrlu_irrblas.dir/autotune.cpp.o"
  "CMakeFiles/irrlu_irrblas.dir/autotune.cpp.o.d"
  "CMakeFiles/irrlu_irrblas.dir/irr_gemm.cpp.o"
  "CMakeFiles/irrlu_irrblas.dir/irr_gemm.cpp.o.d"
  "CMakeFiles/irrlu_irrblas.dir/irr_geqrf.cpp.o"
  "CMakeFiles/irrlu_irrblas.dir/irr_geqrf.cpp.o.d"
  "CMakeFiles/irrlu_irrblas.dir/irr_getrf.cpp.o"
  "CMakeFiles/irrlu_irrblas.dir/irr_getrf.cpp.o.d"
  "CMakeFiles/irrlu_irrblas.dir/irr_getrs.cpp.o"
  "CMakeFiles/irrlu_irrblas.dir/irr_getrs.cpp.o.d"
  "CMakeFiles/irrlu_irrblas.dir/irr_laswp.cpp.o"
  "CMakeFiles/irrlu_irrblas.dir/irr_laswp.cpp.o.d"
  "CMakeFiles/irrlu_irrblas.dir/irr_panel.cpp.o"
  "CMakeFiles/irrlu_irrblas.dir/irr_panel.cpp.o.d"
  "CMakeFiles/irrlu_irrblas.dir/irr_trsm.cpp.o"
  "CMakeFiles/irrlu_irrblas.dir/irr_trsm.cpp.o.d"
  "libirrlu_irrblas.a"
  "libirrlu_irrblas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irrlu_irrblas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
