file(REMOVE_RECURSE
  "CMakeFiles/fig07_panel.dir/fig07_panel.cpp.o"
  "CMakeFiles/fig07_panel.dir/fig07_panel.cpp.o.d"
  "fig07_panel"
  "fig07_panel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_panel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
