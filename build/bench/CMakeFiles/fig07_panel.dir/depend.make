# Empty dependencies file for fig07_panel.
# This may be replaced when dependencies are built.
