# Empty compiler generated dependencies file for ablation_laswp.
# This may be replaced when dependencies are built.
