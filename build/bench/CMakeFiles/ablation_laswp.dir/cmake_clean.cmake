file(REMOVE_RECURSE
  "CMakeFiles/ablation_laswp.dir/ablation_laswp.cpp.o"
  "CMakeFiles/ablation_laswp.dir/ablation_laswp.cpp.o.d"
  "ablation_laswp"
  "ablation_laswp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_laswp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
