file(REMOVE_RECURSE
  "CMakeFiles/fig11_large_sizes.dir/fig11_large_sizes.cpp.o"
  "CMakeFiles/fig11_large_sizes.dir/fig11_large_sizes.cpp.o.d"
  "fig11_large_sizes"
  "fig11_large_sizes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_large_sizes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
