# Empty dependencies file for fig11_large_sizes.
# This may be replaced when dependencies are built.
