file(REMOVE_RECURSE
  "CMakeFiles/extension_qr.dir/extension_qr.cpp.o"
  "CMakeFiles/extension_qr.dir/extension_qr.cpp.o.d"
  "extension_qr"
  "extension_qr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_qr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
