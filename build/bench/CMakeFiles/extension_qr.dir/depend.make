# Empty dependencies file for extension_qr.
# This may be replaced when dependencies are built.
