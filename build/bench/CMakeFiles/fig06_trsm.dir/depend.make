# Empty dependencies file for fig06_trsm.
# This may be replaced when dependencies are built.
