file(REMOVE_RECURSE
  "CMakeFiles/fig06_trsm.dir/fig06_trsm.cpp.o"
  "CMakeFiles/fig06_trsm.dir/fig06_trsm.cpp.o.d"
  "fig06_trsm"
  "fig06_trsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_trsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
