file(REMOVE_RECURSE
  "CMakeFiles/fig13_front_distribution.dir/fig13_front_distribution.cpp.o"
  "CMakeFiles/fig13_front_distribution.dir/fig13_front_distribution.cpp.o.d"
  "fig13_front_distribution"
  "fig13_front_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_front_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
