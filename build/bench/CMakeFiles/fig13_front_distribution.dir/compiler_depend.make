# Empty compiler generated dependencies file for fig13_front_distribution.
# This may be replaced when dependencies are built.
