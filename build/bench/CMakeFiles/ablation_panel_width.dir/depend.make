# Empty dependencies file for ablation_panel_width.
# This may be replaced when dependencies are built.
