file(REMOVE_RECURSE
  "CMakeFiles/ablation_panel_width.dir/ablation_panel_width.cpp.o"
  "CMakeFiles/ablation_panel_width.dir/ablation_panel_width.cpp.o.d"
  "ablation_panel_width"
  "ablation_panel_width.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_panel_width.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
