// Unit tests for the single-matrix BLAS/LAPACK substrate.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>
#include <type_traits>
#include <vector>

#include "common/cli.hpp"
#include "common/matrix_view.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "lapack/blas.hpp"
#include "lapack/flops.hpp"
#include "lapack/lapack.hpp"
#include "lapack/verify.hpp"

namespace la = irrlu::la;
using irrlu::ConstMatrixView;
using irrlu::Matrix;
using irrlu::MatrixView;
using irrlu::Rng;

namespace {

// Naive reference gemm with explicit index arithmetic.
void ref_gemm(la::Trans ta, la::Trans tb, int m, int n, int k, double alpha,
              ConstMatrixView<double> a, ConstMatrixView<double> b,
              double beta, MatrixView<double> c) {
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i) {
      double acc = 0;
      for (int p = 0; p < k; ++p) {
        const double av = ta == la::Trans::No ? a(i, p) : a(p, i);
        const double bv = tb == la::Trans::No ? b(p, j) : b(j, p);
        acc += av * bv;
      }
      c(i, j) = alpha * acc + beta * c(i, j);
    }
}

double max_diff(ConstMatrixView<double> a, ConstMatrixView<double> b) {
  double d = 0;
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i)
      d = std::max(d, std::abs(a(i, j) - b(i, j)));
  return d;
}

}  // namespace

TEST(Iamax, FindsFirstMaximum) {
  std::vector<double> x = {1.0, -5.0, 5.0, 2.0};
  EXPECT_EQ(la::iamax(4, x.data(), 1), 1);  // ties resolve to first
  EXPECT_EQ(la::iamax(0, x.data(), 1), -1);
  EXPECT_EQ(la::iamax(1, x.data(), 1), 0);
}

TEST(Iamax, LapackSemantics) {
  // Regression for the pre-engine implementation, which returned 0 for
  // empty inputs (ambiguous with "first element") and compared NaN
  // magnitudes with '>' (NaN never wins a '>', so pivots silently skipped
  // NaN-contaminated entries).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> x = {1.0, nan, 7.0, nan};
  EXPECT_EQ(la::iamax(4, x.data(), 1), 1);  // first NaN wins outright
  EXPECT_EQ(la::iamax(1, x.data() + 1, 1), 0);
  std::vector<double> y = {nan, 2.0};
  EXPECT_EQ(la::iamax(2, y.data(), 1), 0);
  // Invalid extents/strides: -1, the 0-based analog of LAPACK's 0.
  EXPECT_EQ(la::iamax(-3, x.data(), 1), -1);
  EXPECT_EQ(la::iamax(4, x.data(), 0), -1);
  EXPECT_EQ(la::iamax(4, x.data(), -1), -1);
  // Ties among equal magnitudes still resolve to the first occurrence.
  std::vector<double> z = {-3.0, 3.0, 3.0};
  EXPECT_EQ(la::iamax(3, z.data(), 1), 0);
  // Complex magnitudes go through std::abs.
  std::vector<std::complex<double>> c = {{3.0, 4.0}, {0.0, 5.0}, {6.0, 0.0}};
  EXPECT_EQ(la::iamax(3, c.data(), 1), 2);
}

TEST(Iamax, Strided) {
  std::vector<double> x = {1.0, 99.0, -3.0, 98.0, 2.0};
  EXPECT_EQ(la::iamax(3, x.data(), 2), 1);  // elements 1, -3, 2
}

TEST(Scal, Scales) {
  std::vector<double> x = {1, 2, 3};
  la::scal(3, 2.0, x.data(), 1);
  EXPECT_EQ(x, (std::vector<double>{2, 4, 6}));
}

TEST(Ger, MatchesManual) {
  Rng rng(1);
  Matrix<double> a(5, 4), a0(5, 4);
  rng.fill_uniform(a.view());
  a0 = a;
  std::vector<double> x(5), y(4);
  for (auto& v : x) v = rng.uniform();
  for (auto& v : y) v = rng.uniform();
  la::ger(5, 4, 2.0, x.data(), 1, y.data(), 1, a.data(), 5);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 5; ++i)
      EXPECT_NEAR(a(i, j), a0(i, j) + 2.0 * x[i] * y[j], 1e-14);
}

struct GemmCase {
  la::Trans ta, tb;
  int m, n, k;
};

class GemmParam : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmParam, MatchesNaive) {
  const auto p = GetParam();
  Rng rng(42);
  const int ar = p.ta == la::Trans::No ? p.m : p.k;
  const int ac = p.ta == la::Trans::No ? p.k : p.m;
  const int br = p.tb == la::Trans::No ? p.k : p.n;
  const int bc = p.tb == la::Trans::No ? p.n : p.k;
  Matrix<double> a(ar, ac), b(br, bc), c(p.m, p.n), cref(p.m, p.n);
  rng.fill_uniform(a.view());
  rng.fill_uniform(b.view());
  rng.fill_uniform(c.view());
  cref = c;
  la::gemm(p.ta, p.tb, p.m, p.n, p.k, 1.7, a.data(), a.ld(), b.data(), b.ld(),
           -0.3, c.data(), c.ld());
  ref_gemm(p.ta, p.tb, p.m, p.n, p.k, 1.7, a.view(), b.view(), -0.3,
           cref.view());
  EXPECT_LT(max_diff(c.view(), cref.view()), 1e-12 * (p.k + 1));
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, GemmParam,
    ::testing::Values(
        GemmCase{la::Trans::No, la::Trans::No, 1, 1, 1},
        GemmCase{la::Trans::No, la::Trans::No, 7, 5, 3},
        GemmCase{la::Trans::No, la::Trans::No, 65, 70, 130},  // crosses tiles
        GemmCase{la::Trans::Yes, la::Trans::No, 13, 9, 17},
        GemmCase{la::Trans::No, la::Trans::Yes, 13, 9, 17},
        GemmCase{la::Trans::Yes, la::Trans::Yes, 13, 9, 17},
        GemmCase{la::Trans::No, la::Trans::No, 0, 5, 3},
        GemmCase{la::Trans::No, la::Trans::No, 5, 0, 3},
        GemmCase{la::Trans::No, la::Trans::No, 5, 5, 0}));

TEST(Gemm, BetaZeroOverwritesNaNs) {
  // beta == 0 must overwrite C even when it holds NaN (BLAS semantics).
  Matrix<double> a(2, 2), b(2, 2),
      c(2, 2, std::numeric_limits<double>::quiet_NaN());
  a(0, 0) = a(1, 1) = 1.0;
  b(0, 0) = 3.0;
  b(1, 1) = 4.0;
  la::gemm(la::Trans::No, la::Trans::No, 2, 2, 2, 1.0, a.data(), 2, b.data(),
           2, 0.0, c.data(), 2);
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0);
}

struct TrsmCase {
  la::Side side;
  la::Uplo uplo;
  la::Trans trans;
  la::Diag diag;
  int m, n;
};

class TrsmParam : public ::testing::TestWithParam<TrsmCase> {};

TEST_P(TrsmParam, SolvesSystem) {
  const auto p = GetParam();
  Rng rng(7);
  const int ta = p.side == la::Side::Left ? p.m : p.n;
  Matrix<double> t(ta, ta);
  rng.fill_uniform(t.view());
  for (int i = 0; i < ta; ++i) t(i, i) += 4.0;  // well conditioned
  Matrix<double> b(p.m, p.n), x(p.m, p.n);
  rng.fill_uniform(b.view());
  x = b;
  la::trsm(p.side, p.uplo, p.trans, p.diag, p.m, p.n, 1.0, t.data(), t.ld(),
           x.data(), x.ld());
  const double err =
      p.side == la::Side::Left
          ? la::trsm_backward_error(p.uplo, p.trans, p.diag, t.view(),
                                    x.view(), b.view())
          : [&] {
              // Verify X*op(T) = B by checking each row as a left solve of
              // the transposed system.
              double worst = 0;
              for (int i = 0; i < p.m; ++i) {
                for (int j = 0; j < p.n; ++j) {
                  double acc = 0;
                  for (int q = 0; q < p.n; ++q) {
                    double e = p.trans == la::Trans::No ? t(q, j) : t(j, q);
                    bool in_tri =
                        (p.uplo == la::Uplo::Lower) ==
                                (p.trans == la::Trans::No)
                            ? (j <= q)
                            : (j >= q);
                    if (q == j)
                      e = p.diag == la::Diag::Unit ? 1.0 : e;
                    else if (!in_tri)
                      e = 0.0;
                    acc += x(i, q) * e;
                  }
                  worst = std::max(worst, std::abs(acc - b(i, j)));
                }
              }
              return worst;
            }();
  EXPECT_LT(err, 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, TrsmParam,
    ::testing::Values(
        TrsmCase{la::Side::Left, la::Uplo::Lower, la::Trans::No,
                 la::Diag::NonUnit, 17, 5},
        TrsmCase{la::Side::Left, la::Uplo::Lower, la::Trans::No,
                 la::Diag::Unit, 17, 5},
        TrsmCase{la::Side::Left, la::Uplo::Upper, la::Trans::No,
                 la::Diag::NonUnit, 17, 5},
        TrsmCase{la::Side::Left, la::Uplo::Lower, la::Trans::Yes,
                 la::Diag::NonUnit, 17, 5},
        TrsmCase{la::Side::Left, la::Uplo::Upper, la::Trans::Yes,
                 la::Diag::Unit, 17, 5},
        TrsmCase{la::Side::Right, la::Uplo::Lower, la::Trans::No,
                 la::Diag::NonUnit, 6, 11},
        TrsmCase{la::Side::Right, la::Uplo::Upper, la::Trans::No,
                 la::Diag::NonUnit, 6, 11},
        TrsmCase{la::Side::Right, la::Uplo::Upper, la::Trans::Yes,
                 la::Diag::NonUnit, 6, 11},
        TrsmCase{la::Side::Right, la::Uplo::Lower, la::Trans::Yes,
                 la::Diag::Unit, 6, 11},
        TrsmCase{la::Side::Left, la::Uplo::Lower, la::Trans::No,
                 la::Diag::NonUnit, 1, 1},
        TrsmCase{la::Side::Left, la::Uplo::Upper, la::Trans::No,
                 la::Diag::NonUnit, 0, 4}));

class GetrfParam : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GetrfParam, FactorsAccurately) {
  const auto [m, n] = GetParam();
  Rng rng(1234 + m * 131 + n);
  Matrix<double> a(m, n), a0(m, n);
  rng.fill_uniform(a.view());
  a0 = a;
  std::vector<int> ipiv(static_cast<std::size_t>(std::min(m, n)) + 1, -1);
  const int info = la::getrf(m, n, a.data(), a.ld(), ipiv.data(), 8);
  EXPECT_EQ(info, 0);
  for (int j = 0; j < std::min(m, n); ++j) {
    EXPECT_GE(ipiv[j], j);
    EXPECT_LT(ipiv[j], m);
  }
  EXPECT_LT(la::lu_residual(a.view(), ipiv.data(), a0.view()), 30.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GetrfParam,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 2},
                                           std::pair{7, 7}, std::pair{8, 8},
                                           std::pair{33, 33},
                                           std::pair{100, 100},
                                           std::pair{50, 20},
                                           std::pair{20, 50},
                                           std::pair{129, 64},
                                           std::pair{64, 129}));

TEST(Getrf, BlockedMatchesUnblocked) {
  Rng rng(5);
  const int m = 53, n = 41;
  Matrix<double> a(m, n), b(m, n);
  rng.fill_uniform(a.view());
  b = a;
  std::vector<int> pa(41), pb(41);
  la::getf2(m, n, a.data(), m, pa.data());
  la::getrf(m, n, b.data(), m, pb.data(), 8);
  EXPECT_EQ(pa, pb);
  EXPECT_LT(max_diff(a.view(), b.view()), 1e-13);
}

TEST(Getrf, SingularMatrixReportsInfo) {
  Matrix<double> a(3, 3, 0.0);  // all-zero matrix
  std::vector<int> ipiv(3);
  const int info = la::getf2(3, 3, a.data(), 3, ipiv.data());
  EXPECT_EQ(info, 1);  // first zero pivot at column 0 (1-based)
}

TEST(Getrs, SolvesBothTranspositions) {
  Rng rng(9);
  const int n = 37, nrhs = 3;
  Matrix<double> a(n, n), lu(n, n);
  rng.fill_uniform(a.view());
  for (int i = 0; i < n; ++i) a(i, i) += 2.0;
  lu = a;
  std::vector<int> ipiv(n);
  ASSERT_EQ(la::getrf(n, n, lu.data(), n, ipiv.data()), 0);

  for (la::Trans tr : {la::Trans::No, la::Trans::Yes}) {
    Matrix<double> x(n, nrhs), b(n, nrhs);
    rng.fill_uniform(b.view());
    x = b;
    la::getrs(tr, n, nrhs, lu.data(), n, ipiv.data(), x.data(), n);
    // Residual of op(A) x = b per column.
    for (int c = 0; c < nrhs; ++c) {
      double rmax = 0;
      for (int i = 0; i < n; ++i) {
        double acc = 0;
        for (int j = 0; j < n; ++j)
          acc += (tr == la::Trans::No ? a(i, j) : a(j, i)) * x(j, c);
        rmax = std::max(rmax, std::abs(acc - b(i, c)));
      }
      EXPECT_LT(rmax, 1e-10);
    }
  }
}

TEST(Trtri, InvertsTriangles) {
  Rng rng(11);
  for (la::Uplo uplo : {la::Uplo::Lower, la::Uplo::Upper}) {
    for (la::Diag diag : {la::Diag::NonUnit, la::Diag::Unit}) {
      const int n = 19;
      Matrix<double> t(n, n, 0.0);
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i) {
          const bool in = uplo == la::Uplo::Lower ? i >= j : i <= j;
          if (in) t(i, j) = rng.uniform(-1, 1);
        }
      for (int i = 0; i < n; ++i) t(i, i) = 2.0 + rng.uniform();
      Matrix<double> inv = t;
      ASSERT_EQ(la::trtri(uplo, diag, n, inv.data(), n), 0);
      // Check op(T) * inv(T) == I on the triangular part.
      for (int j = 0; j < n; ++j)
        for (int i = 0; i < n; ++i) {
          double acc = 0;
          for (int p = 0; p < n; ++p) {
            auto elem = [&](const Matrix<double>& mM, int r, int c) {
              const bool in = uplo == la::Uplo::Lower ? r >= c : r <= c;
              if (r == c) return diag == la::Diag::Unit ? 1.0 : mM(r, c);
              return in ? mM(r, c) : 0.0;
            };
            acc += elem(t, i, p) * elem(inv, p, j);
          }
          EXPECT_NEAR(acc, i == j ? 1.0 : 0.0, 1e-12);
        }
    }
  }
}

TEST(Trtri, SingularReturnsIndex) {
  Matrix<double> t(2, 2, 0.0);
  t(0, 0) = 1.0;  // t(1,1) == 0
  EXPECT_EQ(la::trtri(la::Uplo::Lower, la::Diag::NonUnit, 2, t.data(), 2), 2);
}

TEST(Laswp, ForwardThenBackwardIsIdentity) {
  Rng rng(3);
  const int m = 12, n = 5;
  Matrix<double> a(m, n), a0(m, n);
  rng.fill_uniform(a.view());
  a0 = a;
  std::vector<int> ipiv = {3, 1, 7, 3, 11, 5};
  la::laswp(n, a.data(), m, 0, 6, ipiv.data(), true);
  la::laswp(n, a.data(), m, 0, 6, ipiv.data(), false);
  EXPECT_EQ(max_diff(a.view(), a0.view()), 0.0);
}

TEST(Flops, MatchesPaperFormulaForSquare) {
  // Paper §III-B / §V-A: for square n, flops = 2n^3/3 - n^2/2 + 5n/6 + n^3/3
  // ... i.e. n*n^2 - n^3/3 - n^2/2 + 5n/6.
  for (int n : {1, 2, 10, 100}) {
    const double expect =
        static_cast<double>(n) * n * n - n * n * static_cast<double>(n) / 3.0 -
        n * static_cast<double>(n) / 2.0 + 5.0 * n / 6.0;
    EXPECT_DOUBLE_EQ(la::getrf_flops(n, n), expect);
  }
  EXPECT_DOUBLE_EQ(la::getrf_flops(1, 1), 1.0);  // degenerate but positive
  EXPECT_DOUBLE_EQ(la::gemm_flops(3, 4, 5), 120.0);
  EXPECT_DOUBLE_EQ(la::trsm_flops(4, 3), 48.0);
}

TEST(MatrixView, BlockIndexing) {
  Matrix<double> a(4, 4);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i) a(i, j) = i + 10 * j;
  auto blk = a.view().block(1, 2, 2, 2);
  EXPECT_EQ(blk(0, 0), 1 + 20);
  EXPECT_EQ(blk(1, 1), 2 + 30);
  EXPECT_EQ(blk.ld(), 4);
}

TEST(Cli, FlagParsing) {
  // Note the parser's documented greediness: "--flag value" binds the next
  // non-flag token as the value, so positionals go before flags (or use
  // "--flag=value").
  const char* argv[] = {"prog",          "pos1", "--alpha", "3",
                        "--verbose=yes", "--beta=2.5",      "--gamma"};
  irrlu::CliArgs args(7, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0), 2.5);
  EXPECT_TRUE(args.get_bool("verbose"));
  EXPECT_TRUE(args.get_bool("gamma"));
  EXPECT_FALSE(args.get_bool("missing"));
  EXPECT_EQ(args.get_int("missing", 9), 9);
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(TextTable, AlignsColumns) {
  irrlu::TextTable t({"a", "bb"});
  t.add_row(1, "xyz");
  t.add_row("hello", 2.5);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("hello"), std::string::npos);
  EXPECT_NE(out.find("xyz"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(irrlu::TextTable::fmt(1.23456, 2), "1.23");
}

namespace {

template <typename T>
T test_value(irrlu::Rng& rng) {
  if constexpr (std::is_same_v<T, std::complex<double>>)
    return {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  else
    return static_cast<T>(rng.uniform(-1, 1));
}

template <typename T>
double abs_diff(T a, T b) {
  return std::abs(a - b);
}

/// Cross-checks the packed gemm engine against the retained naive
/// reference over the full ISSUE grid: all transpose combinations,
/// degenerate/edge/tile-crossing extents, all alpha/beta pairs, and a
/// non-tight leading dimension on every operand.
template <typename T>
void gemm_cross_check(const int* dims, int ndims, double tol) {
  irrlu::Rng rng(2024);
  const int pad = 3;  // non-tight lda/ldb/ldc
  for (la::Trans ta : {la::Trans::No, la::Trans::Yes})
    for (la::Trans tb : {la::Trans::No, la::Trans::Yes})
      for (int mi = 0; mi < ndims; ++mi)
        for (int ni = 0; ni < ndims; ++ni)
          for (int ki = 0; ki < ndims; ++ki) {
            const int m = dims[mi], n = dims[ni], k = dims[ki];
            const int ar = (ta == la::Trans::No ? m : k) + pad;
            const int ac = ta == la::Trans::No ? k : m;
            const int br = (tb == la::Trans::No ? k : n) + pad;
            const int bc = tb == la::Trans::No ? n : k;
            std::vector<T> a(static_cast<std::size_t>(ar) * std::max(ac, 1));
            std::vector<T> b(static_cast<std::size_t>(br) * std::max(bc, 1));
            std::vector<T> c0(static_cast<std::size_t>(m + pad) *
                              std::max(n, 1));
            for (auto& v : a) v = test_value<T>(rng);
            for (auto& v : b) v = test_value<T>(rng);
            for (auto& v : c0) v = test_value<T>(rng);
            for (T alpha : {T(0), T(1), T(-0.5)})
              for (T beta : {T(0), T(1), T(-0.5)}) {
                std::vector<T> c1 = c0, c2 = c0;
                la::gemm(ta, tb, m, n, k, alpha, a.data(), ar, b.data(), br,
                         beta, c1.data(), m + pad);
                la::ref::gemm(ta, tb, m, n, k, alpha, a.data(), ar, b.data(),
                              br, beta, c2.data(), m + pad);
                double d = 0;
                for (std::size_t i = 0; i < c1.size(); ++i)
                  d = std::max(d, abs_diff(c1[i], c2[i]));
                ASSERT_LT(d, tol * (k + 1))
                    << "ta=" << (ta == la::Trans::No ? "N" : "T")
                    << " tb=" << (tb == la::Trans::No ? "N" : "T")
                    << " m=" << m << " n=" << n << " k=" << k;
              }
          }
}

}  // namespace

TEST(GemmEngine, MatchesNaiveReferenceDouble) {
  const int dims[] = {0, 1, 7, 8, 9, 64, 65};
  gemm_cross_check<double>(dims, 7, 1e-13);
}

TEST(GemmEngine, MatchesNaiveReferenceComplex) {
  const int dims[] = {0, 1, 7, 9, 65};
  gemm_cross_check<std::complex<double>>(dims, 5, 1e-13);
}

TEST(TrsmEngine, MatchesNaiveReference) {
  // The blocked trsm (diagonal substitution + packed GEMM updates) must
  // agree with the retained unblocked reference to rounding across every
  // side/uplo/trans/diag combination and across the blocking threshold.
  irrlu::Rng rng(77);
  for (la::Side side : {la::Side::Left, la::Side::Right})
    for (la::Uplo uplo : {la::Uplo::Lower, la::Uplo::Upper})
      for (la::Trans trans : {la::Trans::No, la::Trans::Yes})
        for (la::Diag diag : {la::Diag::NonUnit, la::Diag::Unit})
          for (int sz : {1, 7, 32, 33, 65}) {
            const int m = side == la::Side::Left ? sz : 11;
            const int n = side == la::Side::Left ? 11 : sz;
            const int ta = side == la::Side::Left ? m : n;
            const int ldt = ta + 2, ldb = m + 2;  // non-tight
            std::vector<double> t(static_cast<std::size_t>(ldt) * ta);
            for (auto& v : t) v = rng.uniform(-1, 1);
            for (int i = 0; i < ta; ++i)
              t[static_cast<std::size_t>(i) * ldt + i] += 4.0;
            std::vector<double> b0(static_cast<std::size_t>(ldb) * n);
            for (auto& v : b0) v = rng.uniform(-1, 1);
            std::vector<double> b1 = b0, b2 = b0;
            la::trsm(side, uplo, trans, diag, m, n, -0.5, t.data(), ldt,
                     b1.data(), ldb);
            la::ref::trsm(side, uplo, trans, diag, m, n, -0.5, t.data(), ldt,
                          b2.data(), ldb);
            double d = 0;
            for (std::size_t i = 0; i < b1.size(); ++i)
              d = std::max(d, std::abs(b1[i] - b2[i]));
            ASSERT_LT(d, 1e-12 * (sz + 10)) << "sz=" << sz;
          }
}

TEST(Gemv, BetaZeroOverwritesNaNs) {
  // beta == 0 must overwrite y even when it holds NaN (BLAS semantics) —
  // regression: the pre-engine gemv multiplied y by beta instead.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> a = {1.0, 0.0, 0.0, 1.0};  // 2x2 identity
  std::vector<double> x = {3.0, 4.0};
  for (la::Trans tr : {la::Trans::No, la::Trans::Yes}) {
    std::vector<double> y = {nan, nan};
    la::gemv(tr, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.0, y.data(), 1);
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 4.0);
    std::vector<double> ys = {nan, nan, nan, nan};  // strided path too
    la::gemv(tr, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.0, ys.data(), 2);
    EXPECT_DOUBLE_EQ(ys[0], 3.0);
    EXPECT_DOUBLE_EQ(ys[2], 4.0);
  }
}

TEST(Rng, DeterministicAcrossRuns) {
  irrlu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
    EXPECT_EQ(a.uniform(), b.uniform());
  }
}
