// Tests for the sparse direct solver: CSR transforms, symbolic analysis
// invariants, the four factorization engines, and end-to-end solves on
// SPD, indefinite, and unsymmetric systems.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "ordering/graph.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/csr.hpp"
#include "sparse/io.hpp"
#include "sparse/multifrontal.hpp"
#include "sparse/solver.hpp"
#include "sparse/symbolic.hpp"

using namespace irrlu::sparse;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;
namespace ord = irrlu::ordering;

namespace {

std::vector<double> random_rhs(int n, unsigned seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1, 1);
  return b;
}

}  // namespace

// ------------------------------------------------------------------- CSR

TEST(Csr, FromTripletsSumsDuplicates) {
  const CsrMatrix a = CsrMatrix::from_triplets(
      2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 0, 5.0}, {0, 1, -1.0}});
  EXPECT_EQ(a.nnz(), 3);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), 0.0);
}

TEST(Csr, MultiplyAndResidual) {
  const CsrMatrix a = laplacian2d(3, 3);
  std::vector<double> x(9, 1.0), y(9);
  a.multiply(x.data(), y.data());
  // Interior row sums of the 5-point Laplacian are 0; corners 2; edges 1.
  EXPECT_DOUBLE_EQ(y[4], 0.0);
  EXPECT_DOUBLE_EQ(y[0], 2.0);
  EXPECT_NEAR(a.residual(x.data(), y.data()), 0.0, 1e-15);
}

TEST(Csr, SymmetricPermutationRoundTrip) {
  const CsrMatrix a = laplacian2d(4, 4, 0.7);
  std::vector<int> perm(16);
  std::iota(perm.begin(), perm.end(), 0);
  std::mt19937_64 g(3);
  std::shuffle(perm.begin(), perm.end(), g);
  const CsrMatrix p = a.permute_symmetric(perm);
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j)
      EXPECT_DOUBLE_EQ(
          p.at(i, j),
          a.at(perm[static_cast<std::size_t>(i)],
               perm[static_cast<std::size_t>(j)]));
}

TEST(Csr, ColumnPermutationAndScaling) {
  const CsrMatrix a = CsrMatrix::from_triplets(
      2, {{0, 0, 1.0}, {0, 1, 2.0}, {1, 0, 3.0}, {1, 1, 4.0}});
  const CsrMatrix s = a.scaled({2.0, 0.5}, {1.0, 10.0});
  EXPECT_DOUBLE_EQ(s.at(0, 1), 40.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 1.5);
  const CsrMatrix q = a.permute_columns({1, 0});
  EXPECT_DOUBLE_EQ(q.at(0, 0), 2.0);  // column 0 is old column 1
  EXPECT_DOUBLE_EQ(q.at(1, 1), 3.0);
}

// -------------------------------------------------------------- symbolic

class SymbolicOnGrids : public ::testing::TestWithParam<int> {};

TEST_P(SymbolicOnGrids, StructureInvariants) {
  const int k = GetParam();
  const CsrMatrix a = laplacian2d(k, k);
  const ord::Graph g =
      ord::Graph::from_pattern(a.rows(), a.ptr().data(), a.ind().data());
  ord::NDOptions nd;
  nd.leaf_size = 8;
  const ord::Ordering o = ord::nested_dissection(g, nd);
  const CsrMatrix ap = a.permute_symmetric(o.perm);
  const SymbolicAnalysis sym = SymbolicAnalysis::build(ap, o);

  // Every variable eliminated exactly once.
  int total = 0;
  for (const Front& f : sym.fronts) {
    total += f.s();
    // Update indices strictly above the separator range, sorted.
    for (std::size_t i = 0; i < f.upd.size(); ++i) {
      EXPECT_GE(f.upd[i], f.sep_end);
      if (i > 0) {
        EXPECT_LT(f.upd[i - 1], f.upd[i]);
      }
    }
    // Child update sets contained in parent's index space — checked by
    // construction (local_positions throws), spot-check the maps:
    for (int c : f.children)
      EXPECT_EQ(sym.fronts[static_cast<std::size_t>(c)].parent_map.size(),
                sym.fronts[static_cast<std::size_t>(c)].upd.size());
  }
  EXPECT_EQ(total, a.rows());

  // The root front has no update part.
  EXPECT_EQ(sym.fronts[static_cast<std::size_t>(sym.root)].u(), 0);

  // Levels: the root is level 0 and every level's fronts are disjoint.
  EXPECT_EQ(sym.levels[0].size(), 1u);
  EXPECT_EQ(sym.levels[0][0], sym.root);
}

INSTANTIATE_TEST_SUITE_P(Grids, SymbolicOnGrids, ::testing::Values(4, 9, 16));

TEST(Symbolic, FrontSizesGrowTowardRoot) {
  // The Figure-13 shape: average front size increases toward the root
  // while the batch size decreases.
  const CsrMatrix a = laplacian3d(10, 10, 10);
  const ord::Graph g =
      ord::Graph::from_pattern(a.rows(), a.ptr().data(), a.ind().data());
  ord::NDOptions ndo;
  ndo.leaf_size = 8;
  const ord::Ordering o = ord::nested_dissection(g, ndo);
  const SymbolicAnalysis sym =
      SymbolicAnalysis::build(a.permute_symmetric(o.perm), o);
  // Compare the deepest populated level against the root.
  const auto& deepest = sym.levels.back();
  double avg_deep = 0;
  for (int id : deepest) avg_deep += sym.fronts[static_cast<std::size_t>(id)].dim();
  avg_deep /= static_cast<double>(deepest.size());
  const double root_dim =
      sym.fronts[static_cast<std::size_t>(sym.root)].dim();
  EXPECT_GT(root_dim, avg_deep);
  EXPECT_GT(deepest.size(), sym.levels[0].size());
}

// ----------------------------------------------------- numeric + engines

class EngineParam : public ::testing::TestWithParam<Engine> {};

TEST_P(EngineParam, SolvesSpdSystem) {
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.factor.engine = GetParam();
  opts.nd.leaf_size = 16;
  SparseDirectSolver solver(opts);
  const CsrMatrix a = laplacian2d(13, 11);
  solver.analyze(a);
  solver.factor(dev);
  EXPECT_TRUE(solver.numeric().numerically_ok());
  const auto b = random_rhs(a.rows(), 42);
  const auto x = solver.solve(b);
  EXPECT_LT(solver.residual(x, b), 1e-12);
}

TEST_P(EngineParam, SolvesIndefiniteSystem) {
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.factor.engine = GetParam();
  SparseDirectSolver solver(opts);
  // Strong negative shift: indefinite Helmholtz-like operator, the hard
  // case motivating direct solvers in the paper.
  const CsrMatrix a = laplacian3d(6, 6, 6, -3.7);
  solver.analyze(a);
  solver.factor(dev);
  const auto b = random_rhs(a.rows(), 7);
  const auto x = solver.solve(b);
  EXPECT_LT(solver.residual(x, b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, EngineParam,
                         ::testing::Values(Engine::kBatched, Engine::kLooped,
                                           Engine::kLegacySmallBatch,
                                           Engine::kRightLooking));

TEST(Engines, AgreeWithEachOther) {
  const CsrMatrix a = laplacian2d(10, 10, -1.3);
  const auto b = random_rhs(a.rows(), 99);
  std::vector<std::vector<double>> solutions;
  for (Engine e : {Engine::kBatched, Engine::kLooped,
                   Engine::kLegacySmallBatch, Engine::kRightLooking}) {
    Device dev(DeviceModel::a100());
    SolverOptions opts;
    opts.factor.engine = e;
    opts.max_refine_steps = 0;
    SparseDirectSolver solver(opts);
    solver.analyze(a);
    solver.factor(dev);
    solutions.push_back(solver.solve(b));
  }
  for (std::size_t e = 1; e < solutions.size(); ++e)
    for (std::size_t i = 0; i < solutions[0].size(); ++i)
      EXPECT_NEAR(solutions[e][i], solutions[0][i], 1e-8);
}

TEST(Solver, UnsymmetricMatrixViaMc64) {
  // Unsymmetric and badly scaled: exercises matching + scaling.
  Rng rng(5);
  const int k = 8;
  CsrMatrix base = laplacian2d(k, k);
  std::vector<std::tuple<int, int, double>> t;
  for (int i = 0; i < base.rows(); ++i)
    for (int p = base.ptr()[static_cast<std::size_t>(i)];
         p < base.ptr()[static_cast<std::size_t>(i) + 1]; ++p) {
      const int j = base.ind()[static_cast<std::size_t>(p)];
      double v = base.val()[static_cast<std::size_t>(p)];
      if (i != j) v *= rng.uniform(0.5, 1.5);  // break symmetry (values)
      if (i % 7 == 0) v *= 1e6;                // bad row scaling
      t.emplace_back(i, j, v);
    }
  const CsrMatrix a = CsrMatrix::from_triplets(base.rows(), t);

  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  const auto b = random_rhs(a.rows(), 3);
  const auto x = solver.solve(b);
  EXPECT_LT(solver.residual(x, b), 1e-11);
}

TEST(Solver, IterativeRefinementImproves) {
  const CsrMatrix a = laplacian3d(5, 5, 5, -2.1);
  const auto b = random_rhs(a.rows(), 13);
  double res_no = 0, res_yes = 0;
  for (int refine : {0, 2}) {
    Device dev(DeviceModel::a100());
    SolverOptions opts;
    opts.max_refine_steps = refine;
    SparseDirectSolver solver(opts);
    solver.analyze(a);
    solver.factor(dev);
    const auto x = solver.solve(b);
    (refine == 0 ? res_no : res_yes) = solver.residual(x, b);
  }
  EXPECT_LE(res_yes, res_no * 1.5 + 1e-16);
  EXPECT_LT(res_yes, 1e-13);
}

TEST(Solver, LevelStatsShapeMatchesFig13) {
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  const CsrMatrix a = laplacian3d(8, 8, 8);
  solver.analyze(a);
  const auto stats = solver.level_stats();
  ASSERT_GE(stats.size(), 3u);
  EXPECT_EQ(stats.front().level, 0);
  EXPECT_EQ(stats.front().batch, 1);  // root level: a single big front
  // Deeper levels: more fronts, smaller on average.
  EXPECT_GT(stats.back().batch, stats.front().batch);
  EXPECT_LT(stats.back().avg_dim, stats.front().avg_dim);
}

TEST(Solver, BatchedUsesFewerLaunchesThanLooped) {
  const CsrMatrix a = laplacian2d(24, 24);
  long launches_batched = 0, launches_looped = 0;
  double sync_legacy = 0, sync_batched = 0;
  for (Engine e : {Engine::kBatched, Engine::kLooped,
                   Engine::kLegacySmallBatch}) {
    Device dev(DeviceModel::a100());
    SolverOptions opts;
    opts.nd.leaf_size = 8;  // many small fronts: the batched regime
    opts.factor.engine = e;
    SparseDirectSolver solver(opts);
    solver.analyze(a);
    solver.factor(dev);
    if (e == Engine::kBatched) {
      launches_batched = solver.numeric().launch_count();
      sync_batched = solver.numeric().sync_wait_seconds();
    }
    if (e == Engine::kLooped) launches_looped = solver.numeric().launch_count();
    if (e == Engine::kLegacySmallBatch)
      sync_legacy = solver.numeric().sync_wait_seconds();
  }
  // The paper's core claim: batching removes the per-front launch storm,
  // and the legacy schedule spends much more time in synchronization.
  EXPECT_LT(launches_batched, launches_looped / 4);
  EXPECT_GT(sync_legacy, sync_batched);
}

TEST(Solver, SingularMatrixReported) {
  // A structurally singular matrix: MC64 detects it and the solver falls
  // back; the numeric factorization flags the zero pivot.
  CsrMatrix a = CsrMatrix::from_triplets(
      3, {{0, 0, 1.0}, {1, 1, 0.0}, {1, 0, 0.0}, {2, 2, 2.0}});
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  EXPECT_FALSE(solver.numeric().numerically_ok());
}

TEST(Solver, OneByOneMatrix) {
  const CsrMatrix a = CsrMatrix::from_triplets(1, {{0, 0, 2.0}});
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  const auto x = solver.solve(std::vector<double>{6.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
}

TEST(Solver, MemoryReleasedWithFactor) {
  Device dev(DeviceModel::a100());
  const CsrMatrix a = laplacian2d(12, 12);
  {
    SparseDirectSolver solver;
    solver.analyze(a);
    solver.factor(dev);
    EXPECT_GT(dev.bytes_in_use(), 0u);
  }
  EXPECT_EQ(dev.bytes_in_use(), 0u);
}

TEST(MemoryMode, StackedMatchesUpfrontAndShrinksPeak) {
  // The paper: "if the entire assembly tree does not fit in the device
  // memory, then the factorization is split in multiple traversals of
  // subtrees" — our stacked-levels discipline keeps at most two adjacent
  // levels of working fronts alive.
  const CsrMatrix a = laplacian3d(7, 7, 7, -1.9);
  const auto b = random_rhs(a.rows(), 77);
  std::vector<double> x_up, x_st;
  std::size_t peak_up = 0, peak_st = 0;
  for (auto mode : {MemoryMode::kAllUpfront, MemoryMode::kStackedLevels}) {
    Device dev(DeviceModel::a100());
    SolverOptions opts;
    opts.nd.leaf_size = 8;  // deep tree: the stacked savings are largest
    opts.factor.memory = mode;
    opts.max_refine_steps = 0;
    SparseDirectSolver solver(opts);
    solver.analyze(a);
    solver.factor(dev);
    EXPECT_TRUE(solver.numeric().numerically_ok());
    const auto x = solver.solve(b);
    EXPECT_LT(solver.residual(x, b), 1e-10);
    if (mode == MemoryMode::kAllUpfront) {
      x_up = x;
      peak_up = solver.numeric().peak_device_bytes();
    } else {
      x_st = x;
      peak_st = solver.numeric().peak_device_bytes();
    }
  }
  for (std::size_t i = 0; i < x_up.size(); ++i)
    EXPECT_NEAR(x_st[i], x_up[i], 1e-9);
  EXPECT_LT(peak_st, peak_up);
}

TEST(MemoryMode, BaselineEnginesFallBackToUpfront) {
  // Non-batched engines ignore the stacked request but must stay correct.
  const CsrMatrix a = laplacian2d(9, 9);
  const auto b = random_rhs(a.rows(), 5);
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.factor.engine = Engine::kLooped;
  opts.factor.memory = MemoryMode::kStackedLevels;
  SparseDirectSolver solver(opts);
  solver.analyze(a);
  solver.factor(dev);
  const auto x = solver.solve(b);
  EXPECT_LT(solver.residual(x, b), 1e-12);
}

TEST(MemoryMode, FactorBytesMatchSymbolicPrediction) {
  const CsrMatrix a = laplacian2d(14, 14);
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  // factor_nnz counts s*(s+u) + u*s entries per front; the compact store
  // holds exactly s*s + 2*s*u doubles per front plus s pivots.
  const auto& sym = solver.symbolic();
  std::size_t expect = 0;
  for (const auto& f : sym.fronts)
    expect += (static_cast<std::size_t>(f.s()) * f.s() +
               2ull * f.s() * f.u()) * sizeof(double) +
              static_cast<std::size_t>(f.s()) * sizeof(int);
  EXPECT_EQ(solver.numeric().factor_bytes(), expect);
}

TEST(DeviceSolve, MatchesHostSolve) {
  const CsrMatrix a = laplacian3d(6, 6, 6, -2.3);
  const auto b = random_rhs(a.rows(), 31);
  std::vector<double> x_host, x_dev;
  for (bool on_device : {false, true}) {
    Device dev(DeviceModel::a100());
    SolverOptions opts;
    opts.solve_on_device = on_device;
    opts.max_refine_steps = 0;
    SparseDirectSolver solver(opts);
    solver.analyze(a);
    solver.factor(dev);
    (on_device ? x_dev : x_host) = solver.solve(b);
    EXPECT_LT(solver.residual(on_device ? x_dev : x_host, b), 1e-11);
    if (on_device) {
      // The batched solve must appear in the device profile.
      EXPECT_GE(dev.profile().count("mf_solve_fwd"), 1u);
      EXPECT_GE(dev.profile().count("mf_solve_bwd"), 1u);
    }
  }
  // Level-order vs postorder accumulation differ only in roundoff.
  for (std::size_t i = 0; i < x_host.size(); ++i)
    EXPECT_NEAR(x_dev[i], x_host[i], 1e-12);
}

TEST(DeviceSolve, LaunchCountScalesWithLevelsNotFronts) {
  const CsrMatrix a = laplacian2d(20, 20);
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.nd.leaf_size = 8;
  SparseDirectSolver solver(opts);
  solver.analyze(a);
  solver.factor(dev);
  std::vector<double> x(static_cast<std::size_t>(a.rows()), 1.0);
  const long before = dev.launch_count();
  solver.numeric().solve_batched(x);
  const long solve_launches = dev.launch_count() - before;
  const long levels = static_cast<long>(solver.symbolic().levels.size());
  const long fronts = static_cast<long>(solver.symbolic().fronts.size());
  EXPECT_LE(solve_launches, 2 * levels + 2);
  EXPECT_LT(solve_launches, fronts);  // the batching is the point
}

// --------------------------------------------------------------------- IO

TEST(MatrixMarket, RoundTrip) {
  const CsrMatrix a = laplacian2d(5, 4, -0.3);
  std::stringstream ss;
  write_matrix_market(ss, a);
  const CsrMatrix b = read_matrix_market(ss);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (int i = 0; i < a.rows(); ++i)
    for (int k = a.ptr()[static_cast<std::size_t>(i)];
         k < a.ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = a.ind()[static_cast<std::size_t>(k)];
      EXPECT_DOUBLE_EQ(b.at(i, j), a.val()[static_cast<std::size_t>(k)]);
    }
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% a comment line\n"
     << "3 3 4\n"
     << "1 1 2.0\n2 1 -1.0\n2 2 2.0\n3 3 5.0\n";
  const CsrMatrix a = read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 5);  // off-diagonal mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
}

TEST(MatrixMarket, PatternFile) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 3\n"
     << "1 1\n1 2\n2 2\n";
  const CsrMatrix a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 0.0);
}

TEST(MatrixMarket, RejectsMalformed) {
  std::stringstream no_banner("1 1 1\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(no_banner), irrlu::Error);
  std::stringstream rect(
      "%%MatrixMarket matrix coordinate real general\n2 3 1\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(rect), irrlu::Error);
  std::stringstream trunc(
      "%%MatrixMarket matrix coordinate real general\n2 2 3\n1 1 1.0\n");
  EXPECT_THROW(read_matrix_market(trunc), irrlu::Error);
}

TEST(MatrixMarket, SolveImportedSystem) {
  // Full loop: export, re-import, factor, solve.
  const CsrMatrix a0 = laplacian3d(4, 4, 4, -1.1);
  std::stringstream ss;
  write_matrix_market(ss, a0);
  const CsrMatrix a = read_matrix_market(ss);
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  const auto b = random_rhs(a.rows(), 2);
  const auto x = solver.solve(b);
  EXPECT_LT(solver.residual(x, b), 1e-12);
}

TEST(Solver, FactorizationReusedAcrossManyRightHandSides) {
  // The paper's intro: "the factorization of the operator can be reused
  // multiple times for the solution of different linear systems". Repeated
  // solves must not launch any new factorization kernels.
  const CsrMatrix a = laplacian3d(5, 5, 5, -1.7);
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  const long launches_after_factor = dev.launch_count();
  for (int rhs = 0; rhs < 5; ++rhs) {
    const auto b = random_rhs(a.rows(), 100 + rhs);
    const auto x = solver.solve(b);
    EXPECT_LT(solver.residual(x, b), 1e-12) << "rhs " << rhs;
  }
  // Host-side solves launch nothing; the factors were reused.
  EXPECT_EQ(dev.launch_count(), launches_after_factor);
}

TEST(Solver, RefactorReusesAnalysis) {
  // Same pattern, new values: the ordering/symbolic phases are reused and
  // the new system solves correctly.
  const CsrMatrix a1 = laplacian2d(10, 10, -0.9);
  CsrMatrix a2 = a1;
  for (auto& v : a2.val()) v *= 1.7;  // same pattern, different operator
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a1);
  solver.factor(dev);
  const auto b = random_rhs(a1.rows(), 55);
  EXPECT_LT(solver.residual(solver.solve(b), b), 1e-12);

  const auto fronts_before = solver.symbolic().fronts.size();
  solver.refactor(dev, a2);
  EXPECT_EQ(solver.symbolic().fronts.size(), fronts_before);
  const auto x2 = solver.solve(b);
  // residual() uses the *current* matrix (a2).
  EXPECT_LT(solver.residual(x2, b), 1e-12);
  // And the solutions differ (it really used the new values).
  const auto x1 = solver.solve(b);
  (void)x1;
  std::vector<double> y(static_cast<std::size_t>(a1.rows()));
  a1.multiply(x2.data(), y.data());
  double diff = 0;
  for (std::size_t i = 0; i < y.size(); ++i)
    diff = std::max(diff, std::abs(y[i] - b[i]));
  EXPECT_GT(diff, 1e-3);  // x2 does NOT solve the old system
}

TEST(MultiStream, LevelsSplitAcrossStreamsMatchSingleStream) {
  const CsrMatrix a = laplacian3d(6, 6, 6, -1.4);
  const auto b = random_rhs(a.rows(), 91);
  std::vector<double> x1, x4;
  double t1 = 0, t4 = 0;
  for (int streams : {1, 4}) {
    Device dev(DeviceModel::a100());
    SolverOptions opts;
    opts.nd.leaf_size = 8;
    opts.factor.num_streams = streams;
    opts.max_refine_steps = 0;
    SparseDirectSolver solver(opts);
    solver.analyze(a);
    solver.factor(dev);
    EXPECT_TRUE(solver.numeric().numerically_ok());
    const auto x = solver.solve(b);
    EXPECT_LT(solver.residual(x, b), 1e-10);
    (streams == 1 ? x1 : x4) = x;
    (streams == 1 ? t1 : t4) = solver.numeric().factor_seconds();
  }
  for (std::size_t i = 0; i < x1.size(); ++i)
    EXPECT_NEAR(x4[i], x1[i], 1e-10);
  // The negative result that vindicates the paper's design: splitting a
  // level's batch across streams multiplies the kernel-launch count, and
  // host-serialized dispatch makes the launch-bound levels *slower* than
  // one fused irregular batch.
  EXPECT_GT(t4, t1);
}

TEST(Solver, MultipleRightHandSides) {
  const CsrMatrix a = laplacian2d(9, 9, -0.8);
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  std::vector<std::vector<double>> bs;
  for (int k = 0; k < 4; ++k) bs.push_back(random_rhs(a.rows(), 300 + k));
  const auto xs = solver.solve(bs);
  ASSERT_EQ(xs.size(), bs.size());
  for (std::size_t k = 0; k < bs.size(); ++k)
    EXPECT_LT(solver.residual(xs[k], bs[k]), 1e-12) << "rhs " << k;
}

// ---------------------------------------------- etree / generic orderings

TEST(Etree, MatchesBruteForceOnSmallMatrix) {
  // Arrowhead matrix: every column's first below-diagonal fill connects to
  // the last row, so parent(j) is the next column sharing structure.
  const CsrMatrix a = CsrMatrix::from_triplets(
      4, {{0, 0, 1.}, {1, 1, 1.}, {2, 2, 1.}, {3, 3, 1.},
          {3, 0, 1.}, {0, 3, 1.}, {3, 1, 1.}, {1, 3, 1.},
          {2, 1, 1.}, {1, 2, 1.}});
  const auto parent = elimination_tree(a);
  // Column 0 connects to 3 -> parent 3. Column 1 connects to 2 and 3 ->
  // parent 2; column 2 inherits 3 -> parent 3; column 3 is the root.
  EXPECT_EQ(parent[0], 3);
  EXPECT_EQ(parent[1], 2);
  EXPECT_EQ(parent[2], 3);
  EXPECT_EQ(parent[3], -1);
}

TEST(Etree, TridiagonalIsAChain) {
  const CsrMatrix a = laplacian2d(6, 1);  // 1-D chain
  const auto parent = elimination_tree(a);
  for (int j = 0; j + 1 < a.rows(); ++j) EXPECT_EQ(parent[j], j + 1);
  EXPECT_EQ(parent[a.rows() - 1], -1);
}

TEST(EtreeSymbolic, SupernodesPartitionColumns) {
  const CsrMatrix a = laplacian2d(9, 9);
  const SymbolicAnalysis sym = SymbolicAnalysis::build_from_etree(a);
  int covered = 0;
  for (std::size_t i = 0; i < sym.fronts.size(); ++i) {
    const Front& f = sym.fronts[i];
    covered += f.s();
    EXPECT_GT(f.s(), 0);
    if (i > 0) {
      EXPECT_EQ(f.sep_begin, sym.fronts[i - 1].sep_end);  // consecutive
    }
    for (std::size_t k = 0; k < f.upd.size(); ++k)
      EXPECT_GE(f.upd[k], f.sep_end);
    for (int c : f.children) EXPECT_LT(c, static_cast<int>(i));  // postorder
  }
  EXPECT_EQ(covered, a.rows());
}

class OrderingMethodParam
    : public ::testing::TestWithParam<OrderingMethod> {};

TEST_P(OrderingMethodParam, SolvesIndefiniteSystem) {
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.ordering = GetParam();
  SparseDirectSolver solver(opts);
  const CsrMatrix a = laplacian2d(12, 12, -1.6);
  solver.analyze(a);
  solver.factor(dev);
  EXPECT_TRUE(solver.numeric().numerically_ok());
  const auto b = random_rhs(a.rows(), 21);
  const auto x = solver.solve(b);
  EXPECT_LT(solver.residual(x, b), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllOrderings, OrderingMethodParam,
                         ::testing::Values(OrderingMethod::kNestedDissection,
                                           OrderingMethod::kMinimumDegree,
                                           OrderingMethod::kRcm,
                                           OrderingMethod::kNatural));

TEST(OrderingMethods, FillComparesAsExpected) {
  // Within the elimination-tree symbolic path (same storage granularity:
  // fundamental supernodes), minimum degree must beat the natural order on
  // a 2-D grid. (The ND path amalgamates into dense fronts and its
  // factor_nnz is not comparable across paths.)
  const CsrMatrix a = laplacian2d(16, 16);
  auto nnz_with = [&](OrderingMethod m) {
    SolverOptions opts;
    opts.ordering = m;
    SparseDirectSolver solver(opts);
    solver.analyze(a);
    return solver.symbolic().factor_nnz;
  };
  const auto natural = nnz_with(OrderingMethod::kNatural);
  EXPECT_LT(nnz_with(OrderingMethod::kMinimumDegree), natural);
  EXPECT_LE(nnz_with(OrderingMethod::kRcm), 2 * natural);
}
