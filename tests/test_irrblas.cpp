// Tests for the irregular-batch kernels: DCWI inference, irrGEMM, irrTRSM,
// the panel kernels, irrLASWP and the irrLU driver — all validated against
// the single-matrix LAPACK substrate on randomized non-uniform batches.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "irrblas/autotune.hpp"
#include "irrblas/dcwi.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/blas.hpp"
#include "lapack/lapack.hpp"
#include "lapack/verify.hpp"

namespace la = irrlu::la;
using namespace irrlu::batch;
using irrlu::Matrix;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;

namespace {

double batch_max_diff(const VBatch<double>& a, const VBatch<double>& b) {
  double d = 0;
  for (int i = 0; i < a.batch_size(); ++i) {
    auto va = a.view(i);
    auto vb = b.view(i);
    for (int j = 0; j < va.cols(); ++j)
      for (int r = 0; r < va.rows(); ++r)
        d = std::max(d, std::abs(va(r, j) - vb(r, j)));
  }
  return d;
}

}  // namespace

// ------------------------------------------------------------------ DCWI

TEST(Dcwi, GemmFullWorkload) {
  const auto w = dcwi_gemm(la::Trans::No, la::Trans::No, 10, 8, 6, 0, 0, 0,
                           0, 0, 0, 10, 8, 6);
  EXPECT_EQ(w.m, 10);
  EXPECT_EQ(w.n, 8);
  EXPECT_EQ(w.k, 6);
  EXPECT_FALSE(w.none());
}

TEST(Dcwi, GemmPartialFromOffsets) {
  // 12x12 matrix, offset (5,5): only 7 rows/cols remain; required 10.
  const auto w = dcwi_gemm(la::Trans::No, la::Trans::No, 10, 10, 10, 5, 5, 5,
                           5, 5, 5, 12, 12, 12);
  EXPECT_EQ(w.m, 7);
  EXPECT_EQ(w.n, 7);
  EXPECT_EQ(w.k, 7);
}

TEST(Dcwi, GemmNoneWhenOffsetBeyondLocal) {
  const auto w = dcwi_gemm(la::Trans::No, la::Trans::No, 10, 10, 10, 6, 6, 6,
                           6, 6, 6, 4, 4, 4);
  EXPECT_TRUE(w.none());
}

TEST(Dcwi, GemmTransposeSwapsOffsetRoles) {
  // The paper's §IV-B example: for C = A^T B, (Ai, Aj) compare against
  // (k, m) instead of (m, k).
  const auto wn = dcwi_gemm(la::Trans::No, la::Trans::No, 8, 8, 8, 2, 6, 0,
                            0, 0, 0, 10, 10, 10);
  EXPECT_EQ(wn.m, 8);  // m limited by max(Ai=2, Ci=0) -> 10-2=8
  EXPECT_EQ(wn.k, 4);  // k limited by Aj=6 -> 10-6=4
  const auto wt = dcwi_gemm(la::Trans::Yes, la::Trans::No, 8, 8, 8, 2, 6, 0,
                            0, 0, 0, 10, 10, 10);
  EXPECT_EQ(wt.m, 4);  // roles swapped: m limited by Aj=6
  EXPECT_EQ(wt.k, 8);  // k limited by Ai=2
}

TEST(Dcwi, GemmConflictingOffsetsTakeLarger) {
  const auto w = dcwi_gemm(la::Trans::No, la::Trans::No, 10, 10, 10, 3, 0, 0,
                           0, 7, 0, 10, 10, 10);
  EXPECT_EQ(w.m, 3);  // max(Ai=3, Ci=7) = 7 -> 10-7
}

TEST(Dcwi, TrsmSides) {
  const auto l = dcwi_trsm(la::Side::Left, 8, 16, 2, 2, 2, 4, 12, 20);
  EXPECT_EQ(l.m, 8);   // min(8, 12-2)
  EXPECT_EQ(l.n, 16);  // min(16, 20-4)
  const auto r = dcwi_trsm(la::Side::Right, 16, 8, 2, 2, 4, 2, 20, 12);
  EXPECT_EQ(r.m, 16);
  EXPECT_EQ(r.n, 8);
  EXPECT_TRUE(dcwi_trsm(la::Side::Left, 8, 8, 9, 9, 9, 0, 9, 9).none());
}

TEST(Dcwi, LuAndLaswp) {
  const auto w = dcwi_lu(32, 32, 10, 10, 25, 18);
  EXPECT_EQ(w.m, 15);
  EXPECT_EQ(w.n, 8);
  EXPECT_EQ(w.kmin(), 8);

  // Matrix 20x14, panel at j=8 width 8: kmin=14 -> 6 pivot rows remain.
  const auto s = dcwi_laswp(8, 8, 20, 14);
  EXPECT_EQ(s.rows, 6);
  EXPECT_EQ(s.wl, 8);
  EXPECT_EQ(s.wr_off, 16);
  EXPECT_EQ(s.wr, 0);  // no columns right of the panel (n=14 < 16)

  EXPECT_TRUE(dcwi_laswp(14, 8, 20, 14).none());  // matrix fully factored
}

// --------------------------------------------------------------- irrGEMM

class IrrGemmTrans
    : public ::testing::TestWithParam<std::pair<la::Trans, la::Trans>> {};

TEST_P(IrrGemmTrans, MatchesPerMatrixReference) {
  const auto [ta, tb] = GetParam();
  Device dev(DeviceModel::a100());
  Rng rng(77);
  const int bs = 30;
  // Square matrices of irregular sizes: every operand indexed inside an
  // n_i x n_i matrix; the operation multiplies leading blocks.
  auto sizes = rng.uniform_sizes(bs, 1, 90);
  VBatch<double> A(dev, sizes), B(dev, sizes), C(dev, sizes), Cref(dev,
                                                                   sizes);
  A.fill_uniform(rng);
  B.fill_uniform(rng);
  C.fill_uniform(rng);
  Cref.copy_from(C);

  const int req = 90;
  irr_gemm<double>(dev, dev.stream(), ta, tb, req, req, req, 1.5, A.ptrs(),
                   A.lda(), 0, 0, B.ptrs(), B.lda(), 0, 0, -0.5, C.ptrs(),
                   C.lda(), 0, 0, A.m_vec(), A.n_vec(), A.m_vec(), bs);
  dev.synchronize_all();

  for (int i = 0; i < bs; ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    la::gemm(ta, tb, n, n, n, 1.5, A.view(i).data(), n, B.view(i).data(), n,
             -0.5, Cref.view(i).data(), n);
  }
  EXPECT_LT(batch_max_diff(C, Cref), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    TransCombos, IrrGemmTrans,
    ::testing::Values(std::pair{la::Trans::No, la::Trans::No},
                      std::pair{la::Trans::Yes, la::Trans::No},
                      std::pair{la::Trans::No, la::Trans::Yes},
                      std::pair{la::Trans::Yes, la::Trans::Yes}));

TEST(IrrGemm, OffsetsAddressSubblocks) {
  Device dev(DeviceModel::a100());
  Rng rng(3);
  const int bs = 12;
  auto sizes = rng.uniform_sizes(bs, 1, 40);
  VBatch<double> A(dev, sizes), C(dev, sizes), Cref(dev, sizes);
  A.fill_uniform(rng);
  C.fill_uniform(rng);
  Cref.copy_from(C);

  // C(4.., 4..) -= A(4.., 0..4) * A(0..4, 4..) — the LU trailing update
  // shape with j = 0, jb = 4.
  const int jb = 4, req = 40;
  irr_gemm<double>(dev, dev.stream(), la::Trans::No, la::Trans::No, req - jb,
                   req - jb, jb, -1.0, A.ptrs(), A.lda(), jb, 0, A.ptrs(),
                   A.lda(), 0, jb, 1.0, C.ptrs(), C.lda(), jb, jb,
                   A.m_vec(), A.n_vec(), A.m_vec(), bs);
  dev.synchronize_all();

  for (int i = 0; i < bs; ++i) {
    const int n = sizes[static_cast<std::size_t>(i)];
    const int r = n - jb;
    if (r <= 0) continue;  // DCWI: no workload for matrices <= jb
    auto a = A.view(i);
    la::gemm(la::Trans::No, la::Trans::No, r, r, jb, -1.0, &a(jb, 0), n,
             &a(0, jb), n, 1.0, &Cref.view(i)(jb, jb), n);
  }
  EXPECT_LT(batch_max_diff(C, Cref), 1e-12);
}

TEST(IrrGemm, NoWorkloadLeavesMemoryUntouched) {
  Device dev(DeviceModel::a100());
  std::vector<int> sizes = {3, 5};
  VBatch<double> A(dev, sizes), C(dev, sizes);
  Rng rng(5);
  A.fill_uniform(rng);
  C.fill_uniform(rng);
  VBatch<double> canary(dev, sizes);
  canary.copy_from(C);

  // Offsets beyond both matrices: nothing may change, even with beta = 0.
  irr_gemm<double>(dev, dev.stream(), la::Trans::No, la::Trans::No, 16, 16,
                   16, 1.0, A.ptrs(), A.lda(), 8, 8, A.ptrs(), A.lda(), 8, 8,
                   0.0, C.ptrs(), C.lda(), 8, 8, A.m_vec(), A.n_vec(),
                   A.m_vec(), 2);
  dev.synchronize_all();
  EXPECT_EQ(batch_max_diff(C, canary), 0.0);
}

TEST(IrrGemm, BetaScalesEvenWhenKExhausted) {
  // A matrix whose k range is exhausted by the offset must still have its
  // C block scaled by beta (partial workload type "beta-only").
  Device dev(DeviceModel::a100());
  std::vector<int> sizes = {6};
  VBatch<double> A(dev, sizes), C(dev, sizes);
  Rng rng(6);
  A.fill_uniform(rng);
  C.fill_uniform(rng);
  const double c00 = C.view(0)(2, 2);
  // k offset = 6 kills the product; C offset (2,2) selects a 4x4 block.
  irr_gemm<double>(dev, dev.stream(), la::Trans::No, la::Trans::No, 16, 16,
                   16, 1.0, A.ptrs(), A.lda(), 2, 6, A.ptrs(), A.lda(), 6, 2,
                   0.5, C.ptrs(), C.lda(), 2, 2, A.m_vec(), A.n_vec(),
                   A.m_vec(), 1);
  dev.synchronize_all();
  EXPECT_DOUBLE_EQ(C.view(0)(2, 2), 0.5 * c00);
  EXPECT_NE(C.view(0)(1, 1), 0.5 * c00);  // outside the offset block
}

TEST(IrrGemm, LargeSingleMatrixCrossesTiles) {
  Device dev(DeviceModel::a100());
  Rng rng(8);
  std::vector<int> sizes = {150};  // > 2x2 tiles of 64
  VBatch<double> A(dev, sizes), B(dev, sizes), C(dev, sizes), Cref(dev,
                                                                   sizes);
  A.fill_uniform(rng);
  B.fill_uniform(rng);
  C.fill_uniform(rng);
  Cref.copy_from(C);
  irr_gemm<double>(dev, dev.stream(), la::Trans::No, la::Trans::No, 150, 150,
                   150, 1.0, A.ptrs(), A.lda(), 0, 0, B.ptrs(), B.lda(), 0,
                   0, 1.0, C.ptrs(), C.lda(), 0, 0, A.m_vec(), A.n_vec(),
                   A.m_vec(), 1);
  dev.synchronize_all();
  la::gemm(la::Trans::No, la::Trans::No, 150, 150, 150, 1.0,
           A.view(0).data(), 150, B.view(0).data(), 150, 1.0,
           Cref.view(0).data(), 150);
  EXPECT_LT(batch_max_diff(C, Cref), 1e-10);
}

// --------------------------------------------------------------- irrTRSM

struct IrrTrsmCase {
  la::Side side;
  la::Uplo uplo;
  la::Trans trans;
  la::Diag diag;
};

class IrrTrsmParam : public ::testing::TestWithParam<IrrTrsmCase> {};

TEST_P(IrrTrsmParam, SolvesIrregularBatch) {
  const auto p = GetParam();
  Device dev(DeviceModel::a100());
  Rng rng(19);
  const int bs = 24;
  // Triangles up to 100 (forces recursion past the base size of 32) with
  // irregular rhs counts.
  std::vector<int> tri = rng.uniform_sizes(bs, 1, 100);
  std::vector<int> rhs = rng.uniform_sizes(bs, 1, 50);
  const auto& bm = p.side == la::Side::Left ? tri : rhs;  // B rows
  const auto& bn = p.side == la::Side::Left ? rhs : tri;  // B cols

  VBatch<double> T(dev, tri, tri), B(dev, bm, bn), B0(dev, bm, bn);
  T.fill_uniform(rng);
  for (int i = 0; i < bs; ++i) {
    auto t = T.view(i);
    for (int d = 0; d < t.rows(); ++d) t(d, d) += 4.0;
  }
  B.fill_uniform(rng);
  B0.copy_from(B);

  const int mreq = p.side == la::Side::Left ? 100 : 50;
  const int nreq = p.side == la::Side::Left ? 50 : 100;
  irr_trsm<double>(dev, dev.stream(), p.side, p.uplo, p.trans, p.diag, mreq,
                   nreq, 1.0, T.ptrs(), T.lda(), 0, 0, B.ptrs(), B.lda(), 0,
                   0, B.m_vec(), B.n_vec(), bs);
  dev.synchronize_all();

  // Compare against the single-matrix reference solve.
  VBatch<double> Bref(dev, bm, bn);
  Bref.copy_from(B0);
  for (int i = 0; i < bs; ++i)
    la::trsm(p.side, p.uplo, p.trans, p.diag, Bref.view(i).rows(),
             Bref.view(i).cols(), 1.0, T.view(i).data(), T.view(i).ld(),
             Bref.view(i).data(), Bref.view(i).ld());
  EXPECT_LT(batch_max_diff(B, Bref), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, IrrTrsmParam,
    ::testing::Values(
        IrrTrsmCase{la::Side::Left, la::Uplo::Lower, la::Trans::No,
                    la::Diag::NonUnit},
        IrrTrsmCase{la::Side::Left, la::Uplo::Lower, la::Trans::No,
                    la::Diag::Unit},
        IrrTrsmCase{la::Side::Left, la::Uplo::Upper, la::Trans::No,
                    la::Diag::NonUnit},
        IrrTrsmCase{la::Side::Left, la::Uplo::Lower, la::Trans::Yes,
                    la::Diag::NonUnit},
        IrrTrsmCase{la::Side::Left, la::Uplo::Upper, la::Trans::Yes,
                    la::Diag::NonUnit},
        IrrTrsmCase{la::Side::Right, la::Uplo::Upper, la::Trans::No,
                    la::Diag::NonUnit},
        IrrTrsmCase{la::Side::Right, la::Uplo::Lower, la::Trans::No,
                    la::Diag::Unit},
        IrrTrsmCase{la::Side::Right, la::Uplo::Upper, la::Trans::Yes,
                    la::Diag::NonUnit},
        IrrTrsmCase{la::Side::Right, la::Uplo::Lower, la::Trans::Yes,
                    la::Diag::NonUnit}));

TEST(IrrTrsm, AlphaAppliedExactlyOnceAcrossRecursion) {
  Device dev(DeviceModel::a100());
  Rng rng(23);
  std::vector<int> tri = {80, 40, 7};
  std::vector<int> rhs = {5, 5, 5};
  VBatch<double> T(dev, tri, tri), B(dev, tri, rhs), Bref(dev, tri, rhs);
  T.fill_uniform(rng);
  for (int i = 0; i < 3; ++i)
    for (int d = 0; d < tri[static_cast<std::size_t>(i)]; ++d)
      T.view(i)(d, d) += 4.0;
  B.fill_uniform(rng);
  Bref.copy_from(B);
  irr_trsm<double>(dev, dev.stream(), la::Side::Left, la::Uplo::Lower,
                   la::Trans::No, la::Diag::NonUnit, 80, 5, -2.5, T.ptrs(),
                   T.lda(), 0, 0, B.ptrs(), B.lda(), 0, 0, B.m_vec(),
                   B.n_vec(), 3);
  dev.synchronize_all();
  for (int i = 0; i < 3; ++i)
    la::trsm(la::Side::Left, la::Uplo::Lower, la::Trans::No,
             la::Diag::NonUnit, tri[static_cast<std::size_t>(i)], 5, -2.5,
             T.view(i).data(), T.view(i).ld(), Bref.view(i).data(),
             Bref.view(i).ld());
  EXPECT_LT(batch_max_diff(B, Bref), 1e-8);
}

TEST(IrrTrsm, BackwardErrorNearMachine) {
  // The paper's Fig. 6 claim: substitution-based irrTRSM reaches ~machine
  // precision backward error.
  Device dev(DeviceModel::a100());
  Rng rng(31);
  const int bs = 50;
  std::vector<int> tri = rng.uniform_sizes(bs, 1, 64);
  std::vector<int> rhs(bs, 8);
  VBatch<double> T(dev, tri, tri), B(dev, tri, rhs), B0(dev, tri, rhs);
  T.fill_uniform(rng);
  for (int i = 0; i < bs; ++i)
    for (int d = 0; d < tri[static_cast<std::size_t>(i)]; ++d)
      T.view(i)(d, d) += 4.0;
  B.fill_uniform(rng);
  B0.copy_from(B);
  irr_trsm<double>(dev, dev.stream(), la::Side::Left, la::Uplo::Lower,
                   la::Trans::No, la::Diag::NonUnit, 64, 8, 1.0, T.ptrs(),
                   T.lda(), 0, 0, B.ptrs(), B.lda(), 0, 0, B.m_vec(),
                   B.n_vec(), bs);
  dev.synchronize_all();
  double worst = 0;
  for (int i = 0; i < bs; ++i)
    worst = std::max(worst, la::trsm_backward_error(
                                la::Uplo::Lower, la::Trans::No,
                                la::Diag::NonUnit, T.view(i), B.view(i),
                                B0.view(i)));
  EXPECT_LT(worst, 1e-13);
}

// ----------------------------------------------------------- panel kernels

TEST(IrrPanel, FusedAndColumnwiseAgree) {
  Device dev(DeviceModel::a100());
  Rng rng(41);
  const int bs = 20;
  auto rows = rng.uniform_sizes(bs, 1, 60);
  std::vector<int> cols = rows;
  VBatch<double> A(dev, rows, cols), B(dev, rows, cols);
  A.fill_uniform(rng);
  B.copy_from(A);
  PivotBatch pa(dev, rows, cols), pb(dev, rows, cols);

  const int jb = 8, req_m = 60;
  irr_getf2_fused<double>(dev, dev.stream(), req_m, jb, A.ptrs(), A.lda(), 0,
                          0, A.m_vec(), A.n_vec(), pa.ptrs(), pa.info(), bs);
  irr_panel_columnwise<double>(dev, dev.stream(), req_m, jb, B.ptrs(),
                               B.lda(), 0, 0, B.m_vec(), B.n_vec(),
                               pb.ptrs(), pb.info(), bs);
  dev.synchronize_all();

  EXPECT_LT(batch_max_diff(A, B), 1e-13);
  for (int i = 0; i < bs; ++i) {
    const int k = std::min(jb, rows[static_cast<std::size_t>(i)]);
    for (int c = 0; c < k; ++c)
      EXPECT_EQ(pa.ipiv_of(i)[c], pb.ipiv_of(i)[c]) << "matrix " << i
                                                    << " col " << c;
  }
}

TEST(IrrPanel, MatchesLapackPanel) {
  Device dev(DeviceModel::a100());
  Rng rng(43);
  std::vector<int> rows = {45, 3, 17};
  std::vector<int> cols = {45, 3, 17};
  VBatch<double> A(dev, rows, cols), R(dev, rows, cols);
  A.fill_uniform(rng);
  R.copy_from(A);
  PivotBatch piv(dev, rows, cols);
  const int jb = 8;
  irr_getf2_fused<double>(dev, dev.stream(), 45, jb, A.ptrs(), A.lda(), 0, 0,
                          A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), 3);
  dev.synchronize_all();
  for (int i = 0; i < 3; ++i) {
    const int m = rows[static_cast<std::size_t>(i)];
    const int k = std::min(jb, m);
    std::vector<int> ip(static_cast<std::size_t>(k));
    // Reference: factor the m x k panel only.
    la::getf2(m, k, R.view(i).data(), m, ip.data());
    for (int c = 0; c < k; ++c) EXPECT_EQ(piv.ipiv_of(i)[c], ip[c]);
    for (int c = 0; c < k; ++c)
      for (int r = 0; r < m; ++r)
        EXPECT_NEAR(A.view(i)(r, c), R.view(i)(r, c), 1e-13);
  }
}

// --------------------------------------------------------------- irrLASWP

TEST(IrrLaswp, LoopedAndRehearsalAgree) {
  Device dev(DeviceModel::a100());
  Rng rng(53);
  const int bs = 25;
  auto n = rng.uniform_sizes(bs, 1, 70);
  VBatch<double> A(dev, n), B(dev, n);
  A.fill_uniform(rng);
  B.copy_from(A);
  PivotBatch piv(dev, n, n);
  // Factor a panel to obtain realistic pivots.
  const int j = 8, jb = 8;
  irr_getf2_fused<double>(dev, dev.stream(), 70 - j, jb, A.ptrs(), A.lda(),
                          j, j, A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(),
                          bs);
  // Copy the factored panels into B so both start identical.
  B.copy_from(A);
  irr_laswp<double>(dev, dev.stream(), j, jb, A.ptrs(), A.lda(), A.m_vec(),
                    A.n_vec(), piv.ptrs(), bs, LaswpMethod::kLooped);
  irr_laswp<double>(dev, dev.stream(), j, jb, B.ptrs(), B.lda(), B.m_vec(),
                    B.n_vec(), piv.ptrs(), bs, LaswpMethod::kRehearsal);
  dev.synchronize_all();
  EXPECT_EQ(batch_max_diff(A, B), 0.0);
}

TEST(IrrLaswp, MatchesLapackLaswp) {
  Device dev(DeviceModel::a100());
  Rng rng(59);
  std::vector<int> n = {30};
  VBatch<double> A(dev, n), R(dev, n);
  A.fill_uniform(rng);
  R.copy_from(A);
  PivotBatch piv(dev, n, n);
  // Hand-crafted absolute pivots for rows 4..8.
  int* ip = const_cast<int*>(piv.ipiv_of(0));
  ip[4] = 20;
  ip[5] = 5;
  ip[6] = 29;
  ip[7] = 4;
  irr_laswp<double>(dev, dev.stream(), 4, 4, A.ptrs(), A.lda(), A.m_vec(),
                    A.n_vec(), piv.ptrs(), 1, LaswpMethod::kRehearsal);
  dev.synchronize_all();
  // LAPACK reference applied to left columns [0,4) and right [8,30).
  la::laswp(4, R.view(0).data(), 30, 4, 8, ip);
  la::laswp(30 - 8, R.view(0).data() + 8 * 30, 30, 4, 8, ip);
  EXPECT_EQ(batch_max_diff(A, R), 0.0);
}

// ----------------------------------------------------------------- irrLU

class IrrLuDevices : public ::testing::TestWithParam<const char*> {
 protected:
  static DeviceModel model(const char* name) {
    if (std::string(name) == "a100") return DeviceModel::a100();
    if (std::string(name) == "mi100") return DeviceModel::mi100();
    return DeviceModel::test_tiny();  // tiny smem: forces column-wise panel
  }
};

TEST_P(IrrLuDevices, FactorsIrregularBatch) {
  Device dev(model(GetParam()));
  Rng rng(61);
  const int bs = 30;
  auto n = rng.uniform_sizes(bs, 1, 96);
  VBatch<double> A(dev, n), A0(dev, n);
  A.fill_uniform(rng);
  A0.copy_from(A);
  PivotBatch piv(dev, n, n);

  irr_getrf<double>(dev, dev.stream(), 96, 96, A.ptrs(), A.lda(), 0, 0,
                    A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs);
  dev.synchronize_all();

  for (int i = 0; i < bs; ++i) {
    EXPECT_EQ(piv.info()[i], 0) << "matrix " << i;
    const double res =
        la::lu_residual(A.view(i), piv.ipiv_of(i), A0.view(i));
    EXPECT_LT(res, 60.0) << "matrix " << i << " size "
                         << n[static_cast<std::size_t>(i)];
  }
}

INSTANTIATE_TEST_SUITE_P(Devices, IrrLuDevices,
                         ::testing::Values("a100", "mi100", "tiny"));

TEST(IrrLu, RectangularBatches) {
  Device dev(DeviceModel::a100());
  Rng rng(67);
  const int bs = 16;
  auto m = rng.uniform_sizes(bs, 1, 80);
  auto n = rng.uniform_sizes(bs, 1, 80);
  VBatch<double> A(dev, m, n), A0(dev, m, n);
  A.fill_uniform(rng);
  A0.copy_from(A);
  PivotBatch piv(dev, m, n);
  irr_getrf<double>(dev, dev.stream(), 80, 80, A.ptrs(), A.lda(), 0, 0,
                    A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs);
  dev.synchronize_all();
  for (int i = 0; i < bs; ++i)
    EXPECT_LT(la::lu_residual(A.view(i), piv.ipiv_of(i), A0.view(i)), 60.0);
}

TEST(IrrLu, PanelPathsProduceSamePivots) {
  Device dev(DeviceModel::a100());
  Rng rng(71);
  const int bs = 10;
  auto n = rng.uniform_sizes(bs, 1, 64);
  VBatch<double> A(dev, n), B(dev, n);
  A.fill_uniform(rng);
  B.copy_from(A);
  PivotBatch pa(dev, n, n), pb(dev, n, n);
  IrrLuOptions fused;
  IrrLuOptions colwise;
  colwise.force_columnwise_panel = true;
  irr_getrf<double>(dev, dev.stream(), 64, 64, A.ptrs(), A.lda(), 0, 0,
                    A.m_vec(), A.n_vec(), pa.ptrs(), pa.info(), bs, fused);
  irr_getrf<double>(dev, dev.stream(), 64, 64, B.ptrs(), B.lda(), 0, 0,
                    B.m_vec(), B.n_vec(), pb.ptrs(), pb.info(), bs, colwise);
  dev.synchronize_all();
  for (int i = 0; i < bs; ++i)
    for (int c = 0; c < n[static_cast<std::size_t>(i)]; ++c)
      ASSERT_EQ(pa.ipiv_of(i)[c], pb.ipiv_of(i)[c]);
  EXPECT_LT(batch_max_diff(A, B), 1e-12);
}

TEST(IrrLu, PanelWidthsAgree) {
  Device dev(DeviceModel::a100());
  Rng rng(73);
  const int bs = 8;
  auto n = rng.uniform_sizes(bs, 1, 70);
  VBatch<double> A0(dev, n);
  A0.fill_uniform(rng);
  std::vector<double> residuals;
  for (int nb : {8, 16, 32, 64}) {
    VBatch<double> A(dev, n);
    A.copy_from(A0);
    PivotBatch piv(dev, n, n);
    IrrLuOptions opts;
    opts.nb = nb;
    irr_getrf<double>(dev, dev.stream(), 70, 70, A.ptrs(), A.lda(), 0, 0,
                      A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs,
                      opts);
    dev.synchronize_all();
    for (int i = 0; i < bs; ++i)
      EXPECT_LT(la::lu_residual(A.view(i), piv.ipiv_of(i), A0.view(i)), 60.0)
          << "nb=" << nb;
  }
}

TEST(IrrLu, SingularMatrixFlagsInfo) {
  Device dev(DeviceModel::a100());
  std::vector<int> n = {5, 4};
  VBatch<double> A(dev, n);
  Rng rng(79);
  A.fill_uniform(rng);
  // Make matrix 1 exactly singular: zero out its second column from the
  // start so column 2's pivot search finds only zeros after elimination.
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) A.view(1)(r, c) = (r + 1.0) * (c + 1.0);
  PivotBatch piv(dev, n, n);
  irr_getrf<double>(dev, dev.stream(), 5, 5, A.ptrs(), A.lda(), 0, 0,
                    A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), 2);
  dev.synchronize_all();
  EXPECT_EQ(piv.info()[0], 0);
  EXPECT_GT(piv.info()[1], 0);  // rank-1 matrix: zero pivot detected
}

TEST(IrrLu, BatchWithZeroAndOneSizedMatrices) {
  Device dev(DeviceModel::a100());
  std::vector<int> n = {0, 1, 2, 50};
  VBatch<double> A(dev, n), A0(dev, n);
  Rng rng(83);
  A.fill_uniform(rng);
  A0.copy_from(A);
  PivotBatch piv(dev, n, n);
  irr_getrf<double>(dev, dev.stream(), 50, 50, A.ptrs(), A.lda(), 0, 0,
                    A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), 4);
  dev.synchronize_all();
  for (int i = 1; i < 4; ++i)
    EXPECT_LT(la::lu_residual(A.view(i), piv.ipiv_of(i), A0.view(i)), 60.0);
  // The 1x1 matrix: LU is the value itself, pivot 0.
  EXPECT_EQ(piv.ipiv_of(1)[0], 0);
  EXPECT_DOUBLE_EQ(A.view(1)(0, 0), A0.view(1)(0, 0));
}

TEST(IrrLu, SolveRoundTrip) {
  // Factor + manual forward/backward substitution per matrix must solve
  // A x = b to high accuracy.
  Device dev(DeviceModel::a100());
  Rng rng(89);
  const int bs = 12;
  auto n = rng.uniform_sizes(bs, 1, 60);
  VBatch<double> A(dev, n), A0(dev, n);
  A.fill_uniform(rng);
  A0.copy_from(A);
  PivotBatch piv(dev, n, n);
  irr_getrf<double>(dev, dev.stream(), 60, 60, A.ptrs(), A.lda(), 0, 0,
                    A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs);
  dev.synchronize_all();
  for (int i = 0; i < bs; ++i) {
    const int ni = n[static_cast<std::size_t>(i)];
    std::vector<double> b(static_cast<std::size_t>(ni)), x;
    for (auto& v : b) v = rng.uniform(-1, 1);
    x = b;
    la::getrs(la::Trans::No, ni, 1, A.view(i).data(), ni, piv.ipiv_of(i),
              x.data(), ni);
    EXPECT_LT(la::solve_residual(A0.view(i), x.data(), b.data()), 1e-8)
        << "matrix " << i << " n=" << ni;
  }
}

TEST(IrrLu, FullyAsyncBeforeSynchronize) {
  // All launches must enqueue without any host-side blocking: since the
  // driver's scratch comes from the device workspace cache (whose buffers
  // outlive the enqueued kernels), even the self-allocating mode needs no
  // trailing workspace-lifetime sync.
  Device dev(DeviceModel::a100());
  Rng rng(97);
  std::vector<int> n = {40, 20, 10};
  VBatch<double> A(dev, n);
  A.fill_uniform(rng);
  PivotBatch piv(dev, n, n);
  irr_getrf<double>(dev, dev.stream(), 40, 40, A.ptrs(), A.lda(), 0, 0,
                    A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), 3);
  EXPECT_EQ(dev.sync_count(), 0);
  EXPECT_GT(dev.launch_count(), 5);
}

TEST(IrrLaswpDual, MatchesSingleStream) {
  Device dev(DeviceModel::a100());
  Rng rng(131);
  const int bs = 20;
  auto n = rng.uniform_sizes(bs, 17, 90);
  VBatch<double> A(dev, n), B(dev, n);
  A.fill_uniform(rng);
  PivotBatch piv(dev, n, n);
  const int j = 8, jb = 8;
  irr_getf2_fused<double>(dev, dev.stream(), 90 - j, jb, A.ptrs(), A.lda(),
                          j, j, A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(),
                          bs);
  B.copy_from(A);
  irr_laswp<double>(dev, dev.stream(), j, jb, A.ptrs(), A.lda(), A.m_vec(),
                    A.n_vec(), piv.ptrs(), bs, LaswpMethod::kRehearsal);
  irr_laswp_dual<double>(dev, dev.stream(0), dev.stream(1), j, jb, B.ptrs(),
                         B.lda(), B.m_vec(), B.n_vec(), piv.ptrs(), bs);
  dev.synchronize_all();
  EXPECT_EQ(batch_max_diff(A, B), 0.0);
}

TEST(IrrLaswpDual, OverlapsLeftAndRightMoves) {
  // With both wide left and right parts, the dual-stream variant should
  // finish faster than the sequential rehearsal method.
  Device dev(DeviceModel::a100());
  Rng rng(137);
  const int bs = 200;
  std::vector<int> n(bs, 512);
  const int j = 240, jb = 32;  // wide on both sides of the panel
  VBatch<double> A(dev, n);
  A.fill_uniform(rng);
  PivotBatch piv(dev, n, n);
  for (int i = 0; i < bs; ++i) {
    int* ip = const_cast<int*>(piv.ipiv_of(i));
    for (int r = j; r < j + jb; ++r) ip[r] = rng.uniform_int(r, 511);
  }
  auto ws = dev.alloc<int>(irr_laswp_workspace_size(bs, jb));

  dev.reset_timeline();
  irr_laswp<double>(dev, dev.stream(0), j, jb, A.ptrs(), A.lda(), A.m_vec(),
                    A.n_vec(), piv.ptrs(), bs, LaswpMethod::kRehearsal,
                    ws.data());
  const double t_seq = dev.synchronize_all();

  dev.reset_timeline();
  irr_laswp_dual<double>(dev, dev.stream(0), dev.stream(1), j, jb, A.ptrs(),
                         A.lda(), A.m_vec(), A.n_vec(), piv.ptrs(), bs,
                         ws.data());
  const double t_dual = dev.synchronize_all();
  EXPECT_LT(t_dual, 0.95 * t_seq);
}

TEST(IrrLaswpDual, EventOrderingEnforced) {
  // A kernel enqueued on main after irr_laswp_dual must start only after
  // the aux stream's right-half move completed.
  Device dev(DeviceModel::a100());
  Rng rng(139);
  std::vector<int> n = {256};
  VBatch<double> A(dev, n);
  A.fill_uniform(rng);
  PivotBatch piv(dev, n, n);
  int* ip = const_cast<int*>(piv.ipiv_of(0));
  for (int r = 8; r < 16; ++r) ip[r] = r + 100;
  auto ws = dev.alloc<int>(irr_laswp_workspace_size(1, 8));
  irr_laswp_dual<double>(dev, dev.stream(0), dev.stream(1), 8, 8, A.ptrs(),
                         A.lda(), A.m_vec(), A.n_vec(), piv.ptrs(), 1,
                         ws.data());
  const double aux_done = dev.stream(1).completion_time();
  EXPECT_GE(dev.stream(0).completion_time(), aux_done);
}

// ------------------------------------------------------ FP32 instantiation

TEST(IrrLuFloat, FactorsSinglePrecisionBatch) {
  Device dev(DeviceModel::a100());
  Rng rng(141);
  const int bs = 15;
  auto n = rng.uniform_sizes(bs, 1, 60);
  VBatch<float> A(dev, n), A0(dev, n);
  for (int i = 0; i < bs; ++i) rng.fill_uniform(A.view(i), -1.0f, 1.0f);
  A0.copy_from(A);
  PivotBatch piv(dev, n, n);
  irr_getrf<float>(dev, dev.stream(), 60, 60, A.ptrs(), A.lda(), 0, 0,
                   A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs);
  dev.synchronize_all();
  // Verify through a single solve per matrix at FP32 tolerance.
  for (int i = 0; i < bs; ++i) {
    const int ni = n[static_cast<std::size_t>(i)];
    std::vector<float> b(static_cast<std::size_t>(ni), 1.0f), x = b;
    la::getrs(la::Trans::No, ni, 1, A.view(i).data(), ni, piv.ipiv_of(i),
              x.data(), ni);
    float rmax = 0, xmax = 0;
    for (int r = 0; r < ni; ++r) {
      float acc = 0;
      for (int c = 0; c < ni; ++c) acc += A0.view(i)(r, c) * x[c];
      rmax = std::max(rmax, std::abs(acc - 1.0f));
      xmax = std::max(xmax, std::abs(x[static_cast<std::size_t>(r)]));
    }
    EXPECT_LT(rmax / (1.0f + xmax), 2e-3f) << "matrix " << i << " n=" << ni;
  }
}

TEST(IrrGemmFloat, MatchesReference) {
  Device dev(DeviceModel::a100());
  Rng rng(143);
  std::vector<int> sizes = {33, 7, 64};
  VBatch<float> A(dev, sizes), B(dev, sizes), C(dev, sizes);
  for (int i = 0; i < 3; ++i) {
    rng.fill_uniform(A.view(i), -1.0f, 1.0f);
    rng.fill_uniform(B.view(i), -1.0f, 1.0f);
    rng.fill_uniform(C.view(i), -1.0f, 1.0f);
  }
  VBatch<float> Cref(dev, sizes);
  Cref.copy_from(C);
  irr_gemm<float>(dev, dev.stream(), la::Trans::No, la::Trans::No, 64, 64,
                  64, 1.0f, A.ptrs(), A.lda(), 0, 0, B.ptrs(), B.lda(), 0, 0,
                  0.5f, C.ptrs(), C.lda(), 0, 0, A.m_vec(), A.n_vec(),
                  A.m_vec(), 3);
  dev.synchronize_all();
  for (int i = 0; i < 3; ++i) {
    const int ni = sizes[static_cast<std::size_t>(i)];
    la::gemm(la::Trans::No, la::Trans::No, ni, ni, ni, 1.0f,
             A.view(i).data(), ni, B.view(i).data(), ni, 0.5f,
             Cref.view(i).data(), ni);
    for (int c = 0; c < ni; ++c)
      for (int r = 0; r < ni; ++r)
        EXPECT_NEAR(C.view(i)(r, c), Cref.view(i)(r, c), 1e-3f);
  }
}

// --------------------------------------------------- DCWI randomized fuzz

TEST(DcwiFuzz, GemmAgreesWithPerMatrixReferenceUnderRandomOffsets) {
  // 60 random configurations of required dims, offsets and local sizes;
  // for each, irr_gemm on views must equal per-matrix reference GEMMs on
  // the effective blocks.
  Device dev(DeviceModel::a100());
  Rng rng(151);
  for (int trial = 0; trial < 60; ++trial) {
    const int bs = rng.uniform_int(1, 8);
    auto sizes = rng.uniform_sizes(bs, 1, 40);
    VBatch<double> A(dev, sizes), B(dev, sizes), C(dev, sizes),
        Cref(dev, sizes);
    A.fill_uniform(rng);
    B.fill_uniform(rng);
    C.fill_uniform(rng);
    Cref.copy_from(C);
    const int m = rng.uniform_int(1, 48), n = rng.uniform_int(1, 48),
              k = rng.uniform_int(0, 48);
    const int off = rng.uniform_int(0, 12);  // same offset for all operands
    irr_gemm<double>(dev, dev.stream(), la::Trans::No, la::Trans::No, m, n,
                     k, 1.3, A.ptrs(), A.lda(), off, off, B.ptrs(), B.lda(),
                     off, off, -0.7, C.ptrs(), C.lda(), off, off, A.m_vec(),
                     A.n_vec(), A.m_vec(), bs);
    dev.synchronize_all();
    for (int i = 0; i < bs; ++i) {
      const int loc = sizes[static_cast<std::size_t>(i)];
      const int em = std::max(0, std::min(m, loc - off));
      const int en = std::max(0, std::min(n, loc - off));
      const int ek = std::max(0, std::min(k, loc - off));
      if (em == 0 || en == 0) continue;
      auto a = A.view(i);
      auto cr = Cref.view(i);
      la::gemm(la::Trans::No, la::Trans::No, em, en, ek, 1.3, &a(off, off),
               loc, &B.view(i)(off, off), loc, -0.7, &cr(off, off), loc);
    }
    ASSERT_LT(batch_max_diff(C, Cref), 1e-11) << "trial " << trial;
  }
}

TEST(IrrLu, ConcurrentSwapOptionMatchesDefault) {
  Device dev(DeviceModel::a100());
  Rng rng(149);
  const int bs = 12;
  auto n = rng.uniform_sizes(bs, 1, 80);
  VBatch<double> A(dev, n), B(dev, n);
  A.fill_uniform(rng);
  B.copy_from(A);
  PivotBatch pa(dev, n, n), pb(dev, n, n);
  irr_getrf<double>(dev, dev.stream(), 80, 80, A.ptrs(), A.lda(), 0, 0,
                    A.m_vec(), A.n_vec(), pa.ptrs(), pa.info(), bs);
  IrrLuOptions opts;
  opts.laswp_aux_stream = &dev.stream(1);
  irr_getrf<double>(dev, dev.stream(), 80, 80, B.ptrs(), B.lda(), 0, 0,
                    B.m_vec(), B.n_vec(), pb.ptrs(), pb.info(), bs, opts);
  dev.synchronize_all();
  EXPECT_EQ(batch_max_diff(A, B), 0.0);
  for (int i = 0; i < bs; ++i)
    for (int c = 0; c < n[static_cast<std::size_t>(i)]; ++c)
      ASSERT_EQ(pa.ipiv_of(i)[c], pb.ipiv_of(i)[c]);
}

// ---------------------------------------------------------------- autotune

TEST(Autotune, PicksBestCandidate) {
  Rng rng(157);
  const auto sizes = rng.uniform_sizes(500, 1, 256);
  const auto r = irrlu::batch::autotune_panel_width(
      irrlu::gpusim::DeviceModel::a100(), sizes, 48);
  ASSERT_EQ(r.candidates.size(), r.seconds.size());
  // The returned nb must be the argmin of the measured times.
  double best = r.seconds[0];
  int best_nb = r.candidates[0];
  for (std::size_t i = 1; i < r.seconds.size(); ++i)
    if (r.seconds[i] < best) {
      best = r.seconds[i];
      best_nb = r.candidates[i];
    }
  EXPECT_EQ(r.nb, best_nb);
  EXPECT_TRUE(std::find(r.candidates.begin(), r.candidates.end(), r.nb) !=
              r.candidates.end());
}

TEST(Autotune, DistributionDependent) {
  // Tiny-matrix batches and large-matrix batches should be allowed to pick
  // different widths; at minimum the tuner must run and return valid
  // results on both distributions.
  Rng rng(163);
  const auto tiny = rng.uniform_sizes(300, 1, 24);
  const auto big = rng.uniform_sizes(50, 384, 512);
  const auto r1 = irrlu::batch::autotune_panel_width(
      irrlu::gpusim::DeviceModel::a100(), tiny, 32);
  const auto r2 = irrlu::batch::autotune_panel_width(
      irrlu::gpusim::DeviceModel::a100(), big, 8);
  EXPECT_GT(r1.nb, 0);
  EXPECT_GT(r2.nb, 0);
  for (double t : r1.seconds) EXPECT_GT(t, 0.0);
  for (double t : r2.seconds) EXPECT_GT(t, 0.0);
}

TEST(Autotune, CustomCandidates) {
  Rng rng(167);
  const auto sizes = rng.uniform_sizes(64, 1, 64);
  const auto r = irrlu::batch::autotune_panel_width(
      irrlu::gpusim::DeviceModel::mi100(), sizes, 16, {4, 12});
  EXPECT_TRUE(r.nb == 4 || r.nb == 12);
  EXPECT_EQ(r.candidates, (std::vector<int>{4, 12}));
}
