// Tests for the interleaved (SoA) batch layout (DESIGN.md §12): pack /
// unpack round trips, bitwise agreement of the dispatch-cached
// batch-axis-vectorized kernels with the strided engine path, exact
// dispatch-cache counters and plan replay, and the multifrontal /
// solver / service routing — whose factors must be bit-identical with
// the routing on and off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "irrblas/autotune.hpp"
#include "irrblas/dispatch.hpp"
#include "irrblas/interleaved.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "service/solver_service.hpp"
#include "sparse/csr.hpp"
#include "sparse/solver.hpp"

namespace la = irrlu::la;
using namespace irrlu::batch;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;
using irrlu::service::ServiceOptions;
using irrlu::service::SolveRequest;
using irrlu::service::SolverService;
using irrlu::sparse::CsrMatrix;
using irrlu::sparse::laplacian2d;
using irrlu::sparse::SolverOptions;
using irrlu::sparse::SparseDirectSolver;

namespace {

bool bits_equal(double a, double b) {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

/// Bit-for-bit comparison of two same-shape strided batches.
::testing::AssertionResult batch_bits_equal(const VBatch<double>& a,
                                            const VBatch<double>& b) {
  for (int i = 0; i < a.batch_size(); ++i) {
    auto va = a.view(i);
    auto vb = b.view(i);
    for (int c = 0; c < va.cols(); ++c)
      for (int r = 0; r < va.rows(); ++r)
        if (!bits_equal(va(r, c), vb(r, c)))
          return ::testing::AssertionFailure()
                 << "matrix " << i << " (" << r << "," << c
                 << "): " << va(r, c) << " vs " << vb(r, c);
  }
  return ::testing::AssertionSuccess();
}

/// Packs a uniform strided batch into an interleaved class buffer
/// through the device pack kernel.
void pack(Device& dev, const VBatch<double>& src, InterleavedBatch<double>& dst,
          double* absmax = nullptr) {
  IlvPackDesc d;
  d.dst = dst.view();
  d.m = dst.m();
  d.n = dst.n();
  d.lanes = src.batch_size();
  d.src = src.ptrs();
  d.src_ld = src.lda();
  d.absmax = absmax;
  ilv_pack(dev, dev.stream(), {d});
}

void unpack(Device& dev, const VBatch<double>& dst,
            InterleavedBatch<double>& src, double* absmax = nullptr) {
  IlvPackDesc d;
  d.dst = src.view();
  d.m = src.m();
  d.n = src.n();
  d.lanes = dst.batch_size();
  d.src = dst.ptrs();
  d.src_ld = dst.lda();
  d.absmax = absmax;
  ilv_unpack(dev, dev.stream(), {d});
}

std::vector<int> uniform_sizes(int n, int batch) {
  return std::vector<int>(static_cast<std::size_t>(batch), n);
}

}  // namespace

// ----------------------------------------------------------- layout basics

TEST(InterleavedLayout, ElementAddressing) {
  Device dev(DeviceModel::a100());
  InterleavedBatch<double> a(dev, 3, 2, 5);
  for (int c = 0; c < 2; ++c)
    for (int r = 0; r < 3; ++r)
      for (int i = 0; i < 5; ++i) a.at(r, c, i) = 100.0 * r + 10.0 * c + i;
  // (r, c) of lane i at data[(c*m + r)*batch + i].
  EXPECT_EQ(a.data()[(1 * 3 + 2) * 5 + 4], 100.0 * 2 + 10.0 * 1 + 4);
  const IlvView v = a.view();
  EXPECT_EQ(v.sub(2, 1), a.data() + (1 * 3 + 2) * 5);
  EXPECT_EQ(v.subview(1, 1).sub(1, 0), v.sub(2, 1));
}

TEST(InterleavedLayout, PackUnpackRoundTripBitwise) {
  Device dev(DeviceModel::a100());
  const int n = 13, batch = 9;
  VBatch<double> src(dev, uniform_sizes(n, batch));
  Rng rng(42);
  src.fill_uniform(rng, -3.0, 3.0);
  VBatch<double> ref(dev, uniform_sizes(n, batch));
  ref.copy_from(src);

  InterleavedBatch<double> ilv(dev, n, n, batch);
  std::vector<double> norm_pack(batch, -1.0), norm_unpack(batch, -1.0);
  pack(dev, src, ilv, norm_pack.data());
  // Clobber the strided side, then unpack: every bit must come back.
  for (int i = 0; i < batch; ++i) {
    auto v = src.view(i);
    for (int c = 0; c < n; ++c)
      for (int r = 0; r < n; ++r) v(r, c) = 0.0;
  }
  unpack(dev, src, ilv, norm_unpack.data());
  dev.synchronize_all();
  EXPECT_TRUE(batch_bits_equal(src, ref));
  // The fused absmax matches the host reduction on both sweeps.
  for (int i = 0; i < batch; ++i) {
    double mx = 0;
    auto v = ref.view(i);
    for (int c = 0; c < n; ++c)
      for (int r = 0; r < n; ++r) mx = std::max(mx, std::abs(v(r, c)));
    EXPECT_TRUE(bits_equal(norm_pack[static_cast<std::size_t>(i)], mx));
    EXPECT_TRUE(bits_equal(norm_unpack[static_cast<std::size_t>(i)], mx));
  }
}

TEST(InterleavedLayout, EmptyAndDegenerateBatches) {
  Device dev(DeviceModel::a100());
  // batch_size 0: every stage is a no-op and no launch is recorded.
  InterleavedBatch<double> empty(dev, 4, 4, 0);
  const long launches0 = dev.launch_count();
  ilv_pack(dev, dev.stream(), {});
  KernelCache cache;
  const Dispatch disp{&cache, nullptr};
  irr_getf2_ilv(dev, dev.stream(), disp, empty.view(), 4, 4, 0, nullptr,
                nullptr);
  irr_gemm_ilv(dev, dev.stream(), disp, 4, 4, 4, 1.0, empty.view(),
               empty.view(), 1.0, empty.view(), 0);
  irr_trsm_ilv(dev, dev.stream(), disp, la::Side::Left, la::Uplo::Lower,
               la::Diag::Unit, 4, 4, 1.0, empty.view(), empty.view(), 0);
  EXPECT_EQ(dev.launch_count(), launches0);
  // Zero-lane wrappers return before even resolving a kernel.
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0);

  // Zero-sized matrices with live lanes: kernels run and do nothing.
  InterleavedBatch<double> zero(dev, 0, 0, 3);
  std::vector<int> piv_store(3, -1);
  std::vector<int*> piv{piv_store.data(), piv_store.data() + 1,
                        piv_store.data() + 2};
  std::vector<int> info(3, 0);
  irr_getf2_ilv(dev, dev.stream(), disp, zero.view(), 0, 0, 3, piv.data(),
                info.data());
  irr_gemm_ilv(dev, dev.stream(), disp, 0, 5, 2, 1.0, zero.view(),
               zero.view(), 0.0, zero.view(), 3);
  dev.synchronize_all();
  EXPECT_EQ(info, (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(piv_store, (std::vector<int>{-1, -1, -1}));

  // batch_size 1 round-trips.
  VBatch<double> one(dev, uniform_sizes(5, 1));
  Rng rng(3);
  one.fill_uniform(rng);
  VBatch<double> one_ref(dev, uniform_sizes(5, 1));
  one_ref.copy_from(one);
  InterleavedBatch<double> ilv1(dev, 5, 5, 1);
  pack(dev, one, ilv1);
  unpack(dev, one, ilv1);
  EXPECT_TRUE(batch_bits_equal(one, one_ref));
}

// --------------------------------------------- kernels vs the strided path

class IlvGetf2Sizes : public ::testing::TestWithParam<int> {};

TEST_P(IlvGetf2Sizes, MatchesStridedBitwise) {
  const int n = GetParam();
  const int batch = 33;  // odd: exercises a partial trailing lane chunk
  Device dev(DeviceModel::a100());
  const auto sizes = uniform_sizes(n, batch);
  VBatch<double> a_str(dev, sizes), a_ilv(dev, sizes);
  Rng rng(7u + static_cast<unsigned>(n));
  a_str.fill_uniform(rng);
  // One singular lane: info/zero-pivot parity matters too.
  if (n >= 2) {
    auto v = a_str.view(batch / 2);
    for (int r = 0; r < n; ++r) v(r, 1) = 0.0;
  }
  a_ilv.copy_from(a_str);

  PivotBatch piv_str(dev, sizes, sizes), piv_ilv(dev, sizes, sizes);
  IrrLuOptions lu;  // nb = 32 >= n: the fused-panel engine path
  irr_getrf<double>(dev, dev.stream(), n, n, a_str.ptrs(), a_str.lda(), 0, 0,
                    a_str.m_vec(), a_str.n_vec(), piv_str.ptrs(),
                    piv_str.info(), batch, lu);

  KernelCache cache;
  const Dispatch disp{&cache, nullptr};
  InterleavedBatch<double> ilv(dev, n, n, batch);
  pack(dev, a_ilv, ilv);
  irr_getf2_ilv(dev, dev.stream(), disp, ilv.view(), n, n, batch,
                piv_ilv.ptrs(), piv_ilv.info());
  unpack(dev, a_ilv, ilv);
  dev.synchronize_all();

  EXPECT_TRUE(batch_bits_equal(a_str, a_ilv));
  for (int i = 0; i < batch; ++i) {
    EXPECT_EQ(piv_str.info()[i], piv_ilv.info()[i]) << "lane " << i;
    for (int j = 0; j < n; ++j)
      EXPECT_EQ(piv_str.ipiv_of(i)[j], piv_ilv.ipiv_of(i)[j])
          << "lane " << i << " col " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IlvGetf2Sizes,
                         ::testing::Values(1, 2, 5, 8, 13, 16, 17, 24, 32));

TEST(IlvGetf2, BoostedMatchesStridedBitwise) {
  const int n = 12, batch = 17;
  Device dev(DeviceModel::a100());
  const auto sizes = uniform_sizes(n, batch);
  VBatch<double> a_str(dev, sizes), a_ilv(dev, sizes);
  Rng rng(11);
  a_str.fill_uniform(rng);
  // Make a couple of lanes degenerate so boosting actually fires.
  for (int lane : {2, 9}) {
    auto v = a_str.view(lane);
    for (int r = 0; r < n; ++r) v(r, 3) = v(r, 0) * 1e-14;
  }
  a_ilv.copy_from(a_str);

  const double tau = 1e-4;  // aggressive: guarantees boosts on this data
  std::vector<double> anorm_str(batch, 0.0), anorm_ilv(batch, -1.0);
  std::vector<int> boost_str(batch, 0), boost_ilv(batch, 0);
  for (int i = 0; i < batch; ++i) {
    auto v = a_str.view(i);
    double mx = 0;
    for (int c = 0; c < n; ++c)
      for (int r = 0; r < n; ++r) mx = std::max(mx, std::abs(v(r, c)));
    anorm_str[static_cast<std::size_t>(i)] = mx;
  }

  PivotBatch piv_str(dev, sizes, sizes), piv_ilv(dev, sizes, sizes);
  IrrLuOptions lu;
  lu.boost.tau = tau;
  lu.boost.anorm_vec = anorm_str.data();
  lu.boost.boost_vec = boost_str.data();
  irr_getrf<double>(dev, dev.stream(), n, n, a_str.ptrs(), a_str.lda(), 0, 0,
                    a_str.m_vec(), a_str.n_vec(), piv_str.ptrs(),
                    piv_str.info(), batch, lu);

  KernelCache cache;
  const Dispatch disp{&cache, nullptr};
  InterleavedBatch<double> ilv(dev, n, n, batch);
  // The fused pack absmax feeds the boost threshold, as in the engine.
  pack(dev, a_ilv, ilv, anorm_ilv.data());
  irr_getf2_ilv(dev, dev.stream(), disp, ilv.view(), n, n, batch,
                piv_ilv.ptrs(), piv_ilv.info(), tau, anorm_ilv.data(),
                boost_ilv.data());
  unpack(dev, a_ilv, ilv);
  dev.synchronize_all();

  long total_boosts = 0;
  for (int i = 0; i < batch; ++i) {
    EXPECT_TRUE(bits_equal(anorm_str[static_cast<std::size_t>(i)],
                           anorm_ilv[static_cast<std::size_t>(i)]));
    EXPECT_EQ(boost_str[static_cast<std::size_t>(i)],
              boost_ilv[static_cast<std::size_t>(i)])
        << "lane " << i;
    total_boosts += boost_str[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(total_boosts, 0);  // the scenario really exercised boosting
  EXPECT_TRUE(batch_bits_equal(a_str, a_ilv));
}

struct TrsmCase {
  la::Side side;
  la::Uplo uplo;
  la::Diag diag;
  int tri, other;
  double alpha;
};

class IlvTrsmCases : public ::testing::TestWithParam<TrsmCase> {};

TEST_P(IlvTrsmCases, MatchesStridedBitwise) {
  const TrsmCase tc = GetParam();
  const bool left = tc.side == la::Side::Left;
  const int m = left ? tc.tri : tc.other;
  const int n = left ? tc.other : tc.tri;
  const int batch = 9;
  Device dev(DeviceModel::a100());

  VBatch<double> t(dev, uniform_sizes(tc.tri, batch));
  VBatch<double> b_str(dev, uniform_sizes(m, batch), uniform_sizes(n, batch));
  VBatch<double> b_ilv(dev, uniform_sizes(m, batch), uniform_sizes(n, batch));
  Rng rng(19u + static_cast<unsigned>(tc.tri * 64 + tc.other));
  t.fill_uniform(rng);
  for (int i = 0; i < batch; ++i) {
    auto v = t.view(i);
    for (int d = 0; d < tc.tri; ++d) v(d, d) += 3.0;  // well-scaled solves
  }
  b_str.fill_uniform(rng);
  b_ilv.copy_from(b_str);

  irr_trsm<double>(dev, dev.stream(), tc.side, tc.uplo, la::Trans::No,
                   tc.diag, m, n, tc.alpha, t.ptrs(), t.lda(), 0, 0,
                   b_str.ptrs(), b_str.lda(), 0, 0, b_str.m_vec(),
                   b_str.n_vec(), batch);

  KernelCache cache;
  const Dispatch disp{&cache, nullptr};
  InterleavedBatch<double> ti(dev, tc.tri, tc.tri, batch);
  InterleavedBatch<double> bi(dev, m, n, batch);
  pack(dev, t, ti);
  pack(dev, b_ilv, bi);
  irr_trsm_ilv(dev, dev.stream(), disp, tc.side, tc.uplo, tc.diag, m, n,
               tc.alpha, ti.view(), bi.view(), batch);
  unpack(dev, b_ilv, bi);
  dev.synchronize_all();

  EXPECT_TRUE(batch_bits_equal(b_str, b_ilv));
}

INSTANTIATE_TEST_SUITE_P(
    Variants, IlvTrsmCases,
    ::testing::Values(
        // The engine's two calls: Left/Lower/Unit and Right/Upper/NonUnit.
        TrsmCase{la::Side::Left, la::Uplo::Lower, la::Diag::Unit, 16, 24,
                 1.0},
        TrsmCase{la::Side::Right, la::Uplo::Upper, la::Diag::NonUnit, 16, 24,
                 1.0},
        // Specialized substitution sizes (tri <= 16)...
        TrsmCase{la::Side::Left, la::Uplo::Upper, la::Diag::NonUnit, 1, 1,
                 1.0},
        TrsmCase{la::Side::Right, la::Uplo::Lower, la::Diag::Unit, 5, 8,
                 -0.5},
        TrsmCase{la::Side::Left, la::Uplo::Lower, la::Diag::NonUnit, 13, 3,
                 2.0},
        // ...and the generic 16-blocked structure above it.
        TrsmCase{la::Side::Left, la::Uplo::Lower, la::Diag::Unit, 17, 8,
                 1.0},
        TrsmCase{la::Side::Left, la::Uplo::Upper, la::Diag::NonUnit, 32, 24,
                 1.0},
        TrsmCase{la::Side::Right, la::Uplo::Upper, la::Diag::NonUnit, 32, 16,
                 1.0},
        TrsmCase{la::Side::Right, la::Uplo::Lower, la::Diag::Unit, 20, 11,
                 -1.0}));

struct GemmCase {
  int m, n, k;
  double alpha, beta;
};

class IlvGemmCases : public ::testing::TestWithParam<GemmCase> {};

TEST_P(IlvGemmCases, MatchesStridedBitwise) {
  const GemmCase gc = GetParam();
  const int batch = 7;
  Device dev(DeviceModel::a100());
  VBatch<double> a(dev, uniform_sizes(gc.m, batch), uniform_sizes(gc.k, batch));
  VBatch<double> b(dev, uniform_sizes(gc.k, batch), uniform_sizes(gc.n, batch));
  VBatch<double> c_str(dev, uniform_sizes(gc.m, batch),
                       uniform_sizes(gc.n, batch));
  VBatch<double> c_ilv(dev, uniform_sizes(gc.m, batch),
                       uniform_sizes(gc.n, batch));
  Rng rng(23u + static_cast<unsigned>(gc.m + 8 * gc.n + 64 * gc.k));
  a.fill_uniform(rng);
  b.fill_uniform(rng);
  c_str.fill_uniform(rng);
  c_ilv.copy_from(c_str);

  irr_gemm<double>(dev, dev.stream(), la::Trans::No, la::Trans::No, gc.m,
                   gc.n, gc.k, gc.alpha, a.ptrs(), a.lda(), 0, 0, b.ptrs(),
                   b.lda(), 0, 0, gc.beta, c_str.ptrs(), c_str.lda(), 0, 0,
                   c_str.m_vec(), c_str.n_vec(), a.n_vec(), batch);

  KernelCache cache;
  const Dispatch disp{&cache, nullptr};
  InterleavedBatch<double> ai(dev, gc.m, gc.k, batch);
  InterleavedBatch<double> bi(dev, gc.k, gc.n, batch);
  InterleavedBatch<double> ci(dev, gc.m, gc.n, batch);
  pack(dev, a, ai);
  pack(dev, b, bi);
  pack(dev, c_ilv, ci);
  irr_gemm_ilv(dev, dev.stream(), disp, gc.m, gc.n, gc.k, gc.alpha,
               ai.view(), bi.view(), gc.beta, ci.view(), batch);
  unpack(dev, c_ilv, ci);
  dev.synchronize_all();

  EXPECT_TRUE(batch_bits_equal(c_str, c_ilv));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IlvGemmCases,
    ::testing::Values(GemmCase{1, 1, 1, -1.0, 1.0},
                      GemmCase{5, 7, 3, 1.0, 0.0},
                      GemmCase{8, 4, 8, 0.5, 0.3},
                      GemmCase{13, 11, 16, -1.0, 1.0},
                      GemmCase{16, 16, 17, 1.0, 1.0},
                      GemmCase{24, 24, 32, -1.0, 1.0},
                      GemmCase{12, 12, 16, 0.0, 1.0},   // alpha == 0
                      GemmCase{6, 9, 0, -1.0, 1.0}));   // k == 0: beta only

TEST(IlvLaswp, MatchesHostReference) {
  const int rows = 11, width = 7, batch = 13;
  Device dev(DeviceModel::a100());
  VBatch<double> b(dev, uniform_sizes(rows, batch),
                   uniform_sizes(width, batch));
  Rng rng(31);
  b.fill_uniform(rng);
  VBatch<double> ref(dev, uniform_sizes(rows, batch),
                     uniform_sizes(width, batch));
  ref.copy_from(b);

  // LAPACK-convention forward pivots: row r swaps with piv[r] >= r.
  std::vector<int> piv_store(static_cast<std::size_t>(rows) * batch);
  std::vector<int*> piv(static_cast<std::size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    piv[static_cast<std::size_t>(i)] =
        piv_store.data() + static_cast<std::size_t>(i) * rows;
    for (int r = 0; r < rows; ++r)
      piv[static_cast<std::size_t>(i)][r] = rng.uniform_int(r, rows - 1);
  }
  for (int i = 0; i < batch; ++i) {  // host reference on the strided copy
    auto v = ref.view(i);
    for (int r = 0; r < rows; ++r) {
      const int p = piv[static_cast<std::size_t>(i)][r];
      if (p == r) continue;
      for (int c = 0; c < width; ++c) std::swap(v(r, c), v(p, c));
    }
  }

  InterleavedBatch<double> ilv(dev, rows, width, batch);
  pack(dev, b, ilv);
  IlvLaswpDesc d;
  d.view = ilv.view();
  d.rows = rows;
  d.width = width;
  d.lanes = batch;
  d.ipiv = piv.data();
  ilv_laswp(dev, dev.stream(), {d});
  unpack(dev, b, ilv);
  dev.synchronize_all();
  EXPECT_TRUE(batch_bits_equal(b, ref));
}

// ------------------------------------------------------- dispatch counters

TEST(DispatchCache, CountersExact) {
  KernelCache cache;
  EXPECT_EQ(cache.size(), 0u);
  const auto* k1 = cache.resolve(gemm_key(4, 4, 2));
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 0);
  const auto* k2 = cache.resolve(gemm_key(4, 4, 2));
  EXPECT_EQ(k1, k2);  // stable pointer, served from the map
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  // Different op / dims / trsm variants are distinct entries.
  cache.resolve(getf2_key(4, 4));
  cache.resolve(gemm_key(4, 4, 3));
  cache.resolve(trsm_key(true, true, true, 4, 4));
  cache.resolve(trsm_key(true, false, true, 4, 4));   // flags differ
  cache.resolve(trsm_key(false, true, true, 4, 4));   // op differs
  EXPECT_EQ(cache.stats().misses, 6);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.size(), 6u);
  EXPECT_EQ(cache.stats().plan_hits, 0);
}

TEST(DispatchPlan, ReplayAndTruncateOnMismatch) {
  KernelCache cache;
  DispatchPlan plan;
  Dispatch disp{&cache, &plan};
  const KernelKey seq[3] = {getf2_key(8, 8), trsm_key(true, true, true, 8, 4),
                            gemm_key(4, 4, 8)};
  // Recording pass: all misses, no plan hits.
  for (const auto& k : seq) disp.resolve(k);
  EXPECT_EQ(plan.size(), 3u);
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().plan_hits, 0);

  // Replay pass: identical sequence, zero hash lookups.
  plan.begin_replay();
  for (const auto& k : seq) disp.resolve(k);
  EXPECT_EQ(cache.stats().plan_hits, 3);
  EXPECT_EQ(cache.stats().misses, 3);
  EXPECT_EQ(cache.stats().hits, 0);

  // Divergent replay: first resolution replays, the mismatch truncates the
  // tail and falls back to the cache, then re-records.
  plan.begin_replay();
  disp.resolve(seq[0]);
  disp.resolve(gemm_key(9, 9, 9));  // not the recorded trsm
  EXPECT_EQ(cache.stats().plan_hits, 4);
  EXPECT_EQ(cache.stats().misses, 4);
  disp.resolve(seq[2]);  // previously cached: a hash hit, re-recorded
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(plan.size(), 3u);  // seq[0], the new gemm, seq[2]

  plan.clear();
  EXPECT_EQ(plan.size(), 0u);
}

// ------------------------------------------- multifrontal / solver routing

TEST(MultifrontalInterleaved, FactorsBitIdenticalToStrided) {
  const CsrMatrix a = laplacian2d(20, 20, 0.4);
  SolverOptions off;
  SolverOptions on = off;
  on.factor.interleaved.enabled = true;
  // Raise the routing cap from the perf-crossover default to the engine
  // clamp so the identity check covers the full routable size range.
  on.factor.interleaved.max_class_dim = 32;

  Device dev_off(DeviceModel::a100());
  SparseDirectSolver s_off(off);
  s_off.analyze(a);
  s_off.factor(dev_off);

  Device dev_on(DeviceModel::a100());
  SparseDirectSolver s_on(on);
  s_on.analyze(a);
  s_on.factor(dev_on);

  const auto& f_off = s_off.numeric();
  const auto& f_on = s_on.numeric();
  ASSERT_EQ(f_off.factor_elems(), f_on.factor_elems());
  EXPECT_EQ(std::memcmp(f_off.factor_data(), f_on.factor_data(),
                        f_off.factor_elems() * sizeof(double)),
            0);
  // Numerical diagnostics agree too.
  EXPECT_EQ(f_off.report().boosted_pivots, f_on.report().boosted_pivots);
  EXPECT_EQ(f_off.report().zero_pivot_fronts,
            f_on.report().zero_pivot_fronts);
  EXPECT_TRUE(
      bits_equal(f_off.report().pivot_growth, f_on.report().pivot_growth));
  // Dispatch counters: zero with the routing off, live with it on.
  EXPECT_EQ(f_off.report().dispatch_hits + f_off.report().dispatch_misses +
                f_off.report().dispatch_plan_hits,
            0);
  EXPECT_GT(f_on.report().dispatch_misses, 0);
  EXPECT_GT(f_on.report().dispatch_hits + f_on.report().dispatch_misses, 0);
  // And both factorizations solve the same system to the same quality.
  const std::vector<double> b(400, 1.0);
  const auto x_off = s_off.solve(b);
  const auto x_on = s_on.solve(b);
  ASSERT_EQ(x_off.size(), x_on.size());
  for (std::size_t i = 0; i < x_off.size(); ++i)
    EXPECT_TRUE(bits_equal(x_off[i], x_on[i])) << i;
}

TEST(MultifrontalInterleaved, RefactorReplaysDispatchPlan) {
  const CsrMatrix a1 = laplacian2d(16, 16, 0.3);
  const CsrMatrix a2 = laplacian2d(16, 16, 0.9);  // same pattern, new values
  SolverOptions opts;
  opts.factor.interleaved.enabled = true;
  opts.factor.interleaved.max_class_dim = 32;  // route every front size
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver(opts);
  solver.analyze(a1);
  solver.factor(dev);
  const auto first = solver.numeric().report();
  EXPECT_GT(first.dispatch_misses, 0);
  EXPECT_EQ(first.dispatch_plan_hits, 0);  // recording pass

  solver.refactor(dev, a2);
  const auto second = solver.numeric().report();
  // Same pattern => identical resolution sequence => pure plan replay.
  EXPECT_EQ(second.dispatch_misses, 0);
  EXPECT_EQ(second.dispatch_hits, 0);
  EXPECT_EQ(second.dispatch_plan_hits,
            first.dispatch_misses + first.dispatch_hits);
  EXPECT_EQ(solver.dispatch_plan().size(),
            static_cast<std::size_t>(second.dispatch_plan_hits));

  // The refactored values are right (not a stale replayed factor).
  const std::vector<double> b(256, 1.0);
  const auto x = solver.solve(b);
  EXPECT_LT(solver.residual(x, b), 1e-12);
}

TEST(ServiceInterleaved, PatternKeyedDispatchReuse) {
  const CsrMatrix a1 = laplacian2d(12, 12, 0.2);
  const CsrMatrix a2 = laplacian2d(12, 12, 0.8);
  Device dev(DeviceModel::a100());
  ServiceOptions so;
  so.solver.factor.interleaved.enabled = true;
  SolverService svc(dev, so);
  const std::vector<double> b(144, 1.0);

  auto r1 = svc.solve({SolveRequest{"t", a1, b, {}}});
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_TRUE(r1[0].report.ok());
  auto r2 = svc.solve({SolveRequest{"t", a2, b, {}}});  // cached pattern
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_TRUE(r2[0].symbolic_cache_hit);

  const SparseDirectSolver* cached = svc.peek(a1);
  ASSERT_NE(cached, nullptr);
  // The session's solver replayed its dispatch plan on the refactor.
  const auto& rep = cached->numeric().report();
  EXPECT_EQ(rep.dispatch_misses, 0);
  EXPECT_GT(rep.dispatch_plan_hits, 0);
  EXPECT_EQ(cached->dispatch_cache().stats().plan_hits,
            rep.dispatch_plan_hits);
}

// ---------------------------------------------------- autotune regression

TEST(Autotune, HonorsSampleBeyondDistinctSizes) {
  // Regression: the tuner used to cap `sample` at sizes.size() although it
  // draws with replacement, so single-size batches were tuned on one
  // matrix regardless of the requested sample.
  const auto model = DeviceModel::a100();
  const auto r32 = autotune_panel_width(model, {24}, 32);
  EXPECT_EQ(r32.sampled, 32);
  const auto r1 = autotune_panel_width(model, {24}, 1);
  EXPECT_EQ(r1.sampled, 1);
  // 32 sampled factorizations really happen: more simulated work.
  ASSERT_FALSE(r32.seconds.empty());
  ASSERT_FALSE(r1.seconds.empty());
  EXPECT_GT(r32.seconds[0], r1.seconds[0]);
}
