// The mixed-precision layer (DESIGN.md §14): FP32 instantiations of the
// irregular-batch microkernels against the FP64 reference, the staged
// row-interchange kernel's result-identity, the LU-IR solve contract over
// the robustness envelope under every precision policy, the FP64 fallback
// and factor-time escalation paths, the bit-identity of the pure-FP64
// policy with the defaults, and the service's (pattern, policy) cache key.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/blas.hpp"
#include "lapack/lapack.hpp"
#include "service/solver_service.hpp"
#include "sparse/csr.hpp"
#include "sparse/precision.hpp"
#include "sparse/solver.hpp"

namespace la = irrlu::la;
using namespace irrlu::batch;
using namespace irrlu::sparse;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;
using irrlu::service::SolveRequest;
using irrlu::service::SolverService;

namespace {

std::vector<double> random_rhs(int n, unsigned seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1, 1);
  return b;
}

/// Fills a float batch with the rounded values of a double batch of the
/// same shape — the "same matrix, narrower storage" setup every
/// FP32-vs-FP64 comparison starts from.
void demote(const VBatch<double>& src, VBatch<float>& dst) {
  for (int i = 0; i < src.batch_size(); ++i) {
    auto s = src.view(i);
    auto d = dst.view(i);
    for (int j = 0; j < s.cols(); ++j)
      for (int r = 0; r < s.rows(); ++r)
        d(r, j) = static_cast<float>(s(r, j));
  }
}

float batch_max_diff_f(const VBatch<float>& a, const VBatch<float>& b) {
  float d = 0;
  for (int i = 0; i < a.batch_size(); ++i) {
    auto va = a.view(i);
    auto vb = b.view(i);
    for (int j = 0; j < va.cols(); ++j)
      for (int r = 0; r < va.rows(); ++r)
        d = std::max(d, std::abs(va(r, j) - vb(r, j)));
  }
  return d;
}

/// Dense all-ones matrix: exactly singular, elimination exact in binary
/// arithmetic (same construction as test_robustness.cpp).
CsrMatrix all_ones(int n) {
  std::vector<std::tuple<int, int, double>> t;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) t.emplace_back(i, j, 1.0);
  return CsrMatrix::from_triplets(n, t);
}

bool all_finite(const std::vector<double>& v) {
  for (double e : v)
    if (!std::isfinite(e)) return false;
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// FP32 microkernels vs the FP64 reference (componentwise tolerance)
// ---------------------------------------------------------------------------

TEST(Fp32Kernels, GetrfTracksFp64Factor) {
  Device dev(DeviceModel::a100());
  Rng rng(71);
  std::vector<int> m = {40, 7, 23}, n = {40, 7, 23};
  VBatch<double> D(dev, m, n);
  D.fill_uniform(rng);
  VBatch<float> F(dev, m, n);
  demote(D, F);
  PivotBatch pd(dev, m, n), pf(dev, m, n);
  irr_getrf<double>(dev, dev.stream(), 40, 40, D.ptrs(), D.lda(), 0, 0,
                    D.m_vec(), D.n_vec(), pd.ptrs(), pd.info(), 3);
  irr_getrf<float>(dev, dev.stream(), 40, 40, F.ptrs(), F.lda(), 0, 0,
                   F.m_vec(), F.n_vec(), pf.ptrs(), pf.info(), 3);
  dev.synchronize_all();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(pd.info()[i], 0);
    EXPECT_EQ(pf.info()[i], 0);
    const int k = std::min(m[static_cast<std::size_t>(i)],
                           n[static_cast<std::size_t>(i)]);
    // Same data, same pivoting rule: the pivot sequences must agree (the
    // random entries are far enough apart that FP32 rounding cannot flip
    // a comparison), and the factors agree to FP32 accuracy amplified by
    // a modest growth factor.
    for (int c = 0; c < k; ++c)
      ASSERT_EQ(pd.ipiv_of(i)[c], pf.ipiv_of(i)[c]) << "matrix " << i;
    auto vd = D.view(i);
    auto vf = F.view(i);
    for (int j = 0; j < vd.cols(); ++j)
      for (int r = 0; r < vd.rows(); ++r)
        EXPECT_NEAR(vd(r, j), static_cast<double>(vf(r, j)), 2e-3)
            << "matrix " << i << " (" << r << ", " << j << ")";
  }
}

TEST(Fp32Kernels, TrsmWideBaseTracksFp64Reference) {
  // Triangle order 100 forces the FP32 path through its 64-order staged
  // base (trsm_base_size<float>) plus one recursion split — the schedule
  // the FP64 path never takes.
  Device dev(DeviceModel::a100());
  Rng rng(73);
  const int tri = 100, nrhs = 20;
  std::vector<int> tm = {tri}, tn = {tri}, bm = {tri}, bn = {nrhs};
  VBatch<double> Td(dev, tm, tn), Bd(dev, bm, bn);
  Td.fill_uniform(rng);
  Bd.fill_uniform(rng);
  // Unit-diagonal dominant lower triangle: substitution stays tame.
  auto t = Td.view(0);
  for (int j = 0; j < tri; ++j) t(j, j) = 4.0;
  VBatch<float> Tf(dev, tm, tn), Bf(dev, bm, bn);
  demote(Td, Tf);
  demote(Bd, Bf);
  irr_trsm<double>(dev, dev.stream(), la::Side::Left, la::Uplo::Lower,
                   la::Trans::No, la::Diag::NonUnit, tri, nrhs, 1.0,
                   const_cast<double const* const*>(Td.ptrs()), Td.lda(), 0,
                   0, Bd.ptrs(), Bd.lda(), 0, 0, Bd.m_vec(), Bd.n_vec(), 1);
  irr_trsm<float>(dev, dev.stream(), la::Side::Left, la::Uplo::Lower,
                  la::Trans::No, la::Diag::NonUnit, tri, nrhs, 1.0f,
                  const_cast<float const* const*>(Tf.ptrs()), Tf.lda(), 0, 0,
                  Bf.ptrs(), Bf.lda(), 0, 0, Bf.m_vec(), Bf.n_vec(), 1);
  dev.synchronize_all();
  auto xd = Bd.view(0);
  auto xf = Bf.view(0);
  for (int j = 0; j < nrhs; ++j)
    for (int r = 0; r < tri; ++r)
      EXPECT_NEAR(xd(r, j), static_cast<double>(xf(r, j)), 1e-4);
}

TEST(Fp32Kernels, StagedLaswpRangeIsBitIdenticalToStrided) {
  // The staged rehearse+move kernel must be *result*-identical to the
  // strided reference — rows move through shared-memory chunks instead of
  // one swap per pivot, but land bit-exactly where the reference puts
  // them. Trailing-row pivots past the panel (the U12 application in the
  // multifrontal driver) included.
  Device dev(DeviceModel::a100());
  Rng rng(79);
  const int bs = 25;
  auto n = rng.uniform_sizes(bs, 2, 70);
  VBatch<float> A(dev, n), B(dev, n);
  A.fill_uniform(rng);
  PivotBatch piv(dev, n, n);
  const int jb = 8;
  irr_getf2_fused<float>(dev, dev.stream(), 70, jb, A.ptrs(), A.lda(), 0, 0,
                         A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs);
  B.copy_from(A);
  irr_laswp_range<float>(dev, dev.stream(), 0, jb, 70, A.ptrs(), A.lda(), 0,
                         A.m_vec(), A.n_vec(),
                         const_cast<int const* const*>(piv.ptrs()), bs);
  irr_laswp_range_staged<float>(dev, dev.stream(), 0, jb, 70, B.ptrs(),
                                B.lda(), 0, B.m_vec(), B.n_vec(),
                                const_cast<int const* const*>(piv.ptrs()),
                                bs);
  dev.synchronize_all();
  EXPECT_EQ(batch_max_diff_f(A, B), 0.0f);
}

// ---------------------------------------------------------------------------
// LU-IR solve contract over the robustness envelope, per precision policy
// ---------------------------------------------------------------------------

/// Parameterized over the factor precision policy: the quality contract of
/// solve_report() is policy-independent — FP32 fronts may take more
/// refinement steps or escalate to the FP64 fallback, but never return
/// unflagged garbage or a worse structured status than FP64 achieves.
class MixedPrecisionEnvelope
    : public ::testing::TestWithParam<PrecisionPolicy> {
 protected:
  SolveReport run(const CsrMatrix& a, const SolverOptions& base) {
    solver_.reset();
    dev_ = std::make_unique<Device>(DeviceModel::a100());
    SolverOptions opts = base;
    opts.factor.precision = GetParam();
    solver_ = std::make_unique<SparseDirectSolver>(opts);
    solver_->analyze(a);
    solver_->factor(*dev_);
    return solver_->solve_report(random_rhs(a.rows(), 4242));
  }

  void check_contract(const SolveReport& rep) {
    switch (rep.status) {
      case SolveStatus::kConverged:
        EXPECT_TRUE(all_finite(rep.x));
        EXPECT_LE(rep.berr, 1e-12);
        break;
      case SolveStatus::kDegraded:
        EXPECT_TRUE(all_finite(rep.x));
        EXPECT_TRUE(std::isfinite(rep.berr));
        break;
      case SolveStatus::kFailed:
        EXPECT_FALSE(std::isfinite(rep.berr));
        break;
    }
  }

  std::unique_ptr<Device> dev_;
  std::unique_ptr<SparseDirectSolver> solver_;
};

TEST_P(MixedPrecisionEnvelope, IndefiniteSystemConvergesToFp64Accuracy) {
  // Helmholtz-like interior shift: indefinite but moderately conditioned —
  // refinement must recover full FP64 accuracy from FP32 factors.
  const SolveReport rep = run(laplacian3d(5, 5, 5, -2.17), SolverOptions{});
  EXPECT_EQ(rep.status, SolveStatus::kConverged);
  EXPECT_LE(rep.berr, 1e-12);
  check_contract(rep);
}

TEST_P(MixedPrecisionEnvelope, SingularMatrixIsRecoveredOrFlagged) {
  SolverOptions opts;
  opts.use_mc64 = false;
  opts.factor.pivot_tau = 1e-10;  // boosting on
  const SolveReport rep = run(all_ones(6), opts);
  check_contract(rep);
  EXPECT_NE(rep.status, SolveStatus::kFailed);
  EXPECT_FALSE(solver_->numeric().numerically_ok());
}

TEST_P(MixedPrecisionEnvelope, NearSingularNeverReturnsGarbage) {
  const int k = 10;
  // Shift so the smallest eigenvalue is ~1e-9: condition ~ 1e10, far past
  // what FP32 factors alone can resolve (eps_f32 ~ 1.2e-7) — exactly the
  // regime where the FP64 fallback earns its keep.
  const double lmin = 4.0 - 4.0 * std::cos(M_PI / (k + 1));
  const SolveReport rep =
      run(laplacian2d(k, k, 1e-9 - lmin), SolverOptions{});
  check_contract(rep);
  EXPECT_NE(rep.status, SolveStatus::kFailed);
}

TEST_P(MixedPrecisionEnvelope, BadlyScaledSystemConverges) {
  const int k = 7, n = k * k;
  const CsrMatrix base = laplacian2d(k, k, -1.1);
  std::vector<double> d(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    d[static_cast<std::size_t>(i)] = std::pow(10.0, (i % 17) - 8);
  const SolveReport rep = run(base.scaled(d, d), SolverOptions{});
  check_contract(rep);
  EXPECT_EQ(rep.status, SolveStatus::kConverged);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MixedPrecisionEnvelope,
    ::testing::Values(PrecisionPolicy::kF64, PrecisionPolicy::kF32,
                      PrecisionPolicy::kAdaptive),
    [](const ::testing::TestParamInfo<PrecisionPolicy>& info) {
      switch (info.param) {
        case PrecisionPolicy::kF64: return "F64";
        case PrecisionPolicy::kF32: return "F32";
        case PrecisionPolicy::kAdaptive: return "Adaptive";
      }
      return "unknown";
    });

// ---------------------------------------------------------------------------
// FP64 fallback and factor-time escalation
// ---------------------------------------------------------------------------

TEST(Fp64Fallback, GrowthEscalationRefactorsAtFactorTime) {
  // A growth-refactor threshold below any attainable pivot growth (>= 1 by
  // construction) forces the escalation immediately after the FP32
  // factorization: the factor the solve sees is already pure FP64.
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.factor.precision = PrecisionPolicy::kF32;
  opts.growth_refactor_threshold = 0.5;
  SparseDirectSolver solver(opts);
  solver.analyze(laplacian2d(12, 12));
  solver.factor(dev);
  EXPECT_EQ(solver.numeric().report().fp32_fronts, 0);
  EXPECT_EQ(solver.numeric().report().precision_policy,
            PrecisionPolicy::kF64);
  const SolveReport rep = solver.solve_report(random_rhs(144, 7));
  EXPECT_EQ(rep.status, SolveStatus::kConverged);
  EXPECT_FALSE(rep.refactored_fp64);  // escalated before the solve
}

TEST(Fp64Fallback, DisabledFallbackKeepsFp32Factor) {
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.factor.precision = PrecisionPolicy::kF32;
  opts.fp64_fallback = false;
  opts.growth_refactor_threshold = 0.5;  // would escalate if enabled
  SparseDirectSolver solver(opts);
  solver.analyze(laplacian2d(12, 12));
  solver.factor(dev);
  EXPECT_GT(solver.numeric().report().fp32_fronts, 0);
  const SolveReport rep = solver.solve_report(random_rhs(144, 7));
  EXPECT_FALSE(rep.refactored_fp64);
  for (const auto& p : solver.numeric().report().level_precision)
    EXPECT_EQ(p, Precision::kF32);
}

TEST(Fp64Fallback, Fp32FactorIsSmallerAndPolicyRecorded) {
  // The honest-byte-accounting satellite: single-precision fronts halve
  // the factor store, which the measured device peak must reflect.
  auto peak = [](PrecisionPolicy pol) {
    Device dev(DeviceModel::a100());
    SolverOptions opts;
    opts.factor.precision = pol;
    SparseDirectSolver solver(opts);
    solver.analyze(laplacian3d(6, 6, 6));
    solver.factor(dev);
    EXPECT_EQ(solver.numeric().report().precision_policy, pol);
    return solver.numeric().report().measured_peak_bytes;
  };
  EXPECT_LT(peak(PrecisionPolicy::kF32), peak(PrecisionPolicy::kF64));
}

TEST(Fp64Fallback, AdaptivePolicyKeepsRootLevelsInFp64) {
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.factor.precision = PrecisionPolicy::kAdaptive;
  SparseDirectSolver solver(opts);
  solver.analyze(laplacian3d(6, 6, 6));
  solver.factor(dev);
  const auto& rep = solver.numeric().report();
  ASSERT_FALSE(rep.level_precision.empty());
  EXPECT_EQ(rep.level_precision.front(), Precision::kF64);  // root level
  EXPECT_EQ(rep.level_precision.back(), Precision::kF32);   // leaf level
  EXPECT_GT(rep.fp32_fronts, 0);
  EXPECT_LT(rep.fp32_fronts, static_cast<long>(rep.fronts));
}

// ---------------------------------------------------------------------------
// Bit-identity of the pure-FP64 policy
// ---------------------------------------------------------------------------

TEST(Fp64BitIdentity, DefaultOptionsAndExplicitF64AreBitIdentical) {
  // The kF64 policy must be byte-for-byte the pre-mixed-precision code
  // path: identical simulated time, identical launch schedule, identical
  // solution bits — this is the per-build guard behind the fig10
  // byte-identity acceptance check.
  const CsrMatrix a = laplacian3d(6, 6, 6, -2.17);
  const std::vector<double> b = random_rhs(a.rows(), 99);
  auto run = [&](bool explicit_policy) {
    Device dev(DeviceModel::a100());
    SolverOptions opts;
    if (explicit_policy) opts.factor.precision = PrecisionPolicy::kF64;
    SparseDirectSolver solver(opts);
    solver.analyze(a);
    solver.factor(dev);
    EXPECT_EQ(solver.numeric().report().fp32_fronts, 0);
    auto rep = solver.solve_report(b);
    return std::make_tuple(solver.numeric().factor_seconds(),
                           solver.numeric().launch_count(),
                           std::move(rep.x));
  };
  const auto [t0, l0, x0] = run(false);
  const auto [t1, l1, x1] = run(true);
  EXPECT_EQ(t0, t1);  // exact: same simulated schedule
  EXPECT_EQ(l0, l1);
  ASSERT_EQ(x0.size(), x1.size());
  EXPECT_EQ(std::memcmp(x0.data(), x1.data(), x0.size() * sizeof(double)),
            0);
}

// ---------------------------------------------------------------------------
// Service cache: sessions are keyed by (pattern, policy)
// ---------------------------------------------------------------------------

TEST(ServicePrecision, PolicyIsPartOfTheSessionKey) {
  Device dev(DeviceModel::a100());
  SolverService svc(dev, {});
  const CsrMatrix a = laplacian2d(9, 9);

  auto req = [&](std::optional<PrecisionPolicy> pol) {
    SolveRequest r;
    r.tenant = "t";
    r.a = a;
    r.b = random_rhs(a.rows(), 17);
    r.precision = pol;
    return r;
  };

  auto r1 = svc.solve({req(std::nullopt)});             // service default f64
  auto r2 = svc.solve({req(PrecisionPolicy::kF32)});    // new session
  auto r3 = svc.solve({req(PrecisionPolicy::kF32)});    // cached f32 session
  ASSERT_EQ(r1.size(), 1u);
  EXPECT_FALSE(r1[0].symbolic_cache_hit);
  // Same pattern, different policy: the f64 session must NOT serve the
  // f32 request.
  EXPECT_FALSE(r2[0].symbolic_cache_hit);
  EXPECT_FALSE(r2[0].factor_reused);
  // Same pattern, same policy, same values: full reuse.
  EXPECT_TRUE(r3[0].symbolic_cache_hit);
  EXPECT_TRUE(r3[0].factor_reused);
  EXPECT_EQ(svc.stats().factors, 2);
  for (const auto& resp : {r1[0], r2[0], r3[0]})
    EXPECT_EQ(resp.report.status, SolveStatus::kConverged);
}
