// Tests for the size-class slab pool behind Device::alloc and the named
// workspace cache (DESIGN.md §10): class geometry, block reuse and
// alignment, accounting under interleaved stress, the pool-on/pool-off
// simulated-timeline identity, and the trace counters the pool emits.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "gpusim/mem_pool.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "trace/trace.hpp"

using namespace irrlu::batch;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;
using irrlu::gpusim::MemPool;

namespace {

bool aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % alignof(std::max_align_t) == 0;
}

}  // namespace

// ----------------------------------------------------------- size classes

TEST(MemPoolClass, CoversRequestAndBoundsWaste) {
  std::size_t prev = 0;
  for (std::size_t b :
       {std::size_t{1}, std::size_t{63}, std::size_t{64}, std::size_t{65},
        std::size_t{100}, std::size_t{1000}, std::size_t{4096},
        std::size_t{65536}, (std::size_t{1} << 20) - 1, std::size_t{1} << 20,
        (std::size_t{1} << 20) + 1, std::size_t{3} << 20,
        (std::size_t{1} << 22) + 123, std::size_t{1} << 28}) {
    const std::size_t cls = MemPool::class_size(b);
    EXPECT_GE(cls, b) << b;                        // covers the request
    EXPECT_GE(cls, MemPool::class_size(1));        // never below min class
    EXPECT_GE(cls, prev) << b;                     // monotone in the request
    prev = cls;
    if (b <= (std::size_t{1} << 20))
      EXPECT_LT(cls, 2 * b + 64) << b;  // pow2 region: < 2x waste
    else
      EXPECT_LE(cls - b, b / 4) << b;  // quarter steps: <= 25% waste
  }
  // Exact powers of two are their own class on both sides of the 1 MiB
  // boundary — no rounding up to the next class.
  EXPECT_EQ(MemPool::class_size(std::size_t{1} << 15), std::size_t{1} << 15);
  EXPECT_EQ(MemPool::class_size(std::size_t{1} << 23), std::size_t{1} << 23);
  // A request one past a class lands in the next one.
  EXPECT_GT(MemPool::class_size((std::size_t{1} << 23) + 1),
            std::size_t{1} << 23);
}

// --------------------------------------------------------- reuse + stats

TEST(MemPool, ReusesBlockOfSameClass) {
  MemPool pool;
  bool hit = true;
  void* a = pool.acquire(1000, &hit);  // class 1024
  EXPECT_FALSE(hit);
  ASSERT_NE(a, nullptr);
  pool.release(a, 1000);
  EXPECT_EQ(pool.stats().held_blocks, 1u);
  EXPECT_EQ(pool.stats().held_bytes, 1024u);

  // 900 B rounds to the same 1024 B class: the exact block comes back.
  void* b = pool.acquire(900, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.stats().hits, 1);
  EXPECT_EQ(pool.stats().misses, 1);
  EXPECT_EQ(pool.stats().bytes_served, 900u);
  EXPECT_EQ(pool.stats().held_blocks, 0u);

  // A different class misses even with a block cached elsewhere.
  pool.release(b, 900);
  void* c = pool.acquire(5000, &hit);  // class 8192
  EXPECT_FALSE(hit);
  EXPECT_NE(c, b);
  pool.release(c, 5000);
  EXPECT_EQ(pool.stats().held_blocks, 2u);
  pool.trim();
  EXPECT_EQ(pool.stats().held_blocks, 0u);
  EXPECT_EQ(pool.stats().held_bytes, 0u);
}

TEST(MemPool, BlocksAreMaxAlignedIncludingReused) {
  MemPool pool;
  std::vector<std::pair<void*, std::size_t>> live;
  for (std::size_t bytes : {1u, 7u, 65u, 333u, 1025u, 40000u}) {
    void* p = pool.acquire(bytes);
    EXPECT_TRUE(aligned(p)) << bytes;
    live.emplace_back(p, bytes);
  }
  for (auto& [p, bytes] : live) pool.release(p, bytes);
  for (std::size_t bytes : {1u, 7u, 65u, 333u, 1025u, 40000u}) {
    bool hit = false;
    void* p = pool.acquire(bytes, &hit);
    EXPECT_TRUE(hit) << bytes;
    EXPECT_TRUE(aligned(p)) << bytes;
    pool.release(p, bytes);
  }
}

TEST(MemPool, InterleavedStressKeepsBlocksIntactAndAccountsToZero) {
  MemPool pool;
  Rng rng(1234);
  struct Live {
    unsigned char* p;
    std::size_t bytes;
    unsigned char pattern;
  };
  std::vector<Live> live;
  long acquires = 0;
  for (int step = 0; step < 4000; ++step) {
    const bool grow = live.empty() || (live.size() < 64 &&
                                       rng.uniform_int(0, 99) < 55);
    if (grow) {
      // Size range straddles several classes on both sides of 1 MiB.
      const std::size_t bytes = static_cast<std::size_t>(
          rng.uniform_int(1, 2'200'000));
      auto* p = static_cast<unsigned char*>(pool.acquire(bytes));
      ++acquires;
      const auto pattern =
          static_cast<unsigned char>(rng.uniform_int(1, 255));
      // Touch first/last byte of the *request* (the class may be larger):
      // catches classes smaller than the request and recycled blocks that
      // alias a live one.
      p[0] = pattern;
      p[bytes - 1] = pattern;
      live.push_back({p, bytes, pattern});
    } else {
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(live.size()) - 1));
      EXPECT_EQ(live[idx].p[0], live[idx].pattern);
      EXPECT_EQ(live[idx].p[live[idx].bytes - 1], live[idx].pattern);
      pool.release(live[idx].p, live[idx].bytes);
      live[idx] = live.back();
      live.pop_back();
    }
  }
  EXPECT_EQ(pool.stats().hits + pool.stats().misses, acquires);
  EXPECT_GT(pool.stats().hits, 0);  // the stress actually recycled
  for (auto& l : live) {
    EXPECT_EQ(l.p[0], l.pattern);
    EXPECT_EQ(l.p[l.bytes - 1], l.pattern);
    pool.release(l.p, l.bytes);
  }
  pool.trim();
  EXPECT_EQ(pool.stats().held_blocks, 0u);
  EXPECT_EQ(pool.stats().held_bytes, 0u);
}

// ----------------------------------------------------- device integration

TEST(PoolDevice, HeldBlocksAreNotLeaksAndDestructionIsClean) {
  // Dropped buffers go to the free lists, not back to the system: device
  // accounting reaches zero while the pool still holds capacity. The
  // destructor (leak check included in debug builds) must see no live
  // allocation — cached blocks are not leaks.
  Device dev(DeviceModel::a100());
  ASSERT_TRUE(dev.pool_enabled());
  {
    auto b1 = dev.alloc<double>(1000);
    auto b2 = dev.alloc<int>(512);
    EXPECT_GT(dev.bytes_in_use(), 0u);
  }
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  EXPECT_GT(dev.pool_stats().held_blocks, 0u);
  EXPECT_GT(dev.pool_stats().held_bytes, 0u);
  dev.pool_trim();
  EXPECT_EQ(dev.pool_stats().held_blocks, 0u);
}

TEST(PoolDevice, ReuseReducesHostAllocsButNotSimEvents) {
  Device dev(DeviceModel::a100());
  { auto b = dev.alloc<double>(4096); }
  EXPECT_EQ(dev.alloc_count(), 1);
  EXPECT_EQ(dev.host_alloc_count(), 1);
  const double t_after_first = dev.host_time();
  { auto b = dev.alloc<double>(4096); }  // same class: pool hit
  EXPECT_EQ(dev.alloc_count(), 2);       // still a simulated alloc event
  EXPECT_EQ(dev.host_alloc_count(), 1);  // but no new host malloc
  EXPECT_EQ(dev.pool_stats().hits, 1);
  // The hit charged the same simulated alloc_overhead as the miss.
  EXPECT_DOUBLE_EQ(dev.host_time() - t_after_first, t_after_first);
}

TEST(PoolDevice, SimulatedRunIsByteIdenticalPoolOnOff) {
  // The full irrLU driver on an irregular batch, run twice — the only
  // difference is the pool flag. Everything simulated and every numeric
  // result must match bitwise; only the host malloc count may differ.
  auto run = [](bool pool, std::vector<double>& out, long& host_allocs,
                double& host_time, long& launches, long& syncs,
                std::size_t& peak) {
    Device dev(DeviceModel::a100(), pool);
    Rng rng(77);
    const int bs = 12;
    auto n = rng.uniform_sizes(bs, 1, 48);
    for (int round = 0; round < 2; ++round) {
      VBatch<double> A(dev, n);
      A.fill_uniform(rng);
      PivotBatch piv(dev, n, n);
      irr_getrf<double>(dev, dev.stream(), 48, 48, A.ptrs(), A.lda(), 0, 0,
                        A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs);
      dev.synchronize_all();
      for (int i = 0; i < bs; ++i) {
        auto v = A.view(i);
        for (int j = 0; j < v.cols(); ++j)
          for (int r = 0; r < v.rows(); ++r) out.push_back(v(r, j));
      }
    }
    host_allocs = dev.host_alloc_count();
    host_time = dev.host_time();
    launches = dev.launch_count();
    syncs = dev.sync_count();
    peak = dev.peak_bytes();
  };
  std::vector<double> on_vals, off_vals;
  long on_host = 0, off_host = 0, on_l = 0, off_l = 0, on_s = 0, off_s = 0;
  double on_t = 0, off_t = 0;
  std::size_t on_p = 0, off_p = 0;
  run(true, on_vals, on_host, on_t, on_l, on_s, on_p);
  run(false, off_vals, off_host, off_t, off_l, off_s, off_p);

  EXPECT_EQ(on_t, off_t);  // bitwise: same simulated timeline
  EXPECT_EQ(on_l, off_l);
  EXPECT_EQ(on_s, off_s);
  EXPECT_EQ(on_p, off_p);
  ASSERT_EQ(on_vals.size(), off_vals.size());
  EXPECT_EQ(0, std::memcmp(on_vals.data(), off_vals.data(),
                           on_vals.size() * sizeof(double)));
  // Round 2 recycled round 1's buffers: strictly fewer host mallocs.
  EXPECT_LT(on_host, off_host);
}

TEST(PoolDevice, CountersAppearInTrace) {
  Device dev(DeviceModel::a100());
  irrlu::trace::Tracer tracer;
  dev.set_tracer(&tracer);
  { auto b = dev.alloc<double>(2048); }
  { auto b = dev.alloc<double>(2048); }  // hit
  dev.set_tracer(nullptr);
  const auto& c = tracer.counters();
  ASSERT_TRUE(c.count("pool.hits"));
  ASSERT_TRUE(c.count("pool.misses"));
  ASSERT_TRUE(c.count("pool.bytes_served"));
  EXPECT_EQ(c.at("pool.hits"), 1.0);
  EXPECT_EQ(c.at("pool.misses"), 1.0);
  EXPECT_EQ(c.at("pool.bytes_served"), 2048.0 * sizeof(double));
}

// -------------------------------------------------------- workspace cache

TEST(WorkspaceCache, HitReturnsSamePointerAtZeroSimCost) {
  Device dev(DeviceModel::a100());
  double* w1 = dev.workspace<double>("test.ws", 100);
  ASSERT_NE(w1, nullptr);
  const double t1 = dev.host_time();
  EXPECT_GT(t1, 0.0);  // the first request paid alloc_overhead
  double* w2 = dev.workspace<double>("test.ws", 60);  // smaller: hit
  EXPECT_EQ(w1, w2);
  EXPECT_EQ(dev.host_time(), t1);  // a hit is free on the sim timeline
  EXPECT_EQ(dev.workspace_count(), 1u);

  // A larger request grows geometrically (>= 2x) and pays again.
  double* w3 = dev.workspace<double>("test.ws", 150);
  EXPECT_GT(dev.host_time(), t1);
  EXPECT_GE(dev.bytes_in_use(), 200 * sizeof(double));  // 2x growth floor
  // ... and the grown buffer is sticky.
  EXPECT_EQ(dev.workspace<double>("test.ws", 200), w3);

  // Distinct keys are distinct buffers.
  double* other = dev.workspace<double>("test.other", 10);
  EXPECT_NE(other, w3);
  EXPECT_EQ(dev.workspace_count(), 2u);

  dev.release_workspaces();
  EXPECT_EQ(dev.workspace_count(), 0u);
  EXPECT_EQ(dev.bytes_in_use(), 0u);
}
