// Cross-cutting property and fuzz tests: randomized sweeps that pit the
// irregular-batch kernels, the orderings, and the sparse pipeline against
// brute-force references over many configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/blas.hpp"
#include "lapack/lapack.hpp"
#include "lapack/verify.hpp"
#include "ordering/bisection.hpp"
#include "ordering/graph.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/csr.hpp"
#include "sparse/solver.hpp"

namespace la = irrlu::la;
using namespace irrlu::batch;
using irrlu::Matrix;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;
namespace ord = irrlu::ordering;
namespace sp = irrlu::sparse;

// ----------------------------------------------------- TRSM: all 16 combos

struct TrsmCombo {
  la::Side side;
  la::Uplo uplo;
  la::Trans trans;
  la::Diag diag;
};

class TrsmAll16 : public ::testing::TestWithParam<TrsmCombo> {};

TEST_P(TrsmAll16, IrrMatchesReference) {
  const auto p = GetParam();
  Device dev(DeviceModel::a100());
  Rng rng(211);
  const int bs = 10;
  auto tri = rng.uniform_sizes(bs, 1, 70);
  auto rhs = rng.uniform_sizes(bs, 1, 30);
  const auto& bm = p.side == la::Side::Left ? tri : rhs;
  const auto& bn = p.side == la::Side::Left ? rhs : tri;
  VBatch<double> T(dev, tri, tri), B(dev, bm, bn), Bref(dev, bm, bn);
  T.fill_uniform(rng);
  for (int i = 0; i < bs; ++i)
    for (int d = 0; d < tri[static_cast<std::size_t>(i)]; ++d)
      T.view(i)(d, d) += 4.0;
  B.fill_uniform(rng);
  Bref.copy_from(B);
  const int mreq = p.side == la::Side::Left ? 70 : 30;
  const int nreq = p.side == la::Side::Left ? 30 : 70;
  irr_trsm<double>(dev, dev.stream(), p.side, p.uplo, p.trans, p.diag, mreq,
                   nreq, -1.5, T.ptrs(), T.lda(), 0, 0, B.ptrs(), B.lda(), 0,
                   0, B.m_vec(), B.n_vec(), bs);
  dev.synchronize_all();
  double worst = 0;
  for (int i = 0; i < bs; ++i) {
    la::trsm(p.side, p.uplo, p.trans, p.diag, Bref.view(i).rows(),
             Bref.view(i).cols(), -1.5, T.view(i).data(), T.view(i).ld(),
             Bref.view(i).data(), Bref.view(i).ld());
    for (int c = 0; c < Bref.view(i).cols(); ++c)
      for (int r = 0; r < Bref.view(i).rows(); ++r)
        worst = std::max(worst,
                         std::abs(B.view(i)(r, c) - Bref.view(i)(r, c)));
  }
  EXPECT_LT(worst, 1e-8);
}

static std::vector<TrsmCombo> all16() {
  std::vector<TrsmCombo> v;
  for (auto s : {la::Side::Left, la::Side::Right})
    for (auto u : {la::Uplo::Lower, la::Uplo::Upper})
      for (auto t : {la::Trans::No, la::Trans::Yes})
        for (auto d : {la::Diag::NonUnit, la::Diag::Unit})
          v.push_back({s, u, t, d});
  return v;
}

INSTANTIATE_TEST_SUITE_P(Sweep, TrsmAll16, ::testing::ValuesIn(all16()));

// -------------------------------------------- LU fuzz across distributions

TEST(LuFuzz, ManyRandomDistributions) {
  Device dev(DeviceModel::a100());
  Rng rng(223);
  for (int trial = 0; trial < 25; ++trial) {
    const int bs = rng.uniform_int(1, 40);
    const int lo = rng.uniform_int(0, 5);
    const int hi = rng.uniform_int(lo + 1, 100);
    std::vector<int> m(static_cast<std::size_t>(bs)),
        n(static_cast<std::size_t>(bs));
    for (int i = 0; i < bs; ++i) {
      m[static_cast<std::size_t>(i)] = rng.uniform_int(lo, hi);
      n[static_cast<std::size_t>(i)] =
          rng.uniform_int(0, 1) ? m[static_cast<std::size_t>(i)]
                                : rng.uniform_int(lo, hi);
    }
    VBatch<double> A(dev, m, n), A0(dev, m, n);
    A.fill_uniform(rng);
    A0.copy_from(A);
    PivotBatch piv(dev, m, n);
    IrrLuOptions opts;
    opts.nb = rng.uniform_int(1, 48);
    opts.laswp = rng.uniform_int(0, 1) ? LaswpMethod::kLooped
                                       : LaswpMethod::kRehearsal;
    const int mreq = *std::max_element(m.begin(), m.end());
    const int nreq = *std::max_element(n.begin(), n.end());
    if (std::min(mreq, nreq) == 0) continue;
    irr_getrf<double>(dev, dev.stream(), mreq, nreq, A.ptrs(), A.lda(), 0,
                      0, A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs,
                      opts);
    dev.synchronize_all();
    for (int i = 0; i < bs; ++i) {
      if (std::min(m[static_cast<std::size_t>(i)],
                   n[static_cast<std::size_t>(i)]) == 0)
        continue;
      ASSERT_LT(la::lu_residual(A.view(i), piv.ipiv_of(i), A0.view(i)),
                100.0)
          << "trial " << trial << " matrix " << i << " ("
          << m[static_cast<std::size_t>(i)] << "x"
          << n[static_cast<std::size_t>(i)] << ") nb=" << opts.nb;
    }
  }
}

// ------------------------------------------------ laswp_range verification

TEST(LaswpRange, MatchesManualSwaps) {
  Device dev(DeviceModel::a100());
  Rng rng(227);
  const int bs = 8;
  auto rows = rng.uniform_sizes(bs, 4, 40);
  auto cols = rng.uniform_sizes(bs, 1, 20);
  VBatch<double> A(dev, rows, cols), R(dev, rows, cols);
  A.fill_uniform(rng);
  R.copy_from(A);
  // Pivot counts: min(4, rows).
  std::vector<int> pivn(static_cast<std::size_t>(bs));
  for (int i = 0; i < bs; ++i)
    pivn[static_cast<std::size_t>(i)] =
        std::min(4, rows[static_cast<std::size_t>(i)]);
  PivotBatch piv(dev, rows, rows);
  for (int i = 0; i < bs; ++i) {
    int* ip = const_cast<int*>(piv.ipiv_of(i));
    for (int r = 0; r < pivn[static_cast<std::size_t>(i)]; ++r)
      ip[r] = rng.uniform_int(r, rows[static_cast<std::size_t>(i)] - 1);
  }
  auto d_pivn = dev.alloc<int>(static_cast<std::size_t>(bs));
  for (int i = 0; i < bs; ++i) d_pivn[i] = pivn[static_cast<std::size_t>(i)];
  irr_laswp_range<double>(dev, dev.stream(), 0, 4, 20, A.ptrs(), A.lda(), 0,
                          d_pivn.data(), A.n_vec(),
                          const_cast<int const* const*>(piv.ptrs()), bs);
  dev.synchronize_all();
  for (int i = 0; i < bs; ++i) {
    auto r = R.view(i);
    for (int p = 0; p < pivn[static_cast<std::size_t>(i)]; ++p) {
      const int t = piv.ipiv_of(i)[p];
      if (t != p)
        la::swap(r.cols(), r.data() + p, r.ld(), r.data() + t, r.ld());
    }
    for (int c = 0; c < r.cols(); ++c)
      for (int rr = 0; rr < r.rows(); ++rr)
        ASSERT_EQ(A.view(i)(rr, c), r(rr, c)) << "matrix " << i;
  }
}

// ------------------------------------------------- ordering random graphs

TEST(OrderingFuzz, RandomGraphsProduceValidSeparators) {
  Rng rng(229);
  for (int trial = 0; trial < 10; ++trial) {
    // Random sparse graph: n vertices, ~3n edges.
    const int n = rng.uniform_int(20, 300);
    std::vector<std::tuple<int, int, double>> t;
    for (int e = 0; e < 3 * n; ++e) {
      const int i = rng.uniform_int(0, n - 1);
      const int j = rng.uniform_int(0, n - 1);
      if (i != j) {
        t.emplace_back(i, j, 1.0);
        t.emplace_back(j, i, 1.0);
      }
    }
    for (int i = 0; i < n; ++i) t.emplace_back(i, i, 1.0);
    const sp::CsrMatrix a = sp::CsrMatrix::from_triplets(n, t);
    const ord::Graph g =
        ord::Graph::from_pattern(n, a.ptr().data(), a.ind().data());
    const ord::Bisection b = ord::bisect(g);
    for (int v = 0; v < n; ++v)
      for (int k = g.ptr()[static_cast<std::size_t>(v)];
           k < g.ptr()[static_cast<std::size_t>(v) + 1]; ++k) {
        const int u = g.adj()[static_cast<std::size_t>(k)];
        if (b.side[static_cast<std::size_t>(v)] != 2 &&
            b.side[static_cast<std::size_t>(u)] != 2) {
          ASSERT_EQ(b.side[static_cast<std::size_t>(v)],
                    b.side[static_cast<std::size_t>(u)])
              << "trial " << trial;
        }
      }
    const ord::Ordering o = ord::nested_dissection(g);
    ASSERT_TRUE(ord::is_permutation(o.perm, n)) << "trial " << trial;
  }
}

// ------------------------------------------------------ solver end-to-end

TEST(SolverFuzz, RandomSparseSystems) {
  Rng rng(233);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = rng.uniform_int(30, 250);
    std::vector<std::tuple<int, int, double>> t;
    for (int e = 0; e < 4 * n; ++e) {
      const int i = rng.uniform_int(0, n - 1);
      const int j = rng.uniform_int(0, n - 1);
      t.emplace_back(i, j, rng.uniform(-1, 1));
    }
    for (int i = 0; i < n; ++i) t.emplace_back(i, i, 8.0 + rng.uniform());
    const sp::CsrMatrix a = sp::CsrMatrix::from_triplets(n, t);
    Device dev(DeviceModel::a100());
    sp::SparseDirectSolver solver;
    solver.analyze(a);
    solver.factor(dev);
    ASSERT_TRUE(solver.numeric().numerically_ok()) << "trial " << trial;
    std::vector<double> b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform(-1, 1);
    const auto x = solver.solve(b);
    ASSERT_LT(solver.residual(x, b), 1e-11) << "trial " << trial;
  }
}

// ------------------------------------- packed-engine bit stability

TEST(PackedEngine, BitStableAcrossReusedBuffers) {
  // The micro-kernel engine reuses thread-local packing buffers across
  // calls. Repeated identical calls must be bit-identical even when
  // differently-shaped calls run in between and leave the buffers dirty
  // (stale panel contents or padding must never leak into a result).
  Rng rng(241);
  const int m = 67, n = 45, k = 83, lda = m + 3;
  std::vector<double> a(static_cast<std::size_t>(lda) * k),
      b(static_cast<std::size_t>(k) * n), c0(static_cast<std::size_t>(m) * n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  for (auto& v : b) v = rng.uniform(-1, 1);
  for (auto& v : c0) v = rng.uniform(-1, 1);

  auto run_gemm = [&](la::Trans ta) {
    std::vector<double> c = c0;
    la::gemm(ta, la::Trans::No, m, n, k, 1.5, a.data(),
             ta == la::Trans::No ? lda : k, b.data(), k, -0.25, c.data(), m);
    return c;
  };
  // Odd-shaped interference calls that dirty the pack buffers (edge
  // panels, different element type, transposed packing).
  auto interfere = [&] {
    std::vector<double> ia(9 * 9, 0.75), ic(9 * 9, 0.0);
    la::gemm(la::Trans::Yes, la::Trans::Yes, 9, 9, 9, 2.0, ia.data(), 9,
             ia.data(), 9, 0.0, ic.data(), 9);
    std::vector<std::complex<double>> za(5 * 5, {1.0, -1.0}), zc(5 * 5);
    la::gemm(la::Trans::No, la::Trans::Yes, 5, 5, 5, std::complex<double>(1),
             za.data(), 5, za.data(), 5, std::complex<double>(0), zc.data(),
             5);
  };

  for (la::Trans ta : {la::Trans::No, la::Trans::Yes}) {
    const auto first = run_gemm(ta);
    for (int rep = 0; rep < 3; ++rep) {
      interfere();
      const auto again = run_gemm(ta);
      ASSERT_EQ(0, std::memcmp(first.data(), again.data(),
                               first.size() * sizeof(double)))
          << "gemm not bit-stable, trans="
          << (ta == la::Trans::No ? "N" : "T") << " rep=" << rep;
    }
  }

  // Same property for the blocked trsm, whose GEMM updates go through the
  // packed engine.
  const int tri = 65;
  std::vector<double> t(static_cast<std::size_t>(tri) * tri);
  for (auto& v : t) v = rng.uniform(-1, 1);
  for (int i = 0; i < tri; ++i)
    t[static_cast<std::size_t>(i) * tri + i] += 4.0;
  std::vector<double> rhs0(static_cast<std::size_t>(tri) * 7);
  for (auto& v : rhs0) v = rng.uniform(-1, 1);
  auto run_trsm = [&] {
    std::vector<double> x = rhs0;
    la::trsm(la::Side::Left, la::Uplo::Lower, la::Trans::Yes,
             la::Diag::NonUnit, tri, 7, 1.0, t.data(), tri, x.data(), tri);
    return x;
  };
  const auto tfirst = run_trsm();
  for (int rep = 0; rep < 3; ++rep) {
    interfere();
    const auto tagain = run_trsm();
    ASSERT_EQ(0, std::memcmp(tfirst.data(), tagain.data(),
                             tfirst.size() * sizeof(double)))
        << "trsm not bit-stable, rep=" << rep;
  }
}

// ------------------------------------------- CSR ops against dense mirror

TEST(CsrFuzz, TransformsMatchDenseMirror) {
  Rng rng(239);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = rng.uniform_int(3, 30);
    Matrix<double> dense(n, n, 0.0);
    std::vector<std::tuple<int, int, double>> t;
    for (int e = 0; e < 4 * n; ++e) {
      const int i = rng.uniform_int(0, n - 1);
      const int j = rng.uniform_int(0, n - 1);
      const double v = rng.uniform(-2, 2);
      t.emplace_back(i, j, v);
      dense(i, j) += v;
    }
    const sp::CsrMatrix a = sp::CsrMatrix::from_triplets(n, t);
    // Random scaling + symmetric permutation, mirrored densely.
    std::vector<double> dr(static_cast<std::size_t>(n)),
        dc(static_cast<std::size_t>(n));
    for (auto& v : dr) v = rng.uniform(0.5, 2.0);
    for (auto& v : dc) v = rng.uniform(0.5, 2.0);
    std::vector<int> perm(static_cast<std::size_t>(n));
    std::iota(perm.begin(), perm.end(), 0);
    std::shuffle(perm.begin(), perm.end(), rng.engine());
    const sp::CsrMatrix s = a.scaled(dr, dc).permute_symmetric(perm);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        const int oi = perm[static_cast<std::size_t>(i)];
        const int oj = perm[static_cast<std::size_t>(j)];
        ASSERT_NEAR(s.at(i, j),
                    dr[static_cast<std::size_t>(oi)] * dense(oi, oj) *
                        dc[static_cast<std::size_t>(oj)],
                    1e-13)
            << "trial " << trial;
      }
  }
}
