// Tests for the ordering substrate: graph construction, multilevel
// bisection + vertex separators, nested dissection, minimum degree, RCM,
// and the MC64-style matching/scaling.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "ordering/bisection.hpp"
#include "ordering/graph.hpp"
#include "ordering/mc64.hpp"
#include "ordering/nested_dissection.hpp"

using namespace irrlu::ordering;
using irrlu::Rng;

namespace {

/// Fill count of a Cholesky-style symbolic elimination in the given order
/// (upper bound proxy used to compare ordering quality).
long symbolic_fill(const Graph& g, const std::vector<int>& perm) {
  const int n = g.num_vertices();
  std::vector<int> pos(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    pos[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
  // Elimination with explicit set adjacency (small graphs only).
  std::vector<std::vector<char>> adj(
      static_cast<std::size_t>(n),
      std::vector<char>(static_cast<std::size_t>(n), 0));
  for (int v = 0; v < n; ++v)
    for (int k = g.ptr()[static_cast<std::size_t>(v)];
         k < g.ptr()[static_cast<std::size_t>(v) + 1]; ++k)
      adj[static_cast<std::size_t>(v)][static_cast<std::size_t>(
          g.adj()[static_cast<std::size_t>(k)])] = 1;
  long fill = 0;
  for (int step = 0; step < n; ++step) {
    const int v = perm[static_cast<std::size_t>(step)];
    std::vector<int> later;
    for (int u = 0; u < n; ++u)
      if (adj[static_cast<std::size_t>(v)][static_cast<std::size_t>(u)] &&
          pos[static_cast<std::size_t>(u)] > step)
        later.push_back(u);
    fill += static_cast<long>(later.size());
    for (std::size_t i = 0; i < later.size(); ++i)
      for (std::size_t j = i + 1; j < later.size(); ++j) {
        adj[static_cast<std::size_t>(later[i])]
           [static_cast<std::size_t>(later[j])] = 1;
        adj[static_cast<std::size_t>(later[j])]
           [static_cast<std::size_t>(later[i])] = 1;
      }
  }
  return fill;
}

}  // namespace

TEST(Graph, FromPatternSymmetrizesAndDropsDiagonal) {
  // Pattern: row 0: (0,0), (0,2); row 1: (1,1); row 2: (2,1).
  std::vector<int> ptr = {0, 2, 3, 4};
  std::vector<int> ind = {0, 2, 1, 1};
  const Graph g = Graph::from_pattern(3, ptr.data(), ind.data());
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);  // {0,2} and {1,2}
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_EQ(g.degree(2), 2);
}

TEST(Graph, Grid2dStructure) {
  const Graph g = Graph::grid2d(4, 3);
  EXPECT_EQ(g.num_vertices(), 12);
  EXPECT_EQ(g.num_edges(), 3 * 3 + 4 * 2);  // 9 horizontal + 8 vertical
  EXPECT_EQ(g.degree(0), 2);   // corner
  EXPECT_EQ(g.degree(5), 4);   // interior
}

TEST(Graph, Grid3dDegrees) {
  const Graph g = Graph::grid3d(3, 3, 3);
  EXPECT_EQ(g.num_vertices(), 27);
  EXPECT_EQ(g.degree(13), 6);  // center vertex
  EXPECT_EQ(g.degree(0), 3);   // corner
}

TEST(Graph, ComponentsDetected) {
  // Two disjoint paths.
  std::vector<int> ptr = {0, 1, 2, 3, 4};
  std::vector<int> adj = {1, 0, 3, 2};
  const Graph g = Graph::from_adjacency(4, ptr, adj);
  std::vector<int> comp;
  EXPECT_EQ(g.components(comp), 2);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
}

TEST(Graph, InducedSubgraph) {
  const Graph g = Graph::grid2d(3, 3);
  std::vector<int> local_of(9, -1);
  const Graph s = g.induced_subgraph({0, 1, 3, 4}, local_of);
  EXPECT_EQ(s.num_vertices(), 4);
  EXPECT_EQ(s.num_edges(), 4);  // the 2x2 sub-square
  // Scratch restored:
  for (int v : local_of) EXPECT_EQ(v, -1);
}

TEST(Bisect, SeparatesGrid) {
  const Graph g = Graph::grid2d(16, 16);
  const Bisection b = bisect(g);
  int c0 = 0, c1 = 0, cs = 0;
  for (auto s : b.side) (s == 0 ? c0 : s == 1 ? c1 : cs)++;
  EXPECT_GT(c0, 50);
  EXPECT_GT(c1, 50);
  EXPECT_GT(cs, 0);
  EXPECT_LT(cs, 64);  // a 16x16 grid has a ~16-vertex separator
  // Separator property: no edge between side 0 and side 1.
  for (int v = 0; v < g.num_vertices(); ++v)
    for (int k = g.ptr()[v]; k < g.ptr()[v + 1]; ++k) {
      const int u = g.adj()[k];
      if (b.side[v] != 2 && b.side[u] != 2) {
        EXPECT_EQ(b.side[v], b.side[u]);
      }
    }
}

TEST(Bisect, HandlesTinyAndEdgelessGraphs) {
  std::vector<int> ptr = {0, 0, 0, 0};
  const Graph g = Graph::from_adjacency(3, ptr, {});
  const Bisection b = bisect(g);
  EXPECT_EQ(b.side.size(), 3u);
  EXPECT_EQ(b.edge_cut, 0);
}

TEST(Bisect, GridSeparatorNearOptimal) {
  // A 32x32 grid's minimal separator is 32; multilevel + FM should land
  // within a small factor.
  const Graph g = Graph::grid2d(32, 32);
  const Bisection b = bisect(g);
  EXPECT_LE(b.sep_vertices, 3 * 32);
}

TEST(NestedDissection, ProducesValidPermutation) {
  const Graph g = Graph::grid3d(6, 6, 6);
  const Ordering o = nested_dissection(g);
  EXPECT_TRUE(is_permutation(o.perm, g.num_vertices()));
  for (int i = 0; i < g.num_vertices(); ++i)
    EXPECT_EQ(o.perm[static_cast<std::size_t>(
                  o.iperm[static_cast<std::size_t>(i)])],
              i);
}

TEST(NestedDissection, BeatsNaturalOrderOnFill) {
  const Graph g = Graph::grid2d(12, 12);
  const Ordering nd = nested_dissection(g);
  std::vector<int> natural(static_cast<std::size_t>(g.num_vertices()));
  std::iota(natural.begin(), natural.end(), 0);
  EXPECT_LT(symbolic_fill(g, nd.perm), symbolic_fill(g, natural));
}

TEST(NestedDissection, DisconnectedGraph) {
  std::vector<int> ptr = {0, 1, 2, 3, 4, 4};
  std::vector<int> adj = {1, 0, 3, 2};
  const Graph g = Graph::from_adjacency(5, ptr, adj);
  const Ordering o = nested_dissection(g);
  EXPECT_TRUE(is_permutation(o.perm, 5));
}

TEST(MinimumDegree, OrdersStarGraphCenterLast) {
  // Star: center 0 connected to 1..5. MD must eliminate leaves first.
  std::vector<int> ptr = {0, 5, 6, 7, 8, 9, 10};
  std::vector<int> adj = {1, 2, 3, 4, 5, 0, 0, 0, 0, 0};
  const Graph g = Graph::from_adjacency(6, ptr, adj);
  const auto order = minimum_degree(g);
  EXPECT_TRUE(is_permutation(order, 6));
  // The hub has maximum degree until only one leaf remains, so it must be
  // among the last two vertices eliminated.
  const auto hub_pos =
      std::find(order.begin(), order.end(), 0) - order.begin();
  EXPECT_GE(hub_pos, 4);
  EXPECT_EQ(symbolic_fill(g, order), 5);  // star elimination is fill-free
}

TEST(MinimumDegree, ReducesFillOnGrid) {
  const Graph g = Graph::grid2d(8, 8);
  const auto md = minimum_degree(g);
  std::vector<int> natural(64);
  std::iota(natural.begin(), natural.end(), 0);
  EXPECT_LE(symbolic_fill(g, md), symbolic_fill(g, natural));
}

TEST(Rcm, ValidAndReducesBandwidth) {
  const Graph g = Graph::grid2d(10, 10);
  const auto order = rcm(g);
  EXPECT_TRUE(is_permutation(order, 100));
  std::vector<int> pos(100);
  for (int i = 0; i < 100; ++i)
    pos[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  int bw = 0;
  for (int v = 0; v < 100; ++v)
    for (int k = g.ptr()[v]; k < g.ptr()[v + 1]; ++k)
      bw = std::max(bw, std::abs(pos[static_cast<std::size_t>(v)] -
                                 pos[static_cast<std::size_t>(g.adj()[k])]));
  EXPECT_LE(bw, 30);  // natural order of a 10x10 grid has bandwidth 10;
                      // RCM must stay in that ballpark, not n
}

// ------------------------------------------------------------------ MC64

namespace {
// Dense n x n to CSR helper.
struct Csr {
  std::vector<int> ptr, ind;
  std::vector<double> val;
};
Csr dense_to_csr(const std::vector<std::vector<double>>& a) {
  Csr m;
  const int n = static_cast<int>(a.size());
  m.ptr.push_back(0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j)
      if (a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] != 0) {
        m.ind.push_back(j);
        m.val.push_back(
            a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
      }
    m.ptr.push_back(static_cast<int>(m.ind.size()));
  }
  return m;
}

double match_product(const std::vector<std::vector<double>>& a,
                     const std::vector<int>& q) {
  double p = 1;
  for (std::size_t i = 0; i < q.size(); ++i)
    p *= std::abs(a[i][static_cast<std::size_t>(q[i])]);
  return p;
}
}  // namespace

TEST(Mc64, FindsMaximumProductMatchingSmall) {
  // Brute-force check on a 4x4.
  std::vector<std::vector<double>> a = {{0.1, 2.0, 0.0, 0.0},
                                        {3.0, 0.2, 0.5, 0.0},
                                        {0.0, 1.0, 0.1, 4.0},
                                        {0.5, 0.0, 2.0, 0.3}};
  const Csr m = dense_to_csr(a);
  const Mc64Result r = mc64_scaling(4, m.ptr.data(), m.ind.data(),
                                    m.val.data());
  ASSERT_TRUE(r.structurally_nonsingular);

  // Brute force over all permutations.
  std::vector<int> p = {0, 1, 2, 3};
  double best = 0;
  do {
    double prod = 1;
    for (int i = 0; i < 4; ++i)
      prod *= std::abs(a[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(p[static_cast<std::size_t>(
                            i)])]);
    best = std::max(best, prod);
  } while (std::next_permutation(p.begin(), p.end()));
  EXPECT_NEAR(match_product(a, r.col_of_row), best, 1e-12);
}

TEST(Mc64, ScalingContract) {
  // After scaling and permutation: |diag| == 1, |off-diag| <= 1.
  Rng rng(11);
  const int n = 30;
  std::vector<std::vector<double>> a(
      static_cast<std::size_t>(n),
      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j)
      if (rng.uniform() < 0.2)
        a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            rng.uniform(-10, 10) * std::pow(10.0, rng.uniform_int(-4, 4));
    // Ensure structural nonsingularity via a nonzero diagonal.
    a[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)] =
        rng.uniform(0.1, 5.0);
  }
  const Csr m = dense_to_csr(a);
  const Mc64Result r = mc64_scaling(n, m.ptr.data(), m.ind.data(),
                                    m.val.data());
  ASSERT_TRUE(r.structurally_nonsingular);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      const double v = a[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(j)];
      if (v == 0) continue;
      const double scaled = r.dr[static_cast<std::size_t>(i)] * std::abs(v) *
                            r.dc[static_cast<std::size_t>(j)];
      EXPECT_LE(scaled, 1.0 + 1e-9);
      if (j == r.col_of_row[static_cast<std::size_t>(i)]) {
        EXPECT_NEAR(scaled, 1.0, 1e-9);
      }
    }
  }
}

TEST(Mc64, PermutationMatrix) {
  // A pure permutation matrix must be matched exactly.
  std::vector<std::vector<double>> a = {{0, 0, 3}, {5, 0, 0}, {0, 2, 0}};
  const Csr m = dense_to_csr(a);
  const Mc64Result r = mc64_scaling(3, m.ptr.data(), m.ind.data(),
                                    m.val.data());
  ASSERT_TRUE(r.structurally_nonsingular);
  EXPECT_EQ(r.col_of_row, (std::vector<int>{2, 0, 1}));
}

TEST(Mc64, StructurallySingularDetected) {
  // Column 1 is entirely zero.
  std::vector<std::vector<double>> a = {{1, 0, 1}, {1, 0, 0}, {1, 0, 1}};
  const Csr m = dense_to_csr(a);
  const Mc64Result r = mc64_scaling(3, m.ptr.data(), m.ind.data(),
                                    m.val.data());
  EXPECT_FALSE(r.structurally_nonsingular);
}
