// Tests for the memory-observability layer (DESIGN.md §9): tagged
// allocation tracking on the device, the Tracer's bounded allocation
// timeline with exact aggregate stats, the Chrome-trace counter tracks
// and summary-JSON "memory" object (with parse-back), the symbolic peak
// predictor against the measured factorization window, and the
// pure-bookkeeping invariant (tracking on/off yields bit-identical
// simulated results).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "gpusim/device.hpp"
#include "sparse/solver.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/memory.hpp"
#include "trace/report.hpp"
#include "trace/trace.hpp"

using namespace irrlu;
using namespace irrlu::gpusim;
using namespace irrlu::trace;

namespace {

std::string tmp_path(const std::string& stem) {
  return "memtrace_test_" + stem + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
         ".json";
}

/// The small Maxwell torus used by the predictor tests (a real assembly
/// tree with several levels and mixed front sizes).
fem::EdgeSystem small_maxwell() {
  const double omega = 16.0;
  const fem::HexMesh mesh = fem::HexMesh::torus(8, 4, 4);
  return fem::assemble_maxwell(mesh, omega,
                               fem::paper_maxwell_load(omega, omega / 1.05));
}

sparse::SolverOptions solver_opts(sparse::MemoryMode mode) {
  sparse::SolverOptions opts;
  opts.nd.leaf_size = 16;
  opts.factor.memory = mode;
  return opts;
}

const MemTagStats* stats_of(const Tracer& t, const std::string& tag) {
  const auto& names = t.mem_tags();
  for (std::size_t i = 0; i < names.size(); ++i)
    if (names[i] == tag) return &t.mem_tag_stats()[i];
  return nullptr;
}

}  // namespace

// ---------------------------------------------------------------------------
// Device-side recording: tags, stats, the bounded event log
// ---------------------------------------------------------------------------

TEST(MemTrace, ScopeDerivedTagsAndExactStats) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "phase");
    auto a = dev.alloc<double>(100);  // 800 B
    {
      IRRLU_TRACE_SCOPE(dev.tracer(), "inner");
      auto b = dev.alloc<char>(50);
      EXPECT_EQ(t.mem_current_bytes(), 850u);
    }  // b freed here, still attributed to "phase/inner"
    EXPECT_EQ(t.mem_current_bytes(), 800u);
  }
  dev.set_tracer(nullptr);

  const MemTagStats* phase = stats_of(t, "phase");
  ASSERT_NE(phase, nullptr);
  EXPECT_EQ(phase->allocs, 1);
  EXPECT_EQ(phase->frees, 1);
  EXPECT_EQ(phase->current_bytes, 0u);
  EXPECT_EQ(phase->peak_bytes, 800u);
  EXPECT_EQ(phase->lifetime_bytes, 800u);

  const MemTagStats* inner = stats_of(t, "phase/inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->allocs, 1);
  EXPECT_EQ(inner->frees, 1);
  EXPECT_EQ(inner->peak_bytes, 50u);

  EXPECT_EQ(t.mem_peak_bytes(), 850u);
  EXPECT_EQ(t.mem_current_bytes(), 0u);
  ASSERT_EQ(t.mem_events().size(), 4u);  // 2 allocs + 2 frees
  EXPECT_FALSE(t.mem_events()[0].is_free);
  EXPECT_EQ(t.mem_events()[0].bytes, 800u);
  EXPECT_EQ(t.mem_events()[0].in_use_after, 800u);
  EXPECT_TRUE(t.mem_events()[3].is_free);
  EXPECT_EQ(t.mem_events()[3].in_use_after, 0u);
  EXPECT_EQ(t.dropped_mem_events(), 0);
}

TEST(MemTrace, SourceLocationFallbackTagOutsideScopes) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  auto buf = dev.alloc<int>(4);  // no active scope -> "file:line" tag
  dev.set_tracer(nullptr);

  ASSERT_EQ(t.mem_tags().size(), 1u);
  const std::string& tag = t.mem_tags()[0];
  EXPECT_EQ(tag.rfind("test_memtrace.cpp:", 0), 0u) << tag;
  EXPECT_EQ(t.mem_tag_name(-1), "(untracked)");
}

TEST(MemTrace, EventCapDropsEventsButStatsStayExact) {
  Device dev(DeviceModel::test_tiny());
  Tracer t(/*reserve_launches=*/16, /*max_launches=*/1 << 22,
           /*max_mem_events=*/4);
  dev.set_tracer(&t);
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "cap");
    std::vector<DeviceBuffer<char>> bufs;
    for (int i = 0; i < 10; ++i) bufs.push_back(dev.alloc<char>(100));
    EXPECT_EQ(t.mem_peak_bytes(), 1000u);
  }  // 10 frees, all past the cap
  dev.set_tracer(nullptr);

  EXPECT_EQ(t.mem_events().size(), 4u);
  EXPECT_EQ(t.dropped_mem_events(), 16);  // 20 events total, 4 recorded
  const MemTagStats* cap = stats_of(t, "cap");
  ASSERT_NE(cap, nullptr);
  EXPECT_EQ(cap->allocs, 10);  // aggregate stats ignore the cap
  EXPECT_EQ(cap->frees, 10);
  EXPECT_EQ(cap->current_bytes, 0u);
  EXPECT_EQ(cap->peak_bytes, 1000u);
  EXPECT_EQ(cap->lifetime_bytes, 1000u);
  EXPECT_EQ(t.mem_current_bytes(), 0u);
  EXPECT_EQ(t.mem_peak_bytes(), 1000u);
}

TEST(MemTrace, ClearResetsMemoryState) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  { auto a = dev.alloc<double>(8); }
  dev.set_tracer(nullptr);
  t.clear();
  EXPECT_TRUE(t.mem_events().empty());
  EXPECT_TRUE(t.mem_tags().empty());
  EXPECT_TRUE(t.mem_tag_stats().empty());
  EXPECT_EQ(t.mem_peak_bytes(), 0u);
  EXPECT_EQ(t.mem_current_bytes(), 0u);
  EXPECT_EQ(t.dropped_mem_events(), 0);
}

// ---------------------------------------------------------------------------
// Exporters: Chrome counter tracks + summary "memory" object round trip
// ---------------------------------------------------------------------------

TEST(MemTrace, ChromeTraceCarriesCounterTracks) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "phase");
    auto a = dev.alloc<double>(100);
    auto b = dev.alloc<char>(200);
  }
  dev.launch(dev.stream(), {"k", 1, 0},
             [](BlockCtx& c) { c.record(1e4, 0); });
  dev.synchronize_all();
  dev.set_tracer(nullptr);

  const std::string path = tmp_path("chrome");
  write_chrome_trace(path, t, dev.model());
  double max_total = 0;
  bool saw_tag_track = false;
  for (const ChromeEvent& e : read_chrome_trace(path)) {
    if (e.ph != "C") continue;
    if (e.cat == "utilization") {  // per-stream busy counters (pid 4)
      EXPECT_EQ(e.pid, 4);
      continue;
    }
    EXPECT_EQ(e.pid, 3);  // memory counters live on their own pid
    EXPECT_EQ(e.cat, "memory");
    if (e.name == "bytes_in_use") max_total = std::max(max_total, e.arg_bytes);
    if (e.name == "mem:phase") saw_tag_track = true;
  }
  EXPECT_EQ(max_total, static_cast<double>(t.mem_peak_bytes()));
  EXPECT_TRUE(saw_tag_track);
  std::remove(path.c_str());
}

TEST(MemTrace, SummaryMemoryObjectRoundTrips) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "alpha");
    auto a = dev.alloc<double>(64);
  }
  auto keep = dev.alloc<char>(33);  // still live at write time
  const std::string path = tmp_path("summary");
  write_summary_json(path, t, dev.model());

  const MemorySummary ref = memory_summary(t);
  const MemorySummary got = read_memory_summary(path);
  ASSERT_TRUE(got.present);
  EXPECT_EQ(got.peak_bytes, ref.peak_bytes);
  EXPECT_EQ(got.current_bytes, ref.current_bytes);
  EXPECT_EQ(got.current_bytes, 33u);
  EXPECT_EQ(got.events, ref.events);
  EXPECT_EQ(got.dropped_events, ref.dropped_events);
  ASSERT_EQ(got.tags.size(), ref.tags.size());
  for (std::size_t i = 0; i < ref.tags.size(); ++i) {
    EXPECT_EQ(got.tags[i].tag, ref.tags[i].tag);
    EXPECT_EQ(got.tags[i].allocs, ref.tags[i].allocs);
    EXPECT_EQ(got.tags[i].frees, ref.tags[i].frees);
    EXPECT_EQ(got.tags[i].current_bytes, ref.tags[i].current_bytes);
    EXPECT_EQ(got.tags[i].peak_bytes, ref.tags[i].peak_bytes);
    EXPECT_EQ(got.tags[i].lifetime_bytes, ref.tags[i].lifetime_bytes);
  }
  // The launch rows of the summary remain readable alongside.
  dev.set_tracer(nullptr);
  std::remove(path.c_str());
}

TEST(MemTrace, ReaderReportsAbsentMemoryObject) {
  const std::string path = tmp_path("v1file");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"schema\": \"irrlu-trace-summary-v1\", \"rows\": []}", f);
  std::fclose(f);
  const MemorySummary s = read_memory_summary(path);
  EXPECT_FALSE(s.present);
  EXPECT_TRUE(s.tags.empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// The pure-bookkeeping invariant on the full multifrontal pipeline
// ---------------------------------------------------------------------------

TEST(MemTrace, TrackingOnOffYieldsBitIdenticalFactorization) {
  const fem::EdgeSystem sys = small_maxwell();
  const std::vector<double> b(sys.b.begin(), sys.b.end());

  auto run = [&](bool traced, double* host_time, double* factor_seconds) {
    Device dev(DeviceModel::a100());
    Tracer t;
    if (traced) dev.set_tracer(&t);
    sparse::SparseDirectSolver solver(
        solver_opts(sparse::MemoryMode::kStackedLevels));
    solver.analyze(sys.a);
    solver.factor(dev);
    const std::vector<double> x = solver.solve(b);
    *host_time = dev.host_time();
    *factor_seconds = solver.numeric().factor_seconds();
    if (traced) {
      EXPECT_FALSE(t.mem_events().empty());
      dev.set_tracer(nullptr);
    }
    return x;
  };

  double host_plain = 0, factor_plain = 0, host_traced = 0, factor_traced = 0;
  const std::vector<double> x_plain = run(false, &host_plain, &factor_plain);
  const std::vector<double> x_traced = run(true, &host_traced, &factor_traced);

  EXPECT_EQ(host_plain, host_traced);      // bit-identical, not just close
  EXPECT_EQ(factor_plain, factor_traced);
  ASSERT_EQ(x_plain.size(), x_traced.size());
  for (std::size_t i = 0; i < x_plain.size(); ++i)
    ASSERT_EQ(x_plain[i], x_traced[i]) << "solution diverged at " << i;
}

TEST(MemTrace, MultifrontalAllocationsAreTagged) {
  const fem::EdgeSystem sys = small_maxwell();
  Device dev(DeviceModel::a100());
  Tracer t;
  dev.set_tracer(&t);
  sparse::SparseDirectSolver solver(
      solver_opts(sparse::MemoryMode::kAllUpfront));
  solver.analyze(sys.a);
  solver.factor(dev);
  dev.set_tracer(nullptr);

  const auto& tags = t.mem_tags();
  const auto has = [&](const std::string& needle, bool substring) {
    return std::any_of(tags.begin(), tags.end(), [&](const std::string& s) {
      return substring ? s.find(needle) != std::string::npos : s == needle;
    });
  };
  EXPECT_TRUE(has("factor/factor-store", false));
  EXPECT_TRUE(has("front-store", true));   // per-level working fronts
  EXPECT_TRUE(has("fronts<", true));       // front-size-class descriptors
  EXPECT_TRUE(has("factor/assembly", false));
  EXPECT_TRUE(has("factor/workspace", false));
  // Every allocation of the factorization is attributed (no fallback
  // site tags from the sparse layer).
  for (const std::string& tag : tags)
    EXPECT_EQ(tag.find(".cpp:"), std::string::npos) << tag;
  // The predicted/measured counters are exported for the summary.
  EXPECT_EQ(t.counters().count("memory.predicted_peak_bytes"), 1u);
  EXPECT_EQ(t.counters().count("memory.measured_peak_bytes"), 1u);
}

// ---------------------------------------------------------------------------
// Symbolic peak prediction vs the measured factorization window
// ---------------------------------------------------------------------------

TEST(MemTrace, PredictedPeakExactForAllUpfront) {
  const fem::EdgeSystem sys = small_maxwell();
  Device dev(DeviceModel::a100());
  sparse::SparseDirectSolver solver(
      solver_opts(sparse::MemoryMode::kAllUpfront));
  solver.analyze(sys.a);
  solver.factor(dev);
  const auto& rep = solver.numeric().report();
  EXPECT_EQ(rep.predicted_peak_bytes,
            solver.symbolic().predicted_peak_bytes(
                sparse::MemoryMode::kAllUpfront));
  EXPECT_EQ(rep.predicted_peak_bytes, rep.measured_peak_bytes);  // exact
  EXPECT_GT(rep.measured_peak_bytes, 0u);
}

TEST(MemTrace, PredictedPeakWithin10PercentForStackedLevels) {
  const fem::EdgeSystem sys = small_maxwell();
  Device dev(DeviceModel::a100());
  sparse::SparseDirectSolver solver(
      solver_opts(sparse::MemoryMode::kStackedLevels));
  solver.analyze(sys.a);
  solver.factor(dev);
  const auto& rep = solver.numeric().report();
  ASSERT_GT(rep.measured_peak_bytes, 0u);
  const double ratio = static_cast<double>(rep.predicted_peak_bytes) /
                       static_cast<double>(rep.measured_peak_bytes);
  EXPECT_NEAR(ratio, 1.0, 0.10);
}

TEST(MemTrace, PredictedLevelPeaksAreConsistent) {
  const fem::EdgeSystem sys = small_maxwell();
  sparse::SparseDirectSolver solver(
      solver_opts(sparse::MemoryMode::kAllUpfront));
  solver.analyze(sys.a);
  const auto& sym = solver.symbolic();

  for (auto mode : {sparse::MemoryMode::kAllUpfront,
                    sparse::MemoryMode::kStackedLevels}) {
    const auto levels = sym.predicted_level_peak_bytes(mode);
    ASSERT_EQ(levels.size(), sym.levels.size());
    EXPECT_EQ(*std::max_element(levels.begin(), levels.end()),
              sym.predicted_peak_bytes(mode));
  }
  // The stacked window can never exceed the all-upfront footprint.
  const auto up = sym.predicted_level_peak_bytes(
      sparse::MemoryMode::kAllUpfront);
  const auto st = sym.predicted_level_peak_bytes(
      sparse::MemoryMode::kStackedLevels);
  for (std::size_t lvl = 0; lvl < up.size(); ++lvl)
    EXPECT_LE(st[lvl], up[lvl]) << "level " << lvl;
  EXPECT_LE(sym.predicted_peak_bytes(sparse::MemoryMode::kStackedLevels),
            sym.predicted_peak_bytes(sparse::MemoryMode::kAllUpfront));
}
