// Tests for the FEM substrate: hex meshes (box + torus), Q1 Poisson with
// manufactured-solution convergence, and the Nédélec Maxwell assembly
// (exact-sequence and consistency properties), ending with the full
// paper pipeline: Maxwell -> multifrontal solve -> machine precision.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "fem/element.hpp"
#include "fem/mesh.hpp"
#include "fem/nedelec.hpp"
#include "fem/nodal.hpp"
#include "gpusim/device.hpp"
#include "sparse/solver.hpp"

using namespace irrlu::fem;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;
using irrlu::sparse::CsrMatrix;
using irrlu::sparse::SparseDirectSolver;
using irrlu::sparse::SolverOptions;

TEST(HexMesh, BoxCounts) {
  const HexMesh m = HexMesh::box(3, 2, 4);
  EXPECT_EQ(m.num_cells(), 24);
  EXPECT_EQ(m.num_vertices(), 4 * 3 * 5);
  // Edges: x: 3*3*5, y: 4*2*5, z: 4*3*4.
  EXPECT_EQ(m.num_edges(), 45 + 40 + 48);
}

TEST(HexMesh, TorusPeriodicityIdentifiesSeam) {
  const HexMesh m = HexMesh::torus(8, 2, 2);
  EXPECT_EQ(m.vertex_id(8, 1, 1), m.vertex_id(0, 1, 1));
  EXPECT_EQ(m.edge_id(1, 8, 0, 1), m.edge_id(1, 0, 0, 1));
  // Vertex count: 8 angular planes (not 9).
  EXPECT_EQ(m.num_vertices(), 8 * 3 * 3);
}

TEST(HexMesh, TorusGeometryLiesOnRing) {
  const HexMesh m = HexMesh::torus(12, 2, 2, 2.0, 0.5);
  for (int i = 0; i <= 12; ++i) {
    const auto c = m.vertex_coord(i % 12, 1, 1);
    const double r = std::sqrt(c[0] * c[0] + c[1] * c[1]);
    EXPECT_NEAR(r, 2.0, 1e-12);  // centerline radius
    EXPECT_NEAR(c[2], 0.0, 1e-12);
  }
}

TEST(HexMesh, CellEdgesDistinctAndShared) {
  const HexMesh m = HexMesh::box(2, 2, 2);
  const auto e0 = m.cell_edges(0, 0, 0);
  std::set<int> s(e0.begin(), e0.end());
  EXPECT_EQ(s.size(), 12u);
  // Neighboring cells share exactly 4 edges across a face.
  const auto e1 = m.cell_edges(1, 0, 0);
  int shared = 0;
  for (int e : e1) shared += s.count(e);
  EXPECT_EQ(shared, 4);
}

TEST(HexMesh, BoundaryEdges) {
  const HexMesh box = HexMesh::box(3, 3, 3);
  int nb = 0;
  for (int e = 0; e < box.num_edges(); ++e) nb += box.edge_on_boundary(e);
  EXPECT_GT(nb, 0);
  EXPECT_LT(nb, box.num_edges());
  // Torus: no boundary in the angular direction — an interior ring edge is
  // interior even at the seam.
  const HexMesh t = HexMesh::torus(6, 2, 2);
  EXPECT_FALSE(t.edge_on_boundary(0, 0, 1, 1));
  EXPECT_TRUE(t.edge_on_boundary(0, 0, 0, 1));
}

TEST(Element, JacobianOfUnitCellIsDiagonal) {
  const HexMesh m = HexMesh::box(2, 2, 2);
  const auto geo = map_hex(m.cell_coords(0, 0, 0), 0.3, 0.6, 0.9);
  EXPECT_NEAR(geo.J[0][0], 0.5, 1e-14);
  EXPECT_NEAR(geo.J[1][1], 0.5, 1e-14);
  EXPECT_NEAR(geo.J[2][2], 0.5, 1e-14);
  EXPECT_NEAR(geo.detJ, 0.125, 1e-14);
}

TEST(Poisson, ManufacturedSolutionConverges) {
  // u = sin(pi x) sin(pi y) sin(pi z), f = 3 pi^2 u, u = 0 on the boundary.
  auto u = [](double x, double y, double z) {
    return std::sin(M_PI * x) * std::sin(M_PI * y) * std::sin(M_PI * z);
  };
  auto f = [&](double x, double y, double z) {
    return 3.0 * M_PI * M_PI * u(x, y, z);
  };
  double prev_err = 0;
  int step = 0;
  for (int n : {4, 8}) {
    const HexMesh mesh = HexMesh::box(n, n, n);
    const NodalSystem sys = assemble_poisson(mesh, 0.0, f);
    Device dev(DeviceModel::a100());
    SparseDirectSolver solver;
    solver.analyze(sys.a);
    solver.factor(dev);
    const auto x = solver.solve(sys.b);
    const double err = nodal_max_error(mesh, sys, x, u);
    if (step > 0) {
      EXPECT_LT(err, 0.4 * prev_err);  // ~O(h^2)
    }
    prev_err = err;
    ++step;
  }
  EXPECT_LT(prev_err, 0.04);
}

TEST(Poisson, DirichletLift) {
  // Exact affine solution u = 1 + 2x reproduced exactly by Q1 elements.
  auto u = [](double x, double, double) { return 1.0 + 2.0 * x; };
  ScalarField g = u;
  const HexMesh mesh = HexMesh::box(3, 3, 3);
  const NodalSystem sys =
      assemble_poisson(mesh, 0.0, [](double, double, double) { return 0.0; },
                       &g);
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(sys.a);
  solver.factor(dev);
  const auto x = solver.solve(sys.b);
  EXPECT_LT(nodal_max_error(mesh, sys, x, u), 1e-10);
}

TEST(Maxwell, GradientEnergyMatchesNodalStiffness) {
  // Cross-module identity: for any interior nodal function p, the Nédélec
  // interpolant of grad p (via the discrete gradient) satisfies
  //   (G p)^T M_edge (G p) == p^T K_nodal p  ( = ∫ |grad p_h|^2 ),
  // because the edge space contains gradients of the nodal space exactly.
  for (const HexMesh& mesh :
       {HexMesh::box(4, 4, 4), HexMesh::torus(8, 3, 3)}) {
    const EdgeSystem esys = assemble_maxwell(mesh, 1.0, VectorField{});
    const NodalSystem nsys = assemble_poisson(
        mesh, 0.0, [](double, double, double) { return 0.0; });
    std::vector<int> dof_of_vertex;
    const CsrMatrix g = discrete_gradient(mesh, esys, dof_of_vertex);
    // The two modules must agree on the interior-vertex dof numbering
    // count (both skip boundary vertices).
    Rng rng(8);
    std::vector<double> p(static_cast<std::size_t>(nsys.num_dofs));
    // Map: discrete_gradient numbers vertices in the same lattice order as
    // assemble_poisson, so the dof spaces coincide.
    for (auto& v : p) v = rng.uniform(-1, 1);
    std::vector<double> gp(static_cast<std::size_t>(esys.num_dofs));
    g.multiply(p.data(), gp.data());
    std::vector<double> mgp(gp.size());
    esys.mass.multiply(gp.data(), mgp.data());
    const double e_edge =
        std::inner_product(gp.begin(), gp.end(), mgp.begin(), 0.0);
    std::vector<double> kp(p.size());
    nsys.a.multiply(p.data(), kp.data());
    const double e_nodal =
        std::inner_product(p.begin(), p.end(), kp.begin(), 0.0);
    EXPECT_NEAR(e_edge, e_nodal, 1e-10 * std::abs(e_nodal));
  }
}

TEST(Maxwell, ExactSequenceCurlGradZero) {
  for (const HexMesh& mesh :
       {HexMesh::box(4, 3, 3), HexMesh::torus(8, 3, 3)}) {
    const EdgeSystem sys = assemble_maxwell(mesh, 2.0, VectorField{});
    std::vector<int> dof_of_vertex;
    const CsrMatrix g = discrete_gradient(mesh, sys, dof_of_vertex);
    int nv = 0;
    for (int d : dof_of_vertex) nv = std::max(nv, d + 1);
    ASSERT_GT(nv, 0);
    Rng rng(4);
    std::vector<double> p(static_cast<std::size_t>(nv));
    for (auto& v : p) v = rng.uniform(-1, 1);
    std::vector<double> gp(static_cast<std::size_t>(sys.num_dofs));
    g.multiply(p.data(), gp.data());
    std::vector<double> kgp(gp.size());
    sys.curl.multiply(gp.data(), kgp.data());
    for (double v : kgp) EXPECT_NEAR(v, 0.0, 1e-11);
  }
}

TEST(Maxwell, OperatorIsSymmetricIndefinite) {
  const HexMesh mesh = HexMesh::torus(12, 4, 4);
  const double omega = 8.0;
  const EdgeSystem sys =
      assemble_maxwell(mesh, omega, paper_maxwell_load(omega, omega / 1.05));
  // Symmetry.
  for (int i = 0; i < sys.num_dofs; i += 7)
    for (int k = sys.a.ptr()[static_cast<std::size_t>(i)];
         k < sys.a.ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = sys.a.ind()[static_cast<std::size_t>(k)];
      EXPECT_NEAR(sys.a.at(i, j), sys.a.at(j, i), 1e-12);
    }
  // Indefiniteness witnesses: some unit vector has positive energy (the
  // curl term dominates for oscillatory modes), while any gradient field
  // has energy exactly -omega^2 |grad p|^2_M < 0 (curl grad = 0).
  bool pos_diag = false;
  for (int k = 0; k < sys.num_dofs; ++k)
    if (sys.a.at(k, k) > 0) pos_diag = true;
  EXPECT_TRUE(pos_diag);

  std::vector<int> dof_of_vertex;
  const CsrMatrix g = discrete_gradient(mesh, sys, dof_of_vertex);
  int nv = 0;
  for (int d : dof_of_vertex) nv = std::max(nv, d + 1);
  Rng rng(17);
  std::vector<double> p(static_cast<std::size_t>(nv));
  for (auto& v : p) v = rng.uniform(-1, 1);
  std::vector<double> gp(static_cast<std::size_t>(sys.num_dofs)),
      agp(static_cast<std::size_t>(sys.num_dofs));
  g.multiply(p.data(), gp.data());
  sys.a.multiply(gp.data(), agp.data());
  EXPECT_LT(std::inner_product(gp.begin(), gp.end(), agp.begin(), 0.0), 0.0);
}

TEST(Maxwell, EndToEndSolveOnTorus) {
  // The paper's §V-B pipeline in miniature: indefinite Maxwell on a torus,
  // factored with the batched multifrontal engine, one refinement step,
  // residual near machine precision.
  const HexMesh mesh = HexMesh::torus(12, 4, 4);
  const double omega = 6.0;
  const EdgeSystem sys =
      assemble_maxwell(mesh, omega, paper_maxwell_load(omega, omega / 1.05));
  ASSERT_GT(sys.num_dofs, 200);
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(sys.a);
  solver.factor(dev);
  EXPECT_TRUE(solver.numeric().numerically_ok());
  const auto x = solver.solve(sys.b);
  EXPECT_LT(solver.residual(x, sys.b), 1e-12);
}

TEST(Maxwell, AllEnginesAgreeOnMaxwell) {
  const HexMesh mesh = HexMesh::torus(8, 2, 2);
  const double omega = 4.0;
  const EdgeSystem sys =
      assemble_maxwell(mesh, omega, paper_maxwell_load(omega, omega / 1.05));
  std::vector<std::vector<double>> sols;
  using irrlu::sparse::Engine;
  for (Engine e : {Engine::kBatched, Engine::kLooped,
                   Engine::kLegacySmallBatch, Engine::kRightLooking}) {
    Device dev(DeviceModel::a100());
    SolverOptions opts;
    opts.factor.engine = e;
    SparseDirectSolver solver(opts);
    solver.analyze(sys.a);
    solver.factor(dev);
    sols.push_back(solver.solve(sys.b));
  }
  for (std::size_t e = 1; e < sols.size(); ++e)
    for (std::size_t i = 0; i < sols[0].size(); ++i)
      EXPECT_NEAR(sols[e][i], sols[0][i], 1e-7);
}

TEST(HexMesh, EdgeIdDecodeRoundTrip) {
  for (const HexMesh& m : {HexMesh::box(3, 4, 2), HexMesh::torus(6, 2, 3)}) {
    for (int e = 0; e < m.num_edges(); ++e) {
      const auto [d, i, j, k] = m.edge_decode(e);
      EXPECT_EQ(m.edge_id(d, i, j, k), e);
    }
  }
}

TEST(HexMesh, EveryEdgeBelongsToSomeCell) {
  const HexMesh m = HexMesh::torus(5, 2, 2);
  std::vector<char> seen(static_cast<std::size_t>(m.num_edges()), 0);
  for (int ck = 0; ck < m.nz(); ++ck)
    for (int cj = 0; cj < m.ny(); ++cj)
      for (int ci = 0; ci < m.nx(); ++ci)
        for (int e : m.cell_edges(ci, cj, ck))
          seen[static_cast<std::size_t>(e)] = 1;
  for (char s : seen) EXPECT_TRUE(s);
}

TEST(Maxwell, LoadVectorMatchesPaperFormula) {
  const auto f = paper_maxwell_load(16.0, 16.0 / 1.05);
  const double kappa = 16.0 / 1.05;
  const double c = kappa * kappa - 256.0;
  const auto v = f(0.3, 0.7, 0.2);
  EXPECT_NEAR(v[0], c * std::sin(kappa * 0.7), 1e-12);
  EXPECT_NEAR(v[1], c * std::sin(kappa * 0.2), 1e-12);
  EXPECT_NEAR(v[2], c * std::sin(kappa * 0.3), 1e-12);
}

TEST(Maxwell, DofCountMatchesInteriorEdges) {
  const HexMesh mesh = HexMesh::torus(8, 3, 3);
  const EdgeSystem sys = assemble_maxwell(mesh, 4.0, VectorField{});
  int interior = 0;
  for (int e = 0; e < mesh.num_edges(); ++e)
    interior += !mesh.edge_on_boundary(e);
  EXPECT_EQ(sys.num_dofs, interior);
  // Each interior edge dof maps back consistently.
  for (int d = 0; d < sys.num_dofs; ++d)
    EXPECT_EQ(sys.dof_of_edge[static_cast<std::size_t>(
                  sys.edge_of_dof[static_cast<std::size_t>(d)])],
              d);
}
