// Unit tests for the tracing & telemetry subsystem: JSON helpers, the
// Tracer recorder, scope attribution, aggregate reports vs
// Device::profile(), the tracing-off invariant (bit-identical simulated
// times), and parse-back validation of both exporter formats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"
#include "gpusim/device.hpp"
#include "trace/analysis.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/histogram.hpp"
#include "trace/report.hpp"
#include "trace/session.hpp"
#include "trace/trace.hpp"

using irrlu::Error;
using namespace irrlu::gpusim;
using namespace irrlu::trace;
namespace json = irrlu::json;

namespace {

/// Unique temp path per test (the build dir is the cwd under ctest).
std::string tmp_path(const std::string& stem) {
  return "trace_test_" + stem + "_" +
         std::to_string(::testing::UnitTest::GetInstance()
                            ->random_seed()) +
         ".json";
}

/// A small fixed launch program exercising streams, events, syncs, and
/// scopes; returns the final simulated time.
double run_program(Device& dev) {
  auto& s0 = dev.stream(0);
  auto& s1 = dev.stream(1);
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "outer");
    {
      IRRLU_TRACE_SCOPE(dev.tracer(), "produce");
      dev.launch(s0, {"producer", 4, 256},
                 [](BlockCtx& c) { c.record(1e6, 4e5); });
    }
    const Event e = dev.record(s0);
    dev.wait(s1, e);
    {
      IRRLU_TRACE_SCOPE(dev.tracer(), "consume");
      dev.launch(s1, {"consumer", 2, 0},
                 [](BlockCtx& c) { c.record(5e5, 1e5); });
    }
    dev.launch(s0, {"producer", 1, 0},
               [](BlockCtx& c) { c.record(1e4, 2e3); });
  }
  dev.synchronize(s0);
  return dev.synchronize_all();
}

}  // namespace

// ---------------------------------------------------------------------------
// JSON helpers (satellite: shared emitter in src/common)
// ---------------------------------------------------------------------------

TEST(Json, EscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(json::escape("plain"), "plain");
  EXPECT_EQ(json::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json::escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, WriterParserRoundTrip) {
  const std::string path = tmp_path("roundtrip");
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    json::Writer w(f);
    w.begin_object();
    w.kv("name", "irr\"lu");
    w.kv("pi", 3.25);
    w.kv_int("count", -7);
    w.kv_bool("flag", true);
    w.key("items");
    w.begin_array(/*compact=*/true);
    w.number_int(1);
    w.number_int(2);
    w.begin_object(true);
    w.kv("k", "v");
    w.end_object();
    w.end_array();
    w.key("nothing");
    w.null();
    w.end_object();
    std::fclose(f);
  }
  const json::Value v = json::parse_file(path);
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("name")->as_string(), "irr\"lu");
  EXPECT_DOUBLE_EQ(v.find("pi")->as_number(), 3.25);
  EXPECT_EQ(v.find("count")->as_int(), -7);
  EXPECT_TRUE(v.find("flag")->as_bool());
  const json::Value* items = v.find("items");
  ASSERT_TRUE(items != nullptr && items->is_array());
  ASSERT_EQ(items->items.size(), 3u);
  EXPECT_EQ(items->items[0].as_int(), 1);
  EXPECT_EQ(items->items[2].find("k")->as_string(), "v");
  EXPECT_EQ(v.find("nothing")->type, json::Value::Type::kNull);
  EXPECT_EQ(v.find("absent"), nullptr);
  std::remove(path.c_str());
}

TEST(Json, ParserRejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), Error);
  EXPECT_THROW(json::parse("[1,]"), Error);
  EXPECT_THROW(json::parse("{} trailing"), Error);
  EXPECT_THROW(json::parse("\"unterminated"), Error);
}

TEST(Json, ParserHandlesUnicodeEscapes) {
  const json::Value v = json::parse("\"a\\u00e9b\"");
  EXPECT_EQ(v.as_string(), "a\xc3\xa9" "b");  // é as UTF-8
}

// ---------------------------------------------------------------------------
// Tracer core
// ---------------------------------------------------------------------------

TEST(Tracer, InternsKernelNamesAndScopes) {
  Tracer t;
  EXPECT_EQ(t.intern_kernel("a"), t.intern_kernel("a"));
  EXPECT_NE(t.intern_kernel("a"), t.intern_kernel("b"));
  EXPECT_EQ(t.kernel_name(t.intern_kernel("b")), "b");

  const int outer = t.push_scope("outer");
  const int inner = t.push_scope("inner");
  t.pop_scope(0.5);
  const int inner2 = t.push_scope("inner");
  t.pop_scope(0.25);
  t.pop_scope(1.0);
  EXPECT_EQ(inner, inner2);  // same (parent, label) -> same node
  EXPECT_EQ(t.scope_path(inner), "outer/inner");
  EXPECT_EQ(t.scope_path(outer), "outer");
  EXPECT_EQ(t.scope_path(-1), "");
  EXPECT_TRUE(t.scope_within(inner, outer));
  EXPECT_FALSE(t.scope_within(outer, inner));
  const auto& nodes = t.scopes();
  EXPECT_EQ(nodes[static_cast<std::size_t>(inner)].entries, 2);
  EXPECT_DOUBLE_EQ(nodes[static_cast<std::size_t>(inner)].wall_seconds, 0.75);
  EXPECT_EQ(nodes[static_cast<std::size_t>(inner)].depth, 1);
  EXPECT_EQ(t.current_scope(), -1);  // fully unwound
}

TEST(Tracer, SameLabelUnderDifferentParentsIsDistinct) {
  Tracer t;
  const int a = t.push_scope("a");
  const int x1 = t.push_scope("x");
  t.pop_scope(0);
  t.pop_scope(0);
  const int b = t.push_scope("b");
  const int x2 = t.push_scope("x");
  t.pop_scope(0);
  t.pop_scope(0);
  EXPECT_NE(x1, x2);
  EXPECT_EQ(t.scope_path(x1), "a/x");
  EXPECT_EQ(t.scope_path(x2), "b/x");
  EXPECT_FALSE(t.scope_within(x2, a));
  EXPECT_TRUE(t.scope_within(x2, b));
}

TEST(Tracer, NullTracerScopeIsNoOp) {
  // The instrumented code paths pass dev.tracer() unconditionally; a null
  // tracer must be safe and free of side effects.
  IRRLU_TRACE_SCOPE(nullptr, "ignored");
  SUCCEED();
}

TEST(Tracer, RecordsLaunchFieldsFromDevice) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  run_program(dev);
  dev.set_tracer(nullptr);

  ASSERT_EQ(t.launches().size(), 3u);
  const LaunchRecord& r = t.launches()[0];
  EXPECT_EQ(t.kernel_name(r.name_id), "producer");
  EXPECT_EQ(r.stream, 0);
  EXPECT_EQ(r.blocks, 4);
  EXPECT_EQ(r.smem_bytes, 256u);
  EXPECT_DOUBLE_EQ(r.flops, 4e6);   // 4 blocks x 1e6
  EXPECT_DOUBLE_EQ(r.bytes, 1.6e6);
  EXPECT_EQ(t.scope_path(r.scope), "outer/produce");
  EXPECT_GT(r.sim_end, r.sim_start);
  EXPECT_GT(r.excl_seconds, 0.0);
  EXPECT_GE(r.wall_seconds, 0.0);
  EXPECT_GE(r.sim_start, r.host_issue);

  EXPECT_EQ(t.scope_path(t.launches()[1].scope), "outer/consume");
  EXPECT_EQ(t.scope_path(t.launches()[2].scope), "outer");
  EXPECT_EQ(t.launches()[1].stream, 1);
  EXPECT_EQ(t.max_stream_seen(), 1);

  // record + wait instants, one per-stream sync + the final sync-all.
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_FALSE(t.events()[0].is_wait);
  EXPECT_TRUE(t.events()[1].is_wait);
  ASSERT_EQ(t.syncs().size(), 2u);
  EXPECT_EQ(t.syncs()[0].stream, 0);
  EXPECT_EQ(t.syncs()[1].stream, -1);
  EXPECT_GE(t.syncs()[0].host_end, t.syncs()[0].host_begin);
  EXPECT_EQ(t.dropped_launches(), 0);
}

TEST(Tracer, EventWaitOrderingVisibleInRecords) {
  // Cross-stream ordering in *simulated* time, observed purely from the
  // trace: the consumer (waited on the producer's event) cannot start
  // before the event time.
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  auto& s0 = dev.stream(0);
  auto& s1 = dev.stream(1);
  dev.launch(s0, {"big_producer", 1, 0},
             [](BlockCtx& c) { c.record(1e8, 0); });
  const Event e = dev.record(s0);
  dev.wait(s1, e);
  dev.launch(s1, {"late_consumer", 1, 0},
             [](BlockCtx& c) { c.record(10, 0); });
  dev.synchronize_all();
  dev.set_tracer(nullptr);

  ASSERT_EQ(t.launches().size(), 2u);
  const LaunchRecord& prod = t.launches()[0];
  const LaunchRecord& cons = t.launches()[1];
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_DOUBLE_EQ(t.events()[0].time, prod.sim_end);
  EXPECT_GE(cons.sim_start, t.events()[0].time);
}

TEST(Tracer, CapDropsExcessLaunchesButNotTime) {
  Device dev(DeviceModel::test_tiny());
  Tracer t(/*reserve_launches=*/2, /*max_launches=*/3);
  dev.set_tracer(&t);
  for (int i = 0; i < 10; ++i)
    dev.launch(dev.stream(), {"capped", 1, 0},
               [](BlockCtx& c) { c.record(100, 0); });
  const double traced_time = dev.synchronize_all();
  dev.set_tracer(nullptr);
  EXPECT_EQ(t.launches().size(), 3u);
  EXPECT_EQ(t.dropped_launches(), 7);

  // The cap degrades the trace, never the simulation.
  Device ref(DeviceModel::test_tiny());
  for (int i = 0; i < 10; ++i)
    ref.launch(ref.stream(), {"capped", 1, 0},
               [](BlockCtx& c) { c.record(100, 0); });
  EXPECT_EQ(traced_time, ref.synchronize_all());
}

TEST(Tracer, ClearResetsEverything) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  run_program(dev);
  dev.set_tracer(nullptr);
  t.clear();
  EXPECT_TRUE(t.launches().empty());
  EXPECT_TRUE(t.syncs().empty());
  EXPECT_TRUE(t.events().empty());
  EXPECT_TRUE(t.scopes().empty());
  EXPECT_EQ(t.current_scope(), -1);
  EXPECT_EQ(t.dropped_launches(), 0);
}

// ---------------------------------------------------------------------------
// The tracing-off invariant and profile() agreement
// ---------------------------------------------------------------------------

TEST(Tracer, TracingOnOffYieldsIdenticalSimulatedTimes) {
  Device plain(DeviceModel::test_tiny());
  const double t_plain = run_program(plain);

  Device traced(DeviceModel::test_tiny());
  Tracer t;
  traced.set_tracer(&t);
  const double t_traced = run_program(traced);
  traced.set_tracer(nullptr);

  EXPECT_EQ(t_plain, t_traced);  // bit-identical, not just close
  EXPECT_EQ(plain.host_time(), traced.host_time());
  EXPECT_EQ(plain.stream(0).completion_time(),
            traced.stream(0).completion_time());
  EXPECT_EQ(plain.stream(1).completion_time(),
            traced.stream(1).completion_time());
  ASSERT_EQ(plain.profile().size(), traced.profile().size());
  for (const auto& [name, st] : plain.profile()) {
    const KernelStats& o = traced.profile().at(name);
    EXPECT_EQ(st.sim_seconds, o.sim_seconds) << name;
    EXPECT_EQ(st.flops, o.flops) << name;
  }
}

TEST(Report, AggregateByKernelMatchesProfileExactly) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  run_program(dev);
  dev.set_tracer(nullptr);

  const auto agg = aggregate_by_kernel(t);
  ASSERT_EQ(agg.size(), dev.profile().size());
  for (const auto& [name, st] : dev.profile()) {
    ASSERT_EQ(agg.count(name), 1u) << name;
    const Agg& a = agg.at(name);
    EXPECT_EQ(a.launches, st.launches) << name;
    EXPECT_EQ(a.blocks, st.blocks) << name;
    EXPECT_EQ(a.flops, st.flops) << name;
    EXPECT_EQ(a.bytes, st.bytes) << name;
    EXPECT_EQ(a.excl_seconds, st.sim_seconds) << name;  // exact, by design
  }
}

TEST(Report, ProfileCountersMatchHandComputedWork) {
  // A known launch sequence with hand-computed flops/bytes, checked
  // through both the device profile and the trace aggregation.
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  for (int i = 0; i < 3; ++i)
    dev.launch(dev.stream(), {"hand", 4, 0}, [](BlockCtx& c) {
      c.record(1000, 300);
      c.record(500, 0);  // record() accumulates within a block
    });
  dev.synchronize_all();
  dev.set_tracer(nullptr);

  // 3 launches x 4 blocks x (1000 + 500) flops, x 300 bytes.
  const KernelStats& st = dev.profile().at("hand");
  EXPECT_EQ(st.launches, 3);
  EXPECT_EQ(st.blocks, 12);
  EXPECT_DOUBLE_EQ(st.flops, 18000.0);
  EXPECT_DOUBLE_EQ(st.bytes, 3600.0);
  EXPECT_DOUBLE_EQ(dev.total_flops(), 18000.0);
  // Copy: aggregate_by_kernel returns by value, a reference would dangle.
  const Agg a = aggregate_by_kernel(t).at("hand");
  EXPECT_DOUBLE_EQ(a.flops, 18000.0);
  EXPECT_DOUBLE_EQ(a.bytes, 3600.0);
}

TEST(Report, ExclSecondsInScopeCountsDescendantsOnce) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  run_program(dev);
  dev.set_tracer(nullptr);

  double total_excl = 0;
  for (const auto& r : t.launches()) total_excl += r.excl_seconds;
  // "outer" encloses all three launches; the leaves partition two of them.
  EXPECT_DOUBLE_EQ(excl_seconds_in_scope(t, "outer"), total_excl);
  const double produce = excl_seconds_in_scope(t, "produce");
  const double consume = excl_seconds_in_scope(t, "consume");
  EXPECT_GT(produce, 0.0);
  EXPECT_GT(consume, 0.0);
  EXPECT_LT(produce + consume, total_excl);
  EXPECT_EQ(excl_seconds_in_scope(t, "no_such_scope"), 0.0);
}

TEST(Report, AggregateKeysOnInnermostScope) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  run_program(dev);
  // One launch outside any scope lands under scope id -1.
  dev.launch(dev.stream(), {"unscoped", 1, 0},
             [](BlockCtx& c) { c.record(10, 0); });
  dev.synchronize_all();
  dev.set_tracer(nullptr);

  std::set<std::string> paths;
  bool saw_unscoped = false;
  for (const auto& [key, agg] : aggregate(t)) {
    EXPECT_GT(agg.launches, 0);
    if (key.first < 0) saw_unscoped = true;
    paths.insert(t.scope_path(key.first));
  }
  EXPECT_TRUE(saw_unscoped);
  EXPECT_TRUE(paths.count("outer/produce"));
  EXPECT_TRUE(paths.count("outer/consume"));
  EXPECT_TRUE(paths.count("outer"));
}

// ---------------------------------------------------------------------------
// Exporters: chrome trace + summary, validated by parsing them back
// ---------------------------------------------------------------------------

TEST(ChromeTrace, WritesValidEventStream) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  run_program(dev);
  dev.set_tracer(nullptr);

  const std::string path = tmp_path("chrome");
  write_chrome_trace(path, t, dev.model());
  const std::vector<ChromeEvent> events = read_chrome_trace(path);
  ASSERT_FALSE(events.empty());

  // B/E pairs must match like parentheses per (pid, tid), with
  // non-decreasing timestamps along every duration track. Instants ("i")
  // are written in a separate pass, so they are exempt from the file-order
  // check (the format only requires B/E ordering per thread).
  std::map<std::pair<int, int>, std::vector<std::string>> open;
  std::map<std::pair<int, int>, double> last_ts;
  std::set<int> kernel_tids;
  int scope_spans = 0;
  for (const ChromeEvent& e : events) {
    if (e.ph == "M") continue;
    const auto track = std::make_pair(e.pid, e.tid);
    ASSERT_GE(e.ts, 0.0) << e.name;
    if (e.ph == "B" || e.ph == "E") {
      if (last_ts.count(track)) {
        EXPECT_GE(e.ts, last_ts[track]) << "track (" << e.pid << "," << e.tid
                                        << ") went backwards at " << e.name;
      }
      last_ts[track] = e.ts;
    }
    if (e.ph == "B") {
      open[track].push_back(e.name);
    } else if (e.ph == "E") {
      ASSERT_FALSE(open[track].empty()) << "unmatched E for " << e.name;
      EXPECT_EQ(open[track].back(), e.name);
      open[track].pop_back();
    } else if (e.ph == "X") {
      EXPECT_EQ(e.pid, 2);  // scope spans live on the scopes pid
      EXPECT_GE(e.dur, 0.0);
      ++scope_spans;
    }
    if (e.pid == 1 && (e.ph == "B" || e.ph == "E")) kernel_tids.insert(e.tid);
  }
  for (const auto& [track, stack] : open)
    EXPECT_TRUE(stack.empty()) << "unclosed B on track (" << track.first
                               << "," << track.second << ")";
  // One device track per stream used by the program (streams 0 and 1).
  EXPECT_EQ(kernel_tids, (std::set<int>{0, 1}));
  // outer / produce / consume all produce spans.
  EXPECT_GE(scope_spans, 3);
  std::remove(path.c_str());
}

TEST(ChromeTrace, KernelEventsCarryScopePaths) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  run_program(dev);
  dev.set_tracer(nullptr);

  const std::string path = tmp_path("scopes");
  write_chrome_trace(path, t, dev.model());
  std::set<std::string> kernel_scopes;
  for (const ChromeEvent& e : read_chrome_trace(path))
    if (e.pid == 1 && e.ph == "B") kernel_scopes.insert(e.arg_scope);
  EXPECT_TRUE(kernel_scopes.count("outer/produce"));
  EXPECT_TRUE(kernel_scopes.count("outer/consume"));
  EXPECT_TRUE(kernel_scopes.count("outer"));
  std::remove(path.c_str());
}

TEST(ChromeTrace, ReaderRejectsNonTraceJson) {
  const std::string path = tmp_path("badtrace");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"foo\": 1}", f);
  std::fclose(f);
  EXPECT_THROW(read_chrome_trace(path), Error);
  std::remove(path.c_str());
}

TEST(Summary, RoundTripsThroughReader) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  run_program(dev);
  dev.set_tracer(nullptr);

  const std::string path = tmp_path("summary");
  write_summary_json(path, t, dev.model());
  const std::vector<SummaryRow> rows = read_summary_json(path);
  ASSERT_FALSE(rows.empty());

  // The rows must reproduce the in-memory aggregation exactly.
  const auto agg = aggregate(t);
  ASSERT_EQ(rows.size(), agg.size());
  double rows_excl = 0, agg_excl = 0;
  long rows_launches = 0;
  for (const SummaryRow& r : rows) {
    EXPECT_FALSE(r.kernel.empty());
    rows_excl += r.excl_seconds;
    rows_launches += r.launches;
  }
  long agg_launches = 0;
  for (const auto& [key, a] : agg) {
    agg_excl += a.excl_seconds;
    agg_launches += a.launches;
  }
  EXPECT_EQ(rows_launches, agg_launches);
  EXPECT_NEAR(rows_excl, agg_excl, 1e-15 + 1e-12 * agg_excl);
  std::remove(path.c_str());
}

TEST(Summary, ReaderRejectsWrongSchema) {
  const std::string path = tmp_path("badschema");
  FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("{\"schema\": \"something-else\", \"rows\": []}", f);
  std::fclose(f);
  EXPECT_THROW(read_summary_json(path), Error);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Exporter edge cases: empty traces, capped traces, old schema versions
// ---------------------------------------------------------------------------

TEST(Exporters, EmptyTraceWritesParsableFiles) {
  // A device that never launched still produces well-formed artifacts:
  // the chrome trace parses (no events), the summary parses (no rows),
  // and the optional v3 objects are simply absent.
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  dev.set_tracer(nullptr);

  const std::string chrome = tmp_path("empty_chrome");
  const std::string summary = tmp_path("empty_summary");
  write_chrome_trace(chrome, t, dev.model());
  write_summary_json(summary, t, dev.model());

  EXPECT_NO_THROW(read_chrome_trace(chrome));
  EXPECT_TRUE(read_summary_json(summary).empty());
  EXPECT_FALSE(read_analysis_summary(summary).present);
  EXPECT_FALSE(read_histograms_summary(summary).present);
  std::remove(chrome.c_str());
  std::remove(summary.c_str());
}

TEST(Exporters, CappedTraceReportsInvalidAnalysisWithCaveat) {
  // Once the launch cap drops records the dependency DAG is incomplete;
  // the exported analysis must say so instead of publishing wrong
  // numbers.
  Device dev(DeviceModel::test_tiny());
  Tracer t(/*reserve_launches=*/2, /*max_launches=*/2);
  dev.set_tracer(&t);
  run_program(dev);
  dev.set_tracer(nullptr);
  ASSERT_GT(t.dropped_launches(), 0);

  const std::string path = tmp_path("capped_summary");
  write_summary_json(path, t, dev.model());
  const AnalysisSummary a = read_analysis_summary(path);
  ASSERT_TRUE(a.present);  // the object is written, flagged invalid
  EXPECT_FALSE(a.valid);
  EXPECT_NE(a.caveat.find("capped"), std::string::npos) << a.caveat;
  EXPECT_TRUE(a.kernels.empty());
  EXPECT_FALSE(a.streams.empty());  // utilization survives the cap
  std::remove(path.c_str());
}

TEST(Summary, ReaderAcceptsV1AndV2Files) {
  // Files written before the "memory" (v2) and "analysis"/"histograms"
  // (v3) objects existed must keep parsing, and the v3 object readers
  // must report absence rather than inventing data.
  const char* const docs[] = {
      "{\"schema\": \"irrlu-trace-summary-v1\", \"device\": \"old\",\n"
      " \"rows\": [{\"scope\": \"s\", \"kernel\": \"k\", \"launches\": 2,\n"
      "   \"blocks\": 8, \"flops\": 100.0, \"bytes\": 50.0,\n"
      "   \"sim_seconds\": 0.5, \"excl_seconds\": 0.25}]}",
      "{\"schema\": \"irrlu-trace-summary-v2\", \"device\": \"old\",\n"
      " \"memory\": {\"peak_bytes\": 0},\n"
      " \"rows\": [{\"scope\": \"s\", \"kernel\": \"k\", \"launches\": 2,\n"
      "   \"blocks\": 8, \"flops\": 100.0, \"bytes\": 50.0,\n"
      "   \"sim_seconds\": 0.5, \"excl_seconds\": 0.25}]}",
  };
  int version = 1;
  for (const char* doc : docs) {
    const std::string path =
        tmp_path("oldschema_v" + std::to_string(version++));
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(doc, f);
    std::fclose(f);

    const std::vector<SummaryRow> rows = read_summary_json(path);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].kernel, "k");
    EXPECT_EQ(rows[0].launches, 2);
    EXPECT_DOUBLE_EQ(rows[0].sim_seconds, 0.5);
    EXPECT_FALSE(read_analysis_summary(path).present);
    EXPECT_FALSE(read_histograms_summary(path).present);
    std::remove(path.c_str());
  }
}

TEST(Summary, V3RoundTripCarriesAnalysisAndHistograms) {
  Device dev(DeviceModel::test_tiny());
  Tracer t;
  dev.set_tracer(&t);
  run_program(dev);
  t.observe("phase.demo_s", 0.5);
  dev.set_tracer(nullptr);

  const std::string path = tmp_path("v3_roundtrip");
  write_summary_json(path, t, dev.model());
  EXPECT_FALSE(read_summary_json(path).empty());
  const AnalysisSummary a = read_analysis_summary(path);
  ASSERT_TRUE(a.present);
  EXPECT_TRUE(a.valid);
  EXPECT_GT(a.makespan, 0.0);
  EXPECT_FALSE(a.streams.empty());
  const HistogramsSummary h = read_histograms_summary(path);
  ASSERT_TRUE(h.present);
  ASSERT_EQ(h.rows.size(), 1u);
  EXPECT_EQ(h.rows[0].name, "phase.demo_s");
  EXPECT_EQ(h.rows[0].count, 1);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// TraceSession wiring
// ---------------------------------------------------------------------------

TEST(TraceSession, DisabledWithoutPathOrEnv) {
  // The test runner does not set IRRLU_TRACE; an empty path must leave the
  // device untraced.
  ASSERT_EQ(std::getenv("IRRLU_TRACE"), nullptr)
      << "IRRLU_TRACE set in the test environment; unset it to run tests";
  Device dev(DeviceModel::test_tiny());
  TraceSession session(dev);
  EXPECT_FALSE(session.enabled());
  EXPECT_EQ(dev.tracer(), nullptr);
}

TEST(TraceSession, WritesBothFilesAndDetachesOnDestruction) {
  const std::string path = tmp_path("session");
  Device dev(DeviceModel::test_tiny());
  {
    TraceSession session(dev, path);
    ASSERT_TRUE(session.enabled());
    EXPECT_EQ(dev.tracer(), session.tracer());
    run_program(dev);
    EXPECT_EQ(session.summary_path(),
              path.substr(0, path.size() - 5) + ".summary.json");
  }
  EXPECT_EQ(dev.tracer(), nullptr);  // dtor detached
  EXPECT_FALSE(read_chrome_trace(path).empty());
  const std::string summary = path.substr(0, path.size() - 5) +
                              ".summary.json";
  EXPECT_FALSE(read_summary_json(summary).empty());
  std::remove(path.c_str());
  std::remove(summary.c_str());
}
