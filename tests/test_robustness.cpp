// The numerical-robustness layer: small-pivot boosting in the panel
// kernels, per-front factorization diagnostics (FactorReport, condition
// estimate), adaptive iterative refinement with structured SolveReport,
// and the failure envelope — singular, near-singular, indefinite, and
// badly scaled systems must either converge to a tiny componentwise
// backward error or report a structured non-converged/failed status.
// Nothing may return NaN/Inf without a flag, on the host or the device
// solve path.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <tuple>
#include <vector>

#include <limits>
#include <memory>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "lapack/lapack.hpp"
#include "sparse/csr.hpp"
#include "sparse/solver.hpp"
#include "trace/trace.hpp"

using namespace irrlu::sparse;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;
namespace la = irrlu::la;

namespace {

std::vector<double> random_rhs(int n, unsigned seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1, 1);
  return b;
}

bool all_finite(const std::vector<double>& v) {
  for (double e : v)
    if (!std::isfinite(e)) return false;
  return true;
}

/// Dense all-ones matrix: structurally nonsingular everywhere (so MC64
/// keeps it), numerically rank 1, and — crucially for tests that need an
/// *exact* zero pivot — elimination is exact in binary arithmetic
/// (multipliers are 1, updates are 1 - 1 = 0).
CsrMatrix all_ones(int n) {
  std::vector<std::tuple<int, int, double>> t;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) t.emplace_back(i, j, 1.0);
  return CsrMatrix::from_triplets(n, t);
}

/// Smallest eigenvalue of laplacian2d(k, k): 4 - 4 cos(pi / (k + 1)).
double lap2d_lambda_min(int k) {
  return 4.0 - 4.0 * std::cos(M_PI / (k + 1));
}

}  // namespace

// ------------------------------------------------- boosted getf2 primitive

TEST(BoostedGetf2, ThresholdZeroIsBitIdenticalToPlain) {
  Rng rng(11);
  const int m = 8, n = 6;
  std::vector<double> a(static_cast<std::size_t>(m) * n);
  for (auto& v : a) v = rng.uniform(-1, 1);
  std::vector<double> b = a;
  std::vector<int> pa(static_cast<std::size_t>(n)), pb(pa);
  const int ia = la::getf2(m, n, a.data(), m, pa.data());
  int boosted = 0;
  const int ib = la::getf2(m, n, b.data(), m, pb.data(), 0.0, &boosted);
  EXPECT_EQ(ia, ib);
  EXPECT_EQ(boosted, 0);
  EXPECT_EQ(pa, pb);
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << "entry " << i;  // bitwise, not approximately
}

TEST(BoostedGetf2, ReplacesZeroPivotsAndKeepsInfo) {
  // Rank-1 all-ones: the first elimination zeroes the entire trailing
  // block exactly, so columns 1..3 all hit exact-zero pivots.
  const int n = 4;
  std::vector<double> a(static_cast<std::size_t>(n) * n, 1.0);
  std::vector<int> piv(static_cast<std::size_t>(n));
  int boosted = 0;
  const int info = la::getf2(n, n, a.data(), n, piv.data(), 1e-8, &boosted);
  EXPECT_EQ(info, 2);  // LAPACK meaning survives boosting
  EXPECT_EQ(boosted, 3);
  for (double v : a) EXPECT_TRUE(std::isfinite(v));
  // The boosted diagonal carries the threshold magnitude.
  EXPECT_NEAR(std::abs(a[1 * n + 1]), 1e-8, 1e-20);
}

TEST(BoostedGetf2, SmallButNonzeroPivotBoostKeepsSign) {
  EXPECT_DOUBLE_EQ(la::boosted_pivot(-1e-30, 1e-8), -1e-8);
  EXPECT_DOUBLE_EQ(la::boosted_pivot(1e-30, 1e-8), 1e-8);
  EXPECT_DOUBLE_EQ(la::boosted_pivot(0.0, 1e-8), 1e-8);
}

// ------------------------------------------------------- factor diagnostics

TEST(FactorReport, CleanOnWellConditionedMatrix) {
  const CsrMatrix a = laplacian2d(12, 12);
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  const FactorReport& rep = solver.numeric().report();
  EXPECT_EQ(rep.fronts,
            static_cast<int>(solver.symbolic().fronts.size()));
  EXPECT_EQ(rep.boosted_pivots, 0);
  EXPECT_EQ(rep.zero_pivot_fronts, 0);
  EXPECT_GT(rep.pivot_growth, 0.0);   // diagnostics actually ran
  EXPECT_LT(rep.pivot_growth, 1e3);   // diagonally dominant: tiny growth
  EXPECT_TRUE(solver.numeric().numerically_ok());
}

TEST(FactorReport, CountsBoostedPivotsOnSingularBlock) {
  // Block-diagonal: one rank-1 (singular) block among healthy blocks —
  // the batched factorization must contain the damage to that front.
  std::vector<std::tuple<int, int, double>> t;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) t.emplace_back(i, j, 1.0);  // singular
  for (int blk = 0; blk < 3; ++blk) {
    const int o = 2 + 2 * blk;  // healthy 2x2 blocks
    t.emplace_back(o, o, 4.0);
    t.emplace_back(o, o + 1, -1.0);
    t.emplace_back(o + 1, o, -1.0);
    t.emplace_back(o + 1, o + 1, 4.0);
  }
  const CsrMatrix a = CsrMatrix::from_triplets(8, t);
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.use_mc64 = false;  // keep the exact-zero pivot exact
  SparseDirectSolver solver(opts);
  solver.analyze(a);
  solver.factor(dev);
  const FactorReport& rep = solver.numeric().report();
  EXPECT_GE(rep.boosted_pivots, 1);
  EXPECT_EQ(rep.zero_pivot_fronts, 1);
  EXPECT_FALSE(solver.numeric().numerically_ok());

  // One bad front never poisons its siblings: the healthy blocks of the
  // (finite) solution still satisfy their equations.
  const auto b = random_rhs(8, 17);
  const SolveReport srep = solver.solve_report(b);
  EXPECT_NE(srep.status, SolveStatus::kFailed);
  ASSERT_TRUE(all_finite(srep.x));
  std::vector<double> r(8);
  a.multiply(srep.x.data(), r.data());
  for (int i = 2; i < 8; ++i)  // healthy rows only
    EXPECT_NEAR(r[static_cast<std::size_t>(i)],
                b[static_cast<std::size_t>(i)], 1e-8)
        << "healthy row " << i;
}

TEST(FactorReport, ColumnwisePanelPathAlsoBoosts) {
  std::vector<std::tuple<int, int, double>> t;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) t.emplace_back(i, j, 2.0);  // rank 1
  const CsrMatrix a = CsrMatrix::from_triplets(3, t);
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.use_mc64 = false;
  opts.factor.lu.force_columnwise_panel = true;
  SparseDirectSolver solver(opts);
  solver.analyze(a);
  solver.factor(dev);
  EXPECT_GE(solver.numeric().report().boosted_pivots, 1);
  EXPECT_FALSE(solver.numeric().numerically_ok());
  EXPECT_GE(dev.profile().count("irr_scal"), 1u);  // really columnwise
}

TEST(FactorReport, CondestTracksTrueInverseNorm) {
  const int k = 6, n = k * k;
  const CsrMatrix a = laplacian2d(k, k);
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.use_mc64 = false;  // A_prep is then just a symmetric permutation
  SparseDirectSolver solver(opts);
  solver.analyze(a);
  solver.factor(dev);

  // Exact ||A^{-1}||_1 by solving against every unit vector (1-norms are
  // invariant under the symmetric permutation analyze() applies).
  double exact = 0;
  for (int j = 0; j < n; ++j) {
    std::vector<double> e(static_cast<std::size_t>(n), 0.0);
    e[static_cast<std::size_t>(j)] = 1.0;
    const auto col = solver.solve(e);
    double s = 0;
    for (double v : col) s += std::abs(v);
    exact = std::max(exact, s);
  }
  const double exact_cond = a.norm_1() * exact;
  const double est = solver.numeric().condest_1();
  EXPECT_LE(est, exact_cond * (1 + 1e-10));  // Hager never overestimates
  EXPECT_GE(est, exact_cond * 0.3);          // ...and is a sharp bound here
  EXPECT_EQ(est, solver.numeric().condest_1());  // cached
}

TEST(FactorReport, CondestGrowsWithIllConditioning) {
  const int k = 8;
  Device dev1(DeviceModel::a100()), dev2(DeviceModel::a100());
  SparseDirectSolver well, ill;
  well.analyze(laplacian2d(k, k));
  well.factor(dev1);
  ill.analyze(laplacian2d(k, k, 1e-8 - lap2d_lambda_min(k)));
  ill.factor(dev2);
  EXPECT_LT(well.numeric().condest_1(), 1e4);
  EXPECT_GT(ill.numeric().condest_1(), 1e6);
}

TEST(FactorReport, SolveTransposeIsAdjointOfSolve) {
  const CsrMatrix a = laplacian2d(7, 9, -1.3);
  const int n = a.rows();
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  // <u, M v> == <M^T u, v> for the factored operator M = A_prep^{-1}.
  std::vector<double> u = random_rhs(n, 5), v = random_rhs(n, 6);
  std::vector<double> mv = v, mtu = u;
  solver.numeric().solve(mv);
  solver.numeric().solve_transpose(mtu);
  double lhs = 0, rhs = 0, scale = 0;
  for (int i = 0; i < n; ++i) {
    lhs += u[static_cast<std::size_t>(i)] * mv[static_cast<std::size_t>(i)];
    rhs += mtu[static_cast<std::size_t>(i)] * v[static_cast<std::size_t>(i)];
    scale += std::abs(u[static_cast<std::size_t>(i)] *
                      mv[static_cast<std::size_t>(i)]);
  }
  EXPECT_NEAR(lhs, rhs, 1e-10 * std::max(1.0, scale));
}

// ------------------------------------------------------ solver regressions

TEST(SolverRegression, SolveFailsFastOnUnrecoveredZeroPivot) {
  // The historical silent-garbage path: numerically singular factor,
  // recovery disabled, old solve() returned NaN without complaint.
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  opts.use_mc64 = false;
  opts.factor.pivot_tau = 0.0;  // no small-pivot recovery
  SparseDirectSolver solver(opts);
  solver.analyze(all_ones(6));
  solver.factor(dev);
  EXPECT_FALSE(solver.numeric().numerically_ok());

  const auto b = random_rhs(6, 23);
  const SolveReport rep = solver.solve_report(b);
  EXPECT_EQ(rep.status, SolveStatus::kFailed);
  EXPECT_FALSE(std::isfinite(rep.berr));
  EXPECT_THROW(solver.solve(b), irrlu::Error);
}

TEST(SolverRegression, Mc64FallbackDoesNotMutateOptions) {
  // A structurally singular matrix (zero values on row 1) makes MC64 fall
  // back; a later analyze() of a healthy matrix through the same solver
  // must still apply MC64 — the old code permanently flipped use_mc64.
  const CsrMatrix bad = CsrMatrix::from_triplets(
      3, {{0, 0, 1.0}, {1, 1, 0.0}, {1, 0, 0.0}, {2, 2, 2.0}});
  Device dev(DeviceModel::a100());  // outlives the solver's device buffers
  SparseDirectSolver solver;        // use_mc64 = true
  solver.analyze(bad);
  EXPECT_FALSE(solver.mc64_active());

  // Badly row-scaled healthy matrix: only detectable as "MC64 really ran"
  // because the unscaled path would still solve it — check the flag.
  solver.analyze(laplacian2d(5, 5));
  EXPECT_TRUE(solver.mc64_active());
  solver.factor(dev);
  const auto b = random_rhs(25, 31);
  const SolveReport rep = solver.solve_report(b);
  EXPECT_EQ(rep.status, SolveStatus::kConverged);
}

TEST(SolverRegression, ResidualVariantsAgreeOnContract) {
  const CsrMatrix a = laplacian2d(6, 6, -0.7);
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  const auto b = random_rhs(a.rows(), 41);
  const auto x = solver.solve(b);
  // Both small for a good solution; the componentwise one is the stricter
  // bound (per-row denominators never exceed the normwise one here).
  EXPECT_LT(solver.residual(x, b), 1e-12);
  EXPECT_LT(solver.residual_componentwise(x, b), 1e-12);
  EXPECT_LE(solver.residual_componentwise(x, b), 1.0);  // Oettli–Prager cap
  // And the componentwise variant certifies garbage as non-finite.
  std::vector<double> nan_x(x.size(),
                            std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(std::isfinite(solver.residual_componentwise(nan_x, b)));
}

TEST(SolverRegression, ReportHistoryIsConsistent) {
  const CsrMatrix a = laplacian3d(4, 4, 4, -2.1);
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(a);
  solver.factor(dev);
  const auto b = random_rhs(a.rows(), 57);
  const SolveReport rep = solver.solve_report(b);
  EXPECT_EQ(rep.status, SolveStatus::kConverged);
  EXPECT_TRUE(rep.ok());
  ASSERT_GE(rep.berr_history.size(), 1u);
  EXPECT_EQ(static_cast<int>(rep.berr_history.size()), rep.refine_steps + 1);
  // The returned berr is the best the loop saw.
  double best = rep.berr_history[0];
  for (double e : rep.berr_history) best = std::min(best, e);
  EXPECT_DOUBLE_EQ(rep.berr, best);
  EXPECT_LE(rep.berr, 1e-12);
}

TEST(SolverRegression, TraceCountersCarryRobustnessDiagnostics) {
  Device dev(DeviceModel::a100());
  irrlu::trace::Tracer tracer;
  dev.set_tracer(&tracer);
  SolverOptions opts;
  opts.use_mc64 = false;
  SparseDirectSolver solver(opts);
  solver.analyze(all_ones(5));
  solver.factor(dev);
  dev.set_tracer(nullptr);
  const auto& c = tracer.counters();
  ASSERT_TRUE(c.count("factor.boosted_pivots"));
  ASSERT_TRUE(c.count("factor.zero_pivot_fronts"));
  ASSERT_TRUE(c.count("factor.pivot_growth_max"));
  EXPECT_GE(c.at("factor.boosted_pivots"), 1.0);
  EXPECT_GE(c.at("factor.zero_pivot_fronts"), 1.0);
}

// ----------------------------------------------------- the failure envelope

/// Parameterized over the solve path: host reference sweep vs the
/// level-batched device kernels (solve_batched) — the device path must
/// honor the exact same no-silent-garbage contract.
class RobustnessEnvelope : public ::testing::TestWithParam<bool> {
 protected:
  /// The acceptance-criteria contract: either converged to a tiny
  /// componentwise backward error, or a structured degraded/failed status;
  /// a non-failed report implies a finite solution.
  void check_contract(const SparseDirectSolver& solver,
                      const SolveReport& rep, const char* what) {
    switch (rep.status) {
      case SolveStatus::kConverged:
        EXPECT_TRUE(all_finite(rep.x)) << what;
        EXPECT_LE(rep.berr, 1e-12) << what;
        break;
      case SolveStatus::kDegraded:
        EXPECT_TRUE(all_finite(rep.x)) << what;
        EXPECT_TRUE(std::isfinite(rep.berr)) << what;
        EXPECT_LE(rep.berr, 1.0) << what;  // finite x => berr <= 1
        break;
      case SolveStatus::kFailed:
        // Structured failure — but it must be *reported*, and the factor
        // must have flagged trouble when recovery was off.
        EXPECT_FALSE(std::isfinite(rep.berr)) << what;
        break;
    }
    (void)solver;
  }

  SolveReport run(const CsrMatrix& a, const SolverOptions& base) {
    solver_.reset();  // the factor references dev_ — drop it first
    dev_ = std::make_unique<Device>(DeviceModel::a100());
    SolverOptions opts = base;
    opts.solve_on_device = GetParam();
    solver_ = std::make_unique<SparseDirectSolver>(opts);
    solver_->analyze(a);
    solver_->factor(*dev_);
    return solver_->solve_report(random_rhs(a.rows(), 4242));
  }

  // dev_ declared before solver_: the factor holds a Device& and must be
  // destroyed first.
  std::unique_ptr<Device> dev_;
  std::unique_ptr<SparseDirectSolver> solver_;
};

TEST_P(RobustnessEnvelope, SingularMatrixIsRecoveredOrFlagged) {
  // Boosting on (default): finite, degraded. Boosting off: clean failure.
  for (double tau : {1e-10, 0.0}) {
    SolverOptions opts;
    opts.use_mc64 = false;
    opts.factor.pivot_tau = tau;
    const SolveReport rep = run(all_ones(6), opts);
    check_contract(*solver_, rep, tau > 0 ? "boosted" : "unboosted");
    if (tau > 0) {
      EXPECT_NE(rep.status, SolveStatus::kFailed);
      EXPECT_GE(solver_->numeric().report().boosted_pivots, 1);
    } else {
      EXPECT_EQ(rep.status, SolveStatus::kFailed);
    }
    EXPECT_FALSE(solver_->numeric().numerically_ok());
  }
}

TEST_P(RobustnessEnvelope, IllConditioningSweepNeverReturnsGarbage) {
  // Shift the 2D Laplacian so its smallest eigenvalue is delta: condition
  // number ~ lambda_max / delta sweeps 1e2 .. 1e16.
  const int k = 10;
  const double lmin = lap2d_lambda_min(k);
  int converged = 0, cases = 0;
  for (double delta : {1e-1, 1e-3, 1e-5, 1e-7, 1e-9, 1e-11, 1e-13, 1e-15}) {
    const CsrMatrix a = laplacian2d(k, k, delta - lmin);
    const SolveReport rep = run(a, SolverOptions{});
    char what[64];
    std::snprintf(what, sizeof what, "delta=%g", delta);
    check_contract(*solver_, rep, what);
    EXPECT_NE(rep.status, SolveStatus::kFailed) << what;
    ++cases;
    converged += rep.status == SolveStatus::kConverged;
  }
  // Refinement recovers full accuracy on most of the sweep; at minimum the
  // moderately conditioned half must converge outright.
  EXPECT_GE(converged, cases / 2);
}

TEST_P(RobustnessEnvelope, IndefiniteSystemConverges) {
  // Interior shift: indefinite (Helmholtz-like), far from any eigenvalue.
  const SolveReport rep = run(laplacian3d(5, 5, 5, -2.17), SolverOptions{});
  EXPECT_EQ(rep.status, SolveStatus::kConverged);
  EXPECT_LE(rep.berr, 1e-12);
}

TEST_P(RobustnessEnvelope, BadlyScaledSystemConverges) {
  // Rows and columns scaled over 16 orders of magnitude; MC64
  // equilibration plus refinement must still deliver full accuracy.
  const int k = 7, n = k * k;
  const CsrMatrix base = laplacian2d(k, k, -1.1);
  std::vector<double> d(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    d[static_cast<std::size_t>(i)] = std::pow(10.0, (i % 17) - 8);
  const CsrMatrix a = base.scaled(d, d);
  const SolveReport rep = run(a, SolverOptions{});
  check_contract(*solver_, rep, "badly scaled");
  EXPECT_EQ(rep.status, SolveStatus::kConverged);
}

INSTANTIATE_TEST_SUITE_P(HostAndDevicePaths, RobustnessEnvelope,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "DeviceSolve" : "HostSolve";
                         });
