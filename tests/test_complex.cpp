// Complex-arithmetic (Z) instantiation of the dense and irregular-batch
// layers — the paper states the target systems are A in C^{N x N}; this
// suite verifies the kernels are correct over std::complex<double>.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/blas.hpp"
#include "lapack/lapack.hpp"

namespace la = irrlu::la;
using namespace irrlu::batch;
using cplx = std::complex<double>;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;

namespace {

void fill_complex(irrlu::MatrixView<cplx> a, Rng& rng) {
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i)
      a(i, j) = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
}

double residual_zgesv(irrlu::ConstMatrixView<cplx> a0, const cplx* x,
                      const cplx* b) {
  double rmax = 0, bmax = 0;
  for (int i = 0; i < a0.rows(); ++i) {
    cplx acc = 0;
    for (int j = 0; j < a0.cols(); ++j) acc += a0(i, j) * x[j];
    rmax = std::max(rmax, std::abs(b[i] - acc));
    bmax = std::max(bmax, std::abs(b[i]));
  }
  return bmax > 0 ? rmax / bmax : rmax;
}

}  // namespace

TEST(ComplexBlas, GemmAgainstNaive) {
  Rng rng(311);
  const int n = 23;
  irrlu::Matrix<cplx> a(n, n), b(n, n), c(n, n), cref(n, n);
  fill_complex(a.view(), rng);
  fill_complex(b.view(), rng);
  fill_complex(c.view(), rng);
  cref = c;
  const cplx alpha(1.2, -0.4), beta(0.3, 0.8);
  la::gemm(la::Trans::No, la::Trans::No, n, n, n, alpha, a.data(), n,
           b.data(), n, beta, c.data(), n);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < n; ++i) {
      cplx acc = 0;
      for (int p = 0; p < n; ++p) acc += a(i, p) * b(p, j);
      const cplx expect = alpha * acc + beta * cref(i, j);
      EXPECT_LT(std::abs(c(i, j) - expect), 1e-12);
    }
}

TEST(ComplexLapack, GetrfSolves) {
  Rng rng(313);
  const int n = 40;
  irrlu::Matrix<cplx> a(n, n), a0(n, n);
  fill_complex(a.view(), rng);
  a0 = a;
  std::vector<int> ipiv(static_cast<std::size_t>(n));
  ASSERT_EQ(la::getrf(n, n, a.data(), n, ipiv.data()), 0);
  std::vector<cplx> b(static_cast<std::size_t>(n)), x;
  for (auto& v : b) v = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
  x = b;
  la::getrs(la::Trans::No, n, 1, a.data(), n, ipiv.data(), x.data(), n);
  EXPECT_LT(residual_zgesv(a0.view(), x.data(), b.data()), 1e-10);
}

TEST(ComplexIrrLu, FactorsAndSolvesIrregularBatch) {
  Device dev(DeviceModel::a100());
  Rng rng(317);
  const int bs = 15;
  auto n = rng.uniform_sizes(bs, 1, 70);
  VBatch<cplx> A(dev, n), A0(dev, n);
  for (int i = 0; i < bs; ++i) fill_complex(A.view(i), rng);
  A0.copy_from(A);
  PivotBatch piv(dev, n, n);
  irr_getrf<cplx>(dev, dev.stream(), 70, 70, A.ptrs(), A.lda(), 0, 0,
                  A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs);
  dev.synchronize_all();
  for (int i = 0; i < bs; ++i) {
    EXPECT_EQ(piv.info()[i], 0);
    const int ni = n[static_cast<std::size_t>(i)];
    std::vector<cplx> b(static_cast<std::size_t>(ni)), x;
    for (auto& v : b) v = cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
    x = b;
    la::getrs(la::Trans::No, ni, 1, A.view(i).data(), ni, piv.ipiv_of(i),
              x.data(), ni);
    EXPECT_LT(residual_zgesv(A0.view(i), x.data(), b.data()), 1e-8)
        << "matrix " << i << " n=" << ni;
  }
}

TEST(ComplexIrrLu, BatchedGetrsMatchesPerMatrix) {
  Device dev(DeviceModel::a100());
  Rng rng(331);
  const int bs = 8;
  auto n = rng.uniform_sizes(bs, 1, 50);
  std::vector<int> rhs(static_cast<std::size_t>(bs), 3);
  VBatch<cplx> A(dev, n), A0(dev, n);
  for (int i = 0; i < bs; ++i) fill_complex(A.view(i), rng);
  A0.copy_from(A);
  PivotBatch piv(dev, n, n);
  irr_getrf<cplx>(dev, dev.stream(), 50, 50, A.ptrs(), A.lda(), 0, 0,
                  A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs);
  VBatch<cplx> B(dev, n, rhs), B0(dev, n, rhs);
  for (int i = 0; i < bs; ++i) fill_complex(B.view(i), rng);
  B0.copy_from(B);
  irr_getrs<cplx>(dev, dev.stream(), la::Trans::No, 50, 3,
                  const_cast<cplx const* const*>(A.ptrs()), A.lda(),
                  A.n_vec(), const_cast<int const* const*>(piv.ptrs()),
                  B.ptrs(), B.lda(), B.n_vec(), bs);
  dev.synchronize_all();
  for (int i = 0; i < bs; ++i)
    for (int c = 0; c < 3; ++c) {
      std::vector<cplx> x(static_cast<std::size_t>(n[static_cast<std::size_t>(i)])),
          b(x.size());
      for (std::size_t r = 0; r < x.size(); ++r) {
        x[r] = B.view(i)(static_cast<int>(r), c);
        b[r] = B0.view(i)(static_cast<int>(r), c);
      }
      EXPECT_LT(residual_zgesv(A0.view(i), x.data(), b.data()), 1e-8)
          << "matrix " << i << " rhs " << c;
    }
}

TEST(ComplexIrrTrsm, RecursiveSolve) {
  Device dev(DeviceModel::a100());
  Rng rng(337);
  const int bs = 10;
  auto tri = rng.uniform_sizes(bs, 1, 80);
  std::vector<int> rhs(static_cast<std::size_t>(bs), 6);
  VBatch<cplx> T(dev, tri, tri), B(dev, tri, rhs), B0(dev, tri, rhs);
  for (int i = 0; i < bs; ++i) {
    fill_complex(T.view(i), rng);
    for (int d = 0; d < tri[static_cast<std::size_t>(i)]; ++d)
      T.view(i)(d, d) += cplx(4.0, 1.0);
    fill_complex(B.view(i), rng);
  }
  B0.copy_from(B);
  irr_trsm<cplx>(dev, dev.stream(), la::Side::Left, la::Uplo::Lower,
                 la::Trans::No, la::Diag::NonUnit, 80, 6, cplx(1.0),
                 T.ptrs(), T.lda(), 0, 0, B.ptrs(), B.lda(), 0, 0,
                 B.m_vec(), B.n_vec(), bs);
  dev.synchronize_all();
  for (int i = 0; i < bs; ++i) {
    const int ni = tri[static_cast<std::size_t>(i)];
    for (int c = 0; c < 6; ++c) {
      double rmax = 0, bmax = 0;
      for (int r = 0; r < ni; ++r) {
        cplx acc = 0;
        for (int k = 0; k <= r; ++k) acc += T.view(i)(r, k) * B.view(i)(k, c);
        rmax = std::max(rmax, std::abs(acc - B0.view(i)(r, c)));
        bmax = std::max(bmax, std::abs(B0.view(i)(r, c)));
      }
      EXPECT_LT(rmax / (bmax + 1e-300), 1e-10) << "matrix " << i;
    }
  }
}
