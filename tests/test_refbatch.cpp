// Tests for the baseline implementations: the streamed per-matrix solver,
// the CPU batched LU, and the inversion-based TRSM. Each baseline must be
// numerically correct (they are comparison points, not strawmen) while
// exhibiting the structural costs the paper attributes to them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/lapack.hpp"
#include "lapack/verify.hpp"
#include "refbatch/cpu_batch.hpp"
#include "refbatch/inv_trsm.hpp"
#include "refbatch/streamed_solver.hpp"

namespace la = irrlu::la;
using namespace irrlu::batch;
using namespace irrlu::refbatch;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;

TEST(StreamedSolver, FactorsIrregularBatch) {
  Device dev(DeviceModel::a100());
  Rng rng(101);
  const int bs = 20;
  auto n = rng.uniform_sizes(bs, 1, 80);
  VBatch<double> A(dev, n), A0(dev, n);
  A.fill_uniform(rng);
  A0.copy_from(A);
  PivotBatch piv(dev, n, n);
  StreamedOptions opts;
  opts.num_streams = 4;
  streamed_getrf<double>(dev, n, n, A.ptrs(), A.lda(), piv.ptrs(),
                         piv.info(), opts);
  for (int i = 0; i < bs; ++i) {
    EXPECT_EQ(piv.info()[i], 0);
    EXPECT_LT(la::lu_residual(A.view(i), piv.ipiv_of(i), A0.view(i)), 60.0);
  }
}

TEST(StreamedSolver, LargeMatrixViaGlobalPanel) {
  // Heights beyond the fused-panel shared-memory reach exercise the
  // in-place panel path.
  Device dev(DeviceModel::mi100());  // 64 KB LDS: global panel from ~256
  Rng rng(103);
  std::vector<int> n = {500};
  VBatch<double> A(dev, n), A0(dev, n);
  A.fill_uniform(rng);
  A0.copy_from(A);
  PivotBatch piv(dev, n, n);
  streamed_getrf<double>(dev, n, n, A.ptrs(), A.lda(), piv.ptrs(),
                         piv.info());
  EXPECT_LT(la::lu_residual(A.view(0), piv.ipiv_of(0), A0.view(0)), 200.0);
}

TEST(StreamedSolver, ManySmallMatricesPayDispatchOverhead) {
  // The Fig-10 effect: launch count scales with the batch, so simulated
  // time is dominated by dispatch for tiny matrices.
  Device dev(DeviceModel::a100());
  Rng rng(107);
  const int bs = 200;
  auto n = rng.uniform_sizes(bs, 1, 16);
  VBatch<double> A(dev, n);
  A.fill_uniform(rng);
  PivotBatch piv(dev, n, n);
  streamed_getrf<double>(dev, n, n, A.ptrs(), A.lda(), piv.ptrs(),
                         piv.info());
  const double t = dev.host_time();
  EXPECT_GE(dev.launch_count(), 2 * bs);  // >= panel + laswp per matrix
  EXPECT_GE(t, bs * dev.model().host_dispatch_overhead);
}

TEST(CpuBatchLu, FactorsBatchOnCpuModel) {
  Device cpu(DeviceModel::xeon6140x2());
  Rng rng(109);
  const int bs = 40;
  auto m = rng.uniform_sizes(bs, 1, 70);
  auto n = rng.uniform_sizes(bs, 1, 70);
  VBatch<double> A(cpu, m, n), A0(cpu, m, n);
  A.fill_uniform(rng);
  A0.copy_from(A);
  PivotBatch piv(cpu, m, n);
  cpu_getrf_batch<double>(cpu, cpu.stream(), A.ptrs(), A.lda(), A.m_vec(),
                          A.n_vec(), piv.ptrs(), piv.info(), bs);
  cpu.synchronize_all();
  EXPECT_EQ(cpu.launch_count(), 1);  // MKL-style single batched call
  for (int i = 0; i < bs; ++i)
    EXPECT_LT(la::lu_residual(A.view(i), piv.ipiv_of(i), A0.view(i)), 60.0);
}

class InvTrsmUplo : public ::testing::TestWithParam<la::Uplo> {};

TEST_P(InvTrsmUplo, SolvesCorrectly) {
  const la::Uplo uplo = GetParam();
  Device dev(DeviceModel::a100());
  Rng rng(113);
  const int bs = 16;
  auto tri = rng.uniform_sizes(bs, 1, 100);
  std::vector<int> rhs = rng.uniform_sizes(bs, 1, 20);
  VBatch<double> T(dev, tri, tri), B(dev, tri, rhs), B0(dev, tri, rhs);
  T.fill_uniform(rng);
  for (int i = 0; i < bs; ++i)
    for (int d = 0; d < tri[static_cast<std::size_t>(i)]; ++d)
      T.view(i)(d, d) += 4.0;
  B.fill_uniform(rng);
  B0.copy_from(B);
  inv_trsm<double>(dev, dev.stream(), uplo, la::Trans::No, la::Diag::NonUnit,
                   100, 20, T.ptrs(), T.lda(), B.ptrs(), B.lda(), B.m_vec(),
                   B.n_vec(), bs);
  double worst = 0;
  for (int i = 0; i < bs; ++i)
    worst = std::max(worst, la::trsm_backward_error(
                                uplo, la::Trans::No, la::Diag::NonUnit,
                                T.view(i), B.view(i), B0.view(i)));
  EXPECT_LT(worst, 1e-11);  // correct, though less accurate than irrTRSM
}

INSTANTIATE_TEST_SUITE_P(Uplos, InvTrsmUplo,
                         ::testing::Values(la::Uplo::Lower, la::Uplo::Upper));

TEST(InvTrsm, UnitDiagonal) {
  Device dev(DeviceModel::a100());
  Rng rng(127);
  std::vector<int> tri = {50}, rhs = {7};
  VBatch<double> T(dev, tri, tri), B(dev, tri, rhs), B0(dev, tri, rhs);
  T.fill_uniform(rng);
  B.fill_uniform(rng);
  B0.copy_from(B);
  inv_trsm<double>(dev, dev.stream(), la::Uplo::Lower, la::Trans::No,
                   la::Diag::Unit, 50, 7, T.ptrs(), T.lda(), B.ptrs(),
                   B.lda(), B.m_vec(), B.n_vec(), 1);
  EXPECT_LT(la::trsm_backward_error(la::Uplo::Lower, la::Trans::No,
                                    la::Diag::Unit, T.view(0), B.view(0),
                                    B0.view(0)),
            1e-11);
}

TEST(InvTrsm, LessAccurateThanIrrTrsmOnIllConditioned) {
  // The Figure-6 accuracy claim: explicit inversion amplifies error on
  // badly conditioned triangles; substitution (irrTRSM) does not.
  Device dev(DeviceModel::a100());
  Rng rng(131);
  const int bs = 30, mreq = 64, nreq = 8;
  std::vector<int> tri(bs, mreq), rhs(bs, nreq);
  VBatch<double> T(dev, tri, tri), B1(dev, tri, rhs), B2(dev, tri, rhs),
      B0(dev, tri, rhs);
  T.fill_uniform(rng);
  for (int i = 0; i < bs; ++i)
    for (int d = 0; d < mreq; ++d)
      T.view(i)(d, d) = 0.05 * (1.0 + rng.uniform());  // small pivots
  B0.fill_uniform(rng);
  B1.copy_from(B0);
  B2.copy_from(B0);

  inv_trsm<double>(dev, dev.stream(), la::Uplo::Lower, la::Trans::No,
                   la::Diag::NonUnit, mreq, nreq, T.ptrs(), T.lda(),
                   B1.ptrs(), B1.lda(), B1.m_vec(), B1.n_vec(), bs);
  irr_trsm<double>(dev, dev.stream(), la::Side::Left, la::Uplo::Lower,
                   la::Trans::No, la::Diag::NonUnit, mreq, nreq, 1.0,
                   T.ptrs(), T.lda(), 0, 0, B2.ptrs(), B2.lda(), 0, 0,
                   B2.m_vec(), B2.n_vec(), bs);
  dev.synchronize_all();

  double err_inv = 0, err_irr = 0;
  for (int i = 0; i < bs; ++i) {
    err_inv = std::max(err_inv, la::trsm_backward_error(
                                    la::Uplo::Lower, la::Trans::No,
                                    la::Diag::NonUnit, T.view(i), B1.view(i),
                                    B0.view(i)));
    err_irr = std::max(err_irr, la::trsm_backward_error(
                                    la::Uplo::Lower, la::Trans::No,
                                    la::Diag::NonUnit, T.view(i), B2.view(i),
                                    B0.view(i)));
  }
  EXPECT_GT(err_inv, err_irr);  // the paper's "slightly better accuracy"
}

TEST(InvTrsm, PaysWorkspaceAndCopyTraffic) {
  // The Figure-6 performance claim: at small sizes the copies and
  // workspace passes make the inversion-based solve slower than irrTRSM.
  Device dev(DeviceModel::a100());
  Rng rng(137);
  const int bs = 300;
  auto tri = rng.uniform_sizes(bs, 1, 32);
  std::vector<int> rhs(bs, 4);

  VBatch<double> T(dev, tri, tri), B(dev, tri, rhs);
  T.fill_uniform(rng);
  for (int i = 0; i < bs; ++i)
    for (int d = 0; d < tri[static_cast<std::size_t>(i)]; ++d)
      T.view(i)(d, d) += 4.0;
  B.fill_uniform(rng);

  dev.reset_timeline();
  inv_trsm<double>(dev, dev.stream(), la::Uplo::Lower, la::Trans::No,
                   la::Diag::NonUnit, 32, 4, T.ptrs(), T.lda(), B.ptrs(),
                   B.lda(), B.m_vec(), B.n_vec(), bs);
  const double t_inv = dev.synchronize_all();

  dev.reset_timeline();
  irr_trsm<double>(dev, dev.stream(), la::Side::Left, la::Uplo::Lower,
                   la::Trans::No, la::Diag::NonUnit, 32, 4, 1.0, T.ptrs(),
                   T.lda(), 0, 0, B.ptrs(), B.lda(), 0, 0, B.m_vec(),
                   B.n_vec(), bs);
  const double t_irr = dev.synchronize_all();

  EXPECT_GT(t_inv, 2.0 * t_irr);
}
