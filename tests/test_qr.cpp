// Tests for the Householder QR substrate and the irregular-batch QR
// (irr_geqrf) — the paper's future-work decomposition, built on the same
// interface + DCWI concepts as irrLU.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/matrix_view.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "irrblas/irr_kernels.hpp"
#include "irrblas/vbatch.hpp"
#include "lapack/blas.hpp"
#include "lapack/qr.hpp"
#include "lapack/verify.hpp"

namespace la = irrlu::la;
using namespace irrlu::batch;
using irrlu::Matrix;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;

namespace {

/// ||Q R - A0||_max / (||A0||_max * max(m,n) * eps), reconstructing Q R by
/// applying the stored reflectors to R.
double qr_residual(irrlu::ConstMatrixView<double> qr, const double* tau,
                   irrlu::ConstMatrixView<double> a0) {
  const int m = a0.rows(), n = a0.cols();
  const int k = std::min(m, n);
  // R: upper part of qr, m x n.
  Matrix<double> r(m, n, 0.0);
  for (int j = 0; j < n; ++j)
    for (int i = 0; i <= std::min(j, m - 1); ++i) r(i, j) = qr(i, j);
  // Q R = H_0 H_1 ... H_{k-1} R.
  std::vector<double> work(static_cast<std::size_t>(n));
  la::apply_q(la::Trans::No, m, n, k, qr.data(), qr.ld(), tau, r.data(),
              r.ld(), work.data());
  double diff = 0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i)
      diff = std::max(diff, std::abs(r(i, j) - a0(i, j)));
  const double denom = la::max_abs(a0) * std::max(1, std::max(m, n)) *
                       std::numeric_limits<double>::epsilon();
  return denom > 0 ? diff / denom : diff;
}

/// ||Q^T Q - I||_max via applying Q^T then Q to the identity.
double orthogonality(irrlu::ConstMatrixView<double> qr, const double* tau) {
  const int m = qr.rows();
  const int k = std::min(m, qr.cols());
  Matrix<double> e(m, m, 0.0);
  for (int i = 0; i < m; ++i) e(i, i) = 1.0;
  std::vector<double> work(static_cast<std::size_t>(m));
  la::apply_q(la::Trans::Yes, m, m, k, qr.data(), qr.ld(), tau, e.data(), m,
              work.data());
  la::apply_q(la::Trans::No, m, m, k, qr.data(), qr.ld(), tau, e.data(), m,
              work.data());
  double diff = 0;
  for (int j = 0; j < m; ++j)
    for (int i = 0; i < m; ++i)
      diff = std::max(diff, std::abs(e(i, j) - (i == j ? 1.0 : 0.0)));
  return diff;
}

}  // namespace

TEST(Larfg, AnnihilatesColumn) {
  std::vector<double> x = {3.0, 4.0, 0.0};
  double x0 = 0.0;  // alpha = 0, ||[0;3;4]|| = 5
  const double tau = la::larfg(3, &x0, x.data(), 1);
  EXPECT_GT(tau, 0.0);
  EXPECT_NEAR(std::abs(x0), 5.0, 1e-14);  // beta = -sign(alpha)*norm
}

TEST(Larfg, ZeroTailGivesZeroTau) {
  std::vector<double> x = {0.0, 0.0};
  double x0 = 7.0;
  EXPECT_EQ(la::larfg(3, &x0, x.data(), 1), 0.0);
  EXPECT_EQ(x0, 7.0);
}

TEST(Geqr2, FactorsAndStaysOrthogonal) {
  Rng rng(3);
  for (auto [m, n] : {std::pair{12, 12}, std::pair{20, 8}, std::pair{6, 15},
                      std::pair{1, 1}}) {
    Matrix<double> a(m, n), a0(m, n);
    rng.fill_uniform(a.view());
    a0 = a;
    std::vector<double> tau(static_cast<std::size_t>(std::min(m, n)));
    std::vector<double> work(static_cast<std::size_t>(n));
    la::geqr2(m, n, a.data(), m, tau.data(), work.data());
    EXPECT_LT(qr_residual(a.view(), tau.data(), a0.view()), 40.0)
        << m << "x" << n;
    EXPECT_LT(orthogonality(a.view(), tau.data()), 1e-13) << m << "x" << n;
  }
}

TEST(Larft, MatchesReflectorProduct) {
  // Verify I - V T V^T == H_0 H_1 ... H_{k-1} by applying both to random
  // vectors.
  Rng rng(7);
  const int m = 15, k = 5;
  Matrix<double> a(m, k), a0(m, k);
  rng.fill_uniform(a.view());
  a0 = a;
  std::vector<double> tau(k), work(static_cast<std::size_t>(k));
  la::geqr2(m, k, a.data(), m, tau.data(), work.data());
  Matrix<double> t(k, k, 0.0);
  la::larft(m, k, a.data(), m, tau.data(), t.data(), k);

  // Masked V with unit diagonal.
  Matrix<double> v(m, k, 0.0);
  for (int c = 0; c < k; ++c) {
    v(c, c) = 1.0;
    for (int r = c + 1; r < m; ++r) v(r, c) = a(r, c);
  }
  std::vector<double> x(static_cast<std::size_t>(m)), y1, y2;
  for (auto& e : x) e = rng.uniform(-1, 1);
  // y1 = (I - V T V^T) x.
  std::vector<double> w1(static_cast<std::size_t>(k), 0.0),
      w2(static_cast<std::size_t>(k), 0.0);
  y1 = x;
  la::gemv(la::Trans::Yes, m, k, 1.0, v.data(), m, x.data(), 1, 0.0,
           w1.data(), 1);
  for (int r = 0; r < k; ++r) {  // w2 = T w1 (T upper triangular dense-ok)
    double acc = 0;
    for (int c = r; c < k; ++c) acc += t(r, c) * w1[static_cast<std::size_t>(c)];
    w2[static_cast<std::size_t>(r)] = acc;
  }
  la::gemv(la::Trans::No, m, k, -1.0, v.data(), m, w2.data(), 1, 1.0,
           y1.data(), 1);
  // For forward columnwise LARFT: I - V T V^T == Q = H_0 H_1 ... H_{k-1}
  // (the transpose uses T^T, which is what irr_geqrf's update applies).
  y2 = x;
  Matrix<double> c(m, 1);
  for (int i = 0; i < m; ++i) c(i, 0) = x[static_cast<std::size_t>(i)];
  std::vector<double> wk(1);
  la::apply_q(la::Trans::No, m, 1, k, a.data(), m, tau.data(), c.data(), m,
              wk.data());
  for (int i = 0; i < m; ++i)
    EXPECT_NEAR(y1[static_cast<std::size_t>(i)], c(i, 0), 1e-12);
}

TEST(IrrGeqrf, FactorsIrregularBatch) {
  Device dev(DeviceModel::a100());
  Rng rng(11);
  const int bs = 25;
  auto m = rng.uniform_sizes(bs, 1, 90);
  auto n = rng.uniform_sizes(bs, 1, 90);
  VBatch<double> A(dev, m, n), A0(dev, m, n);
  A.fill_uniform(rng);
  A0.copy_from(A);
  TauBatch<double> tau(dev, m, n);
  irr_geqrf<double>(dev, dev.stream(), 90, 90, A.ptrs(), A.lda(), A.m_vec(),
                    A.n_vec(), tau.ptrs(), bs);
  dev.synchronize_all();
  for (int i = 0; i < bs; ++i) {
    EXPECT_LT(qr_residual(A.view(i), tau.tau_of(i), A0.view(i)), 60.0)
        << "matrix " << i << " " << m[static_cast<std::size_t>(i)] << "x"
        << n[static_cast<std::size_t>(i)];
    EXPECT_LT(orthogonality(A.view(i), tau.tau_of(i)), 1e-12)
        << "matrix " << i;
  }
}

TEST(IrrGeqrf, MatchesSingleMatrixReference) {
  Device dev(DeviceModel::a100());
  Rng rng(13);
  std::vector<int> m = {40, 7, 23}, n = {40, 7, 23};
  VBatch<double> A(dev, m, n), R(dev, m, n);
  A.fill_uniform(rng);
  R.copy_from(A);
  TauBatch<double> tau(dev, m, n);
  irr_geqrf<double>(dev, dev.stream(), 40, 40, A.ptrs(), A.lda(), A.m_vec(),
                    A.n_vec(), tau.ptrs(), 3, /*nb=*/8);
  dev.synchronize_all();
  for (int i = 0; i < 3; ++i) {
    const int mi = m[static_cast<std::size_t>(i)];
    std::vector<double> t(static_cast<std::size_t>(mi)),
        w(static_cast<std::size_t>(mi));
    la::geqr2(mi, mi, R.view(i).data(), mi, t.data(), w.data());
    // Same reflectors and R up to roundoff (identical pivot-free algebra,
    // different blocking => compare through the residual, and R's diagonal
    // magnitudes directly).
    for (int d = 0; d < mi; ++d)
      EXPECT_NEAR(std::abs(A.view(i)(d, d)), std::abs(R.view(i)(d, d)),
                  1e-9 * (1.0 + std::abs(R.view(i)(d, d))));
  }
}

TEST(IrrGeqrf, TallAndWideShapes) {
  Device dev(DeviceModel::a100());
  Rng rng(17);
  std::vector<int> m = {120, 5, 64, 1};
  std::vector<int> n = {10, 80, 64, 1};
  VBatch<double> A(dev, m, n), A0(dev, m, n);
  A.fill_uniform(rng);
  A0.copy_from(A);
  TauBatch<double> tau(dev, m, n);
  irr_geqrf<double>(dev, dev.stream(), 120, 80, A.ptrs(), A.lda(), A.m_vec(),
                    A.n_vec(), tau.ptrs(), 4, /*nb=*/16);
  dev.synchronize_all();
  for (int i = 0; i < 4; ++i)
    EXPECT_LT(qr_residual(A.view(i), tau.tau_of(i), A0.view(i)), 60.0)
        << "matrix " << i;
}

TEST(IrrGeqrf, GlobalPanelPathOnSmallSharedMemory) {
  // MI100's 64 KB LDS forces the global-memory panel for tall panels.
  Device dev(DeviceModel::mi100());
  Rng rng(19);
  std::vector<int> m = {600}, n = {64};
  VBatch<double> A(dev, m, n), A0(dev, m, n);
  A.fill_uniform(rng);
  A0.copy_from(A);
  TauBatch<double> tau(dev, m, n);
  irr_geqrf<double>(dev, dev.stream(), 600, 64, A.ptrs(), A.lda(), A.m_vec(),
                    A.n_vec(), tau.ptrs(), 1);
  dev.synchronize_all();
  EXPECT_LT(qr_residual(A.view(0), tau.tau_of(0), A0.view(0)), 100.0);
  // The profile must show the global-path kernel was used.
  EXPECT_GE(dev.profile().count("irr_geqr2_global"), 1u);
}

TEST(IrrGetrs, SolvesBatchAfterGetrf) {
  Device dev(DeviceModel::a100());
  Rng rng(23);
  const int bs = 20;
  auto n = rng.uniform_sizes(bs, 1, 70);
  auto rhs = rng.uniform_sizes(bs, 1, 10);
  VBatch<double> A(dev, n), A0(dev, n);
  A.fill_uniform(rng);
  A0.copy_from(A);
  PivotBatch piv(dev, n, n);
  irr_getrf<double>(dev, dev.stream(), 70, 70, A.ptrs(), A.lda(), 0, 0,
                    A.m_vec(), A.n_vec(), piv.ptrs(), piv.info(), bs);
  VBatch<double> B(dev, n, rhs), B0(dev, n, rhs);
  B.fill_uniform(rng);
  B0.copy_from(B);
  for (la::Trans tr : {la::Trans::No, la::Trans::Yes}) {
    B.copy_from(B0);
    irr_getrs<double>(dev, dev.stream(), tr, 70, 10,
                      const_cast<double const* const*>(A.ptrs()), A.lda(),
                      A.n_vec(),
                      const_cast<int const* const*>(piv.ptrs()), B.ptrs(),
                      B.lda(), B.n_vec(), bs);
    dev.synchronize_all();
    for (int i = 0; i < bs; ++i) {
      const int ni = n[static_cast<std::size_t>(i)];
      for (int c = 0; c < rhs[static_cast<std::size_t>(i)]; ++c) {
        double rmax = 0, bmax = 0;
        for (int r = 0; r < ni; ++r) {
          double acc = 0;
          for (int k = 0; k < ni; ++k)
            acc += (tr == la::Trans::No ? A0.view(i)(r, k)
                                        : A0.view(i)(k, r)) *
                   B.view(i)(k, c);
          rmax = std::max(rmax, std::abs(acc - B0.view(i)(r, c)));
          bmax = std::max(bmax, std::abs(B0.view(i)(r, c)));
        }
        EXPECT_LT(rmax / (bmax + 1e-300), 1e-7)
            << "matrix " << i << " rhs " << c;
      }
    }
  }
}
