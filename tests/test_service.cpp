// The solver-service layer: pattern hashing and the pattern-keyed
// symbolic/factor cache, the interleaved many-RHS solve path, admission
// control against the symbolic peak predictor, LRU eviction, and the
// per-tenant accounting. The cache must be *observably* a cache — exact
// analyze/hit/miss counters, bit-identical factors versus the uncached
// path — and the batched solve must preserve the per-request quality
// contract of solve_report().
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "gpusim/device.hpp"
#include "service/solver_service.hpp"
#include "sparse/csr.hpp"
#include "sparse/solver.hpp"
#include "trace/trace.hpp"

using namespace irrlu::sparse;
using irrlu::Rng;
using irrlu::gpusim::Device;
using irrlu::gpusim::DeviceModel;
using irrlu::service::Admission;
using irrlu::service::ServiceOptions;
using irrlu::service::SolveRequest;
using irrlu::service::SolveResponse;
using irrlu::service::SolverService;
using irrlu::trace::Tracer;

namespace {

std::vector<double> random_rhs(int n, unsigned seed) {
  Rng rng(seed);
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b) v = rng.uniform(-1, 1);
  return b;
}

/// Same pattern as laplacian2d(k, k), values perturbed deterministically —
/// the "new values, old structure" refactor stream.
CsrMatrix perturbed_laplacian(int k, unsigned seed) {
  CsrMatrix a = laplacian2d(k, k);
  Rng rng(seed);
  for (auto& v : a.val()) v *= 1.0 + 0.1 * rng.uniform(-1, 1);
  return a;
}

SolveRequest make_req(std::string tenant, CsrMatrix a, unsigned rhs_seed) {
  SolveRequest r;
  r.tenant = std::move(tenant);
  r.b = random_rhs(a.rows(), rhs_seed);
  r.a = std::move(a);
  return r;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pattern hashing (satellite: values-independent, order-stable)
// ---------------------------------------------------------------------------

TEST(PatternHash, ValueChangesDoNotChangeHash) {
  const CsrMatrix a = laplacian2d(8, 8);
  const CsrMatrix b = perturbed_laplacian(8, 1);
  CsrMatrix c = laplacian2d(8, 8);
  for (auto& v : c.val()) v = -v;  // sign-flipped values, same structure
  EXPECT_EQ(a.pattern_hash(), b.pattern_hash());
  EXPECT_EQ(a.pattern_hash(), c.pattern_hash());
  EXPECT_TRUE(a.same_pattern(b));
  EXPECT_TRUE(a.same_pattern(c));
}

TEST(PatternHash, StructureChangesChangeHash) {
  const CsrMatrix a = laplacian2d(8, 8);
  const int n = a.rows();
  // One extra off-diagonal entry: same n, different structure.
  std::vector<std::tuple<int, int, double>> t;
  for (int i = 0; i < n; ++i)
    for (int k = a.ptr()[static_cast<std::size_t>(i)];
         k < a.ptr()[static_cast<std::size_t>(i) + 1]; ++k)
      t.emplace_back(i, a.ind()[static_cast<std::size_t>(k)],
                     a.val()[static_cast<std::size_t>(k)]);
  t.emplace_back(0, n - 1, 0.5);
  const CsrMatrix extra = CsrMatrix::from_triplets(n, t);
  EXPECT_NE(a.pattern_hash(), extra.pattern_hash());
  EXPECT_FALSE(a.same_pattern(extra));

  // Different dimension entirely.
  const CsrMatrix smaller = laplacian2d(7, 8);
  EXPECT_NE(a.pattern_hash(), smaller.pattern_hash());
  EXPECT_FALSE(a.same_pattern(smaller));
}

TEST(PatternHash, InsertionOrderDoesNotLeak) {
  // from_triplets canonicalizes row order, so two insertion orders of the
  // same entries must hash identically.
  std::vector<std::tuple<int, int, double>> t1 = {
      {0, 0, 2.0}, {0, 1, -1.0}, {1, 0, -1.0}, {1, 1, 2.0}};
  std::vector<std::tuple<int, int, double>> t2(t1.rbegin(), t1.rend());
  EXPECT_EQ(CsrMatrix::from_triplets(2, t1).pattern_hash(),
            CsrMatrix::from_triplets(2, t2).pattern_hash());
}

// ---------------------------------------------------------------------------
// Interleaved many-RHS solve (tentpole path)
// ---------------------------------------------------------------------------

TEST(SolveMany, MatchesSequentialSolveReport) {
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  SparseDirectSolver solver(opts);
  const CsrMatrix a = laplacian2d(12, 12);
  solver.analyze(a);
  solver.factor(dev);

  const int nrhs = 7;
  std::vector<std::vector<double>> bs;
  for (int j = 0; j < nrhs; ++j)
    bs.push_back(random_rhs(a.rows(), 100u + static_cast<unsigned>(j)));

  const auto many = solver.solve_report_many(bs);
  ASSERT_EQ(many.size(), bs.size());
  for (int j = 0; j < nrhs; ++j) {
    const auto one = solver.solve_report(bs[static_cast<std::size_t>(j)]);
    const auto& m = many[static_cast<std::size_t>(j)];
    EXPECT_EQ(m.status, one.status) << "rhs " << j;
    EXPECT_LT(m.berr, 1e-14) << "rhs " << j;
    ASSERT_EQ(m.x.size(), one.x.size());
    for (std::size_t i = 0; i < m.x.size(); ++i)
      EXPECT_NEAR(m.x[i], one.x[i], 1e-11) << "rhs " << j << " entry " << i;
  }
}

TEST(SolveMany, MultiRhsSolveRoutesThroughBatchedPath) {
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  const CsrMatrix a = laplacian2d(10, 10);
  solver.analyze(a);
  solver.factor(dev);
  std::vector<std::vector<double>> bs;
  for (int j = 0; j < 5; ++j)
    bs.push_back(random_rhs(a.rows(), 7u + static_cast<unsigned>(j)));
  const auto xs = solver.solve(bs);
  ASSERT_EQ(xs.size(), bs.size());
  for (std::size_t j = 0; j < bs.size(); ++j)
    EXPECT_LT(solver.residual(xs[j], bs[j]), 1e-12) << "rhs " << j;
}

TEST(SolveMany, SingleRhsAgreesWithScalarPath) {
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  const CsrMatrix a = laplacian2d(9, 7);
  solver.analyze(a);
  solver.factor(dev);
  const auto b = random_rhs(a.rows(), 42);
  const auto many = solver.solve_report_many({b});
  ASSERT_EQ(many.size(), 1u);
  EXPECT_EQ(many[0].status, SolveStatus::kConverged);
  EXPECT_LT(solver.residual(many[0].x, b), 1e-13);
}

TEST(SolveMany, EmptyBatchIsANoOp) {
  Device dev(DeviceModel::a100());
  SparseDirectSolver solver;
  solver.analyze(laplacian2d(4, 4));
  solver.factor(dev);
  EXPECT_TRUE(solver.solve_report_many({}).empty());
}

// ---------------------------------------------------------------------------
// Symbolic reuse (satellite: analyze once, bit-identical factors, exact
// counters)
// ---------------------------------------------------------------------------

TEST(Service, SymbolicReuseExactCounters) {
  Device dev(DeviceModel::a100());
  SolverService svc(dev, {});
  const int k = 8;

  // 1 cold request + 4 same-pattern refactor requests.
  std::vector<SolveRequest> reqs;
  reqs.push_back(make_req("t0", laplacian2d(k, k), 1));
  for (unsigned s = 2; s <= 5; ++s)
    reqs.push_back(make_req("t0", perturbed_laplacian(k, s), s));
  const auto out = svc.solve(std::move(reqs));

  ASSERT_EQ(out.size(), 5u);
  EXPECT_FALSE(out[0].symbolic_cache_hit);
  for (std::size_t i = 1; i < out.size(); ++i)
    EXPECT_TRUE(out[i].symbolic_cache_hit) << "request " << i;
  for (const auto& r : out) {
    EXPECT_EQ(r.admission, Admission::kAccepted);
    EXPECT_EQ(r.report.status, SolveStatus::kConverged);
  }

  const auto& st = svc.stats();
  EXPECT_EQ(st.requests, 5);
  EXPECT_EQ(st.analyze_runs, 1);  // analyze ran exactly once
  EXPECT_EQ(st.symbolic_hits, 4);
  EXPECT_EQ(st.factors, 1);
  EXPECT_EQ(st.refactors, 4);
  EXPECT_EQ(st.rejected, 0);
  EXPECT_DOUBLE_EQ(st.symbolic_hit_rate(), 0.8);
}

TEST(Service, CachedRefactorFactorsBitIdenticalToUncached) {
  Device dev(DeviceModel::a100());
  SolverOptions opts;
  // MC64 scaling is values-dependent, and refactor() deliberately reuses
  // the matching computed for the *original* values (the documented
  // amortization) — so bit-identity with a from-scratch analyze is only a
  // meaningful invariant for the values-independent pipeline stages.
  // Disable MC64: then analyze() depends on structure alone and the
  // cached-refactor factor must match the uncached twin bit for bit.
  opts.use_mc64 = false;
  SolverService svc(dev, {opts});

  const int k = 9;
  const CsrMatrix a2 = perturbed_laplacian(k, 77);
  // Warm the cache with the base pattern, then refactor with new values.
  (void)svc.solve({make_req("t", laplacian2d(k, k), 1)});
  (void)svc.solve({make_req("t", a2, 2)});
  const SparseDirectSolver* cached = svc.peek(a2);
  ASSERT_NE(cached, nullptr);

  // Uncached twin: fresh solver, fresh device, same options and values.
  Device dev2(DeviceModel::a100());
  SparseDirectSolver fresh(opts);
  fresh.analyze(a2);
  fresh.factor(dev2);

  ASSERT_EQ(cached->numeric().factor_elems(), fresh.numeric().factor_elems());
  EXPECT_EQ(std::memcmp(cached->numeric().factor_data(),
                        fresh.numeric().factor_data(),
                        fresh.numeric().factor_elems() * sizeof(double)),
            0)
      << "cached-refactor factors must be bit-identical to the uncached path";
}

TEST(Service, FactorReuseWhenValuesIdentical) {
  Device dev(DeviceModel::a100());
  SolverService svc(dev, {});
  const CsrMatrix a = laplacian2d(8, 8);
  (void)svc.solve({make_req("t", a, 1)});
  const auto out = svc.solve({make_req("t", a, 2)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].symbolic_cache_hit);
  EXPECT_TRUE(out[0].factor_reused);
  EXPECT_EQ(svc.stats().factors, 1);
  EXPECT_EQ(svc.stats().refactors, 0);
  EXPECT_EQ(svc.stats().factor_reuses, 1);
}

TEST(Service, ResponsesInSubmissionOrderAcrossInterleavedPatterns) {
  Device dev(DeviceModel::a100());
  SolverService svc(dev, {});
  const CsrMatrix pa = laplacian2d(8, 8);
  const CsrMatrix pb = laplacian2d(6, 10);

  std::vector<SolveRequest> reqs;
  reqs.push_back(make_req("a", pa, 1));
  reqs.push_back(make_req("b", pb, 2));
  reqs.push_back(make_req("a", pa, 3));
  reqs.push_back(make_req("b", pb, 4));
  std::vector<std::vector<double>> rhs;
  for (const auto& r : reqs) rhs.push_back(r.b);
  std::vector<const CsrMatrix*> mats = {&pa, &pb, &pa, &pb};

  const auto out = svc.solve(std::move(reqs));
  ASSERT_EQ(out.size(), 4u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].pattern_hash, mats[i]->pattern_hash()) << "request " << i;
    EXPECT_EQ(out[i].report.status, SolveStatus::kConverged);
    // Each response must solve *its own* right-hand side.
    EXPECT_LT(mats[i]->componentwise_residual(out[i].report.x.data(),
                                              rhs[i].data()),
              1e-13)
        << "request " << i;
  }
  // Two patterns in one flush: both analyzed once, same-pattern duplicates
  // reuse the factor (identical values).
  EXPECT_EQ(svc.stats().analyze_runs, 2);
  EXPECT_EQ(svc.stats().factor_reuses, 2);
}

// ---------------------------------------------------------------------------
// Batching
// ---------------------------------------------------------------------------

TEST(Service, BatchWidthRespectsCap) {
  Device dev(DeviceModel::a100());
  ServiceOptions opts;
  opts.max_batch_rhs = 2;
  SolverService svc(dev, opts);
  const CsrMatrix a = laplacian2d(7, 7);
  std::vector<SolveRequest> reqs;
  for (unsigned s = 0; s < 5; ++s) reqs.push_back(make_req("t", a, s));
  const auto out = svc.solve(std::move(reqs));
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].batch_width, 2);
  EXPECT_EQ(out[1].batch_width, 2);
  EXPECT_EQ(out[2].batch_width, 2);
  EXPECT_EQ(out[3].batch_width, 2);
  EXPECT_EQ(out[4].batch_width, 1);
  EXPECT_EQ(svc.stats().batches, 3);
  EXPECT_EQ(svc.stats().batched_rhs, 5);
}

TEST(Service, OneFlushOneBatchManyRhs) {
  Device dev(DeviceModel::a100());
  SolverService svc(dev, {});
  const CsrMatrix a = laplacian2d(9, 9);
  std::vector<SolveRequest> reqs;
  for (unsigned s = 0; s < 8; ++s) reqs.push_back(make_req("t", a, 10 + s));
  const auto out = svc.solve(std::move(reqs));
  EXPECT_EQ(svc.stats().batches, 1);  // one interleaved sweep for all 8
  for (const auto& r : out) {
    EXPECT_EQ(r.batch_width, 8);
    EXPECT_EQ(r.report.status, SolveStatus::kConverged);
  }
}

// ---------------------------------------------------------------------------
// Admission control & LRU eviction
// ---------------------------------------------------------------------------

TEST(Service, RejectsWhenPredictedPeakExceedsBudget) {
  Device dev(DeviceModel::a100());
  ServiceOptions opts;
  opts.memory_budget_bytes = 64;  // far below any real factorization peak
  SolverService svc(dev, opts);
  const long allocs_before = dev.alloc_count();
  const auto out = svc.solve({make_req("t", laplacian2d(10, 10), 1)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].admission, Admission::kRejectedMemory);
  EXPECT_EQ(out[0].report.status, SolveStatus::kFailed);
  EXPECT_TRUE(out[0].report.x.empty());
  EXPECT_EQ(svc.stats().rejected, 1);
  EXPECT_EQ(svc.stats().requests, 1);
  EXPECT_EQ(svc.cached_patterns(), 0u);
  // Rejection happens before any device work.
  EXPECT_EQ(dev.alloc_count(), allocs_before);
}

TEST(Service, EvictsLruToMeetBudget) {
  const CsrMatrix pa = laplacian2d(10, 10);
  const CsrMatrix pb = laplacian2d(11, 9);

  // Pre-pass on a throwaway service: learn the resident factor size of pa
  // and the predicted peaks, then pick a budget that admits either pattern
  // alone but not pa-resident + pb-in-flight.
  ServiceOptions unlimited;
  std::size_t resident_a = 0, peak_a = 0, peak_b = 0;
  {
    Device dev(DeviceModel::a100());
    SolverService warm(dev, unlimited);
    (void)warm.solve({make_req("t", pa, 1)});
    resident_a = warm.resident_factor_bytes();
    peak_a = warm.peek(pa)->symbolic().predicted_peak_bytes(
        unlimited.solver.factor.memory);
    SparseDirectSolver sb(unlimited.solver);
    sb.analyze(pb);
    peak_b =
        sb.symbolic().predicted_peak_bytes(unlimited.solver.factor.memory);
  }
  ASSERT_GT(resident_a, 0u);

  ServiceOptions opts;
  opts.memory_budget_bytes =
      std::max(std::max(peak_a, peak_b), resident_a + peak_b - 1);
  Device dev(DeviceModel::a100());
  SolverService svc(dev, opts);
  const auto out_a = svc.solve({make_req("t", pa, 1)});
  EXPECT_EQ(out_a[0].admission, Admission::kAccepted);
  EXPECT_EQ(svc.cached_patterns(), 1u);

  const auto out_b = svc.solve({make_req("t", pb, 2)});
  EXPECT_EQ(out_b[0].admission, Admission::kAccepted);
  EXPECT_EQ(out_b[0].report.status, SolveStatus::kConverged);
  EXPECT_EQ(svc.stats().evictions, 1);  // pa evicted to fit pb
  EXPECT_EQ(svc.cached_patterns(), 1u);
  EXPECT_EQ(svc.peek(pa), nullptr);
  EXPECT_NE(svc.peek(pb), nullptr);

  // pa comes back: its symbolic analysis is gone, so analyze runs again.
  (void)svc.solve({make_req("t", pa, 3)});
  EXPECT_EQ(svc.stats().analyze_runs, 3);
}

TEST(Service, LruCapacityEvictsLeastRecentlyUsedPattern) {
  Device dev(DeviceModel::a100());
  ServiceOptions opts;
  opts.max_cached_patterns = 2;
  SolverService svc(dev, opts);
  const CsrMatrix pa = laplacian2d(6, 6);
  const CsrMatrix pb = laplacian2d(5, 7);
  const CsrMatrix pc = laplacian2d(7, 5);

  (void)svc.solve({make_req("t", pa, 1)});
  (void)svc.solve({make_req("t", pb, 2)});
  (void)svc.solve({make_req("t", pa, 3)});  // touch pa: pb becomes LRU
  (void)svc.solve({make_req("t", pc, 4)});  // evicts pb
  EXPECT_EQ(svc.cached_patterns(), 2u);
  EXPECT_NE(svc.peek(pa), nullptr);
  EXPECT_EQ(svc.peek(pb), nullptr);
  EXPECT_NE(svc.peek(pc), nullptr);
  EXPECT_EQ(svc.stats().evictions, 1);
}

// ---------------------------------------------------------------------------
// Tenant accounting & tracer counters
// ---------------------------------------------------------------------------

TEST(Service, PerTenantStatsAndTracerCounters) {
  Device dev(DeviceModel::a100());
  Tracer t;
  dev.set_tracer(&t);
  SolverService svc(dev, {});
  const CsrMatrix a = laplacian2d(8, 8);

  std::vector<SolveRequest> reqs;
  reqs.push_back(make_req("alice", a, 1));
  reqs.push_back(make_req("bob", perturbed_laplacian(8, 2), 2));
  reqs.push_back(make_req("alice", perturbed_laplacian(8, 3), 3));
  (void)svc.solve(std::move(reqs));

  const auto& st = svc.stats();
  ASSERT_EQ(st.tenants.count("alice"), 1u);
  ASSERT_EQ(st.tenants.count("bob"), 1u);
  EXPECT_EQ(st.tenants.at("alice").requests, 2);
  EXPECT_EQ(st.tenants.at("bob").requests, 1);
  EXPECT_EQ(st.tenants.at("alice").symbolic_hits + st.tenants.at("bob").symbolic_hits,
            st.symbolic_hits);

  const auto& c = t.counters();
  EXPECT_EQ(c.at("service.requests"), 3.0);
  EXPECT_EQ(c.at("service.analyze_runs"), 1.0);
  EXPECT_EQ(c.at("service.symbolic_hits"), 2.0);
  EXPECT_EQ(c.at("service.tenant.alice.requests"), 2.0);
  EXPECT_EQ(c.at("service.tenant.bob.requests"), 1.0);
  dev.set_tracer(nullptr);
}

TEST(Service, ClearCacheDropsEverything) {
  Device dev(DeviceModel::a100());
  SolverService svc(dev, {});
  const CsrMatrix a = laplacian2d(6, 6);
  (void)svc.solve({make_req("t", a, 1)});
  EXPECT_EQ(svc.cached_patterns(), 1u);
  EXPECT_GT(svc.resident_factor_bytes(), 0u);
  svc.clear_cache();
  EXPECT_EQ(svc.cached_patterns(), 0u);
  EXPECT_EQ(svc.resident_factor_bytes(), 0u);
  EXPECT_EQ(svc.stats().evictions, 1);
  // The pattern is analyzed afresh afterwards.
  (void)svc.solve({make_req("t", a, 2)});
  EXPECT_EQ(svc.stats().analyze_runs, 2);
}

TEST(Service, RejectsMalformedRhsAtSubmit) {
  Device dev(DeviceModel::a100());
  SolverService svc(dev, {});
  SolveRequest r;
  r.tenant = "t";
  r.a = laplacian2d(4, 4);
  r.b = std::vector<double>(3, 1.0);  // wrong length
  EXPECT_THROW(svc.submit(std::move(r)), irrlu::Error);
}
