// Unit tests for the simulated device runtime: launch semantics, shared
// memory limits, stream timelines, memory accounting, and the cost model.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "gpusim/device.hpp"

using irrlu::Error;
using namespace irrlu::gpusim;

TEST(DeviceModel, PresetsAreSane) {
  for (const auto& m : {DeviceModel::a100(), DeviceModel::mi100(),
                        DeviceModel::xeon6140x2(), DeviceModel::test_tiny()}) {
    EXPECT_GE(m.num_sms, 1) << m.name;
    EXPECT_GT(m.peak_flops_per_sm, 0) << m.name;
    EXPECT_GT(m.mem_bandwidth, 0) << m.name;
    EXPECT_LE(m.shared_mem_per_block, m.shared_mem_per_sm) << m.name;
  }
  // The paper's occupancy argument: MI100's 64 KB LDS is far smaller than
  // A100's 192 KB shared memory.
  EXPECT_LT(DeviceModel::mi100().shared_mem_per_block,
            DeviceModel::a100().shared_mem_per_block);
}

TEST(DeviceModel, BlockSecondsMonotone) {
  const auto m = DeviceModel::a100();
  EXPECT_LT(m.block_seconds(1e3, 1e3), m.block_seconds(1e6, 1e3));
  EXPECT_LT(m.block_seconds(1e3, 1e3), m.block_seconds(1e3, 1e6));
  EXPECT_EQ(m.block_seconds(0, 0), 0.0);
}

TEST(DeviceModel, OccupancyLimitedBySharedMemory) {
  const auto m = DeviceModel::a100();
  EXPECT_EQ(m.blocks_per_sm(0), m.max_blocks_per_sm);
  EXPECT_EQ(m.blocks_per_sm(m.shared_mem_per_sm), 1);
  EXPECT_EQ(m.blocks_per_sm(m.shared_mem_per_sm / 4), 4);
}

TEST(Device, LaunchExecutesAllBlocks) {
  Device dev(DeviceModel::test_tiny());
  std::vector<int> hits(10, 0);
  dev.launch(dev.stream(), {"mark", 10, 0},
             [&](BlockCtx& ctx) { hits[ctx.block()]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
  EXPECT_EQ(dev.launch_count(), 1);
}

TEST(Device, EmptyGridAdvancesTime) {
  Device dev(DeviceModel::test_tiny());
  dev.launch(dev.stream(), {"empty", 0, 0}, [](BlockCtx&) { FAIL(); });
  EXPECT_GT(dev.synchronize_all(), 0.0);
}

TEST(Device, SharedMemoryWithinBudget) {
  Device dev(DeviceModel::test_tiny());
  dev.launch(dev.stream(), {"smem", 1, 1024}, [&](BlockCtx& ctx) {
    double* w = ctx.smem_alloc<double>(128);  // exactly 1024 bytes
    w[0] = 1.0;
    w[127] = 2.0;
    EXPECT_EQ(w[0] + w[127], 3.0);
  });
}

TEST(Device, SharedMemoryOverflowThrows) {
  Device dev(DeviceModel::test_tiny());
  EXPECT_THROW(dev.launch(dev.stream(), {"smem_over", 1, 64},
                          [&](BlockCtx& ctx) {
                            ctx.smem_alloc<double>(9);  // 72 > 64 bytes
                          }),
               Error);
}

TEST(Device, DeclaringMoreThanHardwareThrows) {
  Device dev(DeviceModel::test_tiny());
  const auto limit = dev.model().shared_mem_per_block;
  EXPECT_THROW(
      dev.launch(dev.stream(), {"too_big", 1, limit + 1}, [](BlockCtx&) {}),
      Error);
}

TEST(Device, StreamOrderingAccumulatesTime) {
  Device dev(DeviceModel::test_tiny());
  auto& s = dev.stream();
  dev.launch(s, {"k1", 1, 0}, [](BlockCtx& c) { c.record(1e6, 0); });
  const double t1 = s.completion_time();
  dev.launch(s, {"k2", 1, 0}, [](BlockCtx& c) { c.record(1e6, 0); });
  const double t2 = s.completion_time();
  EXPECT_GT(t1, 0.0);
  EXPECT_GT(t2, t1 + 0.9e-3);  // 1e6 flops at 1 GF/s ~ 1 ms
}

TEST(Device, IndependentStreamsOverlap) {
  // Two 1-block kernels in different streams should overlap on a 2-SM
  // device: makespan well below 2x the serial time.
  auto run = [](int nstreams) {
    Device dev(DeviceModel::test_tiny());
    for (int i = 0; i < 2; ++i)
      dev.launch(dev.stream(nstreams == 1 ? 0 : i), {"k", 1, 0},
                 [](BlockCtx& c) { c.record(1e7, 0); });
    return dev.synchronize_all();
  };
  const double serial = run(1);
  const double parallel = run(2);
  EXPECT_LT(parallel, 0.6 * serial);
}

TEST(Device, MoreBlocksThanSlotsSerializes) {
  // test_tiny has 2 SMs x 4 slots = 8 slots; 32 equal blocks need 4 waves.
  Device dev(DeviceModel::test_tiny());
  dev.launch(dev.stream(), {"w", 8, 0},
             [](BlockCtx& c) { c.record(1e7, 0); });
  const double one_wave = dev.synchronize_all();
  dev.reset_timeline();
  dev.launch(dev.stream(), {"w", 32, 0},
             [](BlockCtx& c) { c.record(1e7, 0); });
  const double four_waves = dev.synchronize_all();
  EXPECT_GT(four_waves, 3.0 * one_wave);
  EXPECT_LT(four_waves, 5.0 * one_wave);
}

TEST(Device, OccupancyReducedBySharedMemory) {
  // With smem = shared_mem_per_sm, only 1 block fits per SM: 8 blocks on
  // 2 SMs take ~4 rounds instead of 1.
  Device dev(DeviceModel::test_tiny());
  const auto smem = dev.model().shared_mem_per_block;  // 4 KB = full SM/2
  dev.launch(dev.stream(), {"occ", 8, 0},
             [](BlockCtx& c) { c.record(1e7, 0); });
  const double full_occ = dev.synchronize_all();
  dev.reset_timeline();
  dev.launch(dev.stream(), {"occ_smem", 8, smem},
             [](BlockCtx& c) { c.record(1e7, 0); });
  const double low_occ = dev.synchronize_all();
  EXPECT_GT(low_occ, 1.5 * full_occ);
}

TEST(Device, HostDispatchSerializesManySmallLaunches) {
  // The Fig-10 phenomenon in miniature: 100 tiny kernels across 16 streams
  // cannot run faster than 100 dispatch overheads.
  Device dev(DeviceModel::test_tiny());
  for (int i = 0; i < 100; ++i)
    dev.launch(dev.stream(i % 16), {"tiny", 1, 0},
               [](BlockCtx& c) { c.record(10, 10); });
  const double t = dev.synchronize_all();
  EXPECT_GE(t, 100 * dev.model().host_dispatch_overhead);
}

TEST(Device, ProfileAggregatesPerKernel) {
  Device dev(DeviceModel::test_tiny());
  for (int i = 0; i < 3; ++i)
    dev.launch(dev.stream(), {"a", 2, 0},
               [](BlockCtx& c) { c.record(100, 200); });
  dev.launch(dev.stream(), {"b", 1, 0}, [](BlockCtx& c) { c.record(5, 5); });
  const auto& prof = dev.profile();
  ASSERT_EQ(prof.count("a"), 1u);
  EXPECT_EQ(prof.at("a").launches, 3);
  EXPECT_EQ(prof.at("a").blocks, 6);
  EXPECT_DOUBLE_EQ(prof.at("a").flops, 600.0);
  EXPECT_DOUBLE_EQ(prof.at("b").bytes, 5.0);
}

TEST(Device, SyncAccounting) {
  Device dev(DeviceModel::test_tiny());
  dev.launch(dev.stream(), {"k", 1, 0}, [](BlockCtx& c) { c.record(1e6, 0); });
  dev.synchronize(dev.stream());
  EXPECT_EQ(dev.sync_count(), 1);
  EXPECT_GT(dev.sync_wait_seconds(), 0.0);
}

TEST(Device, ResetTimelineClearsClockButNotMemory) {
  Device dev(DeviceModel::test_tiny());
  auto buf = dev.alloc<double>(16);
  buf[0] = 42.0;
  dev.launch(dev.stream(), {"k", 1, 0}, [](BlockCtx& c) { c.record(1e6, 0); });
  dev.synchronize_all();
  dev.reset_timeline();
  EXPECT_EQ(dev.host_time(), 0.0);
  EXPECT_EQ(dev.launch_count(), 0);
  EXPECT_EQ(buf[0], 42.0);
}

TEST(Device, MemoryAccounting) {
  Device dev(DeviceModel::test_tiny());
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  {
    auto a = dev.alloc<double>(100);
    EXPECT_EQ(dev.bytes_in_use(), 800u);
    {
      auto b = dev.alloc<int>(25);
      EXPECT_EQ(dev.bytes_in_use(), 900u);
    }
    EXPECT_EQ(dev.bytes_in_use(), 800u);
  }
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  EXPECT_EQ(dev.peak_bytes(), 900u);
}

TEST(DeviceBuffer, MoveTransfersOwnership) {
  Device dev(DeviceModel::test_tiny());
  auto a = dev.alloc<int>(4);
  a[0] = 7;
  auto b = std::move(a);
  EXPECT_EQ(b[0], 7);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(dev.bytes_in_use(), 16u);
}

TEST(Device, LoadImbalanceDominatesMakespan) {
  // One huge block among many tiny ones pins the kernel end time — the
  // irregular-batch load-balance effect central to the paper.
  Device dev(DeviceModel::test_tiny());
  dev.launch(dev.stream(), {"imb", 64, 0}, [](BlockCtx& c) {
    c.record(c.block() == 0 ? 1e9 : 1e3, 0);
  });
  const double t = dev.synchronize_all();
  EXPECT_GT(t, 1.0);  // dominated by the 1e9-flop block at 1 GF/s
  EXPECT_LT(t, 1.5);
}

TEST(Event, CrossStreamOrdering) {
  Device dev(DeviceModel::test_tiny());
  auto& s0 = dev.stream(0);
  auto& s1 = dev.stream(1);
  dev.launch(s0, {"producer", 1, 0}, [](BlockCtx& c) { c.record(1e7, 0); });
  const Event e = dev.record(s0);
  EXPECT_GT(e.time(), 0.0);
  dev.wait(s1, e);
  dev.launch(s1, {"consumer", 1, 0}, [](BlockCtx& c) { c.record(10, 0); });
  // The consumer cannot have started before the producer finished.
  EXPECT_GE(dev.stream(1).completion_time(), e.time());
}

TEST(Event, WaitOnPastEventIsNoOp) {
  Device dev(DeviceModel::test_tiny());
  auto& s0 = dev.stream(0);
  auto& s1 = dev.stream(1);
  const Event early = dev.record(s0);  // time 0
  dev.launch(s1, {"k", 1, 0}, [](BlockCtx& c) { c.record(1e7, 0); });
  const double before = s1.completion_time();
  dev.wait(s1, early);
  EXPECT_EQ(s1.completion_time(), before);
}

TEST(DeviceModel, IntelPresetSane) {
  const auto m = DeviceModel::max1550();
  EXPECT_GT(m.peak_flops_per_sm * m.num_sms, 9.7e12);  // above the A100
  EXPECT_GT(m.mem_bandwidth, DeviceModel::a100().mem_bandwidth);
  EXPECT_LE(m.shared_mem_per_block, m.shared_mem_per_sm);
}

TEST(Device, TimelineIsDeterministic) {
  // Replaying the same launch program yields bit-identical simulated time
  // (prerequisite for the autotuner's comparisons).
  auto run = [] {
    Device dev(DeviceModel::a100());
    for (int i = 0; i < 20; ++i)
      dev.launch(dev.stream(i % 3), {"k", 5 + i, 1024},
                 [&](BlockCtx& c) { c.record(1e5 * (1 + c.block()), 3e4); });
    return dev.synchronize_all();
  };
  EXPECT_EQ(run(), run());
}

TEST(BlockCtx, SharedMemoryAllocationsAreAligned) {
  Device dev(DeviceModel::test_tiny());
  dev.launch(dev.stream(), {"align", 1, 256}, [](BlockCtx& ctx) {
    char* a = ctx.smem_alloc<char>(3);
    double* b = ctx.smem_alloc<double>(4);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % alignof(double), 0u);
    a[0] = 1;
    b[0] = 2.0;
    EXPECT_GT(reinterpret_cast<char*>(b), a);
  });
}

TEST(Device, BandwidthShareCappedPerBlock) {
  const auto m = DeviceModel::a100();
  EXPECT_DOUBLE_EQ(m.bandwidth_share(1), m.max_sm_bandwidth);
  EXPECT_LT(m.bandwidth_share(2000), m.max_sm_bandwidth);
  EXPECT_NEAR(m.bandwidth_share(2000) * 2000, m.mem_bandwidth, 1.0);
}

TEST(Device, AllocationCostsSimulatedTime) {
  Device dev(DeviceModel::a100());
  const double t0 = dev.host_time();
  auto buf = dev.alloc<double>(1000);
  EXPECT_GE(dev.host_time() - t0, dev.model().alloc_overhead * 0.99);
}

TEST(Device, AllocZeroElementsIsEmptyNoop) {
  // A zero-count alloc yields a valid empty buffer without touching the
  // arena or the simulated clock (no cudaMalloc analogue is issued).
  Device dev(DeviceModel::a100());
  const double t0 = dev.host_time();
  auto buf = dev.alloc<double>(0);
  EXPECT_EQ(buf.data(), nullptr);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  EXPECT_EQ(dev.peak_bytes(), 0u);
  EXPECT_EQ(dev.host_time(), t0);
  buf.release();  // releasing an empty buffer is a no-op too
  EXPECT_EQ(dev.bytes_in_use(), 0u);
}

TEST(DeviceBuffer, MoveAssignReleasesOldExactlyOnce) {
  Device dev(DeviceModel::test_tiny());
  auto a = dev.alloc<double>(100);  // 800 B
  auto b = dev.alloc<double>(50);   // 400 B
  a[0] = 3.5;
  EXPECT_EQ(dev.bytes_in_use(), 1200u);
  b = std::move(a);  // must free b's old 400 B exactly once
  EXPECT_EQ(dev.bytes_in_use(), 800u);
  EXPECT_EQ(b[0], 3.5);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
  b.release();
  EXPECT_EQ(dev.bytes_in_use(), 0u);
  b.release();  // double release is a no-op, not a double free
  EXPECT_EQ(dev.bytes_in_use(), 0u);
}

TEST(DeviceBuffer, SelfMoveAssignIsNoop) {
  Device dev(DeviceModel::test_tiny());
  auto a = dev.alloc<int>(8);
  a[0] = 11;
  auto& alias = a;  // via an alias so -Wself-move stays quiet
  a = std::move(alias);
  EXPECT_EQ(a[0], 11);
  EXPECT_EQ(dev.bytes_in_use(), 32u);
}

TEST(Device, PeakTracksInterleavedAllocFree) {
  // peak_bytes is the lifetime high-water mark; window_peak_bytes rebases
  // at reset_peak_window() so a later phase can be measured in isolation.
  Device dev(DeviceModel::test_tiny());
  auto a = dev.alloc<char>(1000);
  {
    auto b = dev.alloc<char>(500);
    EXPECT_EQ(dev.peak_bytes(), 1500u);
  }
  {
    auto c = dev.alloc<char>(200);  // 1200 live: below the 1500 peak
    EXPECT_EQ(dev.peak_bytes(), 1500u);
    EXPECT_EQ(dev.bytes_in_use(), 1200u);
  }
  dev.reset_peak_window();  // window starts at the current 1000 B
  EXPECT_EQ(dev.window_peak_bytes(), 1000u);
  {
    auto d = dev.alloc<char>(300);
    EXPECT_EQ(dev.window_peak_bytes(), 1300u);
  }
  auto e = dev.alloc<char>(100);  // 1100 live: window peak stays 1300
  EXPECT_EQ(dev.window_peak_bytes(), 1300u);
  EXPECT_EQ(dev.peak_bytes(), 1500u);  // lifetime peak unaffected
}

TEST(Device, SharedMemoryOverflowMessageIsActionable) {
  Device dev(DeviceModel::test_tiny());
  try {
    dev.launch(dev.stream(), {"smem_msg", 1, 64}, [&](BlockCtx& ctx) {
      ctx.smem_alloc<double>(9);  // needs 72 B against a 64 B budget
    });
    FAIL() << "expected shared-memory overflow";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("shared memory overflow"), std::string::npos) << msg;
    EXPECT_NE(msg.find("64"), std::string::npos) << msg;  // declared budget
    EXPECT_NE(msg.find("72"), std::string::npos) << msg;  // required bytes
  }
}

TEST(BlockCtx, SmemAlignmentPaddingCountsTowardCapacity) {
  // Each smem_alloc rounds its offset up to alignof(std::max_align_t);
  // the padding is real capacity. A 1-byte allocation followed by an
  // 8-byte one needs align + 8 bytes, not 9.
  Device dev(DeviceModel::test_tiny());
  constexpr std::size_t align = alignof(std::max_align_t);
  dev.launch(dev.stream(), {"smem_pad_ok", 1, align + 8}, [](BlockCtx& ctx) {
    ctx.smem_alloc<char>(1);
    double* d = ctx.smem_alloc<double>(1);  // offset rounds up to `align`
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  });
  EXPECT_THROW(
      dev.launch(dev.stream(), {"smem_pad_over", 1, align + 7},
                 [](BlockCtx& ctx) {
                   ctx.smem_alloc<char>(1);
                   ctx.smem_alloc<double>(1);  // align + 8 > align + 7
                 }),
      Error);
}
