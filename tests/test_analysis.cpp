// Unit tests for the trace-analytics layer (trace/analysis.hpp,
// trace/histogram.hpp): critical-path identity against the simulated
// makespan, exact per-stream busy/idle accounting, the what-if(k=1)
// bit-identity no-op, histogram percentile exactness, and the
// analysis-on/off output invariance.
//
// The device model below is chosen so every simulated time is a dyadic
// rational (half-performance points zeroed, power-of-two peaks and
// overheads): sums and differences of such times are exact in doubles,
// so the telescoping critical-path identity and the busy+idle == span
// identity can be asserted with EXPECT_EQ rather than tolerances.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "trace/analysis.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/report.hpp"
#include "trace/trace.hpp"

using namespace irrlu::gpusim;
using namespace irrlu::trace;

namespace {

/// All-dyadic cost model: block time = flops / 2^31 with no saturation
/// terms, power-of-two overheads.
DeviceModel dyadic_model() {
  DeviceModel m;
  m.name = "dyadic";
  m.num_sms = 2;
  m.peak_flops_per_sm = 2147483648.0;  // 2^31
  m.compute_efficiency = 1.0;
  m.half_perf_flops = 0;  // sat_c == 1: tc = flops / peak exactly
  m.half_perf_bytes = 0;
  m.mem_bandwidth = 2147483648.0;
  m.max_sm_bandwidth = 2147483648.0;
  m.host_dispatch_overhead = 0x1p-14;
  m.device_launch_latency = 0x1p-15;
  m.block_start_overhead = 0x1p-16;
  m.stream_sync_overhead = 0x1p-14;
  m.alloc_overhead = 0x1p-13;
  return m;
}

/// Hand-built dependency DAG over two streams: a producer chain on
/// stream 0, a consumer on stream 1 behind a cross-stream event, a host
/// sync joining stream 1 back, an allocation, and a tail kernel — every
/// edge kind the replay handles.
double run_dag(Device& dev) {
  auto& s0 = dev.stream(0);
  auto& s1 = dev.stream(1);
  IRRLU_TRACE_SCOPE(dev.tracer(), "dag");
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "produce");
    dev.launch(s0, {"producer", 4, 0},
               [](BlockCtx& c) { c.record(0x1p22, 0); });
    dev.launch(s0, {"producer", 2, 0},
               [](BlockCtx& c) { c.record(0x1p21, 0); });
  }
  const Event e = dev.record(s0);
  dev.wait(s1, e);
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "consume");
    dev.launch(s1, {"consumer", 2, 0},
               [](BlockCtx& c) { c.record(0x1p23, 0); });
  }
  dev.synchronize(s1);
  {
    auto buf = dev.alloc<double>(128);
    IRRLU_TRACE_SCOPE(dev.tracer(), "tail");
    dev.launch(s0, {"tail", 1, 0}, [](BlockCtx& c) { c.record(0x1p20, 0); });
  }
  return dev.synchronize_all();
}

double max_sim_end(const Tracer& t) {
  double m = 0;
  for (const LaunchRecord& r : t.launches())
    if (r.sim_end > m) m = r.sim_end;
  return m;
}

}  // namespace

// -- critical path ----------------------------------------------------------

TEST(Analysis, CriticalPathLengthEqualsMakespanExactly) {
  Device dev(dyadic_model());
  Tracer tracer;
  dev.set_tracer(&tracer);
  run_dag(dev);

  const Analysis a = analyze_trace(tracer, dev.model());
  ASSERT_TRUE(a.valid) << a.caveat;
  EXPECT_EQ(a.makespan, max_sim_end(tracer));
  // Telescoping contributions: bitwise identity, not a tolerance.
  EXPECT_EQ(a.critical_path_seconds, a.makespan);
  ASSERT_FALSE(a.path.empty());
  // The path is time-ordered and contiguous: each node starts where the
  // previous one ended, the last node ends at the makespan.
  EXPECT_EQ(a.path.front().start, 0.0);
  for (std::size_t i = 1; i < a.path.size(); ++i)
    EXPECT_EQ(a.path[i].start, a.path[i - 1].end);
  EXPECT_EQ(a.path.back().end, a.makespan);
  for (const CritNode& n : a.path) {
    EXPECT_GE(n.contribution, 0.0);
    EXPECT_GE(n.stall_seconds, 0.0);
    EXPECT_EQ(n.contribution, n.run_seconds + n.stall_seconds);
  }
  // Kernel rollups partition the path: their seconds sum to the makespan.
  double rollup = 0;
  for (const PathContribution& c : a.kernels) rollup += c.seconds;
  EXPECT_EQ(rollup, a.makespan);
}

TEST(Analysis, SlackCountsOffPathWork) {
  Device dev(dyadic_model());
  Tracer tracer;
  dev.set_tracer(&tracer);
  run_dag(dev);

  const Analysis a = analyze_trace(tracer, dev.model());
  ASSERT_TRUE(a.valid);
  long on_path = 0;
  double slack = 0;
  for (const PathContribution& c : a.kernels) {
    on_path += c.launches;
    slack += c.slack_seconds;
  }
  EXPECT_EQ(on_path, static_cast<long>(a.path.size()));
  // Slack is exactly the execution of launches never touched by the path
  // (a launch visited only through its dispatch segment still counts as
  // on-path and contributes no slack).
  std::set<std::size_t> touched;
  for (const CritNode& n : a.path) touched.insert(n.launch);
  double off_path_exec = 0;
  const auto& launches = tracer.launches();
  for (std::size_t i = 0; i < launches.size(); ++i)
    if (touched.count(i) == 0)
      off_path_exec += launches[i].sim_end - launches[i].sim_start;
  EXPECT_EQ(slack, off_path_exec);
}

// -- stream utilization -----------------------------------------------------

TEST(Analysis, StreamBusyPlusIdleSumsToSpanExactly) {
  Device dev(dyadic_model());
  Tracer tracer;
  dev.set_tracer(&tracer);
  run_dag(dev);

  const Analysis a = analyze_trace(tracer, dev.model());
  ASSERT_EQ(a.streams.size(), 2u);
  for (const StreamUtilization& u : a.streams) {
    // Exact identity, by construction: idle = span - busy.
    EXPECT_EQ(u.busy_seconds + u.idle_seconds, a.makespan);
    EXPECT_GE(u.busy_fraction, 0.0);
    EXPECT_LE(u.busy_fraction, 1.0);
    EXPECT_GE(u.gaps, 1);  // both streams have leading idle (dispatch)
    long hist_count = 0;
    EXPECT_EQ(u.gap_hist.count(), u.gaps);
    for (const auto& [b, c] : u.gap_hist.buckets()) hist_count += c;
    EXPECT_EQ(hist_count + u.gap_hist.underflow(), u.gaps);
    // waits_on attribution covers all idle time.
    double attributed = 0;
    for (const auto& [scope, s] : u.waits_on) attributed += s;
    EXPECT_EQ(attributed, u.idle_seconds);
  }
}

// -- what-if replay ---------------------------------------------------------

TEST(Analysis, WhatIfUnitScaleIsBitIdenticalNoOp) {
  Device dev(dyadic_model());
  Tracer tracer;
  dev.set_tracer(&tracer);
  run_dag(dev);

  const double makespan = max_sim_end(tracer);
  // Empty scale vector (all 1.0 implied).
  const ReplayResult r0 = replay_scaled(tracer, dev.model());
  ASSERT_TRUE(r0.ok) << r0.caveat;
  EXPECT_EQ(r0.makespan, makespan);
  // Explicit all-ones vector.
  const std::vector<double> ones(tracer.launches().size(), 1.0);
  const ReplayResult r1 = replay_scaled(tracer, dev.model(), ones);
  ASSERT_TRUE(r1.ok);
  EXPECT_EQ(r1.makespan, makespan);
}

TEST(Analysis, WhatIfProjectionsBracketTheMakespan) {
  Device dev(dyadic_model());
  Tracer tracer;
  dev.set_tracer(&tracer);
  run_dag(dev);

  AnalysisOptions opts;
  opts.whatif_speedup = 2.0;
  const Analysis a = analyze_trace(tracer, dev.model(), opts);
  ASSERT_TRUE(a.valid);
  ASSERT_FALSE(a.what_ifs.empty());
  for (const WhatIf& wi : a.what_ifs) {
    EXPECT_LE(wi.projected_seconds, a.makespan);
    EXPECT_GE(wi.speedup, 1.0);
    // The Amdahl ceiling (k -> inf) dominates the finite-k speedup.
    EXPECT_GE(wi.bound, wi.speedup);
  }
}

TEST(Analysis, ScalingTheOnlyKernelHalvesItsExecution) {
  // Single-stream, single-kernel chain: at k=2 every duration halves and
  // the dispatch overheads stay, so the projected makespan is computable
  // by hand.
  Device dev(dyadic_model());
  Tracer tracer;
  dev.set_tracer(&tracer);
  auto& s0 = dev.stream(0);
  dev.launch(s0, {"only", 1, 0}, [](BlockCtx& c) { c.record(0x1p24, 0); });
  dev.launch(s0, {"only", 1, 0}, [](BlockCtx& c) { c.record(0x1p24, 0); });
  dev.synchronize_all();

  const auto& L = tracer.launches();
  ASSERT_EQ(L.size(), 2u);
  const std::vector<double> half(L.size(), 0.5);
  const ReplayResult r = replay_scaled(tracer, dev.model(), half);
  ASSERT_TRUE(r.ok);
  const double d0 = L[0].sim_end - L[0].sim_start;
  const double d1 = L[1].sim_end - L[1].sim_start;
  // First launch: same start, half duration. Second launch was
  // stream-bound; it now starts at the first's new end (its dispatch
  // constraint is earlier) and runs half as long.
  EXPECT_EQ(r.makespan, L[0].sim_start + 0.5 * d0 + 0.5 * d1);
}

// -- degraded traces --------------------------------------------------------

TEST(Analysis, CappedTraceYieldsInvalidWithCaveat) {
  Device dev(dyadic_model());
  Tracer tracer(/*reserve_launches=*/4, /*max_launches=*/2);
  dev.set_tracer(&tracer);
  run_dag(dev);
  ASSERT_GT(tracer.dropped_launches(), 0);

  const Analysis a = analyze_trace(tracer, dev.model());
  EXPECT_FALSE(a.valid);
  EXPECT_NE(a.caveat.find("capped"), std::string::npos);
  EXPECT_TRUE(a.path.empty());
  // Stream utilization is still reported (busy/idle need no replay).
  EXPECT_FALSE(a.streams.empty());
}

TEST(Analysis, EmptyTraceIsInvalidButHarmless) {
  Device dev(dyadic_model());
  Tracer tracer;
  dev.set_tracer(&tracer);
  const Analysis a = analyze_trace(tracer, dev.model());
  EXPECT_FALSE(a.valid);
  EXPECT_EQ(a.makespan, 0.0);
  EXPECT_TRUE(a.path.empty());
  EXPECT_TRUE(a.streams.empty());
}

// -- histograms -------------------------------------------------------------

TEST(Histogram, PercentilesExactOnKnownInputs) {
  Histogram h;
  // 100 observations: 1.0 x50, 2.0 x40, 8.0 x10. Bucket uppers are exact
  // powers of two (bucket_upper(8k) == 2^k), so the percentile values
  // are exact.
  for (int i = 0; i < 50; ++i) h.observe(1.0);
  for (int i = 0; i < 40; ++i) h.observe(2.0);
  for (int i = 0; i < 10; ++i) h.observe(8.0);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1.0);
  EXPECT_EQ(h.max(), 8.0);
  EXPECT_EQ(h.sum(), 50.0 + 80.0 + 80.0);
  EXPECT_EQ(h.percentile(0.50), 1.0);  // rank 50 is the last 1.0
  EXPECT_EQ(h.percentile(0.51), 2.0);
  EXPECT_EQ(h.percentile(0.90), 2.0);  // rank 90 is the last 2.0
  EXPECT_EQ(h.percentile(0.91), 8.0);
  EXPECT_EQ(h.percentile(0.99), 8.0);
  EXPECT_EQ(h.percentile(1.00), 8.0);
}

TEST(Histogram, BucketBoundariesAreHalfOpen) {
  // bucket b covers (upper(b-1), upper(b)]: an exact power of two lands
  // in its own bucket, a nudge above in the next.
  EXPECT_EQ(Histogram::bucket_upper(Histogram::bucket_index(1.0)), 1.0);
  EXPECT_EQ(Histogram::bucket_upper(Histogram::bucket_index(2.0)), 2.0);
  EXPECT_GT(Histogram::bucket_index(std::nextafter(2.0, 3.0)),
            Histogram::bucket_index(2.0));
  EXPECT_LE(Histogram::bucket_index(std::nextafter(2.0, 1.0)),
            Histogram::bucket_index(2.0));
  for (double v : {1e-9, 3.7e-5, 0.125, 1.0, 7.5, 1e6}) {
    const int b = Histogram::bucket_index(v);
    EXPECT_LE(v, Histogram::bucket_upper(b));
    EXPECT_GT(v, Histogram::bucket_upper(b - 1));
  }
}

TEST(Histogram, NonPositiveAndNaNLandInUnderflow) {
  Histogram h;
  h.observe(0.0);
  h.observe(-1.0);
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(4.0);
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.underflow(), 3);
  EXPECT_EQ(h.percentile(0.5), 0.0);   // rank 2 is in the underflow mass
  EXPECT_EQ(h.percentile(0.99), 4.0);  // rank 4 is the real observation
}

TEST(Histogram, TracerRegistryAccumulates) {
  Tracer t;
  t.observe("phase.a_s", 1.0);
  t.observe("phase.a_s", 2.0);
  t.observe("phase.b_s", 0.5);
  EXPECT_EQ(t.histograms().size(), 2u);
  EXPECT_EQ(t.histogram("phase.a_s").count(), 2);
  EXPECT_EQ(t.histogram("phase.b_s").count(), 1);
  t.clear();
  EXPECT_TRUE(t.histograms().empty());
}

// -- analysis on/off invariance ---------------------------------------------

TEST(Analysis, AnalysisOnOffLeavesSimulatedTimelineIdentical) {
  // The analyzer is a pure post-processing pass: running it (or not)
  // must not change a single simulated time. Run the same program on a
  // traced device (analysis executed) and an untraced one; the final
  // clocks must agree bitwise — the same invariant the fig10 bench's
  // default (untraced) output relies on.
  Device traced(dyadic_model());
  Tracer tracer;
  traced.set_tracer(&tracer);
  const double t_traced = run_dag(traced);
  const Analysis a = analyze_trace(tracer, traced.model());
  ASSERT_TRUE(a.valid);

  Device plain(dyadic_model());
  const double t_plain = run_dag(plain);
  EXPECT_EQ(t_traced, t_plain);
}

TEST(Analysis, EnvKnobTogglesSummaryObjectOnly) {
  // IRRLU_TRACE_ANALYSIS=0 drops the "analysis" object from the summary
  // JSON; everything else (the rows) stays byte-equivalent.
  Device dev(dyadic_model());
  Tracer tracer;
  dev.set_tracer(&tracer);
  run_dag(dev);

  const std::string on = "analysis_env_on.json";
  const std::string off = "analysis_env_off.json";
  ::unsetenv("IRRLU_TRACE_ANALYSIS");
  write_summary_json(on, tracer, dev.model());
  ::setenv("IRRLU_TRACE_ANALYSIS", "0", 1);
  write_summary_json(off, tracer, dev.model());
  ::unsetenv("IRRLU_TRACE_ANALYSIS");

  const AnalysisSummary with = read_analysis_summary(on);
  EXPECT_TRUE(with.present);
  EXPECT_TRUE(with.valid);
  EXPECT_EQ(with.makespan, max_sim_end(tracer));
  EXPECT_EQ(with.critical_path_seconds, with.makespan);
  EXPECT_FALSE(with.kernels.empty());
  EXPECT_FALSE(with.streams.empty());
  const AnalysisSummary without = read_analysis_summary(off);
  EXPECT_FALSE(without.present);

  // The rows payload is unaffected by the knob.
  const auto rows_on = read_summary_json(on);
  const auto rows_off = read_summary_json(off);
  ASSERT_EQ(rows_on.size(), rows_off.size());
  for (std::size_t i = 0; i < rows_on.size(); ++i) {
    EXPECT_EQ(rows_on[i].kernel, rows_off[i].kernel);
    EXPECT_EQ(rows_on[i].sim_seconds, rows_off[i].sim_seconds);
  }
  std::remove(on.c_str());
  std::remove(off.c_str());
}

// -- exporters --------------------------------------------------------------

TEST(Analysis, SummaryRoundTripCarriesWhatIfsAndHistograms) {
  Device dev(dyadic_model());
  Tracer tracer;
  dev.set_tracer(&tracer);
  run_dag(dev);
  tracer.observe("service.factor_s", 0.5);
  tracer.observe("service.factor_s", 1.0);

  const std::string path = "analysis_roundtrip.json";
  write_summary_json(path, tracer, dev.model());

  const AnalysisSummary a = read_analysis_summary(path);
  ASSERT_TRUE(a.present);
  EXPECT_FALSE(a.what_ifs.empty());
  for (const auto& wi : a.what_ifs) {
    EXPECT_EQ(wi.speedup_k, 2.0);
    EXPECT_GE(wi.bound, wi.speedup);
  }
  const HistogramsSummary h = read_histograms_summary(path);
  ASSERT_TRUE(h.present);
  ASSERT_EQ(h.rows.size(), 1u);
  EXPECT_EQ(h.rows[0].name, "service.factor_s");
  EXPECT_EQ(h.rows[0].count, 2);
  // p50 rank 1 is the 0.5 sample; 0.5 == 2^-1 is an exact bucket upper.
  EXPECT_EQ(h.rows[0].p50, 0.5);
  EXPECT_EQ(h.rows[0].p99, 1.0);
  EXPECT_EQ(h.rows[0].sum, 1.5);
  std::remove(path.c_str());
}

TEST(Analysis, ChromeTraceGainsUtilizationCounterTrack) {
  Device dev(dyadic_model());
  Tracer tracer;
  dev.set_tracer(&tracer);
  run_dag(dev);

  const std::string path = "analysis_chrome.json";
  write_chrome_trace(path, tracer, dev.model());
  long counters = 0;
  for (const ChromeEvent& e : read_chrome_trace(path)) {
    if (e.pid != 4) continue;
    if (e.ph == "C") ++counters;
  }
  // One sample per launch end.
  EXPECT_EQ(counters, static_cast<long>(tracer.launches().size()));
  std::remove(path.c_str());
}
