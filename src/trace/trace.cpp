#include "trace/trace.hpp"

#include <algorithm>

namespace irrlu::trace {

Tracer::Tracer(std::size_t reserve_launches, std::size_t max_launches,
               std::size_t max_mem_events)
    : max_launches_(max_launches),
      max_mem_events_(max_mem_events),
      mem_epoch_(std::chrono::steady_clock::now()) {
  launches_.reserve(std::min(reserve_launches, max_launches));
}

int Tracer::intern_kernel(const char* name) {
  const auto [it, inserted] =
      name_ids_.try_emplace(name, static_cast<int>(names_.size()));
  if (inserted) names_.push_back(it->first);
  return it->second;
}

void Tracer::on_launch(const LaunchRecord& r) {
  max_stream_ = std::max(max_stream_, r.stream);
  if (launches_.size() >= max_launches_) {
    ++dropped_;
    return;
  }
  launches_.push_back(r);
  launches_.back().seq = next_seq_++;
}

void Tracer::on_sync(int stream, double host_begin, double host_end) {
  syncs_.push_back({next_seq_++, stream, host_begin, host_end});
}

void Tracer::on_event(bool is_wait, int stream, double time, int event_id) {
  events_.push_back({next_seq_++, is_wait, stream, event_id, time});
}

int Tracer::push_scope(std::string_view label) {
  const int parent = current_scope_;
  auto key = std::make_pair(parent, std::string(label));
  const auto it = scope_ids_.find(key);
  int id;
  if (it == scope_ids_.end()) {
    id = static_cast<int>(scope_nodes_.size());
    ScopeNode node;
    node.label = key.second;
    node.parent = parent;
    node.depth =
        parent < 0 ? 0
                   : scope_nodes_[static_cast<std::size_t>(parent)].depth + 1;
    scope_nodes_.push_back(std::move(node));
    scope_ids_.emplace(std::move(key), id);
  } else {
    id = it->second;
  }
  ++scope_nodes_[static_cast<std::size_t>(id)].entries;
  scope_stack_.push_back(id);
  current_scope_ = id;
  return id;
}

void Tracer::pop_scope(double wall_seconds) {
  if (scope_stack_.empty()) return;  // tolerate unbalanced pops
  scope_nodes_[static_cast<std::size_t>(scope_stack_.back())].wall_seconds +=
      wall_seconds;
  scope_stack_.pop_back();
  current_scope_ = scope_stack_.empty() ? -1 : scope_stack_.back();
}

void Tracer::add_counter(std::string_view name, double value) {
  counters_[std::string(name)] += value;
}

void Tracer::max_counter(std::string_view name, double value) {
  auto [it, inserted] = counters_.try_emplace(std::string(name), value);
  if (!inserted) it->second = std::max(it->second, value);
}

void Tracer::observe(std::string_view name, double value) {
  histogram(name).observe(value);
}

Histogram& Tracer::histogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

int Tracer::intern_mem_tag(std::string_view tag) {
  const auto it = mem_tag_ids_.find(std::string(tag));
  if (it != mem_tag_ids_.end()) return it->second;
  const int id = static_cast<int>(mem_tag_names_.size());
  mem_tag_names_.emplace_back(tag);
  mem_tag_stats_.emplace_back();
  mem_tag_ids_.emplace(mem_tag_names_.back(), id);
  return id;
}

void Tracer::record_mem_event(bool is_free, int tag, std::size_t bytes,
                              double sim_time, std::size_t in_use_after) {
  // Aggregate stats stay exact past the event cap.
  mem_current_bytes_ = in_use_after;
  mem_peak_bytes_ = std::max(mem_peak_bytes_, in_use_after);
  if (tag >= 0) {
    MemTagStats& st = mem_tag_stats_[static_cast<std::size_t>(tag)];
    if (is_free) {
      ++st.frees;
      st.current_bytes -= std::min(st.current_bytes, bytes);
    } else {
      ++st.allocs;
      st.current_bytes += bytes;
      st.lifetime_bytes += bytes;
      st.peak_bytes = std::max(st.peak_bytes, st.current_bytes);
    }
  }
  if (mem_events_.size() >= max_mem_events_) {
    ++dropped_mem_;
    return;
  }
  MemEventRecord r;
  r.seq = next_seq_++;
  r.is_free = is_free;
  r.tag = tag;
  r.bytes = bytes;
  r.in_use_after = in_use_after;
  r.sim_time = sim_time;
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - mem_epoch_)
                       .count();
  mem_events_.push_back(r);
}

void Tracer::on_alloc(int tag, std::size_t bytes, double sim_time,
                      std::size_t in_use_after) {
  record_mem_event(false, tag, bytes, sim_time, in_use_after);
}

void Tracer::on_free(int tag, std::size_t bytes, double sim_time,
                     std::size_t in_use_after) {
  record_mem_event(true, tag, bytes, sim_time, in_use_after);
}

std::string Tracer::scope_path(int id) const {
  if (id < 0) return {};
  std::vector<const std::string*> parts;
  for (int s = id; s >= 0;
       s = scope_nodes_[static_cast<std::size_t>(s)].parent)
    parts.push_back(&scope_nodes_[static_cast<std::size_t>(s)].label);
  std::string path;
  for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
    if (!path.empty()) path += '/';
    path += **it;
  }
  return path;
}

bool Tracer::scope_within(int id, int ancestor) const {
  for (int s = id; s >= 0;
       s = scope_nodes_[static_cast<std::size_t>(s)].parent)
    if (s == ancestor) return true;
  return false;
}

void Tracer::clear() {
  launches_.clear();
  syncs_.clear();
  events_.clear();
  next_seq_ = 0;
  dropped_ = 0;
  max_stream_ = 0;
  names_.clear();
  name_ids_.clear();
  scope_nodes_.clear();
  scope_ids_.clear();
  scope_stack_.clear();
  current_scope_ = -1;
  counters_.clear();
  histograms_.clear();
  mem_events_.clear();
  dropped_mem_ = 0;
  mem_tag_names_.clear();
  mem_tag_ids_.clear();
  mem_tag_stats_.clear();
  mem_peak_bytes_ = 0;
  mem_current_bytes_ = 0;
}

}  // namespace irrlu::trace
