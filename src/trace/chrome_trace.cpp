#include "trace/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/error.hpp"
#include "common/json.hpp"
#include "gpusim/device_model.hpp"
#include "trace/analysis.hpp"
#include "trace/memory.hpp"
#include "trace/trace.hpp"

namespace irrlu::trace {

namespace {

constexpr double kToMicros = 1e6;  // simulated seconds -> trace microseconds

void meta_name_event(json::Writer& w, const char* key, int pid, int tid,
                     const std::string& value, bool thread) {
  w.begin_object(/*compact=*/true);
  w.kv("name", key);
  w.kv("ph", "M");
  w.kv_int("pid", pid);
  if (thread) w.kv_int("tid", tid);
  w.key("args");
  w.begin_object(true);
  w.kv("name", value);
  w.end_object();
  w.end_object();
}

}  // namespace

void write_chrome_trace(const std::string& path, const Tracer& tracer,
                        const gpusim::DeviceModel& model) {
  FILE* f = std::fopen(path.c_str(), "w");
  IRRLU_CHECK_MSG(f != nullptr, "trace: cannot open " << path);
  json::Writer w(f);

  w.begin_object();
  w.key("otherData");
  w.begin_object();
  w.kv("schema", "irrlu-chrome-trace-v1");
  w.kv("device", model.name);
  w.kv_int("launches", static_cast<long long>(tracer.launches().size()));
  w.kv_int("dropped_launches", tracer.dropped_launches());
  w.end_object();

  w.key("traceEvents");
  w.begin_array();

  // --- track metadata ----------------------------------------------------
  meta_name_event(w, "process_name", 0, 0, "host", false);
  meta_name_event(w, "process_name", 1, 0, "device (" + model.name + ")",
                  false);
  meta_name_event(w, "process_name", 2, 0, "scopes", false);
  if (!tracer.mem_events().empty())
    meta_name_event(w, "process_name", 3, 0, "memory", false);
  if (!tracer.launches().empty())
    meta_name_event(w, "process_name", 4, 0, "utilization", false);
  meta_name_event(w, "thread_name", 0, 0, "host timeline", true);
  for (int s = 0; s <= tracer.max_stream_seen(); ++s)
    meta_name_event(w, "thread_name", 1, s,
                    "stream " + std::to_string(s), true);

  // --- kernel launches: one B/E pair per launch on its stream track ------
  // Launches on one stream never overlap (the stream cursor is monotone),
  // so B/E pairs nest trivially per track.
  for (const LaunchRecord& r : tracer.launches()) {
    const std::string& name = tracer.kernel_name(r.name_id);
    w.begin_object(true);
    w.kv("name", name);
    w.kv("cat", "kernel");
    w.kv("ph", "B");
    w.kv("ts", r.sim_start * kToMicros, "%.6f");
    w.kv_int("pid", 1);
    w.kv_int("tid", r.stream);
    w.key("args");
    w.begin_object(true);
    w.kv("scope", tracer.scope_path(r.scope));
    w.kv_int("blocks", r.blocks);
    w.kv_int("smem_bytes", static_cast<long long>(r.smem_bytes));
    w.kv("flops", r.flops, "%.0f");
    w.kv("bytes", r.bytes, "%.0f");
    w.kv("excl_us", r.excl_seconds * kToMicros, "%.6f");
    w.kv("host_issue_us", r.host_issue * kToMicros, "%.6f");
    w.kv("wall_us", r.wall_seconds * kToMicros, "%.3f");
    w.end_object();
    w.end_object();

    w.begin_object(true);
    w.kv("name", name);
    w.kv("cat", "kernel");
    w.kv("ph", "E");
    w.kv("ts", r.sim_end * kToMicros, "%.6f");
    w.kv_int("pid", 1);
    w.kv_int("tid", r.stream);
    w.end_object();
  }

  // --- host synchronization intervals ------------------------------------
  for (const SyncRecord& s : tracer.syncs()) {
    const std::string name =
        s.stream < 0 ? "synchronize_all"
                     : "synchronize(stream " + std::to_string(s.stream) + ")";
    w.begin_object(true);
    w.kv("name", name);
    w.kv("cat", "sync");
    w.kv("ph", "B");
    w.kv("ts", s.host_begin * kToMicros, "%.6f");
    w.kv_int("pid", 0);
    w.kv_int("tid", 0);
    w.end_object();
    w.begin_object(true);
    w.kv("name", name);
    w.kv("cat", "sync");
    w.kv("ph", "E");
    w.kv("ts", s.host_end * kToMicros, "%.6f");
    w.kv_int("pid", 0);
    w.kv_int("tid", 0);
    w.end_object();
  }

  // --- event record/wait instants ----------------------------------------
  for (const EventRecord& e : tracer.events()) {
    w.begin_object(true);
    w.kv("name", e.is_wait ? "event_wait" : "event_record");
    w.kv("cat", "event");
    w.kv("ph", "i");
    w.kv("s", "t");
    w.kv("ts", e.time * kToMicros, "%.6f");
    w.kv_int("pid", 1);
    w.kv_int("tid", e.stream);
    w.end_object();
  }

  // --- scope spans, derived from attributed launches ----------------------
  const auto& nodes = tracer.scopes();
  std::vector<double> lo(nodes.size(), std::numeric_limits<double>::max());
  std::vector<double> hi(nodes.size(), -1);
  std::vector<long> nlaunch(nodes.size(), 0);
  std::vector<double> nflops(nodes.size(), 0), nbytes(nodes.size(), 0);
  for (const LaunchRecord& r : tracer.launches())
    for (int s = r.scope; s >= 0;
         s = nodes[static_cast<std::size_t>(s)].parent) {
      const auto i = static_cast<std::size_t>(s);
      lo[i] = std::min(lo[i], r.sim_start);
      hi[i] = std::max(hi[i], r.sim_end);
      ++nlaunch[i];
      nflops[i] += r.flops;
      nbytes[i] += r.bytes;
    }
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nlaunch[i] == 0) continue;  // scope enqueued no device work
    w.begin_object(true);
    w.kv("name", nodes[i].label);
    w.kv("cat", "scope");
    w.kv("ph", "X");
    w.kv("ts", lo[i] * kToMicros, "%.6f");
    w.kv("dur", (hi[i] - lo[i]) * kToMicros, "%.6f");
    w.kv_int("pid", 2);
    w.kv_int("tid", nodes[i].depth);
    w.key("args");
    w.begin_object(true);
    w.kv("scope", tracer.scope_path(static_cast<int>(i)));
    w.kv_int("launches", nlaunch[i]);
    w.kv("flops", nflops[i], "%.0f");
    w.kv("bytes", nbytes[i], "%.0f");
    w.kv("wall_ms", nodes[i].wall_seconds * 1e3, "%.3f");
    w.end_object();
    w.end_object();
  }

  // --- memory counter tracks ----------------------------------------------
  write_memory_counter_events(w, tracer);

  // --- per-stream busy-fraction counter tracks ----------------------------
  write_utilization_counter_events(w, tracer);

  w.end_array();
  w.end_object();
  std::fprintf(f, "\n");
  std::fclose(f);
}

std::vector<ChromeEvent> read_chrome_trace(const std::string& path) {
  const json::Value doc = json::parse_file(path);
  const json::Value* events = doc.find("traceEvents");
  IRRLU_CHECK_MSG(events != nullptr && events->is_array(),
                  "trace: " << path << " has no traceEvents array");
  std::vector<ChromeEvent> out;
  out.reserve(events->items.size());
  for (const json::Value& e : events->items) {
    IRRLU_CHECK_MSG(e.is_object(), "trace: traceEvents entry is not object");
    ChromeEvent ev;
    ev.name = e.string_or("name", "");
    ev.ph = e.string_or("ph", "");
    ev.cat = e.string_or("cat", "");
    ev.ts = e.number_or("ts", 0);
    ev.dur = e.number_or("dur", 0);
    ev.pid = static_cast<int>(e.number_or("pid", 0));
    ev.tid = static_cast<int>(e.number_or("tid", 0));
    if (const json::Value* args = e.find("args")) {
      ev.arg_scope = args->string_or("scope", "");
      ev.arg_bytes = args->number_or("bytes", 0);
    }
    out.push_back(std::move(ev));
  }
  return out;
}

}  // namespace irrlu::trace
