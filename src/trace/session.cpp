#include "trace/session.hpp"

#include <cstdlib>

#include "gpusim/device.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/report.hpp"

namespace irrlu::trace {

TraceSession::TraceSession(gpusim::Device& dev, std::string path)
    : path_(std::move(path)) {
  if (path_.empty()) {
    const char* env = std::getenv("IRRLU_TRACE");
    if (env != nullptr) path_ = env;
  }
  if (path_.empty()) return;  // disabled: the device keeps its null tracer
  dev_ = &dev;
  tracer_ = std::make_unique<Tracer>();
  dev_->set_tracer(tracer_.get());
}

TraceSession::~TraceSession() {
  if (!enabled()) return;
  write();
  if (dev_->tracer() == tracer_.get()) dev_->set_tracer(nullptr);
}

std::string TraceSession::summary_path() const {
  const std::string suffix = ".json";
  if (path_.size() > suffix.size() &&
      path_.compare(path_.size() - suffix.size(), suffix.size(), suffix) == 0)
    return path_.substr(0, path_.size() - suffix.size()) + ".summary.json";
  return path_ + ".summary.json";
}

void TraceSession::write() {
  if (!enabled()) return;
  write_chrome_trace(path_, *tracer_, dev_->model());
  write_summary_json(summary_path(), *tracer_, dev_->model());
}

}  // namespace irrlu::trace
