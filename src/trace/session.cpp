#include "trace/session.hpp"

#include <cstdlib>
#include <fstream>

#include "gpusim/device.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/report.hpp"

namespace irrlu::trace {

TraceSession::TraceSession(gpusim::Device& dev, std::string path)
    : path_(std::move(path)) {
  if (path_.empty()) {
    const char* env = std::getenv("IRRLU_TRACE");
    if (env != nullptr) path_ = env;
  }
  if (path_.empty()) return;  // disabled: the device keeps its null tracer
  dev_ = &dev;
  tracer_ = std::make_unique<Tracer>();
  dev_->set_tracer(tracer_.get());
}

TraceSession::~TraceSession() {
  if (!enabled()) return;
  write();
  if (dev_->tracer() == tracer_.get()) dev_->set_tracer(nullptr);
}

namespace {

std::string sibling_path(const std::string& path, const std::string& ext) {
  const std::string suffix = ".json";
  if (path.size() > suffix.size() &&
      path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0)
    return path.substr(0, path.size() - suffix.size()) + ext;
  return path + ext;
}

}  // namespace

std::string TraceSession::summary_path() const {
  return sibling_path(path_, ".summary.json");
}

std::string TraceSession::report_path() const {
  return sibling_path(path_, ".report.txt");
}

void TraceSession::write() {
  if (!enabled()) return;
  write_chrome_trace(path_, *tracer_, dev_->model());
  write_summary_json(summary_path(), *tracer_, dev_->model());
  std::ofstream report(report_path());
  if (report) print_report(report, *tracer_, dev_->model());
}

}  // namespace irrlu::trace
