// chrome://tracing JSON export of a Tracer's records, plus a reader used
// by tests/tools to validate the emitted file.
//
// Layout (Trace Event Format, "JSON object" flavor):
//   pid 0 "host"    — one track: synchronize() intervals (B/E pairs) and
//                     Event record/wait instants ("i").
//   pid 1 "device"  — one track per stream (tid = stream id): every kernel
//                     launch as a B/E pair in simulated time, with
//                     blocks/smem/flops/bytes and the scope path as args.
//   pid 2 "scopes"  — scope spans as complete ("X") events, tid = scope
//                     depth; the span is derived from the launches
//                     attributed to the scope and its descendants.
//   pid 3 "memory"  — counter ("C") tracks: total "bytes_in_use" plus one
//                     "mem:<tag>" track per allocation tag (see
//                     trace/memory.hpp), sampled at every alloc/free.
// Timestamps are simulated seconds scaled to microseconds.
#pragma once

#include <string>
#include <vector>

namespace irrlu::gpusim {
struct DeviceModel;
}

namespace irrlu::trace {

class Tracer;

void write_chrome_trace(const std::string& path, const Tracer& tracer,
                        const gpusim::DeviceModel& model);

/// One event as read back from a Chrome-trace file (subset of fields).
struct ChromeEvent {
  std::string name;
  std::string ph;   ///< "B", "E", "X", "i", "M"
  std::string cat;
  double ts = 0;    ///< microseconds
  double dur = 0;   ///< microseconds ("X" only)
  int pid = 0;
  int tid = 0;
  std::string arg_scope;  ///< args.scope when present
  double arg_bytes = 0;   ///< args.bytes when present (memory counters)
};

/// Parses a Chrome-trace file written by write_chrome_trace (throws
/// irrlu::Error on malformed JSON or missing traceEvents).
std::vector<ChromeEvent> read_chrome_trace(const std::string& path);

}  // namespace irrlu::trace
