// Memory-observability exporters over the Tracer's allocation timeline
// (see DESIGN.md §9): per-tag peak attribution for the text report,
// Chrome-trace counter tracks for Perfetto, and the "memory" object of
// the summary JSON (schema v2) with a parse-back reader.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace irrlu::json {
class Writer;
}

namespace irrlu::trace {

class Tracer;

/// One tag's aggregate allocation statistics, as exported/parsed.
struct MemTagRow {
  std::string tag;
  long allocs = 0;
  long frees = 0;
  std::size_t current_bytes = 0;
  std::size_t peak_bytes = 0;
  std::size_t lifetime_bytes = 0;
};

/// The summary JSON "memory" object: device-wide peaks plus the per-tag
/// table (sorted by peak_bytes, descending).
struct MemorySummary {
  bool present = false;  ///< reader: whether the file carried the object
  std::size_t peak_bytes = 0;
  std::size_t current_bytes = 0;
  long events = 0;  ///< recorded allocation/free events
  long dropped_events = 0;
  std::vector<MemTagRow> tags;
};

/// Builds the summary from a live tracer.
MemorySummary memory_summary(const Tracer& tracer);

/// Per-tag peak-attribution table (appended to the trace text report when
/// allocation events were recorded).
void print_memory_report(std::ostream& out, const Tracer& tracer);

/// Writes the "memory" object value (the caller emits the key).
void write_memory_json(json::Writer& w, const Tracer& tracer);

/// Emits Chrome-trace counter events ("ph":"C", pid 3): total bytes-in-use
/// plus one "mem:<tag>" track per tag, on the simulated timeline next to
/// the kernel spans. Must be called inside the traceEvents array.
void write_memory_counter_events(json::Writer& w, const Tracer& tracer);

/// Reads the "memory" object back from a summary JSON file; returns a
/// summary with `present == false` when the file has none (v1 files).
MemorySummary read_memory_summary(const std::string& summary_path);

}  // namespace irrlu::trace
