#include "trace/analysis.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <string_view>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "gpusim/device_model.hpp"
#include "trace/trace.hpp"

namespace irrlu::trace {

const char* to_string(BindKind k) {
  switch (k) {
    case BindKind::kStart: return "start";
    case BindKind::kDispatch: return "dispatch";
    case BindKind::kStream: return "stream";
    case BindKind::kWait: return "wait";
    case BindKind::kSync: return "sync";
    case BindKind::kOccupancy: return "occupancy";
  }
  return "?";
}

namespace {

// ---------------------------------------------------------------------------
// Record-stream merge: every Tracer record kind carries a global sequence
// number; the replay consumes them in that order.

enum class RecKind { kLaunch, kSync, kEvent, kMem };

struct RecRef {
  long seq;
  RecKind kind;
  std::size_t index;
};

std::vector<RecRef> merged_records(const Tracer& t) {
  std::vector<RecRef> recs;
  recs.reserve(t.launches().size() + t.syncs().size() + t.events().size() +
               t.mem_events().size());
  for (std::size_t i = 0; i < t.launches().size(); ++i)
    recs.push_back({t.launches()[i].seq, RecKind::kLaunch, i});
  for (std::size_t i = 0; i < t.syncs().size(); ++i)
    recs.push_back({t.syncs()[i].seq, RecKind::kSync, i});
  for (std::size_t i = 0; i < t.events().size(); ++i)
    recs.push_back({t.events()[i].seq, RecKind::kEvent, i});
  for (std::size_t i = 0; i < t.mem_events().size(); ++i)
    recs.push_back({t.mem_events()[i].seq, RecKind::kMem, i});
  std::sort(recs.begin(), recs.end(),
            [](const RecRef& a, const RecRef& b) { return a.seq < b.seq; });
  return recs;
}

// ---------------------------------------------------------------------------
// Baseline replay: rebuilds the Device's timelines from the records and
// captures, per launch, its binding constraint and both dependency-chain
// predecessors. The replay must reproduce every recorded time bitwise
// (the arithmetic is the same sequence of operations Device performed);
// any mismatch means the record stream is not the whole story.

struct LaunchMeta {
  double base_earliest = 0;  ///< max(dispatch_done + latency, stream cursor)
  double extra = 0;          ///< sim_start - base_earliest (occupancy delay)
  double cursor_before = 0;  ///< stream constraint value at launch
  double dispatch_done = 0;
  BindKind via = BindKind::kStart;  ///< what bound the start
  int spred = -1;                   ///< launch that set the stream cursor
  bool spred_wait = false;          ///< ... through a cross-stream wait
  int hpred = -1;                   ///< previous host-chain launch
  double hanchor = 0;  ///< time hpred's influence entered the host line
  BindKind hvia = BindKind::kStart;  ///< kDispatch (launch) / kSync (join)
};

struct Baseline {
  bool ok = false;
  std::string caveat;
  std::vector<LaunchMeta> meta;  ///< aligned with Tracer::launches()
};

struct EvInfo {
  double time = 0;
  int setter = -1;
};

Baseline run_baseline(const Tracer& t, const gpusim::DeviceModel& m) {
  Baseline b;
  if (t.dropped_launches() > 0) {
    b.caveat = "trace capped: " + std::to_string(t.dropped_launches()) +
               " launches dropped, the dependency DAG is incomplete";
    return b;
  }
  if (t.dropped_mem_events() > 0) {
    b.caveat = "trace capped: " + std::to_string(t.dropped_mem_events()) +
               " allocation events dropped, host time cannot be replayed";
    return b;
  }
  b.meta.resize(t.launches().size());

  double host = 0;
  std::vector<double> cursor;
  std::vector<int> setter;
  std::vector<char> via_wait;
  const auto ensure = [&](int s) {
    if (static_cast<int>(cursor.size()) <= s) {
      cursor.resize(static_cast<std::size_t>(s) + 1, 0.0);
      setter.resize(static_cast<std::size_t>(s) + 1, -1);
      via_wait.resize(static_cast<std::size_t>(s) + 1, 0);
    }
  };
  struct HostSetter {
    int launch = -1;
    double anchor = 0;
    BindKind via = BindKind::kStart;
  } hs;
  std::map<int, EvInfo> evs;

  for (const RecRef& rr : merged_records(t)) {
    switch (rr.kind) {
      case RecKind::kMem: {
        const MemEventRecord& r = t.mem_events()[rr.index];
        if (r.is_free) break;  // frees cost no simulated host time
        host += m.alloc_overhead;
        if (host != r.sim_time) {
          b.caveat = "allocation record does not replay (timeline reset "
                     "mid-trace, or work predates the tracer)";
          return b;
        }
        break;
      }
      case RecKind::kEvent: {
        const EventRecord& r = t.events()[rr.index];
        ensure(r.stream);
        const auto s = static_cast<std::size_t>(r.stream);
        if (!r.is_wait) {
          if (cursor[s] != r.time) {
            b.caveat = "event record does not replay";
            return b;
          }
          if (r.event_id >= 0) evs[r.event_id] = {cursor[s], setter[s]};
        } else {
          EvInfo ev;  // unknown/default events carry time 0 (a no-op wait)
          if (r.event_id >= 0) {
            const auto it = evs.find(r.event_id);
            if (it != evs.end()) ev = it->second;
          }
          if (ev.time > cursor[s]) {
            cursor[s] = ev.time;
            setter[s] = ev.setter;
            via_wait[s] = 1;
          }
          if (cursor[s] != r.time) {
            b.caveat = "event wait does not replay (event recorded before "
                       "the tracer attached?)";
            return b;
          }
        }
        break;
      }
      case RecKind::kSync: {
        const SyncRecord& r = t.syncs()[rr.index];
        if (host != r.host_begin) {
          b.caveat = "synchronization record does not replay";
          return b;
        }
        double joined = 0;
        int jsetter = -1;
        if (r.stream >= 0) {
          ensure(r.stream);
          joined = cursor[static_cast<std::size_t>(r.stream)];
          jsetter = setter[static_cast<std::size_t>(r.stream)];
        } else {
          for (std::size_t s = 0; s < cursor.size(); ++s)
            if (cursor[s] > joined) {
              joined = cursor[s];
              jsetter = setter[s];
            }
        }
        if (joined > host && jsetter >= 0)
          hs = {jsetter, joined, BindKind::kSync};
        host = std::max(host, joined) + m.stream_sync_overhead;
        if (host != r.host_end) {
          b.caveat = "synchronization record does not replay";
          return b;
        }
        break;
      }
      case RecKind::kLaunch: {
        const LaunchRecord& r = t.launches()[rr.index];
        ensure(r.stream);
        const auto s = static_cast<std::size_t>(r.stream);
        if (host != r.host_issue) {
          b.caveat = "launch record does not replay (timeline reset "
                     "mid-trace, or work predates the tracer)";
          return b;
        }
        const double dd = host + m.host_dispatch_overhead;
        host = dd;
        const double c_disp = dd + m.device_launch_latency;
        const double c_stream = cursor[s];
        LaunchMeta& mt = b.meta[rr.index];
        mt.dispatch_done = dd;
        mt.cursor_before = c_stream;
        mt.hpred = hs.launch;
        mt.hanchor = hs.anchor;
        mt.hvia = hs.via;
        mt.spred = setter[s];
        mt.spred_wait = via_wait[s] != 0;
        if (c_stream >= c_disp)
          mt.via = mt.spred < 0 ? BindKind::kStart
                   : mt.spred_wait ? BindKind::kWait
                                   : BindKind::kStream;
        else
          mt.via = BindKind::kDispatch;
        mt.base_earliest = std::max(c_disp, c_stream);
        mt.extra = r.sim_start - mt.base_earliest;
        if (mt.extra < 0) {
          b.caveat = "launch starts before its replayed constraints";
          return b;
        }
        cursor[s] = r.sim_end;
        setter[s] = static_cast<int>(rr.index);
        via_wait[s] = 0;
        hs = {static_cast<int>(rr.index), dd, BindKind::kDispatch};
        break;
      }
    }
  }
  b.ok = true;
  return b;
}

// ---------------------------------------------------------------------------
// Scaled replay: same walk forward, but launch durations are multiplied
// by scale[i] and every derived time is recomputed. The one exception is
// exact reuse: a launch at scale 1 whose replayed earliest-start equals
// its baseline earliest-start takes its recorded times verbatim — by
// induction an all-ones replay reproduces the measured timeline
// bit-identically (the what-if(k=1) no-op guarantee). Occupancy delays
// are carried as the measured per-launch constants (`extra`): scaling a
// kernel class does not re-derive the SM slot schedule.

double run_scaled(const Tracer& t, const gpusim::DeviceModel& m,
                  const Baseline& b, const std::vector<double>& scale) {
  double host = 0;
  std::vector<double> cursor;
  const auto ensure = [&](int s) {
    if (static_cast<int>(cursor.size()) <= s)
      cursor.resize(static_cast<std::size_t>(s) + 1, 0.0);
  };
  std::map<int, double> evs;
  double makespan = 0;

  for (const RecRef& rr : merged_records(t)) {
    switch (rr.kind) {
      case RecKind::kMem:
        if (!t.mem_events()[rr.index].is_free) host += m.alloc_overhead;
        break;
      case RecKind::kEvent: {
        const EventRecord& r = t.events()[rr.index];
        ensure(r.stream);
        const auto s = static_cast<std::size_t>(r.stream);
        if (!r.is_wait) {
          if (r.event_id >= 0) evs[r.event_id] = cursor[s];
        } else {
          double et = 0;
          if (r.event_id >= 0) {
            const auto it = evs.find(r.event_id);
            if (it != evs.end()) et = it->second;
          }
          cursor[s] = std::max(cursor[s], et);
        }
        break;
      }
      case RecKind::kSync: {
        const SyncRecord& r = t.syncs()[rr.index];
        double joined = 0;
        if (r.stream >= 0) {
          ensure(r.stream);
          joined = cursor[static_cast<std::size_t>(r.stream)];
        } else {
          for (const double c : cursor) joined = std::max(joined, c);
        }
        host = std::max(host, joined) + m.stream_sync_overhead;
        break;
      }
      case RecKind::kLaunch: {
        const LaunchRecord& r = t.launches()[rr.index];
        ensure(r.stream);
        const auto s = static_cast<std::size_t>(r.stream);
        const LaunchMeta& mt = b.meta[rr.index];
        const double dd = host + m.host_dispatch_overhead;
        host = dd;
        const double earliest =
            std::max(dd + m.device_launch_latency, cursor[s]);
        const double k = scale.empty() ? 1.0 : scale[rr.index];
        double end;
        if (k == 1.0 && earliest == mt.base_earliest) {
          end = r.sim_end;  // exact reuse: inputs unchanged, output verbatim
        } else {
          const double start = earliest + mt.extra;
          end = start + (r.sim_end - r.sim_start) * k;
        }
        cursor[s] = end;
        makespan = std::max(makespan, end);
        break;
      }
    }
  }
  return makespan;
}

// ---------------------------------------------------------------------------
// Critical path: backward walk from the launch with the latest end,
// alternating between two modes. In "end mode" the node's kernel
// execution is on the path and its segment runs up to its sim_end; a
// node reached through the host dispatch chain is in "dispatch mode" —
// only its host dispatch segment is on the path (the kernel itself ran
// off-path), ending at its dispatch_done. Contributions telescope: each
// node contributes its exit time minus its predecessor's anchor time,
// so the sum over the path is exactly the makespan.

std::vector<CritNode> walk_path(const Tracer& t, const Baseline& b) {
  const auto& L = t.launches();
  if (L.empty()) return {};
  std::size_t tip = 0;
  for (std::size_t i = 1; i < L.size(); ++i)
    if (L[i].sim_end > L[tip].sim_end) tip = i;

  std::vector<CritNode> path;
  long node = static_cast<long>(tip);
  bool dmode = false;
  double T = L[tip].sim_end;
  while (node >= 0) {
    const auto ni = static_cast<std::size_t>(node);
    const LaunchRecord& r = L[ni];
    const LaunchMeta& mt = b.meta[ni];
    CritNode cn;
    cn.launch = ni;
    cn.kernel = t.kernel_name(r.name_id);
    cn.scope = t.scope_path(r.scope);

    long pred;
    double anchor;
    bool pred_dmode = false;
    if (dmode) {
      cn.via = BindKind::kDispatch;
      pred = mt.hpred;
      anchor = mt.hanchor;
      pred_dmode = mt.hvia == BindKind::kDispatch;
      cn.run_seconds = 0;
    } else {
      cn.via = mt.via;
      cn.run_seconds = r.sim_end - r.sim_start;
      cn.occupancy_seconds = mt.extra;
      switch (mt.via) {
        case BindKind::kStream:
        case BindKind::kWait:
          pred = mt.spred;
          anchor = mt.cursor_before;
          break;
        case BindKind::kDispatch:
          pred = mt.hpred;
          anchor = mt.hanchor;
          pred_dmode = mt.hvia == BindKind::kDispatch;
          break;
        default:
          pred = -1;
          anchor = 0;
          break;
      }
    }
    if (pred < 0) anchor = 0;  // chain bottoms out at the timeline start
    cn.start = anchor;
    cn.end = T;
    cn.contribution = T - anchor;
    cn.stall_seconds = cn.contribution - cn.run_seconds;
    path.push_back(std::move(cn));
    node = pred;
    dmode = pred_dmode;
    T = anchor;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void add_contribution(std::map<std::string, PathContribution>& rows,
                      const std::string& name, const CritNode& cn) {
  PathContribution& c = rows[name];
  c.name = name;
  ++c.launches;
  c.seconds += cn.contribution;
  c.run_seconds += cn.run_seconds;
  c.stall_seconds += cn.stall_seconds;
}

std::vector<PathContribution> sorted_rows(
    std::map<std::string, PathContribution>&& rows) {
  std::vector<PathContribution> out;
  out.reserve(rows.size());
  for (auto& [name, c] : rows) out.push_back(std::move(c));
  std::sort(out.begin(), out.end(),
            [](const PathContribution& a, const PathContribution& b) {
              if (a.seconds != b.seconds) return a.seconds > b.seconds;
              return a.name < b.name;
            });
  return out;
}

std::string scope_or_none(const std::string& path) {
  return path.empty() ? std::string("(none)") : path;
}

// Per-stream busy/idle over [0, makespan]. idle is computed as
// span - busy, so busy + idle equals the span exactly by construction;
// launches on one stream never overlap (the cursor is monotone), so
// busy <= span always holds.
void fill_streams(Analysis& a, const Tracer& t, const Baseline& b) {
  const auto& L = t.launches();
  if (L.empty()) return;
  const double span = a.makespan;
  const int nstreams = t.max_stream_seen() + 1;
  a.streams.assign(static_cast<std::size_t>(nstreams), {});
  std::vector<double> prev_end(static_cast<std::size_t>(nstreams), 0.0);
  std::vector<std::map<std::string, double>> waits(
      static_cast<std::size_t>(nstreams));
  std::vector<std::vector<StreamGap>> gaps(
      static_cast<std::size_t>(nstreams));

  const auto note_gap = [&](int stream, StreamGap g) {
    auto& u = a.streams[static_cast<std::size_t>(stream)];
    ++u.gaps;
    const double len = g.end - g.begin;
    u.largest_gap_seconds = std::max(u.largest_gap_seconds, len);
    u.gap_hist.observe(len);
    waits[static_cast<std::size_t>(stream)][g.scope] += len;
    gaps[static_cast<std::size_t>(stream)].push_back(std::move(g));
  };

  for (std::size_t i = 0; i < L.size(); ++i) {
    const LaunchRecord& r = L[i];
    const auto s = static_cast<std::size_t>(r.stream);
    StreamUtilization& u = a.streams[s];
    u.stream = r.stream;
    ++u.launches;
    u.busy_seconds += r.sim_end - r.sim_start;
    if (r.sim_start > prev_end[s]) {
      StreamGap g;
      g.begin = prev_end[s];
      g.end = r.sim_start;
      if (b.ok) {
        const LaunchMeta& mt = b.meta[i];
        // The tail [earliest, start) of a gap is occupancy; when the
        // explicit constraints were already met at the gap's start, the
        // whole gap is slot contention.
        g.via = mt.base_earliest <= g.begin ? BindKind::kOccupancy : mt.via;
        long blocker = static_cast<long>(i);
        if (mt.via == BindKind::kWait && mt.spred >= 0)
          blocker = mt.spred;
        else if (mt.via == BindKind::kDispatch && mt.hpred >= 0)
          blocker = mt.hpred;
        g.scope = scope_or_none(
            t.scope_path(L[static_cast<std::size_t>(blocker)].scope));
      } else {
        g.via = BindKind::kStart;
        g.scope = scope_or_none(t.scope_path(r.scope));
      }
      note_gap(r.stream, std::move(g));
    }
    prev_end[s] = std::max(prev_end[s], r.sim_end);
  }

  for (int s = 0; s < nstreams; ++s) {
    StreamUtilization& u = a.streams[static_cast<std::size_t>(s)];
    u.stream = s;
    if (span > prev_end[static_cast<std::size_t>(s)]) {
      // Trailing idle: the stream drained before the device finished.
      StreamGap g;
      g.begin = prev_end[static_cast<std::size_t>(s)];
      g.end = span;
      g.via = BindKind::kStart;
      g.scope = "(drain)";
      note_gap(s, std::move(g));
    }
    u.idle_seconds = span - u.busy_seconds;
    u.busy_fraction = span > 0 ? u.busy_seconds / span : 0.0;
    auto& gs = gaps[static_cast<std::size_t>(s)];
    std::sort(gs.begin(), gs.end(), [](const StreamGap& x, const StreamGap& y) {
      return x.end - x.begin > y.end - y.begin;
    });
    if (gs.size() > 5) gs.resize(5);
    u.top_gaps = std::move(gs);
    u.waits_on.assign(waits[static_cast<std::size_t>(s)].begin(),
                      waits[static_cast<std::size_t>(s)].end());
    std::sort(u.waits_on.begin(), u.waits_on.end(),
              [](const auto& x, const auto& y) {
                if (x.second != y.second) return x.second > y.second;
                return x.first < y.first;
              });
  }
}

}  // namespace

AnalysisOptions analysis_options_from_env() {
  AnalysisOptions opts;
  if (const char* v = std::getenv("IRRLU_TRACE_ANALYSIS"))
    opts.enabled = std::string_view(v) != "0";
  if (const char* v = std::getenv("IRRLU_TRACE_WHATIF")) {
    opts.whatif_speedup = std::atof(v);
    if (opts.whatif_speedup <= 1.0) opts.what_ifs = false;
  }
  if (const char* v = std::getenv("IRRLU_TRACE_TOPK"))
    opts.top_k = std::max(1, std::atoi(v));
  return opts;
}

ReplayResult replay_scaled(const Tracer& tracer,
                           const gpusim::DeviceModel& model,
                           const std::vector<double>& scale) {
  ReplayResult out;
  IRRLU_CHECK_MSG(scale.empty() || scale.size() == tracer.launches().size(),
                  "replay_scaled: scale size " << scale.size() << " != "
                                               << tracer.launches().size()
                                               << " launches");
  const Baseline b = run_baseline(tracer, model);
  if (!b.ok) {
    out.caveat = b.caveat;
    return out;
  }
  out.ok = true;
  out.makespan = run_scaled(tracer, model, b, scale);
  return out;
}

Analysis analyze_trace(const Tracer& tracer, const gpusim::DeviceModel& model,
                       const AnalysisOptions& opts) {
  Analysis a;
  const auto& L = tracer.launches();
  for (const LaunchRecord& r : L) a.makespan = std::max(a.makespan, r.sim_end);

  const Baseline b = run_baseline(tracer, model);
  a.valid = b.ok && !L.empty();
  a.caveat = b.caveat;
  if (b.ok && L.empty()) a.caveat = "no launches recorded";
  fill_streams(a, tracer, b);
  if (!a.valid) return a;

  a.path = walk_path(tracer, b);
  std::map<std::string, PathContribution> kern, scop;
  std::vector<char> on_path(L.size(), 0);
  for (const CritNode& cn : a.path) {
    a.critical_path_seconds += cn.contribution;
    on_path[cn.launch] = 1;
    if (cn.launch < opts.min_launch) continue;
    add_contribution(kern, cn.kernel, cn);
    add_contribution(scop, scope_or_none(cn.scope), cn);
  }
  // Slack: execution of a class that the path fully overlaps — how much
  // that class could slip without (to first order) moving the makespan.
  for (std::size_t i = opts.min_launch; i < L.size(); ++i) {
    if (on_path[i]) continue;
    const double dur = L[i].sim_end - L[i].sim_start;
    auto& kc = kern[tracer.kernel_name(L[i].name_id)];
    if (kc.name.empty()) kc.name = tracer.kernel_name(L[i].name_id);
    kc.slack_seconds += dur;
    const std::string sp = scope_or_none(tracer.scope_path(L[i].scope));
    auto& sc = scop[sp];
    if (sc.name.empty()) sc.name = sp;
    sc.slack_seconds += dur;
  }
  a.kernels = sorted_rows(std::move(kern));
  a.scopes = sorted_rows(std::move(scop));

  if (!opts.what_ifs || opts.whatif_speedup <= 1.0) return a;
  std::vector<std::string> scope_paths;  // per scope id, cached
  scope_paths.reserve(tracer.scopes().size());
  for (std::size_t s = 0; s < tracer.scopes().size(); ++s)
    scope_paths.push_back(tracer.scope_path(static_cast<int>(s)));
  const auto project = [&](WhatIf::Kind kind, const std::string& target) {
    std::vector<double> scale(L.size(), 1.0);
    std::vector<double> zero(L.size(), 1.0);
    bool any = false;
    for (std::size_t i = 0; i < L.size(); ++i) {
      bool hit;
      if (kind == WhatIf::Kind::kKernel) {
        hit = tracer.kernel_name(L[i].name_id) == target;
      } else {
        static const std::string kNoScope;
        const std::string& sp =
            L[i].scope >= 0 ? scope_paths[static_cast<std::size_t>(L[i].scope)]
                            : kNoScope;
        hit = sp == target || (sp.size() > target.size() &&
                               sp.compare(0, target.size(), target) == 0 &&
                               sp[target.size()] == '/');
      }
      if (hit) {
        scale[i] = 1.0 / opts.whatif_speedup;
        zero[i] = 0.0;
        any = true;
      }
    }
    if (!any) return;
    WhatIf wi;
    wi.kind = kind;
    wi.target = target;
    wi.speedup_k = opts.whatif_speedup;
    wi.projected_seconds = run_scaled(tracer, model, b, scale);
    wi.speedup =
        wi.projected_seconds > 0 ? a.makespan / wi.projected_seconds : 0.0;
    const double inf = run_scaled(tracer, model, b, zero);
    wi.bound = inf > 0 ? a.makespan / inf : 0.0;
    a.what_ifs.push_back(std::move(wi));
  };
  int n = 0;
  for (const PathContribution& c : a.kernels) {
    if (n >= opts.top_k || c.seconds <= 0) break;
    project(WhatIf::Kind::kKernel, c.name);
    ++n;
  }
  n = 0;
  for (const PathContribution& c : a.scopes) {
    if (n >= opts.top_k || c.seconds <= 0) break;
    if (c.name == "(none)") continue;
    project(WhatIf::Kind::kScope, c.name);
    ++n;
  }
  return a;
}

// ---------------------------------------------------------------------------
// Exporters.

void print_analysis_report(std::ostream& out, const Analysis& a, int top_k) {
  out << "\ncritical path: "
      << TextTable::fmt(a.critical_path_seconds * 1e3, 3) << " ms over "
      << a.path.size() << " nodes (makespan "
      << TextTable::fmt(a.makespan * 1e3, 3) << " ms)\n";
  if (!a.valid) {
    out << "  (analysis degraded: " << a.caveat << ")\n";
  } else {
    const auto rows = [&](const char* what,
                          const std::vector<PathContribution>& cs) {
      TextTable table({what, "on-path ms", "run ms", "stall ms", "slack ms",
                       "launches"});
      int n = 0;
      for (const PathContribution& c : cs) {
        if (n++ >= top_k) break;
        table.add_row(c.name, TextTable::fmt(c.seconds * 1e3, 3),
                      TextTable::fmt(c.run_seconds * 1e3, 3),
                      TextTable::fmt(c.stall_seconds * 1e3, 3),
                      TextTable::fmt(c.slack_seconds * 1e3, 3), c.launches);
      }
      table.print(out);
    };
    rows("kernel", a.kernels);
    rows("scope", a.scopes);
  }
  if (!a.streams.empty()) {
    out << "stream utilization:\n";
    TextTable table({"stream", "busy ms", "idle ms", "busy %", "gaps",
                     "largest gap ms", "longest wait on"});
    for (const StreamUtilization& u : a.streams)
      table.add_row(u.stream, TextTable::fmt(u.busy_seconds * 1e3, 3),
                    TextTable::fmt(u.idle_seconds * 1e3, 3),
                    TextTable::fmt(u.busy_fraction * 100, 1), u.gaps,
                    TextTable::fmt(u.largest_gap_seconds * 1e3, 3),
                    u.waits_on.empty() ? std::string("-")
                                       : u.waits_on.front().first);
    table.print(out);
  }
  if (!a.what_ifs.empty()) {
    out << "what-if projections (DAG replay with scaled durations):\n";
    TextTable table(
        {"target", "kind", "k", "projected ms", "speedup", "bound"});
    for (const WhatIf& wi : a.what_ifs)
      table.add_row(wi.target,
                    wi.kind == WhatIf::Kind::kKernel ? "kernel" : "scope",
                    TextTable::fmt(wi.speedup_k, 1),
                    TextTable::fmt(wi.projected_seconds * 1e3, 3),
                    TextTable::fmt(wi.speedup, 3), TextTable::fmt(wi.bound, 3));
    table.print(out);
  }
}

void write_analysis_json(json::Writer& w, const Analysis& a) {
  w.begin_object();
  w.kv_bool("valid", a.valid);
  if (!a.caveat.empty()) w.kv("caveat", a.caveat);
  w.kv("makespan_s", a.makespan, "%.12e");
  w.kv("critical_path_s", a.critical_path_seconds, "%.12e");
  w.kv_int("path_nodes", static_cast<long long>(a.path.size()));
  const auto rows = [&](const char* key,
                        const std::vector<PathContribution>& cs) {
    w.key(key);
    w.begin_array();
    int n = 0;
    for (const PathContribution& c : cs) {
      if (n++ >= 10) break;
      w.begin_object(/*compact=*/true);
      w.kv("name", c.name);
      w.kv_int("launches", c.launches);
      w.kv("seconds", c.seconds, "%.12e");
      w.kv("run_s", c.run_seconds, "%.12e");
      w.kv("stall_s", c.stall_seconds, "%.12e");
      w.kv("slack_s", c.slack_seconds, "%.12e");
      w.end_object();
    }
    w.end_array();
  };
  rows("kernels", a.kernels);
  rows("scopes", a.scopes);
  w.key("streams");
  w.begin_array();
  for (const StreamUtilization& u : a.streams) {
    w.begin_object(/*compact=*/true);
    w.kv_int("stream", u.stream);
    w.kv_int("launches", u.launches);
    w.kv("busy_s", u.busy_seconds, "%.12e");
    w.kv("idle_s", u.idle_seconds, "%.12e");
    w.kv("busy_fraction", u.busy_fraction, "%.6f");
    w.kv_int("gaps", u.gaps);
    w.kv("largest_gap_s", u.largest_gap_seconds, "%.12e");
    w.key("waits_on");
    w.begin_array(/*compact=*/true);
    int n = 0;
    for (const auto& [scope, seconds] : u.waits_on) {
      if (n++ >= 3) break;
      w.begin_object(true);
      w.kv("scope", scope);
      w.kv("seconds", seconds, "%.6e");
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("what_if");
  w.begin_array();
  for (const WhatIf& wi : a.what_ifs) {
    w.begin_object(/*compact=*/true);
    w.kv("kind", wi.kind == WhatIf::Kind::kKernel ? "kernel" : "scope");
    w.kv("target", wi.target);
    w.kv("k", wi.speedup_k, "%.3f");
    w.kv("projected_s", wi.projected_seconds, "%.12e");
    w.kv("speedup", wi.speedup, "%.6f");
    w.kv("bound", wi.bound, "%.6f");
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

AnalysisSummary read_analysis_summary(const std::string& summary_path) {
  const json::Value doc = json::parse_file(summary_path);
  AnalysisSummary out;
  const json::Value* an = doc.find("analysis");
  if (an == nullptr) return out;  // v1/v2: absent
  IRRLU_CHECK_MSG(an->is_object(), "trace: " << summary_path
                                             << " \"analysis\" not an object");
  out.present = true;
  if (const json::Value* v = an->find("valid")) out.valid = v->as_bool();
  out.caveat = an->string_or("caveat", "");
  out.makespan = an->number_or("makespan_s", 0);
  out.critical_path_seconds = an->number_or("critical_path_s", 0);
  const auto contributors = [&](const char* key,
                                std::vector<AnalysisSummary::Contributor>& cs) {
    const json::Value* arr = an->find(key);
    if (arr == nullptr || !arr->is_array()) return;
    for (const json::Value& c : arr->items)
      cs.push_back({c.string_or("name", ""), c.number_or("seconds", 0)});
  };
  contributors("kernels", out.kernels);
  contributors("scopes", out.scopes);
  if (const json::Value* arr = an->find("streams");
      arr != nullptr && arr->is_array()) {
    for (const json::Value& s : arr->items) {
      AnalysisSummary::StreamRow row;
      row.stream = static_cast<int>(s.number_or("stream", 0));
      row.busy_seconds = s.number_or("busy_s", 0);
      row.idle_seconds = s.number_or("idle_s", 0);
      row.busy_fraction = s.number_or("busy_fraction", 0);
      row.gaps = static_cast<long>(s.number_or("gaps", 0));
      out.streams.push_back(row);
    }
  }
  if (const json::Value* arr = an->find("what_if");
      arr != nullptr && arr->is_array()) {
    for (const json::Value& wi : arr->items) {
      AnalysisSummary::WhatIfRow row;
      row.kind = wi.string_or("kind", "");
      row.target = wi.string_or("target", "");
      row.speedup_k = wi.number_or("k", 0);
      row.projected_seconds = wi.number_or("projected_s", 0);
      row.speedup = wi.number_or("speedup", 0);
      row.bound = wi.number_or("bound", 0);
      out.what_ifs.push_back(std::move(row));
    }
  }
  return out;
}

void write_utilization_counter_events(json::Writer& w, const Tracer& tracer) {
  // Cumulative busy fraction per stream, sampled at every launch end —
  // a falling curve on a stream flags growing idle time as the run
  // progresses, right next to the kernel spans that caused it.
  if (tracer.launches().empty()) return;
  std::vector<double> busy(
      static_cast<std::size_t>(tracer.max_stream_seen()) + 1, 0.0);
  for (const LaunchRecord& r : tracer.launches()) {
    const auto s = static_cast<std::size_t>(r.stream);
    busy[s] += r.sim_end - r.sim_start;
    if (r.sim_end <= 0) continue;
    w.begin_object(/*compact=*/true);
    w.kv("name", "busy%:stream " + std::to_string(r.stream));
    w.kv("cat", "utilization");
    w.kv("ph", "C");
    w.kv("ts", r.sim_end * 1e6, "%.6f");
    w.kv_int("pid", 4);
    w.kv_int("tid", 0);
    w.key("args");
    w.begin_object(true);
    w.kv("percent", 100.0 * busy[s] / r.sim_end, "%.3f");
    w.end_object();
    w.end_object();
  }
}

}  // namespace irrlu::trace
