// TraceSession: attaches a Tracer to a Device for the session's lifetime
// and writes the exporters on write()/destruction.
//
//   gpusim::Device dev(model);
//   trace::TraceSession session(dev, args.get_string("trace", ""));
//   ... run ...
//   session.write();  // chrome trace + summary + text report (dtor too)
//
// An empty path falls back to the IRRLU_TRACE environment variable; if
// that is empty too, the session is disabled and the device runs exactly
// as without tracing (the null-tracer fast path).
#pragma once

#include <memory>
#include <string>

#include "trace/trace.hpp"

namespace irrlu::gpusim {
class Device;
}

namespace irrlu::trace {

class TraceSession {
 public:
  explicit TraceSession(gpusim::Device& dev, std::string path = {});
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool enabled() const { return tracer_ != nullptr; }
  Tracer* tracer() { return tracer_.get(); }
  const std::string& path() const { return path_; }
  /// The summary lands next to the Chrome trace: "x.json" ->
  /// "x.summary.json" (otherwise ".summary.json" is appended).
  std::string summary_path() const;
  /// The human-readable report (counter tables, critical-path analysis,
  /// latency histograms): "x.json" -> "x.report.txt".
  std::string report_path() const;

  /// Writes the Chrome trace, the summary JSON, and the text report.
  /// Idempotent; detaches nothing (the run may continue and write()
  /// again with more data).
  void write();

 private:
  gpusim::Device* dev_ = nullptr;
  std::unique_ptr<Tracer> tracer_;
  std::string path_;
};

}  // namespace irrlu::trace
