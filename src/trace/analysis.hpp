// Trace analytics (DESIGN.md §13): post-processes the Tracer's recorded
// record stream — launches, stream events, host syncs, allocations, all
// stamped with one global sequence number — into
//   (a) a critical-path analysis over the launch/stream/wait dependency
//       DAG: the longest chain through the simulated timeline, with
//       per-kernel and per-scope contribution/slack rollups;
//   (b) per-stream utilization: busy fraction, idle-gap attribution
//       (what each gap was waiting on), and a log-bucketed gap histogram;
//   (c) what-if projections: the Amdahl-style speedup bound if a kernel
//       class or scope were k× faster, computed by replaying the DAG
//       with scaled durations.
//
// The replay reconstructs the Device's scheduling semantics from the
// records alone: host dispatch serialization (host_dispatch_overhead per
// launch, alloc_overhead per allocation, stream_sync_overhead per join),
// per-stream in-order cursors, and cross-stream event edges (EventRecord
// event ids). Occupancy delays — a launch starting after all its explicit
// constraints because SM slots were busy — are carried as measured
// per-launch constants, so scaling one kernel class never re-derives the
// slot schedule (documented approximation). A baseline replay must
// reproduce the recorded timeline *exactly* (bitwise) before any result
// is trusted: a trace with dropped records, a mid-trace reset_timeline(),
// or records from before the tracer attached fails the fidelity check
// and yields `valid == false` with a caveat instead of wrong numbers.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/histogram.hpp"

namespace irrlu::gpusim {
struct DeviceModel;
}
namespace irrlu::json {
class Writer;
}

namespace irrlu::trace {

class Tracer;

/// What a critical-path node (or an idle gap) was waiting on.
enum class BindKind {
  kStart,      ///< nothing — bound by the start of the timeline
  kDispatch,   ///< the serialized host dispatch chain
  kStream,     ///< the previous launch on the same stream
  kWait,       ///< a cross-stream event (Device::wait)
  kSync,       ///< a host synchronize() joining a stream
  kOccupancy,  ///< SM slots busy with other work
};
const char* to_string(BindKind k);

/// One node of the critical path. `contribution` is telescoping: the
/// node's exit time minus its predecessor's anchor time, so the sum over
/// the path equals the makespan exactly. A launch reached through the
/// host dispatch chain contributes only its dispatch segment (run == 0):
/// the path runs through the host there, not the kernel's execution.
struct CritNode {
  std::size_t launch = 0;  ///< index into Tracer::launches()
  std::string kernel;
  std::string scope;          ///< innermost scope path, "" = none
  double start = 0, end = 0;  ///< the segment of this node on the path
  double run_seconds = 0;     ///< kernel execution inside the segment
  double stall_seconds = 0;   ///< contribution - run_seconds
  double occupancy_seconds = 0;  ///< part of the stall waiting on slots
  double contribution = 0;
  BindKind via = BindKind::kStart;  ///< what the stall was waiting on
};

/// Per-kernel (or per-scope) rollup over the critical path. `seconds`
/// sums the telescoping contributions, so the column total over all rows
/// equals the makespan; `slack_seconds` sums the durations of this
/// class's launches that are NOT on the path — execution fully
/// overlapped by the path, i.e. the time this class could slip without
/// (to first order) moving the makespan.
struct PathContribution {
  std::string name;
  long launches = 0;  ///< on-path launches of this class
  double seconds = 0;
  double run_seconds = 0;
  double stall_seconds = 0;
  double slack_seconds = 0;
};

/// One idle gap on a stream, attributed to what ended it.
struct StreamGap {
  double begin = 0, end = 0;
  BindKind via = BindKind::kStart;
  std::string scope;  ///< blocker's scope (kWait) / next launch's scope
};

/// Per-stream busy/idle accounting over the common timeline span
/// [0, makespan]. busy + idle == span by construction (exactly).
struct StreamUtilization {
  int stream = 0;
  long launches = 0;
  double busy_seconds = 0;
  double idle_seconds = 0;
  double busy_fraction = 0;  ///< busy / span, 0 when the span is empty
  long gaps = 0;
  double largest_gap_seconds = 0;
  Histogram gap_hist;               ///< distribution of gap lengths
  std::vector<StreamGap> top_gaps;  ///< largest first, capped at 5
  /// Idle seconds attributed per scope (what the gaps waited on), sorted
  /// descending.
  std::vector<std::pair<std::string, double>> waits_on;
};

/// One what-if projection: the makespan if `target` were k× faster.
struct WhatIf {
  enum class Kind { kKernel, kScope };
  Kind kind = Kind::kKernel;
  std::string target;
  double speedup_k = 0;          ///< the hypothesis ("k× faster")
  double projected_seconds = 0;  ///< replayed makespan at k
  double speedup = 0;            ///< makespan / projected_seconds
  double bound = 0;  ///< Amdahl ceiling: speedup at k → ∞ (duration 0)
};

/// Full analysis result.
struct Analysis {
  bool valid = false;  ///< replay reproduced the recorded timeline
  std::string caveat;  ///< why not, when !valid (streams still filled)
  double makespan = 0;  ///< max sim_end over all launches
  /// Sum of path contributions; equals makespan exactly when valid.
  double critical_path_seconds = 0;
  std::vector<CritNode> path;              ///< earliest first
  std::vector<PathContribution> kernels;   ///< sorted by seconds, desc
  std::vector<PathContribution> scopes;    ///< sorted by seconds, desc
  std::vector<StreamUtilization> streams;  ///< by stream id
  std::vector<WhatIf> what_ifs;
};

struct AnalysisOptions {
  /// Master switch: when false, reports and summaries skip the analysis
  /// pass entirely (the "analysis" object is absent from the JSON).
  bool enabled = true;
  /// k for the automatic what-if projections over the top contributors.
  double whatif_speedup = 2.0;
  /// How many top kernels/scopes get what-if projections (and how many
  /// rows the text report prints).
  int top_k = 3;
  /// Restrict the contribution/slack rollups (and FactorReport's top-3)
  /// to launches with index >= min_launch — the replay itself always
  /// covers the whole trace, so a mid-trace window stays consistent.
  std::size_t min_launch = 0;
  bool what_ifs = true;  ///< disable to skip the replays (cheaper)
};

/// Environment overrides for the options (all optional):
///   IRRLU_TRACE_ANALYSIS=0   disable the analysis pass
///   IRRLU_TRACE_WHATIF=<k>   what-if speedup hypothesis (default 2);
///                            <= 1 disables the what-if replays
///   IRRLU_TRACE_TOPK=<n>     contributors projected/printed (default 3)
AnalysisOptions analysis_options_from_env();

/// Runs the full analysis. Stream utilization is filled even when the
/// fidelity check fails; path/contributions/what-ifs require `valid`.
Analysis analyze_trace(const Tracer& tracer, const gpusim::DeviceModel& model,
                       const AnalysisOptions& opts = {});

/// Result of one DAG replay with scaled durations.
struct ReplayResult {
  bool ok = false;
  double makespan = 0;
  std::string caveat;
};

/// Replays the recorded dependency DAG with per-launch duration scale
/// factors (`scale[i]` multiplies launch i's duration; empty = all 1).
/// A scale of all ones reproduces the measured makespan bit-identically:
/// any launch whose inputs are unchanged reuses its recorded times
/// verbatim rather than recomputing them.
ReplayResult replay_scaled(const Tracer& tracer,
                           const gpusim::DeviceModel& model,
                           const std::vector<double>& scale = {});

/// Critical-path text report (appended to print_report when launches
/// were recorded).
void print_analysis_report(std::ostream& out, const Analysis& a,
                           int top_k = 3);

/// Writes the "analysis" object value (the caller emits the key).
void write_analysis_json(json::Writer& w, const Analysis& a);

/// The summary JSON "analysis" object, as read back.
struct AnalysisSummary {
  bool present = false;  ///< whether the file carried the object
  bool valid = false;
  std::string caveat;
  double makespan = 0;
  double critical_path_seconds = 0;
  struct Contributor {
    std::string name;
    double seconds = 0;
  };
  std::vector<Contributor> kernels, scopes;
  struct StreamRow {
    int stream = 0;
    double busy_seconds = 0, idle_seconds = 0, busy_fraction = 0;
    long gaps = 0;
  };
  std::vector<StreamRow> streams;
  struct WhatIfRow {
    std::string kind, target;
    double speedup_k = 0, projected_seconds = 0, speedup = 0, bound = 0;
  };
  std::vector<WhatIfRow> what_ifs;
};

/// Reads the "analysis" object back from a summary JSON file; returns
/// `present == false` when the file has none (v1/v2 files).
AnalysisSummary read_analysis_summary(const std::string& summary_path);

/// Chrome-trace counter tracks (ph "C", pid 4): per-stream cumulative
/// busy fraction sampled at every launch end. Must be called inside the
/// traceEvents array.
void write_utilization_counter_events(json::Writer& w, const Tracer& tracer);

}  // namespace irrlu::trace
