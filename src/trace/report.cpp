#include "trace/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "gpusim/device_model.hpp"
#include "trace/analysis.hpp"
#include "trace/memory.hpp"
#include "trace/trace.hpp"

namespace irrlu::trace {

namespace {

void accumulate(Agg& a, const LaunchRecord& r) {
  ++a.launches;
  a.blocks += r.blocks;
  a.flops += r.flops;
  a.bytes += r.bytes;
  a.sim_seconds += r.sim_end - r.sim_start;
  a.excl_seconds += r.excl_seconds;
  a.wall_seconds += r.wall_seconds;
}

}  // namespace

std::map<std::pair<int, int>, Agg> aggregate(const Tracer& tracer) {
  std::map<std::pair<int, int>, Agg> out;
  for (const LaunchRecord& r : tracer.launches())
    accumulate(out[{r.scope, r.name_id}], r);
  return out;
}

std::map<std::string, Agg> aggregate_by_kernel(const Tracer& tracer) {
  std::map<std::string, Agg> out;
  for (const LaunchRecord& r : tracer.launches())
    accumulate(out[tracer.kernel_name(r.name_id)], r);
  return out;
}

double excl_seconds_in_scope(const Tracer& tracer, const std::string& label) {
  // Scope ids whose own label matches; a launch counts if any ancestor
  // matches.
  const auto& nodes = tracer.scopes();
  std::vector<char> matches(nodes.size(), 0);
  for (std::size_t i = 0; i < nodes.size(); ++i)
    matches[i] = nodes[i].label == label;
  double total = 0;
  for (const LaunchRecord& r : tracer.launches())
    for (int s = r.scope; s >= 0;
         s = nodes[static_cast<std::size_t>(s)].parent)
      if (matches[static_cast<std::size_t>(s)]) {
        total += r.excl_seconds;
        break;
      }
  return total;
}

void print_report(std::ostream& out, const Tracer& tracer,
                  const gpusim::DeviceModel& model) {
  const double peak_flops = static_cast<double>(model.num_sms) *
                            model.peak_flops_per_sm *
                            model.compute_efficiency;
  const double peak_bw = model.mem_bandwidth;

  TextTable table({"scope", "kernel", "launches", "blocks", "sim ms",
                   "GF/s", "%peak", "GB/s", "%bw"});
  const auto agg = aggregate(tracer);
  for (const auto& [key, a] : agg) {
    const double t = a.sim_seconds;
    const double gfs = t > 0 ? a.flops / t / 1e9 : 0;
    const double gbs = t > 0 ? a.bytes / t / 1e9 : 0;
    table.add_row(tracer.scope_path(key.first), tracer.kernel_name(key.second),
                  a.launches, a.blocks, TextTable::fmt(t * 1e3, 3),
                  TextTable::fmt(gfs, 1),
                  TextTable::fmt(gfs * 1e9 / peak_flops * 100, 1),
                  TextTable::fmt(gbs, 1),
                  TextTable::fmt(gbs * 1e9 / peak_bw * 100, 1));
  }
  table.print(out);
  if (tracer.dropped_launches() > 0)
    out << "(" << tracer.dropped_launches()
        << " launches dropped at the trace cap)\n";
  // Named counters (factor.*, pool.*, memory.*) — the same object the
  // summary JSON's "counters" carries.
  if (!tracer.counters().empty()) {
    out << "\ncounters:\n";
    char buf[64];
    for (const auto& [name, value] : tracer.counters()) {
      std::snprintf(buf, sizeof buf, "%.12g", value);
      out << "  " << name << " = " << buf << "\n";
    }
  }
  if (!tracer.mem_events().empty() || !tracer.mem_tags().empty())
    print_memory_report(out, tracer);
  const AnalysisOptions opts = analysis_options_from_env();
  if (opts.enabled && !tracer.launches().empty())
    print_analysis_report(out, analyze_trace(tracer, model, opts),
                          opts.top_k);
  if (!tracer.histograms().empty()) print_histogram_report(out, tracer);
}

void write_summary_json(const std::string& path, const Tracer& tracer,
                        const gpusim::DeviceModel& model) {
  FILE* f = std::fopen(path.c_str(), "w");
  IRRLU_CHECK_MSG(f != nullptr, "trace: cannot open " << path);
  const double peak_flops = static_cast<double>(model.num_sms) *
                            model.peak_flops_per_sm *
                            model.compute_efficiency;

  json::Writer w(f);
  w.begin_object();
  w.kv("schema", "irrlu-trace-summary-v3");
  w.kv("device", model.name);
  w.kv("peak_gflops", peak_flops / 1e9, "%.3f");
  w.kv("peak_gbs", model.mem_bandwidth / 1e9, "%.3f");
  w.kv_int("dropped_launches", tracer.dropped_launches());
  if (!tracer.counters().empty()) {
    w.key("counters");
    w.begin_object(/*compact=*/true);
    for (const auto& [name, value] : tracer.counters())
      w.kv(name.c_str(), value, "%.12g");
    w.end_object();
  }
  if (!tracer.mem_events().empty() || !tracer.mem_tags().empty()) {
    w.key("memory");
    write_memory_json(w, tracer);
  }
  const AnalysisOptions opts = analysis_options_from_env();
  if (opts.enabled && !tracer.launches().empty()) {
    w.key("analysis");
    write_analysis_json(w, analyze_trace(tracer, model, opts));
  }
  if (!tracer.histograms().empty()) {
    w.key("histograms");
    write_histograms_json(w, tracer);
  }
  w.key("rows");
  w.begin_array();
  for (const auto& [key, a] : aggregate(tracer)) {
    const double t = a.sim_seconds;
    w.begin_object(/*compact=*/true);
    w.kv("scope", tracer.scope_path(key.first));
    w.kv("kernel", tracer.kernel_name(key.second));
    w.kv_int("launches", a.launches);
    w.kv_int("blocks", a.blocks);
    w.kv("flops", a.flops, "%.0f");
    w.kv("bytes", a.bytes, "%.0f");
    w.kv("sim_seconds", a.sim_seconds, "%.12e");
    w.kv("excl_seconds", a.excl_seconds, "%.12e");
    w.kv("wall_seconds", a.wall_seconds, "%.6e");
    w.kv("gflops", t > 0 ? a.flops / t / 1e9 : 0.0, "%.3f");
    w.kv("gbs", t > 0 ? a.bytes / t / 1e9 : 0.0, "%.3f");
    w.end_object();
  }
  w.end_array();
  w.end_object();
  std::fprintf(f, "\n");
  std::fclose(f);
}

std::vector<SummaryRow> read_summary_json(const std::string& path) {
  const json::Value doc = json::parse_file(path);
  const std::string schema = doc.string_or("schema", "");
  // v2 added the optional "memory" object, v3 the optional "analysis"
  // and "histograms" objects; the row layout is unchanged throughout, so
  // the reader accepts all three versions.
  IRRLU_CHECK_MSG(schema == "irrlu-trace-summary-v3" ||
                      schema == "irrlu-trace-summary-v2" ||
                      schema == "irrlu-trace-summary-v1",
                  "trace: " << path << " is not an irrlu-trace-summary-v1/v2/v3");
  const json::Value* rows = doc.find("rows");
  IRRLU_CHECK_MSG(rows != nullptr && rows->is_array(),
                  "trace: " << path << " has no rows array");
  std::vector<SummaryRow> out;
  out.reserve(rows->items.size());
  for (const json::Value& r : rows->items) {
    SummaryRow row;
    row.scope = r.string_or("scope", "");
    row.kernel = r.string_or("kernel", "");
    row.launches = static_cast<long>(r.number_or("launches", 0));
    row.blocks = static_cast<long>(r.number_or("blocks", 0));
    row.flops = r.number_or("flops", 0);
    row.bytes = r.number_or("bytes", 0);
    row.sim_seconds = r.number_or("sim_seconds", 0);
    row.excl_seconds = r.number_or("excl_seconds", 0);
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace irrlu::trace
