#include "trace/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "common/json.hpp"
#include "common/table.hpp"
#include "trace/trace.hpp"

namespace irrlu::trace {

int Histogram::bucket_index(double v) {
  // ceil(log2(v) * kBucketsPerOctave), nudged down one step when the
  // rounded answer's *previous* bound still covers v — log2 of an exact
  // power of two is exact, but intermediate products may land a hair
  // above an exact boundary.
  int b = static_cast<int>(
      std::ceil(std::log2(v) * static_cast<double>(kBucketsPerOctave)));
  while (b > std::numeric_limits<int>::min() && bucket_upper(b - 1) >= v) --b;
  while (bucket_upper(b) < v) ++b;
  return b;
}

double Histogram::bucket_upper(int b) {
  return std::exp2(static_cast<double>(b) /
                   static_cast<double>(kBucketsPerOctave));
}

void Histogram::observe(double v) {
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  if (!(v > 0)) {  // <= 0 and NaN: underflow bucket
    ++underflow_;
    return;
  }
  ++buckets_[bucket_index(v)];
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  long rank = static_cast<long>(std::ceil(p * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  long seen = underflow_;  // underflow sorts below every positive bucket
  if (rank <= seen) return 0.0;
  for (const auto& [b, c] : buckets_) {
    seen += c;
    if (rank <= seen) return bucket_upper(b);
  }
  return bucket_upper(buckets_.rbegin()->first);  // rank == count_ fallback
}

void print_histogram_report(std::ostream& out, const Tracer& tracer) {
  if (tracer.histograms().empty()) return;
  out << "\nlatency histograms (log-bucketed; percentiles are bucket upper "
         "bounds):\n";
  TextTable table({"metric", "count", "mean", "p50", "p90", "p99", "max"});
  for (const auto& [name, h] : tracer.histograms())
    table.add_row(name, h.count(), TextTable::fmt(h.mean(), 6),
                  TextTable::fmt(h.percentile(0.50), 6),
                  TextTable::fmt(h.percentile(0.90), 6),
                  TextTable::fmt(h.percentile(0.99), 6),
                  TextTable::fmt(h.max(), 6));
  table.print(out);
}

void write_histograms_json(json::Writer& w, const Tracer& tracer) {
  w.begin_object();
  for (const auto& [name, h] : tracer.histograms()) {
    w.key(name);
    w.begin_object(/*compact=*/true);
    w.kv_int("count", h.count());
    w.kv("sum", h.sum(), "%.12e");
    w.kv("min", h.min(), "%.12e");
    w.kv("max", h.max(), "%.12e");
    w.kv("p50", h.percentile(0.50), "%.12e");
    w.kv("p90", h.percentile(0.90), "%.12e");
    w.kv("p99", h.percentile(0.99), "%.12e");
    if (h.underflow() > 0) w.kv_int("underflow", h.underflow());
    w.key("buckets");
    w.begin_array(/*compact=*/true);
    for (const auto& [b, c] : h.buckets()) {
      w.begin_object(/*compact=*/true);
      w.kv("le", Histogram::bucket_upper(b), "%.6e");
      w.kv_int("count", c);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
}

HistogramsSummary read_histograms_summary(const std::string& summary_path) {
  const json::Value doc = json::parse_file(summary_path);
  HistogramsSummary out;
  const json::Value* h = doc.find("histograms");
  if (h == nullptr || !h->is_object()) return out;  // v1/v2: absent
  out.present = true;
  for (const auto& [name, v] : h->fields) {
    HistogramRow row;
    row.name = name;
    row.count = static_cast<long>(v.number_or("count", 0));
    row.sum = v.number_or("sum", 0);
    row.min = v.number_or("min", 0);
    row.max = v.number_or("max", 0);
    row.p50 = v.number_or("p50", 0);
    row.p90 = v.number_or("p90", 0);
    row.p99 = v.number_or("p99", 0);
    out.rows.push_back(std::move(row));
  }
  return out;
}

}  // namespace irrlu::trace
