// Tracing & telemetry for the simulated device: a per-launch event
// recorder plus RAII scope annotations, feeding the Chrome-trace and
// aggregate-report exporters (see DESIGN.md, "Tracing and telemetry").
//
// Layering: this header is free of gpusim includes so the trace library
// sits *below* gpusim. Device holds a `trace::Tracer*` (forward-declared)
// and feeds it from end_launch/record/wait/synchronize; a null pointer —
// the default — costs one branch per launch and records nothing.
//
// The tracer is pure bookkeeping: it never advances any simulated
// timeline, so tracing on/off yields bit-identical simulated times (this
// invariant is tested).
#pragma once

#include <cstddef>
#include <chrono>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "trace/histogram.hpp"

namespace irrlu::trace {

/// One kernel launch, as recorded by Device::end_launch.
struct LaunchRecord {
  long seq = 0;       ///< global record order across all record kinds
  int name_id = -1;   ///< index into Tracer::kernel_names()
  int scope = -1;     ///< innermost scope at enqueue time, -1 = none
  int stream = 0;
  int blocks = 0;
  std::size_t smem_bytes = 0;
  double flops = 0;
  double bytes = 0;
  double sim_start = 0;     ///< simulated time the first block starts
  double sim_end = 0;       ///< simulated time the last block finishes
  double excl_seconds = 0;  ///< exclusive attribution, matches KernelStats
  double host_issue = 0;    ///< simulated host time the launch was issued
  double wall_seconds = 0;  ///< real host seconds executing the blocks
};

/// One host synchronization (synchronize / synchronize_all).
struct SyncRecord {
  long seq = 0;     ///< global record order across all record kinds
  int stream = -1;  ///< -1 = synchronize_all
  double host_begin = 0;
  double host_end = 0;
};

/// One Event operation on a stream timeline (Device::record / wait).
/// `event_id` names the device Event (assigned by Device::record), so a
/// wait record points at the record record it depends on — the
/// cross-stream dependency edge the trace analyzer replays.
struct EventRecord {
  long seq = 0;          ///< global record order across all record kinds
  bool is_wait = false;  ///< false: record(); true: wait()
  int stream = 0;
  int event_id = -1;     ///< device-unique Event id; -1 = unknown/default
  double time = 0;  ///< event time (record) / cursor after the wait (wait)
};

/// A node in the interned scope tree ("factor" / "level=3" / ...).
struct ScopeNode {
  std::string label;
  int parent = -1;
  int depth = 0;
  long entries = 0;         ///< times this scope was entered
  double wall_seconds = 0;  ///< real host seconds spent inside
};

/// One device allocation or free, as recorded by Device::raw_alloc /
/// raw_free while a tracer is attached.
struct MemEventRecord {
  long seq = 0;         ///< global record order across all record kinds
  bool is_free = false;
  int tag = -1;                 ///< index into Tracer::mem_tags(), -1 = none
  std::size_t bytes = 0;        ///< size of this allocation
  std::size_t in_use_after = 0; ///< device bytes_in_use after the event
  double sim_time = 0;          ///< simulated host time of the event
  double wall_seconds = 0;      ///< real host seconds since tracer creation
};

/// Per-tag aggregate allocation statistics. Unlike the bounded event log,
/// these stay exact even once events are dropped.
struct MemTagStats {
  long allocs = 0;
  long frees = 0;
  std::size_t current_bytes = 0;   ///< live bytes attributed to the tag
  std::size_t peak_bytes = 0;      ///< high-water of current_bytes
  std::size_t lifetime_bytes = 0;  ///< total bytes ever allocated
};

/// Collects launch/sync/scope records for one Device. Storage is
/// reserve-based with a hard cap: once `max_launches` records exist,
/// further launches are counted as dropped instead of recorded, so a
/// runaway run degrades the trace rather than memory.
class Tracer {
 public:
  explicit Tracer(std::size_t reserve_launches = std::size_t{1} << 14,
                  std::size_t max_launches = std::size_t{1} << 22,
                  std::size_t max_mem_events = std::size_t{1} << 20);

  // --- recording (called by Device and TraceScope) -----------------------
  int intern_kernel(const char* name);
  void on_launch(const LaunchRecord& r);
  void on_sync(int stream, double host_begin, double host_end);
  void on_event(bool is_wait, int stream, double time, int event_id = -1);
  int push_scope(std::string_view label);
  void pop_scope(double wall_seconds);
  /// Named telemetry counters (e.g. numerical-robustness diagnostics fed
  /// by the multifrontal factorization). `add_counter` accumulates,
  /// `max_counter` keeps the running maximum — both create the counter on
  /// first use.
  void add_counter(std::string_view name, double value);
  void max_counter(std::string_view name, double value);
  /// Log-bucketed latency histograms (the metrics registry): `observe`
  /// records one sample under `name`, creating the histogram on first
  /// use; `histogram` hands out the named histogram for direct queries.
  /// Fed by the service layer (per-phase and per-tenant latency) and by
  /// anything else with a Tracer pointer; exported as the summary JSON
  /// "histograms" object (schema v3) and the text-report percentile
  /// table. Pure bookkeeping like every other tracer channel.
  void observe(std::string_view name, double value);
  Histogram& histogram(std::string_view name);
  /// Memory timeline (fed by Device::raw_alloc / raw_free). Tags are
  /// interned like kernel names; `on_alloc`/`on_free` stamp the real-time
  /// clock internally (relative to tracer creation) so the device never
  /// reads wall clocks for memory bookkeeping.
  int intern_mem_tag(std::string_view tag);
  void on_alloc(int tag, std::size_t bytes, double sim_time,
                std::size_t in_use_after);
  void on_free(int tag, std::size_t bytes, double sim_time,
               std::size_t in_use_after);

  // --- inspection --------------------------------------------------------
  int current_scope() const { return current_scope_; }
  const std::vector<LaunchRecord>& launches() const { return launches_; }
  const std::vector<SyncRecord>& syncs() const { return syncs_; }
  const std::vector<EventRecord>& events() const { return events_; }
  const std::vector<ScopeNode>& scopes() const { return scope_nodes_; }
  const std::vector<std::string>& kernel_names() const { return names_; }
  const std::string& kernel_name(int id) const {
    return names_[static_cast<std::size_t>(id)];
  }
  /// Full "a/b/c" path of a scope node (empty for id < 0).
  std::string scope_path(int id) const;
  /// True if `id` is `ancestor` or a descendant of it.
  bool scope_within(int id, int ancestor) const;
  long dropped_launches() const { return dropped_; }
  int max_stream_seen() const { return max_stream_; }
  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  const std::vector<MemEventRecord>& mem_events() const { return mem_events_; }
  const std::vector<std::string>& mem_tags() const { return mem_tag_names_; }
  /// Tag label for an event (the "(untracked)" bucket for tag < 0).
  std::string_view mem_tag_name(int tag) const {
    return tag < 0 ? std::string_view("(untracked)")
                   : std::string_view(
                         mem_tag_names_[static_cast<std::size_t>(tag)]);
  }
  /// Aggregate stats per tag, index-aligned with mem_tags().
  const std::vector<MemTagStats>& mem_tag_stats() const {
    return mem_tag_stats_;
  }
  long dropped_mem_events() const { return dropped_mem_; }
  /// Running maxima of bytes-in-use as seen by this tracer; exact even
  /// when the event log is saturated.
  std::size_t mem_peak_bytes() const { return mem_peak_bytes_; }
  std::size_t mem_current_bytes() const { return mem_current_bytes_; }

  void clear();

 private:
  std::vector<LaunchRecord> launches_;
  std::vector<SyncRecord> syncs_;
  std::vector<EventRecord> events_;
  std::size_t max_launches_;
  long next_seq_ = 0;  ///< stamped on every recorded record, all kinds
  long dropped_ = 0;
  int max_stream_ = 0;

  std::vector<std::string> names_;
  std::map<std::string, int> name_ids_;

  std::vector<ScopeNode> scope_nodes_;
  std::map<std::pair<int, std::string>, int> scope_ids_;  ///< (parent, label)
  std::vector<int> scope_stack_;
  int current_scope_ = -1;

  std::map<std::string, double> counters_;
  std::map<std::string, Histogram, std::less<>> histograms_;

  std::vector<MemEventRecord> mem_events_;
  std::size_t max_mem_events_;
  long dropped_mem_ = 0;
  std::vector<std::string> mem_tag_names_;
  std::map<std::string, int> mem_tag_ids_;
  std::vector<MemTagStats> mem_tag_stats_;
  std::size_t mem_peak_bytes_ = 0;
  std::size_t mem_current_bytes_ = 0;
  std::chrono::steady_clock::time_point mem_epoch_;

  void record_mem_event(bool is_free, int tag, std::size_t bytes,
                        double sim_time, std::size_t in_use_after);
};

/// RAII scope annotation. A null tracer makes every member a no-op, so
/// instrumented code paths cost one branch when tracing is off.
class TraceScope {
 public:
  TraceScope(Tracer* t, std::string_view label) : t_(t) {
    if (t_) {
      t_->push_scope(label);
      wall0_ = std::chrono::steady_clock::now();
    }
  }
  ~TraceScope() {
    if (t_)
      t_->pop_scope(std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - wall0_)
                        .count());
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  Tracer* t_;
  std::chrono::steady_clock::time_point wall0_;
};

#define IRRLU_TRACE_CONCAT_INNER(a, b) a##b
#define IRRLU_TRACE_CONCAT(a, b) IRRLU_TRACE_CONCAT_INNER(a, b)
/// Opens a scope for the rest of the enclosing block:
///   IRRLU_TRACE_SCOPE(dev.tracer(), "panel");
#define IRRLU_TRACE_SCOPE(tracer, label)                 \
  ::irrlu::trace::TraceScope IRRLU_TRACE_CONCAT(         \
      irrlu_trace_scope_, __LINE__)((tracer), (label))

}  // namespace irrlu::trace
