// Aggregated counter reports over a Tracer: per (scope x kernel) rollups,
// a human-readable table with achieved GF/s and GB/s against the
// DeviceModel roofline, and a machine-readable summary JSON
// ("irrlu-trace-summary-v3"; v2 added the optional "memory" object, see
// trace/memory.hpp; v3 the optional "analysis" and "histograms" objects,
// see trace/analysis.hpp and trace/histogram.hpp) consumed by the bench
// drivers.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace irrlu::gpusim {
struct DeviceModel;
}

namespace irrlu::trace {

class Tracer;

/// Rollup of a set of launches.
struct Agg {
  long launches = 0;
  long blocks = 0;
  double flops = 0;
  double bytes = 0;
  double sim_seconds = 0;   ///< sum of (sim_end - sim_start)
  double excl_seconds = 0;  ///< sum of exclusive attributions; per-kernel
                            ///< sums match Device::profile() exactly
  double wall_seconds = 0;
};

/// Per (innermost scope id, kernel name id) rollup. Scope -1 collects
/// launches outside any scope.
std::map<std::pair<int, int>, Agg> aggregate(const Tracer& tracer);

/// Per kernel-name rollup over all scopes. The excl_seconds/flops/bytes/
/// launches/blocks fields reproduce Device::profile() bit for bit (same
/// values accumulated in the same order).
std::map<std::string, Agg> aggregate_by_kernel(const Tracer& tracer);

/// Sums the exclusive attribution of every launch whose scope chain
/// contains a scope labeled `label` (e.g. "trsm", "level=3").
double excl_seconds_in_scope(const Tracer& tracer, const std::string& label);

/// Prints the flat per (scope x kernel) counter table with achieved GF/s,
/// GB/s, and percentages of the model roofline to `out`.
void print_report(std::ostream& out, const Tracer& tracer,
                  const gpusim::DeviceModel& model);

/// Writes the "irrlu-trace-summary-v3" JSON (see bench_util.hpp for the
/// schema documentation).
void write_summary_json(const std::string& path, const Tracer& tracer,
                        const gpusim::DeviceModel& model);

/// One row of a summary file, as read back by consumers.
struct SummaryRow {
  std::string scope;
  std::string kernel;
  long launches = 0;
  long blocks = 0;
  double flops = 0;
  double bytes = 0;
  double sim_seconds = 0;
  double excl_seconds = 0;
};

/// Reads a summary written by write_summary_json; accepts the v1, v2,
/// and v3 schemas (throws irrlu::Error on any other schema).
std::vector<SummaryRow> read_summary_json(const std::string& path);

}  // namespace irrlu::trace
