#include "trace/memory.hpp"

#include <algorithm>
#include <ostream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "common/table.hpp"
#include "trace/trace.hpp"

namespace irrlu::trace {

namespace {

constexpr double kToMicros = 1e6;  // simulated seconds -> trace microseconds

double mb(std::size_t bytes) { return static_cast<double>(bytes) / 1e6; }

}  // namespace

MemorySummary memory_summary(const Tracer& tracer) {
  MemorySummary s;
  s.present = true;
  s.peak_bytes = tracer.mem_peak_bytes();
  s.current_bytes = tracer.mem_current_bytes();
  s.events = static_cast<long>(tracer.mem_events().size());
  s.dropped_events = tracer.dropped_mem_events();
  const auto& names = tracer.mem_tags();
  const auto& stats = tracer.mem_tag_stats();
  s.tags.reserve(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    MemTagRow row;
    row.tag = names[i];
    row.allocs = stats[i].allocs;
    row.frees = stats[i].frees;
    row.current_bytes = stats[i].current_bytes;
    row.peak_bytes = stats[i].peak_bytes;
    row.lifetime_bytes = stats[i].lifetime_bytes;
    s.tags.push_back(std::move(row));
  }
  std::sort(s.tags.begin(), s.tags.end(),
            [](const MemTagRow& a, const MemTagRow& b) {
              if (a.peak_bytes != b.peak_bytes)
                return a.peak_bytes > b.peak_bytes;
              return a.tag < b.tag;
            });
  return s;
}

void print_memory_report(std::ostream& out, const Tracer& tracer) {
  const MemorySummary s = memory_summary(tracer);
  out << "memory: peak " << TextTable::fmt(mb(s.peak_bytes), 2)
      << " MB, live " << TextTable::fmt(mb(s.current_bytes), 2) << " MB ("
      << s.events << " events";
  if (s.dropped_events > 0) out << ", " << s.dropped_events << " dropped";
  out << ")\n";
  TextTable table(
      {"tag", "allocs", "frees", "live MB", "peak MB", "lifetime MB"});
  for (const MemTagRow& r : s.tags)
    table.add_row(r.tag, r.allocs, r.frees, TextTable::fmt(mb(r.current_bytes), 2),
                  TextTable::fmt(mb(r.peak_bytes), 2),
                  TextTable::fmt(mb(r.lifetime_bytes), 2));
  table.print(out);
}

void write_memory_json(json::Writer& w, const Tracer& tracer) {
  const MemorySummary s = memory_summary(tracer);
  w.begin_object();
  w.kv_int("peak_bytes", static_cast<long long>(s.peak_bytes));
  w.kv_int("current_bytes", static_cast<long long>(s.current_bytes));
  w.kv_int("events", s.events);
  w.kv_int("dropped_events", s.dropped_events);
  w.key("tags");
  w.begin_array();
  for (const MemTagRow& r : s.tags) {
    w.begin_object(/*compact=*/true);
    w.kv("tag", r.tag);
    w.kv_int("allocs", r.allocs);
    w.kv_int("frees", r.frees);
    w.kv_int("current_bytes", static_cast<long long>(r.current_bytes));
    w.kv_int("peak_bytes", static_cast<long long>(r.peak_bytes));
    w.kv_int("lifetime_bytes", static_cast<long long>(r.lifetime_bytes));
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

void write_memory_counter_events(json::Writer& w, const Tracer& tracer) {
  // Replay the bounded event log, maintaining per-tag running usage so
  // each counter sample carries its track's value at that instant.
  std::vector<std::size_t> tag_current(tracer.mem_tags().size(), 0);
  for (const MemEventRecord& e : tracer.mem_events()) {
    w.begin_object(/*compact=*/true);
    w.kv("name", "bytes_in_use");
    w.kv("cat", "memory");
    w.kv("ph", "C");
    w.kv("ts", e.sim_time * kToMicros, "%.6f");
    w.kv_int("pid", 3);
    w.kv_int("tid", 0);
    w.key("args");
    w.begin_object(true);
    w.kv_int("bytes", static_cast<long long>(e.in_use_after));
    w.end_object();
    w.end_object();

    if (e.tag < 0) continue;
    const auto t = static_cast<std::size_t>(e.tag);
    if (e.is_free)
      tag_current[t] -= std::min(tag_current[t], e.bytes);
    else
      tag_current[t] += e.bytes;
    w.begin_object(true);
    w.kv("name", "mem:" + std::string(tracer.mem_tag_name(e.tag)));
    w.kv("cat", "memory");
    w.kv("ph", "C");
    w.kv("ts", e.sim_time * kToMicros, "%.6f");
    w.kv_int("pid", 3);
    w.kv_int("tid", 0);
    w.key("args");
    w.begin_object(true);
    w.kv_int("bytes", static_cast<long long>(tag_current[t]));
    w.end_object();
    w.end_object();
  }
}

MemorySummary read_memory_summary(const std::string& summary_path) {
  const json::Value doc = json::parse_file(summary_path);
  MemorySummary s;
  const json::Value* mem = doc.find("memory");
  if (mem == nullptr) return s;  // v1 file, or memory tracking not active
  IRRLU_CHECK_MSG(mem->is_object(),
                  "trace: " << summary_path << " \"memory\" is not an object");
  s.present = true;
  s.peak_bytes = static_cast<std::size_t>(mem->number_or("peak_bytes", 0));
  s.current_bytes =
      static_cast<std::size_t>(mem->number_or("current_bytes", 0));
  s.events = static_cast<long>(mem->number_or("events", 0));
  s.dropped_events = static_cast<long>(mem->number_or("dropped_events", 0));
  if (const json::Value* tags = mem->find("tags")) {
    IRRLU_CHECK_MSG(tags->is_array(), "trace: " << summary_path
                                                << " memory.tags not array");
    s.tags.reserve(tags->items.size());
    for (const json::Value& t : tags->items) {
      MemTagRow row;
      row.tag = t.string_or("tag", "");
      row.allocs = static_cast<long>(t.number_or("allocs", 0));
      row.frees = static_cast<long>(t.number_or("frees", 0));
      row.current_bytes =
          static_cast<std::size_t>(t.number_or("current_bytes", 0));
      row.peak_bytes = static_cast<std::size_t>(t.number_or("peak_bytes", 0));
      row.lifetime_bytes =
          static_cast<std::size_t>(t.number_or("lifetime_bytes", 0));
      s.tags.push_back(std::move(row));
    }
  }
  return s;
}

}  // namespace irrlu::trace
