// Log-bucketed latency histograms and the Tracer-attached metrics
// registry (DESIGN.md §13): fixed-ratio buckets (8 per octave, ~9%
// resolution) keyed by integer bucket index, so two histograms built from
// the same values are bit-identical regardless of observation order and a
// percentile query is an exact statement about bucket bounds rather than
// an interpolation. Fed by SolverService (per-phase and per-tenant
// request latency) and by the trace analyzer (per-stream idle gaps);
// exported into the text report and the "histograms" object of the
// summary JSON (schema v3) with a parse-back reader.
#pragma once

#include <iosfwd>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace irrlu::json {
class Writer;
}

namespace irrlu::trace {

class Tracer;

/// One log-bucketed distribution. Bucket b covers
/// (upper(b-1), upper(b)] with upper(b) = 2^(b / kBucketsPerOctave);
/// values <= 0 land in a dedicated underflow bucket with upper bound 0.
/// count/sum/min/max are exact; a percentile is the upper bound of the
/// bucket containing that rank (a guaranteed overestimate by at most one
/// bucket ratio, ~9%).
class Histogram {
 public:
  static constexpr int kBucketsPerOctave = 8;

  /// Smallest bucket index whose upper bound is >= v (v > 0).
  static int bucket_index(double v);
  /// Upper bound of bucket b: 2^(b / kBucketsPerOctave).
  static double bucket_upper(int b);

  void observe(double v);

  long count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
  long underflow() const { return underflow_; }  ///< observations <= 0

  /// Value bound covering at least ceil(p * count) observations, p in
  /// [0, 1]: the upper bound of the bucket holding that rank (0 when the
  /// rank falls in the underflow bucket, or the histogram is empty).
  double percentile(double p) const;

  /// Occupied buckets (index -> count), ascending; underflow excluded.
  const std::map<int, long>& buckets() const { return buckets_; }

 private:
  std::map<int, long> buckets_;
  long count_ = 0;
  long underflow_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// One named histogram as exported to / parsed back from the summary
/// JSON "histograms" object.
struct HistogramRow {
  std::string name;
  long count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
};

/// The "histograms" object of a summary file, as read back.
struct HistogramsSummary {
  bool present = false;  ///< whether the file carried the object
  std::vector<HistogramRow> rows;
};

/// Percentile table appended to the trace text report when the registry
/// is non-empty.
void print_histogram_report(std::ostream& out, const Tracer& tracer);

/// Writes the "histograms" object value (the caller emits the key).
void write_histograms_json(json::Writer& w, const Tracer& tracer);

/// Reads the "histograms" object back from a summary JSON file; returns
/// `present == false` when the file has none (v1/v2 files).
HistogramsSummary read_histograms_summary(const std::string& summary_path);

}  // namespace irrlu::trace
