// Shared BLAS-style enumerations for the dense and batched kernels.
#pragma once

namespace irrlu::la {

enum class Trans { No, Yes };
enum class Side { Left, Right };
enum class Uplo { Lower, Upper };
enum class Diag { Unit, NonUnit };

inline const char* to_string(Trans t) { return t == Trans::No ? "N" : "T"; }
inline const char* to_string(Side s) { return s == Side::Left ? "L" : "R"; }
inline const char* to_string(Uplo u) { return u == Uplo::Lower ? "L" : "U"; }
inline const char* to_string(Diag d) { return d == Diag::Unit ? "U" : "N"; }

}  // namespace irrlu::la
