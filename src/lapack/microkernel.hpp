// Packed, register-blocked micro-kernel engine for the host-side BLAS.
//
// Every irregular-batch kernel in this reproduction executes its numerics
// for real on the host, so host GEMM/TRSM throughput is the wall-clock
// floor of the whole project (tests, every bench figure, the multifrontal
// solver). This layer provides the GotoBLAS-style machinery the generic
// loops in blas.cpp lack:
//
//  - MC/KC/NC cache blocking with explicit packing of op(A) and op(B)
//    into contiguous, zero-padded panels (thread-local buffers, reused
//    across calls), so all four transpose combinations run at unit
//    stride;
//  - an MR x NR register tile (8x4 for double/float, 4x2 for
//    std::complex<double>) accumulated in registers and written back
//    once, with edge tiles handled by computing the full padded tile and
//    storing only the valid part;
//  - unrolled multi-column fast paths for the level-2 kernels (ger/gemv)
//    that dominate the column-wise panel fallback of irrLU.
//
// None of this changes simulated device time: the gpusim cost model is
// driven exclusively by LaunchConfig and BlockCtx::record(), never by how
// fast the host happens to execute a kernel body (DESIGN.md, "Host
// execution performance").
#pragma once

#include <complex>

#include "lapack/types.hpp"

namespace irrlu::la::mk {

/// Register-tile geometry and cache-blocking parameters per element type.
/// MC is a multiple of MR and NC a multiple of NR; KC*(MR+NR) elements
/// (one A panel + one B panel) are sized to stay resident in L1 while a
/// packed MC x KC block of A stays in L2.
template <typename T>
struct TileTraits;

template <>
struct TileTraits<float> {
  static constexpr int MR = 8, NR = 4;
  static constexpr int MC = 128, KC = 320, NC = 512;
};

template <>
struct TileTraits<double> {
  static constexpr int MR = 8, NR = 4;
  static constexpr int MC = 96, KC = 256, NC = 512;
};

template <>
struct TileTraits<std::complex<double>> {
  static constexpr int MR = 4, NR = 2;
  static constexpr int MC = 64, KC = 128, NC = 256;
};

/// C (m x n, leading dimension ldc) += alpha * op(A) * op(B), inner
/// dimension k, for any of the four transpose combinations. Assumes the
/// caller has already applied beta to C and screened out alpha == 0 /
/// degenerate extents. Deterministic: repeated calls with the same inputs
/// produce bit-identical results (packing buffers are fully rewritten,
/// padding included, on every pack).
template <typename T>
void gemm_packed(Trans transa, Trans transb, int m, int n, int k, T alpha,
                 const T* a, int lda, const T* b, int ldb, T* c, int ldc);

/// Rank-1 update fast path, A += alpha * x * y^T with unit-stride x:
/// processes four columns of A per pass so x is loaded once per pass
/// instead of once per column. Column results are bit-identical to the
/// one-column-at-a-time reference (zero columns of y are skipped there
/// and here).
template <typename T>
void ger_unit(int m, int n, T alpha, const T* x, const T* y, int incy, T* a,
              int lda);

/// y = alpha*op(A)*x + beta*y with unit strides on x and y; four-column
/// blocking in both transpose modes. beta == 0 overwrites y (BLAS
/// semantics, NaN-safe). Per-element accumulation order matches the
/// column-ascending reference loop exactly.
template <typename T>
void gemv_unit(Trans trans, int m, int n, T alpha, const T* a, int lda,
               const T* x, T beta, T* y);

/// Small-triangle substitution solve op(A) X = B with alpha already
/// applied: the base case of the blocked trsm. Triangles of order <= 16
/// with Trans::No dispatch to fully-unrolled fixed-size forward/back-
/// substitution kernels (the triangle staged once into a contiguous
/// stack tile, each rhs solved in registers) with bit-identical results;
/// larger orders and Trans::Yes use generic loops whose orders keep the
/// stored triangle contiguous (right-looking axpy for Trans::No,
/// left-looking row dots for Trans::Yes) with four right-hand-side
/// columns sharing each triangle load.
template <typename T>
void trsm_left_small(Uplo uplo, Trans trans, Diag diag, int m, int n,
                     const T* a, int lda, T* b, int ldb);

/// Small-triangle substitution solve X op(A) = B with alpha already
/// applied (A is n x n): column-axpy form, each update contiguous over
/// the m rows of B.
template <typename T>
void trsm_right_small(Uplo uplo, Trans trans, Diag diag, int m, int n,
                      const T* a, int lda, T* b, int ldb);

}  // namespace irrlu::la::mk
