#include "lapack/lapack.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/error.hpp"

namespace irrlu::la {

template <typename T>
int getf2(int m, int n, T* a, int lda, int* ipiv, double boost_threshold,
          int* boosted) {
  int info = 0;
  const int kmin = std::min(m, n);
  for (int j = 0; j < kmin; ++j) {
    T* colj = a + static_cast<std::ptrdiff_t>(j) * lda;
    const int p = j + iamax(m - j, colj + j, 1);
    ipiv[j] = p;
    if (colj[p] == T{} && info == 0) info = j + 1;
    if (boost_threshold > 0.0 && std::abs(colj[p]) < boost_threshold) {
      colj[p] = boosted_pivot(colj[p], boost_threshold);
      if (boosted != nullptr) ++*boosted;
    }
    if (colj[p] != T{}) {
      if (p != j)
        swap(n, a + j, lda, a + p, lda);
      if (j < m - 1) {
        const T inv = T(1) / colj[j];
        scal(m - 1 - j, inv, colj + j + 1, 1);
      }
    }
    if (j < kmin) {
      // Trailing rank-1 update.
      ger(m - 1 - j, n - 1 - j, T(-1), colj + j + 1, 1,
          a + static_cast<std::ptrdiff_t>(j + 1) * lda + j, lda,
          a + static_cast<std::ptrdiff_t>(j + 1) * lda + j + 1, lda);
    }
  }
  return info;
}

template <typename T>
int getf2(int m, int n, T* a, int lda, int* ipiv) {
  return getf2(m, n, a, lda, ipiv, 0.0, nullptr);
}

template <typename T>
int getrf(int m, int n, T* a, int lda, int* ipiv, int nb) {
  IRRLU_CHECK(nb >= 1);
  const int kmin = std::min(m, n);
  if (kmin == 0) return 0;
  if (kmin <= nb) return getf2(m, n, a, lda, ipiv);

  int info = 0;
  for (int j = 0; j < kmin; j += nb) {
    const int jb = std::min(nb, kmin - j);
    T* panel = a + static_cast<std::ptrdiff_t>(j) * lda + j;
    const int pinfo = getf2(m - j, jb, panel, lda, ipiv + j);
    if (pinfo != 0 && info == 0) info = pinfo + j;
    // Pivot indices from the panel are relative to row j.
    for (int i = j; i < j + jb; ++i) ipiv[i] += j;
    // Apply interchanges to the columns left of the panel...
    laswp(j, a, lda, j, j + jb, ipiv);
    // ...and right of the panel.
    if (j + jb < n)
      laswp(n - j - jb, a + static_cast<std::ptrdiff_t>(j + jb) * lda, lda, j,
            j + jb, ipiv);
    if (j + jb < n) {
      // U block row: solve L11 * U12 = A12.
      trsm(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, jb, n - j - jb,
           T(1), panel, lda, a + static_cast<std::ptrdiff_t>(j + jb) * lda + j,
           lda);
      if (j + jb < m) {
        // Trailing update A22 -= L21 * U12.
        gemm(Trans::No, Trans::No, m - j - jb, n - j - jb, jb, T(-1),
             a + static_cast<std::ptrdiff_t>(j) * lda + j + jb, lda,
             a + static_cast<std::ptrdiff_t>(j + jb) * lda + j, lda, T(1),
             a + static_cast<std::ptrdiff_t>(j + jb) * lda + j + jb, lda);
      }
    }
  }
  return info;
}

template <typename T>
void laswp(int n, T* a, int lda, int k1, int k2, const int* ipiv,
           bool forward) {
  if (n <= 0) return;
  if (forward) {
    for (int j = k1; j < k2; ++j)
      if (ipiv[j] != j) swap(n, a + j, lda, a + ipiv[j], lda);
  } else {
    for (int j = k2 - 1; j >= k1; --j)
      if (ipiv[j] != j) swap(n, a + j, lda, a + ipiv[j], lda);
  }
}

template <typename T>
void getrs(Trans trans, int n, int nrhs, const T* a, int lda,
           const int* ipiv, T* b, int ldb) {
  if (n == 0 || nrhs == 0) return;
  if (trans == Trans::No) {
    laswp(nrhs, b, ldb, 0, n, ipiv);
    trsm(Side::Left, Uplo::Lower, Trans::No, Diag::Unit, n, nrhs, T(1), a,
         lda, b, ldb);
    trsm(Side::Left, Uplo::Upper, Trans::No, Diag::NonUnit, n, nrhs, T(1), a,
         lda, b, ldb);
  } else {
    trsm(Side::Left, Uplo::Upper, Trans::Yes, Diag::NonUnit, n, nrhs, T(1), a,
         lda, b, ldb);
    trsm(Side::Left, Uplo::Lower, Trans::Yes, Diag::Unit, n, nrhs, T(1), a,
         lda, b, ldb);
    laswp(nrhs, b, ldb, 0, n, ipiv, /*forward=*/false);
  }
}

template <typename T>
int trtri(Uplo uplo, Diag diag, int n, T* a, int lda) {
  auto A = [&](int i, int j) -> T& {
    return a[static_cast<std::ptrdiff_t>(j) * lda + i];
  };
  if (diag == Diag::NonUnit)
    for (int j = 0; j < n; ++j)
      if (A(j, j) == T{}) return j + 1;

  if (uplo == Uplo::Upper) {
    for (int j = 0; j < n; ++j) {
      T ajj;
      if (diag == Diag::NonUnit) {
        A(j, j) = T(1) / A(j, j);
        ajj = -A(j, j);
      } else {
        ajj = T(-1);
      }
      // Column j above the diagonal: x = -inv(U11) * u12 * inv(u22).
      for (int i = 0; i < j; ++i) {
        T acc = diag == Diag::NonUnit ? A(i, i) * A(i, j) : A(i, j);
        for (int p = i + 1; p < j; ++p) acc += A(i, p) * A(p, j);
        A(i, j) = acc;
      }
      for (int i = 0; i < j; ++i) A(i, j) *= ajj;
    }
  } else {
    for (int j = n - 1; j >= 0; --j) {
      T ajj;
      if (diag == Diag::NonUnit) {
        A(j, j) = T(1) / A(j, j);
        ajj = -A(j, j);
      } else {
        ajj = T(-1);
      }
      for (int i = n - 1; i > j; --i) {
        T acc = diag == Diag::NonUnit ? A(i, i) * A(i, j) : A(i, j);
        for (int p = j + 1; p < i; ++p) acc += A(i, p) * A(p, j);
        A(i, j) = acc;
      }
      for (int i = j + 1; i < n; ++i) A(i, j) *= ajj;
    }
  }
  return 0;
}

#define IRRLU_INSTANTIATE_LAPACK(T)                                       \
  template int getf2<T>(int, int, T*, int, int*);                         \
  template int getf2<T>(int, int, T*, int, int*, double, int*);           \
  template int getrf<T>(int, int, T*, int, int*, int);                    \
  template void laswp<T>(int, T*, int, int, int, const int*, bool);       \
  template void getrs<T>(Trans, int, int, const T*, int, const int*, T*,  \
                         int);                                            \
  template int trtri<T>(Uplo, Diag, int, T*, int);

IRRLU_INSTANTIATE_LAPACK(float)
IRRLU_INSTANTIATE_LAPACK(double)
IRRLU_INSTANTIATE_LAPACK(std::complex<double>)

#undef IRRLU_INSTANTIATE_LAPACK

}  // namespace irrlu::la
