// Householder QR building blocks (single matrix): reflector generation and
// application, unblocked panel QR, the compact-WY T factor, and Q
// application — the substrate of the irregular-batch QR (irr_geqrf), which
// the paper lists as the natural next algorithm for its interface + DCWI
// design ("the proposed interface and the DCWI layer would work seamlessly
// for other decompositions, such as the QR factorization").
#pragma once

#include "lapack/types.hpp"

namespace irrlu::la {

/// Generates a Householder reflector H = I - tau v v^T with v(0) = 1 such
/// that H [alpha; x] = [beta; 0]. On entry alpha is *x0 and x has n-1
/// elements; on exit *x0 = beta and x holds v(1:). Returns tau (0 if the
/// column is already collapsed).
template <typename T>
T larfg(int n, T* x0, T* x, int incx);

/// Applies H = I - tau v v^T from the left to the m x n matrix C, with
/// v(0) = 1 implicit and v(1:) given. `work` must hold n elements.
template <typename T>
void larf_left(int m, int n, const T* v, int incv, T tau, T* c, int ldc,
               T* work);

/// Unblocked Householder QR of an m x n matrix: on exit the upper triangle
/// holds R and the columns below the diagonal hold the reflector vectors;
/// tau[j] for j < min(m, n). `work` must hold n elements.
template <typename T>
void geqr2(int m, int n, T* a, int lda, T* tau, T* work);

/// Forms the upper-triangular compact-WY factor T (k x k) for the k
/// reflectors stored in the m x k panel V (unit lower trapezoid implicit):
/// Q = I - V T V^T.
template <typename T>
void larft(int m, int k, const T* v, int ldv, const T* tau, T* t, int ldt);

/// Applies op(Q) (from the reflectors in the m x k panel V and tau) to the
/// m x n matrix C from the left: C <- op(Q) C. `work` holds n elements.
template <typename T>
void apply_q(Trans trans, int m, int n, int k, const T* v, int ldv,
             const T* tau, T* c, int ldc, T* work);

/// FLOPs of QR on an m x n matrix (LAPACK-style leading terms).
inline double geqrf_flops(int m, int n) {
  const double M = m, N = n;
  if (m >= n) return 2.0 * M * N * N - 2.0 * N * N * N / 3.0;
  return 2.0 * N * M * M - 2.0 * M * M * M / 3.0;
}

}  // namespace irrlu::la
