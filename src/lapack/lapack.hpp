// Single-matrix LAPACK-style routines built on the blas.hpp kernels:
// unblocked and blocked LU with partial pivoting, pivot application, linear
// solve, and triangular inversion. Column-major, 0-based pivot indices.
#pragma once

#include <cmath>
#include <complex>

#include "lapack/blas.hpp"
#include "lapack/types.hpp"

namespace irrlu::la {

/// Unblocked LU with partial pivoting of an m x n matrix (right-looking,
/// one column at a time). On exit A holds L (unit diagonal, below) and U
/// (on/above diagonal); ipiv[j] = row index (0-based, relative to A) that
/// was swapped with row j, for j < min(m, n).
/// Returns 0 on success, or (j + 1) if U(j, j) is exactly zero (the
/// factorization proceeds; the factor is singular, as in LAPACK).
template <typename T>
int getf2(int m, int n, T* a, int lda, int* ipiv);

/// The signed replacement value for a too-small pivot (SuperLU-style
/// static boosting): magnitude `threshold`, direction of the original
/// pivot (+threshold for an exact zero). Works for real and complex T.
template <typename T>
T boosted_pivot(T piv, double threshold) {
  const double mag = std::abs(piv);
  if (mag == 0.0) return T(threshold);
  return piv * T(threshold / mag);
}

/// getf2 with small-pivot recovery: after the pivot search, a pivot with
/// magnitude below `boost_threshold` is replaced by
/// boosted_pivot(pivot, boost_threshold) and `*boosted` (when non-null) is
/// incremented, so elimination continues with finite multipliers. The
/// return value keeps the LAPACK meaning — (j + 1) of the first column
/// whose pivot was *exactly* zero — so singularity stays visible even when
/// every zero pivot was boosted. boost_threshold <= 0 reproduces plain
/// getf2 bit for bit.
template <typename T>
int getf2(int m, int n, T* a, int lda, int* ipiv, double boost_threshold,
          int* boosted);

/// Blocked LU with partial pivoting (panel width nb). Same contract as
/// getf2; default nb matches the batched code's panel width.
template <typename T>
int getrf(int m, int n, T* a, int lda, int* ipiv, int nb = 32);

/// Applies the row interchanges recorded in ipiv[k1..k2) to the n columns
/// of A: for j in [k1, k2) (forward) or reverse, swap row j with row
/// ipiv[j]. Mirrors LAPACK xLASWP with 0-based indices.
template <typename T>
void laswp(int n, T* a, int lda, int k1, int k2, const int* ipiv,
           bool forward = true);

/// Solves op(A) X = B after getrf, overwriting B (n x nrhs).
template <typename T>
void getrs(Trans trans, int n, int nrhs, const T* a, int lda,
           const int* ipiv, T* b, int ldb);

/// In-place inversion of a triangular n x n matrix (unblocked).
/// Returns 0 on success, or (j + 1) if a diagonal element is zero.
template <typename T>
int trtri(Uplo uplo, Diag diag, int n, T* a, int lda);

}  // namespace irrlu::la
