// Single-matrix column-major BLAS kernels (levels 1-3). These are the
// reference implementations used by the tests, the building blocks of the
// single-matrix LAPACK routines, and the per-thread-block bodies of the
// batched kernels. No external BLAS is assumed anywhere in the project.
#pragma once

#include <cstddef>

#include "lapack/types.hpp"

namespace irrlu::la {

// ----- level 1 -----

/// Index of the element of x (stride incx, length n) with maximum |.|;
/// returns -1 for n <= 0 or incx <= 0 (the 0-based analog of LAPACK's
/// "invalid" 0). Ties resolve to the first occurrence, and the first NaN
/// magnitude wins outright, so pivot selection is well-defined on
/// NaN-contaminated columns (LAPACK IxAMAX semantics).
template <typename T>
int iamax(int n, const T* x, int incx);

/// x *= alpha.
template <typename T>
void scal(int n, T alpha, T* x, int incx);

/// Swap vectors x and y.
template <typename T>
void swap(int n, T* x, int incx, T* y, int incy);

// ----- level 2 -----

/// A += alpha * x * y^T  (A is m x n, leading dimension lda).
template <typename T>
void ger(int m, int n, T alpha, const T* x, int incx, const T* y, int incy,
         T* a, int lda);

/// y = alpha*op(A)*x + beta*y.
template <typename T>
void gemv(Trans trans, int m, int n, T alpha, const T* a, int lda, const T* x,
          int incx, T beta, T* y, int incy);

/// Solve op(A) * x = x in place; A triangular m x m.
template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, int m, const T* a, int lda, T* x,
          int incx);

// ----- level 3 -----

/// C = alpha*op(A)*op(B) + beta*C, with C m x n and inner dimension k.
/// Runs through the packed micro-kernel engine (lapack/microkernel.hpp)
/// for every transpose combination; correct for all aliasing-free inputs
/// including m/n/k == 0.
template <typename T>
void gemm(Trans transa, Trans transb, int m, int n, int k, T alpha,
          const T* a, int lda, const T* b, int ldb, T beta, T* c, int ldc);

/// B = alpha * op(A)^{-1} * B (Side::Left) or alpha * B * op(A)^{-1}
/// (Side::Right); A triangular, B m x n. In-place; blocked (small
/// on-diagonal substitution solves + packed GEMM panel updates).
template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n, T alpha,
          const T* a, int lda, T* b, int ldb);

/// Retained naive reference implementations (the pre-engine algorithms):
/// plain triple-loop gemm and unblocked substitution trsm. Used by the
/// tests to cross-check the packed engine and by bench_blas_core to track
/// the speedup trajectory. Not performance code — do not call from hot
/// paths.
namespace ref {

template <typename T>
void gemm(Trans transa, Trans transb, int m, int n, int k, T alpha,
          const T* a, int lda, const T* b, int ldb, T beta, T* c, int ldc);

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n, T alpha,
          const T* a, int lda, T* b, int ldb);

}  // namespace ref

}  // namespace irrlu::la
