// Single-matrix column-major BLAS kernels (levels 1-3). These are the
// reference implementations used by the tests, the building blocks of the
// single-matrix LAPACK routines, and the per-thread-block bodies of the
// batched kernels. No external BLAS is assumed anywhere in the project.
#pragma once

#include <cstddef>

#include "lapack/types.hpp"

namespace irrlu::la {

// ----- level 1 -----

/// Index of the element of x (stride incx, length n) with maximum |.|;
/// returns 0 for n <= 0. Ties resolve to the first occurrence (LAPACK).
template <typename T>
int iamax(int n, const T* x, int incx);

/// x *= alpha.
template <typename T>
void scal(int n, T alpha, T* x, int incx);

/// Swap vectors x and y.
template <typename T>
void swap(int n, T* x, int incx, T* y, int incy);

// ----- level 2 -----

/// A += alpha * x * y^T  (A is m x n, leading dimension lda).
template <typename T>
void ger(int m, int n, T alpha, const T* x, int incx, const T* y, int incy,
         T* a, int lda);

/// y = alpha*op(A)*x + beta*y.
template <typename T>
void gemv(Trans trans, int m, int n, T alpha, const T* a, int lda, const T* x,
          int incx, T beta, T* y, int incy);

/// Solve op(A) * x = x in place; A triangular m x m.
template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, int m, const T* a, int lda, T* x,
          int incx);

// ----- level 3 -----

/// C = alpha*op(A)*op(B) + beta*C, with C m x n and inner dimension k.
/// Cache-tiled; correct for all aliasing-free inputs including m/n/k == 0.
template <typename T>
void gemm(Trans transa, Trans transb, int m, int n, int k, T alpha,
          const T* a, int lda, const T* b, int ldb, T beta, T* c, int ldc);

/// B = alpha * op(A)^{-1} * B (Side::Left) or alpha * B * op(A)^{-1}
/// (Side::Right); A triangular, B m x n. In-place, forward/back substitution.
template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n, T alpha,
          const T* a, int lda, T* b, int ldb);

}  // namespace irrlu::la
