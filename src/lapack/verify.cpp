#include "lapack/verify.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace irrlu::la {

double max_abs(ConstMatrixView<double> a) {
  double m = 0;
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i) m = std::max(m, std::abs(a(i, j)));
  return m;
}

double norm_fro(ConstMatrixView<double> a) {
  double s = 0;
  for (int j = 0; j < a.cols(); ++j)
    for (int i = 0; i < a.rows(); ++i) s += a(i, j) * a(i, j);
  return std::sqrt(s);
}

double norm_inf(ConstMatrixView<double> a) {
  double best = 0;
  for (int i = 0; i < a.rows(); ++i) {
    double s = 0;
    for (int j = 0; j < a.cols(); ++j) s += std::abs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

double lu_residual(ConstMatrixView<double> lu, const int* ipiv,
                   ConstMatrixView<double> a) {
  const int m = a.rows(), n = a.cols();
  IRRLU_CHECK(lu.rows() == m && lu.cols() == n);
  const int kmin = std::min(m, n);

  // R = L * U (m x n), with L m x kmin unit-lower and U kmin x n upper.
  std::vector<double> r(static_cast<std::size_t>(m) * n, 0.0);
  for (int j = 0; j < n; ++j) {
    double* rj = r.data() + static_cast<std::size_t>(j) * m;
    for (int p = 0; p < kmin; ++p) {
      const double u = p <= j ? lu(p, j) : 0.0;
      if (u == 0.0) continue;
      rj[p] += u;  // L(p,p) = 1
      for (int i = p + 1; i < m; ++i) rj[i] += lu(i, p) * u;
    }
  }
  // Undo the row interchanges: R <- P * R, where getrf computed P*A = L*U
  // via forward swaps; applying the swaps to R in reverse order maps rows
  // of L*U back to the original ordering of A.
  for (int j = kmin - 1; j >= 0; --j) {
    if (ipiv[j] != j)
      for (int c = 0; c < n; ++c)
        std::swap(r[static_cast<std::size_t>(c) * m + j],
                  r[static_cast<std::size_t>(c) * m + ipiv[j]]);
  }
  double diff = 0;
  for (int j = 0; j < n; ++j)
    for (int i = 0; i < m; ++i)
      diff = std::max(diff,
                      std::abs(r[static_cast<std::size_t>(j) * m + i] -
                               a(i, j)));
  const double denom = max_abs(a) * std::max(1, std::max(m, n)) *
                       std::numeric_limits<double>::epsilon();
  return denom > 0 ? diff / denom : diff;
}

double trsm_backward_error(Uplo uplo, Trans trans, Diag diag,
                           ConstMatrixView<double> t,
                           ConstMatrixView<double> x,
                           ConstMatrixView<double> b) {
  const int m = x.rows(), n = x.cols();
  IRRLU_CHECK(b.rows() == m && b.cols() == n);
  IRRLU_CHECK(t.rows() >= m && t.cols() >= m);
  auto E = [&](int i, int j) -> double {
    const double v = trans == Trans::No ? t(i, j) : t(j, i);
    const bool in_tri = (uplo == Uplo::Lower) == (trans == Trans::No)
                            ? (j <= i)
                            : (j >= i);
    if (i == j) return diag == Diag::Unit ? 1.0 : v;
    return in_tri ? v : 0.0;
  };
  double worst = 0;
  for (int col = 0; col < n; ++col) {
    double rmax = 0, bmax = 0;
    for (int i = 0; i < m; ++i) {
      double acc = 0;
      for (int j = 0; j < m; ++j) acc += E(i, j) * x(j, col);
      rmax = std::max(rmax, std::abs(b(i, col) - acc));
      bmax = std::max(bmax, std::abs(b(i, col)));
    }
    if (bmax > 0) worst = std::max(worst, rmax / bmax);
  }
  return worst;
}

double solve_residual(ConstMatrixView<double> a, const double* x,
                      const double* b) {
  const int n = a.rows();
  IRRLU_CHECK(a.cols() == n);
  double rmax = 0, bmax = 0;
  for (int i = 0; i < n; ++i) {
    double acc = 0;
    for (int j = 0; j < n; ++j) acc += a(i, j) * x[j];
    rmax = std::max(rmax, std::abs(b[i] - acc));
    bmax = std::max(bmax, std::abs(b[i]));
  }
  return bmax > 0 ? rmax / bmax : rmax;
}

}  // namespace irrlu::la
