// Numerical verification helpers: norms, LU reconstruction residuals, and
// backward errors for triangular solves. Used throughout the tests and by
// the Figure-6 benchmark (which reports the max backward error over a
// batch, as the paper does).
#pragma once

#include "common/matrix_view.hpp"
#include "lapack/types.hpp"

namespace irrlu::la {

/// max |a(i,j)|.
double max_abs(ConstMatrixView<double> a);
/// Frobenius norm.
double norm_fro(ConstMatrixView<double> a);
/// Infinity norm (max row sum).
double norm_inf(ConstMatrixView<double> a);

/// Relative LU residual ||P*L*U - A||_max / (||A||_max * max(m,n) * eps)
/// computed from a factored matrix `lu` (L unit-lower + U upper packed, as
/// produced by getrf), the pivot vector, and the original matrix `a`.
/// Values of O(1..10) indicate a backward-stable factorization.
double lu_residual(ConstMatrixView<double> lu, const int* ipiv,
                   ConstMatrixView<double> a);

/// Backward error of a triangular solve op(T) X = B:
///   max_j ||B(:,j) - op(T) X(:,j)||_inf / ||B(:,j)||_inf
/// with `x` the computed solution and `b` the original right-hand sides.
/// This is the metric of the paper's Figure 6.
double trsm_backward_error(Uplo uplo, Trans trans, Diag diag,
                           ConstMatrixView<double> t,
                           ConstMatrixView<double> x,
                           ConstMatrixView<double> b);

/// Componentwise relative residual ||b - A x||_inf / ||b||_inf for a dense
/// linear system.
double solve_residual(ConstMatrixView<double> a, const double* x,
                      const double* b);

}  // namespace irrlu::la
