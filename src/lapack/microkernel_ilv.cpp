// Interleaved (batch-axis SoA) small-matrix kernels. See the header for
// the layout and the bitwise contract against the strided engine path.
//
// This translation unit is compiled with the same IRRLU_MK_OPTS flag set
// as microkernel.cpp (see src/lapack/CMakeLists.txt): the per-element
// expression shapes below mirror la::getf2 / la::trsm / la::gemm /
// mk::gemm_packed / mk::ger_unit verbatim, and identical flags make the
// compiler take identical floating-point contraction decisions for them,
// which is what turns "same operation sequence" into "same bits". Every
// ilv kernel body lives here — nothing in the header does arithmetic —
// so no instantiation can leak into a default-flags TU.
//
// Every body is templated over the element type T and instantiated for
// double and float: the f32 kernels run all arithmetic in float (alpha /
// beta converted on entry, T(1)/pivot reciprocals, T(-1) update signs), so
// each lane is bit-identical to the strided engine path instantiated for
// float — the same contract the f64 kernels keep against the double path.
// Only the boost threshold bookkeeping stays double (`tau * anorm`),
// mirroring la::getf2's double `boost_threshold` parameter exactly.

#include "lapack/microkernel_ilv.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "lapack/lapack.hpp"  // la::boosted_pivot (mul+div only: flag-safe)

namespace irrlu::la::mk::ilv {
namespace {

// Lanes processed together per inner sweep. Matches the launch-side lane
// chunk (irrblas/interleaved.hpp), so one simulated block is one pass of
// these loops; larger slices (host benchmarks) just take several passes.
constexpr int kVec = 8;

/// Offset of element (r, c) lane 0 in an SoA buffer of leading dim `ld`
/// and lane stride `batch`; lane l lives at +l from there.
inline std::ptrdiff_t at(int r, int c, int ld, int batch) {
  return (static_cast<std::ptrdiff_t>(c) * ld + r) *
         static_cast<std::ptrdiff_t>(batch);
}

// ---------------------------------------------------------------------------
// gemm
// ---------------------------------------------------------------------------

/// One lane chunk of C += alpha * A * B on top of an already-applied beta
/// pass, k > 0 and alpha != 0 guaranteed by the callers. Mirrors
/// mk::gemm_packed's per-element contract: a single k-ascending
/// accumulation chain (`acc += a * b`) and an `c += alpha * acc`
/// writeback. Also the update step of every blocked trsm branch below
/// (la::trsm calls la::gemm with beta = 1 there, which skips the beta
/// pass and lands exactly here).
// NLT is the lane count when pinned at compile time (kVec for a full
// chunk — the hot case) or 0 for the runtime tail. A constant lane trip
// lets the inner loops compile to exactly one unmasked vector op each;
// with a runtime `nl` GCC emits a versioned loop nest that spills the
// accumulator tile (measured ~2.3x slower). Kept out-of-line on purpose:
// inlined into the lane-chunk loop of its callers the register
// allocator spills the tile to the stack as well.
template <int KS, int NLT, typename T>
#if defined(__GNUC__)
__attribute__((noinline))
#endif
void gemm_chunk(int mr, int nr, int kr, T alpha, const T* __restrict a,
                int lda, const T* __restrict b, int ldb, T* __restrict c,
                int ldc, int batch, int nlr) {
  const int nl = NLT > 0 ? NLT : nlr;
  const int m = mr;
  const int n = nr;
  const int k = KS > 0 ? KS : kr;
  // Register-tiled over an IB x JB block of C: the tile's chains are
  // mutually independent, which hides FMA latency, and the A row-block
  // stays cache-resident across the j sweep instead of being re-streamed
  // from L2 for every column. Each element still owns exactly one
  // k-ascending `acc += a * b` chain followed by one `c += alpha * acc`
  // writeback — the same per-element operation sequence as the straight
  // two-loop form, so the bits are unchanged.
  constexpr int IB = 8;
  constexpr int JB = 3;
  int i = 0;
  for (; i + IB <= m; i += IB) {
    int j = 0;
    for (; j + JB <= n; j += JB) {
      T acc[IB * JB][kVec];
      for (int t = 0; t < IB * JB; ++t)
        for (int l = 0; l < nl; ++l) acc[t][l] = T(0);
      for (int p = 0; p < k; ++p) {
        for (int s = 0; s < JB; ++s) {
          const T* bp = b + at(p, j + s, ldb, batch);
          for (int r = 0; r < IB; ++r) {
            const T* ap = a + at(i + r, p, lda, batch);
            T* t = acc[s * IB + r];
            for (int l = 0; l < nl; ++l) t[l] += ap[l] * bp[l];
          }
        }
      }
      for (int s = 0; s < JB; ++s) {
        for (int r = 0; r < IB; ++r) {
          T* cp = c + at(i + r, j + s, ldc, batch);
          for (int l = 0; l < nl; ++l) cp[l] += alpha * acc[s * IB + r][l];
        }
      }
    }
    for (; j < n; ++j) {
      T acc[IB][kVec];
      for (int r = 0; r < IB; ++r)
        for (int l = 0; l < nl; ++l) acc[r][l] = T(0);
      for (int p = 0; p < k; ++p) {
        const T* bp = b + at(p, j, ldb, batch);
        for (int r = 0; r < IB; ++r) {
          const T* ap = a + at(i + r, p, lda, batch);
          for (int l = 0; l < nl; ++l) acc[r][l] += ap[l] * bp[l];
        }
      }
      for (int r = 0; r < IB; ++r) {
        T* cp = c + at(i + r, j, ldc, batch);
        for (int l = 0; l < nl; ++l) cp[l] += alpha * acc[r][l];
      }
    }
  }
  for (; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      T acc[kVec];
      for (int l = 0; l < nl; ++l) acc[l] = T(0);
      for (int p = 0; p < k; ++p) {
        const T* ap = a + at(i, p, lda, batch);
        const T* bp = b + at(p, j, ldb, batch);
        for (int l = 0; l < nl; ++l) acc[l] += ap[l] * bp[l];
      }
      T* cp = c + at(i, j, ldc, batch);
      for (int l = 0; l < nl; ++l) cp[l] += alpha * acc[l];
    }
  }
}

template <int KS, typename T>
void gemm_fn(const Kernel& kd, const Args& g) {
  const int m = kd.m;
  const int n = kd.n;
  const int k = KS > 0 ? KS : kd.k;
  if (m <= 0 || n <= 0) return;
  const T alpha = static_cast<T>(g.alpha);
  const T beta = static_cast<T>(g.beta);
  for (int l0 = g.lane0; l0 < g.lane1; l0 += kVec) {
    const int nl = std::min(kVec, g.lane1 - l0);
    const T* a = static_cast<const T*>(g.a) + l0;
    const T* b = static_cast<const T*>(g.b) + l0;
    T* c = static_cast<T*>(g.c) + l0;
    // Beta pass first, then the k/alpha early-out — la::gemm's order.
    if (beta != T(1)) {
      for (int j = 0; j < n; ++j) {
        for (int i = 0; i < m; ++i) {
          T* cp = c + at(i, j, g.ldc, g.batch);
          if (beta == T(0)) {
            for (int l = 0; l < nl; ++l) cp[l] = T(0);
          } else {
            for (int l = 0; l < nl; ++l) cp[l] *= beta;
          }
        }
      }
    }
    if (k <= 0 || alpha == T(0)) continue;
    if (nl == kVec)
      gemm_chunk<KS, kVec, T>(m, n, k, alpha, a, g.lda, b, g.ldb, c, g.ldc,
                              g.batch, nl);
    else
      gemm_chunk<KS, 0, T>(m, n, k, alpha, a, g.lda, b, g.ldb, c, g.ldc,
                           g.batch, nl);
  }
}

// ---------------------------------------------------------------------------
// trsm
// ---------------------------------------------------------------------------

/// la::scale_matrix mirror: the alpha pass la::trsm applies over all of B
/// before any substitution.
template <int NLT, typename T>
void scale_chunk(int m, int n, T alpha, T* b, int ldb, int batch, int nlr) {
  const int nl = NLT > 0 ? NLT : nlr;
  if (alpha == T(1)) return;
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < m; ++i) {
      T* bp = b + at(i, j, ldb, batch);
      for (int l = 0; l < nl; ++l) bp[l] *= alpha;
    }
  }
}

/// Left substitution over a triangle of order <= 16 (or one diagonal
/// block of the blocked path). Mirrors mk::trsm_tiny_cols's col_step:
/// per rhs column, forward (lower) or backward (upper) over pivots, with
/// `x[j] /= d` then `x[i] -= a(i,j) * xj` — lane-innermost.
template <int MS, int NLT, typename T>
#if defined(__GNUC__)
__attribute__((noinline))
#endif
void left_subst(int mr, int nrhs, bool lower, bool unit,
                const T* __restrict t, int ldt, T* __restrict x, int ldx,
                int batch, int nlr) {
  const int nl = NLT > 0 ? NLT : nlr;
  const int m = MS > 0 ? MS : mr;
  for (int c = 0; c < nrhs; ++c) {
    for (int jj = 0; jj < m; ++jj) {
      const int j = lower ? jj : m - 1 - jj;
      T* xj = x + at(j, c, ldx, batch);
      if (!unit) {
        const T* d = t + at(j, j, ldt, batch);
        for (int l = 0; l < nl; ++l) xj[l] /= d[l];
      }
      // Snapshot the solved row: the update loop then touches x only
      // through xi, so the vectorizer needs no runtime overlap check
      // between the xj load and the xi store (same array, rows i != j).
      T xjv[kVec];
      for (int l = 0; l < nl; ++l) xjv[l] = xj[l];
      const int i0 = lower ? j + 1 : 0;
      const int i1 = lower ? m : j;
      for (int i = i0; i < i1; ++i) {
        const T* aij = t + at(i, j, ldt, batch);
        T* xi = x + at(i, c, ldx, batch);
        for (int l = 0; l < nl; ++l) xi[l] -= aij[l] * xjv[l];
      }
    }
  }
}

/// Right substitution over a triangle of order <= 16. Mirrors
/// mk::trsm_right_small's solve_col: per solved column j (backward for
/// lower, forward for upper), fold each dependency column with the
/// per-lane `e == 0` skip, then divide by the diagonal for NonUnit.
template <int NS, int NLT, typename T>
#if defined(__GNUC__)
__attribute__((noinline))
#endif
void right_subst(int nr, int m, bool lower, bool unit, const T* __restrict t,
                 int ldt, T* __restrict x, int ldx, int batch, int nlr) {
  const int nl = NLT > 0 ? NLT : nlr;
  const int n = NS > 0 ? NS : nr;
  for (int jj = 0; jj < n; ++jj) {
    const int j = lower ? n - 1 - jj : jj;
    const int p0 = lower ? j + 1 : 0;
    const int p1 = lower ? n : j;
    for (int p = p0; p < p1; ++p) {
      // The multiplier column entry is invariant over i; snapshotting it
      // (and the dependency column per row) leaves the update loop with
      // x touched only through xji, so no runtime overlap checks.
      T ev[kVec];
      const T* e = t + at(p, j, ldt, batch);
      for (int l = 0; l < nl; ++l) ev[l] = e[l];
      for (int i = 0; i < m; ++i) {
        T* xji = x + at(i, j, ldx, batch);
        const T* xpi = x + at(i, p, ldx, batch);
        T xpv[kVec];
        for (int l = 0; l < nl; ++l) xpv[l] = xpi[l];
        // If-converted form of the per-lane `e == 0` skip: lanes with a
        // zero multiplier store their old value back unchanged (NOT
        // `-= 0.0`, which would flip the sign of a -0.0), so the guard
        // becomes a select and the loop vectorizes.
        for (int l = 0; l < nl; ++l) {
          xji[l] = ev[l] != T(0) ? xji[l] - xpv[l] * ev[l] : xji[l];
        }
      }
    }
    if (!unit) {
      T dv[kVec];
      const T* d = t + at(j, j, ldt, batch);
      for (int l = 0; l < nl; ++l) dv[l] = d[l];
      for (int i = 0; i < m; ++i) {
        T* xji = x + at(i, j, ldx, batch);
        for (int l = 0; l < nl; ++l) xji[l] /= dv[l];
      }
    }
  }
}

template <int TS, typename T>
void trsm_left_fn(const Kernel& kd, const Args& g) {
  const int m = TS > 0 ? TS : kd.m;
  const int n = kd.n;
  if (m <= 0 || n <= 0) return;
  const bool lower = kd.lower;
  const bool unit = kd.unit;
  const T alpha = static_cast<T>(g.alpha);
  for (int l0 = g.lane0; l0 < g.lane1; l0 += kVec) {
    const int nl = std::min(kVec, g.lane1 - l0);
    const T* t = static_cast<const T*>(g.a) + l0;
    T* b = static_cast<T*>(g.c) + l0;
    const int ldt = g.lda;
    const int ldx = g.ldc;
    const auto chunk = [&]<int NLT>() {
      scale_chunk<NLT, T>(m, n, alpha, b, ldx, g.batch, nl);
      if (TS > 0 || m <= 16) {
        left_subst<TS, NLT, T>(m, n, lower, unit, t, ldt, b, ldx, g.batch,
                               nl);
        return;
      }
      // 16-blocked structure of la::trsm, Left, Trans::No.
      if (lower) {
        for (int i0 = 0; i0 < m; i0 += 16) {
          const int ib = std::min(16, m - i0);
          left_subst<0, NLT, T>(ib, n, true, unit,
                                t + at(i0, i0, ldt, g.batch), ldt,
                                b + at(i0, 0, ldx, g.batch), ldx, g.batch,
                                nl);
          const int rm = m - i0 - ib;
          if (rm > 0) {
            gemm_chunk<0, NLT, T>(rm, n, ib, T(-1),
                                  t + at(i0 + ib, i0, ldt, g.batch), ldt,
                                  b + at(i0, 0, ldx, g.batch), ldx,
                                  b + at(i0 + ib, 0, ldx, g.batch), ldx,
                                  g.batch, nl);
          }
        }
      } else {
        const int last = ((m - 1) / 16) * 16;
        for (int i0 = last; i0 >= 0; i0 -= 16) {
          const int ib = std::min(16, m - i0);
          left_subst<0, NLT, T>(ib, n, false, unit,
                                t + at(i0, i0, ldt, g.batch), ldt,
                                b + at(i0, 0, ldx, g.batch), ldx, g.batch,
                                nl);
          if (i0 > 0) {
            gemm_chunk<0, NLT, T>(i0, n, ib, T(-1),
                                  t + at(0, i0, ldt, g.batch), ldt,
                                  b + at(i0, 0, ldx, g.batch), ldx, b, ldx,
                                  g.batch, nl);
          }
        }
      }
    };
    if (nl == kVec)
      chunk.template operator()<kVec>();
    else
      chunk.template operator()<0>();
  }
}

template <int TS, typename T>
void trsm_right_fn(const Kernel& kd, const Args& g) {
  const int m = kd.m;
  const int n = TS > 0 ? TS : kd.n;
  if (m <= 0 || n <= 0) return;
  const bool lower = kd.lower;
  const bool unit = kd.unit;
  const T alpha = static_cast<T>(g.alpha);
  for (int l0 = g.lane0; l0 < g.lane1; l0 += kVec) {
    const int nl = std::min(kVec, g.lane1 - l0);
    const T* t = static_cast<const T*>(g.a) + l0;
    T* b = static_cast<T*>(g.c) + l0;
    const int ldt = g.lda;
    const int ldx = g.ldc;
    const auto chunk = [&]<int NLT>() {
      scale_chunk<NLT, T>(m, n, alpha, b, ldx, g.batch, nl);
      if (TS > 0 || n <= 16) {
        right_subst<TS, NLT, T>(n, m, lower, unit, t, ldt, b, ldx, g.batch,
                                nl);
        return;
      }
      // 16-blocked structure of la::trsm, Right, Trans::No.
      if (lower) {
        const int last = ((n - 1) / 16) * 16;
        for (int j0 = last; j0 >= 0; j0 -= 16) {
          const int jb = std::min(16, n - j0);
          right_subst<0, NLT, T>(jb, m, true, unit,
                                 t + at(j0, j0, ldt, g.batch), ldt,
                                 b + at(0, j0, ldx, g.batch), ldx, g.batch,
                                 nl);
          if (j0 > 0) {
            gemm_chunk<0, NLT, T>(m, j0, jb, T(-1),
                                  b + at(0, j0, ldx, g.batch), ldx,
                                  t + at(j0, 0, ldt, g.batch), ldt, b, ldx,
                                  g.batch, nl);
          }
        }
      } else {
        for (int j0 = 0; j0 < n; j0 += 16) {
          const int jb = std::min(16, n - j0);
          right_subst<0, NLT, T>(jb, m, false, unit,
                                 t + at(j0, j0, ldt, g.batch), ldt,
                                 b + at(0, j0, ldx, g.batch), ldx, g.batch,
                                 nl);
          const int rn = n - j0 - jb;
          if (rn > 0) {
            gemm_chunk<0, NLT, T>(m, rn, jb, T(-1),
                                  b + at(0, j0, ldx, g.batch), ldx,
                                  t + at(j0, j0 + jb, ldt, g.batch), ldt,
                                  b + at(0, j0 + jb, ldx, g.batch), ldx,
                                  g.batch, nl);
          }
        }
      }
    };
    if (nl == kVec)
      chunk.template operator()<kVec>();
    else
      chunk.template operator()<0>();
  }
}

// ---------------------------------------------------------------------------
// getf2
// ---------------------------------------------------------------------------

/// Right-looking LU, la::getf2 column loop per lane. The pivot search and
/// bookkeeping are scalar per lane (data-dependent branches); the swap,
/// reciprocal scaling and rank-1 update — the bulk of the work — run
/// lane-innermost.
template <int NLT, typename T>
#if defined(__GNUC__)
__attribute__((noinline))
#endif
void getf2_chunk(int m, int n, const Args& g, int l0, int nlr) {
  const int nl = NLT > 0 ? NLT : nlr;
  const int kmin = std::min(m, n);
  const int ld = g.ldc;
  {
    T* a = static_cast<T*>(g.c) + l0;
    int linfo[kVec];
    double thr[kVec];
    for (int l = 0; l < nl; ++l) {
      linfo[l] = 0;
      // irr_getf2_fused's threshold rule: tau * ||F||_max per matrix,
      // disabled when the norm vector is absent.
      thr[l] = (g.tau > 0.0 && g.anorm != nullptr)
                   ? g.tau * g.anorm[l0 + l]
                   : 0.0;
    }
    for (int j = 0; j < kmin; ++j) {
      int prow[kVec];
      T pokm[kVec];  // 1 when the pivot is usable (arithmetic type:
                     // selects over a bool[] defeat the vectorizer)
      T inv[kVec];
      // la::iamax over column j from row j, vectorized across lanes: NaN
      // at the start index wins immediately, a later NaN wins at its
      // index, otherwise strict >. The scalar early-exit becomes a
      // per-lane `frozen` mask; a frozen lane ignores every later row,
      // which reproduces the break exactly. `bestt` holds the row offset
      // as an arithmetic value (exact for these magnitudes) so the whole
      // loop is one homogeneous select nest.
      T bestv[kVec];
      T bests[kVec];  // signed value at the winning row: the scan
                      // already visits it, so keeping it here spares
                      // the epilogue a per-lane strided gather
      T bestt[kVec];
      T frozen[kVec];
      {
        const T* c0 = a + at(j, j, ld, g.batch);
        for (int l = 0; l < nl; ++l) {
          const T v0 = std::abs(c0[l]);
          bestv[l] = v0;
          bests[l] = c0[l];
          bestt[l] = T(0);
          frozen[l] = v0 != v0 ? T(1) : T(0);
        }
      }
      for (int t = 1; t < m - j; ++t) {
        const T* ct = a + at(j + t, j, ld, g.batch);
        for (int l = 0; l < nl; ++l) {
          const T v = std::abs(ct[l]);
          // Bitwise (non-short-circuit) combines: && would reintroduce
          // branches and block if-conversion of the whole select nest.
          const bool isn = v != v;
          const bool live = frozen[l] == T(0);
          const bool take_nan = live & isn;
          const bool take_gt = live & !isn & (v > bestv[l]);
          const bool take = take_nan | take_gt;
          bestt[l] = take ? static_cast<T>(t) : bestt[l];
          bests[l] = take ? ct[l] : bests[l];
          bestv[l] = take_gt ? v : bestv[l];
          frozen[l] = take_nan ? T(1) : frozen[l];
        }
      }
      if (g.tau > 0.0 && g.anorm != nullptr) {
        // Boosted path: the perturbation writes back into the matrix and
        // bumps per-lane counters, so this bookkeeping stays scalar.
        for (int l = 0; l < nl; ++l) {
          const int lane = l0 + l;
          const int p = j + static_cast<int>(bestt[l]);
          g.ipiv[lane][j] = p;
          T pv = bests[l];
          if (pv == T(0) && linfo[l] == 0) linfo[l] = j + 1;
          if (thr[l] > 0.0 && std::abs(pv) < thr[l]) {
            pv = la::boosted_pivot(pv, thr[l]);
            a[at(p, j, ld, g.batch) + l] = pv;
            if (g.boost != nullptr) ++g.boost[lane];
          }
          prow[l] = p;
          pokm[l] = pv != T(0) ? T(1) : T(0);
        }
      } else {
        // Common (unboosted) path: pure selects, no memory traffic beyond
        // the ipiv stores, so the whole epilogue if-converts.
        for (int l = 0; l < nl; ++l) {
          const T pv = bests[l];
          prow[l] = j + static_cast<int>(bestt[l]);
          linfo[l] = (pv == T(0)) & (linfo[l] == 0) ? j + 1 : linfo[l];
          pokm[l] = pv != T(0) ? T(1) : T(0);
        }
        for (int l = 0; l < nl; ++l) g.ipiv[l0 + l][j] = prow[l];
      }
      // Full-width row swap (la::swap over all n columns), batched across
      // lanes. Guarded per lane exactly like la::getf2 (only on a usable
      // pivot), but expressed branch-free: a lane that keeps its row
      // swaps with itself, storing its own bits back. Row j is touched
      // as one contiguous lane vector per column; only the partner row
      // needs a per-lane gather/scatter. This replaces the per-lane
      // column loop, whose data-dependent branch and scattered scalar
      // accesses dominated the whole factorization.
      std::ptrdiff_t doff[kVec];
      bool any_swap = false;
      for (int l = 0; l < nl; ++l) {
        const bool sw = pokm[l] != T(0) && prow[l] != j;
        doff[l] = sw ? static_cast<std::ptrdiff_t>(prow[l] - j) *
                           static_cast<std::ptrdiff_t>(g.batch)
                     : 0;
        any_swap = any_swap || sw;
      }
      if (any_swap) {
        for (int c = 0; c < n; ++c) {
          T* rowj = a + at(j, c, ld, g.batch);
          T jv[kVec], ov[kVec];
          for (int l = 0; l < nl; ++l) jv[l] = rowj[l];
          for (int l = 0; l < nl; ++l) ov[l] = rowj[doff[l] + l];
          for (int l = 0; l < nl; ++l) rowj[l] = ov[l];
          for (int l = 0; l < nl; ++l) rowj[doff[l] + l] = jv[l];
        }
      }
      // Reciprocal scale of the subdiagonal (la::scal with inv = 1/pivot).
      for (int l = 0; l < nl; ++l) {
        inv[l] =
            pokm[l] != T(0) ? T(1) / a[at(j, j, ld, g.batch) + l] : T(1);
      }
      // If-converted (select, not `*= 1.0`): dead lanes keep their exact
      // old bits and the loop vectorizes.
      for (int i = j + 1; i < m; ++i) {
        T* col = a + at(i, j, ld, g.batch);
        for (int l = 0; l < nl; ++l) {
          col[l] = pokm[l] != T(0) ? col[l] * inv[l] : col[l];
        }
      }
      // Unconditional rank-1 trailing update (la::ger runs even on a zero
      // pivot), with mk::ger_unit's per-column `yj == 0` skip per lane.
      for (int jj = j + 1; jj < n; ++jj) {
        T yj[kVec];
        const T* yrow = a + at(j, jj, ld, g.batch);
        for (int l = 0; l < nl; ++l) yj[l] = T(-1) * yrow[l];
        // If-converted form of mk::ger_unit's `yj == 0` column skip: the
        // skipped lane stores its old value back bit-for-bit (a `+= 0.0`
        // would lose a -0.0), turning the guard into a vectorizable
        // select.
        for (int i = j + 1; i < m; ++i) {
          const T* x = a + at(i, j, ld, g.batch);
          T* cc = a + at(i, jj, ld, g.batch);
          // Snapshot the multiplier column entry so the update loop
          // touches `a` only through cc (columns j and jj are disjoint;
          // the copy just makes that visible to the vectorizer).
          T xv[kVec];
          for (int l = 0; l < nl; ++l) xv[l] = x[l];
          for (int l = 0; l < nl; ++l) {
            cc[l] = yj[l] != T(0) ? cc[l] + xv[l] * yj[l] : cc[l];
          }
        }
      }
    }
    if (g.info != nullptr) {
      for (int l = 0; l < nl; ++l) {
        if (linfo[l] != 0 && g.info[l0 + l] == 0) g.info[l0 + l] = linfo[l];
      }
    }
  }
}

template <typename T>
void getf2_fn(const Kernel& kd, const Args& g) {
  const int m = kd.m;
  const int n = kd.n;
  for (int l0 = g.lane0; l0 < g.lane1; l0 += kVec) {
    const int nl = std::min(kVec, g.lane1 - l0);
    if (nl == kVec)
      getf2_chunk<kVec, T>(m, n, g, l0, nl);
    else
      getf2_chunk<0, T>(m, n, g, l0, nl);
  }
}

// Size-specialization switch over a pinned dimension in [1, 16] (the
// libxsmm idiom, same shape as mk::trsm_left_small's tiny dispatch), per
// element type.
#define IRRLU_ILV_SPEC16(kd, fnbase, dim, T)       \
  switch (dim) {                                   \
    case 1: (kd).fn = &fnbase<1, T>; break;        \
    case 2: (kd).fn = &fnbase<2, T>; break;        \
    case 3: (kd).fn = &fnbase<3, T>; break;        \
    case 4: (kd).fn = &fnbase<4, T>; break;        \
    case 5: (kd).fn = &fnbase<5, T>; break;        \
    case 6: (kd).fn = &fnbase<6, T>; break;        \
    case 7: (kd).fn = &fnbase<7, T>; break;        \
    case 8: (kd).fn = &fnbase<8, T>; break;        \
    case 9: (kd).fn = &fnbase<9, T>; break;        \
    case 10: (kd).fn = &fnbase<10, T>; break;      \
    case 11: (kd).fn = &fnbase<11, T>; break;      \
    case 12: (kd).fn = &fnbase<12, T>; break;      \
    case 13: (kd).fn = &fnbase<13, T>; break;      \
    case 14: (kd).fn = &fnbase<14, T>; break;      \
    case 15: (kd).fn = &fnbase<15, T>; break;      \
    case 16: (kd).fn = &fnbase<16, T>; break;      \
    default: (kd).fn = &fnbase<0, T>; break;       \
  }

}  // namespace

Kernel make_gemm(int m, int n, int k, Prec prec) {
  Kernel kd;
  kd.m = m;
  kd.n = n;
  kd.k = k;
  kd.prec = prec;
  if (prec == Prec::kF32) {
    IRRLU_ILV_SPEC16(kd, gemm_fn, k, float);
  } else {
    IRRLU_ILV_SPEC16(kd, gemm_fn, k, double);
  }
  kd.spec = k >= 1 && k <= 16 ? k : 0;
  return kd;
}

Kernel make_trsm(bool left, bool lower, bool unit, int m, int n, Prec prec) {
  Kernel kd;
  kd.m = m;
  kd.n = n;
  kd.left = left;
  kd.lower = lower;
  kd.unit = unit;
  kd.prec = prec;
  int tri = left ? m : n;
  if (left) {
    if (prec == Prec::kF32) {
      IRRLU_ILV_SPEC16(kd, trsm_left_fn, tri, float);
    } else {
      IRRLU_ILV_SPEC16(kd, trsm_left_fn, tri, double);
    }
  } else {
    if (prec == Prec::kF32) {
      IRRLU_ILV_SPEC16(kd, trsm_right_fn, tri, float);
    } else {
      IRRLU_ILV_SPEC16(kd, trsm_right_fn, tri, double);
    }
  }
  kd.spec = tri >= 1 && tri <= 16 ? tri : 0;
  return kd;
}

Kernel make_getf2(int m, int n, Prec prec) {
  Kernel kd;
  kd.fn = prec == Prec::kF32 ? &getf2_fn<float> : &getf2_fn<double>;
  kd.m = m;
  kd.n = n;
  kd.prec = prec;
  return kd;
}

#undef IRRLU_ILV_SPEC16

}  // namespace irrlu::la::mk::ilv
