#include "lapack/qr.hpp"

#include <algorithm>
#include <cmath>

#include "lapack/blas.hpp"

namespace irrlu::la {

template <typename T>
T larfg(int n, T* x0, T* x, int incx) {
  if (n <= 1) return T{};
  T xnorm = T{};
  for (int i = 0; i < n - 1; ++i) {
    const T v = x[static_cast<std::ptrdiff_t>(i) * incx];
    xnorm += v * v;
  }
  xnorm = std::sqrt(xnorm);
  if (xnorm == T{}) return T{};
  const T alpha = *x0;
  T beta = -std::copysign(std::hypot(static_cast<double>(alpha),
                                     static_cast<double>(xnorm)),
                          static_cast<double>(alpha));
  const T tau = (beta - alpha) / beta;
  const T scale = T(1) / (alpha - beta);
  scal(n - 1, scale, x, incx);
  *x0 = beta;
  return tau;
}

template <typename T>
void larf_left(int m, int n, const T* v, int incv, T tau, T* c, int ldc,
               T* work) {
  if (tau == T{} || m <= 0 || n <= 0) return;
  // work = C^T v  (v(0) = 1 implicit: v points at v(1:), c row 0 separate)
  for (int j = 0; j < n; ++j) {
    T acc = c[static_cast<std::ptrdiff_t>(j) * ldc];  // v(0) * C(0, j)
    for (int i = 1; i < m; ++i)
      acc += v[static_cast<std::ptrdiff_t>(i - 1) * incv] *
             c[static_cast<std::ptrdiff_t>(j) * ldc + i];
    work[j] = acc;
  }
  // C -= tau * v * work^T
  for (int j = 0; j < n; ++j) {
    const T w = tau * work[j];
    if (w == T{}) continue;
    T* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
    cj[0] -= w;
    for (int i = 1; i < m; ++i)
      cj[i] -= v[static_cast<std::ptrdiff_t>(i - 1) * incv] * w;
  }
}

template <typename T>
void geqr2(int m, int n, T* a, int lda, T* tau, T* work) {
  const int k = std::min(m, n);
  for (int j = 0; j < k; ++j) {
    T* col = a + static_cast<std::ptrdiff_t>(j) * lda + j;
    tau[j] = larfg(m - j, col, col + 1, 1);
    if (j + 1 < n)
      larf_left(m - j, n - j - 1, col + 1, 1, tau[j],
                a + static_cast<std::ptrdiff_t>(j + 1) * lda + j, lda, work);
  }
}

template <typename T>
void larft(int m, int k, const T* v, int ldv, const T* tau, T* t, int ldt) {
  // Forward columnwise: T(0:i, i) = -tau_i * T(0:i, 0:i) * V^T v_i.
  for (int i = 0; i < k; ++i) {
    t[static_cast<std::ptrdiff_t>(i) * ldt + i] = tau[i];
    for (int r = 0; r < i; ++r) {
      // w_r = V(:, r)^T v_i over rows [i, m) with unit diagonals.
      T acc = v[static_cast<std::ptrdiff_t>(r) * ldv + i];  // V(i, r)*v_i(i)=V(i,r)
      for (int row = i + 1; row < m; ++row)
        acc += v[static_cast<std::ptrdiff_t>(r) * ldv + row] *
               v[static_cast<std::ptrdiff_t>(i) * ldv + row];
      t[static_cast<std::ptrdiff_t>(i) * ldt + r] = -tau[i] * acc;
    }
    // T(0:i, i) <- T(0:i, 0:i) * T(0:i, i): in-place upper-triangular
    // multiply. Writing row r only needs rows p >= r of the original
    // column, and each element is read before any later write touches it,
    // so ascending r is safe.
    for (int r = 0; r < i; ++r) {
      T acc = T{};
      for (int p = r; p < i; ++p)
        acc += t[static_cast<std::ptrdiff_t>(p) * ldt + r] *
               t[static_cast<std::ptrdiff_t>(i) * ldt + p];
      t[static_cast<std::ptrdiff_t>(i) * ldt + r] = acc;
    }
  }
}

template <typename T>
void apply_q(Trans trans, int m, int n, int k, const T* v, int ldv,
             const T* tau, T* c, int ldc, T* work) {
  if (trans == Trans::Yes) {
    // Q^T = H_{k-1} ... H_0 applied left means H_0 first.
    for (int j = 0; j < k; ++j)
      larf_left(m - j, n, v + static_cast<std::ptrdiff_t>(j) * ldv + j + 1,
                1, tau[j], c + j, ldc, work);
  } else {
    for (int j = k - 1; j >= 0; --j)
      larf_left(m - j, n, v + static_cast<std::ptrdiff_t>(j) * ldv + j + 1,
                1, tau[j], c + j, ldc, work);
  }
}

#define IRRLU_INSTANTIATE_QR(T)                                            \
  template T larfg<T>(int, T*, T*, int);                                   \
  template void larf_left<T>(int, int, const T*, int, T, T*, int, T*);     \
  template void geqr2<T>(int, int, T*, int, T*, T*);                       \
  template void larft<T>(int, int, const T*, int, const T*, T*, int);      \
  template void apply_q<T>(Trans, int, int, int, const T*, int, const T*,  \
                           T*, int, T*);

IRRLU_INSTANTIATE_QR(float)
IRRLU_INSTANTIATE_QR(double)

#undef IRRLU_INSTANTIATE_QR

}  // namespace irrlu::la
