#include "lapack/microkernel.hpp"

#include <algorithm>
#include <cstddef>
#include <vector>

namespace irrlu::la::mk {

namespace {

/// Thread-local packing workspace, grown on demand and reused across
/// calls. Contents never carry information between calls: every pack
/// rewrites the full panel including the zero padding.
template <typename T>
struct PackBuffers {
  std::vector<T> a, b;
};

template <typename T>
PackBuffers<T>& pack_buffers() {
  static thread_local PackBuffers<T> bufs;
  return bufs;
}

/// Packs an mc x kc block of op(A) (origin (i0, p0) in op-coordinates)
/// into row panels of MR: panel ir holds rows [ir, ir+MR) stored as kc
/// consecutive MR-vectors. Short edge panels are zero-padded to MR.
template <typename T, int MR>
void pack_a(Trans transa, int mc, int kc, const T* a, int lda, int i0,
            int p0, T* buf) {
  for (int i = 0; i < mc; i += MR) {
    const int mr = std::min(MR, mc - i);
    if (transa == Trans::No) {
      // op(A)(i0+i+r, p0+p) = a[(p0+p)*lda + i0+i+r]: columns contiguous.
      const T* ap = a + static_cast<std::ptrdiff_t>(p0) * lda + i0 + i;
      for (int p = 0; p < kc; ++p) {
        const T* col = ap + static_cast<std::ptrdiff_t>(p) * lda;
        int r = 0;
        for (; r < mr; ++r) buf[r] = col[r];
        for (; r < MR; ++r) buf[r] = T{};
        buf += MR;
      }
    } else {
      // op(A)(i0+i+r, p0+p) = a[(i0+i+r)*lda + p0+p]: rows contiguous.
      for (int r = 0; r < mr; ++r) {
        const T* row = a + static_cast<std::ptrdiff_t>(i0 + i + r) * lda + p0;
        for (int p = 0; p < kc; ++p)
          buf[static_cast<std::ptrdiff_t>(p) * MR + r] = row[p];
      }
      for (int r = mr; r < MR; ++r)
        for (int p = 0; p < kc; ++p)
          buf[static_cast<std::ptrdiff_t>(p) * MR + r] = T{};
      buf += static_cast<std::ptrdiff_t>(kc) * MR;
    }
  }
}

/// Packs a kc x nc block of op(B) (origin (p0, j0) in op-coordinates)
/// into column panels of NR: panel jr holds columns [jr, jr+NR) stored as
/// kc consecutive NR-vectors. Short edge panels are zero-padded to NR.
template <typename T, int NR>
void pack_b(Trans transb, int kc, int nc, const T* b, int ldb, int p0,
            int j0, T* buf) {
  for (int j = 0; j < nc; j += NR) {
    const int nr = std::min(NR, nc - j);
    if (transb == Trans::No) {
      // op(B)(p0+p, j0+j+c) = b[(j0+j+c)*ldb + p0+p]: columns contiguous.
      for (int c = 0; c < nr; ++c) {
        const T* col = b + static_cast<std::ptrdiff_t>(j0 + j + c) * ldb + p0;
        for (int p = 0; p < kc; ++p)
          buf[static_cast<std::ptrdiff_t>(p) * NR + c] = col[p];
      }
      for (int c = nr; c < NR; ++c)
        for (int p = 0; p < kc; ++p)
          buf[static_cast<std::ptrdiff_t>(p) * NR + c] = T{};
    } else {
      // op(B)(p0+p, j0+j+c) = b[(p0+p)*ldb + j0+j+c]: rows contiguous.
      for (int p = 0; p < kc; ++p) {
        const T* row = b + static_cast<std::ptrdiff_t>(p0 + p) * ldb + j0 + j;
        T* out = buf + static_cast<std::ptrdiff_t>(p) * NR;
        int c = 0;
        for (; c < nr; ++c) out[c] = row[c];
        for (; c < NR; ++c) out[c] = T{};
      }
    }
    buf += static_cast<std::ptrdiff_t>(kc) * NR;
  }
}

/// The register micro-kernel: acc(MR x NR) += pa-panel * pb-panel over kc
/// steps. acc lives in registers for the constexpr tile sizes; both
/// panels are read at unit stride.
template <typename T, int MR, int NR>
inline void ukernel(int kc, const T* __restrict pa, const T* __restrict pb,
                    T* __restrict acc) {
  for (int p = 0; p < kc; ++p, pa += MR, pb += NR) {
    for (int j = 0; j < NR; ++j) {
      const T bpj = pb[j];
      for (int i = 0; i < MR; ++i) acc[j * MR + i] += pa[i] * bpj;
    }
  }
}

}  // namespace

template <typename T>
void gemm_packed(Trans transa, Trans transb, int m, int n, int k, T alpha,
                 const T* a, int lda, const T* b, int ldb, T* c, int ldc) {
  using TT = TileTraits<T>;
  constexpr int MR = TT::MR, NR = TT::NR;
  constexpr int MC = TT::MC, KC = TT::KC, NC = TT::NC;
  static_assert(MC % MR == 0 && NC % NR == 0);
  if (m <= 0 || n <= 0 || k <= 0 || alpha == T{}) return;

  auto& bufs = pack_buffers<T>();
  bufs.a.resize(static_cast<std::size_t>(MC) * KC);
  bufs.b.resize(static_cast<std::size_t>(KC) * NC);
  T* const pa_buf = bufs.a.data();
  T* const pb_buf = bufs.b.data();

  for (int jc = 0; jc < n; jc += NC) {
    const int nc = std::min(NC, n - jc);
    for (int pc = 0; pc < k; pc += KC) {
      const int kc = std::min(KC, k - pc);
      pack_b<T, NR>(transb, kc, nc, b, ldb, pc, jc, pb_buf);
      for (int ic = 0; ic < m; ic += MC) {
        const int mc = std::min(MC, m - ic);
        pack_a<T, MR>(transa, mc, kc, a, lda, ic, pc, pa_buf);
        for (int jr = 0; jr < nc; jr += NR) {
          const int nr = std::min(NR, nc - jr);
          const T* pb = pb_buf + static_cast<std::ptrdiff_t>(jr) * kc;
          T* ctile = c + static_cast<std::ptrdiff_t>(jc + jr) * ldc + ic;
          for (int ir = 0; ir < mc; ir += MR) {
            const int mr = std::min(MR, mc - ir);
            const T* pa = pa_buf + static_cast<std::ptrdiff_t>(ir) * kc;
            T acc[MR * NR] = {};
            ukernel<T, MR, NR>(kc, pa, pb, acc);
            // Store the valid part of the (possibly padded) tile.
            T* ct = ctile + ir;
            for (int j = 0; j < nr; ++j)
              for (int i = 0; i < mr; ++i)
                ct[static_cast<std::ptrdiff_t>(j) * ldc + i] +=
                    alpha * acc[j * MR + i];
          }
        }
      }
    }
  }
}

template <typename T>
void ger_unit(int m, int n, T alpha, const T* x, const T* y, int incy, T* a,
              int lda) {
  auto col_of = [&](int j) -> T* {
    return a + static_cast<std::ptrdiff_t>(j) * lda;
  };
  auto one_col = [&](int j) {
    const T yj = alpha * y[static_cast<std::ptrdiff_t>(j) * incy];
    if (yj == T{}) return;
    T* col = col_of(j);
    for (int i = 0; i < m; ++i) col[i] += x[i] * yj;
  };
  int j = 0;
  for (; j + 4 <= n; j += 4) {
    const T y0 = alpha * y[static_cast<std::ptrdiff_t>(j) * incy];
    const T y1 = alpha * y[static_cast<std::ptrdiff_t>(j + 1) * incy];
    const T y2 = alpha * y[static_cast<std::ptrdiff_t>(j + 2) * incy];
    const T y3 = alpha * y[static_cast<std::ptrdiff_t>(j + 3) * incy];
    if (y0 != T{} && y1 != T{} && y2 != T{} && y3 != T{}) {
      T* __restrict c0 = col_of(j);
      T* __restrict c1 = col_of(j + 1);
      T* __restrict c2 = col_of(j + 2);
      T* __restrict c3 = col_of(j + 3);
      for (int i = 0; i < m; ++i) {
        const T xi = x[i];
        c0[i] += xi * y0;
        c1[i] += xi * y1;
        c2[i] += xi * y2;
        c3[i] += xi * y3;
      }
    } else {
      for (int jj = j; jj < j + 4; ++jj) one_col(jj);
    }
  }
  for (; j < n; ++j) one_col(j);
}

template <typename T>
void gemv_unit(Trans trans, int m, int n, T alpha, const T* a, int lda,
               const T* x, T beta, T* y) {
  const int ylen = trans == Trans::No ? m : n;
  if (beta == T{}) {
    std::fill(y, y + ylen, T{});
  } else if (beta != T(1)) {
    for (int i = 0; i < ylen; ++i) y[i] *= beta;
  }
  auto col_of = [&](int j) -> const T* {
    return a + static_cast<std::ptrdiff_t>(j) * lda;
  };
  if (trans == Trans::No) {
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const T x0 = alpha * x[j], x1 = alpha * x[j + 1];
      const T x2 = alpha * x[j + 2], x3 = alpha * x[j + 3];
      const T* __restrict c0 = col_of(j);
      const T* __restrict c1 = col_of(j + 1);
      const T* __restrict c2 = col_of(j + 2);
      const T* __restrict c3 = col_of(j + 3);
      // Sequential adds in column order keep the result bit-identical to
      // the one-column reference loop.
      for (int i = 0; i < m; ++i) {
        T yi = y[i];
        yi += c0[i] * x0;
        yi += c1[i] * x1;
        yi += c2[i] * x2;
        yi += c3[i] * x3;
        y[i] = yi;
      }
    }
    for (; j < n; ++j) {
      const T xj = alpha * x[j];
      const T* col = col_of(j);
      for (int i = 0; i < m; ++i) y[i] += col[i] * xj;
    }
  } else {
    int j = 0;
    for (; j + 4 <= n; j += 4) {
      const T* __restrict c0 = col_of(j);
      const T* __restrict c1 = col_of(j + 1);
      const T* __restrict c2 = col_of(j + 2);
      const T* __restrict c3 = col_of(j + 3);
      T a0{}, a1{}, a2{}, a3{};
      for (int i = 0; i < m; ++i) {
        const T xi = x[i];
        a0 += c0[i] * xi;
        a1 += c1[i] * xi;
        a2 += c2[i] * xi;
        a3 += c3[i] * xi;
      }
      y[j] += alpha * a0;
      y[j + 1] += alpha * a1;
      y[j + 2] += alpha * a2;
      y[j + 3] += alpha * a3;
    }
    for (; j < n; ++j) {
      const T* col = col_of(j);
      T acc{};
      for (int i = 0; i < m; ++i) acc += col[i] * x[i];
      y[j] += alpha * acc;
    }
  }
}

namespace {

/// NC right-hand-side columns of the order-M triangle solved together in
/// stack arrays with constant-bound loops the compiler unrolls flat. The
/// NC solves are independent dependency chains, so the divides and axpys
/// interleave for ILP the one-column form cannot reach. Per-element
/// arithmetic (divide-then-axpy, triangle columns ascending for lower /
/// descending for upper) matches the generic right-looking loop exactly,
/// so results are bit-identical to it.
template <int M, int NC, typename T>
void trsm_tiny_cols(bool lower, bool unit, const T* tri, T* b, int ldb) {
  T x[NC][M];
  for (int c = 0; c < NC; ++c) {
    const T* __restrict bc = b + static_cast<std::ptrdiff_t>(c) * ldb;
    for (int i = 0; i < M; ++i) x[c][i] = bc[i];
  }
  auto col_step = [&](int j, int i_begin, int i_end) {
    if (!unit) {
      const T d = tri[j * M + j];
      for (int c = 0; c < NC; ++c) x[c][j] /= d;
    }
    T xj[NC];
    for (int c = 0; c < NC; ++c) xj[c] = x[c][j];
    for (int i = i_begin; i < i_end; ++i) {
      const T ai = tri[j * M + i];
      for (int c = 0; c < NC; ++c) x[c][i] -= ai * xj[c];
    }
  };
  if (lower) {
    for (int j = 0; j < M; ++j) col_step(j, j + 1, M);
  } else {
    for (int j = M - 1; j >= 0; --j) col_step(j, 0, j);
  }
  for (int c = 0; c < NC; ++c) {
    T* __restrict bc = b + static_cast<std::ptrdiff_t>(c) * ldb;
    for (int i = 0; i < M; ++i) bc[i] = x[c][i];
  }
}

/// Fully-unrolled substitution for triangles of compile-time order M
/// (Trans::No only): the triangle is staged once into a contiguous stack
/// tile shared by all right-hand sides, then solved four columns at a
/// time (remainders at 1-3 columns).
template <int M, typename T>
void trsm_left_tiny(bool lower, bool unit, const T* a, int lda, T* b,
                    int ldb, int n) {
  T tri[M * M];
  for (int j = 0; j < M; ++j) {
    const T* __restrict col = a + static_cast<std::ptrdiff_t>(j) * lda;
    for (int i = 0; i < M; ++i) tri[j * M + i] = col[i];
  }
  int c = 0;
  for (; c + 4 <= n; c += 4)
    trsm_tiny_cols<M, 4>(lower, unit, tri,
                         b + static_cast<std::ptrdiff_t>(c) * ldb, ldb);
  switch (n - c) {
    case 3:
      trsm_tiny_cols<M, 3>(lower, unit, tri,
                           b + static_cast<std::ptrdiff_t>(c) * ldb, ldb);
      break;
    case 2:
      trsm_tiny_cols<M, 2>(lower, unit, tri,
                           b + static_cast<std::ptrdiff_t>(c) * ldb, ldb);
      break;
    case 1:
      trsm_tiny_cols<M, 1>(lower, unit, tri,
                           b + static_cast<std::ptrdiff_t>(c) * ldb, ldb);
      break;
    default:
      break;
  }
}

/// Order-dispatch for the tiny kernels; returns false above the cutoff.
template <typename T>
bool trsm_left_tiny_dispatch(bool lower, bool unit, int m, int n, const T* a,
                             int lda, T* b, int ldb) {
  switch (m) {
    case 1: trsm_left_tiny<1>(lower, unit, a, lda, b, ldb, n); return true;
    case 2: trsm_left_tiny<2>(lower, unit, a, lda, b, ldb, n); return true;
    case 3: trsm_left_tiny<3>(lower, unit, a, lda, b, ldb, n); return true;
    case 4: trsm_left_tiny<4>(lower, unit, a, lda, b, ldb, n); return true;
    case 5: trsm_left_tiny<5>(lower, unit, a, lda, b, ldb, n); return true;
    case 6: trsm_left_tiny<6>(lower, unit, a, lda, b, ldb, n); return true;
    case 7: trsm_left_tiny<7>(lower, unit, a, lda, b, ldb, n); return true;
    case 8: trsm_left_tiny<8>(lower, unit, a, lda, b, ldb, n); return true;
    case 9: trsm_left_tiny<9>(lower, unit, a, lda, b, ldb, n); return true;
    case 10: trsm_left_tiny<10>(lower, unit, a, lda, b, ldb, n); return true;
    case 11: trsm_left_tiny<11>(lower, unit, a, lda, b, ldb, n); return true;
    case 12: trsm_left_tiny<12>(lower, unit, a, lda, b, ldb, n); return true;
    case 13: trsm_left_tiny<13>(lower, unit, a, lda, b, ldb, n); return true;
    case 14: trsm_left_tiny<14>(lower, unit, a, lda, b, ldb, n); return true;
    case 15: trsm_left_tiny<15>(lower, unit, a, lda, b, ldb, n); return true;
    case 16: trsm_left_tiny<16>(lower, unit, a, lda, b, ldb, n); return true;
    default: return false;
  }
}

}  // namespace

template <typename T>
void trsm_left_small(Uplo uplo, Trans trans, Diag diag, int m, int n,
                     const T* a, int lda, T* b, int ldb) {
  const bool lower = (uplo == Uplo::Lower) == (trans == Trans::No);
  const bool unit = diag == Diag::Unit;
  // Triangles up to order 16 (the dominant case: la::trsm's on-diagonal
  // blocks and the multifrontal leaf fronts) go through the unrolled
  // fixed-size kernels. Trans::Yes keeps the generic left-looking loop
  // below (its row dots are already contiguous).
  if (trans == Trans::No && m > 0 &&
      trsm_left_tiny_dispatch(lower, unit, m, n, a, lda, b, ldb))
    return;
  // Process the right-hand sides four columns at a time so every triangle
  // element loaded is used four times.
  for (int c0 = 0; c0 < n; c0 += 4) {
    const int nc = std::min(4, n - c0);
    T* x[4];
    for (int c = 0; c < 4; ++c)
      x[c] = b + static_cast<std::ptrdiff_t>(c0 + std::min(c, nc - 1)) * ldb;
    if (trans == Trans::No) {
      // Right-looking: eliminate column j of the triangle (contiguous)
      // from the remaining rows of every rhs.
      auto step = [&](int j, int i_begin, int i_end) {
        const T* __restrict col = a + static_cast<std::ptrdiff_t>(j) * lda;
        if (!unit) {
          const T d = col[j];
          for (int c = 0; c < nc; ++c) x[c][j] /= d;
        }
        const T xj0 = x[0][j], xj1 = x[1][j], xj2 = x[2][j], xj3 = x[3][j];
        T* __restrict x0 = x[0];
        T* __restrict x1 = x[1];
        T* __restrict x2 = x[2];
        T* __restrict x3 = x[3];
        if (nc == 4) {
          for (int i = i_begin; i < i_end; ++i) {
            const T ai = col[i];
            x0[i] -= ai * xj0;
            x1[i] -= ai * xj1;
            x2[i] -= ai * xj2;
            x3[i] -= ai * xj3;
          }
        } else {
          for (int c = 0; c < nc; ++c) {
            T* __restrict xc = x[c];
            const T xj = xc[j];
            for (int i = i_begin; i < i_end; ++i) xc[i] -= col[i] * xj;
          }
        }
      };
      if (lower)
        for (int j = 0; j < m; ++j) step(j, j + 1, m);
      else
        for (int j = m - 1; j >= 0; --j) step(j, 0, j);
    } else {
      // Left-looking: row i of op(A) is the contiguous stored column i;
      // one dot per rhs, all four sharing the row load.
      auto step = [&](int i, int j_begin, int j_end) {
        const T* __restrict row = a + static_cast<std::ptrdiff_t>(i) * lda;
        T acc[4];
        for (int c = 0; c < nc; ++c) acc[c] = x[c][i];
        for (int j = j_begin; j < j_end; ++j) {
          const T aij = row[j];
          for (int c = 0; c < nc; ++c) acc[c] -= aij * x[c][j];
        }
        const T d = row[i];
        for (int c = 0; c < nc; ++c) x[c][i] = unit ? acc[c] : acc[c] / d;
      };
      if (lower)
        for (int i = 0; i < m; ++i) step(i, 0, i);
      else
        for (int i = m - 1; i >= 0; --i) step(i, i + 1, m);
    }
  }
}

template <typename T>
void trsm_right_small(Uplo uplo, Trans trans, Diag diag, int m, int n,
                      const T* a, int lda, T* b, int ldb) {
  const bool lower = (uplo == Uplo::Lower) == (trans == Trans::No);
  auto E = [&](int i, int j) -> T {
    return trans == Trans::No ? a[static_cast<std::ptrdiff_t>(j) * lda + i]
                              : a[static_cast<std::ptrdiff_t>(i) * lda + j];
  };
  // Column j of X depends on columns p past it (lower) or before it
  // (upper); each update is a contiguous axpy over the m rows.
  auto solve_col = [&](int j, int p_begin, int p_end) {
    T* __restrict xj = b + static_cast<std::ptrdiff_t>(j) * ldb;
    for (int p = p_begin; p < p_end; ++p) {
      const T e = E(p, j);
      if (e == T{}) continue;
      const T* __restrict xp = b + static_cast<std::ptrdiff_t>(p) * ldb;
      for (int i = 0; i < m; ++i) xj[i] -= xp[i] * e;
    }
    if (diag == Diag::NonUnit) {
      const T d = E(j, j);
      for (int i = 0; i < m; ++i) xj[i] /= d;
    }
  };
  if (lower)
    for (int j = n - 1; j >= 0; --j) solve_col(j, j + 1, n);
  else
    for (int j = 0; j < n; ++j) solve_col(j, 0, j);
}

#define IRRLU_INSTANTIATE_MK(T)                                             \
  template void gemm_packed<T>(Trans, Trans, int, int, int, T, const T*,    \
                               int, const T*, int, T*, int);                \
  template void ger_unit<T>(int, int, T, const T*, const T*, int, T*, int); \
  template void gemv_unit<T>(Trans, int, int, T, const T*, int, const T*,   \
                             T, T*);                                        \
  template void trsm_left_small<T>(Uplo, Trans, Diag, int, int, const T*,   \
                                   int, T*, int);                           \
  template void trsm_right_small<T>(Uplo, Trans, Diag, int, int, const T*,  \
                                    int, T*, int);

IRRLU_INSTANTIATE_MK(float)
IRRLU_INSTANTIATE_MK(double)
IRRLU_INSTANTIATE_MK(std::complex<double>)

#undef IRRLU_INSTANTIATE_MK

}  // namespace irrlu::la::mk
