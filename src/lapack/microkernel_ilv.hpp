// Batch-axis-vectorized ("interleaved" / SoA) small-matrix microkernels.
//
// A size class of `batch` matrices of shape m x n is stored with element
// (r, c) of matrix (lane) i at buf[(c*ld + r)*batch + i]: the batch index
// is innermost, so a loop over lanes is unit stride — the access pattern
// of "Efficient Interleaved Batch Matrix Solvers for CUDA" (PAPERS.md),
// which on the host turns every inner loop into a vectorizable sweep and
// on the simulated device makes every access coalesced.
//
// The kernels here are pure host math over that layout; launch wrappers,
// cost accounting and the dispatch cache live in src/irrblas. Each entry
// point processes a lane slice [lane0, lane1) of the class, which is how
// the device wrappers grid the batch into lane-chunk blocks.
//
// Bitwise contract (what tests/test_interleaved.cpp asserts): for every
// lane, the results are bit-identical to running the strided engine path
// (la::getf2 / la::trsm / la::gemm) on that lane's matrix alone. The
// batch is a set of independent per-matrix problems, so reordering the
// loops lane-innermost preserves bits exactly as long as each lane's
// per-element operation sequence replicates the strided engine's; every
// kernel below mirrors its strided counterpart's expression shapes and
// loop orders (documented inline), and this translation unit is compiled
// with the same optimization flags as microkernel.cpp so floating-point
// contraction decisions match.
#pragma once

namespace irrlu::la::mk::ilv {

/// Element precision of a kernel body. Every kernel runs its arithmetic
/// entirely in its own precision (alpha/beta are converted on entry), so
/// the f32 variants are per lane bit-identical to the strided engine path
/// instantiated for float, exactly as the f64 variants are for double.
enum class Prec { kF64, kF32 };

/// Arguments of one interleaved kernel call. Pointers are class bases
/// (already offset to the target submatrix) of the kernel's element type
/// — the Kernel's Prec says whether they are double or float lanes; lane
/// indexing of the per-lane arrays (ipiv/info/anorm/boost) is absolute,
/// i.e. by the same lane index that addresses the SoA buffers.
struct Args {
  int lane0 = 0;  ///< first lane of the slice
  int lane1 = 0;  ///< one past the last lane
  int batch = 0;  ///< full lane stride of the SoA buffers
  double alpha = 1.0;
  double beta = 1.0;
  const void* a = nullptr;  ///< gemm A / trsm triangle
  int lda = 0;
  const void* b = nullptr;  ///< gemm B
  int ldb = 0;
  void* c = nullptr;  ///< in/out matrix (gemm C, trsm B, getf2 A)
  int ldc = 0;
  // getf2 extras (see la::getf2 and irr_getf2_fused):
  int* const* ipiv = nullptr;     ///< per-lane pivot arrays
  int* info = nullptr;            ///< per-lane LAPACK info (latched)
  double tau = 0.0;               ///< boost threshold factor
  const double* anorm = nullptr;  ///< per-lane boost reference, null = off
  int* boost = nullptr;           ///< per-lane boosted-pivot counters
};

struct Kernel;
/// A kernel reads its shape from its own descriptor: size-specialized
/// variants compiled for fixed dimensions ignore the runtime fields their
/// specialization pins down, the generic fallbacks consume them all.
using Fn = void (*)(const Kernel& k, const Args& a);

/// Self-descriptive kernel handle, the value type of the dispatch cache
/// (libxsmm idiom: one resolved handle per (op, shape), reused across
/// calls without re-deciding anything).
struct Kernel {
  Fn fn = nullptr;
  int m = 0, n = 0, k = 0;  ///< problem shape (k = 0 for trsm/getf2)
  bool left = false;        ///< trsm side
  bool lower = false;       ///< trsm effective triangle
  bool unit = false;        ///< trsm diagonal
  Prec prec = Prec::kF64;   ///< element type the body operates on
  int spec = 0;  ///< pinned compile-time dimension, 0 = generic fallback
};

/// C (m x n) = alpha * A (m x k) * B (k x n) + beta * C, Trans::No both
/// sides, per lane bit-identical to la::gemm (beta pass, then a single
/// k-ascending accumulation chain per element — exact for k <= KC = 256,
/// which covers every small size class routed through this layout).
/// Specialized over k in [1, 16].
Kernel make_gemm(int m, int n, int k, Prec prec = Prec::kF64);

/// Triangular solve, Trans::No: op over B (m x n) with the triangle A
/// (order m for left, n for right), per lane bit-identical to la::trsm
/// including its alpha scaling and its 16-blocked substitution structure
/// above order 16. Specialized over triangle orders in [1, 16].
Kernel make_trsm(bool left, bool lower, bool unit, int m, int n,
                 Prec prec = Prec::kF64);

/// Unblocked right-looking LU with partial pivoting and optional
/// small-pivot boosting, per lane bit-identical to la::getf2 (and so to
/// the fused panel kernel irr_getf2_fused, which wraps it): pivot search
/// with the NaN-freeze iamax semantics, full-width row swaps, guarded
/// reciprocal scaling, boost rule and LAPACK info latching all replicate
/// exactly. Generic only — the column loop is data-dependent, so there is
/// no profitable dimension to pin.
Kernel make_getf2(int m, int n, Prec prec = Prec::kF64);

}  // namespace irrlu::la::mk::ilv
