#include "lapack/blas.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "common/error.hpp"

namespace irrlu::la {

template <typename T>
int iamax(int n, const T* x, int incx) {
  if (n <= 0) return 0;
  int best = 0;
  auto bestv = std::abs(x[0]);  // magnitude type (double for complex)
  for (int i = 1; i < n; ++i) {
    const auto v = std::abs(x[static_cast<std::ptrdiff_t>(i) * incx]);
    if (v > bestv) {
      bestv = v;
      best = i;
    }
  }
  return best;
}

template <typename T>
void scal(int n, T alpha, T* x, int incx) {
  for (int i = 0; i < n; ++i) x[static_cast<std::ptrdiff_t>(i) * incx] *= alpha;
}

template <typename T>
void swap(int n, T* x, int incx, T* y, int incy) {
  for (int i = 0; i < n; ++i)
    std::swap(x[static_cast<std::ptrdiff_t>(i) * incx],
              y[static_cast<std::ptrdiff_t>(i) * incy]);
}

template <typename T>
void ger(int m, int n, T alpha, const T* x, int incx, const T* y, int incy,
         T* a, int lda) {
  for (int j = 0; j < n; ++j) {
    const T yj = alpha * y[static_cast<std::ptrdiff_t>(j) * incy];
    if (yj == T{}) continue;
    T* col = a + static_cast<std::ptrdiff_t>(j) * lda;
    for (int i = 0; i < m; ++i)
      col[i] += x[static_cast<std::ptrdiff_t>(i) * incx] * yj;
  }
}

template <typename T>
void gemv(Trans trans, int m, int n, T alpha, const T* a, int lda, const T* x,
          int incx, T beta, T* y, int incy) {
  const int ylen = trans == Trans::No ? m : n;
  if (beta != T(1))
    for (int i = 0; i < ylen; ++i)
      y[static_cast<std::ptrdiff_t>(i) * incy] *= beta;
  if (trans == Trans::No) {
    for (int j = 0; j < n; ++j) {
      const T xj = alpha * x[static_cast<std::ptrdiff_t>(j) * incx];
      const T* col = a + static_cast<std::ptrdiff_t>(j) * lda;
      for (int i = 0; i < m; ++i)
        y[static_cast<std::ptrdiff_t>(i) * incy] += col[i] * xj;
    }
  } else {
    for (int j = 0; j < n; ++j) {
      const T* col = a + static_cast<std::ptrdiff_t>(j) * lda;
      T acc{};
      for (int i = 0; i < m; ++i)
        acc += col[i] * x[static_cast<std::ptrdiff_t>(i) * incx];
      y[static_cast<std::ptrdiff_t>(j) * incy] += alpha * acc;
    }
  }
}

template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, int m, const T* a, int lda,
          T* x, int incx) {
  auto X = [&](int i) -> T& {
    return x[static_cast<std::ptrdiff_t>(i) * incx];
  };
  auto A = [&](int i, int j) -> T {
    return a[static_cast<std::ptrdiff_t>(j) * lda + i];
  };
  const bool lower = (uplo == Uplo::Lower) == (trans == Trans::No);
  // Effective element accessor folding the transpose.
  auto E = [&](int i, int j) -> T {
    return trans == Trans::No ? A(i, j) : A(j, i);
  };
  if (lower) {
    for (int i = 0; i < m; ++i) {
      T acc = X(i);
      for (int j = 0; j < i; ++j) acc -= E(i, j) * X(j);
      X(i) = diag == Diag::Unit ? acc : acc / E(i, i);
    }
  } else {
    for (int i = m - 1; i >= 0; --i) {
      T acc = X(i);
      for (int j = i + 1; j < m; ++j) acc -= E(i, j) * X(j);
      X(i) = diag == Diag::Unit ? acc : acc / E(i, i);
    }
  }
}

namespace {

// Tiled C += alpha * A * B microkernel for the NoTrans/NoTrans fast path.
template <typename T>
void gemm_nn_tiled(int m, int n, int k, T alpha, const T* a, int lda,
                   const T* b, int ldb, T* c, int ldc) {
  constexpr int MC = 64, NC = 64, KC = 128;
  for (int jj = 0; jj < n; jj += NC) {
    const int nb = std::min(NC, n - jj);
    for (int kk = 0; kk < k; kk += KC) {
      const int kb = std::min(KC, k - kk);
      for (int ii = 0; ii < m; ii += MC) {
        const int mb = std::min(MC, m - ii);
        for (int j = 0; j < nb; ++j) {
          T* cj = c + static_cast<std::ptrdiff_t>(jj + j) * ldc + ii;
          const T* bj = b + static_cast<std::ptrdiff_t>(jj + j) * ldb + kk;
          for (int p = 0; p < kb; ++p) {
            const T bpj = alpha * bj[p];
            if (bpj == T{}) continue;
            const T* ap = a + static_cast<std::ptrdiff_t>(kk + p) * lda + ii;
            for (int i = 0; i < mb; ++i) cj[i] += ap[i] * bpj;
          }
        }
      }
    }
  }
}

}  // namespace

template <typename T>
void gemm(Trans transa, Trans transb, int m, int n, int k, T alpha,
          const T* a, int lda, const T* b, int ldb, T beta, T* c, int ldc) {
  if (m <= 0 || n <= 0) return;
  if (beta != T(1)) {
    for (int j = 0; j < n; ++j) {
      T* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
      if (beta == T{})
        std::fill(cj, cj + m, T{});
      else
        for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (k <= 0 || alpha == T{}) return;

  if (transa == Trans::No && transb == Trans::No) {
    gemm_nn_tiled(m, n, k, alpha, a, lda, b, ldb, c, ldc);
    return;
  }

  auto A = [&](int i, int p) -> T {
    return transa == Trans::No
               ? a[static_cast<std::ptrdiff_t>(p) * lda + i]
               : a[static_cast<std::ptrdiff_t>(i) * lda + p];
  };
  auto B = [&](int p, int j) -> T {
    return transb == Trans::No
               ? b[static_cast<std::ptrdiff_t>(j) * ldb + p]
               : b[static_cast<std::ptrdiff_t>(p) * ldb + j];
  };
  for (int j = 0; j < n; ++j) {
    T* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
    for (int i = 0; i < m; ++i) {
      T acc{};
      for (int p = 0; p < k; ++p) acc += A(i, p) * B(p, j);
      cj[i] += alpha * acc;
    }
  }
}

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n, T alpha,
          const T* a, int lda, T* b, int ldb) {
  if (m <= 0 || n <= 0) return;
  if (alpha != T(1)) {
    for (int j = 0; j < n; ++j) {
      T* bj = b + static_cast<std::ptrdiff_t>(j) * ldb;
      for (int i = 0; i < m; ++i) bj[i] *= alpha;
    }
  }
  auto A = [&](int i, int j) -> T {
    return a[static_cast<std::ptrdiff_t>(j) * lda + i];
  };
  if (side == Side::Left) {
    // Solve op(A) X = B column by column.
    const bool lower = (uplo == Uplo::Lower) == (trans == Trans::No);
    auto E = [&](int i, int j) -> T {
      return trans == Trans::No ? A(i, j) : A(j, i);
    };
    for (int col = 0; col < n; ++col) {
      T* x = b + static_cast<std::ptrdiff_t>(col) * ldb;
      if (lower) {
        for (int i = 0; i < m; ++i) {
          T acc = x[i];
          for (int j = 0; j < i; ++j) acc -= E(i, j) * x[j];
          x[i] = diag == Diag::Unit ? acc : acc / E(i, i);
        }
      } else {
        for (int i = m - 1; i >= 0; --i) {
          T acc = x[i];
          for (int j = i + 1; j < m; ++j) acc -= E(i, j) * x[j];
          x[i] = diag == Diag::Unit ? acc : acc / E(i, i);
        }
      }
    }
  } else {
    // Solve X op(A) = B row by row; A is n x n.
    const bool lower = (uplo == Uplo::Lower) == (trans == Trans::No);
    auto E = [&](int i, int j) -> T {
      return trans == Trans::No ? A(i, j) : A(j, i);
    };
    // X op(A) = B  <=>  for each column j of X (in dependency order):
    //   X(:,j) = (B(:,j) - sum_{p != j processed} X(:,p) E(p, j)) / E(j, j)
    if (lower) {
      // op(A) lower: column j of X depends on columns p > j.
      for (int j = n - 1; j >= 0; --j) {
        T* xj = b + static_cast<std::ptrdiff_t>(j) * ldb;
        for (int p = j + 1; p < n; ++p) {
          const T e = E(p, j);
          if (e == T{}) continue;
          const T* xp = b + static_cast<std::ptrdiff_t>(p) * ldb;
          for (int i = 0; i < m; ++i) xj[i] -= xp[i] * e;
        }
        if (diag == Diag::NonUnit) {
          const T d = E(j, j);
          for (int i = 0; i < m; ++i) xj[i] /= d;
        }
      }
    } else {
      // op(A) upper: column j of X depends on columns p < j.
      for (int j = 0; j < n; ++j) {
        T* xj = b + static_cast<std::ptrdiff_t>(j) * ldb;
        for (int p = 0; p < j; ++p) {
          const T e = E(p, j);
          if (e == T{}) continue;
          const T* xp = b + static_cast<std::ptrdiff_t>(p) * ldb;
          for (int i = 0; i < m; ++i) xj[i] -= xp[i] * e;
        }
        if (diag == Diag::NonUnit) {
          const T d = E(j, j);
          for (int i = 0; i < m; ++i) xj[i] /= d;
        }
      }
    }
  }
}

#define IRRLU_INSTANTIATE_BLAS(T)                                             \
  template int iamax<T>(int, const T*, int);                                  \
  template void scal<T>(int, T, T*, int);                                     \
  template void swap<T>(int, T*, int, T*, int);                               \
  template void ger<T>(int, int, T, const T*, int, const T*, int, T*, int);   \
  template void gemv<T>(Trans, int, int, T, const T*, int, const T*, int, T,  \
                        T*, int);                                             \
  template void trsv<T>(Uplo, Trans, Diag, int, const T*, int, T*, int);      \
  template void gemm<T>(Trans, Trans, int, int, int, T, const T*, int,        \
                        const T*, int, T, T*, int);                           \
  template void trsm<T>(Side, Uplo, Trans, Diag, int, int, T, const T*, int,  \
                        T*, int);

IRRLU_INSTANTIATE_BLAS(float)
IRRLU_INSTANTIATE_BLAS(double)
IRRLU_INSTANTIATE_BLAS(std::complex<double>)

#undef IRRLU_INSTANTIATE_BLAS

}  // namespace irrlu::la
