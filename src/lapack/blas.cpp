#include "lapack/blas.hpp"

#include <algorithm>
#include <cmath>
#include <complex>
#include <vector>

#include "common/error.hpp"
#include "lapack/microkernel.hpp"

namespace irrlu::la {

template <typename T>
int iamax(int n, const T* x, int incx) {
  if (n <= 0 || incx <= 0) return -1;
  int best = 0;
  auto bestv = std::abs(x[0]);  // magnitude type (double for complex)
  if (std::isnan(bestv)) return 0;
  for (int i = 1; i < n; ++i) {
    const auto v = std::abs(x[static_cast<std::ptrdiff_t>(i) * incx]);
    // A NaN magnitude outranks every finite one (first NaN wins), so the
    // result never depends on how '>' happens to order NaN comparisons.
    if (std::isnan(v)) return i;
    if (v > bestv) {
      bestv = v;
      best = i;
    }
  }
  return best;
}

template <typename T>
void scal(int n, T alpha, T* x, int incx) {
  for (int i = 0; i < n; ++i) x[static_cast<std::ptrdiff_t>(i) * incx] *= alpha;
}

template <typename T>
void swap(int n, T* x, int incx, T* y, int incy) {
  for (int i = 0; i < n; ++i)
    std::swap(x[static_cast<std::ptrdiff_t>(i) * incx],
              y[static_cast<std::ptrdiff_t>(i) * incy]);
}

template <typename T>
void ger(int m, int n, T alpha, const T* x, int incx, const T* y, int incy,
         T* a, int lda) {
  if (m <= 0 || n <= 0) return;
  if (incx == 1) {
    mk::ger_unit(m, n, alpha, x, y, incy, a, lda);
    return;
  }
  for (int j = 0; j < n; ++j) {
    const T yj = alpha * y[static_cast<std::ptrdiff_t>(j) * incy];
    if (yj == T{}) continue;
    T* col = a + static_cast<std::ptrdiff_t>(j) * lda;
    for (int i = 0; i < m; ++i)
      col[i] += x[static_cast<std::ptrdiff_t>(i) * incx] * yj;
  }
}

template <typename T>
void gemv(Trans trans, int m, int n, T alpha, const T* a, int lda, const T* x,
          int incx, T beta, T* y, int incy) {
  if (incx == 1 && incy == 1) {
    mk::gemv_unit(trans, m, n, alpha, a, lda, x, beta, y);
    return;
  }
  const int ylen = trans == Trans::No ? m : n;
  if (beta == T{}) {
    for (int i = 0; i < ylen; ++i)
      y[static_cast<std::ptrdiff_t>(i) * incy] = T{};
  } else if (beta != T(1)) {
    for (int i = 0; i < ylen; ++i)
      y[static_cast<std::ptrdiff_t>(i) * incy] *= beta;
  }
  if (trans == Trans::No) {
    for (int j = 0; j < n; ++j) {
      const T xj = alpha * x[static_cast<std::ptrdiff_t>(j) * incx];
      const T* col = a + static_cast<std::ptrdiff_t>(j) * lda;
      for (int i = 0; i < m; ++i)
        y[static_cast<std::ptrdiff_t>(i) * incy] += col[i] * xj;
    }
  } else {
    for (int j = 0; j < n; ++j) {
      const T* col = a + static_cast<std::ptrdiff_t>(j) * lda;
      T acc{};
      for (int i = 0; i < m; ++i)
        acc += col[i] * x[static_cast<std::ptrdiff_t>(i) * incx];
      y[static_cast<std::ptrdiff_t>(j) * incy] += alpha * acc;
    }
  }
}

template <typename T>
void trsv(Uplo uplo, Trans trans, Diag diag, int m, const T* a, int lda,
          T* x, int incx) {
  auto X = [&](int i) -> T& {
    return x[static_cast<std::ptrdiff_t>(i) * incx];
  };
  auto A = [&](int i, int j) -> T {
    return a[static_cast<std::ptrdiff_t>(j) * lda + i];
  };
  const bool lower = (uplo == Uplo::Lower) == (trans == Trans::No);
  // Effective element accessor folding the transpose.
  auto E = [&](int i, int j) -> T {
    return trans == Trans::No ? A(i, j) : A(j, i);
  };
  if (lower) {
    for (int i = 0; i < m; ++i) {
      T acc = X(i);
      for (int j = 0; j < i; ++j) acc -= E(i, j) * X(j);
      X(i) = diag == Diag::Unit ? acc : acc / E(i, i);
    }
  } else {
    for (int i = m - 1; i >= 0; --i) {
      T acc = X(i);
      for (int j = i + 1; j < m; ++j) acc -= E(i, j) * X(j);
      X(i) = diag == Diag::Unit ? acc : acc / E(i, i);
    }
  }
}

namespace {

/// Unblocked substitution solve of op(A) X = B (Side::Left) or X op(A) = B
/// (Side::Right) with alpha already applied. This is the pre-engine
/// reference algorithm; the blocked trsm uses it for the on-diagonal
/// blocks and ref::trsm exposes it for cross-checking.
template <typename T>
void trsm_substitute(Side side, Uplo uplo, Trans trans, Diag diag, int m,
                     int n, const T* a, int lda, T* b, int ldb) {
  auto A = [&](int i, int j) -> T {
    return a[static_cast<std::ptrdiff_t>(j) * lda + i];
  };
  const bool lower = (uplo == Uplo::Lower) == (trans == Trans::No);
  auto E = [&](int i, int j) -> T {
    return trans == Trans::No ? A(i, j) : A(j, i);
  };
  if (side == Side::Left) {
    // Solve op(A) X = B column by column.
    for (int col = 0; col < n; ++col) {
      T* x = b + static_cast<std::ptrdiff_t>(col) * ldb;
      if (lower) {
        for (int i = 0; i < m; ++i) {
          T acc = x[i];
          for (int j = 0; j < i; ++j) acc -= E(i, j) * x[j];
          x[i] = diag == Diag::Unit ? acc : acc / E(i, i);
        }
      } else {
        for (int i = m - 1; i >= 0; --i) {
          T acc = x[i];
          for (int j = i + 1; j < m; ++j) acc -= E(i, j) * x[j];
          x[i] = diag == Diag::Unit ? acc : acc / E(i, i);
        }
      }
    }
  } else {
    // Solve X op(A) = B; A is n x n. For each column j of X in
    // dependency order:
    //   X(:,j) = (B(:,j) - sum_{p processed} X(:,p) E(p, j)) / E(j, j)
    if (lower) {
      // op(A) lower: column j of X depends on columns p > j.
      for (int j = n - 1; j >= 0; --j) {
        T* xj = b + static_cast<std::ptrdiff_t>(j) * ldb;
        for (int p = j + 1; p < n; ++p) {
          const T e = E(p, j);
          if (e == T{}) continue;
          const T* xp = b + static_cast<std::ptrdiff_t>(p) * ldb;
          for (int i = 0; i < m; ++i) xj[i] -= xp[i] * e;
        }
        if (diag == Diag::NonUnit) {
          const T d = E(j, j);
          for (int i = 0; i < m; ++i) xj[i] /= d;
        }
      }
    } else {
      // op(A) upper: column j of X depends on columns p < j.
      for (int j = 0; j < n; ++j) {
        T* xj = b + static_cast<std::ptrdiff_t>(j) * ldb;
        for (int p = 0; p < j; ++p) {
          const T e = E(p, j);
          if (e == T{}) continue;
          const T* xp = b + static_cast<std::ptrdiff_t>(p) * ldb;
          for (int i = 0; i < m; ++i) xj[i] -= xp[i] * e;
        }
        if (diag == Diag::NonUnit) {
          const T d = E(j, j);
          for (int i = 0; i < m; ++i) xj[i] /= d;
        }
      }
    }
  }
}

template <typename T>
void scale_matrix(int m, int n, T alpha, T* b, int ldb) {
  if (alpha == T(1)) return;
  for (int j = 0; j < n; ++j) {
    T* bj = b + static_cast<std::ptrdiff_t>(j) * ldb;
    for (int i = 0; i < m; ++i) bj[i] *= alpha;
  }
}

/// Order of the on-diagonal triangular blocks of the blocked trsm; above
/// this the GEMM updates dominate and run through the packed engine.
constexpr int kTrsmBlock = 16;

/// Engine base case: contiguity-aware small substitution (alpha already
/// applied by the caller).
template <typename T>
void trsm_small(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n,
                const T* a, int lda, T* b, int ldb) {
  if (side == Side::Left)
    mk::trsm_left_small(uplo, trans, diag, m, n, a, lda, b, ldb);
  else
    mk::trsm_right_small(uplo, trans, diag, m, n, a, lda, b, ldb);
}

}  // namespace

template <typename T>
void gemm(Trans transa, Trans transb, int m, int n, int k, T alpha,
          const T* a, int lda, const T* b, int ldb, T beta, T* c, int ldc) {
  if (m <= 0 || n <= 0) return;
  if (beta != T(1)) {
    for (int j = 0; j < n; ++j) {
      T* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
      if (beta == T{})
        std::fill(cj, cj + m, T{});
      else
        for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (k <= 0 || alpha == T{}) return;
  mk::gemm_packed(transa, transb, m, n, k, alpha, a, lda, b, ldb, c, ldc);
}

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n, T alpha,
          const T* a, int lda, T* b, int ldb) {
  if (m <= 0 || n <= 0) return;
  scale_matrix(m, n, alpha, b, ldb);
  const int tri = side == Side::Left ? m : n;
  if (tri <= kTrsmBlock) {
    trsm_small(side, uplo, trans, diag, m, n, a, lda, b, ldb);
    return;
  }

  // Blocked substitution: small on-diagonal solves + packed GEMM updates
  // of the remaining panel. `lower` refers to the effective triangle
  // op(A); the stored-layout pointers below fold the transpose.
  const bool lower = (uplo == Uplo::Lower) == (trans == Trans::No);
  auto diag_block = [&](int j0) -> const T* {
    return a + static_cast<std::ptrdiff_t>(j0) * lda + j0;
  };
  const int last = (tri - 1) / kTrsmBlock * kTrsmBlock;

  if (side == Side::Left) {
    if (lower) {
      // Forward: solve the top block, eliminate it from the rows below.
      for (int i0 = 0; i0 < tri; i0 += kTrsmBlock) {
        const int ib = std::min(kTrsmBlock, tri - i0);
        trsm_small(side, uplo, trans, diag, ib, n, diag_block(i0), lda,
                        b + i0, ldb);
        const int rm = tri - i0 - ib;
        if (rm > 0) {
          // op(A)(i0+ib.., i0..i0+ib) is stored at (i0+ib, i0) for
          // Trans::No and at (i0, i0+ib) for Trans::Yes.
          const T* ab = trans == Trans::No
                            ? a + static_cast<std::ptrdiff_t>(i0) * lda +
                                  i0 + ib
                            : a + static_cast<std::ptrdiff_t>(i0 + ib) * lda +
                                  i0;
          gemm(trans, Trans::No, rm, n, ib, T(-1), ab, lda, b + i0, ldb,
               T(1), b + i0 + ib, ldb);
        }
      }
    } else {
      // Backward: solve the bottom block, eliminate it from the rows
      // above.
      for (int i0 = last; i0 >= 0; i0 -= kTrsmBlock) {
        const int ib = std::min(kTrsmBlock, tri - i0);
        trsm_small(side, uplo, trans, diag, ib, n, diag_block(i0), lda,
                        b + i0, ldb);
        if (i0 > 0) {
          // op(A)(0..i0, i0..i0+ib) is stored at (0, i0) for Trans::No
          // and at (i0, 0) for Trans::Yes.
          const T* ab = trans == Trans::No
                            ? a + static_cast<std::ptrdiff_t>(i0) * lda
                            : a + i0;
          gemm(trans, Trans::No, i0, n, ib, T(-1), ab, lda, b + i0, ldb,
               T(1), b, ldb);
        }
      }
    }
  } else {
    if (lower) {
      // op(A) lower: right-most column block of X first, then eliminate
      // it from the columns to its left.
      for (int j0 = last; j0 >= 0; j0 -= kTrsmBlock) {
        const int jb = std::min(kTrsmBlock, tri - j0);
        trsm_small(side, uplo, trans, diag, m, jb, diag_block(j0), lda,
                        b + static_cast<std::ptrdiff_t>(j0) * ldb, ldb);
        if (j0 > 0) {
          // op(A)(j0..j0+jb, 0..j0) is stored at (j0, 0) for Trans::No
          // and at (0, j0) for Trans::Yes.
          const T* ab = trans == Trans::No
                            ? a + j0
                            : a + static_cast<std::ptrdiff_t>(j0) * lda;
          gemm(Trans::No, trans, m, j0, jb, T(-1),
               b + static_cast<std::ptrdiff_t>(j0) * ldb, ldb, ab, lda, T(1),
               b, ldb);
        }
      }
    } else {
      // op(A) upper: left-most column block first, then eliminate it from
      // the columns to its right.
      for (int j0 = 0; j0 < tri; j0 += kTrsmBlock) {
        const int jb = std::min(kTrsmBlock, tri - j0);
        trsm_small(side, uplo, trans, diag, m, jb, diag_block(j0), lda,
                        b + static_cast<std::ptrdiff_t>(j0) * ldb, ldb);
        const int rn = tri - j0 - jb;
        if (rn > 0) {
          // op(A)(j0..j0+jb, j0+jb..) is stored at (j0, j0+jb) for
          // Trans::No and at (j0+jb, j0) for Trans::Yes.
          const T* ab = trans == Trans::No
                            ? a + static_cast<std::ptrdiff_t>(j0 + jb) * lda +
                                  j0
                            : a + static_cast<std::ptrdiff_t>(j0) * lda + j0 +
                                  jb;
          gemm(Trans::No, trans, m, rn, jb, T(-1),
               b + static_cast<std::ptrdiff_t>(j0) * ldb, ldb, ab, lda, T(1),
               b + static_cast<std::ptrdiff_t>(j0 + jb) * ldb, ldb);
        }
      }
    }
  }
}

namespace ref {

template <typename T>
void gemm(Trans transa, Trans transb, int m, int n, int k, T alpha,
          const T* a, int lda, const T* b, int ldb, T beta, T* c, int ldc) {
  if (m <= 0 || n <= 0) return;
  if (beta != T(1)) {
    for (int j = 0; j < n; ++j) {
      T* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
      if (beta == T{})
        std::fill(cj, cj + m, T{});
      else
        for (int i = 0; i < m; ++i) cj[i] *= beta;
    }
  }
  if (k <= 0 || alpha == T{}) return;
  auto A = [&](int i, int p) -> T {
    return transa == Trans::No
               ? a[static_cast<std::ptrdiff_t>(p) * lda + i]
               : a[static_cast<std::ptrdiff_t>(i) * lda + p];
  };
  auto B = [&](int p, int j) -> T {
    return transb == Trans::No
               ? b[static_cast<std::ptrdiff_t>(j) * ldb + p]
               : b[static_cast<std::ptrdiff_t>(p) * ldb + j];
  };
  for (int j = 0; j < n; ++j) {
    T* cj = c + static_cast<std::ptrdiff_t>(j) * ldc;
    for (int i = 0; i < m; ++i) {
      T acc{};
      for (int p = 0; p < k; ++p) acc += A(i, p) * B(p, j);
      cj[i] += alpha * acc;
    }
  }
}

template <typename T>
void trsm(Side side, Uplo uplo, Trans trans, Diag diag, int m, int n, T alpha,
          const T* a, int lda, T* b, int ldb) {
  if (m <= 0 || n <= 0) return;
  scale_matrix(m, n, alpha, b, ldb);
  trsm_substitute(side, uplo, trans, diag, m, n, a, lda, b, ldb);
}

#define IRRLU_INSTANTIATE_REF(T)                                             \
  template void gemm<T>(Trans, Trans, int, int, int, T, const T*, int,       \
                        const T*, int, T, T*, int);                          \
  template void trsm<T>(Side, Uplo, Trans, Diag, int, int, T, const T*, int, \
                        T*, int);

IRRLU_INSTANTIATE_REF(float)
IRRLU_INSTANTIATE_REF(double)
IRRLU_INSTANTIATE_REF(std::complex<double>)

#undef IRRLU_INSTANTIATE_REF

}  // namespace ref

#define IRRLU_INSTANTIATE_BLAS(T)                                             \
  template int iamax<T>(int, const T*, int);                                  \
  template void scal<T>(int, T, T*, int);                                     \
  template void swap<T>(int, T*, int, T*, int);                               \
  template void ger<T>(int, int, T, const T*, int, const T*, int, T*, int);   \
  template void gemv<T>(Trans, int, int, T, const T*, int, const T*, int, T,  \
                        T*, int);                                             \
  template void trsv<T>(Uplo, Trans, Diag, int, const T*, int, T*, int);      \
  template void gemm<T>(Trans, Trans, int, int, int, T, const T*, int,        \
                        const T*, int, T, T*, int);                           \
  template void trsm<T>(Side, Uplo, Trans, Diag, int, int, T, const T*, int,  \
                        T*, int);

IRRLU_INSTANTIATE_BLAS(float)
IRRLU_INSTANTIATE_BLAS(double)
IRRLU_INSTANTIATE_BLAS(std::complex<double>)

#undef IRRLU_INSTANTIATE_BLAS

}  // namespace irrlu::la
