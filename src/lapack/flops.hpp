// Operation counts. The paper keeps the low-order terms of the LU count
// because the workloads contain very small matrices; we do the same and use
// the paper's exact expressions when reporting rates.
#pragma once

namespace irrlu::la {

/// FLOPs of an LU factorization of an m x n matrix, with all low-order
/// terms kept (paper §III-B): for M >= N it is
///   M*N^2 - N^3/3 - N^2/2 + 5N/6,
/// and symmetrically with the roles swapped for M < N.
inline double getrf_flops(int m, int n) {
  const double L = m >= n ? m : n;  // larger dimension
  const double K = m >= n ? n : m;  // factored (smaller) dimension
  return L * K * K - K * K * K / 3.0 - K * K / 2.0 + 5.0 * K / 6.0;
}

/// FLOPs of C += op(A)*op(B) with C m x n and inner dimension k.
inline double gemm_flops(int m, int n, int k) {
  return 2.0 * m * static_cast<double>(n) * k;
}

/// FLOPs of a triangular solve with an m x m triangle and n right-hand
/// sides (the paper's Fig. 6 uses sum over the batch of n_i * m_i^2).
inline double trsm_flops(int m, int n) {
  return static_cast<double>(n) * m * static_cast<double>(m);
}

/// FLOPs of a rank-1 update of an m x n matrix.
inline double ger_flops(int m, int n) { return 2.0 * m * n; }

/// Simulated-device cost weight of one arithmetic operation in precision
/// T, in FP64-equivalent flops: DeviceModel::peak_flops_per_sm is the FP64
/// rate, and the modeled GPUs run FP32 at twice that rate, so one FP32
/// flop costs half an FP64 flop on the roofline's compute axis (the
/// bandwidth axis halves by itself through sizeof(T)). The kernels
/// multiply their recorded flop counts by this weight; for double the
/// weight is exactly 1.0, so the default path's recorded numbers are
/// bit-identical to the pre-mixed-precision ones.
template <typename T>
inline constexpr double flop_weight = 1.0;
template <>
inline constexpr double flop_weight<float> = 0.5;

}  // namespace irrlu::la
