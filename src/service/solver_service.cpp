#include "service/solver_service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "trace/trace.hpp"

namespace irrlu::service {

const char* to_string(Admission a) {
  switch (a) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kRejectedMemory:
      return "rejected-memory";
  }
  return "unknown";
}

/// One cached per-pattern solver: the symbolic analysis lives inside
/// `solver` (analyze() ran exactly once for this pattern), `vals` are the
/// matrix values the current numeric factor was built from.
struct SolverService::Session {
  std::uint64_t hash = 0;
  sparse::CsrMatrix pattern;  ///< representative matrix (structure only)
  /// Factor precision of this session — part of the cache key: the same
  /// pattern under a different policy is a different session (different
  /// numeric factor, different footprint).
  sparse::PrecisionPolicy policy = sparse::PrecisionPolicy::kF64;
  std::unique_ptr<sparse::SparseDirectSolver> solver;
  std::vector<double> vals;  ///< values of the resident factor
  bool factored = false;
  std::size_t predicted_peak = 0;  ///< symbolic peak of one factorization
  std::uint64_t tick = 0;          ///< LRU stamp
};

SolverService::SolverService(gpusim::Device& dev, const ServiceOptions& opts)
    : dev_(dev), opts_(opts) {
  IRRLU_CHECK_MSG(opts_.max_cached_patterns >= 1,
                  "ServiceOptions::max_cached_patterns must be >= 1");
}

SolverService::~SolverService() = default;

void SolverService::submit(SolveRequest req) {
  IRRLU_CHECK_MSG(static_cast<int>(req.b.size()) == req.a.rows(),
                  "SolveRequest: b has " << req.b.size() << " entries for an "
                                         << req.a.rows() << "-row matrix");
  pending_.push_back(std::move(req));
}

std::vector<SolveResponse> SolverService::solve(
    std::vector<SolveRequest> reqs) {
  for (auto& r : reqs) submit(std::move(r));
  return flush();
}

std::size_t SolverService::resident_factor_bytes() const {
  std::size_t total = 0;
  for (const auto& s : sessions_)
    if (s->factored) total += s->solver->numeric().factor_bytes();
  return total;
}

const sparse::SparseDirectSolver* SolverService::peek(
    const sparse::CsrMatrix& a,
    std::optional<sparse::PrecisionPolicy> precision) const {
  const std::uint64_t h = a.pattern_hash();
  const sparse::PrecisionPolicy pol =
      precision.value_or(opts_.solver.factor.precision);
  for (const auto& s : sessions_)
    if (s->hash == h && s->policy == pol && s->pattern.same_pattern(a))
      return s->solver.get();
  return nullptr;
}

void SolverService::clear_cache() {
  const auto dropped = static_cast<long>(sessions_.size());
  sessions_.clear();
  stats_.evictions += dropped;
  bump("service.evictions", static_cast<double>(dropped));
}

void SolverService::bump(const char* name, double v) {
  if (auto* t = dev_.tracer()) t->add_counter(name, v);
}

void SolverService::bump_tenant(const std::string& tenant, const char* name,
                                double v) {
  if (auto* t = dev_.tracer())
    t->add_counter("service.tenant." + tenant + "." + name, v);
}

SolverService::Session* SolverService::find_session(
    const sparse::CsrMatrix& a, std::uint64_t hash,
    sparse::PrecisionPolicy policy) {
  for (auto& s : sessions_)
    if (s->hash == hash && s->policy == policy && s->pattern.same_pattern(a)) {
      s->tick = ++lru_tick_;
      return s.get();
    }
  return nullptr;
}

bool SolverService::admit(std::size_t incoming_peak, const Session* keep) {
  auto evict_lru = [&]() -> bool {
    std::size_t victim = sessions_.size();
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
      if (sessions_[i].get() == keep) continue;
      if (victim == sessions_.size() ||
          sessions_[i]->tick < sessions_[victim]->tick)
        victim = i;
    }
    if (victim == sessions_.size()) return false;
    sessions_.erase(sessions_.begin() +
                    static_cast<std::ptrdiff_t>(victim));
    ++stats_.evictions;
    bump("service.evictions", 1);
    return true;
  };

  // Capacity: make room for one more entry when the incoming pattern is
  // not already cached.
  if (keep == nullptr)
    while (sessions_.size() >= opts_.max_cached_patterns)
      if (!evict_lru()) break;

  if (opts_.memory_budget_bytes == 0) return true;
  if (incoming_peak > opts_.memory_budget_bytes) return false;
  // `resident_factor_bytes()` includes `keep`'s old factor on the
  // refactor path deliberately: SparseDirectSolver::refactor constructs
  // the replacement factor before releasing the old one, so both are live
  // at the transient peak.
  while (resident_factor_bytes() + incoming_peak > opts_.memory_budget_bytes)
    if (!evict_lru()) break;
  return resident_factor_bytes() + incoming_peak <= opts_.memory_budget_bytes;
}

std::vector<SolveResponse> SolverService::flush() {
  std::vector<SolveRequest> reqs = std::move(pending_);
  pending_.clear();
  std::vector<SolveResponse> out(reqs.size());
  if (reqs.empty()) return out;
  IRRLU_TRACE_SCOPE(dev_.tracer(), "service.flush");

  // Group the pending requests by (sparsity pattern, precision policy).
  // Hash first, then an exact same_pattern() confirmation against the
  // group representative, so a hash collision can never merge two
  // structures; different precision policies never share a group even on
  // the same pattern — their factors are different numeric objects.
  auto policy_of = [&](const SolveRequest& r) {
    return r.precision.value_or(opts_.solver.factor.precision);
  };
  struct Group {
    std::uint64_t hash = 0;
    sparse::PrecisionPolicy policy = sparse::PrecisionPolicy::kF64;
    std::vector<std::size_t> idx;  ///< request indices, submission order
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const std::uint64_t h = reqs[i].a.pattern_hash();
    const sparse::PrecisionPolicy pol = policy_of(reqs[i]);
    out[i].pattern_hash = h;
    Group* g = nullptr;
    for (auto& cand : groups)
      if (cand.hash == h && cand.policy == pol &&
          reqs[cand.idx.front()].a.same_pattern(reqs[i].a)) {
        g = &cand;
        break;
      }
    if (g == nullptr) {
      groups.push_back(Group{h, pol, {}});
      g = &groups.back();
    }
    g->idx.push_back(i);
  }

  for (const auto& g : groups) {
    const SolveRequest& rep = reqs[g.idx.front()];

    // Resolve the group to a session: cached (symbolic hit for every
    // request in the group) or fresh (one analyze run, charged to the
    // group's first request; the rest of the group still counts as hits —
    // they did not pay for an analyze).
    Session* sess = find_session(rep.a, g.hash, g.policy);
    const bool group_cached = sess != nullptr;
    const std::size_t group_head = g.idx.front();
    auto symbolic_hit = [&](std::size_t i) {
      return group_cached || i != group_head;
    };
    if (sess == nullptr) {
      auto fresh = std::make_unique<Session>();
      fresh->hash = g.hash;
      fresh->pattern = rep.a;
      fresh->policy = g.policy;
      sparse::SolverOptions so = opts_.solver;
      so.factor.precision = g.policy;
      fresh->solver = std::make_unique<sparse::SparseDirectSolver>(so);
      // Analyze is host-only (no simulated device time), so its latency
      // histogram records wall seconds.
      const auto wall0 = std::chrono::steady_clock::now();
      fresh->solver->analyze(rep.a);  // host-only: safe before admission
      if (auto* t = dev_.tracer())
        t->observe("service.analyze_wall_s",
                   std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - wall0)
                       .count());
      // Precision-aware peak: FP32 levels store and stage at half width,
      // so admission control budgets the policy's true footprint.
      const auto& sym = fresh->solver->symbolic();
      std::vector<sparse::Precision> lp(sym.levels.size());
      for (std::size_t l = 0; l < lp.size(); ++l)
        lp[l] = sparse::level_precision(g.policy, static_cast<int>(l),
                                        so.factor.adaptive_root_levels);
      fresh->predicted_peak =
          sym.predicted_peak_bytes(so.factor.memory, lp);
      ++stats_.analyze_runs;
      bump("service.analyze_runs", 1);
      if (!admit(fresh->predicted_peak, nullptr)) {
        for (std::size_t i : g.idx) {
          out[i].admission = Admission::kRejectedMemory;
          out[i].symbolic_cache_hit = symbolic_hit(i);
          ++stats_.requests;
          ++stats_.rejected;
          if (symbolic_hit(i)) ++stats_.symbolic_hits;
          auto& t = stats_.tenants[reqs[i].tenant];
          ++t.requests;
          ++t.rejected;
          if (symbolic_hit(i)) ++t.symbolic_hits;
          bump("service.requests", 1);
          bump("service.rejected", 1);
          if (symbolic_hit(i)) bump("service.symbolic_hits", 1);
          bump_tenant(reqs[i].tenant, "requests", 1);
          bump_tenant(reqs[i].tenant, "rejected", 1);
        }
        continue;
      }
      fresh->tick = ++lru_tick_;
      sessions_.push_back(std::move(fresh));
      sess = sessions_.back().get();
    }

    // Within the group, requests with bit-identical values share one
    // factorization; each distinct value set triggers (at most) one
    // factor/refactor in submission order.
    struct ValueRun {
      std::size_t rep;                ///< request index holding the values
      std::vector<std::size_t> idx;
    };
    std::vector<ValueRun> runs;
    for (std::size_t i : g.idx) {
      ValueRun* r = nullptr;
      for (auto& cand : runs)
        if (reqs[cand.rep].a.val() == reqs[i].a.val()) {
          r = &cand;
          break;
        }
      if (r == nullptr) {
        runs.push_back(ValueRun{i, {}});
        r = &runs.back();
      }
      r->idx.push_back(i);
    }

    for (const auto& run : runs) {
      const SolveRequest& vrep = reqs[run.rep];
      // The whole run reused an already-resident factor; otherwise one
      // factorization serves the run and every request after the first
      // rides it for free.
      const bool run_reused = sess->factored && sess->vals == vrep.a.val();
      auto factor_reused = [&](std::size_t i) {
        return run_reused || i != run.idx.front();
      };
      double run_factor_s = 0;  // simulated; billed to the paying request
      if (!run_reused) {
        if (!admit(sess->predicted_peak, sess)) {
          for (std::size_t i : run.idx) {
            out[i].admission = Admission::kRejectedMemory;
            out[i].symbolic_cache_hit = symbolic_hit(i);
            ++stats_.requests;
            ++stats_.rejected;
            if (symbolic_hit(i)) ++stats_.symbolic_hits;
            auto& t = stats_.tenants[reqs[i].tenant];
            ++t.requests;
            ++t.rejected;
            if (symbolic_hit(i)) ++t.symbolic_hits;
            bump("service.requests", 1);
            bump("service.rejected", 1);
            if (symbolic_hit(i)) bump("service.symbolic_hits", 1);
            bump_tenant(reqs[i].tenant, "requests", 1);
            bump_tenant(reqs[i].tenant, "rejected", 1);
          }
          continue;
        }
        const double tf0 = dev_.host_time();
        if (sess->factored) {
          sess->solver->refactor(dev_, vrep.a);
          ++stats_.refactors;
          bump("service.refactors", 1);
        } else {
          sess->solver->factor(dev_);
          ++stats_.factors;
          bump("service.factors", 1);
        }
        run_factor_s = dev_.host_time() - tf0;
        if (auto* t = dev_.tracer())
          t->observe("service.factor_s", run_factor_s);
        sess->vals = vrep.a.val();
        sess->factored = true;
      }

      // Interleaved many-RHS solve over the run, split by max_batch_rhs.
      const std::size_t cap =
          opts_.max_batch_rhs > 0
              ? static_cast<std::size_t>(opts_.max_batch_rhs)
              : run.idx.size();
      for (std::size_t lo = 0; lo < run.idx.size(); lo += cap) {
        const std::size_t hi = std::min(run.idx.size(), lo + cap);
        std::vector<std::vector<double>> bs;
        bs.reserve(hi - lo);
        for (std::size_t k = lo; k < hi; ++k)
          bs.push_back(reqs[run.idx[k]].b);
        const double ts0 = dev_.host_time();
        std::vector<sparse::SolveReport> reports =
            sess->solver->solve_report_many(bs);
        const double batch_s = dev_.host_time() - ts0;
        if (auto* t = dev_.tracer()) t->observe("service.solve_s", batch_s);
        ++stats_.batches;
        stats_.batched_rhs += static_cast<long>(bs.size());
        bump("service.batches", 1);
        bump("service.batched_rhs", static_cast<double>(bs.size()));
        for (std::size_t k = lo; k < hi; ++k) {
          const std::size_t i = run.idx[k];
          const bool hit = symbolic_hit(i);
          const bool reused = factor_reused(i);
          out[i].report = std::move(reports[k - lo]);
          out[i].symbolic_cache_hit = hit;
          out[i].factor_reused = reused;
          out[i].batch_width = static_cast<int>(hi - lo);
          ++stats_.requests;
          if (hit) ++stats_.symbolic_hits;
          if (reused) ++stats_.factor_reuses;
          auto& t = stats_.tenants[reqs[i].tenant];
          ++t.requests;
          if (hit) ++t.symbolic_hits;
          if (reused) ++t.factor_reuses;
          bump("service.requests", 1);
          if (hit) bump("service.symbolic_hits", 1);
          if (reused) bump("service.factor_reuses", 1);
          bump_tenant(reqs[i].tenant, "requests", 1);
          if (hit) bump_tenant(reqs[i].tenant, "symbolic_hits", 1);
          if (reused) bump_tenant(reqs[i].tenant, "factor_reuses", 1);
          // Per-tenant latency: this request's share of simulated device
          // time — the batch it rode, plus the factorization if it was
          // the request that paid for one.
          if (auto* t = dev_.tracer())
            t->observe("service.tenant." + reqs[i].tenant + ".latency_s",
                       batch_s + (reused ? 0.0 : run_factor_s));
        }
      }
      sess->tick = ++lru_tick_;
    }
  }
  return out;
}

}  // namespace irrlu::service
