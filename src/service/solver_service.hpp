// SolverService — a request-stream front end over SparseDirectSolver (the
// deployment shape the paper's introduction motivates: applications that
// "solve sequences of systems with the same sparsity pattern", Maxwell /
// circuit / power-grid workloads re-solving as values and source terms
// change). The service accepts a stream of (tenant, matrix, rhs) requests
// and amortizes the expensive phases across them:
//   - a (pattern, precision-policy)-keyed LRU cache of symbolic analyses
//     and numeric factors: requests whose matrix hashes
//     (CsrMatrix::pattern_hash) to a cached session with the same factor
//     precision skip analyze() entirely (refactor path), and requests
//     whose values are bit-identical to the cached factor skip
//     factorization too; FP32 factors are billed at their true (half)
//     resident byte cost by admission control;
//   - an interleaved many-RHS solve path: all pending right-hand sides
//     against one factor are gathered into a single batched triangular
//     sweep (SparseDirectSolver::solve_report_many), reading the factor
//     blocks once per front per sweep instead of once per RHS;
//   - admission control: a memory budget enforced *before* factorization
//     using the symbolic peak predictor
//     (SymbolicAnalysis::predicted_peak_bytes), evicting least-recently
//     used cached factors to make room and rejecting requests whose
//     predicted footprint cannot fit even in an empty cache.
// Every response retains the full per-request quality contract of
// solve_report(): its own SolveStatus, backward error, and refinement
// history. Counters stream into the attached trace::Tracer (and from there
// into the trace-summary JSON) as `service.*` / `service.tenant.<id>.*`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "gpusim/device.hpp"
#include "sparse/csr.hpp"
#include "sparse/solver.hpp"

namespace irrlu::service {

struct ServiceOptions {
  /// Options applied to every per-pattern solver (ordering, factorization
  /// schedule, refinement policy).
  sparse::SolverOptions solver;
  /// Capacity of the pattern-keyed LRU cache (distinct sparsity patterns
  /// whose symbolic analysis + numeric factor stay resident). Minimum 1.
  std::size_t max_cached_patterns = 8;
  /// Admission-control budget on device memory, in bytes: before a
  /// factorization is admitted, cached factors are evicted (LRU) until
  /// `resident factor bytes + predicted peak of the incoming
  /// factorization <= budget`; a request whose predicted peak exceeds the
  /// budget alone is rejected (Admission::kRejectedMemory) without
  /// touching the device. 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  /// Cap on the width of one interleaved solve batch (RHS per
  /// solve_report_many call); wider groups are split. 0 = unlimited.
  int max_batch_rhs = 0;
};

/// Admission-control verdict attached to every response.
enum class Admission {
  kAccepted,
  /// Predicted factorization peak exceeds memory_budget_bytes even with
  /// the cache fully evicted; the request was refused before any device
  /// allocation and its report is empty with status kFailed.
  kRejectedMemory,
};

const char* to_string(Admission a);

/// One unit of work: solve `a x = b` on behalf of `tenant`.
struct SolveRequest {
  std::string tenant;
  sparse::CsrMatrix a;
  std::vector<double> b;
  /// Per-request factor precision policy (DESIGN.md §14). Sessions are
  /// keyed by (pattern, policy): a tenant asking for kF32 never reuses —
  /// and is never served by — a kF64 factor of the same pattern, because
  /// the factors are numerically different objects with different
  /// footprints. Unset = the service-wide
  /// ServiceOptions::solver.factor.precision.
  std::optional<sparse::PrecisionPolicy> precision;
};

/// Per-request outcome: the numerical report plus the service-level
/// provenance (what was reused, how the request was batched).
struct SolveResponse {
  sparse::SolveReport report;
  Admission admission = Admission::kAccepted;
  std::uint64_t pattern_hash = 0;
  /// analyze() was skipped for this request — its pattern was already
  /// cached, or an earlier request in the same flush paid for the analyze
  /// it shares.
  bool symbolic_cache_hit = false;
  /// Factorization was skipped too — a factor with bit-identical values
  /// was already resident, or an earlier same-values request in the same
  /// flush paid for the factorization this request shares.
  bool factor_reused = false;
  /// Number of right-hand sides in the interleaved batch this request was
  /// solved in (>= 1 for accepted requests).
  int batch_width = 0;
};

struct TenantStats {
  long requests = 0;
  long symbolic_hits = 0;
  long factor_reuses = 0;
  long rejected = 0;
};

/// Service-lifetime counters (mirrored into the tracer when one is
/// attached to the device).
struct ServiceStats {
  long requests = 0;       ///< requests flushed (accepted + rejected)
  long analyze_runs = 0;   ///< symbolic analyses actually executed
  long symbolic_hits = 0;  ///< requests that skipped analyze()
  long factors = 0;        ///< fresh factorizations (new pattern)
  long refactors = 0;      ///< refactorizations (cached pattern, new values)
  long factor_reuses = 0;  ///< requests that skipped factorization entirely
  long evictions = 0;      ///< cache entries dropped (LRU or memory budget)
  long rejected = 0;       ///< requests refused by admission control
  long batches = 0;        ///< interleaved solve_report_many sweeps issued
  long batched_rhs = 0;    ///< right-hand sides carried by those sweeps
  std::map<std::string, TenantStats> tenants;

  /// Fraction of flushed requests that skipped symbolic analysis — the
  /// headline amortization metric of the service.
  double symbolic_hit_rate() const {
    return requests > 0 ? static_cast<double>(symbolic_hits) /
                              static_cast<double>(requests)
                        : 0.0;
  }
};

class SolverService {
 public:
  /// The device reference must outlive the service; all factorizations and
  /// batched solves run on it.
  explicit SolverService(gpusim::Device& dev, const ServiceOptions& opts = {});
  ~SolverService();

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  /// Enqueues a request; no work happens until flush(). Requests are
  /// answered in submission order, but the service is free to gather
  /// same-pattern requests into shared factorizations and interleaved
  /// solve batches.
  void submit(SolveRequest req);

  /// Processes every pending request and returns their responses in
  /// submission order. Grouping: requests are keyed by sparsity pattern
  /// (hash + exact same_pattern confirmation, so a hash collision can
  /// never alias two structures), each group resolves to a cached or
  /// fresh per-pattern solver session, and within a group requests with
  /// bit-identical values share one factorization and one interleaved
  /// many-RHS sweep. Numerical failures never throw — they surface as
  /// SolveReport::status on the individual response.
  std::vector<SolveResponse> flush();

  /// submit() every request, then flush().
  std::vector<SolveResponse> solve(std::vector<SolveRequest> reqs);

  const ServiceStats& stats() const { return stats_; }
  std::size_t pending() const { return pending_.size(); }
  /// Distinct sparsity patterns currently cached.
  std::size_t cached_patterns() const { return sessions_.size(); }
  /// Device bytes held by cached factors (the "resident" term admission
  /// control budgets against).
  std::size_t resident_factor_bytes() const;
  /// Drops every cached session (counts toward ServiceStats::evictions).
  void clear_cache();

  /// Read-only view of the cached per-pattern solver holding `a`'s
  /// sparsity pattern under `precision` (unset = the service default
  /// policy), nullptr when not cached. Does not touch the LRU order —
  /// this is the oracle tests and bench_service use to compare a
  /// cached-refactor factor bit-for-bit against an uncached twin.
  const sparse::SparseDirectSolver* peek(
      const sparse::CsrMatrix& a,
      std::optional<sparse::PrecisionPolicy> precision = std::nullopt) const;

 private:
  struct Session;

  Session* find_session(const sparse::CsrMatrix& a, std::uint64_t hash,
                        sparse::PrecisionPolicy policy);
  /// Evicts LRU sessions (excluding `keep`) until the cache has room for
  /// one more entry and, when a budget is set, until
  /// `resident + incoming_peak <= budget`. Returns false when the budget
  /// cannot be met even with everything else evicted.
  bool admit(std::size_t incoming_peak, const Session* keep);
  void bump(const char* name, double v);
  void bump_tenant(const std::string& tenant, const char* name, double v);

  gpusim::Device& dev_;
  const ServiceOptions opts_;
  std::vector<SolveRequest> pending_;
  std::vector<std::unique_ptr<Session>> sessions_;
  ServiceStats stats_;
  std::uint64_t lru_tick_ = 0;
};

}  // namespace irrlu::service
