// The simulated device runtime: streams, kernel launches over grids of
// thread blocks, per-block shared-memory arenas with hardware capacity
// limits, a device-memory arena with peak tracking, and a simulated-time
// scheduler.
//
// Kernels are written exactly as GPU kernels are structured: a grid of
// independent blocks; each block stages data through shared memory and
// records the work it performed (flops + bytes of global-memory traffic).
// The numerics execute for real on the host, so every kernel is testable
// bit-for-bit; the recorded work drives the DeviceModel's timing.
//
// Scheduling semantics (mirroring CUDA/HIP):
//  - launches within one stream execute in order;
//  - launches in different streams may overlap on the device, but every
//    launch pays a host-side dispatch cost on a single host timeline
//    (one CPU thread performs all launches, as in the paper's baseline);
//  - blocks of a kernel are list-scheduled onto SM slots; the number of
//    co-resident blocks per SM is limited by shared-memory use;
//  - synchronize() joins a stream's timeline back into the host timeline.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <queue>
#include <source_location>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "gpusim/device_model.hpp"
#include "gpusim/mem_pool.hpp"

namespace irrlu::trace {
class Tracer;
}

namespace irrlu::gpusim {

class Device;

/// Per-block execution context handed to kernel bodies.
class BlockCtx {
 public:
  /// Linear block index within the launch grid.
  int block() const { return block_; }

  /// Allocates `count` elements of shared memory; contents are
  /// uninitialized, lifetime ends with the block. Throws if the kernel's
  /// declared shared-memory budget is exceeded (the simulated analogue of a
  /// launch failure).
  template <typename T>
  T* smem_alloc(std::size_t count) {
    constexpr std::size_t align = alignof(std::max_align_t);
    std::size_t offset = (smem_used_ + align - 1) / align * align;
    std::size_t bytes = count * sizeof(T);
    IRRLU_CHECK_MSG(offset + bytes <= smem_capacity_,
                    "shared memory overflow: kernel declared "
                        << smem_capacity_ << " B, block needs >= "
                        << offset + bytes << " B");
    smem_used_ = offset + bytes;
    return reinterpret_cast<T*>(smem_base_ + offset);
  }

  /// Records work performed by this block: floating-point operations and
  /// global-memory traffic in bytes. May be called multiple times.
  void record(double flops, double bytes) {
    flops_ += flops;
    bytes_ += bytes;
  }

  std::size_t smem_capacity() const { return smem_capacity_; }

 private:
  friend class Device;
  int block_ = 0;
  char* smem_base_ = nullptr;
  std::size_t smem_capacity_ = 0;
  std::size_t smem_used_ = 0;
  double flops_ = 0;
  double bytes_ = 0;
};

/// An in-order execution queue on the device (CUDA stream analogue).
class Stream {
 public:
  /// Simulated time at which all work enqueued so far completes.
  double completion_time() const { return cursor_; }

  /// Stream index within its Device (0 is the default stream). Stable for
  /// the device's lifetime; usable as a per-stream workspace-cache key.
  int id() const { return id_; }

 private:
  friend class Device;
  explicit Stream(int id) : id_(id) {}
  int id_;
  double cursor_ = 0.0;
};

/// A recorded point on a stream's timeline (cudaEvent analogue). Obtained
/// from Device::record(); other streams can wait on it, establishing
/// cross-stream ordering without host synchronization. Each recorded
/// event carries a device-unique id so an attached tracer can tie a
/// wait() back to the record() it depends on — the dependency edge the
/// trace analyzer's DAG replay follows. A default-constructed Event has
/// id -1 and time 0 (waiting on it is a no-op).
class Event {
 public:
  Event() = default;
  double time() const { return time_; }
  int id() const { return id_; }

 private:
  friend class Device;
  Event(double t, int id) : time_(t), id_(id) {}
  double time_ = 0.0;
  int id_ = -1;
};

/// Launch configuration for one kernel.
struct LaunchConfig {
  const char* name;            ///< kernel name, for profiling
  int blocks = 1;              ///< grid size (linearized)
  std::size_t smem_bytes = 0;  ///< declared shared memory per block
  /// Call site of the aggregate initialization (C++20 evaluates the
  /// default member initializer at the braced-init site); used by the
  /// debug-mode duplicate-kernel-name audit.
  std::source_location where = std::source_location::current();
};

/// Aggregated per-kernel-name statistics over the device's lifetime.
struct KernelStats {
  long launches = 0;
  long blocks = 0;
  double flops = 0;
  double bytes = 0;
  double sim_seconds = 0;  ///< sum over launches of (end - start)
};

/// RAII device memory. The backing store is host memory; the arena tracks
/// current and peak usage so the multifrontal code can budget subtrees.
template <typename T>
class DeviceBuffer;

class Device {
 public:
  /// `memory_pool` selects the host-side allocation strategy for the
  /// device's whole lifetime (it cannot be toggled later: a block freed
  /// into the pool must be reclaimed by the pool). Pooled or not, the
  /// simulated cost and the memory accounting of every allocation are
  /// identical — the pool only removes host malloc/free churn.
  explicit Device(DeviceModel model, bool memory_pool = true);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const DeviceModel& model() const { return model_; }

  /// Returns stream `i`, creating streams [0..i] on first use.
  Stream& stream(int i = 0);
  int num_streams() const { return static_cast<int>(streams_.size()); }

  /// Launches a kernel: executes `body(BlockCtx&)` for every block in the
  /// grid (real computation, sequential on the host) and advances the
  /// simulated timeline per the DeviceModel.
  template <typename Body>
  void launch(Stream& s, const LaunchConfig& cfg, Body&& body) {
    IRRLU_CHECK_MSG(cfg.blocks >= 0, "negative grid size");
    IRRLU_CHECK_MSG(cfg.smem_bytes <= model_.shared_mem_per_block,
                    "kernel '" << cfg.name << "' declares " << cfg.smem_bytes
                               << " B shared memory; device limit is "
                               << model_.shared_mem_per_block << " B");
    begin_launch(cfg);
    block_costs_.clear();
    block_costs_.reserve(static_cast<std::size_t>(cfg.blocks));
    // Host wall time of the kernel bodies is a trace-only observable; the
    // clock reads are skipped entirely when no tracer is attached.
    std::chrono::steady_clock::time_point wall0;
    if (tracer_ != nullptr) wall0 = std::chrono::steady_clock::now();
    for (int b = 0; b < cfg.blocks; ++b) {
      BlockCtx ctx;
      ctx.block_ = b;
      ctx.smem_base_ = smem_arena_.data();
      ctx.smem_capacity_ = cfg.smem_bytes;
      body(ctx);
      block_costs_.push_back({ctx.flops_, ctx.bytes_});
      total_flops_ += ctx.flops_;
      total_bytes_ += ctx.bytes_;
      launch_flops_ += ctx.flops_;
      launch_bytes_ += ctx.bytes_;
    }
    if (tracer_ != nullptr)
      launch_wall_seconds_ =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        wall0)
              .count();
    end_launch(s, cfg);
  }

  /// Records the completion point of all work enqueued on `s` so far.
  Event record(Stream& s);
  /// Makes future work on `s` start no earlier than `e` (device-side
  /// dependency; does not block the host).
  void wait(Stream& s, const Event& e);

  /// Host blocks until stream `s` completes; advances host time.
  void synchronize(Stream& s);
  /// Host blocks until the whole device is idle. Returns the simulated time.
  double synchronize_all();

  /// Current simulated host time (seconds since reset).
  double host_time() const { return host_time_; }
  /// Resets all timelines and profiling (memory contents are untouched).
  void reset_timeline();

  long launch_count() const { return launch_count_; }
  long sync_count() const { return sync_count_; }
  /// Total simulated host seconds spent inside synchronize() calls.
  double sync_wait_seconds() const { return sync_wait_seconds_; }
  double total_flops() const { return total_flops_; }
  double total_bytes() const { return total_bytes_; }

  const std::map<std::string, KernelStats>& profile() const {
    return profile_;
  }

  /// Attaches (or detaches, with nullptr) a per-launch trace recorder.
  /// The tracer is pure bookkeeping: simulated timelines are identical
  /// with and without one attached. Switching tracers drops the live
  /// allocation→tag map (tags belong to the old tracer; freeing those
  /// buffers under the new one records an untracked free).
  void set_tracer(trace::Tracer* t) {
    if (t != tracer_) live_allocs_.clear();
    tracer_ = t;
  }
  trace::Tracer* tracer() const { return tracer_; }

  /// Allocates device memory (tracked; freed via DeviceBuffer RAII).
  /// `count == 0` is well-defined: it returns an empty buffer without
  /// touching the arena (no raw allocation, no simulated alloc overhead).
  /// With a tracer attached the allocation is tagged by the innermost
  /// trace scope, falling back to the call site.
  template <typename T>
  DeviceBuffer<T> alloc(std::size_t count,
                        std::source_location where =
                            std::source_location::current());

  std::size_t bytes_in_use() const { return bytes_in_use_; }
  std::size_t peak_bytes() const { return peak_bytes_; }

  /// Windowed high-water mark: `reset_peak_window()` rebases the window to
  /// the current usage; `window_peak_bytes()` reports the maximum
  /// bytes-in-use observed since. Unlike peak_bytes(), unaffected by
  /// earlier phases of the device's lifetime.
  void reset_peak_window() { window_peak_ = bytes_in_use_; }
  std::size_t window_peak_bytes() const { return window_peak_; }

  // --- slab pool (DESIGN.md §10) ---------------------------------------

  bool pool_enabled() const { return pool_ != nullptr; }
  /// Pool effectiveness counters; all-zero when the pool is disabled.
  const MemPool::Stats& pool_stats() const {
    static const MemPool::Stats kNone{};
    return pool_ != nullptr ? pool_->stats() : kNone;
  }
  /// Returns every cached (free-listed) block to the system. Live
  /// allocations are unaffected. No-op when the pool is disabled.
  void pool_trim() {
    if (pool_ != nullptr) pool_->trim();
  }

  /// Device allocation events over the lifetime (pool hits included);
  /// alloc<T>(0) no-ops are not counted.
  long alloc_count() const { return alloc_count_; }
  /// Host malloc calls actually performed (= alloc_count() with the pool
  /// off, the pool's miss count with it on) — the churn the pool removes.
  long host_alloc_count() const { return host_alloc_count_; }

  // --- reusable workspace cache ----------------------------------------

  /// Returns a scratch buffer of at least `count` elements, cached under
  /// `key` for the device's lifetime (grown geometrically when a larger
  /// request arrives, so repeated same-shape kernel calls stop allocating
  /// at all). Unlike alloc(), a cache hit performs no simulated work: the
  /// first (or growing) request pays the normal alloc_overhead, later
  /// requests are free on both the host and the simulated timeline.
  /// Contents are unspecified on every call. The caller owns consistency
  /// of the key (include the stream id for per-stream scratch); the
  /// buffer is valid until release_workspaces() or device destruction.
  template <typename T>
  T* workspace(std::string_view key, std::size_t count,
               std::source_location where = std::source_location::current()) {
    IRRLU_CHECK_MSG(count <= SIZE_MAX / sizeof(T),
                    "workspace of " << count << " x " << sizeof(T)
                                    << " B overflows size_t");
    return static_cast<T*>(workspace_bytes(key, count * sizeof(T), where));
  }
  /// Frees every cached workspace (normally done by the destructor).
  /// Callers must not hold workspace pointers across this.
  void release_workspaces();
  std::size_t workspace_count() const { return workspaces_.size(); }

 private:
  template <typename T>
  friend class DeviceBuffer;

  void begin_launch(const LaunchConfig& cfg);
  void end_launch(Stream& s, const LaunchConfig& cfg);

  void* raw_alloc(std::size_t bytes, const std::source_location& where);
  void raw_free(void* p, std::size_t bytes);
  void* workspace_bytes(std::string_view key, std::size_t bytes,
                        const std::source_location& where);
  // Takes void* (not const void*): GCC 12's -Wmaybe-uninitialized treats a
  // const pointer parameter as a read of the pointed-to storage and misfires
  // on a fresh malloc result. Only the pointer value is used (as a map key).
  void note_alloc(void* p, std::size_t bytes,
                  const std::source_location& where);
  void note_free(const void* p, std::size_t bytes);

  DeviceModel model_;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<char> smem_arena_;

  // --- simulated timelines ---
  double host_time_ = 0.0;
  std::vector<double> slot_free_;  ///< num_sms * max_blocks_per_sm SM slots
  /// Reused scheduling heap (end_launch); holds at most grid-size slots.
  std::vector<std::pair<double, std::size_t>> slot_scratch_;
  std::vector<std::pair<double, double>> block_costs_;  ///< (flops, bytes)
  double launch_flops_ = 0, launch_bytes_ = 0;

  // --- tracing (never feeds back into the timelines) ---
  trace::Tracer* tracer_ = nullptr;
  double launch_wall_seconds_ = 0;
  /// First launch site seen per kernel name, for the debug-mode
  /// duplicate-name audit (folded stats are usually a naming bug).
  std::map<std::string, std::pair<std::string, unsigned>> launch_sites_;

  // --- accounting ---
  int next_event_id_ = 0;  ///< record() ids; monotone over the lifetime
  long launch_count_ = 0;
  long sync_count_ = 0;
  double sync_wait_seconds_ = 0;
  double total_flops_ = 0, total_bytes_ = 0;
  std::map<std::string, KernelStats> profile_;

  std::size_t bytes_in_use_ = 0;
  std::size_t peak_bytes_ = 0;
  std::size_t window_peak_ = 0;
  long alloc_count_ = 0;
  long host_alloc_count_ = 0;
  /// Live allocations → (mem tag id, bytes), maintained only while a
  /// tracer is attached; also backs the debug-mode leak report.
  std::map<const void*, std::pair<int, std::size_t>> live_allocs_;

  /// Size-class slab pool behind raw_alloc/raw_free; null when disabled
  /// at construction. Declared after live_allocs_ so the destructor body
  /// (which releases cached workspaces through raw_free) still sees it.
  std::unique_ptr<MemPool> pool_;

  struct Workspace {
    void* p = nullptr;
    std::size_t bytes = 0;
  };
  /// Named reusable scratch buffers (workspace<T>), raw_alloc'd and held
  /// until release_workspaces()/destruction.
  std::map<std::string, Workspace, std::less<>> workspaces_;
};

template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  ~DeviceBuffer() { release(); }

  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  DeviceBuffer(DeviceBuffer&& o) noexcept { *this = std::move(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      dev_ = o.dev_;
      data_ = o.data_;
      count_ = o.count_;
      o.dev_ = nullptr;
      o.data_ = nullptr;
      o.count_ = 0;
    }
    return *this;
  }

  T* data() const { return data_; }
  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  T& operator[](std::size_t i) const {
    IRRLU_DEBUG_ASSERT(i < count_);
    return data_[i];
  }

  void release() {
    if (dev_ && data_) {
      dev_->raw_free(data_, count_ * sizeof(T));
      data_ = nullptr;
      count_ = 0;
      dev_ = nullptr;
    }
  }

 private:
  friend class Device;
  DeviceBuffer(Device* dev, T* data, std::size_t count)
      : dev_(dev), data_(data), count_(count) {}

  Device* dev_ = nullptr;
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

template <typename T>
DeviceBuffer<T> Device::alloc(std::size_t count, std::source_location where) {
  if (count == 0) return DeviceBuffer<T>();
  IRRLU_CHECK_MSG(count <= SIZE_MAX / sizeof(T),
                  "device allocation of " << count << " x " << sizeof(T)
                                          << " B overflows size_t");
  T* p = static_cast<T*>(raw_alloc(count * sizeof(T), where));
  return DeviceBuffer<T>(this, p, count);
}

}  // namespace irrlu::gpusim
