// Analytic performance models of the accelerators used in the paper's
// evaluation (A100-SXM4, MI100, dual-socket Xeon 6140). The numerics of every
// kernel run for real on the host; these models translate the recorded
// per-block work (flops, bytes moved) into *simulated device time* via a
// latency-aware roofline plus a list schedule over SM slots (see Device).
//
// The phenomena the paper measures are structural and emerge from the model's
// first principles rather than fitted curves:
//  - host-serialized kernel dispatch makes per-matrix launches in parallel
//    streams slow for large batches of small problems (Fig 10),
//  - shared-memory capacity bounds occupancy and decides the fused-panel vs
//    column-wise panel switch (Fig 7, and the A100-vs-MI100 gap),
//  - one-block-per-matrix stages stop scaling for huge matrices, creating the
//    crossover against streamed per-matrix solvers (Fig 11).
#pragma once

#include <cstddef>
#include <string>

namespace irrlu::gpusim {

/// Static description of a (simulated) device.
struct DeviceModel {
  std::string name;

  int num_sms = 1;                  ///< SMs / CUs / cores
  double peak_flops_per_sm = 1e9;   ///< FP64 flop/s per SM at full efficiency
  double mem_bandwidth = 1e9;       ///< device-wide bytes/s
  std::size_t shared_mem_per_block = 48 << 10;  ///< max bytes one block may use
  std::size_t shared_mem_per_sm = 64 << 10;     ///< bytes per SM (occupancy)
  int max_blocks_per_sm = 16;       ///< hardware occupancy cap

  double host_dispatch_overhead = 4e-6;  ///< s per launch, serialized on host
  double device_launch_latency = 1.5e-6; ///< s before a kernel's blocks start
  double block_start_overhead = 1.5e-7;  ///< s per block (scheduling cost)
  double stream_sync_overhead = 4e-6;    ///< s per explicit synchronization
  double alloc_overhead = 8e-6;          ///< s per device allocation
                                         ///< (cudaMalloc synchronizes)

  /// Multiplier on compute throughput modelling kernel-language maturity
  /// (the paper speculates HIP codegen lags CUDA on MI100).
  double compute_efficiency = 1.0;

  /// Latency saturation points: a block reaches half of peak compute
  /// (bandwidth) throughput when it has this many flops (bytes). Small
  /// blocks — tiny matrices — run far below peak, as on real hardware.
  double half_perf_flops = 3e4;
  double half_perf_bytes = 2e4;

  /// Memory bandwidth one block (one SM) can draw by itself. The scheduler
  /// divides device bandwidth among concurrently resident blocks but never
  /// grants a single block more than this.
  double max_sm_bandwidth = 50e9;

  /// Seconds for a single block performing `flops` of compute over `bytes`
  /// of memory traffic, given the bandwidth share `bw` the scheduler
  /// grants it (latency-aware roofline).
  double block_seconds(double flops, double bytes, double bw) const {
    const double peak_c = peak_flops_per_sm * compute_efficiency;
    const double sat_c = flops / (flops + half_perf_flops);
    const double sat_m = bytes / (bytes + half_perf_bytes);
    const double tc = flops > 0 ? flops / (peak_c * (sat_c > 0 ? sat_c : 1))
                                : 0.0;
    const double tm =
        bytes > 0 ? bytes / (bw * (sat_m > 0 ? sat_m : 1)) : 0.0;
    return tc > tm ? tc : tm;
  }

  /// Convenience overload with the fair per-SM bandwidth share.
  double block_seconds(double flops, double bytes) const {
    return block_seconds(flops, bytes,
                         mem_bandwidth / static_cast<double>(num_sms));
  }

  /// Bandwidth share for a launch whose waves hold `concurrent` blocks.
  double bandwidth_share(int concurrent) const {
    if (concurrent < 1) concurrent = 1;
    const double share = mem_bandwidth / concurrent;
    return share < max_sm_bandwidth ? share : max_sm_bandwidth;
  }

  /// Number of co-resident blocks per SM for a kernel using `smem` bytes of
  /// shared memory per block.
  int blocks_per_sm(std::size_t smem) const {
    if (smem == 0) return max_blocks_per_sm;
    auto by_smem = static_cast<int>(shared_mem_per_sm / smem);
    if (by_smem < 1) by_smem = 1;  // launch() rejects > shared_mem_per_block
    return by_smem < max_blocks_per_sm ? by_smem : max_blocks_per_sm;
  }

  /// NVIDIA A100-SXM4: 108 SMs, 9.7 TF/s FP64 (no tensor cores),
  /// 1555 GB/s HBM2, 192 KB shared/SM (164 KB usable per block), CUDA.
  static DeviceModel a100();

  /// AMD Instinct MI100: 120 CUs, 11.5 TF/s FP64, 1228 GB/s, 64 KB LDS,
  /// ROCm (higher launch cost, lower kernel efficiency per the paper).
  static DeviceModel mi100();

  /// Dual-socket Xeon Gold 6140 (36 cores) running MKL-style batched LAPACK:
  /// "launches" are function calls, shared memory is the L2 slice.
  static DeviceModel xeon6140x2();

  /// Intel Data Center GPU Max 1550 ("Ponte Vecchio"): 128 Xe cores,
  /// ~52 TF/s FP64 vector, 3.2 TB/s HBM2e, 128 KB SLM — the paper's §VI
  /// portability target, included to show the model is device-agnostic.
  static DeviceModel max1550();

  /// Tiny deterministic device for unit tests (2 SMs, small smem).
  static DeviceModel test_tiny();
};

}  // namespace irrlu::gpusim
