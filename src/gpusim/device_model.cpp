#include "gpusim/device_model.hpp"

namespace irrlu::gpusim {

DeviceModel DeviceModel::a100() {
  DeviceModel m;
  m.name = "A100-SXM4 (simulated)";
  m.num_sms = 108;
  m.peak_flops_per_sm = 9.7e12 / 108.0;  // FP64 FMA pipes, no tensor cores
  m.mem_bandwidth = 1555e9;
  m.shared_mem_per_block = 164 << 10;
  m.shared_mem_per_sm = 192 << 10;
  m.max_blocks_per_sm = 32;
  m.host_dispatch_overhead = 4e-6;
  m.device_launch_latency = 1.5e-6;
  m.block_start_overhead = 1.0e-7;
  m.stream_sync_overhead = 4e-6;
  m.alloc_overhead = 8e-6;
  m.max_sm_bandwidth = 60e9;
  m.compute_efficiency = 0.85;
  m.half_perf_flops = 4e4;
  m.half_perf_bytes = 3e4;
  return m;
}

DeviceModel DeviceModel::mi100() {
  DeviceModel m;
  m.name = "MI100 (simulated)";
  m.num_sms = 120;
  m.peak_flops_per_sm = 11.5e12 / 120.0;
  m.mem_bandwidth = 1228e9;
  m.shared_mem_per_block = 64 << 10;  // LDS: the paper's occupancy limiter
  m.shared_mem_per_sm = 64 << 10;
  m.max_blocks_per_sm = 32;
  m.host_dispatch_overhead = 9e-6;    // ROCm dispatch costs more
  m.device_launch_latency = 3e-6;
  m.block_start_overhead = 2.0e-7;
  m.stream_sync_overhead = 9e-6;
  m.alloc_overhead = 15e-6;
  m.max_sm_bandwidth = 50e9;
  m.compute_efficiency = 0.55;        // "HIP kernel language not yet mature"
  m.half_perf_flops = 6e4;
  m.half_perf_bytes = 4e4;
  return m;
}

DeviceModel DeviceModel::xeon6140x2() {
  DeviceModel m;
  m.name = "2x Xeon Gold 6140 (simulated)";
  m.num_sms = 36;  // cores
  // 2.3 GHz x 2 FMA x 8 lanes x 2 ops = ~73.6 GF/s per core FP64 AVX-512.
  m.peak_flops_per_sm = 73.6e9;
  m.mem_bandwidth = 160e9;  // measured STREAM-like, 2 sockets DDR4-2666
  m.shared_mem_per_block = 1 << 20;  // L2 slice per core
  m.shared_mem_per_sm = 1 << 20;
  m.max_blocks_per_sm = 1;           // one batch entry per core at a time
  m.host_dispatch_overhead = 2e-7;   // a function call, not a kernel launch
  m.device_launch_latency = 0.0;
  m.block_start_overhead = 5e-8;
  m.stream_sync_overhead = 1e-7;
  m.alloc_overhead = 2e-7;  // malloc, not cudaMalloc
  m.max_sm_bandwidth = 10e9;  // single-core stream bandwidth
  m.compute_efficiency = 0.60;  // MKL batch overheads, AVX frequency dip
  // A single core reaches half of its AVX-512 peak only on fairly large
  // kernels (MKL dgetrf hits peak around n ~ 500 per core); far gentler
  // than a GPU SM at the very small end, but not free either.
  m.half_perf_flops = 3e5;
  m.half_perf_bytes = 2e5;
  return m;
}

DeviceModel DeviceModel::max1550() {
  DeviceModel m;
  m.name = "Max-1550 (simulated)";
  m.num_sms = 128;
  m.peak_flops_per_sm = 52e12 / 128.0;
  m.mem_bandwidth = 3200e9;
  m.shared_mem_per_block = 128 << 10;
  m.shared_mem_per_sm = 128 << 10;
  m.max_blocks_per_sm = 32;
  m.host_dispatch_overhead = 6e-6;   // SYCL queue submission
  m.device_launch_latency = 2e-6;
  m.block_start_overhead = 1.5e-7;
  m.stream_sync_overhead = 6e-6;
  m.alloc_overhead = 10e-6;
  m.max_sm_bandwidth = 80e9;
  m.compute_efficiency = 0.60;       // young toolchain, as the paper notes
                                     // for early HIP
  m.half_perf_flops = 5e4;
  m.half_perf_bytes = 4e4;
  return m;
}

DeviceModel DeviceModel::test_tiny() {
  DeviceModel m;
  m.name = "test-tiny";
  m.num_sms = 2;
  m.peak_flops_per_sm = 1e9;
  m.mem_bandwidth = 2e9;
  m.shared_mem_per_block = 4 << 10;
  m.shared_mem_per_sm = 8 << 10;
  m.max_blocks_per_sm = 4;
  m.host_dispatch_overhead = 1e-6;
  m.device_launch_latency = 1e-6;
  m.block_start_overhead = 1e-7;
  m.stream_sync_overhead = 1e-6;
  m.alloc_overhead = 1e-6;
  m.max_sm_bandwidth = 1e9;  // == fair share: deterministic tests
  m.compute_efficiency = 1.0;
  m.half_perf_flops = 0.0;  // linear model: easiest to reason about in tests
  m.half_perf_bytes = 0.0;
  return m;
}

}  // namespace irrlu::gpusim
