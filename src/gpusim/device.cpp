#include "gpusim/device.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "trace/trace.hpp"

namespace irrlu::gpusim {

Device::Device(DeviceModel model, bool memory_pool) : model_(std::move(model)) {
  IRRLU_CHECK(model_.num_sms >= 1);
  IRRLU_CHECK(model_.max_blocks_per_sm >= 1);
  smem_arena_.resize(model_.shared_mem_per_block);
  slot_free_.assign(
      static_cast<std::size_t>(model_.num_sms) * model_.max_blocks_per_sm,
      0.0);
  streams_.emplace_back(new Stream(0));
  if (memory_pool) pool_ = std::make_unique<MemPool>();
}

Device::~Device() {
  // Cached workspaces are device-owned, not leaks: return them (through
  // raw_free, so the accounting and any attached tracer see the frees)
  // before the leak check below. Pooled free-list blocks are released by
  // the MemPool member's destructor and never count as in-use.
  release_workspaces();
#ifndef NDEBUG
  // Leak report: DeviceBuffers outliving their Device are a
  // destruction-order bug (their release() would touch a dead Device).
  // live_allocs_ carries tags only while a tracer was attached, so the
  // per-entry listing may be a subset of the leaked total.
  if (bytes_in_use_ != 0) {
    std::fprintf(stderr,
                 "irrlu: device destroyed with %zu B still allocated "
                 "(%zu tagged allocation(s) known):\n",
                 bytes_in_use_, live_allocs_.size());
    for (const auto& [p, info] : live_allocs_) {
      const auto& [tag, bytes] = info;
      const std::string name =
          tracer_ != nullptr ? std::string(tracer_->mem_tag_name(tag))
                             : std::string("tag#") + std::to_string(tag);
      std::fprintf(stderr, "irrlu:   %zu B  %s\n", bytes, name.c_str());
    }
  }
#endif
}

Stream& Device::stream(int i) {
  IRRLU_CHECK(i >= 0);
  while (static_cast<int>(streams_.size()) <= i)
    streams_.emplace_back(new Stream(static_cast<int>(streams_.size())));
  return *streams_[static_cast<std::size_t>(i)];
}

void Device::begin_launch([[maybe_unused]] const LaunchConfig& cfg) {
#ifndef NDEBUG
  // Two launch sites sharing one kernel name fold their profile() and
  // trace statistics together — usually a naming bug. Warn once per name.
  const auto site = std::make_pair(std::string(cfg.where.file_name()),
                                   static_cast<unsigned>(cfg.where.line()));
  const auto [it, inserted] = launch_sites_.try_emplace(cfg.name, site);
  if (!inserted && it->second.second != 0 && it->second != site) {
    std::fprintf(stderr,
                 "irrlu: kernel name '%s' launched from %s:%u and %s:%u; "
                 "their stats fold together — give each kernel a unique "
                 "name\n",
                 cfg.name, it->second.first.c_str(), it->second.second,
                 site.first.c_str(), site.second);
    it->second.second = 0;  // already reported
  }
#endif
  launch_flops_ = 0;
  launch_bytes_ = 0;
  launch_wall_seconds_ = 0;
}

void Device::end_launch(Stream& s, const LaunchConfig& cfg) {
  // Host dispatch is serialized on a single host timeline: each launch call
  // costs host_dispatch_overhead before the host can issue the next one.
  const double host_before = host_time_;
  const double dispatch_done = host_time_ + model_.host_dispatch_overhead;
  host_time_ = dispatch_done;

  // The kernel may not start before the stream's previous work completes
  // nor before the device has received the launch.
  const double earliest =
      std::max(dispatch_done + model_.device_launch_latency, s.cursor_);

  // Occupancy: restrict scheduling to the slots allowed by shared-memory use.
  const int bps = model_.blocks_per_sm(cfg.smem_bytes);
  const std::size_t nslots =
      static_cast<std::size_t>(model_.num_sms) * static_cast<std::size_t>(bps);

  const double stream_prev = s.cursor_;
  double end = earliest;  // empty grids still occupy the launch latency
  double first_start = earliest;  // simulated start of the first block
  if (!block_costs_.empty()) {
    // Bandwidth is shared among the blocks of a wave: as many blocks as
    // the grid provides, up to the occupancy-limited slot count.
    const double bw = model_.bandwidth_share(static_cast<int>(
        std::min(nslots, block_costs_.size())));
    // List-schedule blocks (in issue order) onto the earliest-free slot.
    //
    // The schedule pops the heap once per block, and every re-pushed slot
    // carries a `done` time at least as late as the value it replaced, so
    // with b blocks only the b lexicographically smallest (free, idx)
    // slots can ever surface: at any of the first b pops, at least one of
    // those b is still enqueued and undercuts every other candidate.
    // Seeding the heap with just that subset (one bounded-max-heap pass
    // over the prefix) is therefore schedule-identical to heaping all
    // num_sms * bps slots — which dominated the host cost of every launch
    // with a small grid, exactly the leaf-batch regime the interleaved
    // path cares about.
    using Slot = std::pair<double, std::size_t>;  // (free time, slot index)
    const std::size_t cand = std::min(nslots, slot_free_.size());
    const std::size_t take = std::min(block_costs_.size(), cand);
    std::vector<Slot>& heap = slot_scratch_;
    heap.clear();
    // Prefill with the prefix, then scan the rest through a value-only
    // threshold filter: a block of slots none of which undercuts the
    // current heap maximum cannot contribute, and the filter reduces over
    // plain doubles so it vectorizes. Ties at the threshold fall through
    // to the exact (free, idx) comparison below.
    std::size_t i = 0;
    for (; i < take; ++i) {
      heap.emplace_back(slot_free_[i], i);
      std::push_heap(heap.begin(), heap.end());  // max-heap of the kept
    }
    constexpr std::size_t kChunk = 8;
    for (; take > 0 && i + kChunk <= cand; i += kChunk) {
      const double thr = heap.front().first;
      double mn = slot_free_[i];
      for (std::size_t u = 1; u < kChunk; ++u)
        mn = std::min(mn, slot_free_[i + u]);
      if (mn > thr) continue;
      for (std::size_t u = 0; u < kChunk; ++u) {
        const Slot sl{slot_free_[i + u], i + u};
        if (sl < heap.front()) {
          std::pop_heap(heap.begin(), heap.end());
          heap.back() = sl;
          std::push_heap(heap.begin(), heap.end());
        }
      }
    }
    for (; i < cand; ++i) {
      const Slot sl{slot_free_[i], i};
      if (sl < heap.front()) {
        std::pop_heap(heap.begin(), heap.end());
        heap.back() = sl;
        std::push_heap(heap.begin(), heap.end());
      }
    }
    const auto min_cmp = std::greater<Slot>{};
    std::make_heap(heap.begin(), heap.end(), min_cmp);
    bool first = true;
    for (const auto& [flops, bytes] : block_costs_) {
      std::pop_heap(heap.begin(), heap.end(), min_cmp);
      const auto [free_at, idx] = heap.back();
      heap.pop_back();
      const double start = std::max(free_at, earliest);
      // The heap pops slots in order of free time, so the first block has
      // the globally earliest start of the launch.
      if (first) {
        first_start = start;
        first = false;
      }
      const double done = start + model_.block_start_overhead +
                          model_.block_seconds(flops, bytes, bw);
      slot_free_[idx] = done;
      if (done > end) end = done;
      heap.emplace_back(done, idx);
      std::push_heap(heap.begin(), heap.end(), min_cmp);
    }
  }
  s.cursor_ = end;

  ++launch_count_;
  auto& ks = profile_[cfg.name];
  ++ks.launches;
  ks.blocks += static_cast<long>(block_costs_.size());
  ks.flops += launch_flops_;
  ks.bytes += launch_bytes_;
  // Exclusive attribution: only the interval this launch extends its
  // stream's timeline by (plus its dispatch cost). Summing over kernels of
  // a single-stream schedule reproduces the stream's total busy time.
  const double excl = (end - std::max(stream_prev, dispatch_done)) +
                      model_.host_dispatch_overhead;
  ks.sim_seconds += excl;

  if (tracer_ != nullptr) {
    trace::LaunchRecord r;
    r.name_id = tracer_->intern_kernel(cfg.name);
    r.scope = tracer_->current_scope();
    r.stream = s.id_;
    r.blocks = static_cast<int>(block_costs_.size());
    r.smem_bytes = cfg.smem_bytes;
    r.flops = launch_flops_;
    r.bytes = launch_bytes_;
    r.sim_start = first_start;
    r.sim_end = end;
    r.excl_seconds = excl;
    // The pre-dispatch host time, captured directly: reconstructing it as
    // dispatch_done - overhead is not bitwise faithful in floating point,
    // and the trace analyzer's replay fidelity check compares exactly.
    r.host_issue = host_before;
    r.wall_seconds = launch_wall_seconds_;
    tracer_->on_launch(r);
  }
}

Event Device::record(Stream& s) {
  // Ids are assigned traced or not, so attaching a tracer mid-run cannot
  // alias an earlier (unrecorded) event's id.
  const Event e(s.cursor_, next_event_id_++);
  if (tracer_ != nullptr)
    tracer_->on_event(/*is_wait=*/false, s.id_, s.cursor_, e.id_);
  return e;
}

void Device::wait(Stream& s, const Event& e) {
  s.cursor_ = std::max(s.cursor_, e.time());
  if (tracer_ != nullptr)
    tracer_->on_event(/*is_wait=*/true, s.id_, s.cursor_, e.id_);
}

void Device::synchronize(Stream& s) {
  ++sync_count_;
  const double before = host_time_;
  host_time_ = std::max(host_time_, s.cursor_) + model_.stream_sync_overhead;
  sync_wait_seconds_ += host_time_ - before;
  if (tracer_ != nullptr) tracer_->on_sync(s.id_, before, host_time_);
}

double Device::synchronize_all() {
  ++sync_count_;
  const double before = host_time_;
  double t = host_time_;
  for (auto& s : streams_) t = std::max(t, s->cursor_);
  host_time_ = t + model_.stream_sync_overhead;
  sync_wait_seconds_ += host_time_ - before;
  if (tracer_ != nullptr) tracer_->on_sync(-1, before, host_time_);
  return host_time_;
}

void Device::reset_timeline() {
  host_time_ = 0;
  std::fill(slot_free_.begin(), slot_free_.end(), 0.0);
  for (auto& s : streams_) s->cursor_ = 0;
  launch_count_ = 0;
  sync_count_ = 0;
  sync_wait_seconds_ = 0;
  total_flops_ = 0;
  total_bytes_ = 0;
  profile_.clear();
}

void* Device::raw_alloc(std::size_t bytes, const std::source_location& where) {
  // bytes > 0: alloc() filters empty requests.
  void* p;
  bool pool_hit = false;
  if (pool_ != nullptr) {
    p = pool_->acquire(bytes, &pool_hit);
    if (!pool_hit) ++host_alloc_count_;
  } else {
    p = std::malloc(bytes);
    IRRLU_CHECK_MSG(p != nullptr,
                    "device allocation of " << bytes << " B failed");
    ++host_alloc_count_;
  }
#ifndef NDEBUG
  // Deterministic poison: a kernel reading device memory before writing it
  // would otherwise see zero pages on a fresh mmap but stale data on a
  // pool hit — an on/off byte-identity bug that only reproduces sometimes.
  // Poisoning both paths makes such a read fail loudly in every build.
  std::memset(p, 0xAB, bytes);
#endif
  ++alloc_count_;
  bytes_in_use_ += bytes;  // requested bytes; pool slack is not charged
  peak_bytes_ = std::max(peak_bytes_, bytes_in_use_);
  window_peak_ = std::max(window_peak_, bytes_in_use_);
  // Device allocation is a synchronizing host-side operation (the
  // cudaMalloc cost the paper's workspace discussions revolve around).
  // Pool hits charge it too: the pool is a host-side optimization and
  // must not perturb the simulated timeline (see mem_pool.hpp).
  host_time_ += model_.alloc_overhead;
  if (tracer_ != nullptr) {
    note_alloc(p, bytes, where);
    if (pool_ != nullptr) {
      tracer_->add_counter(pool_hit ? "pool.hits" : "pool.misses", 1.0);
      if (pool_hit)
        tracer_->add_counter("pool.bytes_served",
                             static_cast<double>(bytes));
    }
  }
  return p;
}

void Device::raw_free(void* p, std::size_t bytes) {
  IRRLU_DEBUG_ASSERT(bytes_in_use_ >= bytes);
  bytes_in_use_ -= bytes;
  // Bookkeeping first: a freed pointer value must not be used, not even
  // as a map key.
  if (tracer_ != nullptr) {
    note_free(p, bytes);
  } else if (!live_allocs_.empty()) {
    live_allocs_.erase(p);  // stale entry from a detached tracer
  }
  if (pool_ != nullptr)
    pool_->release(p, bytes);
  else
    std::free(p);
}

void* Device::workspace_bytes(std::string_view key, std::size_t bytes,
                              const std::source_location& where) {
  auto it = workspaces_.find(key);
  if (it == workspaces_.end())
    it = workspaces_.emplace(std::string(key), Workspace{}).first;
  Workspace& w = it->second;
  if (w.bytes < bytes) {
    if (w.p != nullptr) raw_free(w.p, w.bytes);
    // Geometric growth: a size-oscillating call sequence settles after
    // one round instead of reallocating forever.
    const std::size_t grown = std::max(bytes, 2 * w.bytes);
    w.p = raw_alloc(grown, where);
    w.bytes = grown;
  }
  return w.p;
}

void Device::release_workspaces() {
  for (auto& [key, w] : workspaces_)
    if (w.p != nullptr) raw_free(w.p, w.bytes);
  workspaces_.clear();
}

namespace {
/// Fallback allocation tag when no trace scope is open: "file.cpp:123".
std::string site_tag(const std::source_location& where) {
  std::string file = where.file_name();
  const std::size_t slash = file.find_last_of("/\\");
  if (slash != std::string::npos) file.erase(0, slash + 1);
  return file + ':' + std::to_string(where.line());
}
}  // namespace

void Device::note_alloc(void* p, std::size_t bytes,
                        const std::source_location& where) {
  const int scope = tracer_->current_scope();
  const int tag = tracer_->intern_mem_tag(
      scope >= 0 ? tracer_->scope_path(scope) : site_tag(where));
  live_allocs_.emplace(p, std::make_pair(tag, bytes));
  tracer_->on_alloc(tag, bytes, host_time_, bytes_in_use_);
}

void Device::note_free(const void* p, std::size_t bytes) {
  int tag = -1;
  const auto it = live_allocs_.find(p);
  if (it != live_allocs_.end()) {
    tag = it->second.first;
    live_allocs_.erase(it);
  }
  tracer_->on_free(tag, bytes, host_time_, bytes_in_use_);
}

}  // namespace irrlu::gpusim
