// Size-class slab pool backing Device::alloc (DESIGN.md §10).
//
// Device allocation in the simulator is a stand-in for cudaMalloc: it is
// host-synchronizing and, on real hardware, expensive enough that the
// paper's interface discussion revolves around hoisting it out of the hot
// path. The pool removes the *host-side* cost of the remaining
// allocations (malloc/munmap churn and the page faulting behind it) by
// recycling blocks through per-size-class free lists, while the
// *simulated* cost model is untouched: a pool hit still charges the same
// alloc_overhead as a fresh allocation, so simulated timelines are
// byte-identical with the pool on or off (test_pool asserts this).
//
// Blocks are binned into deterministic size classes — powers of two up to
// 1 MiB, quarter-power-of-two steps above — recomputable from the
// requested byte count alone, so acquire() and release() agree on the
// class without storing per-block headers. Blocks come from std::malloc
// and are therefore max_align_t-aligned, like the un-pooled path.
#pragma once

#include <cstddef>
#include <vector>

namespace irrlu::gpusim {

class MemPool {
 public:
  /// Host-side pool effectiveness counters (simulation-invisible).
  struct Stats {
    long hits = 0;        ///< acquires served from a free list (no malloc)
    long misses = 0;      ///< acquires that fell through to std::malloc
    std::size_t bytes_served = 0;  ///< requested bytes satisfied by hits
    std::size_t held_bytes = 0;    ///< capacity currently on free lists
    std::size_t held_blocks = 0;   ///< blocks currently on free lists
  };

  MemPool() = default;
  ~MemPool() { trim(); }
  MemPool(const MemPool&) = delete;
  MemPool& operator=(const MemPool&) = delete;

  /// Capacity class a request of `bytes` is served from: the smallest
  /// class >= bytes. Classes are powers of two in [64 B, 1 MiB] and
  /// quarter-power-of-two steps above (waste bounded by ~20%).
  static std::size_t class_size(std::size_t bytes);

  /// Returns a block of class_size(bytes) capacity: recycled from the
  /// class's free list when available (hit), freshly malloc'd otherwise
  /// (miss). Contents are unspecified either way. Never returns null
  /// (allocation failure throws, matching the un-pooled path).
  void* acquire(std::size_t bytes, bool* hit = nullptr);

  /// Returns a block previously obtained with acquire(bytes') where
  /// class_size(bytes') == class_size(bytes) to its free list. The block
  /// is retained for reuse until trim() or destruction.
  void release(void* p, std::size_t bytes);

  /// Frees every cached block back to the system.
  void trim();

  const Stats& stats() const { return stats_; }

 private:
  /// Dense index of class_size(bytes) into free_: pow2 classes map to
  /// log2 - 6, quarter-step classes above 1 MiB to four slots per octave.
  /// Arithmetic only — the acquire/release hot path stays O(1), cheaper
  /// than the allocator fast path it replaces.
  static std::size_t class_index(std::size_t bytes);

  std::vector<std::vector<void*>> free_;  ///< class index -> cached blocks
  Stats stats_;
};

}  // namespace irrlu::gpusim
