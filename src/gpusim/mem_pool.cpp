#include "gpusim/mem_pool.hpp"

#include <bit>
#include <cstdlib>

#include "common/error.hpp"

namespace irrlu::gpusim {

namespace {
constexpr std::size_t kMinClass = 64;                     // 2^6
constexpr std::size_t kPow2Limit = std::size_t{1} << 20;  // 1 MiB
constexpr std::size_t kNumPow2 = 15;                      // 2^6 .. 2^20
}  // namespace

std::size_t MemPool::class_size(std::size_t bytes) {
  if (bytes <= kMinClass) return kMinClass;
  const std::size_t pow2 = std::bit_ceil(bytes);
  if (pow2 <= kPow2Limit) return pow2;
  // Quarter steps between pow2/2 and pow2: base + j * base/4 for the
  // smallest j in {1..4} reaching bytes. An exact power of two lands on
  // j == 4 (the class equals the request).
  const std::size_t base = pow2 / 2;
  const std::size_t step = base / 4;
  const std::size_t j = (bytes - base + step - 1) / step;
  return base + j * step;
}

std::size_t MemPool::class_index(std::size_t bytes) {
  if (bytes <= kMinClass) return 0;
  const std::size_t pow2 = std::bit_ceil(bytes);
  const auto e = static_cast<std::size_t>(std::bit_width(pow2)) - 1;
  if (pow2 <= kPow2Limit) return e - 6;
  const std::size_t base = pow2 / 2;
  const std::size_t step = base / 4;
  const std::size_t j = (bytes - base + step - 1) / step;  // 1..4
  return kNumPow2 + (e - 21) * 4 + (j - 1);
}

void* MemPool::acquire(std::size_t bytes, bool* hit) {
  const std::size_t idx = class_index(bytes);
  if (idx < free_.size() && !free_[idx].empty()) {
    void* p = free_[idx].back();
    free_[idx].pop_back();
    ++stats_.hits;
    stats_.bytes_served += bytes;
    stats_.held_bytes -= class_size(bytes);
    --stats_.held_blocks;
    if (hit != nullptr) *hit = true;
    return p;
  }
  const std::size_t cls = class_size(bytes);
  void* p = std::malloc(cls);
  IRRLU_CHECK_MSG(p != nullptr, "device allocation of " << bytes
                                    << " B (pool class " << cls
                                    << " B) failed");
  ++stats_.misses;
  if (hit != nullptr) *hit = false;
  return p;
}

void MemPool::release(void* p, std::size_t bytes) {
  const std::size_t idx = class_index(bytes);
  if (idx >= free_.size()) free_.resize(idx + 1);
  free_[idx].push_back(p);
  stats_.held_bytes += class_size(bytes);
  ++stats_.held_blocks;
}

void MemPool::trim() {
  for (auto& blocks : free_) {
    for (void* p : blocks) std::free(p);
    blocks.clear();
  }
  free_.clear();
  stats_.held_bytes = 0;
  stats_.held_blocks = 0;
}

}  // namespace irrlu::gpusim
