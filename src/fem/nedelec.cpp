#include "fem/nedelec.hpp"

#include <algorithm>
#include <cmath>
#include <tuple>

#include "fem/element.hpp"

namespace irrlu::fem {

namespace {

/// Reference Nédélec basis at (xi, eta, zeta): values and reference curls,
/// ordered to match HexMesh::cell_edges (4 x-, 4 y-, 4 z-edges; transverse
/// offsets (0,0), (1,0), (0,1), (1,1)).
void nedelec_shapes(double xi, double eta, double zeta,
                    std::array<std::array<double, 3>, 12>& val,
                    std::array<std::array<double, 3>, 12>& curl) {
  const double l[2][3] = {{1.0 - xi, 1.0 - eta, 1.0 - zeta},
                          {xi, eta, zeta}};
  const double dl[2] = {-1.0, 1.0};
  int t = 0;
  // x-edges: N = (l_a(eta) l_b(zeta), 0, 0);
  // curl = (0, d/dzeta Nx, -d/deta Nx).
  for (int b = 0; b < 2; ++b)
    for (int a = 0; a < 2; ++a) {
      val[static_cast<std::size_t>(t)] = {l[a][1] * l[b][2], 0, 0};
      curl[static_cast<std::size_t>(t)] = {0, l[a][1] * dl[b],
                                           -dl[a] * l[b][2]};
      ++t;
    }
  // y-edges: N = (0, l_a(xi) l_b(zeta), 0);
  // curl = (-d/dzeta Ny, 0, d/dxi Ny).
  for (int b = 0; b < 2; ++b)
    for (int a = 0; a < 2; ++a) {
      val[static_cast<std::size_t>(t)] = {0, l[a][0] * l[b][2], 0};
      curl[static_cast<std::size_t>(t)] = {-l[a][0] * dl[b], 0,
                                           dl[a] * l[b][2]};
      ++t;
    }
  // z-edges: N = (0, 0, l_a(xi) l_b(eta));
  // curl = (d/deta Nz, -d/dxi Nz, 0).
  for (int b = 0; b < 2; ++b)
    for (int a = 0; a < 2; ++a) {
      val[static_cast<std::size_t>(t)] = {0, 0, l[a][0] * l[b][1]};
      curl[static_cast<std::size_t>(t)] = {l[a][0] * dl[b],
                                           -dl[a] * l[b][1], 0};
      ++t;
    }
}

std::array<double, 3> mat_vec(const std::array<std::array<double, 3>, 3>& m,
                              const std::array<double, 3>& v,
                              bool transpose) {
  std::array<double, 3> r = {0, 0, 0};
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      r[static_cast<std::size_t>(i)] +=
          (transpose ? m[static_cast<std::size_t>(j)]
                        [static_cast<std::size_t>(i)]
                     : m[static_cast<std::size_t>(i)]
                        [static_cast<std::size_t>(j)]) *
          v[static_cast<std::size_t>(j)];
  return r;
}

double dot3(const std::array<double, 3>& a, const std::array<double, 3>& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

}  // namespace

EdgeSystem assemble_maxwell(const HexMesh& mesh, double omega,
                            const VectorField& f) {
  EdgeSystem sys;
  const int ne = mesh.num_edges();
  sys.dof_of_edge.assign(static_cast<std::size_t>(ne), -1);
  for (int e = 0; e < ne; ++e) {
    if (mesh.edge_on_boundary(e)) continue;
    sys.dof_of_edge[static_cast<std::size_t>(e)] = sys.num_dofs++;
    sys.edge_of_dof.push_back(e);
  }
  sys.b.assign(static_cast<std::size_t>(sys.num_dofs), 0.0);

  const auto quad = gauss8();
  std::vector<std::tuple<int, int, double>> tk, tm;

  for (int ck = 0; ck < mesh.nz(); ++ck)
    for (int cj = 0; cj < mesh.ny(); ++cj)
      for (int ci = 0; ci < mesh.nx(); ++ci) {
        const auto edges = mesh.cell_edges(ci, cj, ck);
        const auto coords = mesh.cell_coords(ci, cj, ck);
        double ke[12][12] = {}, me[12][12] = {}, fe[12] = {};
        for (const auto& q : quad) {
          const ElemGeom geo = map_hex(coords, q.xi, q.eta, q.zeta);
          std::array<std::array<double, 3>, 12> nref, cref;
          nedelec_shapes(q.xi, q.eta, q.zeta, nref, cref);
          // Piola transforms.
          std::array<std::array<double, 3>, 12> nphys, cphys;
          for (int a = 0; a < 12; ++a) {
            nphys[static_cast<std::size_t>(a)] = mat_vec(
                geo.Jinv, nref[static_cast<std::size_t>(a)], /*T=*/true);
            cphys[static_cast<std::size_t>(a)] = mat_vec(
                geo.J, cref[static_cast<std::size_t>(a)], /*T=*/false);
            for (auto& c : cphys[static_cast<std::size_t>(a)]) c /= geo.detJ;
          }
          const double wdet = q.w * geo.detJ;
          const auto fval = f ? f(geo.x[0], geo.x[1], geo.x[2])
                              : std::array<double, 3>{0, 0, 0};
          for (int a = 0; a < 12; ++a) {
            for (int b = 0; b < 12; ++b) {
              ke[a][b] += wdet * dot3(cphys[static_cast<std::size_t>(a)],
                                      cphys[static_cast<std::size_t>(b)]);
              me[a][b] += wdet * dot3(nphys[static_cast<std::size_t>(a)],
                                      nphys[static_cast<std::size_t>(b)]);
            }
            fe[a] += wdet * dot3(fval, nphys[static_cast<std::size_t>(a)]);
          }
        }
        for (int a = 0; a < 12; ++a) {
          const int da = sys.dof_of_edge[static_cast<std::size_t>(
              edges[static_cast<std::size_t>(a)])];
          if (da < 0) continue;
          sys.b[static_cast<std::size_t>(da)] += fe[a];
          for (int b = 0; b < 12; ++b) {
            const int db = sys.dof_of_edge[static_cast<std::size_t>(
                edges[static_cast<std::size_t>(b)])];
            if (db < 0) continue;  // homogeneous tangential Dirichlet
            tk.emplace_back(da, db, ke[a][b]);
            tm.emplace_back(da, db, me[a][b]);
          }
        }
      }

  sys.curl = sparse::CsrMatrix::from_triplets(sys.num_dofs, tk);
  sys.mass = sparse::CsrMatrix::from_triplets(sys.num_dofs, tm);
  // A = K - omega^2 M (same pattern: subtract values).
  std::vector<std::tuple<int, int, double>> ta = tk;
  for (auto& [i, j, v] : tm) ta.emplace_back(i, j, -omega * omega * v);
  sys.a = sparse::CsrMatrix::from_triplets(sys.num_dofs, ta);
  return sys;
}

VectorField paper_maxwell_load(double omega, double kappa) {
  const double c = kappa * kappa - omega * omega;
  return [c, kappa](double x1, double x2,
                    double x3) -> std::array<double, 3> {
    return {c * std::sin(kappa * x2), c * std::sin(kappa * x3),
            c * std::sin(kappa * x1)};
  };
}

sparse::CsrMatrix discrete_gradient(const HexMesh& mesh,
                                    const EdgeSystem& sys,
                                    std::vector<int>& dof_of_vertex) {
  const int nvx = mesh.periodic_x() ? mesh.nx() : mesh.nx() + 1;
  dof_of_vertex.assign(static_cast<std::size_t>(mesh.num_vertices()), -1);
  int nvdof = 0;
  for (int k = 0; k <= mesh.nz(); ++k)
    for (int j = 0; j <= mesh.ny(); ++j)
      for (int i = 0; i < nvx; ++i)
        if (!mesh.vertex_on_boundary(i, j, k))
          dof_of_vertex[static_cast<std::size_t>(mesh.vertex_id(i, j, k))] =
              nvdof++;

  std::vector<std::tuple<int, int, double>> t;
  for (int d = 0; d < sys.num_dofs; ++d) {
    const auto [dir, i, j, k] =
        mesh.edge_decode(sys.edge_of_dof[static_cast<std::size_t>(d)]);
    const int tail = mesh.vertex_id(i, j, k);
    const int head = mesh.vertex_id(i + (dir == 0), j + (dir == 1),
                                    k + (dir == 2));
    const int dt = dof_of_vertex[static_cast<std::size_t>(tail)];
    const int dh = dof_of_vertex[static_cast<std::size_t>(head)];
    if (dh >= 0) t.emplace_back(d, dh, 1.0);
    if (dt >= 0) t.emplace_back(d, dt, -1.0);
  }
  // Rectangular matrix stored as CSR with num_dofs rows; the column space
  // is the interior-vertex dof set.
  std::vector<int> ptr(static_cast<std::size_t>(sys.num_dofs) + 1, 0);
  std::vector<int> ind;
  std::vector<double> val;
  std::sort(t.begin(), t.end());
  std::size_t pos = 0;
  for (int r = 0; r < sys.num_dofs; ++r) {
    while (pos < t.size() && std::get<0>(t[pos]) == r) {
      ind.push_back(std::get<1>(t[pos]));
      val.push_back(std::get<2>(t[pos]));
      ++pos;
    }
    ptr[static_cast<std::size_t>(r) + 1] = static_cast<int>(ind.size());
  }
  return sparse::CsrMatrix(sys.num_dofs, std::move(ptr), std::move(ind),
                           std::move(val));
}

}  // namespace irrlu::fem
