// Structured hexahedral meshes with optional toroidal geometry — the
// project's substitute for the paper's MFEM unstructured hex mesh of a
// torus (Fig. 12). The mesh is logically a structured nx x ny x nz grid;
// the torus variant bends the x direction around a major circle and
// identifies the two x-ends (periodic), producing a genuine solid-torus
// topology with hexahedral cells.
#pragma once

#include <array>
#include <vector>

#include "common/error.hpp"

namespace irrlu::fem {

class HexMesh {
 public:
  enum class Geometry { kBox, kTorus };

  /// Unit cube [0,1]^3 split into nx x ny x nz hexes.
  static HexMesh box(int nx, int ny, int nz);

  /// Solid torus: n_theta cells around the major circle (periodic), with a
  /// square cross-section of ny x nz cells and the given radii.
  static HexMesh torus(int n_theta, int ny, int nz, double major_radius = 2.0,
                       double minor_half_width = 0.5);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }
  bool periodic_x() const { return periodic_x_; }
  Geometry geometry() const { return geometry_; }

  int num_vertices() const;
  int num_edges() const;
  int num_cells() const { return nx_ * ny_ * nz_; }

  /// Vertex index from lattice coordinates (i wraps when periodic).
  int vertex_id(int i, int j, int k) const;
  /// Physical coordinates of a vertex.
  std::array<double, 3> vertex_coord(int i, int j, int k) const;
  std::array<double, 3> vertex_coord(int vid) const;

  /// Edge indexing: direction d in {0 = x, 1 = y, 2 = z} plus lattice
  /// position of the edge's lower endpoint.
  int edge_id(int d, int i, int j, int k) const;

  /// The 12 edges of cell (ci, cj, ck), ordered: 4 x-edges, 4 y-edges,
  /// 4 z-edges (within each direction: (0,0), (1,0), (0,1), (1,1) over the
  /// transverse lattice offsets).
  std::array<int, 12> cell_edges(int ci, int cj, int ck) const;

  /// The 8 vertices of a cell in lexicographic (i, j, k) order.
  std::array<int, 8> cell_vertices(int ci, int cj, int ck) const;
  /// Their physical coordinates.
  std::array<std::array<double, 3>, 8> cell_coords(int ci, int cj,
                                                   int ck) const;

  /// True if the edge lies on the domain boundary (where tangential
  /// Dirichlet conditions are imposed). For the torus there is no boundary
  /// in the periodic direction.
  bool edge_on_boundary(int d, int i, int j, int k) const;
  /// Same, by global edge id.
  bool edge_on_boundary(int eid) const;

  /// True if the vertex lies on the domain boundary.
  bool vertex_on_boundary(int i, int j, int k) const;

  /// Decodes a global edge id back to (d, i, j, k).
  std::array<int, 4> edge_decode(int eid) const;

 private:
  int nx_ = 0, ny_ = 0, nz_ = 0;
  bool periodic_x_ = false;
  Geometry geometry_ = Geometry::kBox;
  double major_r_ = 2.0, minor_hw_ = 0.5;

  int nvx() const { return periodic_x_ ? nx_ : nx_ + 1; }  // vertex planes
  int x_edge_count() const { return nx_ * (ny_ + 1) * (nz_ + 1); }
  int y_edge_count() const { return nvx() * ny_ * (nz_ + 1); }
  int z_edge_count() const { return nvx() * (ny_ + 1) * nz_; }
};

}  // namespace irrlu::fem
