#include "fem/mesh.hpp"

#include <cmath>

namespace irrlu::fem {

HexMesh HexMesh::box(int nx, int ny, int nz) {
  IRRLU_CHECK(nx >= 1 && ny >= 1 && nz >= 1);
  HexMesh m;
  m.nx_ = nx;
  m.ny_ = ny;
  m.nz_ = nz;
  m.periodic_x_ = false;
  m.geometry_ = Geometry::kBox;
  return m;
}

HexMesh HexMesh::torus(int n_theta, int ny, int nz, double major_radius,
                       double minor_half_width) {
  IRRLU_CHECK(n_theta >= 3 && ny >= 1 && nz >= 1);
  IRRLU_CHECK(major_radius > minor_half_width);
  HexMesh m;
  m.nx_ = n_theta;
  m.ny_ = ny;
  m.nz_ = nz;
  m.periodic_x_ = true;
  m.geometry_ = Geometry::kTorus;
  m.major_r_ = major_radius;
  m.minor_hw_ = minor_half_width;
  return m;
}

int HexMesh::num_vertices() const { return nvx() * (ny_ + 1) * (nz_ + 1); }

int HexMesh::num_edges() const {
  return x_edge_count() + y_edge_count() + z_edge_count();
}

int HexMesh::vertex_id(int i, int j, int k) const {
  if (periodic_x_) i = (i % nx_ + nx_) % nx_;
  IRRLU_DEBUG_ASSERT(i >= 0 && i < nvx());
  IRRLU_DEBUG_ASSERT(j >= 0 && j <= ny_ && k >= 0 && k <= nz_);
  return (k * (ny_ + 1) + j) * nvx() + i;
}

std::array<double, 3> HexMesh::vertex_coord(int i, int j, int k) const {
  const double x = static_cast<double>(i) / nx_;
  const double y = static_cast<double>(j) / ny_;
  const double z = static_cast<double>(k) / nz_;
  if (geometry_ == Geometry::kBox) return {x, y, z};
  // Torus: bend x around the major circle; (y, z) span the square
  // cross-section of half-width minor_hw_. The radial coordinate decreases
  // with y so that the mapping is orientation-preserving (detJ > 0).
  const double theta = 2.0 * M_PI * x;
  const double r = major_r_ + (1.0 - 2.0 * y) * minor_hw_;
  const double h = (2.0 * z - 1.0) * minor_hw_;
  return {r * std::cos(theta), r * std::sin(theta), h};
}

std::array<double, 3> HexMesh::vertex_coord(int vid) const {
  const int i = vid % nvx();
  const int j = (vid / nvx()) % (ny_ + 1);
  const int k = vid / (nvx() * (ny_ + 1));
  return vertex_coord(i, j, k);
}

int HexMesh::edge_id(int d, int i, int j, int k) const {
  if (periodic_x_) i = (i % nx_ + nx_) % nx_;
  switch (d) {
    case 0:
      IRRLU_DEBUG_ASSERT(i < nx_ && j <= ny_ && k <= nz_);
      return (k * (ny_ + 1) + j) * nx_ + i;
    case 1:
      IRRLU_DEBUG_ASSERT(i < nvx() && j < ny_ && k <= nz_);
      return x_edge_count() + (k * ny_ + j) * nvx() + i;
    default:
      IRRLU_DEBUG_ASSERT(i < nvx() && j <= ny_ && k < nz_);
      return x_edge_count() + y_edge_count() + (k * (ny_ + 1) + j) * nvx() +
             i;
  }
}

std::array<int, 4> HexMesh::edge_decode(int eid) const {
  if (eid < x_edge_count()) {
    const int i = eid % nx_;
    const int j = (eid / nx_) % (ny_ + 1);
    const int k = eid / (nx_ * (ny_ + 1));
    return {0, i, j, k};
  }
  eid -= x_edge_count();
  if (eid < y_edge_count()) {
    const int i = eid % nvx();
    const int j = (eid / nvx()) % ny_;
    const int k = eid / (nvx() * ny_);
    return {1, i, j, k};
  }
  eid -= y_edge_count();
  const int i = eid % nvx();
  const int j = (eid / nvx()) % (ny_ + 1);
  const int k = eid / (nvx() * (ny_ + 1));
  return {2, i, j, k};
}

std::array<int, 12> HexMesh::cell_edges(int ci, int cj, int ck) const {
  std::array<int, 12> e;
  int t = 0;
  // x-edges: transverse offsets over (j, k).
  for (int dk = 0; dk < 2; ++dk)
    for (int dj = 0; dj < 2; ++dj)
      e[static_cast<std::size_t>(t++)] = edge_id(0, ci, cj + dj, ck + dk);
  // y-edges: transverse offsets over (i, k).
  for (int dk = 0; dk < 2; ++dk)
    for (int di = 0; di < 2; ++di)
      e[static_cast<std::size_t>(t++)] = edge_id(1, ci + di, cj, ck + dk);
  // z-edges: transverse offsets over (i, j).
  for (int dj = 0; dj < 2; ++dj)
    for (int di = 0; di < 2; ++di)
      e[static_cast<std::size_t>(t++)] = edge_id(2, ci + di, cj + dj, ck);
  return e;
}

std::array<int, 8> HexMesh::cell_vertices(int ci, int cj, int ck) const {
  std::array<int, 8> v;
  int t = 0;
  for (int dk = 0; dk < 2; ++dk)
    for (int dj = 0; dj < 2; ++dj)
      for (int di = 0; di < 2; ++di)
        v[static_cast<std::size_t>(t++)] =
            vertex_id(ci + di, cj + dj, ck + dk);
  return v;
}

std::array<std::array<double, 3>, 8> HexMesh::cell_coords(int ci, int cj,
                                                          int ck) const {
  std::array<std::array<double, 3>, 8> c;
  int t = 0;
  for (int dk = 0; dk < 2; ++dk)
    for (int dj = 0; dj < 2; ++dj)
      for (int di = 0; di < 2; ++di) {
        // For periodic meshes the coordinate must NOT wrap (the cell at the
        // seam spans theta in [2pi - h, 2pi]).
        c[static_cast<std::size_t>(t++)] =
            vertex_coord(ci + di, cj + dj, ck + dk);
      }
  return c;
}

bool HexMesh::vertex_on_boundary(int i, int j, int k) const {
  if (j == 0 || j == ny_ || k == 0 || k == nz_) return true;
  if (!periodic_x_ && (i == 0 || i == nx_)) return true;
  return false;
}

bool HexMesh::edge_on_boundary(int d, int i, int j, int k) const {
  switch (d) {
    case 0:  // spans i..i+1 at (j, k)
      if (j == 0 || j == ny_ || k == 0 || k == nz_) return true;
      return false;
    case 1:  // spans j..j+1 at (i, k)
      if (k == 0 || k == nz_) return true;
      if (!periodic_x_ && (i == 0 || i == nx_)) return true;
      return false;
    default:  // spans k..k+1 at (i, j)
      if (j == 0 || j == ny_) return true;
      if (!periodic_x_ && (i == 0 || i == nx_)) return true;
      return false;
  }
}

bool HexMesh::edge_on_boundary(int eid) const {
  const auto [d, i, j, k] = edge_decode(eid);
  return edge_on_boundary(d, i, j, k);
}

}  // namespace irrlu::fem
