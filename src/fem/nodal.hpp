// Lowest-order nodal (Q1) finite elements on hex meshes: assembly of
// stiffness + mass operators for Poisson / Helmholtz model problems, with
// Dirichlet elimination. Used by examples and as a well-understood
// verification vehicle (manufactured-solution convergence) for the mesh
// and quadrature machinery that the Maxwell assembly shares.
#pragma once

#include <functional>
#include <vector>

#include "fem/mesh.hpp"
#include "sparse/csr.hpp"

namespace irrlu::fem {

using ScalarField = std::function<double(double, double, double)>;

struct NodalSystem {
  sparse::CsrMatrix a;     ///< stiffness - shift * mass, interior dofs
  std::vector<double> b;   ///< load vector (with BC lift applied)
  std::vector<int> dof_of_vertex;  ///< -1 for Dirichlet vertices
  std::vector<int> vertex_of_dof;
  int num_dofs = 0;
};

/// Assembles -div(grad u) - shift * u = f with Dirichlet data g on the
/// boundary (g may be null for homogeneous conditions).
NodalSystem assemble_poisson(const HexMesh& mesh, double shift,
                             const ScalarField& f,
                             const ScalarField* g = nullptr);

/// Q1 interpolation error ||u_h - u||_inf over interior vertices.
double nodal_max_error(const HexMesh& mesh, const NodalSystem& sys,
                       const std::vector<double>& u_h, const ScalarField& u);

}  // namespace irrlu::fem
