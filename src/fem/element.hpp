// Reference-element machinery shared by the nodal and edge (Nédélec)
// assemblies: trilinear geometry mapping on [0,1]^3, its Jacobian, and a
// 2x2x2 Gauss quadrature rule.
#pragma once

#include <array>
#include <cmath>

#include "common/error.hpp"

namespace irrlu::fem {

struct QuadPoint {
  double xi, eta, zeta, w;
};

/// Tensor-product 2-point Gauss rule on the unit cube (exact for the
/// trilinear x trilinear integrands of lowest-order elements).
inline std::array<QuadPoint, 8> gauss8() {
  const double a = 0.5 - 0.5 / std::sqrt(3.0);
  const double b = 0.5 + 0.5 / std::sqrt(3.0);
  std::array<QuadPoint, 8> q;
  int t = 0;
  for (double z : {a, b})
    for (double y : {a, b})
      for (double x : {a, b}) q[static_cast<std::size_t>(t++)] = {x, y, z, 0.125};
  return q;
}

/// Trilinear nodal shape functions and their reference gradients at
/// (xi, eta, zeta); vertex order matches HexMesh::cell_vertices
/// (i fastest, then j, then k).
inline void q1_shapes(double xi, double eta, double zeta,
                      std::array<double, 8>& phi,
                      std::array<std::array<double, 3>, 8>& grad) {
  const double lx[2] = {1.0 - xi, xi}, dx[2] = {-1.0, 1.0};
  const double ly[2] = {1.0 - eta, eta}, dy[2] = {-1.0, 1.0};
  const double lz[2] = {1.0 - zeta, zeta}, dz[2] = {-1.0, 1.0};
  int t = 0;
  for (int k = 0; k < 2; ++k)
    for (int j = 0; j < 2; ++j)
      for (int i = 0; i < 2; ++i) {
        phi[static_cast<std::size_t>(t)] = lx[i] * ly[j] * lz[k];
        grad[static_cast<std::size_t>(t)] = {dx[i] * ly[j] * lz[k],
                                             lx[i] * dy[j] * lz[k],
                                             lx[i] * ly[j] * dz[k]};
        ++t;
      }
}

/// Geometry of one mapped hex at a quadrature point.
struct ElemGeom {
  std::array<std::array<double, 3>, 3> J;     ///< Jacobian dX/dxi
  std::array<std::array<double, 3>, 3> Jinv;  ///< inverse
  double detJ = 0;
  std::array<double, 3> x;  ///< physical coordinates of the point
};

inline ElemGeom map_hex(const std::array<std::array<double, 3>, 8>& coords,
                        double xi, double eta, double zeta) {
  std::array<double, 8> phi;
  std::array<std::array<double, 3>, 8> grad;
  q1_shapes(xi, eta, zeta, phi, grad);
  ElemGeom g;
  for (auto& row : g.J) row = {0, 0, 0};
  g.x = {0, 0, 0};
  for (int v = 0; v < 8; ++v)
    for (int c = 0; c < 3; ++c) {
      g.x[static_cast<std::size_t>(c)] +=
          phi[static_cast<std::size_t>(v)] *
          coords[static_cast<std::size_t>(v)][static_cast<std::size_t>(c)];
      for (int d = 0; d < 3; ++d)
        g.J[static_cast<std::size_t>(c)][static_cast<std::size_t>(d)] +=
            coords[static_cast<std::size_t>(v)][static_cast<std::size_t>(c)] *
            grad[static_cast<std::size_t>(v)][static_cast<std::size_t>(d)];
    }
  const auto& J = g.J;
  g.detJ = J[0][0] * (J[1][1] * J[2][2] - J[1][2] * J[2][1]) -
           J[0][1] * (J[1][0] * J[2][2] - J[1][2] * J[2][0]) +
           J[0][2] * (J[1][0] * J[2][1] - J[1][1] * J[2][0]);
  IRRLU_CHECK_MSG(g.detJ > 0, "inverted element (detJ <= 0)");
  const double inv = 1.0 / g.detJ;
  auto cof = [&](int r0, int r1, int c0, int c1) {
    return J[static_cast<std::size_t>(r0)][static_cast<std::size_t>(c0)] *
               J[static_cast<std::size_t>(r1)][static_cast<std::size_t>(c1)] -
           J[static_cast<std::size_t>(r0)][static_cast<std::size_t>(c1)] *
               J[static_cast<std::size_t>(r1)][static_cast<std::size_t>(c0)];
  };
  g.Jinv = {{{cof(1, 2, 1, 2) * inv, -cof(0, 2, 1, 2) * inv,
              cof(0, 1, 1, 2) * inv},
             {-cof(1, 2, 0, 2) * inv, cof(0, 2, 0, 2) * inv,
              -cof(0, 1, 0, 2) * inv},
             {cof(1, 2, 0, 1) * inv, -cof(0, 2, 0, 1) * inv,
              cof(0, 1, 0, 1) * inv}}};
  return g;
}

}  // namespace irrlu::fem
