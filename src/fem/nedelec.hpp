// Lowest-order Nédélec (edge) elements on hexahedral meshes and the
// indefinite Maxwell assembly of the paper's §V-B:
//     curl curl E - Omega^2 E = f,
// discretized in the weak form (curl E, curl E') - Omega^2 (E, E') =
// (f, E') with tangential Dirichlet conditions on the boundary. For large
// Omega the system is highly indefinite and hard to precondition — the
// motivating workload for the sparse direct solver.
//
// H(curl) conformity uses the covariant Piola transform: basis functions
// map as N = J^{-T} N_ref and curls as curl N = J curl_ref N / det J; edge
// degrees of freedom are tangential circulations, shared consistently
// between neighboring hexes.
#pragma once

#include <array>
#include <functional>
#include <vector>

#include "fem/mesh.hpp"
#include "sparse/csr.hpp"

namespace irrlu::fem {

using VectorField =
    std::function<std::array<double, 3>(double, double, double)>;

struct EdgeSystem {
  sparse::CsrMatrix a;     ///< curl-curl - omega^2 * mass (interior edges)
  sparse::CsrMatrix curl;  ///< curl-curl part alone
  sparse::CsrMatrix mass;  ///< mass part alone
  std::vector<double> b;   ///< load vector
  std::vector<int> dof_of_edge;  ///< -1 for boundary (Dirichlet) edges
  std::vector<int> edge_of_dof;
  int num_dofs = 0;
};

/// Assembles the indefinite Maxwell system for wavenumber omega and load f.
EdgeSystem assemble_maxwell(const HexMesh& mesh, double omega,
                            const VectorField& f);

/// The paper's boundary/source field:
/// f(x) = (kappa^2 - omega^2) * (sin(kappa x2), sin(kappa x3),
/// sin(kappa x1)); the paper uses kappa = omega / 1.05.
VectorField paper_maxwell_load(double omega, double kappa);

/// Discrete gradient on interior dofs: maps interior-vertex values to edge
/// circulations, (G p)_e = p(head) - p(tail); entries for boundary
/// vertices are dropped. The exact-sequence property curl o grad = 0 makes
/// `curl * G == 0`, a strong structural test of the assembly.
sparse::CsrMatrix discrete_gradient(const HexMesh& mesh,
                                    const EdgeSystem& sys,
                                    std::vector<int>& dof_of_vertex);

}  // namespace irrlu::fem
