#include "fem/nodal.hpp"

#include <array>
#include <tuple>

#include "fem/element.hpp"

namespace irrlu::fem {

NodalSystem assemble_poisson(const HexMesh& mesh, double shift,
                             const ScalarField& f, const ScalarField* g) {
  NodalSystem sys;
  const int nv = mesh.num_vertices();
  sys.dof_of_vertex.assign(static_cast<std::size_t>(nv), -1);

  // Number interior vertices.
  const int nvx = mesh.periodic_x() ? mesh.nx() : mesh.nx() + 1;
  for (int k = 0; k <= mesh.nz(); ++k)
    for (int j = 0; j <= mesh.ny(); ++j)
      for (int i = 0; i < nvx; ++i) {
        if (mesh.vertex_on_boundary(i, j, k)) continue;
        const int vid = mesh.vertex_id(i, j, k);
        sys.dof_of_vertex[static_cast<std::size_t>(vid)] = sys.num_dofs++;
        sys.vertex_of_dof.push_back(vid);
      }
  sys.b.assign(static_cast<std::size_t>(sys.num_dofs), 0.0);

  const auto quad = gauss8();
  std::vector<std::tuple<int, int, double>> triplets;

  for (int ck = 0; ck < mesh.nz(); ++ck)
    for (int cj = 0; cj < mesh.ny(); ++cj)
      for (int ci = 0; ci < mesh.nx(); ++ci) {
        const auto verts = mesh.cell_vertices(ci, cj, ck);
        const auto coords = mesh.cell_coords(ci, cj, ck);
        double ke[8][8] = {};
        double fe[8] = {};
        for (const auto& q : quad) {
          const ElemGeom geo = map_hex(coords, q.xi, q.eta, q.zeta);
          std::array<double, 8> phi;
          std::array<std::array<double, 3>, 8> gref;
          q1_shapes(q.xi, q.eta, q.zeta, phi, gref);
          // Physical gradients: g_phys = Jinv^T * g_ref.
          std::array<std::array<double, 3>, 8> gphys;
          for (int v = 0; v < 8; ++v)
            for (int c = 0; c < 3; ++c) {
              double acc = 0;
              for (int d = 0; d < 3; ++d)
                acc += geo.Jinv[static_cast<std::size_t>(d)]
                               [static_cast<std::size_t>(c)] *
                       gref[static_cast<std::size_t>(v)]
                           [static_cast<std::size_t>(d)];
              gphys[static_cast<std::size_t>(v)]
                   [static_cast<std::size_t>(c)] = acc;
            }
          const double wdet = q.w * geo.detJ;
          const double fval =
              f ? f(geo.x[0], geo.x[1], geo.x[2]) : 0.0;
          for (int a = 0; a < 8; ++a) {
            for (int b = 0; b < 8; ++b) {
              double grad = 0;
              for (int c = 0; c < 3; ++c)
                grad += gphys[static_cast<std::size_t>(a)]
                             [static_cast<std::size_t>(c)] *
                        gphys[static_cast<std::size_t>(b)]
                             [static_cast<std::size_t>(c)];
              ke[a][b] += wdet * (grad - shift *
                                             phi[static_cast<std::size_t>(a)] *
                                             phi[static_cast<std::size_t>(b)]);
            }
            fe[a] += wdet * fval * phi[static_cast<std::size_t>(a)];
          }
        }
        // Scatter with Dirichlet elimination (and lift for nonzero g).
        for (int a = 0; a < 8; ++a) {
          const int da = sys.dof_of_vertex[static_cast<std::size_t>(
              verts[static_cast<std::size_t>(a)])];
          if (da < 0) continue;
          sys.b[static_cast<std::size_t>(da)] += fe[a];
          for (int b = 0; b < 8; ++b) {
            const int vb = verts[static_cast<std::size_t>(b)];
            const int db = sys.dof_of_vertex[static_cast<std::size_t>(vb)];
            if (db >= 0) {
              triplets.emplace_back(da, db, ke[a][b]);
            } else if (g != nullptr) {
              const auto c = mesh.vertex_coord(vb);
              sys.b[static_cast<std::size_t>(da)] -=
                  ke[a][b] * (*g)(c[0], c[1], c[2]);
            }
          }
        }
      }
  sys.a = sparse::CsrMatrix::from_triplets(sys.num_dofs, triplets);
  return sys;
}

double nodal_max_error(const HexMesh& mesh, const NodalSystem& sys,
                       const std::vector<double>& u_h, const ScalarField& u) {
  double err = 0;
  for (int d = 0; d < sys.num_dofs; ++d) {
    const auto c = mesh.vertex_coord(
        sys.vertex_of_dof[static_cast<std::size_t>(d)]);
    err = std::max(err, std::abs(u_h[static_cast<std::size_t>(d)] -
                                 u(c[0], c[1], c[2])));
  }
  return err;
}

}  // namespace irrlu::fem
