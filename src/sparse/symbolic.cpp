#include "sparse/symbolic.hpp"

#include <algorithm>
#include <numeric>

#include "irrblas/irr_kernels.hpp"
#include "lapack/flops.hpp"

namespace irrlu::sparse {

const char* to_string(MemoryMode m) {
  switch (m) {
    case MemoryMode::kAllUpfront: return "all-upfront";
    case MemoryMode::kStackedLevels: return "stacked-levels";
  }
  return "?";
}

namespace {

/// Sorted-union of two index vectors.
std::vector<int> merge_sorted(const std::vector<int>& a,
                              const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

/// Positions of each element of `sub` within the front local index space:
/// front local indices are [0, s) for the separator range and s + k for
/// upd[k].
std::vector<int> local_positions(const Front& f, const std::vector<int>& sub) {
  std::vector<int> pos(sub.size());
  for (std::size_t i = 0; i < sub.size(); ++i) {
    const int g = sub[i];
    if (g >= f.sep_begin && g < f.sep_end) {
      pos[i] = g - f.sep_begin;
    } else {
      const auto it = std::lower_bound(f.upd.begin(), f.upd.end(), g);
      IRRLU_CHECK(it != f.upd.end() && *it == g);
      pos[i] = f.s() + static_cast<int>(it - f.upd.begin());
    }
  }
  return pos;
}

/// Shared finalization: parent maps, levels, and cost statistics. Assumes
/// fronts are in postorder with `children`/`parent` links set.
void finalize(SymbolicAnalysis& sym) {
  // Parent scatter maps (parents come after children in postorder).
  for (auto& f : sym.fronts)
    for (int c : f.children)
      sym.fronts[static_cast<std::size_t>(c)].parent_map =
          local_positions(f, sym.fronts[static_cast<std::size_t>(c)].upd);

  // Levels (depth from the roots) by a reverse sweep.
  int max_level = 0;
  for (std::size_t fi = sym.fronts.size(); fi-- > 0;) {
    Front& f = sym.fronts[fi];
    f.level = f.parent < 0
                  ? 0
                  : sym.fronts[static_cast<std::size_t>(f.parent)].level + 1;
    max_level = std::max(max_level, f.level);
  }
  sym.levels.assign(static_cast<std::size_t>(max_level) + 1, {});
  for (std::size_t fi = 0; fi < sym.fronts.size(); ++fi)
    sym.levels[static_cast<std::size_t>(sym.fronts[fi].level)].push_back(
        static_cast<int>(fi));

  for (const Front& f : sym.fronts) {
    const double s = f.s(), u = f.u();
    sym.factor_flops += irrlu::la::getrf_flops(f.s(), f.s()) +
                        2.0 * s * s * u + 2.0 * u * u * s;
    sym.factor_nnz += static_cast<std::int64_t>(f.s()) * f.dim() +
                      static_cast<std::int64_t>(f.u()) * f.s();
    sym.front_elems +=
        static_cast<std::int64_t>(f.dim()) * static_cast<std::int64_t>(f.dim());
    sym.max_front_dim = std::max(sym.max_front_dim, f.dim());
  }
}

}  // namespace

std::vector<std::size_t> SymbolicAnalysis::predicted_level_peak_bytes(
    MemoryMode mode) const {
  return predicted_level_peak_bytes(mode, {});
}

std::vector<std::size_t> SymbolicAnalysis::predicted_level_peak_bytes(
    MemoryMode mode, const std::vector<Precision>& level_prec) const {
  // Element width of one level's fronts (and its slice of the factor
  // store). Empty policy = uniform FP64, which reproduces the original
  // all-double inventory exactly (size_t arithmetic throughout).
  auto ebytes = [&](int lvl) {
    return level_prec.empty() ||
                   level_prec[static_cast<std::size_t>(lvl)] ==
                       Precision::kF64
               ? sizeof(double)
               : sizeof(float);
  };
  // Mirrors MultifrontalFactor's constructor allocation inventory for the
  // batched engine's default single-stream configuration (multi-stream
  // runs add one workspace pair per extra stream). Every quantity below is
  // available from the tree alone, so the prediction can steer a traversal
  // plan before any numeric allocation.
  //
  // FrontGroup descriptor footprint per member front: four double* block
  // pointers (F, F12, F21, F22), the per-front pivot pointer, five ints
  // (ld, s, u, info, boost count), and the two robustness scalars
  // (anorm, gmax).
  constexpr std::size_t kFrontDescriptorBytes =
      4 * sizeof(double*) + sizeof(int*) + 5 * sizeof(int) +
      2 * sizeof(double);

  // Tree-wide storage, live for the entire factorization: the compact
  // factor store + pivots, flattened update lists, assembly triples +
  // values (one entry per pattern nonzero), extend-add scatter maps, and
  // the per-stream irrLU workspaces.
  std::size_t fstore_bytes = 0, pivots = 0, upd_total = 0, scat_total = 0;
  for (const Front& f : fronts) {
    const auto s = static_cast<std::size_t>(f.s());
    const auto u = static_cast<std::size_t>(f.u());
    fstore_bytes += (s * s + 2 * s * u) * ebytes(f.level);
    pivots += s;
    upd_total += u;
    if (f.parent >= 0) scat_total += u;
  }
  int max_batch = 1;
  for (const auto& lv : levels)
    max_batch = std::max(max_batch, static_cast<int>(lv.size()));
  const int nb = std::max(1, batch::IrrLuOptions{}.nb);
  const std::size_t base =
      fstore_bytes + pivots * sizeof(int) +
      upd_total * sizeof(int) +
      3 * static_cast<std::size_t>(pattern_nnz) * sizeof(int) +
      static_cast<std::size_t>(pattern_nnz) * sizeof(double) +
      scat_total * sizeof(int) +
      static_cast<std::size_t>(max_batch) * sizeof(int) +
      batch::irr_laswp_workspace_size(max_batch, nb) * sizeof(int);

  // Per-level working-front bytes and descriptor bytes. Descriptors are
  // built as each level is reached and stay alive to the end, so they
  // accumulate from the deepest level upward.
  const std::size_t nl = levels.size();
  std::vector<std::size_t> front_bytes(nl, 0), desc_bytes(nl, 0);
  for (const Front& f : fronts) {
    const auto lvl = static_cast<std::size_t>(f.level);
    front_bytes[lvl] += static_cast<std::size_t>(f.dim()) *
                        static_cast<std::size_t>(f.dim()) * ebytes(f.level);
    desc_bytes[lvl] += kFrontDescriptorBytes;
  }
  const std::size_t total_front =
      std::accumulate(front_bytes.begin(), front_bytes.end(),
                      std::size_t{0});

  std::vector<std::size_t> out(nl, 0);
  std::size_t desc_cum = 0;
  for (std::size_t lvl = nl; lvl-- > 0;) {
    desc_cum += desc_bytes[lvl];
    if (mode == MemoryMode::kAllUpfront) {
      out[lvl] = base + total_front + desc_cum;
    } else {
      // Stacked discipline: while level lvl is factored, its fronts and
      // (until extend-add completes and the level is released) the child
      // level's fronts are both live.
      out[lvl] = base + front_bytes[lvl] +
                 (lvl + 1 < nl ? front_bytes[lvl + 1] : 0) + desc_cum;
    }
  }
  return out;
}

std::size_t SymbolicAnalysis::predicted_peak_bytes(MemoryMode mode) const {
  return predicted_peak_bytes(mode, {});
}

std::size_t SymbolicAnalysis::predicted_peak_bytes(
    MemoryMode mode, const std::vector<Precision>& level_prec) const {
  const std::vector<std::size_t> per_level =
      predicted_level_peak_bytes(mode, level_prec);
  std::size_t peak = 0;
  for (std::size_t b : per_level) peak = std::max(peak, b);
  return peak;
}

SymbolicAnalysis SymbolicAnalysis::build(const CsrMatrix& a_perm,
                                         const ordering::Ordering& ord) {
  SymbolicAnalysis sym;
  const auto& tree = ord.tree;
  sym.fronts.resize(tree.size());
  sym.root = ord.root;
  sym.pattern_nnz = a_perm.nnz();

  // Symmetrized adjacency of the permuted pattern (fronts must cover both
  // (i, j) and (j, i)).
  const ordering::Graph g = ordering::Graph::from_pattern(
      a_perm.rows(), a_perm.ptr().data(), a_perm.ind().data());

  // Postorder guarantee: ordering::nested_dissection pushes children before
  // parents, so a forward sweep visits children first.
  for (std::size_t fi = 0; fi < tree.size(); ++fi) {
    Front& f = sym.fronts[fi];
    f.sep_begin = tree[fi].begin;
    f.sep_end = tree[fi].end;
    if (tree[fi].left >= 0) f.children.push_back(tree[fi].left);
    if (tree[fi].right >= 0) f.children.push_back(tree[fi].right);
    f.parent = tree[fi].parent;

    // Update set: neighbors of the separator beyond it, plus the children's
    // update sets minus what this front eliminates.
    std::vector<int> upd;
    for (int i = f.sep_begin; i < f.sep_end; ++i)
      for (int k = g.ptr()[static_cast<std::size_t>(i)];
           k < g.ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
        const int j = g.adj()[static_cast<std::size_t>(k)];
        if (j >= f.sep_end) upd.push_back(j);
      }
    std::sort(upd.begin(), upd.end());
    upd.erase(std::unique(upd.begin(), upd.end()), upd.end());
    for (int child : f.children) {
      const auto& cu = sym.fronts[static_cast<std::size_t>(child)].upd;
      std::vector<int> keep;
      keep.reserve(cu.size());
      for (int j : cu)
        if (j >= f.sep_end) keep.push_back(j);
      upd = merge_sorted(upd, keep);
    }
    f.upd = std::move(upd);
  }
  finalize(sym);
  return sym;
}

std::vector<int> elimination_tree(const CsrMatrix& a_perm) {
  const int n = a_perm.rows();
  // Liu's algorithm with path compression (ancestor array) over the
  // symmetrized pattern: process row i, walking from each k (< i, with
  // A(i,k) or A(k,i) nonzero) toward the root, attaching to i.
  const ordering::Graph g = ordering::Graph::from_pattern(
      n, a_perm.ptr().data(), a_perm.ind().data());
  std::vector<int> parent(static_cast<std::size_t>(n), -1);
  std::vector<int> ancestor(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    for (int p = g.ptr()[static_cast<std::size_t>(i)];
         p < g.ptr()[static_cast<std::size_t>(i) + 1]; ++p) {
      int k = g.adj()[static_cast<std::size_t>(p)];
      if (k >= i) continue;
      // Walk up, compressing to i.
      while (k != -1 && k != i) {
        const int next = ancestor[static_cast<std::size_t>(k)];
        ancestor[static_cast<std::size_t>(k)] = i;
        if (next == -1) {
          parent[static_cast<std::size_t>(k)] = i;
          break;
        }
        k = next;
      }
    }
  }
  return parent;
}

SymbolicAnalysis SymbolicAnalysis::build_from_etree(const CsrMatrix& a_perm) {
  SymbolicAnalysis sym;
  const int n = a_perm.rows();
  if (n == 0) return sym;
  sym.pattern_nnz = a_perm.nnz();
  const std::vector<int> parent = elimination_tree(a_perm);

  // Column structures of L via row-subtree walks: for every entry (i, k)
  // with k < i (symmetrized), add i to struct(j) for every j on the etree
  // path k -> ... below i. O(|L|) with marking.
  const ordering::Graph g = ordering::Graph::from_pattern(
      n, a_perm.ptr().data(), a_perm.ind().data());
  std::vector<std::vector<int>> cstruct(static_cast<std::size_t>(n));
  std::vector<int> mark(static_cast<std::size_t>(n), -1);
  for (int i = 0; i < n; ++i) {
    mark[static_cast<std::size_t>(i)] = i;
    for (int p = g.ptr()[static_cast<std::size_t>(i)];
         p < g.ptr()[static_cast<std::size_t>(i) + 1]; ++p) {
      int k = g.adj()[static_cast<std::size_t>(p)];
      if (k >= i) continue;
      while (k != -1 && mark[static_cast<std::size_t>(k)] != i) {
        mark[static_cast<std::size_t>(k)] = i;
        cstruct[static_cast<std::size_t>(k)].push_back(i);
        k = parent[static_cast<std::size_t>(k)];
      }
    }
  }
  for (auto& s : cstruct) std::sort(s.begin(), s.end());

  // Fundamental supernodes: columns j and j+1 merge when parent(j) == j+1
  // and struct(j) == {j+1} ∪ struct(j+1).
  std::vector<int> snode_of(static_cast<std::size_t>(n));
  std::vector<int> begins = {0};
  for (int j = 1; j < n; ++j) {
    const auto& prev = cstruct[static_cast<std::size_t>(j - 1)];
    const bool chain =
        parent[static_cast<std::size_t>(j - 1)] == j &&
        static_cast<int>(prev.size()) ==
            static_cast<int>(cstruct[static_cast<std::size_t>(j)].size()) + 1;
    if (!chain) begins.push_back(j);
  }
  begins.push_back(n);
  const int ns = static_cast<int>(begins.size()) - 1;
  for (int s = 0; s < ns; ++s)
    for (int j = begins[static_cast<std::size_t>(s)];
         j < begins[static_cast<std::size_t>(s) + 1]; ++j)
      snode_of[static_cast<std::size_t>(j)] = s;

  sym.fronts.resize(static_cast<std::size_t>(ns));
  for (int s = 0; s < ns; ++s) {
    Front& f = sym.fronts[static_cast<std::size_t>(s)];
    f.sep_begin = begins[static_cast<std::size_t>(s)];
    f.sep_end = begins[static_cast<std::size_t>(s) + 1];
    // Update set: the structure of the supernode's last column.
    f.upd = cstruct[static_cast<std::size_t>(f.sep_end - 1)];
    const int last_parent = parent[static_cast<std::size_t>(f.sep_end - 1)];
    f.parent = last_parent < 0 ? -1 : snode_of[static_cast<std::size_t>(
                                          last_parent)];
    if (f.parent >= 0)
      sym.fronts[static_cast<std::size_t>(f.parent)].children.push_back(s);
  }
  // Supernodes are numbered by their first column, so children (all of
  // whose columns precede the parent's) come first: postorder holds.
  sym.root = ns - 1;
  finalize(sym);
  return sym;
}

}  // namespace irrlu::sparse
