// Compressed-sparse-row matrix and the permutation/scaling transforms the
// direct solver pipeline needs (§III-A: P (Dr A Dc Q) P^T = L U).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace irrlu::sparse {

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(int n, std::vector<int> ptr, std::vector<int> ind,
            std::vector<double> val)
      : n_(n), ptr_(std::move(ptr)), ind_(std::move(ind)),
        val_(std::move(val)) {
    IRRLU_CHECK(static_cast<int>(ptr_.size()) == n_ + 1);
    IRRLU_CHECK(ind_.size() == val_.size());
  }

  /// Builds from unordered (row, col, value) triplets; duplicates are
  /// summed.
  static CsrMatrix from_triplets(
      int n, const std::vector<std::tuple<int, int, double>>& triplets);

  int rows() const { return n_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(ind_.size()); }
  const std::vector<int>& ptr() const { return ptr_; }
  const std::vector<int>& ind() const { return ind_; }
  const std::vector<double>& val() const { return val_; }
  std::vector<double>& val() { return val_; }

  /// y = A x.
  void multiply(const double* x, double* y) const;

  /// y = A^T x.
  void multiply_transpose(const double* x, double* y) const;

  /// Normwise relative residual
  /// ||b - A x||_inf / (||A||_inf ||x||_inf + ||b||_inf).
  double residual(const double* x, const double* b) const;

  /// Componentwise (Oettli–Prager) backward error
  /// max_i |b - A x|_i / (|A| |x| + |b|)_i, rows with a zero denominator
  /// contributing |r_i| directly. For finite x this is <= 1, so a
  /// non-finite return value certifies that x itself contains NaN/Inf.
  /// The quantity adaptive iterative refinement drives to ~machine eps.
  double componentwise_residual(const double* x, const double* b) const;

  double norm_inf() const;

  /// ||A||_1 = max_j sum_i |a_ij| (the norm the Hager condition estimate
  /// pairs with).
  double norm_1() const;

  /// Returns Dr * A * Dc (diagonal scalings).
  CsrMatrix scaled(const std::vector<double>& dr,
                   const std::vector<double>& dc) const;

  /// Returns A(:, q): column j of the result is column q[j] of A.
  CsrMatrix permute_columns(const std::vector<int>& q) const;

  /// Returns P A P^T where new index i corresponds to old index perm[i]
  /// (i.e. result(i, j) = A(perm[i], perm[j])).
  CsrMatrix permute_symmetric(const std::vector<int>& perm) const;

  /// Entry lookup (binary search within the row); 0 if not present.
  double at(int i, int j) const;

  /// Values-independent, order-stable 64-bit hash of the sparsity pattern:
  /// FNV-1a over (n, ptr, ind). Two matrices with the same structure hash
  /// identically whatever their values (the refactor cache key of the
  /// solver service); any structural change — dimension, row lengths,
  /// column indices — changes the hash with overwhelming probability.
  /// "Order-stable" because CSR structure is canonical here: from_triplets
  /// sorts within rows, so insertion order never leaks into the hash.
  std::uint64_t pattern_hash() const;

  /// Exact structural equality (same n, ptr, ind) — the collision-proof
  /// check a pattern-keyed cache pairs with pattern_hash(). Values are
  /// ignored.
  bool same_pattern(const CsrMatrix& other) const;

 private:
  int n_ = 0;
  std::vector<int> ptr_, ind_;
  std::vector<double> val_;
};

/// 5-point (2D) / 7-point (3D) Laplacian with an optional diagonal shift
/// (negative shift => indefinite Helmholtz-like operator). Handy model
/// problems for the solver tests and benchmarks.
CsrMatrix laplacian2d(int nx, int ny, double shift = 0.0);
CsrMatrix laplacian3d(int nx, int ny, int nz, double shift = 0.0);

}  // namespace irrlu::sparse
