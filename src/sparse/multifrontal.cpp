#include "sparse/multifrontal.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <string>

#include "irrblas/interleaved.hpp"
#include "lapack/blas.hpp"
#include "lapack/flops.hpp"
#include "lapack/lapack.hpp"
#include "trace/analysis.hpp"
#include "trace/trace.hpp"

namespace irrlu::sparse {

const char* to_string(Engine e) {
  switch (e) {
    case Engine::kBatched: return "irr-batched";
    case Engine::kLooped: return "naive-loop";
    case Engine::kLegacySmallBatch: return "legacy-small-batch";
    case Engine::kRightLooking: return "right-looking";
  }
  return "?";
}

const char* to_string(Precision p) {
  switch (p) {
    case Precision::kF64: return "f64";
    case Precision::kF32: return "f32";
  }
  return "?";
}

const char* to_string(PrecisionPolicy p) {
  switch (p) {
    case PrecisionPolicy::kF64: return "f64";
    case PrecisionPolicy::kF32: return "f32";
    case PrecisionPolicy::kAdaptive: return "adaptive";
  }
  return "?";
}

namespace {

/// Trace label bucketing a front group by its largest front dimension —
/// the paper's front-size classes (Fig. 13/14). Groups are formed per
/// level, so the largest member characterizes the batch.
const char* front_class(const std::vector<int>& ids,
                        const SymbolicAnalysis& sym) {
  int dmax = 0;
  for (int id : ids)
    dmax = std::max(dmax, sym.fronts[static_cast<std::size_t>(id)].dim());
  if (dmax < 32) return "fronts<32";
  if (dmax < 128) return "fronts<128";
  if (dmax < 512) return "fronts<512";
  return "fronts>=512";
}

/// Working storage for the square fronts, in either memory discipline.
/// base<T>(f) is valid while f's level is live; each level's buffer is
/// allocated in that level's policy-selected precision (double or float —
/// FP32 levels hold half the bytes, the mixed-precision point).
class FrontStorage {
 public:
  FrontStorage(gpusim::Device& dev, const SymbolicAnalysis& sym,
               MemoryMode mode, const std::vector<Precision>& level_prec)
      : dev_(dev), sym_(sym), mode_(mode), level_prec_(level_prec) {
    const auto nf = sym.fronts.size();
    offset_.resize(nf);
    level_elems_.assign(sym.levels.size(), 0);
    std::vector<std::size_t> level_fill(sym.levels.size(), 0);
    for (std::size_t fi = 0; fi < nf; ++fi) {
      const auto lvl = static_cast<std::size_t>(sym.fronts[fi].level);
      const auto elems = static_cast<std::size_t>(sym.fronts[fi].dim()) *
                         static_cast<std::size_t>(sym.fronts[fi].dim());
      offset_[fi] = level_fill[lvl];
      level_fill[lvl] += elems;
      level_elems_[lvl] += elems;
    }
    buffers_.resize(sym.levels.size());
    buffers_f_.resize(sym.levels.size());
    if (mode_ == MemoryMode::kAllUpfront)
      for (std::size_t lvl = 0; lvl < buffers_.size(); ++lvl) {
        // Upfront allocations carry the same level=N tag the stacked
        // discipline gets from the engine's per-level scopes.
        trace::TraceScope level_scope(
            dev.tracer(), dev.tracer() ? "level=" + std::to_string(lvl)
                                       : std::string());
        ensure_level(static_cast<int>(lvl));
      }
  }

  Precision prec(int lvl) const {
    return level_prec_[static_cast<std::size_t>(lvl)];
  }

  void ensure_level(int lvl) {
    const auto l = static_cast<std::size_t>(lvl);
    if (level_elems_[l] == 0) return;
    if (level_prec_[l] == Precision::kF32) {
      if (buffers_f_[l].data() == nullptr) {
        IRRLU_TRACE_SCOPE(dev_.tracer(), "front-store");
        buffers_f_[l] = dev_.alloc<float>(level_elems_[l]);
      }
    } else if (buffers_[l].data() == nullptr) {
      IRRLU_TRACE_SCOPE(dev_.tracer(), "front-store");
      buffers_[l] = dev_.alloc<double>(level_elems_[l]);
    }
  }

  void release_level(int lvl) {
    if (mode_ == MemoryMode::kStackedLevels) {
      buffers_[static_cast<std::size_t>(lvl)].release();
      buffers_f_[static_cast<std::size_t>(lvl)].release();
    }
  }

  template <typename T>
  T* base(int f) const {
    const auto lvl =
        static_cast<std::size_t>(sym_.fronts[static_cast<std::size_t>(f)]
                                     .level);
    if constexpr (std::is_same_v<T, float>) {
      IRRLU_DEBUG_ASSERT(buffers_f_[lvl].data() != nullptr ||
                         offset_[static_cast<std::size_t>(f)] == 0);
      return buffers_f_[lvl].data() + offset_[static_cast<std::size_t>(f)];
    } else {
      IRRLU_DEBUG_ASSERT(buffers_[lvl].data() != nullptr ||
                         offset_[static_cast<std::size_t>(f)] == 0);
      return buffers_[lvl].data() + offset_[static_cast<std::size_t>(f)];
    }
  }

 private:
  gpusim::Device& dev_;
  const SymbolicAnalysis& sym_;
  MemoryMode mode_;
  std::vector<Precision> level_prec_;     ///< per-level precision
  std::vector<std::size_t> offset_;       ///< within the level buffer
  std::vector<std::size_t> level_elems_;  ///< elements per level
  std::vector<gpusim::DeviceBuffer<double>> buffers_;
  std::vector<gpusim::DeviceBuffer<float>> buffers_f_;
};

/// Device-resident descriptor arrays for a group of fronts (the per-level
/// setup STRUMPACK performs once per batch; not per computational step).
struct FrontGroup {
  int count = 0;
  int smax = 0, umax = 0;
  Precision prec = Precision::kF64;
  std::vector<int> ids;
  gpusim::DeviceBuffer<double*> f, f12, f21, f22;
  gpusim::DeviceBuffer<float*> ff, ff12, ff21, ff22;
  gpusim::DeviceBuffer<int> ld, svec, uvec;
  gpusim::DeviceBuffer<int*> ipiv;
  gpusim::DeviceBuffer<int> info;
  /// Robustness diagnostics (filled only when pivot_tau > 0): pre-factor
  /// max-magnitude front norm (the boost reference), boosted-pivot count,
  /// and post-factor max magnitude (for the growth estimate). Host-zeroed
  /// here because fronts skipped by a kernel's DCWI early return must read
  /// as "no events", not as uninitialized device memory. The extrema stay
  /// double regardless of the group's factor precision.
  gpusim::DeviceBuffer<double> anorm, gmax;
  gpusim::DeviceBuffer<int> boost;

  FrontGroup(gpusim::Device& dev, const SymbolicAnalysis& sym,
             const std::vector<int>& group_ids, const FrontStorage& storage,
             const std::vector<std::size_t>& ipiv_offset, int* ipiv_storage,
             Precision group_prec)
      : prec(group_prec), ids(group_ids) {
    count = static_cast<int>(ids.size());
    const auto n = static_cast<std::size_t>(count);
    // Descriptor allocations tagged by the batch's front-size class (under
    // the engine's level=N scope). Only the active precision's pointer
    // arrays are allocated, so the pure-FP64 allocation sequence is
    // unchanged from the single-precision-free code.
    IRRLU_TRACE_SCOPE(dev.tracer(),
                      dev.tracer() ? front_class(ids, sym) : "");
    if (prec == Precision::kF32) {
      ff = dev.alloc<float*>(n);
      ff12 = dev.alloc<float*>(n);
      ff21 = dev.alloc<float*>(n);
      ff22 = dev.alloc<float*>(n);
    } else {
      f = dev.alloc<double*>(n);
      f12 = dev.alloc<double*>(n);
      f21 = dev.alloc<double*>(n);
      f22 = dev.alloc<double*>(n);
    }
    ld = dev.alloc<int>(n);
    svec = dev.alloc<int>(n);
    uvec = dev.alloc<int>(n);
    ipiv = dev.alloc<int*>(n);
    info = dev.alloc<int>(n);
    anorm = dev.alloc<double>(n);
    gmax = dev.alloc<double>(n);
    boost = dev.alloc<int>(n);
    for (std::size_t k = 0; k < n; ++k) {
      anorm[k] = 0.0;
      gmax[k] = 0.0;
      boost[k] = 0;
    }
    for (std::size_t k = 0; k < n; ++k) {
      const Front& fr = sym.fronts[static_cast<std::size_t>(ids[k])];
      const int d = fr.dim();
      const int s = fr.s();
      if (prec == Precision::kF32) {
        float* base = storage.base<float>(ids[k]);
        ff[k] = base;
        ff12[k] = base + static_cast<std::ptrdiff_t>(s) * d;
        ff21[k] = base + s;
        ff22[k] = base + static_cast<std::ptrdiff_t>(s) * d + s;
      } else {
        double* base = storage.base<double>(ids[k]);
        f[k] = base;
        f12[k] = base + static_cast<std::ptrdiff_t>(s) * d;
        f21[k] = base + s;
        f22[k] = base + static_cast<std::ptrdiff_t>(s) * d + s;
      }
      ld[k] = d > 0 ? d : 1;
      svec[k] = s;
      uvec[k] = fr.u();
      ipiv[k] = ipiv_storage + ipiv_offset[static_cast<std::size_t>(ids[k])];
      info[k] = 0;
      smax = std::max(smax, s);
      umax = std::max(umax, fr.u());
    }
  }
};

/// Batched promotion of FP32 factor blocks into contiguous FP64 scratch —
/// the charged conversion kernel the mixed-precision solve pays before
/// running the double-precision triangular passes.
struct PromoteMeta {
  const float* src = nullptr;
  double* dst = nullptr;
  std::size_t n = 0;
};

void promote_fp32(gpusim::Device& dev, gpusim::Stream& stream,
                  std::vector<PromoteMeta> metas) {
  if (metas.empty()) return;
  auto shared = std::make_shared<std::vector<PromoteMeta>>(std::move(metas));
  const gpusim::LaunchConfig cfg{"mf_promote",
                                 static_cast<int>(shared->size()), 0};
  dev.launch(stream, cfg, [shared](gpusim::BlockCtx& ctx) {
    const PromoteMeta& m = (*shared)[static_cast<std::size_t>(ctx.block())];
    for (std::size_t i = 0; i < m.n; ++i)
      m.dst[i] = static_cast<double>(m.src[i]);
    ctx.record(0.0, static_cast<double>(m.n) *
                        (sizeof(float) + sizeof(double)));
  });
}

}  // namespace

std::size_t MultifrontalFactor::factor_bytes() const {
  return factor_store_.size() * sizeof(double) +
         factor_store_f_.size() * sizeof(float) +
         ipiv_storage_.size() * sizeof(int);
}

MultifrontalFactor::MultifrontalFactor(gpusim::Device& dev,
                                       const CsrMatrix& a_perm,
                                       const SymbolicAnalysis& sym,
                                       const FactorOptions& opts)
    : dev_(dev), sym_(sym) {
  const auto nf = sym.fronts.size();
  // The stacked discipline relies on the strictly level-by-level gather of
  // the batched engine; baselines fall back to the upfront discipline.
  const MemoryMode mode = opts.engine == Engine::kBatched
                              ? opts.memory
                              : MemoryMode::kAllUpfront;

  // Every allocation and launch of the constructor is attributed under
  // "factor" (trace scopes are free when no tracer is attached), and the
  // measured peak is the windowed high-water mark over the whole
  // constructor — directly comparable to the symbolic prediction.
  IRRLU_TRACE_SCOPE(dev.tracer(), "factor");
  const std::size_t in_use0 = dev.bytes_in_use();
  dev.reset_peak_window();

  // Per-level precision under the requested policy. Every front on a
  // level shares one precision, so each (parent, child) extend-add pair
  // has a single conversion direction.
  level_prec_.resize(sym.levels.size());
  for (std::size_t l = 0; l < sym.levels.size(); ++l)
    level_prec_[l] = level_precision(opts.precision, static_cast<int>(l),
                                     opts.adaptive_root_levels);

  // Compact factor store: L11\U11 (s x s) + U12 (s x u) + L21 (u x s).
  // FP64 and FP32 fronts index disjoint stores; fstore_offset_[f] points
  // into whichever store matches the front's level precision.
  fstore_offset_.resize(nf);
  ipiv_offset_.resize(nf);
  std::size_t felems = 0, felems_f = 0, pivots = 0;
  for (std::size_t i = 0; i < nf; ++i) {
    ipiv_offset_[i] = pivots;
    const auto s = static_cast<std::size_t>(sym.fronts[i].s());
    const auto u = static_cast<std::size_t>(sym.fronts[i].u());
    const auto elems = s * s + 2 * s * u;
    if (level_prec_[static_cast<std::size_t>(sym.fronts[i].level)] ==
        Precision::kF32) {
      fstore_offset_[i] = felems_f;
      felems_f += elems;
    } else {
      fstore_offset_[i] = felems;
      felems += elems;
    }
    pivots += s;
  }
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "factor-store");
    factor_store_ = dev.alloc<double>(felems);
    if (felems_f > 0) factor_store_f_ = dev.alloc<float>(felems_f);
    ipiv_storage_ = dev.alloc<int>(pivots);
  }

  // Flattened update index lists (needed by the device-side solve).
  upd_offset_.resize(nf);
  std::size_t upd_total = 0;
  for (std::size_t i = 0; i < nf; ++i) {
    upd_offset_[i] = upd_total;
    upd_total += sym.fronts[i].upd.size();
  }
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "upd-index");
    upd_storage_ = dev.alloc<int>(upd_total);
  }
  for (std::size_t i = 0; i < nf; ++i)
    std::copy(sym.fronts[i].upd.begin(), sym.fronts[i].upd.end(),
              upd_storage_.data() + upd_offset_[i]);

  const double t0 = dev.host_time();
  const long l0 = dev.launch_count();
  const long s0 = dev.sync_count();
  const double w0 = dev.sync_wait_seconds();
  // Launch-record window of this factorization, for the critical-path
  // rollup below (the trace may already hold earlier work).
  const std::size_t trace_l0 =
      dev.tracer() != nullptr ? dev.tracer()->launches().size() : 0;
  auto& stream = dev.stream();

  FrontStorage storage(dev, sym, mode, level_prec_);

  // ---- one-time setup: owner maps and assembly lists -----------------
  const int n = a_perm.rows();
  std::vector<int> owner(static_cast<std::size_t>(n), -1);
  for (std::size_t fi = 0; fi < nf; ++fi)
    for (int g = sym.fronts[fi].sep_begin; g < sym.fronts[fi].sep_end; ++g)
      owner[static_cast<std::size_t>(g)] = static_cast<int>(fi);

  // Flattened (front -> entries) assembly triples, CSR-style: asm_start
  // segments d_rows/d_cols/d_aidx by owning front. Built in three counted
  // passes with no per-entry search and no per-front growing vectors:
  //  1. count each front's entries (recording the owner per nonzero);
  //  2. scatter the *global* (row, col, value-index) triples into the
  //     segmented arrays through per-front cursors;
  //  3. per front, convert the globals to front-local indices through a
  //     global->local map filled once per front (the `stamp` array makes
  //     membership checkable, replacing the old per-entry binary search
  //     through fr.upd).
  const std::size_t nnz = a_perm.ind().size();
  std::vector<int> ent_front(nnz);
  std::vector<int> asm_start(nf + 1, 0);
  for (int i = 0; i < n; ++i)
    for (int k = a_perm.ptr()[static_cast<std::size_t>(i)];
         k < a_perm.ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = a_perm.ind()[static_cast<std::size_t>(k)];
      const int fo = owner[static_cast<std::size_t>(std::min(i, j))];
      IRRLU_CHECK(fo >= 0);
      ent_front[static_cast<std::size_t>(k)] = fo;
      ++asm_start[static_cast<std::size_t>(fo) + 1];
    }
  for (std::size_t fi = 0; fi < nf; ++fi) asm_start[fi + 1] += asm_start[fi];
  gpusim::DeviceBuffer<int> d_rows, d_cols, d_aidx;
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "assembly");
    d_rows = dev.alloc<int>(static_cast<std::size_t>(asm_start[nf]));
    d_cols = dev.alloc<int>(static_cast<std::size_t>(asm_start[nf]));
    d_aidx = dev.alloc<int>(static_cast<std::size_t>(asm_start[nf]));
  }
  std::vector<int> cursor(asm_start.begin(), asm_start.end() - 1);
  for (int i = 0; i < n; ++i)
    for (int k = a_perm.ptr()[static_cast<std::size_t>(i)];
         k < a_perm.ptr()[static_cast<std::size_t>(i) + 1]; ++k) {
      const auto o = static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(ent_front[static_cast<std::size_t>(
              k)])]++);
      d_rows[o] = i;
      d_cols[o] = a_perm.ind()[static_cast<std::size_t>(k)];
      d_aidx[o] = k;
    }
  {
    std::vector<int> glob2loc(static_cast<std::size_t>(n), -1);
    std::vector<int> stamp(static_cast<std::size_t>(n), -1);
    for (std::size_t fi = 0; fi < nf; ++fi) {
      const Front& fr = sym.fronts[fi];
      const int s = fr.s();
      for (int g = fr.sep_begin; g < fr.sep_end; ++g) {
        glob2loc[static_cast<std::size_t>(g)] = g - fr.sep_begin;
        stamp[static_cast<std::size_t>(g)] = static_cast<int>(fi);
      }
      for (std::size_t t = 0; t < fr.upd.size(); ++t) {
        const auto g = static_cast<std::size_t>(fr.upd[t]);
        glob2loc[g] = s + static_cast<int>(t);
        stamp[g] = static_cast<int>(fi);
      }
      for (auto o = static_cast<std::size_t>(asm_start[fi]);
           o < static_cast<std::size_t>(asm_start[fi + 1]); ++o) {
        IRRLU_CHECK(stamp[static_cast<std::size_t>(d_rows[o])] ==
                        static_cast<int>(fi) &&
                    stamp[static_cast<std::size_t>(d_cols[o])] ==
                        static_cast<int>(fi));
        d_rows[o] = glob2loc[static_cast<std::size_t>(d_rows[o])];
        d_cols[o] = glob2loc[static_cast<std::size_t>(d_cols[o])];
      }
    }
  }
  gpusim::DeviceBuffer<double> d_aval;
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "assembly");
    d_aval = dev.alloc<double>(a_perm.val().size());
  }
  std::copy(a_perm.val().begin(), a_perm.val().end(), d_aval.data());

  // Scatter maps: this front's upd positions inside the parent.
  std::vector<int> scat_start(nf + 1, 0);
  for (std::size_t fi = 0; fi < nf; ++fi)
    scat_start[fi + 1] =
        scat_start[fi] +
        (sym.fronts[fi].parent >= 0 ? sym.fronts[fi].u() : 0);
  gpusim::DeviceBuffer<int> d_scat;
  {
    IRRLU_TRACE_SCOPE(dev.tracer(), "assembly");
    d_scat = dev.alloc<int>(static_cast<std::size_t>(scat_start[nf]));
  }
  for (std::size_t fi = 0; fi < nf; ++fi) {
    const Front& fr = sym.fronts[fi];
    if (fr.parent < 0) continue;
    IRRLU_CHECK(static_cast<int>(fr.parent_map.size()) == fr.u());
    for (std::size_t e = 0; e < fr.parent_map.size(); ++e)
      d_scat[static_cast<std::size_t>(scat_start[fi]) + e] =
          fr.parent_map[e];
  }
  const int* smap = d_scat.data();

  // ---- reusable per-group kernels --------------------------------------
  // Zero + assemble-from-A the given fronts (their storage must be live).
  // Templated on the level's front element type: FP32 levels assemble the
  // (double) matrix values into float fronts — the first charged
  // demotion of the mixed-precision pipeline. A call's fronts all share
  // one level (kBatched/kLegacy iterate per level; kLooped passes single
  // fronts), so the wrapper picks the type from the first id.
  auto assemble_t = [&]<typename T>(const std::vector<int>& ids) {
    if (ids.empty()) return;
    IRRLU_TRACE_SCOPE(dev.tracer(), "assemble");
    struct Meta {
      T* base;
      int dim, a0, a1;
    };
    auto metas = std::make_shared<std::vector<Meta>>();
    for (int id : ids)
      metas->push_back({storage.base<T>(id),
                        sym.fronts[static_cast<std::size_t>(id)].dim(),
                        asm_start[static_cast<std::size_t>(id)],
                        asm_start[static_cast<std::size_t>(id) + 1]});
    const int* arows = d_rows.data();
    const int* acols = d_cols.data();
    const int* aidx = d_aidx.data();
    const double* aval = d_aval.data();
    dev.launch(stream, {"mf_assemble", static_cast<int>(metas->size()), 0},
               [metas, arows, acols, aidx, aval](gpusim::BlockCtx& ctx) {
      const Meta& m = (*metas)[static_cast<std::size_t>(ctx.block())];
      const int ld = m.dim > 0 ? m.dim : 1;
      std::fill(m.base, m.base + static_cast<std::size_t>(m.dim) * m.dim,
                T{});
      for (int e = m.a0; e < m.a1; ++e)
        m.base[static_cast<std::ptrdiff_t>(acols[e]) * ld + arows[e]] +=
            static_cast<T>(aval[aidx[e]]);
      // Front traffic in the front's element width; the gather side reads
      // the double-precision value array regardless.
      ctx.record(0.0, static_cast<double>(m.dim) * m.dim * sizeof(T) +
                          3.0 * (m.a1 - m.a0) * sizeof(double));
    });
  };
  auto assemble = [&](const std::vector<int>& ids) {
    if (ids.empty()) return;
    const auto lvl = static_cast<std::size_t>(
        sym.fronts[static_cast<std::size_t>(ids[0])].level);
    if (level_prec_[lvl] == Precision::kF32)
      assemble_t.template operator()<float>(ids);
    else
      assemble_t.template operator()<double>(ids);
  };

  // Extend-add: absorb the children's Schur complements into the given
  // (parent) fronts. Child storage must still be live. Templated on the
  // (parent, child) element types: symbolic analysis pins every child of
  // a level-L front to level L+1, so one call has exactly one type pair —
  // mixed-precision boundaries convert inside the accumulate (the update
  // crosses the precision seam here, charged at the actual widths).
  auto gather_children_t = [&]<typename Tp, typename Tc>(
                               const std::vector<int>& ids) {
    struct Meta {
      const Tc* child;
      Tp* parent;
      int u, ldc, ldp, map_off;
    };
    auto metas = std::make_shared<std::vector<Meta>>();
    for (int id : ids) {
      const Front& p = sym.fronts[static_cast<std::size_t>(id)];
      for (int child : p.children) {
        const Front& c = sym.fronts[static_cast<std::size_t>(child)];
        if (c.u() == 0) continue;
        metas->push_back(
            {storage.base<Tc>(child) +
                 static_cast<std::ptrdiff_t>(c.s()) * c.dim() + c.s(),
             storage.base<Tp>(id), c.u(), c.dim(), p.dim() > 0 ? p.dim() : 1,
             scat_start[static_cast<std::size_t>(child)]});
      }
    }
    if (metas->empty()) return;
    IRRLU_TRACE_SCOPE(dev.tracer(), "extend-add");
    dev.launch(stream,
               {"mf_extend_add", static_cast<int>(metas->size()), 0},
               [metas, smap](gpusim::BlockCtx& ctx) {
      const Meta& m = (*metas)[static_cast<std::size_t>(ctx.block())];
      const int* map = smap + m.map_off;
      for (int c = 0; c < m.u; ++c)
        for (int r = 0; r < m.u; ++r)
          m.parent[static_cast<std::ptrdiff_t>(map[c]) * m.ldp + map[r]] +=
              static_cast<Tp>(
                  m.child[static_cast<std::ptrdiff_t>(c) * m.ldc + r]);
      // Scattered writes: penalized traffic on the parent side (4 parent
      // accesses per element at the parent width, 1 child read at the
      // child width).
      ctx.record(static_cast<double>(m.u) * m.u,
                 (4.0 * sizeof(Tp) + sizeof(Tc)) * m.u * m.u);
    });
  };
  auto gather_children = [&](const std::vector<int>& ids) {
    if (ids.empty()) return;
    const auto plvl = static_cast<std::size_t>(
        sym.fronts[static_cast<std::size_t>(ids[0])].level);
    const Precision pp = level_prec_[plvl];
    const Precision cp =
        plvl + 1 < level_prec_.size() ? level_prec_[plvl + 1] : pp;
    if (pp == Precision::kF32) {
      if (cp == Precision::kF32)
        gather_children_t.template operator()<float, float>(ids);
      else
        gather_children_t.template operator()<float, double>(ids);
    } else {
      if (cp == Precision::kF32)
        gather_children_t.template operator()<double, float>(ids);
      else
        gather_children_t.template operator()<double, double>(ids);
    }
  };

  // Copy the factored blocks of the given fronts into the compact store —
  // each front into the store matching its level's precision. kLooped
  // extracts all levels in one call, so the wrapper splits by precision
  // (pure-FP64 runs keep every front in the double list, in order).
  auto extract_factors_t = [&]<typename T>(const std::vector<int>& ids,
                                           T* store) {
    if (ids.empty()) return;
    struct Meta {
      const T* base;
      T* out;
      int s, u, ld;
    };
    auto metas = std::make_shared<std::vector<Meta>>();
    for (int id : ids) {
      const Front& fr = sym.fronts[static_cast<std::size_t>(id)];
      if (fr.s() == 0) continue;
      metas->push_back({storage.base<T>(id),
                        store +
                            fstore_offset_[static_cast<std::size_t>(id)],
                        fr.s(), fr.u(), fr.dim()});
    }
    if (metas->empty()) return;
    IRRLU_TRACE_SCOPE(dev.tracer(), "extract");
    dev.launch(stream,
               {"mf_extract", static_cast<int>(metas->size()), 0},
               [metas](gpusim::BlockCtx& ctx) {
      const Meta& m = (*metas)[static_cast<std::size_t>(ctx.block())];
      T* out = m.out;
      // L11\U11: s x s, ld s.
      for (int c = 0; c < m.s; ++c)
        for (int r = 0; r < m.s; ++r)
          *out++ = m.base[static_cast<std::ptrdiff_t>(c) * m.ld + r];
      // U12: s x u, ld s.
      for (int c = 0; c < m.u; ++c)
        for (int r = 0; r < m.s; ++r)
          *out++ =
              m.base[static_cast<std::ptrdiff_t>(m.s + c) * m.ld + r];
      // L21: u x s, ld u.
      for (int c = 0; c < m.s; ++c)
        for (int r = 0; r < m.u; ++r)
          *out++ =
              m.base[static_cast<std::ptrdiff_t>(c) * m.ld + m.s + r];
      const double elems =
          static_cast<double>(m.s) * (m.s + 2.0 * m.u);
      ctx.record(0.0, 2.0 * elems * sizeof(T));
    });
  };
  auto extract_factors = [&](const std::vector<int>& ids) {
    if (ids.empty()) return;
    std::vector<int> dids, fids;
    for (int id : ids) {
      const auto lvl = static_cast<std::size_t>(
          sym.fronts[static_cast<std::size_t>(id)].level);
      (level_prec_[lvl] == Precision::kF32 ? fids : dids).push_back(id);
    }
    extract_factors_t.template operator()<double>(dids,
                                                  factor_store_.data());
    extract_factors_t.template operator()<float>(fids,
                                                 factor_store_f_.data());
  };

  // ---- factorization workspaces (allocated once: fully async driver) --
  // One workspace pair per stream, so multi-stream level processing does
  // not race on them.
  const int num_streams =
      opts.engine == Engine::kBatched ? std::max(1, opts.num_streams) : 1;
  int max_batch = 1;
  for (const auto& lv : sym.levels)
    max_batch = std::max(max_batch, static_cast<int>(lv.size()));
  const int nb = std::max(1, opts.lu.nb);
  std::vector<gpusim::DeviceBuffer<int>> kmin_ws, laswp_ws;
  std::vector<batch::IrrLuOptions> lu_opts_of(
      static_cast<std::size_t>(num_streams), opts.lu);
  for (int s = 0; s < num_streams; ++s) {
    IRRLU_TRACE_SCOPE(dev.tracer(), "workspace");
    kmin_ws.push_back(dev.alloc<int>(static_cast<std::size_t>(max_batch)));
    laswp_ws.push_back(
        dev.alloc<int>(batch::irr_laswp_workspace_size(max_batch, nb)));
    lu_opts_of[static_cast<std::size_t>(s)].kmin_workspace =
        kmin_ws.back().data();
    lu_opts_of[static_cast<std::size_t>(s)].laswp_workspace =
        laswp_ws.back().data();
  }
  const batch::IrrLuOptions& lu_opts = lu_opts_of[0];

  // ---- interleaved (SoA) small-front routing (DESIGN.md §12) -----------
  // Single-stream batched engine only: the SoA slabs serialize a level's
  // buckets onto one stream anyway, and the bitwise-identity argument is
  // made against the single-stream strided schedule.
  const bool use_ilv = opts.interleaved.enabled &&
                       opts.engine == Engine::kBatched && num_streams == 1;
  // Cap clamped to 32: above it the strided path switches to blocked
  // panels / recursive TRSM whose operation order the interleaved kernels
  // do not mirror (see InterleavedOptions::max_class_dim).
  const int ilv_cap = std::min(opts.interleaved.max_class_dim, 32);
  IRRLU_CHECK(opts.dispatch_plan == nullptr ||
              opts.dispatch_cache != nullptr);
  batch::KernelCache local_dispatch_cache;  // when the caller passed none
  batch::KernelCache* const kcache = opts.dispatch_cache != nullptr
                                         ? opts.dispatch_cache
                                         : &local_dispatch_cache;
  const batch::Dispatch disp{kcache, opts.dispatch_plan};
  const batch::KernelCache::Stats dstats0 = kcache->stats();

  std::vector<std::unique_ptr<FrontGroup>> groups;  // keep alive

  // Max-magnitude entry of each front's full (dim x dim) block, written to
  // `out` — before factorization it is the per-front boost reference
  // ||F||_max, after it the numerator of the growth estimate. The
  // extremum itself stays double for every front precision (it feeds the
  // boost rule and the growth report).
  auto front_absmax = [&]<typename T>(const FrontGroup& g, T* const* fp,
                                      gpusim::Stream& st, double* out,
                                      const char* name) {
    const int* ldp = g.ld.data();
    const int* sp = g.svec.data();
    const int* up = g.uvec.data();
    dev.launch(st, {name, g.count, 0}, [=](gpusim::BlockCtx& ctx) {
      const int k = ctx.block();
      const int d = sp[k] + up[k];
      if (d <= 0) return;
      const T* F = fp[k];
      const int ld = ldp[k];
      double m = 0;
      for (int c = 0; c < d; ++c)
        for (int r = 0; r < d; ++r)
          m = std::max(m, std::abs(static_cast<double>(
                              F[static_cast<std::ptrdiff_t>(c) * ld + r])));
      out[k] = m;
      ctx.record(0.0, static_cast<double>(d) * d * sizeof(T));
    });
  };

  // Factors one group of fronts as a single irregular batch on the given
  // stream, in the group's precision: the FP32 instantiations run the
  // same pivoting/boost/blocking decisions on float lanes at double flop
  // rate (la::flop_weight) and half the traffic.
  auto factor_group_t = [&]<typename T>(const FrontGroup& g, T* const* gf,
                                        T* const* gf12, T* const* gf21,
                                        T* const* gf22,
                                        gpusim::Stream& stream,
                                        const batch::IrrLuOptions& lu_opts) {
    batch::IrrLuOptions lu = lu_opts;
    if constexpr (std::is_same_v<T, float>) {
      // FP32 panels run twice as wide (DESIGN.md §14): a 2*nb single-
      // precision panel has the byte footprint — shared-memory, cache-line
      // and laswp-traffic-wise — of the FP64 nb panel, and the doubled
      // width halves the blocked loop's launch count, which is what bounds
      // small-front batches. The preallocated laswp workspace is sized for
      // the FP64 nb; passing null lets irr_getrf draw a matching wider one
      // from the device's per-stream workspace cache.
      lu.nb = 2 * std::max(1, lu.nb);
      lu.laswp_workspace = nullptr;
    }
    if (opts.pivot_tau > 0) {
      front_absmax.template operator()<T>(g, gf, stream, g.anorm.data(),
                                          "mf_front_norm");
      lu.boost.tau = opts.pivot_tau;
      lu.boost.anorm_vec = g.anorm.data();
      lu.boost.boost_vec = g.boost.data();
    }
    batch::irr_getrf<T>(dev, stream, g.smax, g.smax, gf,
                        g.ld.data(), 0, 0, g.svec.data(), g.svec.data(),
                        g.ipiv.data(), g.info.data(), g.count, lu);
    if (g.umax > 0) {
      // Pivot application to F12: the FP64 path keeps the strided
      // reference kernel — its cost schedule is pinned by the
      // pre-mixed-precision baseline (fig10 bit/cost-identity). The FP32
      // fronts are new with DESIGN.md §14 and take the rehearsed staged
      // variant, which compresses the swap chain so each touched row
      // moves once through shared-memory chunks.
      if constexpr (std::is_same_v<T, float>)
        batch::irr_laswp_range_staged<T>(
            dev, stream, 0, g.smax, g.umax, gf12, g.ld.data(), 0,
            g.svec.data(), g.uvec.data(),
            const_cast<int const* const*>(g.ipiv.data()), g.count);
      else
        batch::irr_laswp_range<T>(
            dev, stream, 0, g.smax, g.umax, gf12, g.ld.data(), 0,
            g.svec.data(), g.uvec.data(),
            const_cast<int const* const*>(g.ipiv.data()), g.count);
      batch::irr_trsm<T>(
          dev, stream, la::Side::Left, la::Uplo::Lower, la::Trans::No,
          la::Diag::Unit, g.smax, g.umax, T(1),
          const_cast<T const* const*>(gf), g.ld.data(), 0, 0,
          gf12, g.ld.data(), 0, 0, g.svec.data(), g.uvec.data(),
          g.count);
      batch::irr_trsm<T>(
          dev, stream, la::Side::Right, la::Uplo::Upper, la::Trans::No,
          la::Diag::NonUnit, g.umax, g.smax, T(1),
          const_cast<T const* const*>(gf), g.ld.data(), 0, 0,
          gf21, g.ld.data(), 0, 0, g.uvec.data(), g.svec.data(),
          g.count);
      batch::irr_gemm<T>(
          dev, stream, la::Trans::No, la::Trans::No, g.umax, g.umax, g.smax,
          T(-1), const_cast<T const* const*>(gf21), g.ld.data(),
          0, 0, const_cast<T const* const*>(gf12), g.ld.data(),
          0, 0, T(1), gf22, g.ld.data(), 0, 0, g.uvec.data(),
          g.uvec.data(), g.svec.data(), g.count);
    }
    // Post-elimination extremum: gmax / anorm is the per-front growth.
    if (opts.pivot_tau > 0)
      front_absmax.template operator()<T>(g, gf, stream, g.gmax.data(),
                                          "mf_front_growth");
  };

  auto factor_group_on = [&](const FrontGroup& g, gpusim::Stream& stream,
                             const batch::IrrLuOptions& lu_opts) {
    if (g.count == 0 || g.smax == 0) return;
    IRRLU_TRACE_SCOPE(dev.tracer(),
                      dev.tracer() ? front_class(g.ids, sym) : "");
    if (g.prec == Precision::kF32)
      factor_group_t.template operator()<float>(
          g, g.ff.data(), g.ff12.data(), g.ff21.data(), g.ff22.data(),
          stream, lu_opts);
    else
      factor_group_t.template operator()<double>(
          g, g.f.data(), g.f12.data(), g.f21.data(), g.f22.data(), stream,
          lu_opts);
  };

  auto factor_group = [&](const FrontGroup& g) {
    factor_group_on(g, stream, lu_opts);
  };

  auto make_group = [&](const std::vector<int>& ids) -> FrontGroup& {
    const Precision gp =
        ids.empty()
            ? Precision::kF64
            : level_prec_[static_cast<std::size_t>(
                  sym.fronts[static_cast<std::size_t>(ids[0])].level)];
    groups.push_back(std::make_unique<FrontGroup>(
        dev, sym, ids, storage, ipiv_offset_, ipiv_storage_.data(), gp));
    return *groups.back();
  };

  // Factors one level's routed fronts through the interleaved pipeline:
  // each (s, u) class is packed into an SoA slab of the shared level
  // workspace, then the whole level runs as ONE launch per stage — getf2,
  // row swaps, the two TRSMs, the Schur GEMM — with every kernel
  // vectorizing across the batch index. Per-lane operation sequences
  // replicate the strided kernels exactly, so the unpacked factors are
  // bit-identical to the strided schedule's.
  auto factor_level_ilv_t = [&]<typename T>(
                                const std::map<std::pair<int, int>,
                                               std::vector<int>>& buckets) {
    struct Slab {
      int s = 0, u = 0, d = 0;
      int count = 0;  ///< lanes (fronts) in this class
      int base = 0;   ///< offset of the class within the level group
      batch::IlvViewT<T> view{nullptr, 1, 0};
    };
    std::vector<Slab> slabs;
    std::size_t total = 0;
    int smax_routed = 0;
    std::vector<int> routed_ids;
    for (const auto& [su, bids] : buckets) {
      Slab sl;
      sl.s = su.first;
      sl.u = su.second;
      sl.d = sl.s + sl.u;
      sl.count = static_cast<int>(bids.size());
      sl.base = static_cast<int>(routed_ids.size());
      total += static_cast<std::size_t>(sl.d) * sl.d *
               static_cast<std::size_t>(sl.count);
      smax_routed = std::max(smax_routed, sl.s);
      routed_ids.insert(routed_ids.end(), bids.begin(), bids.end());
      slabs.push_back(sl);
    }
    if (slabs.empty()) return;
    IRRLU_TRACE_SCOPE(dev.tracer(),
                      dev.tracer() ? front_class(routed_ids, sym) : "");
    // ONE descriptor group for the whole level's routed fronts, in bucket
    // order: every class addresses a contiguous subrange at its `base`, so
    // a level pays one set of descriptor allocations instead of one per
    // class (device allocations carry simulated cost; a deep tree has many
    // single-front classes).
    FrontGroup& g = make_group(routed_ids);
    // Distinct workspace slabs per element type, so a mixed-policy tree
    // never aliases float lanes over double ones.
    T* const ws = dev.workspace<T>(
        std::is_same_v<T, float> ? "mf.ilv.packf" : "mf.ilv.pack",
        std::max<std::size_t>(total, 1));
    T* const* const gsrc = [&] {
      if constexpr (std::is_same_v<T, float>)
        return g.ff.data();
      else
        return g.f.data();
    }();
    std::size_t off = 0;
    for (auto& sl : slabs) {
      sl.view = batch::IlvViewT<T>{ws + off, sl.d > 0 ? sl.d : 1, sl.count};
      off += static_cast<std::size_t>(sl.d) * sl.d *
             static_cast<std::size_t>(sl.count);
    }
    // Norm/growth harvest mirrors the strided group guard (count == 0 ||
    // smax == 0 -> no diagnostics), applied to the routed collection.
    const bool norms = opts.pivot_tau > 0 && smax_routed > 0;
    {
      std::vector<batch::IlvPackDescT<T>> descs;
      for (auto& sl : slabs) {
        batch::IlvPackDescT<T> d;
        d.dst = sl.view;
        d.m = sl.d;
        d.n = sl.d;
        d.lanes = sl.count;
        d.src = gsrc + sl.base;
        d.src_ld = g.ld.data() + sl.base;
        d.absmax = norms ? g.anorm.data() + sl.base : nullptr;
        descs.push_back(d);
      }
      batch::ilv_pack<T>(dev, stream, std::move(descs));
    }
    {
      std::vector<batch::IlvOpDesc> descs;
      for (auto& sl : slabs) {
        if (sl.s <= 0) continue;
        batch::IlvOpDesc d;
        d.kern = disp.resolve(
            batch::getf2_key(sl.s, sl.s, batch::kMicroPrecOf<T>));
        d.args.batch = sl.view.batch;
        d.args.c = sl.view.data;
        d.args.ldc = sl.view.ld;
        d.args.ipiv = g.ipiv.data() + sl.base;
        d.args.info = g.info.data() + sl.base;
        d.args.tau = norms ? opts.pivot_tau : 0.0;
        d.args.anorm = norms ? g.anorm.data() + sl.base : nullptr;
        d.args.boost = norms ? g.boost.data() + sl.base : nullptr;
        d.lanes = sl.count;
        d.flops_per_lane = la::getrf_flops(sl.s, sl.s) * la::flop_weight<T>;
        d.bytes_per_lane = 2.0 * sl.s * sl.s * sizeof(T) +
                           static_cast<double>(sl.s) * sizeof(int);
        descs.push_back(d);
      }
      batch::ilv_launch(dev, stream, "ilv_getf2", std::move(descs));
    }
    {
      std::vector<batch::IlvLaswpDescT<T>> descs;
      for (auto& sl : slabs) {
        if (sl.s <= 0 || sl.u <= 0) continue;
        batch::IlvLaswpDescT<T> d;
        d.view = sl.view.subview(0, sl.s);
        d.rows = sl.s;
        d.width = sl.u;
        d.lanes = sl.count;
        d.ipiv = g.ipiv.data() + sl.base;
        descs.push_back(d);
      }
      batch::ilv_laswp<T>(dev, stream, std::move(descs));
    }
    {
      std::vector<batch::IlvOpDesc> descs;
      for (auto& sl : slabs) {
        if (sl.s <= 0 || sl.u <= 0) continue;
        batch::IlvOpDesc d;
        d.kern = disp.resolve(batch::trsm_key(true, true, true, sl.s, sl.u,
                                              batch::kMicroPrecOf<T>));
        d.args.batch = sl.view.batch;
        d.args.alpha = 1.0;
        d.args.a = sl.view.data;
        d.args.lda = sl.view.ld;
        d.args.c = sl.view.sub(0, sl.s);
        d.args.ldc = sl.view.ld;
        d.lanes = sl.count;
        d.flops_per_lane = la::trsm_flops(sl.s, sl.u) * la::flop_weight<T>;
        d.bytes_per_lane = (0.5 * sl.s * sl.s + 2.0 * sl.s * sl.u) *
                           sizeof(T);
        descs.push_back(d);
      }
      batch::ilv_launch(dev, stream, "ilv_trsm_l", std::move(descs));
    }
    {
      std::vector<batch::IlvOpDesc> descs;
      for (auto& sl : slabs) {
        if (sl.s <= 0 || sl.u <= 0) continue;
        batch::IlvOpDesc d;
        d.kern = disp.resolve(batch::trsm_key(false, false, false, sl.u,
                                              sl.s, batch::kMicroPrecOf<T>));
        d.args.batch = sl.view.batch;
        d.args.alpha = 1.0;
        d.args.a = sl.view.data;
        d.args.lda = sl.view.ld;
        d.args.c = sl.view.sub(sl.s, 0);
        d.args.ldc = sl.view.ld;
        d.lanes = sl.count;
        d.flops_per_lane = la::trsm_flops(sl.s, sl.u) * la::flop_weight<T>;
        d.bytes_per_lane = (0.5 * sl.s * sl.s + 2.0 * sl.s * sl.u) *
                           sizeof(T);
        descs.push_back(d);
      }
      batch::ilv_launch(dev, stream, "ilv_trsm_r", std::move(descs));
    }
    {
      std::vector<batch::IlvOpDesc> descs;
      for (auto& sl : slabs) {
        if (sl.s <= 0 || sl.u <= 0) continue;
        batch::IlvOpDesc d;
        d.kern = disp.resolve(
            batch::gemm_key(sl.u, sl.u, sl.s, batch::kMicroPrecOf<T>));
        d.args.batch = sl.view.batch;
        d.args.alpha = -1.0;
        d.args.beta = 1.0;
        d.args.a = sl.view.sub(sl.s, 0);
        d.args.lda = sl.view.ld;
        d.args.b = sl.view.sub(0, sl.s);
        d.args.ldb = sl.view.ld;
        d.args.c = sl.view.sub(sl.s, sl.s);
        d.args.ldc = sl.view.ld;
        d.lanes = sl.count;
        d.flops_per_lane =
            la::gemm_flops(sl.u, sl.u, sl.s) * la::flop_weight<T>;
        d.bytes_per_lane =
            (2.0 * sl.u * sl.s + 2.0 * sl.u * sl.u) * sizeof(T);
        descs.push_back(d);
      }
      batch::ilv_launch(dev, stream, "ilv_schur", std::move(descs));
    }
    {
      std::vector<batch::IlvPackDescT<T>> descs;
      for (auto& sl : slabs) {
        batch::IlvPackDescT<T> d;
        d.dst = sl.view;
        d.m = sl.d;
        d.n = sl.d;
        d.lanes = sl.count;
        d.src = gsrc + sl.base;
        d.src_ld = g.ld.data() + sl.base;
        d.absmax = norms ? g.gmax.data() + sl.base : nullptr;
        descs.push_back(d);
      }
      batch::ilv_unpack<T>(dev, stream, std::move(descs));
    }
  };
  auto factor_level_ilv = [&](const std::map<std::pair<int, int>,
                                             std::vector<int>>& buckets,
                              Precision prec) {
    if (prec == Precision::kF32)
      factor_level_ilv_t.template operator()<float>(buckets);
    else
      factor_level_ilv_t.template operator()<double>(buckets);
  };

  // ---- the schedules ---------------------------------------------------
  switch (opts.engine) {
    case Engine::kBatched: {
      const int deepest = static_cast<int>(sym.levels.size()) - 1;
      for (int lvl = deepest; lvl >= 0; --lvl) {
        const auto& ids = sym.levels[static_cast<std::size_t>(lvl)];
        if (ids.empty()) continue;
        trace::TraceScope level_scope(
            dev.tracer(), dev.tracer() ? "level=" + std::to_string(lvl)
                                       : std::string());
        storage.ensure_level(lvl);
        assemble(ids);
        gather_children(ids);
        std::vector<int> small_ids, large_ids;
        for (int id : ids) {
          const Front& fr = sym.fronts[static_cast<std::size_t>(id)];
          if (opts.hybrid_gemm_threshold > 0 &&
              fr.dim() > opts.hybrid_gemm_threshold)
            large_ids.push_back(id);
          else
            small_ids.push_back(id);
        }
        if (num_streams == 1) {
          if (use_ilv) {
            // Route every front whose separator AND update extents fit
            // the interleaved classes; the (rare) oversized leftovers run
            // through the strided path as one group. std::map keys give a
            // deterministic bucket order, so the dispatch-plan replay of a
            // refactorization sees the same key sequence.
            std::map<std::pair<int, int>, std::vector<int>> buckets;
            std::vector<int> strided_ids;
            for (int id : small_ids) {
              const Front& fr = sym.fronts[static_cast<std::size_t>(id)];
              if (fr.s() <= ilv_cap && fr.u() <= ilv_cap)
                buckets[{fr.s(), fr.u()}].push_back(id);
              else
                strided_ids.push_back(id);
            }
            factor_level_ilv(buckets,
                             level_prec_[static_cast<std::size_t>(lvl)]);
            if (!strided_ids.empty()) factor_group(make_group(strided_ids));
          } else if (!small_ids.empty()) {
            factor_group(make_group(small_ids));
          }
          // Figure-14 hybrid: very large fronts as dedicated launches.
          for (int id : large_ids) factor_group(make_group({id}));
        } else {
          // Multi-stream level processing: the level's independent fronts
          // split round-robin across streams; events fence the assembly
          // before and the extraction after.
          const gpusim::Event ready = dev.record(stream);
          std::vector<std::vector<int>> parts(
              static_cast<std::size_t>(num_streams));
          int turn = 0;
          for (int id : small_ids)
            parts[static_cast<std::size_t>(turn++ % num_streams)]
                .push_back(id);
          for (int s = 0; s < num_streams; ++s) {
            const auto& part = parts[static_cast<std::size_t>(s)];
            if (part.empty()) continue;
            auto& st = dev.stream(s);
            if (s != 0) dev.wait(st, ready);
            factor_group_on(make_group(part), st,
                            lu_opts_of[static_cast<std::size_t>(s)]);
          }
          int lturn = 0;
          for (int id : large_ids) {
            const int s = lturn++ % num_streams;
            auto& st = dev.stream(s);
            if (s != 0) dev.wait(st, ready);
            factor_group_on(make_group({id}), st,
                            lu_opts_of[static_cast<std::size_t>(s)]);
          }
          for (int s = 1; s < num_streams; ++s)
            dev.wait(stream, dev.record(dev.stream(s)));
        }
        extract_factors(ids);
        if (lvl < deepest) storage.release_level(lvl + 1);
      }
      storage.release_level(0);
      break;
    }
    case Engine::kLooped:
    case Engine::kRightLooking: {
      // Postorder per-front chains; scatter to the parent right after each
      // front (the right-looking engine also synchronizes per supernode).
      for (std::size_t fi = 0; fi < nf; ++fi) {
        const int id = static_cast<int>(fi);
        trace::TraceScope level_scope(
            dev.tracer(),
            dev.tracer() ? "level=" + std::to_string(sym.fronts[fi].level)
                         : std::string());
        assemble({id});
        gather_children({id});
        factor_group(make_group({id}));
        if (opts.engine == Engine::kRightLooking) dev.synchronize(stream);
      }
      std::vector<int> all_ids(nf);
      for (std::size_t fi = 0; fi < nf; ++fi)
        all_ids[fi] = static_cast<int>(fi);
      extract_factors(all_ids);
      break;
    }
    case Engine::kLegacySmallBatch: {
      for (int lvl = static_cast<int>(sym.levels.size()) - 1; lvl >= 0;
           --lvl) {
        const auto& ids = sym.levels[static_cast<std::size_t>(lvl)];
        if (ids.empty()) continue;
        trace::TraceScope level_scope(
            dev.tracer(), dev.tracer() ? "level=" + std::to_string(lvl)
                                       : std::string());
        assemble(ids);
        gather_children(ids);
        std::vector<int> tiny, rest;
        for (int id : ids)
          (sym.fronts[static_cast<std::size_t>(id)].dim() < 32 ? tiny : rest)
              .push_back(id);
        if (!tiny.empty()) {
          factor_group(make_group(tiny));
          dev.synchronize(stream);  // v6.3.1-style per-batch sync
        }
        for (int id : rest) {
          factor_group(make_group({id}));
          dev.synchronize(stream);
        }
        extract_factors(ids);
        dev.synchronize(stream);
      }
      break;
    }
  }

  const double t1 = dev.synchronize_all();
  factor_seconds_ = t1 - t0;
  launches_ = dev.launch_count() - l0;
  syncs_ = dev.sync_count() - s0;
  sync_wait_ = dev.sync_wait_seconds() - w0;
  peak_bytes_ = dev.window_peak_bytes() - in_use0;

  // Zero-pivot reports land in whichever group factored the front; the
  // same sweep harvests the robustness diagnostics (device buffers are
  // plain host memory in the simulator, valid after synchronize_all).
  report_.fronts = static_cast<int>(nf);
  for (const auto& g : groups)
    for (int k = 0; k < g->count; ++k) {
      const auto ks = static_cast<std::size_t>(k);
      if (g->info[ks] != 0) {
        ok_ = false;
        ++report_.zero_pivot_fronts;
      }
      report_.boosted_pivots += g->boost[ks];
      if (g->anorm[ks] > 0 && g->gmax[ks] > 0)
        report_.pivot_growth =
            std::max(report_.pivot_growth, g->gmax[ks] / g->anorm[ks]);
    }
  report_.precision_policy = opts.precision;
  report_.level_precision = level_prec_;
  for (std::size_t fi = 0; fi < nf; ++fi)
    if (level_prec_[static_cast<std::size_t>(sym.fronts[fi].level)] ==
        Precision::kF32)
      ++report_.fp32_fronts;
  report_.measured_peak_bytes = peak_bytes_;
  report_.predicted_peak_bytes = sym.predicted_peak_bytes(mode, level_prec_);
  {
    const batch::KernelCache::Stats& ds = kcache->stats();
    report_.dispatch_hits = ds.hits - dstats0.hits;
    report_.dispatch_misses = ds.misses - dstats0.misses;
    report_.dispatch_plan_hits = ds.plan_hits - dstats0.plan_hits;
  }
  n_ = a_perm.rows();
  anorm1_ = a_perm.norm_1();
  if (auto* tr = dev.tracer()) {
    tr->add_counter("factor.boosted_pivots",
                    static_cast<double>(report_.boosted_pivots));
    tr->add_counter("factor.zero_pivot_fronts",
                    static_cast<double>(report_.zero_pivot_fronts));
    tr->max_counter("factor.pivot_growth_max", report_.pivot_growth);
    tr->max_counter("memory.predicted_peak_bytes",
                    static_cast<double>(report_.predicted_peak_bytes));
    tr->max_counter("memory.measured_peak_bytes",
                    static_cast<double>(report_.measured_peak_bytes));
    // Precision counters only when the policy actually produced FP32
    // fronts, so default-policy traces (and fig10) are unchanged.
    if (report_.fp32_fronts > 0) {
      tr->add_counter("factor.fp32_fronts",
                      static_cast<double>(report_.fp32_fronts));
      tr->add_counter("factor.fp64_fronts",
                      static_cast<double>(report_.fronts -
                                          report_.fp32_fronts));
      // Per-level precision (value = mantissa width class, 32 or 64;
      // index 0 = root) so the summary JSON records exactly which levels
      // the policy kept double — the counter mirror of
      // FactorReport::level_precision.
      char lvl_name[64];
      for (std::size_t l = 0; l < report_.level_precision.size(); ++l) {
        std::snprintf(lvl_name, sizeof lvl_name,
                      "factor.level_precision.L%03zu", l);
        tr->max_counter(lvl_name,
                        report_.level_precision[l] == Precision::kF32
                            ? 32.0
                            : 64.0);
      }
    }
    if (use_ilv) {
      tr->add_counter("dispatch.hits",
                      static_cast<double>(report_.dispatch_hits));
      tr->add_counter("dispatch.misses",
                      static_cast<double>(report_.dispatch_misses));
      tr->add_counter("dispatch.plan_hits",
                      static_cast<double>(report_.dispatch_plan_hits));
      tr->max_counter("dispatch.cached",
                      static_cast<double>(kcache->size()));
    }
    // Top critical-path contributors of this factorization's launch
    // window (what-if replays skipped — they are the exporter's job).
    trace::AnalysisOptions aopts;
    aopts.what_ifs = false;
    aopts.min_launch = trace_l0;
    const trace::Analysis an = trace::analyze_trace(*tr, dev.model(), aopts);
    if (an.valid) {
      for (std::size_t i = 0; i < an.kernels.size() && i < 3; ++i) {
        if (an.kernels[i].seconds <= 0) break;
        report_.critical_path_top.push_back(
            {an.kernels[i].name, an.kernels[i].seconds});
      }
    }
  }
}

void MultifrontalFactor::solve_batched(std::vector<double>& x) const {
  const int n = static_cast<int>(x.size());
  // The scope opens before the x staging buffer so the allocation is
  // tagged "solve" rather than by call site.
  IRRLU_TRACE_SCOPE(dev_.tracer(), "solve");
  auto dx = dev_.alloc<double>(static_cast<std::size_t>(n));
  std::copy(x.begin(), x.end(), dx.data());
  double* xd = dx.data();
  auto& stream = dev_.stream();

  struct Meta {
    const double* f11;
    const double* off;  ///< L21 (forward) or U12 (backward)
    const int* piv;
    const int* upd;
    int s, u, sep_begin;
  };

  // FP32 levels are promoted into per-call double buffers by a charged
  // mf_promote launch before the triangular kernels touch them; FP64
  // levels point straight into the factor store (the pre-precision path).
  std::vector<gpusim::DeviceBuffer<double>> promoted;

  auto level_metas = [&](int lvl, bool forward) {
    auto metas = std::make_shared<std::vector<Meta>>();
    const bool f32 =
        level_prec_[static_cast<std::size_t>(lvl)] == Precision::kF32;
    double* pbase = nullptr;
    if (f32) {
      std::size_t total = 0;
      for (int id : sym_.levels[static_cast<std::size_t>(lvl)]) {
        const Front& fr = sym_.fronts[static_cast<std::size_t>(id)];
        if (fr.s() == 0) continue;
        total += static_cast<std::size_t>(fr.s()) * fr.s() +
                 2 * static_cast<std::size_t>(fr.s()) * fr.u();
      }
      promoted.push_back(dev_.alloc<double>(std::max<std::size_t>(total, 1)));
      pbase = promoted.back().data();
      std::vector<PromoteMeta> pm;
      std::size_t off = 0;
      for (int id : sym_.levels[static_cast<std::size_t>(lvl)]) {
        const Front& fr = sym_.fronts[static_cast<std::size_t>(id)];
        if (fr.s() == 0) continue;
        const std::size_t elems =
            static_cast<std::size_t>(fr.s()) * fr.s() +
            2 * static_cast<std::size_t>(fr.s()) * fr.u();
        pm.push_back({f11f(id), pbase + off, elems});
        off += elems;
      }
      promote_fp32(dev_, stream, std::move(pm));
    }
    std::size_t poff = 0;
    for (int id : sym_.levels[static_cast<std::size_t>(lvl)]) {
      const Front& fr = sym_.fronts[static_cast<std::size_t>(id)];
      if (fr.s() == 0) continue;
      const double* F11;
      const double* OFF;
      if (f32) {
        const auto ss = static_cast<std::size_t>(fr.s()) * fr.s();
        const auto su = static_cast<std::size_t>(fr.s()) * fr.u();
        F11 = pbase + poff;
        OFF = forward ? pbase + poff + ss + su : pbase + poff + ss;
        poff += ss + 2 * su;
      } else {
        F11 = f11(id);
        OFF = forward ? l21(id) : u12(id);
      }
      metas->push_back({F11, OFF, front_ipiv(id),
                        upd_storage_.data() +
                            upd_offset_[static_cast<std::size_t>(id)],
                        fr.s(), fr.u(), fr.sep_begin});
    }
    return metas;
  };

  // Gather/scatter staging for the update-row gemv. Blocks of a launch
  // execute sequentially on the host, so one buffer per launch is safe.
  auto level_scratch = [](const std::vector<Meta>& metas) {
    int max_u = 0;
    for (const Meta& m : metas) max_u = std::max(max_u, m.u);
    return std::make_shared<std::vector<double>>(
        static_cast<std::size_t>(max_u));
  };

  // Forward sweep, leaves to root: x_s <- L11^{-1} P x_s;
  // x[upd] -= L21 x_s.
  for (int lvl = static_cast<int>(sym_.levels.size()) - 1; lvl >= 0;
       --lvl) {
    IRRLU_TRACE_SCOPE(dev_.tracer(), "fwd");
    auto metas = level_metas(lvl, /*forward=*/true);
    if (metas->empty()) continue;
    auto tmp = level_scratch(*metas);
    dev_.launch(stream, {"mf_solve_fwd", static_cast<int>(metas->size()), 0},
                [metas, tmp, xd](gpusim::BlockCtx& ctx) {
      const Meta& m = (*metas)[static_cast<std::size_t>(ctx.block())];
      double* xs = xd + m.sep_begin;  // contiguous separator range
      for (int r = 0; r < m.s; ++r)
        if (m.piv[r] != r) std::swap(xs[r], xs[m.piv[r]]);
      la::trsv(la::Uplo::Lower, la::Trans::No, la::Diag::Unit, m.s, m.f11,
               m.s, xs, 1);
      if (m.u > 0) {
        // tmp = L21 * x_s (L21 is u x s, leading dimension u), then
        // scatter (atomics on real hardware).
        la::gemv(la::Trans::No, m.u, m.s, 1.0, m.off, m.u, xs, 1, 0.0,
                 tmp->data(), 1);
        for (int k = 0; k < m.u; ++k) xd[m.upd[k]] -= (*tmp)[k];
      }
      ctx.record(static_cast<double>(m.s) * m.s + 2.0 * m.s * m.u,
                 (static_cast<double>(m.s) * (m.s / 2.0 + m.u) + 2.0 * m.u +
                  2.0 * m.s) *
                     sizeof(double));
    });
  }
  // Backward sweep, root to leaves: x_s <- U11^{-1}(x_s - U12 x[upd]).
  for (std::size_t lvl = 0; lvl < sym_.levels.size(); ++lvl) {
    IRRLU_TRACE_SCOPE(dev_.tracer(), "bwd");
    auto metas = level_metas(static_cast<int>(lvl), /*forward=*/false);
    if (metas->empty()) continue;
    auto tmp = level_scratch(*metas);
    dev_.launch(stream, {"mf_solve_bwd", static_cast<int>(metas->size()), 0},
                [metas, tmp, xd](gpusim::BlockCtx& ctx) {
      const Meta& m = (*metas)[static_cast<std::size_t>(ctx.block())];
      double* xs = xd + m.sep_begin;
      if (m.u > 0) {
        // Gather x[upd], then x_s -= U12 * x_u (U12 is s x u, leading
        // dimension s).
        for (int k = 0; k < m.u; ++k) (*tmp)[k] = xd[m.upd[k]];
        la::gemv(la::Trans::No, m.s, m.u, -1.0, m.off, m.s, tmp->data(), 1,
                 1.0, xs, 1);
      }
      la::trsv(la::Uplo::Upper, la::Trans::No, la::Diag::NonUnit, m.s,
               m.f11, m.s, xs, 1);
      ctx.record(static_cast<double>(m.s) * m.s + 2.0 * m.s * m.u,
                 (static_cast<double>(m.s) * (m.s / 2.0 + m.u) + 2.0 * m.u +
                  2.0 * m.s) *
                     sizeof(double));
    });
  }
  dev_.synchronize(stream);
  std::copy(dx.data(), dx.data() + n, x.begin());
}

void MultifrontalFactor::solve_many(std::vector<double>& x, int nrhs) const {
  IRRLU_CHECK_MSG(nrhs >= 0, "solve_many(): negative nrhs");
  IRRLU_CHECK_MSG(x.size() == static_cast<std::size_t>(n_) *
                                  static_cast<std::size_t>(nrhs),
                  "solve_many(): x holds " << x.size() << " elements, want n*"
                                           << "nrhs = " << n_ << "*" << nrhs);
  solve_many(x.data(), nrhs);
}

void MultifrontalFactor::solve_many(double* x, int nrhs) const {
  if (nrhs <= 0 || n_ == 0) return;
  // The scope opens before any staging allocation so every buffer of the
  // interleaved sweep is tagged "solve_many".
  IRRLU_TRACE_SCOPE(dev_.tracer(), "solve_many");
  auto& stream = dev_.stream();
  const int ldx = n_;
  const std::size_t xelems =
      static_cast<std::size_t>(n_) * static_cast<std::size_t>(nrhs);
  auto dx = dev_.alloc<double>(xelems);
  std::copy(x, x + xelems, dx.data());
  double* xd = dx.data();

  // Host-side per-front metadata for the gather/scatter kernels (the
  // solve_batched Meta idiom) plus device descriptor arrays for the
  // irrTRSM / irrGEMM calls. Every front of a level stages its dim x nrhs
  // right-hand-side block once; the triangular solve and the
  // separator/update coupling then run over the whole level as ONE
  // irregular batch, so the factor blocks are read once per front per
  // sweep instead of once per RHS.
  struct Meta {
    double* stage;   ///< this front's dim x nrhs staging block (ld = dim)
    const int* upd;  ///< update-row indices (permuted space)
    const int* pg;   ///< pivoted gather order for the separator rows
    int s, u, sep_begin;
  };
  struct LevelBatch {
    int bs = 0;  ///< fronts with s > 0
    int max_s = 0, max_u = 0;
    std::shared_ptr<std::vector<Meta>> metas;
    gpusim::DeviceBuffer<double> stage;
    gpusim::DeviceBuffer<double> promoted;  ///< FP64 view of an FP32 level
    gpusim::DeviceBuffer<int> pgather;  ///< concatenated pivot orders
    gpusim::DeviceBuffer<const double*> f11_p, l21_p, u12_p;
    gpusim::DeviceBuffer<double*> top_p, bot_p;
    gpusim::DeviceBuffer<int> f11_ld, l21_ld, u12_ld, stage_ld, s_vec, u_vec,
        nrhs_vec;
  };

  const int nlevels = static_cast<int>(sym_.levels.size());
  std::vector<LevelBatch> lvls(static_cast<std::size_t>(nlevels));
  for (int lvl = 0; lvl < nlevels; ++lvl) {
    LevelBatch& L = lvls[static_cast<std::size_t>(lvl)];
    std::size_t stage_elems = 0, pg_total = 0;
    for (int id : sym_.levels[static_cast<std::size_t>(lvl)]) {
      const Front& fr = sym_.fronts[static_cast<std::size_t>(id)];
      if (fr.s() == 0) continue;
      ++L.bs;
      L.max_s = std::max(L.max_s, fr.s());
      L.max_u = std::max(L.max_u, fr.u());
      stage_elems += static_cast<std::size_t>(fr.dim()) *
                     static_cast<std::size_t>(nrhs);
      pg_total += static_cast<std::size_t>(fr.s());
    }
    if (L.bs == 0) continue;
    const auto bsz = static_cast<std::size_t>(L.bs);
    const bool f32 =
        level_prec_[static_cast<std::size_t>(lvl)] == Precision::kF32;
    double* pbase = nullptr;
    if (f32) {
      // One promotion per level per call: both sweeps read the same
      // FP64 view.
      std::size_t total = 0;
      for (int id : sym_.levels[static_cast<std::size_t>(lvl)]) {
        const Front& fr = sym_.fronts[static_cast<std::size_t>(id)];
        if (fr.s() == 0) continue;
        total += static_cast<std::size_t>(fr.s()) * fr.s() +
                 2 * static_cast<std::size_t>(fr.s()) * fr.u();
      }
      L.promoted = dev_.alloc<double>(std::max<std::size_t>(total, 1));
      pbase = L.promoted.data();
      std::vector<PromoteMeta> pm;
      std::size_t off = 0;
      for (int id : sym_.levels[static_cast<std::size_t>(lvl)]) {
        const Front& fr = sym_.fronts[static_cast<std::size_t>(id)];
        if (fr.s() == 0) continue;
        const std::size_t elems =
            static_cast<std::size_t>(fr.s()) * fr.s() +
            2 * static_cast<std::size_t>(fr.s()) * fr.u();
        pm.push_back({f11f(id), pbase + off, elems});
        off += elems;
      }
      promote_fp32(dev_, stream, std::move(pm));
    }
    L.stage = dev_.alloc<double>(stage_elems);
    L.pgather = dev_.alloc<int>(pg_total);
    L.f11_p = dev_.alloc<const double*>(bsz);
    L.l21_p = dev_.alloc<const double*>(bsz);
    L.u12_p = dev_.alloc<const double*>(bsz);
    L.top_p = dev_.alloc<double*>(bsz);
    L.bot_p = dev_.alloc<double*>(bsz);
    L.f11_ld = dev_.alloc<int>(bsz);
    L.l21_ld = dev_.alloc<int>(bsz);
    L.u12_ld = dev_.alloc<int>(bsz);
    L.stage_ld = dev_.alloc<int>(bsz);
    L.s_vec = dev_.alloc<int>(bsz);
    L.u_vec = dev_.alloc<int>(bsz);
    L.nrhs_vec = dev_.alloc<int>(bsz);
    L.metas = std::make_shared<std::vector<Meta>>();
    L.metas->reserve(bsz);
    std::size_t so = 0, po = 0;
    std::size_t i = 0;
    for (int id : sym_.levels[static_cast<std::size_t>(lvl)]) {
      const Front& fr = sym_.fronts[static_cast<std::size_t>(id)];
      const int s = fr.s(), u = fr.u(), dim = fr.dim();
      if (s == 0) continue;
      double* st = L.stage.data() + so;
      int* pg = L.pgather.data() + po;
      // The sequential pivot swaps of the scalar solve, applied to an
      // identity index array, yield the gather order that produces the
      // same permuted vector in one pass.
      for (int r = 0; r < s; ++r) pg[r] = r;
      const int* piv = front_ipiv(id);
      for (int r = 0; r < s; ++r)
        if (piv[r] != r) std::swap(pg[r], pg[piv[r]]);
      if (f32) {
        const auto ss = static_cast<std::size_t>(s) * s;
        const auto su = static_cast<std::size_t>(s) * u;
        L.f11_p[i] = pbase;
        L.u12_p[i] = pbase + ss;
        L.l21_p[i] = pbase + ss + su;
        pbase += ss + 2 * su;
      } else {
        L.f11_p[i] = f11(id);
        L.l21_p[i] = l21(id);
        L.u12_p[i] = u12(id);
      }
      L.top_p[i] = st;
      L.bot_p[i] = st + s;
      L.f11_ld[i] = s;
      L.l21_ld[i] = u > 0 ? u : 1;
      L.u12_ld[i] = s;
      L.stage_ld[i] = dim;
      L.s_vec[i] = s;
      L.u_vec[i] = u;
      L.nrhs_vec[i] = nrhs;
      L.metas->push_back(
          {st, upd_storage_.data() + upd_offset_[static_cast<std::size_t>(id)],
           pg, s, u, fr.sep_begin});
      so += static_cast<std::size_t>(dim) * static_cast<std::size_t>(nrhs);
      po += static_cast<std::size_t>(s);
      ++i;
    }
  }

  // Forward sweep, leaves to root: stage <- P x_s; stage <- L11^{-1} stage
  // (irrTRSM over the level); bottom <- L21 * top (irrGEMM); x[upd] -=
  // bottom (scatter; atomics on real hardware, sequential blocks in the
  // simulator — the same contract solve_batched documents).
  for (int lvl = nlevels - 1; lvl >= 0; --lvl) {
    const LevelBatch& L = lvls[static_cast<std::size_t>(lvl)];
    if (L.bs == 0) continue;
    IRRLU_TRACE_SCOPE(dev_.tracer(), "fwd");
    auto metas = L.metas;
    dev_.launch(stream, {"mf_many_gather_fwd", L.bs, 0},
                [metas, xd, ldx, nrhs](gpusim::BlockCtx& ctx) {
      const Meta& m = (*metas)[static_cast<std::size_t>(ctx.block())];
      const int dim = m.s + m.u;
      for (int j = 0; j < nrhs; ++j) {
        const double* xc = xd + static_cast<std::ptrdiff_t>(j) * ldx +
                           m.sep_begin;
        double* sc = m.stage + static_cast<std::ptrdiff_t>(j) * dim;
        for (int r = 0; r < m.s; ++r) sc[r] = xc[m.pg[r]];
      }
      ctx.record(0.0, 2.0 * m.s * nrhs * sizeof(double) +
                          static_cast<double>(m.s) * sizeof(int));
    });
    batch::irr_trsm(dev_, stream, la::Side::Left, la::Uplo::Lower,
                    la::Trans::No, la::Diag::Unit, L.max_s, nrhs, 1.0,
                    L.f11_p.data(), L.f11_ld.data(), 0, 0, L.top_p.data(),
                    L.stage_ld.data(), 0, 0, L.s_vec.data(),
                    L.nrhs_vec.data(), L.bs);
    if (L.max_u > 0)
      batch::irr_gemm(dev_, stream, la::Trans::No, la::Trans::No, L.max_u,
                      nrhs, L.max_s, 1.0, L.l21_p.data(), L.l21_ld.data(), 0,
                      0, const_cast<const double* const*>(L.top_p.data()),
                      L.stage_ld.data(), 0, 0, 0.0, L.bot_p.data(),
                      L.stage_ld.data(), 0, 0, L.u_vec.data(),
                      L.nrhs_vec.data(), L.s_vec.data(), L.bs);
    dev_.launch(stream, {"mf_many_scatter_fwd", L.bs, 0},
                [metas, xd, ldx, nrhs](gpusim::BlockCtx& ctx) {
      const Meta& m = (*metas)[static_cast<std::size_t>(ctx.block())];
      const int dim = m.s + m.u;
      for (int j = 0; j < nrhs; ++j) {
        double* xc = xd + static_cast<std::ptrdiff_t>(j) * ldx;
        const double* sc = m.stage + static_cast<std::ptrdiff_t>(j) * dim;
        for (int r = 0; r < m.s; ++r) xc[m.sep_begin + r] = sc[r];
        for (int k = 0; k < m.u; ++k) xc[m.upd[k]] -= sc[m.s + k];
      }
      ctx.record(static_cast<double>(m.u) * nrhs,
                 (2.0 * m.s + 3.0 * m.u) * nrhs * sizeof(double) +
                     static_cast<double>(m.u) * sizeof(int));
    });
  }

  // Backward sweep, root to leaves: top <- x_s, bottom <- x[upd] (gather);
  // top -= U12 * bottom (irrGEMM); top <- U11^{-1} top (irrTRSM); x_s <-
  // top (scatter; separator ranges are disjoint, plain stores).
  for (int lvl = 0; lvl < nlevels; ++lvl) {
    const LevelBatch& L = lvls[static_cast<std::size_t>(lvl)];
    if (L.bs == 0) continue;
    IRRLU_TRACE_SCOPE(dev_.tracer(), "bwd");
    auto metas = L.metas;
    dev_.launch(stream, {"mf_many_gather_bwd", L.bs, 0},
                [metas, xd, ldx, nrhs](gpusim::BlockCtx& ctx) {
      const Meta& m = (*metas)[static_cast<std::size_t>(ctx.block())];
      const int dim = m.s + m.u;
      for (int j = 0; j < nrhs; ++j) {
        const double* xc = xd + static_cast<std::ptrdiff_t>(j) * ldx;
        double* sc = m.stage + static_cast<std::ptrdiff_t>(j) * dim;
        for (int r = 0; r < m.s; ++r) sc[r] = xc[m.sep_begin + r];
        for (int k = 0; k < m.u; ++k) sc[m.s + k] = xc[m.upd[k]];
      }
      ctx.record(0.0, 2.0 * (m.s + m.u) * nrhs * sizeof(double) +
                          static_cast<double>(m.u) * sizeof(int));
    });
    if (L.max_u > 0)
      batch::irr_gemm(dev_, stream, la::Trans::No, la::Trans::No, L.max_s,
                      nrhs, L.max_u, -1.0, L.u12_p.data(), L.u12_ld.data(), 0,
                      0, const_cast<const double* const*>(L.bot_p.data()),
                      L.stage_ld.data(), 0, 0, 1.0, L.top_p.data(),
                      L.stage_ld.data(), 0, 0, L.s_vec.data(),
                      L.nrhs_vec.data(), L.u_vec.data(), L.bs);
    batch::irr_trsm(dev_, stream, la::Side::Left, la::Uplo::Upper,
                    la::Trans::No, la::Diag::NonUnit, L.max_s, nrhs, 1.0,
                    L.f11_p.data(), L.f11_ld.data(), 0, 0, L.top_p.data(),
                    L.stage_ld.data(), 0, 0, L.s_vec.data(),
                    L.nrhs_vec.data(), L.bs);
    dev_.launch(stream, {"mf_many_scatter_bwd", L.bs, 0},
                [metas, xd, ldx, nrhs](gpusim::BlockCtx& ctx) {
      const Meta& m = (*metas)[static_cast<std::size_t>(ctx.block())];
      const int dim = m.s + m.u;
      for (int j = 0; j < nrhs; ++j) {
        double* xc = xd + static_cast<std::ptrdiff_t>(j) * ldx;
        const double* sc = m.stage + static_cast<std::ptrdiff_t>(j) * dim;
        for (int r = 0; r < m.s; ++r) xc[m.sep_begin + r] = sc[r];
      }
      ctx.record(0.0, 2.0 * m.s * nrhs * sizeof(double));
    });
  }

  dev_.synchronize(stream);
  std::copy(dx.data(), dx.data() + xelems, x);
}

MultifrontalFactor::HostBlocks MultifrontalFactor::host_blocks(
    int f, std::vector<double>& scratch) const {
  const Front& fr = sym_.fronts[static_cast<std::size_t>(f)];
  const auto s = static_cast<std::size_t>(fr.s());
  const auto u = static_cast<std::size_t>(fr.u());
  if (front_prec(f) != Precision::kF32) return {f11(f), u12(f), l21(f)};
  const std::size_t elems = s * s + 2 * s * u;
  if (scratch.size() < elems) scratch.resize(elems);
  const float* src = f11f(f);
  for (std::size_t i = 0; i < elems; ++i)
    scratch[i] = static_cast<double>(src[i]);
  const double* base = scratch.data();
  return {base, base + s * s, base + s * s + s * u};
}

void MultifrontalFactor::solve(std::vector<double>& x) const {
  const auto nf = sym_.fronts.size();
  std::vector<double> xs, xu, fbuf;
  // Forward sweep (children before parents — the fronts are in postorder).
  for (std::size_t fi = 0; fi < nf; ++fi) {
    const Front& fr = sym_.fronts[fi];
    const int s = fr.s(), u = fr.u();
    if (s == 0) continue;
    const HostBlocks hb = host_blocks(static_cast<int>(fi), fbuf);
    const double* F11 = hb.f11;
    const double* L21 = hb.l21;
    xs.assign(static_cast<std::size_t>(s), 0.0);
    for (int r = 0; r < s; ++r)
      xs[static_cast<std::size_t>(r)] =
          x[static_cast<std::size_t>(fr.sep_begin + r)];
    const int* piv = front_ipiv(static_cast<int>(fi));
    for (int r = 0; r < s; ++r)
      if (piv[r] != r)
        std::swap(xs[static_cast<std::size_t>(r)],
                  xs[static_cast<std::size_t>(piv[r])]);
    la::trsv(la::Uplo::Lower, la::Trans::No, la::Diag::Unit, s, F11, s,
             xs.data(), 1);
    for (int k = 0; k < u; ++k) {
      double acc = 0;
      for (int r = 0; r < s; ++r)
        acc += L21[static_cast<std::ptrdiff_t>(r) * u + k] *
               xs[static_cast<std::size_t>(r)];
      x[static_cast<std::size_t>(fr.upd[static_cast<std::size_t>(k)])] -= acc;
    }
    for (int r = 0; r < s; ++r)
      x[static_cast<std::size_t>(fr.sep_begin + r)] =
          xs[static_cast<std::size_t>(r)];
  }
  // Backward sweep.
  for (std::size_t fi = nf; fi-- > 0;) {
    const Front& fr = sym_.fronts[fi];
    const int s = fr.s(), u = fr.u();
    if (s == 0) continue;
    const HostBlocks hb = host_blocks(static_cast<int>(fi), fbuf);
    const double* F11 = hb.f11;
    const double* U12 = hb.u12;
    xs.assign(static_cast<std::size_t>(s), 0.0);
    for (int r = 0; r < s; ++r)
      xs[static_cast<std::size_t>(r)] =
          x[static_cast<std::size_t>(fr.sep_begin + r)];
    if (u > 0) {
      xu.assign(static_cast<std::size_t>(u), 0.0);
      for (int k = 0; k < u; ++k)
        xu[static_cast<std::size_t>(k)] =
            x[static_cast<std::size_t>(fr.upd[static_cast<std::size_t>(k)])];
      la::gemv(la::Trans::No, s, u, -1.0, U12, s, xu.data(), 1, 1.0,
               xs.data(), 1);
    }
    la::trsv(la::Uplo::Upper, la::Trans::No, la::Diag::NonUnit, s, F11, s,
             xs.data(), 1);
    for (int r = 0; r < s; ++r)
      x[static_cast<std::size_t>(fr.sep_begin + r)] =
          xs[static_cast<std::size_t>(r)];
  }
}

void MultifrontalFactor::solve_transpose(std::vector<double>& x) const {
  // solve() applies M = B_0 ... B_{N-1} F_{N-1} ... F_0 where F_i is front
  // i's forward step (pivot, L11 trsv, update-row gemv) and B_i its
  // backward step. The transpose applies F_0^T ... F_{N-1}^T then
  // B_{N-1}^T ... B_0^T, so each sweep runs in the opposite tree order
  // with the transposed triangular blocks.
  const auto nf = sym_.fronts.size();
  std::vector<double> xs, xu, fbuf;
  // B_i^T in postorder: xs <- U11^{-T} xs; x[upd] -= U12^T xs.
  for (std::size_t fi = 0; fi < nf; ++fi) {
    const Front& fr = sym_.fronts[fi];
    const int s = fr.s(), u = fr.u();
    if (s == 0) continue;
    const HostBlocks hb = host_blocks(static_cast<int>(fi), fbuf);
    const double* F11 = hb.f11;
    const double* U12 = hb.u12;
    xs.assign(static_cast<std::size_t>(s), 0.0);
    for (int r = 0; r < s; ++r)
      xs[static_cast<std::size_t>(r)] =
          x[static_cast<std::size_t>(fr.sep_begin + r)];
    la::trsv(la::Uplo::Upper, la::Trans::Yes, la::Diag::NonUnit, s, F11, s,
             xs.data(), 1);
    for (int k = 0; k < u; ++k) {
      double acc = 0;
      for (int r = 0; r < s; ++r)
        acc += U12[static_cast<std::ptrdiff_t>(k) * s + r] *
               xs[static_cast<std::size_t>(r)];
      x[static_cast<std::size_t>(fr.upd[static_cast<std::size_t>(k)])] -= acc;
    }
    for (int r = 0; r < s; ++r)
      x[static_cast<std::size_t>(fr.sep_begin + r)] =
          xs[static_cast<std::size_t>(r)];
  }
  // F_i^T in reverse postorder: xs <- P^T L11^{-T} (xs - L21^T x[upd]).
  for (std::size_t fi = nf; fi-- > 0;) {
    const Front& fr = sym_.fronts[fi];
    const int s = fr.s(), u = fr.u();
    if (s == 0) continue;
    const HostBlocks hb = host_blocks(static_cast<int>(fi), fbuf);
    const double* F11 = hb.f11;
    const double* L21 = hb.l21;
    xs.assign(static_cast<std::size_t>(s), 0.0);
    for (int r = 0; r < s; ++r)
      xs[static_cast<std::size_t>(r)] =
          x[static_cast<std::size_t>(fr.sep_begin + r)];
    if (u > 0) {
      xu.assign(static_cast<std::size_t>(u), 0.0);
      for (int k = 0; k < u; ++k)
        xu[static_cast<std::size_t>(k)] =
            x[static_cast<std::size_t>(fr.upd[static_cast<std::size_t>(k)])];
      // xs -= L21^T xu (L21 is u x s, leading dimension u).
      la::gemv(la::Trans::Yes, u, s, -1.0, L21, u, xu.data(), 1, 1.0,
               xs.data(), 1);
    }
    la::trsv(la::Uplo::Lower, la::Trans::Yes, la::Diag::Unit, s, F11, s,
             xs.data(), 1);
    const int* piv = front_ipiv(static_cast<int>(fi));
    for (int r = s; r-- > 0;)
      if (piv[r] != r)
        std::swap(xs[static_cast<std::size_t>(r)],
                  xs[static_cast<std::size_t>(piv[r])]);
    for (int r = 0; r < s; ++r)
      x[static_cast<std::size_t>(fr.sep_begin + r)] =
          xs[static_cast<std::size_t>(r)];
  }
}

double MultifrontalFactor::condest_1() const {
  if (condest_ >= 0) return condest_;
  if (n_ == 0) return condest_ = 0.0;
  const auto nz = static_cast<std::size_t>(n_);
  auto finite = [](const std::vector<double>& v) {
    for (double e : v)
      if (!std::isfinite(e)) return false;
    return true;
  };
  // Hager's algorithm estimating ||A_prep^{-1}||_1: maximize ||A^{-1}x||_1
  // over the unit 1-norm ball by alternating a solve with A and one with
  // A^T (the gradient step), hopping between unit-vector vertices.
  std::vector<double> x(nz, 1.0 / n_), y, z;
  double est = 0;
  int last_j = -1;
  for (int iter = 0; iter < 5; ++iter) {
    y = x;
    solve(y);  // y = A^{-1} x
    if (!finite(y))
      return condest_ = std::numeric_limits<double>::infinity();
    double e = 0;
    for (double v : y) e += std::abs(v);
    if (iter > 0 && e <= est) break;  // estimate stopped improving
    est = e;
    z.assign(nz, 0.0);
    for (std::size_t i = 0; i < nz; ++i) z[i] = y[i] >= 0 ? 1.0 : -1.0;
    solve_transpose(z);  // z = A^{-T} sign(y)
    if (!finite(z))
      return condest_ = std::numeric_limits<double>::infinity();
    int j = 0;
    double zmax = 0, ztx = 0;
    for (std::size_t i = 0; i < nz; ++i) {
      ztx += z[i] * x[i];
      if (std::abs(z[i]) > zmax) {
        zmax = std::abs(z[i]);
        j = static_cast<int>(i);
      }
    }
    if (zmax <= ztx || j == last_j) break;  // at a local maximum
    last_j = j;
    x.assign(nz, 0.0);
    x[static_cast<std::size_t>(j)] = 1.0;
  }
  return condest_ = anorm1_ * est;
}

}  // namespace irrlu::sparse
