// Numeric multifrontal LU factorization on the simulated device (§III-A +
// §V-B): traverses the assembly tree level by level from the leaves,
// factoring all fronts of a level as one irregular batch with the irrLU /
// irrTRSM / irrGEMM kernels — or with one of the baseline schedules the
// paper compares against (Table I, Figure 14).
//
// Factor storage: the L/U blocks of every front (L11\U11, U12, L21) are
// extracted into a compact factor store for the solve phase; the square
// working fronts can then be released. Two memory disciplines are offered
// (the paper: "if the entire assembly tree does not fit in the device
// memory, the factorization is split in multiple traversals of subtrees"):
//   - kAllUpfront: every front allocated for the whole factorization
//     (fastest, maximal footprint);
//   - kStackedLevels: only two adjacent levels of fronts are live at any
//     time — a level is freed as soon as its Schur complements have been
//     absorbed by its parents (batched engine only).
#pragma once

#include <memory>
#include <vector>

#include "gpusim/device.hpp"
#include "irrblas/dispatch.hpp"
#include "irrblas/irr_kernels.hpp"
#include "sparse/precision.hpp"
#include "sparse/symbolic.hpp"

namespace irrlu::sparse {

/// Factorization schedule.
enum class Engine {
  kBatched,          ///< irrLU-GPU batched per level (the paper's solution)
  kLooped,           ///< naive per-front kernel loop (cuBLAS/cuSOLVER loop)
  kLegacySmallBatch, ///< STRUMPACK-v6.3.1-style: batch only fronts < 32,
                     ///< loop the rest, synchronize per level
  kRightLooking,     ///< SuperLU-style: postorder per-front with eager
                     ///< scatter and per-front synchronization
};

// MemoryMode (the working-front memory discipline) lives in
// sparse/symbolic.hpp so the symbolic phase can predict either
// discipline's peak footprint; it is re-exported here via that include.

const char* to_string(Engine e);

struct FactorOptions {
  Engine engine = Engine::kBatched;
  MemoryMode memory = MemoryMode::kAllUpfront;
  batch::IrrLuOptions lu;  ///< panel width, laswp method, ...
  /// Batched engine: split every level's batch across this many streams
  /// (fronts of one level are independent); events re-join the streams at
  /// each level boundary so the extend-add ordering stays correct. 1 =
  /// single-stream (the paper's configuration).
  int num_streams = 1;
  /// Figure-14 hybrid: within the batched engine, fronts whose update part
  /// exceeds this threshold run their Schur GEMM as dedicated per-front
  /// launches ("cuBLAS GEMM in a loop for sizes > 256"). 0 disables.
  int hybrid_gemm_threshold = 256;
  /// Small-pivot recovery threshold: during the panel factorization a pivot
  /// with magnitude below pivot_tau * ||F||_max (per front, where ||F||_max
  /// is the max-magnitude entry of the assembled front *before*
  /// elimination) is replaced by a signed perturbation of that magnitude
  /// (SuperLU-style boosting), so one degenerate front never poisons its
  /// batch siblings with NaN/Inf. Boost counts and pivot growth are
  /// reported through FactorReport. <= 0 disables recovery (and the norm /
  /// growth launches) entirely.
  double pivot_tau = 1e-10;
  /// Interleaved (SoA) leaf routing (DESIGN.md §12): with enabled = true,
  /// the batched single-stream engine packs each level's small fronts into
  /// per-(s, u)-class SoA buffers and factors them with the dispatch-cached
  /// batch-axis-vectorized kernels — one launch per pipeline stage for the
  /// whole level, coalesced row swaps. Factor bits are identical to the
  /// strided path; simulated time and traffic differ (that is the point),
  /// so the default is off and the default output stays byte-identical.
  batch::InterleavedOptions interleaved;
  /// Kernel registry the interleaved routing resolves through. Null uses a
  /// constructor-local transient cache (kernels rebuilt per factorization);
  /// callers that refactor repeatedly (SparseDirectSolver, the PR 7
  /// service sessions) pass a long-lived cache so later factorizations hit.
  batch::KernelCache* dispatch_cache = nullptr;
  /// Optional recorded resolution sequence for same-pattern refactors:
  /// replayed resolutions skip even the cache's hash lookup. Requires
  /// dispatch_cache; the caller must begin_replay() per factorization.
  batch::DispatchPlan* dispatch_plan = nullptr;
  /// Front-factorization precision policy (classic LU-IR, DESIGN.md §14):
  /// kF64 factors every level in double — bit-identical to the
  /// pre-precision code path; kF32 factors every level in single (half the
  /// simulated flop time and half the front/factor bytes, FP64 accuracy
  /// recovered by the solver's iterative refinement); kAdaptive keeps the
  /// top adaptive_root_levels levels — the root path, where pivot growth
  /// concentrates — in double and factors the deeper levels in single.
  /// Precision is uniform within a level, so every engine's batch groups
  /// stay single-precision-class.
  PrecisionPolicy precision = PrecisionPolicy::kF64;
  /// kAdaptive only: number of levels from the root (level 0) kept in FP64.
  int adaptive_root_levels = 2;
};

/// Per-factorization numerical diagnostics (tentpole of the robustness
/// layer): filled during the constructor, with the condition estimate
/// computed lazily on first request.
struct FactorReport {
  int fronts = 0;             ///< fronts factored
  long boosted_pivots = 0;    ///< pivots replaced by the boost rule
  int zero_pivot_fronts = 0;  ///< fronts with an *exactly* zero pivot
  /// max over fronts of ||F after factorization||_max / ||F before||_max —
  /// a cheap element-growth proxy; large values flag unstable elimination.
  /// 0 when pivot_tau disabled the diagnostics.
  double pivot_growth = 0;
  /// Peak device bytes the symbolic analysis predicted for the effective
  /// memory mode (after any engine fallback), and the peak actually
  /// measured over the constructor's allocation window — printed side by
  /// side by ablation_memory, maxwell_solver --mem-report, and the trace
  /// summary.
  std::size_t predicted_peak_bytes = 0;
  std::size_t measured_peak_bytes = 0;
  /// Dispatch-cache traffic of this factorization (all zero when the
  /// interleaved routing is off): resolutions served from the cache hash
  /// map, resolutions that built a kernel, and resolutions served by a
  /// DispatchPlan replay without touching the hash map.
  long dispatch_hits = 0;
  long dispatch_misses = 0;
  long dispatch_plan_hits = 0;
  /// Top kernels on the critical path of this factorization's launch
  /// window (up to 3, by on-path seconds, descending). Filled only when
  /// a tracer was attached and the trace replayed cleanly (see
  /// trace/analysis.hpp); empty otherwise.
  struct PathContributor {
    std::string name;
    double seconds = 0;
  };
  std::vector<PathContributor> critical_path_top;
  /// Precision policy this factorization ran under and the precision each
  /// level actually used (index = level, level 0 = root). With the default
  /// kF64 policy every entry is kF64 and fp32_fronts is 0.
  PrecisionPolicy precision_policy = PrecisionPolicy::kF64;
  std::vector<Precision> level_precision;
  long fp32_fronts = 0;  ///< fronts factored in single precision
};

/// Owns the factored fronts (compact device storage) and performs solves.
class MultifrontalFactor {
 public:
  /// Assembles and factors `a_perm` (already scaled and permuted). The
  /// matrix values and the symbolic analysis must describe the same
  /// pattern. The compact factors stay alive for subsequent solves.
  MultifrontalFactor(gpusim::Device& dev, const CsrMatrix& a_perm,
                     const SymbolicAnalysis& sym, const FactorOptions& opts);

  /// Solves L U x = P b in the permuted space, overwriting x (length n).
  /// Pivoting is restricted to the fronts' diagonal blocks, matching the
  /// factorization. Host-side reference implementation.
  void solve(std::vector<double>& x) const;

  /// Same solve, executed as level-batched kernels on the device (one
  /// thread block per front, forward sweep leaves-to-root then backward
  /// root-to-leaves). On real hardware the forward sweep's scatter into
  /// shared ancestor entries would need atomics; the simulator executes
  /// blocks sequentially, and the level schedule already guarantees
  /// child-before-parent ordering.
  void solve_batched(std::vector<double>& x) const;

  /// Interleaved many-RHS solve: X is column-major n x nrhs (ld = n, in
  /// the permuted space, one RHS per column), overwritten with the
  /// solutions. Each level's fronts run ONE gather, one irrTRSM over the
  /// s x nrhs separator blocks, one irrGEMM for the separator/update
  /// coupling and one scatter — instead of nrhs independent sweeps. The
  /// factor blocks are read once per front per sweep rather than once per
  /// RHS, and the launch count is per-level rather than per-RHS-per-level:
  /// the interleaved batch-solver access pattern ("Efficient Interleaved
  /// Batch Matrix Solvers for CUDA", PAPERS.md). Device path; per-column
  /// results agree with solve()/solve_batched() to rounding (blocked
  /// irrTRSM vs per-vector trsv accumulation order), not bitwise.
  void solve_many(double* x, int nrhs) const;
  /// Convenience overload: x.size() must equal n * nrhs.
  void solve_many(std::vector<double>& x, int nrhs) const;

  /// Solves (L U)^T x = b in the permuted space, overwriting x: the
  /// transpose of solve(), obtained by transposing every per-front
  /// elimination step and reversing the two sweeps. Host-side; needed by
  /// the Hager condition estimator.
  void solve_transpose(std::vector<double>& x) const;

  /// Simulated device seconds spent in the numeric factorization.
  double factor_seconds() const { return factor_seconds_; }
  long launch_count() const { return launches_; }
  long sync_count() const { return syncs_; }
  double sync_wait_seconds() const { return sync_wait_; }
  /// Peak bytes of device memory this factorization added on top of what
  /// was live when the constructor started (working fronts + factor store
  /// + update lists + assembly data + descriptors + workspaces), measured
  /// over the constructor's windowed high-water mark. Comparable to
  /// SymbolicAnalysis::predicted_peak_bytes of the effective memory mode.
  std::size_t peak_device_bytes() const { return peak_bytes_; }
  /// Bytes retained after factorization (the compact factors + pivots).
  std::size_t factor_bytes() const;
  /// True when every front factored without a zero pivot. Boosted (small
  /// but nonzero) pivots do not clear this flag — only exact zeros do, the
  /// LAPACK `info` convention.
  bool numerically_ok() const { return ok_; }

  /// Numerical diagnostics collected during factorization.
  const FactorReport& report() const { return report_; }

  /// The device this factorization ran on — lets callers time their own
  /// phases (simulated clock, tracer histograms) without threading the
  /// device reference alongside the factor.
  gpusim::Device& device() const { return dev_; }

  /// Raw compact factor storage (every front's L11\U11 | U12 | L21 blocks
  /// concatenated in postorder) — read-only, the bit-identity oracle the
  /// service tests and bench_service compare cached-refactor factors
  /// against their uncached twins with. FP32-policy fronts live in the
  /// single-precision store instead (factor_data_f32()).
  const double* factor_data() const { return factor_store_.data(); }
  std::size_t factor_elems() const { return factor_store_.size(); }
  const float* factor_data_f32() const { return factor_store_f_.data(); }
  std::size_t factor_elems_f32() const { return factor_store_f_.size(); }
  /// Precision the given level's fronts were factored (and stored) in.
  Precision level_prec(int lvl) const {
    return level_prec_[static_cast<std::size_t>(lvl)];
  }
  /// True when any level was factored in single precision — the signal the
  /// solver's FP64-refactor fallback keys on.
  bool has_fp32() const {
    for (Precision p : level_prec_)
      if (p == Precision::kF32) return true;
    return false;
  }

  /// Hager/Higham 1-norm condition estimate of the factored (prepared)
  /// matrix: ||A_prep||_1 * est(||A_prep^{-1}||_1), the latter from a few
  /// solve()/solve_transpose() pairs. Computed on first call, then cached.
  /// Returns +inf when a solve produces non-finite entries.
  double condest_1() const;

 private:
  gpusim::Device& dev_;
  const SymbolicAnalysis& sym_;
  gpusim::DeviceBuffer<double> factor_store_;
  gpusim::DeviceBuffer<float> factor_store_f_;  ///< FP32 fronts' blocks
  std::vector<Precision> level_prec_;  ///< per-level factor precision
  gpusim::DeviceBuffer<int> ipiv_storage_;
  gpusim::DeviceBuffer<int> upd_storage_;  ///< flattened update index lists
  std::vector<std::size_t> fstore_offset_;  ///< into factor_store_
  std::vector<std::size_t> ipiv_offset_;
  std::vector<std::size_t> upd_offset_;
  double factor_seconds_ = 0;
  long launches_ = 0;
  long syncs_ = 0;
  double sync_wait_ = 0;
  std::size_t peak_bytes_ = 0;
  bool ok_ = true;
  FactorReport report_;
  int n_ = 0;                      ///< order of the factored matrix
  double anorm1_ = 0;              ///< ||A_prep||_1, for condest_1()
  mutable double condest_ = -1.0;  ///< cached condest_1(), -1 = not yet

  // Compact factor blocks of front f: L11\U11 (s x s), then U12 (s x u,
  // ld s), then L21 (u x s, ld u). fstore_offset_[f] indexes into the
  // store matching the front's level precision (double or float).
  Precision front_prec(int f) const {
    return level_prec_[static_cast<std::size_t>(
        sym_.fronts[static_cast<std::size_t>(f)].level)];
  }
  const double* f11(int f) const {
    return factor_store_.data() + fstore_offset_[static_cast<std::size_t>(f)];
  }
  const double* u12(int f) const {
    const Front& fr = sym_.fronts[static_cast<std::size_t>(f)];
    return f11(f) + static_cast<std::size_t>(fr.s()) * fr.s();
  }
  const double* l21(int f) const {
    const Front& fr = sym_.fronts[static_cast<std::size_t>(f)];
    return u12(f) + static_cast<std::size_t>(fr.s()) * fr.u();
  }
  const float* f11f(int f) const {
    return factor_store_f_.data() +
           fstore_offset_[static_cast<std::size_t>(f)];
  }
  int* front_ipiv(int f) const {
    return ipiv_storage_.data() + ipiv_offset_[static_cast<std::size_t>(f)];
  }

  // Host-solve view of front f's factor blocks, always in double: FP64
  // fronts return direct store pointers (bit-identical to the
  // pre-precision path); FP32 fronts promote their contiguous block into
  // `scratch` first (valid until the next call with the same scratch).
  struct HostBlocks {
    const double* f11;
    const double* u12;
    const double* l21;
  };
  HostBlocks host_blocks(int f, std::vector<double>& scratch) const;
};

}  // namespace irrlu::sparse
