// SparseDirectSolver — the user-facing facade reproducing the paper's
// three-phase pipeline (§III-A):
//   1. reordering & symbolic analysis: MC64-style matching/scaling (static
//      pivoting), nested dissection, assembly-tree construction;
//   2. numeric factorization on the (simulated) device, with a choice of
//      schedules (irr-batched, naive loop, legacy small-batch,
//      right-looking);
//   3. solve by forward/backward substitution, with optional iterative
//      refinement (the paper reports machine precision after one step).
#pragma once

#include <memory>
#include <vector>

#include "gpusim/device.hpp"
#include "ordering/mc64.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/csr.hpp"
#include "sparse/multifrontal.hpp"
#include "sparse/symbolic.hpp"

namespace irrlu::sparse {

/// Fill-reducing ordering used in phase 1. Nested dissection builds the
/// assembly tree from its separator tree; the other orderings go through
/// the elimination-tree + fundamental-supernode path.
enum class OrderingMethod {
  kNestedDissection,
  kMinimumDegree,
  kRcm,
  kNatural,  ///< no reordering (for comparisons/tests)
};

struct SolverOptions {
  bool use_mc64 = true;  ///< matching + scaling before ordering
  OrderingMethod ordering = OrderingMethod::kNestedDissection;
  ordering::NDOptions nd;
  FactorOptions factor;
  int refine_steps = 1;  ///< iterative refinement sweeps in solve()
  /// Run the triangular solves as level-batched device kernels instead of
  /// the host-side reference sweep.
  bool solve_on_device = false;
};

/// Per-level workload statistics (the data behind the paper's Figure 13).
struct LevelStats {
  int level = 0;       ///< 0 = root
  int batch = 0;       ///< number of fronts
  int min_dim = 0, max_dim = 0;
  double avg_dim = 0;
};

class SparseDirectSolver {
 public:
  explicit SparseDirectSolver(const SolverOptions& opts = {}) : opts_(opts) {}

  /// Phase 1: analyzes A (any square CSR matrix). Must precede factor().
  void analyze(const CsrMatrix& a);

  /// Phase 2: numeric factorization on `dev`. Requires analyze().
  void factor(gpusim::Device& dev);

  /// Re-factors a matrix with the *same sparsity pattern* but new values,
  /// reusing the ordering and symbolic analysis — the amortization the
  /// paper's introduction highlights for sequences of systems. The
  /// MC64 scaling/permutation from analyze() is re-applied to the new
  /// values (the matching itself is not recomputed).
  void refactor(gpusim::Device& dev, const CsrMatrix& a_new);

  /// Phase 3: solves A x = b (original, unpermuted space). Requires
  /// factor(). Applies `refine_steps` of iterative refinement.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solves for several right-hand sides against the same factorization
  /// (the "multiple source terms" reuse the paper's introduction
  /// motivates).
  std::vector<std::vector<double>> solve(
      const std::vector<std::vector<double>>& bs) const;

  /// Componentwise relative residual of a solution.
  double residual(const std::vector<double>& x,
                  const std::vector<double>& b) const;

  const SymbolicAnalysis& symbolic() const { return sym_; }
  const MultifrontalFactor& numeric() const { return *factor_; }
  std::vector<LevelStats> level_stats() const;

 private:
  SolverOptions opts_;
  CsrMatrix a_;        ///< original matrix
  CsrMatrix a_prep_;   ///< scaled, column-permuted, symmetrically permuted
  ordering::Mc64Result mc64_;
  ordering::Ordering ord_;
  SymbolicAnalysis sym_;
  std::unique_ptr<MultifrontalFactor> factor_;
  bool analyzed_ = false;
};

}  // namespace irrlu::sparse
