// SparseDirectSolver — the user-facing facade reproducing the paper's
// three-phase pipeline (§III-A):
//   1. reordering & symbolic analysis: MC64-style matching/scaling (static
//      pivoting), nested dissection, assembly-tree construction;
//   2. numeric factorization on the (simulated) device, with a choice of
//      schedules (irr-batched, naive loop, legacy small-batch,
//      right-looking);
//   3. solve by forward/backward substitution, with optional iterative
//      refinement (the paper reports machine precision after one step).
#pragma once

#include <memory>
#include <vector>

#include "gpusim/device.hpp"
#include "ordering/mc64.hpp"
#include "ordering/nested_dissection.hpp"
#include "sparse/csr.hpp"
#include "sparse/multifrontal.hpp"
#include "sparse/symbolic.hpp"

namespace irrlu::sparse {

/// Fill-reducing ordering used in phase 1. Nested dissection builds the
/// assembly tree from its separator tree; the other orderings go through
/// the elimination-tree + fundamental-supernode path.
enum class OrderingMethod {
  kNestedDissection,
  kMinimumDegree,
  kRcm,
  kNatural,  ///< no reordering (for comparisons/tests)
};

struct SolverOptions {
  bool use_mc64 = true;  ///< matching + scaling before ordering
  OrderingMethod ordering = OrderingMethod::kNestedDissection;
  ordering::NDOptions nd;
  FactorOptions factor;
  /// Cap on adaptive iterative refinement sweeps in solve(): refinement
  /// stops early once the componentwise backward error reaches
  /// refine_tolerance, stagnates, or diverges (see SolveReport).
  int max_refine_steps = 10;
  /// Componentwise backward-error target of the refinement loop; roughly
  /// 5x double machine epsilon by default.
  double refine_tolerance = 1e-15;
  /// Run the triangular solves as level-batched device kernels instead of
  /// the host-side reference sweep.
  bool solve_on_device = false;
  /// Classic LU-IR safety net (DESIGN.md §14): when the factor precision
  /// policy produced FP32 fronts and a solve cannot reach
  /// refine_tolerance, transparently refactor the same prepared matrix in
  /// full FP64 and re-run the solve, keeping the better result per
  /// request. SolveReport::refactored_fp64 records the escalation. No
  /// effect on pure-FP64 factorizations.
  bool fp64_fallback = true;
  /// Pivot-growth threshold that escalates a mixed-precision
  /// factorization to FP64 right at factor()/refactor() time: growth of
  /// this magnitude wipes out FP32's ~2^-24 relative accuracy before
  /// refinement even starts. Growth is only measured when
  /// factor.pivot_tau > 0, so the check is inert otherwise.
  double growth_refactor_threshold = 1e8;
};

/// Outcome classification of solve_report().
enum class SolveStatus {
  kConverged,  ///< backward error <= refine_tolerance
  kDegraded,   ///< refinement stalled or hit the cap above the tolerance;
               ///< x is the best iterate seen and berr quantifies it
  kFailed,     ///< factorization unusable: the solution contains NaN/Inf
               ///< (x is whatever was produced — do not consume it)
};

const char* to_string(SolveStatus s);

/// Structured result of one solve: the solution plus everything needed to
/// decide whether to trust it. The componentwise (Oettli–Prager) backward
/// error is <= 1 for any finite x, so a non-finite `berr` certifies
/// garbage — that is exactly the kFailed criterion; no silent path.
struct SolveReport {
  std::vector<double> x;
  SolveStatus status = SolveStatus::kFailed;
  double berr = 0;          ///< componentwise backward error of x
  int refine_steps = 0;     ///< refinement sweeps actually applied
  /// True when the mixed-precision LU-IR fallback kicked in: the FP32
  /// factorization could not reach the tolerance and the solver
  /// refactored in FP64 for this solve (SolverOptions::fp64_fallback).
  bool refactored_fp64 = false;
  /// Backward error after the initial solve and after every refinement
  /// sweep (including diverged sweeps that were rolled back).
  std::vector<double> berr_history;

  bool ok() const { return status == SolveStatus::kConverged; }
};

/// Per-level workload statistics (the data behind the paper's Figure 13).
struct LevelStats {
  int level = 0;       ///< 0 = root
  int batch = 0;       ///< number of fronts
  int min_dim = 0, max_dim = 0;
  double avg_dim = 0;
};

class SparseDirectSolver {
 public:
  explicit SparseDirectSolver(const SolverOptions& opts = {}) : opts_(opts) {}

  /// Phase 1: analyzes A (any square CSR matrix). Must precede factor().
  void analyze(const CsrMatrix& a);

  /// Phase 2: numeric factorization on `dev`. Requires analyze().
  void factor(gpusim::Device& dev);

  /// Re-factors a matrix with the *same sparsity pattern* but new values,
  /// reusing the ordering and symbolic analysis — the amortization the
  /// paper's introduction highlights for sequences of systems. The
  /// MC64 scaling/permutation from analyze() is re-applied to the new
  /// values (the matching itself is not recomputed).
  void refactor(gpusim::Device& dev, const CsrMatrix& a_new);

  /// Phase 3: solves A x = b (original, unpermuted space) with adaptive
  /// iterative refinement, returning the solution plus its convergence
  /// diagnostics. Never throws on numerical failure — inspect
  /// SolveReport::status. Requires factor().
  SolveReport solve_report(const std::vector<double>& b) const;

  /// Thin legacy wrapper over solve_report(): returns just x, but fails
  /// fast (throws irrlu::Error) when the report status is kFailed — a
  /// numerically unusable factorization no longer returns silent garbage.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Batched counterpart of solve_report() for many right-hand sides
  /// against one factorization: the initial solves and every refinement
  /// sweep run as a single interleaved many-RHS triangular sweep on the
  /// device (MultifrontalFactor::solve_many) instead of nrhs sequential
  /// solves, so the factor blocks are read once per front per sweep and
  /// the launch count is per-level, not per-RHS-per-level. Each request
  /// keeps the full per-request quality contract: its own adaptive
  /// refinement control flow (tolerance, best-iterate rollback,
  /// stagnation/divergence stops), its own berr history, its own
  /// SolveStatus — requests leave the batch individually as they converge
  /// and only the still-active residuals are re-solved. Always takes the
  /// device path regardless of SolverOptions::solve_on_device; per-request
  /// results agree with solve_report() to rounding (blocked batched
  /// triangular solves vs per-vector substitution), statuses preserved.
  std::vector<SolveReport> solve_report_many(
      const std::vector<std::vector<double>>& bs) const;

  /// Solves for several right-hand sides against the same factorization
  /// (the "multiple source terms" reuse the paper's introduction
  /// motivates). Since PR 7 this routes through solve_report_many() — one
  /// batched interleaved sweep per refinement step — rather than looping
  /// scalar solve() calls; results can differ from the old loop in the
  /// last bits (solve path + accumulation order), never in status. Throws
  /// irrlu::Error naming the first failed request if any factorization
  /// proves numerically unusable; use solve_report_many() for the
  /// non-throwing structured results.
  std::vector<std::vector<double>> solve(
      const std::vector<std::vector<double>>& bs) const;

  /// Normwise relative residual of a solution:
  /// ||b - A x||_inf / (||A||_inf ||x||_inf + ||b||_inf).
  double residual(const std::vector<double>& x,
                  const std::vector<double>& b) const;

  /// Componentwise (Oettli–Prager) backward error
  /// max_i |b - A x|_i / (|A| |x| + |b|)_i — the quantity the refinement
  /// loop drives down and SolveReport::berr records.
  double residual_componentwise(const std::vector<double>& x,
                                const std::vector<double>& b) const;

  const SymbolicAnalysis& symbolic() const { return sym_; }
  const MultifrontalFactor& numeric() const { return *factor_; }
  /// Solver-owned interleaved-dispatch state (see FactorOptions): the
  /// kernel registry and the recorded resolution sequence live as long as
  /// the solver, so every same-pattern refactor() replays its dispatch
  /// (plan hits) instead of re-hashing — and a service session that owns
  /// this solver gets pattern-keyed dispatch reuse by construction.
  /// Cumulative across factor()/refactor() calls; per-factorization deltas
  /// are in numeric().report().
  const batch::KernelCache& dispatch_cache() const { return kcache_; }
  const batch::DispatchPlan& dispatch_plan() const { return plan_; }
  std::vector<LevelStats> level_stats() const;
  /// Whether the last analyze() actually applied MC64 scaling (false when
  /// disabled by options *or* when MC64 found the matrix structurally
  /// singular and the pipeline fell back to the unscaled path). User
  /// options are never mutated by that fallback.
  bool mc64_active() const { return mc64_active_; }

 private:
  /// opts_.factor augmented with the solver-owned dispatch cache/plan
  /// (unless the caller wired their own); arms the plan replay. Const
  /// because the LU-IR fallback re-factors from const solve paths — the
  /// dispatch state it touches is mutable solver-internal machinery.
  FactorOptions factor_options() const;
  /// Factor with the configured policy; escalates to FP64 when the
  /// mixed-precision factorization's measured pivot growth exceeds
  /// growth_refactor_threshold (see SolverOptions).
  void build_factor(gpusim::Device& dev);
  /// Replaces the current factorization with a full-FP64 one of the same
  /// prepared matrix (the LU-IR fallback step).
  void refactor_fp64() const;
  /// The pre-fallback solve bodies.
  SolveReport solve_report_impl(const std::vector<double>& b) const;
  std::vector<SolveReport> solve_report_many_impl(
      const std::vector<std::vector<double>>& bs) const;
  /// Feeds the per-policy refine-step histogram
  /// ("solve.refine_steps.<policy>") when a tracer is attached.
  void observe_refine_steps(int steps) const;

  const SolverOptions opts_;
  /// Dispatch registry/plan and the factorization are mutable: the LU-IR
  /// FP64 fallback rebuilds the factor inside const solve calls.
  mutable batch::KernelCache kcache_;  ///< interleaved-kernel registry
  mutable batch::DispatchPlan plan_;   ///< recorded dispatch of this pattern
  CsrMatrix a_;        ///< original matrix
  CsrMatrix a_prep_;   ///< scaled, column-permuted, symmetrically permuted
  ordering::Mc64Result mc64_;
  ordering::Ordering ord_;
  SymbolicAnalysis sym_;
  mutable std::unique_ptr<MultifrontalFactor> factor_;
  bool analyzed_ = false;
  bool mc64_active_ = false;  ///< per-analysis state, not a user option
};

}  // namespace irrlu::sparse
