// Symbolic multifrontal analysis (§III-A): turns the nested-dissection
// separator tree into an assembly tree of *fronts*. Each front owns the
// separator vertices it eliminates (the s x s pivot block F11) plus the
// update variables it touches in ancestor separators (the Schur complement
// dimension u). Fronts at the same tree level are independent and are
// factored as one irregular batch — the paper's core workload.
#pragma once

#include <cstdint>
#include <vector>

#include "ordering/nested_dissection.hpp"
#include "sparse/csr.hpp"
#include "sparse/precision.hpp"

namespace irrlu::sparse {

/// Working-front memory discipline of the numeric factorization (see
/// multifrontal.hpp). Lives here so the symbolic phase can predict the
/// peak footprint of either discipline before any numeric allocation.
enum class MemoryMode {
  kAllUpfront,
  kStackedLevels,  ///< batched engine only; others fall back to upfront
};

const char* to_string(MemoryMode m);

struct Front {
  int sep_begin = 0, sep_end = 0;  ///< eliminated (new-order) range
  std::vector<int> upd;  ///< update variables (new-order indices, sorted)
  std::vector<int> children;  ///< child front ids (any arity)
  int parent = -1;
  int level = 0;  ///< depth from the root (root = level 0, as in Fig. 13)

  int s() const { return sep_end - sep_begin; }
  int u() const { return static_cast<int>(upd.size()); }
  int dim() const { return s() + u(); }

  /// Positions of *this* front's update variables inside the parent's
  /// local index space [0, parent.dim) — the extend-add scatter map.
  std::vector<int> parent_map;
};

struct SymbolicAnalysis {
  std::vector<Front> fronts;  ///< postorder: children precede parents
  int root = -1;  ///< last tree root (-1 only for empty problems)
  /// levels[d] = front ids at depth d (levels[0] = the roots).
  std::vector<std::vector<int>> levels;

  double factor_flops = 0;       ///< dense-front operation count
  std::int64_t factor_nnz = 0;   ///< entries of L+U kept for the solve
  std::int64_t front_elems = 0;  ///< total front storage (elements)
  int max_front_dim = 0;
  std::int64_t pattern_nnz = 0;  ///< nnz of the analyzed matrix pattern

  /// Predicted peak device bytes of the numeric factorization, per level,
  /// from the tree alone (front store + factor store + update stacks +
  /// pivot arrays + assembly triples + batch descriptors + workspaces),
  /// assuming the batched engine's default single-stream configuration.
  /// Entry [lvl] is the footprint while level lvl is being factored;
  /// kAllUpfront is exact for every engine (the non-batched engines force
  /// that mode), kStackedLevels models the two-adjacent-levels window.
  std::vector<std::size_t> predicted_level_peak_bytes(MemoryMode mode) const;
  /// Maximum of predicted_level_peak_bytes over all levels — the global
  /// predicted peak, comparable to FactorReport::measured_peak_bytes.
  std::size_t predicted_peak_bytes(MemoryMode mode) const;
  /// Precision-aware variants: `level_prec[lvl]` is the element precision
  /// of level lvl's fronts (FP32 levels store and stage at half width).
  /// An empty vector means all-FP64; the all-FP64 result is identical to
  /// the two-argument overloads, byte for byte.
  std::vector<std::size_t> predicted_level_peak_bytes(
      MemoryMode mode, const std::vector<Precision>& level_prec) const;
  std::size_t predicted_peak_bytes(
      MemoryMode mode, const std::vector<Precision>& level_prec) const;

  /// Builds the analysis from the permuted matrix's *pattern* (the matrix
  /// must already be in nested-dissection order) and the separator tree.
  static SymbolicAnalysis build(const CsrMatrix& a_perm,
                                const ordering::Ordering& ord);

  /// Ordering-agnostic path: builds the assembly tree from the elimination
  /// tree of the (already permuted) pattern, grouping columns into
  /// fundamental supernodes. Works for minimum-degree, RCM, natural, or
  /// any other fill-reducing ordering — the route supernodal solvers take
  /// when no separator tree is available (§III-A's "rows and columns with
  /// equivalent sparsity structure are grouped together in so-called
  /// supernodes").
  static SymbolicAnalysis build_from_etree(const CsrMatrix& a_perm);
};

/// Liu's elimination-tree algorithm on the symmetrized pattern of the
/// permuted matrix: parent[j] = min { i > j : L(i, j) != 0 }, -1 for roots.
std::vector<int> elimination_tree(const CsrMatrix& a_perm);

}  // namespace irrlu::sparse
