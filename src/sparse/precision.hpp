// Mixed-precision factorization policy (DESIGN.md §14): the storage /
// arithmetic precision of each assembly-tree level, and the policy that
// selects it. Classic LU-IR (the paper's §VI outlook): factor in FP32 to
// halve the bytes every front moves and double the microkernel rate, then
// recover FP64 accuracy through the adaptive refinement loop; fronts near
// the root — where pivot growth compounds and the Schur updates aggregate
// the whole tree — may stay in FP64 under the adaptive policy.
//
// The level -> precision mapping is a pure function shared by the numeric
// driver and the symbolic peak-bytes predictor so the two can never
// disagree about which fronts are single precision.
#pragma once

#include <cstddef>
#include <cstring>

namespace irrlu::sparse {

/// Storage/arithmetic precision of one front (and so of one tree level:
/// every batch group the engines form is within a single level).
enum class Precision { kF64, kF32 };

/// Factorization-wide precision policy.
enum class PrecisionPolicy {
  kF64,       ///< everything double — the reference path, bit-identical
              ///< to the pre-mixed-precision solver
  kF32,       ///< every front single precision (uniform LU-IR)
  kAdaptive,  ///< FP64 on the root path (levels < adaptive_root_levels),
              ///< FP32 on the deeper levels where fronts are small and
              ///< numerous — the per-front-class split of ISSUE 10
};

const char* to_string(Precision p);
const char* to_string(PrecisionPolicy p);

/// Inverse of to_string(PrecisionPolicy) for CLI flags ("f64" | "f32" |
/// "adaptive"); returns false on unknown names, leaving `out` untouched.
inline bool policy_from_string(const char* s, PrecisionPolicy& out) {
  if (std::strcmp(s, "f64") == 0) out = PrecisionPolicy::kF64;
  else if (std::strcmp(s, "f32") == 0) out = PrecisionPolicy::kF32;
  else if (std::strcmp(s, "adaptive") == 0) out = PrecisionPolicy::kAdaptive;
  else return false;
  return true;
}

inline std::size_t elem_bytes(Precision p) {
  return p == Precision::kF32 ? sizeof(float) : sizeof(double);
}

/// The shared level -> precision oracle. `level` is the assembly-tree
/// level (0 = root); `adaptive_root_levels` is the number of root-side
/// levels kept in FP64 under the adaptive policy.
inline Precision level_precision(PrecisionPolicy policy, int level,
                                 int adaptive_root_levels) {
  switch (policy) {
    case PrecisionPolicy::kF64:
      return Precision::kF64;
    case PrecisionPolicy::kF32:
      return Precision::kF32;
    case PrecisionPolicy::kAdaptive:
      return level < adaptive_root_levels ? Precision::kF64
                                          : Precision::kF32;
  }
  return Precision::kF64;
}

}  // namespace irrlu::sparse
