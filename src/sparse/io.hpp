// Matrix Market (coordinate format) I/O so the solver can consume external
// matrices (SuiteSparse collection etc.) and export assembled systems.
// Supports `matrix coordinate real general|symmetric` and pattern files
// (pattern entries get value 1.0); symmetric inputs are expanded to full
// storage on read.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace irrlu::sparse {

/// Parses a Matrix Market stream. Throws irrlu::Error on malformed input
/// or unsupported qualifiers (complex matrices, non-square sizes).
CsrMatrix read_matrix_market(std::istream& in);
CsrMatrix read_matrix_market_file(const std::string& path);

/// Writes `a` as `matrix coordinate real general` with 1-based indices.
void write_matrix_market(std::ostream& out, const CsrMatrix& a);
void write_matrix_market_file(const std::string& path, const CsrMatrix& a);

}  // namespace irrlu::sparse
