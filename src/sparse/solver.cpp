#include "sparse/solver.hpp"

#include <algorithm>
#include <numeric>

#include "ordering/graph.hpp"

namespace irrlu::sparse {

void SparseDirectSolver::analyze(const CsrMatrix& a) {
  IRRLU_CHECK(a.rows() > 0);
  a_ = a;
  const int n = a.rows();

  CsrMatrix aq = a;
  if (opts_.use_mc64) {
    mc64_ = ordering::mc64_scaling(n, a.ptr().data(), a.ind().data(),
                                   a.val().data());
    if (mc64_.structurally_nonsingular) {
      aq = a.scaled(mc64_.dr, mc64_.dc).permute_columns(mc64_.col_of_row);
    } else {
      opts_.use_mc64 = false;  // fall back to the unscaled path
    }
  }
  if (!opts_.use_mc64) {
    mc64_.col_of_row.resize(static_cast<std::size_t>(n));
    std::iota(mc64_.col_of_row.begin(), mc64_.col_of_row.end(), 0);
    mc64_.dr.assign(static_cast<std::size_t>(n), 1.0);
    mc64_.dc.assign(static_cast<std::size_t>(n), 1.0);
  }

  const ordering::Graph g =
      ordering::Graph::from_pattern(n, aq.ptr().data(), aq.ind().data());
  if (opts_.ordering == OrderingMethod::kNestedDissection) {
    ord_ = ordering::nested_dissection(g, opts_.nd);
    a_prep_ = aq.permute_symmetric(ord_.perm);
    sym_ = SymbolicAnalysis::build(a_prep_, ord_);
  } else {
    // Elimination-tree route: any permutation works.
    ord_ = ordering::Ordering{};
    switch (opts_.ordering) {
      case OrderingMethod::kMinimumDegree:
        ord_.perm = ordering::minimum_degree(g);
        break;
      case OrderingMethod::kRcm:
        ord_.perm = ordering::rcm(g);
        break;
      default:
        ord_.perm.resize(static_cast<std::size_t>(n));
        std::iota(ord_.perm.begin(), ord_.perm.end(), 0);
        break;
    }
    ord_.iperm.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      ord_.iperm[static_cast<std::size_t>(
          ord_.perm[static_cast<std::size_t>(i)])] = i;
    a_prep_ = aq.permute_symmetric(ord_.perm);
    sym_ = SymbolicAnalysis::build_from_etree(a_prep_);
  }
  analyzed_ = true;
}

void SparseDirectSolver::factor(gpusim::Device& dev) {
  IRRLU_CHECK_MSG(analyzed_, "factor() requires analyze()");
  factor_ =
      std::make_unique<MultifrontalFactor>(dev, a_prep_, sym_, opts_.factor);
}

void SparseDirectSolver::refactor(gpusim::Device& dev,
                                  const CsrMatrix& a_new) {
  IRRLU_CHECK_MSG(analyzed_, "refactor() requires analyze()");
  IRRLU_CHECK_MSG(a_new.rows() == a_.rows() && a_new.nnz() == a_.nnz(),
                  "refactor() requires the same sparsity pattern");
  a_ = a_new;
  const CsrMatrix aq =
      a_new.scaled(mc64_.dr, mc64_.dc).permute_columns(mc64_.col_of_row);
  a_prep_ = aq.permute_symmetric(ord_.perm);
  factor_ =
      std::make_unique<MultifrontalFactor>(dev, a_prep_, sym_, opts_.factor);
}

std::vector<double> SparseDirectSolver::solve(
    const std::vector<double>& b) const {
  IRRLU_CHECK_MSG(factor_ != nullptr, "solve() requires factor()");
  const int n = a_.rows();
  IRRLU_CHECK(static_cast<int>(b.size()) == n);

  auto solve_once = [&](const std::vector<double>& rhs) {
    // w = P (Dr rhs); z = App^{-1} w; y = P^T z; x[q[j]] = dc[q[j]] y[j].
    std::vector<double> w(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int oi = ord_.perm[static_cast<std::size_t>(i)];
      w[static_cast<std::size_t>(i)] =
          mc64_.dr[static_cast<std::size_t>(oi)] *
          rhs[static_cast<std::size_t>(oi)];
    }
    if (opts_.solve_on_device)
      factor_->solve_batched(w);
    else
      factor_->solve(w);
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const int oj = ord_.perm[static_cast<std::size_t>(j)];  // pre-P index
      const int col = mc64_.col_of_row[static_cast<std::size_t>(oj)];
      x[static_cast<std::size_t>(col)] =
          mc64_.dc[static_cast<std::size_t>(col)] *
          w[static_cast<std::size_t>(j)];
    }
    return x;
  };

  std::vector<double> x = solve_once(b);
  for (int step = 0; step < opts_.refine_steps; ++step) {
    std::vector<double> r(static_cast<std::size_t>(n));
    a_.multiply(x.data(), r.data());
    for (int i = 0; i < n; ++i)
      r[static_cast<std::size_t>(i)] =
          b[static_cast<std::size_t>(i)] - r[static_cast<std::size_t>(i)];
    const std::vector<double> dx = solve_once(r);
    for (int i = 0; i < n; ++i)
      x[static_cast<std::size_t>(i)] += dx[static_cast<std::size_t>(i)];
  }
  return x;
}

std::vector<std::vector<double>> SparseDirectSolver::solve(
    const std::vector<std::vector<double>>& bs) const {
  std::vector<std::vector<double>> xs;
  xs.reserve(bs.size());
  for (const auto& b : bs) xs.push_back(solve(b));
  return xs;
}

double SparseDirectSolver::residual(const std::vector<double>& x,
                                    const std::vector<double>& b) const {
  return a_.residual(x.data(), b.data());
}

std::vector<LevelStats> SparseDirectSolver::level_stats() const {
  std::vector<LevelStats> out;
  for (std::size_t lvl = 0; lvl < sym_.levels.size(); ++lvl) {
    const auto& ids = sym_.levels[lvl];
    if (ids.empty()) continue;
    LevelStats st;
    st.level = static_cast<int>(lvl);
    st.batch = static_cast<int>(ids.size());
    st.min_dim = sym_.fronts[static_cast<std::size_t>(ids[0])].dim();
    double sum = 0;
    for (int id : ids) {
      const int d = sym_.fronts[static_cast<std::size_t>(id)].dim();
      st.min_dim = std::min(st.min_dim, d);
      st.max_dim = std::max(st.max_dim, d);
      sum += d;
    }
    st.avg_dim = sum / st.batch;
    out.push_back(st);
  }
  return out;
}

}  // namespace irrlu::sparse
