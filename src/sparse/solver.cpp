#include "sparse/solver.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "ordering/graph.hpp"

namespace irrlu::sparse {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kDegraded: return "degraded";
    case SolveStatus::kFailed: return "failed";
  }
  return "?";
}

void SparseDirectSolver::analyze(const CsrMatrix& a) {
  IRRLU_CHECK(a.rows() > 0);
  a_ = a;
  const int n = a.rows();

  // The structural-singularity fallback is per-factorization state: it
  // must NOT be written back into opts_, or a later analyze() on a
  // healthy matrix through the same solver object would silently skip
  // MC64 scaling.
  mc64_active_ = false;
  CsrMatrix aq = a;
  if (opts_.use_mc64) {
    mc64_ = ordering::mc64_scaling(n, a.ptr().data(), a.ind().data(),
                                   a.val().data());
    if (mc64_.structurally_nonsingular) {
      aq = a.scaled(mc64_.dr, mc64_.dc).permute_columns(mc64_.col_of_row);
      mc64_active_ = true;
    }
  }
  if (!mc64_active_) {
    mc64_.col_of_row.resize(static_cast<std::size_t>(n));
    std::iota(mc64_.col_of_row.begin(), mc64_.col_of_row.end(), 0);
    mc64_.dr.assign(static_cast<std::size_t>(n), 1.0);
    mc64_.dc.assign(static_cast<std::size_t>(n), 1.0);
  }

  const ordering::Graph g =
      ordering::Graph::from_pattern(n, aq.ptr().data(), aq.ind().data());
  if (opts_.ordering == OrderingMethod::kNestedDissection) {
    ord_ = ordering::nested_dissection(g, opts_.nd);
    a_prep_ = aq.permute_symmetric(ord_.perm);
    sym_ = SymbolicAnalysis::build(a_prep_, ord_);
  } else {
    // Elimination-tree route: any permutation works.
    ord_ = ordering::Ordering{};
    switch (opts_.ordering) {
      case OrderingMethod::kMinimumDegree:
        ord_.perm = ordering::minimum_degree(g);
        break;
      case OrderingMethod::kRcm:
        ord_.perm = ordering::rcm(g);
        break;
      default:
        ord_.perm.resize(static_cast<std::size_t>(n));
        std::iota(ord_.perm.begin(), ord_.perm.end(), 0);
        break;
    }
    ord_.iperm.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      ord_.iperm[static_cast<std::size_t>(
          ord_.perm[static_cast<std::size_t>(i)])] = i;
    a_prep_ = aq.permute_symmetric(ord_.perm);
    sym_ = SymbolicAnalysis::build_from_etree(a_prep_);
  }
  analyzed_ = true;
}

void SparseDirectSolver::factor(gpusim::Device& dev) {
  IRRLU_CHECK_MSG(analyzed_, "factor() requires analyze()");
  factor_ =
      std::make_unique<MultifrontalFactor>(dev, a_prep_, sym_, opts_.factor);
}

void SparseDirectSolver::refactor(gpusim::Device& dev,
                                  const CsrMatrix& a_new) {
  IRRLU_CHECK_MSG(analyzed_, "refactor() requires analyze()");
  IRRLU_CHECK_MSG(a_new.rows() == a_.rows() && a_new.nnz() == a_.nnz(),
                  "refactor() requires the same sparsity pattern");
  a_ = a_new;
  const CsrMatrix aq =
      a_new.scaled(mc64_.dr, mc64_.dc).permute_columns(mc64_.col_of_row);
  a_prep_ = aq.permute_symmetric(ord_.perm);
  factor_ =
      std::make_unique<MultifrontalFactor>(dev, a_prep_, sym_, opts_.factor);
}

SolveReport SparseDirectSolver::solve_report(
    const std::vector<double>& b) const {
  IRRLU_CHECK_MSG(factor_ != nullptr, "solve_report() requires factor()");
  const int n = a_.rows();
  IRRLU_CHECK(static_cast<int>(b.size()) == n);

  auto solve_once = [&](const std::vector<double>& rhs) {
    // w = P (Dr rhs); z = App^{-1} w; y = P^T z; x[q[j]] = dc[q[j]] y[j].
    std::vector<double> w(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int oi = ord_.perm[static_cast<std::size_t>(i)];
      w[static_cast<std::size_t>(i)] =
          mc64_.dr[static_cast<std::size_t>(oi)] *
          rhs[static_cast<std::size_t>(oi)];
    }
    if (opts_.solve_on_device)
      factor_->solve_batched(w);
    else
      factor_->solve(w);
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const int oj = ord_.perm[static_cast<std::size_t>(j)];  // pre-P index
      const int col = mc64_.col_of_row[static_cast<std::size_t>(oj)];
      x[static_cast<std::size_t>(col)] =
          mc64_.dc[static_cast<std::size_t>(col)] *
          w[static_cast<std::size_t>(j)];
    }
    return x;
  };

  SolveReport rep;
  std::vector<double> x = solve_once(b);
  double berr = a_.componentwise_residual(x.data(), b.data());
  rep.berr_history.push_back(berr);
  if (!std::isfinite(berr)) {
    // The factorization produced NaN/Inf (e.g. an un-boosted zero pivot):
    // refinement cannot repair that — report a clean structured failure.
    rep.x = std::move(x);
    rep.berr = berr;
    rep.status = SolveStatus::kFailed;
    return rep;
  }

  // Adaptive refinement: iterate while the componentwise backward error is
  // above tolerance, keeping the best iterate seen. Stop on the cap, on
  // divergence (berr did not decrease — roll back to the best iterate), or
  // on stagnation (decrease by less than 2x, Higham's rule: further sweeps
  // would only dither around the attainable accuracy).
  std::vector<double> best = x;
  double best_berr = berr;
  const double tol = std::max(opts_.refine_tolerance, 0.0);
  std::vector<double> r(static_cast<std::size_t>(n));
  int steps = 0;
  while (berr > tol && steps < opts_.max_refine_steps) {
    a_.multiply(x.data(), r.data());
    for (int i = 0; i < n; ++i)
      r[static_cast<std::size_t>(i)] =
          b[static_cast<std::size_t>(i)] - r[static_cast<std::size_t>(i)];
    const std::vector<double> dx = solve_once(r);
    for (int i = 0; i < n; ++i)
      x[static_cast<std::size_t>(i)] += dx[static_cast<std::size_t>(i)];
    ++steps;
    const double next = a_.componentwise_residual(x.data(), b.data());
    rep.berr_history.push_back(next);
    if (!std::isfinite(next) || next >= berr) break;  // diverged
    const bool stagnated = next > 0.5 * berr;
    berr = next;
    if (next < best_berr) {
      best_berr = next;
      best = x;
    }
    if (stagnated) break;
  }

  rep.refine_steps = steps;
  rep.x = std::move(best);
  rep.berr = best_berr;
  rep.status = best_berr <= tol ? SolveStatus::kConverged
                                : SolveStatus::kDegraded;
  return rep;
}

std::vector<double> SparseDirectSolver::solve(
    const std::vector<double>& b) const {
  SolveReport rep = solve_report(b);
  IRRLU_CHECK_MSG(
      rep.status != SolveStatus::kFailed,
      "solve(): numerically unusable factorization (solution contains "
      "NaN/Inf; numerically_ok()="
          << (factor_ != nullptr && factor_->numerically_ok())
          << ") — use solve_report() for a non-throwing structured result");
  return std::move(rep.x);
}

std::vector<std::vector<double>> SparseDirectSolver::solve(
    const std::vector<std::vector<double>>& bs) const {
  std::vector<std::vector<double>> xs;
  xs.reserve(bs.size());
  for (const auto& b : bs) xs.push_back(solve(b));
  return xs;
}

double SparseDirectSolver::residual(const std::vector<double>& x,
                                    const std::vector<double>& b) const {
  return a_.residual(x.data(), b.data());
}

double SparseDirectSolver::residual_componentwise(
    const std::vector<double>& x, const std::vector<double>& b) const {
  return a_.componentwise_residual(x.data(), b.data());
}

std::vector<LevelStats> SparseDirectSolver::level_stats() const {
  std::vector<LevelStats> out;
  for (std::size_t lvl = 0; lvl < sym_.levels.size(); ++lvl) {
    const auto& ids = sym_.levels[lvl];
    if (ids.empty()) continue;
    LevelStats st;
    st.level = static_cast<int>(lvl);
    st.batch = static_cast<int>(ids.size());
    st.min_dim = sym_.fronts[static_cast<std::size_t>(ids[0])].dim();
    double sum = 0;
    for (int id : ids) {
      const int d = sym_.fronts[static_cast<std::size_t>(id)].dim();
      st.min_dim = std::min(st.min_dim, d);
      st.max_dim = std::max(st.max_dim, d);
      sum += d;
    }
    st.avg_dim = sum / st.batch;
    out.push_back(st);
  }
  return out;
}

}  // namespace irrlu::sparse
