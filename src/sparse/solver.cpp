#include "sparse/solver.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "gpusim/device.hpp"
#include "ordering/graph.hpp"
#include "trace/trace.hpp"

namespace irrlu::sparse {

const char* to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kDegraded: return "degraded";
    case SolveStatus::kFailed: return "failed";
  }
  return "?";
}

void SparseDirectSolver::analyze(const CsrMatrix& a) {
  IRRLU_CHECK(a.rows() > 0);
  a_ = a;
  const int n = a.rows();

  // The structural-singularity fallback is per-factorization state: it
  // must NOT be written back into opts_, or a later analyze() on a
  // healthy matrix through the same solver object would silently skip
  // MC64 scaling.
  mc64_active_ = false;
  CsrMatrix aq = a;
  if (opts_.use_mc64) {
    mc64_ = ordering::mc64_scaling(n, a.ptr().data(), a.ind().data(),
                                   a.val().data());
    if (mc64_.structurally_nonsingular) {
      aq = a.scaled(mc64_.dr, mc64_.dc).permute_columns(mc64_.col_of_row);
      mc64_active_ = true;
    }
  }
  if (!mc64_active_) {
    mc64_.col_of_row.resize(static_cast<std::size_t>(n));
    std::iota(mc64_.col_of_row.begin(), mc64_.col_of_row.end(), 0);
    mc64_.dr.assign(static_cast<std::size_t>(n), 1.0);
    mc64_.dc.assign(static_cast<std::size_t>(n), 1.0);
  }

  const ordering::Graph g =
      ordering::Graph::from_pattern(n, aq.ptr().data(), aq.ind().data());
  if (opts_.ordering == OrderingMethod::kNestedDissection) {
    ord_ = ordering::nested_dissection(g, opts_.nd);
    a_prep_ = aq.permute_symmetric(ord_.perm);
    sym_ = SymbolicAnalysis::build(a_prep_, ord_);
  } else {
    // Elimination-tree route: any permutation works.
    ord_ = ordering::Ordering{};
    switch (opts_.ordering) {
      case OrderingMethod::kMinimumDegree:
        ord_.perm = ordering::minimum_degree(g);
        break;
      case OrderingMethod::kRcm:
        ord_.perm = ordering::rcm(g);
        break;
      default:
        ord_.perm.resize(static_cast<std::size_t>(n));
        std::iota(ord_.perm.begin(), ord_.perm.end(), 0);
        break;
    }
    ord_.iperm.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
      ord_.iperm[static_cast<std::size_t>(
          ord_.perm[static_cast<std::size_t>(i)])] = i;
    a_prep_ = aq.permute_symmetric(ord_.perm);
    sym_ = SymbolicAnalysis::build_from_etree(a_prep_);
  }
  // A new pattern resolves a new dispatch sequence; stale entries would
  // only produce one truncate-on-mismatch per analyze anyway, but clearing
  // keeps the plan's size an honest per-pattern measure.
  plan_.clear();
  analyzed_ = true;
}

FactorOptions SparseDirectSolver::factor_options() const {
  FactorOptions fo = opts_.factor;
  if (fo.dispatch_cache == nullptr) {
    fo.dispatch_cache = &kcache_;
    if (fo.dispatch_plan == nullptr) {
      fo.dispatch_plan = &plan_;
      plan_.begin_replay();
    }
  }
  return fo;
}

void SparseDirectSolver::build_factor(gpusim::Device& dev) {
  factor_ = std::make_unique<MultifrontalFactor>(dev, a_prep_, sym_,
                                                 factor_options());
  // Factor-time escalation: pivot growth of this magnitude already wiped
  // out FP32's relative accuracy, so refinement from the FP32 factors
  // would fail anyway — refactor in FP64 up front instead of paying a
  // doomed solve first. Growth is only measured when pivot_tau > 0.
  if (opts_.fp64_fallback && factor_->has_fp32() &&
      factor_->report().pivot_growth > opts_.growth_refactor_threshold)
    refactor_fp64();
}

void SparseDirectSolver::refactor_fp64() const {
  FactorOptions fo = factor_options();
  fo.precision = PrecisionPolicy::kF64;
  gpusim::Device& dev = factor_->device();
  factor_ = std::make_unique<MultifrontalFactor>(dev, a_prep_, sym_, fo);
}

void SparseDirectSolver::factor(gpusim::Device& dev) {
  IRRLU_CHECK_MSG(analyzed_, "factor() requires analyze()");
  build_factor(dev);
}

void SparseDirectSolver::refactor(gpusim::Device& dev,
                                  const CsrMatrix& a_new) {
  IRRLU_CHECK_MSG(analyzed_, "refactor() requires analyze()");
  IRRLU_CHECK_MSG(a_new.rows() == a_.rows() && a_new.nnz() == a_.nnz(),
                  "refactor() requires the same sparsity pattern");
  a_ = a_new;
  const CsrMatrix aq =
      a_new.scaled(mc64_.dr, mc64_.dc).permute_columns(mc64_.col_of_row);
  a_prep_ = aq.permute_symmetric(ord_.perm);
  build_factor(dev);
}

void SparseDirectSolver::observe_refine_steps(int steps) const {
  trace::Tracer* tr = factor_->device().tracer();
  if (tr == nullptr) return;
  tr->observe(std::string("solve.refine_steps.") +
                  to_string(factor_->report().precision_policy),
              static_cast<double>(steps));
}

namespace {

/// Fallback arbitration: is `a` a strictly better outcome than `b`?
/// Status rank first (converged > degraded > failed), then backward error
/// (NaN berr only occurs under kFailed, which the rank already handles).
bool report_better(const SolveReport& a, const SolveReport& b) {
  auto rank = [](SolveStatus s) {
    switch (s) {
      case SolveStatus::kConverged: return 2;
      case SolveStatus::kDegraded: return 1;
      case SolveStatus::kFailed: return 0;
    }
    return 0;
  };
  if (rank(a.status) != rank(b.status)) return rank(a.status) > rank(b.status);
  return a.berr < b.berr;
}

}  // namespace

SolveReport SparseDirectSolver::solve_report(
    const std::vector<double>& b) const {
  SolveReport rep = solve_report_impl(b);
  observe_refine_steps(rep.refine_steps);
  if (rep.status == SolveStatus::kConverged || !opts_.fp64_fallback ||
      !factor_->has_fp32())
    return rep;
  // Classic LU-IR fallback: the FP32 factorization could not deliver the
  // tolerance — refactor the same prepared matrix in full FP64 and re-run,
  // keeping whichever result is better (the FP64 one, barring a genuinely
  // unstable matrix that fails either way).
  refactor_fp64();
  SolveReport rep64 = solve_report_impl(b);
  observe_refine_steps(rep64.refine_steps);
  if (report_better(rep64, rep)) rep = std::move(rep64);
  rep.refactored_fp64 = true;
  return rep;
}

SolveReport SparseDirectSolver::solve_report_impl(
    const std::vector<double>& b) const {
  IRRLU_CHECK_MSG(factor_ != nullptr, "solve_report() requires factor()");
  const int n = a_.rows();
  IRRLU_CHECK(static_cast<int>(b.size()) == n);

  auto solve_once = [&](const std::vector<double>& rhs) {
    // w = P (Dr rhs); z = App^{-1} w; y = P^T z; x[q[j]] = dc[q[j]] y[j].
    std::vector<double> w(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const int oi = ord_.perm[static_cast<std::size_t>(i)];
      w[static_cast<std::size_t>(i)] =
          mc64_.dr[static_cast<std::size_t>(oi)] *
          rhs[static_cast<std::size_t>(oi)];
    }
    if (opts_.solve_on_device)
      factor_->solve_batched(w);
    else
      factor_->solve(w);
    std::vector<double> x(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
      const int oj = ord_.perm[static_cast<std::size_t>(j)];  // pre-P index
      const int col = mc64_.col_of_row[static_cast<std::size_t>(oj)];
      x[static_cast<std::size_t>(col)] =
          mc64_.dc[static_cast<std::size_t>(col)] *
          w[static_cast<std::size_t>(j)];
    }
    return x;
  };

  // Phase latency feed for the tracer's histogram registry (simulated
  // clock; the host-side solve path advances no simulated time and
  // lands in the underflow bucket).
  trace::Tracer* tr = factor_->device().tracer();
  const double t_solve0 = tr != nullptr ? factor_->device().host_time() : 0;

  SolveReport rep;
  std::vector<double> x = solve_once(b);
  const double t_refine0 = tr != nullptr ? factor_->device().host_time() : 0;
  if (tr != nullptr) tr->observe("solve.initial_s", t_refine0 - t_solve0);
  double berr = a_.componentwise_residual(x.data(), b.data());
  rep.berr_history.push_back(berr);
  if (!std::isfinite(berr)) {
    // The factorization produced NaN/Inf (e.g. an un-boosted zero pivot):
    // refinement cannot repair that — report a clean structured failure.
    rep.x = std::move(x);
    rep.berr = berr;
    rep.status = SolveStatus::kFailed;
    return rep;
  }

  // Adaptive refinement: iterate while the componentwise backward error is
  // above tolerance, keeping the best iterate seen. Stop on the cap, on
  // divergence (berr did not decrease — roll back to the best iterate), or
  // on stagnation (decrease by less than 2x, Higham's rule: further sweeps
  // would only dither around the attainable accuracy).
  std::vector<double> best = x;
  double best_berr = berr;
  const double tol = std::max(opts_.refine_tolerance, 0.0);
  std::vector<double> r(static_cast<std::size_t>(n));
  int steps = 0;
  while (berr > tol && steps < opts_.max_refine_steps) {
    a_.multiply(x.data(), r.data());
    for (int i = 0; i < n; ++i)
      r[static_cast<std::size_t>(i)] =
          b[static_cast<std::size_t>(i)] - r[static_cast<std::size_t>(i)];
    const std::vector<double> dx = solve_once(r);
    for (int i = 0; i < n; ++i)
      x[static_cast<std::size_t>(i)] += dx[static_cast<std::size_t>(i)];
    ++steps;
    const double next = a_.componentwise_residual(x.data(), b.data());
    rep.berr_history.push_back(next);
    if (!std::isfinite(next) || next >= berr) break;  // diverged
    const bool stagnated = next > 0.5 * berr;
    berr = next;
    if (next < best_berr) {
      best_berr = next;
      best = x;
    }
    if (stagnated) break;
  }

  if (tr != nullptr && steps > 0)
    tr->observe("solve.refine_s", factor_->device().host_time() - t_refine0);

  rep.refine_steps = steps;
  rep.x = std::move(best);
  rep.berr = best_berr;
  rep.status = best_berr <= tol ? SolveStatus::kConverged
                                : SolveStatus::kDegraded;
  return rep;
}

std::vector<double> SparseDirectSolver::solve(
    const std::vector<double>& b) const {
  SolveReport rep = solve_report(b);
  IRRLU_CHECK_MSG(
      rep.status != SolveStatus::kFailed,
      "solve(): numerically unusable factorization (solution contains "
      "NaN/Inf; numerically_ok()="
          << (factor_ != nullptr && factor_->numerically_ok())
          << ") — use solve_report() for a non-throwing structured result");
  return std::move(rep.x);
}

std::vector<SolveReport> SparseDirectSolver::solve_report_many(
    const std::vector<std::vector<double>>& bs) const {
  std::vector<SolveReport> reps = solve_report_many_impl(bs);
  for (const SolveReport& r : reps) observe_refine_steps(r.refine_steps);
  const bool any_short = std::any_of(
      reps.begin(), reps.end(),
      [](const SolveReport& r) { return r.status != SolveStatus::kConverged; });
  if (!any_short || !opts_.fp64_fallback || !factor_->has_fp32()) return reps;
  // One FP64 refactor covers the whole batch; every request is re-solved
  // against the FP64 factors (the converged ones too — the sweep is
  // batched, so re-running them costs one extra lane each, and the
  // per-request arbitration below keeps whichever result is better).
  refactor_fp64();
  std::vector<SolveReport> reps64 = solve_report_many_impl(bs);
  for (std::size_t k = 0; k < reps.size(); ++k) {
    observe_refine_steps(reps64[k].refine_steps);
    if (report_better(reps64[k], reps[k])) reps[k] = std::move(reps64[k]);
    reps[k].refactored_fp64 = true;
  }
  return reps;
}

std::vector<SolveReport> SparseDirectSolver::solve_report_many_impl(
    const std::vector<std::vector<double>>& bs) const {
  IRRLU_CHECK_MSG(factor_ != nullptr, "solve_report_many() requires factor()");
  const int n = a_.rows();
  const int nrhs = static_cast<int>(bs.size());
  std::vector<SolveReport> reps(bs.size());
  if (nrhs == 0) return reps;
  for (const auto& b : bs) IRRLU_CHECK(static_cast<int>(b.size()) == n);
  const auto nz = static_cast<std::size_t>(n);

  // Same transforms as solve_report()'s solve_once, applied column-wise:
  // w = P (Dr rhs); batched sweep; x[q[j]] = dc[q[j]] w[j].
  auto scale_in = [&](const double* rhs, double* w) {
    for (int i = 0; i < n; ++i) {
      const int oi = ord_.perm[static_cast<std::size_t>(i)];
      w[i] = mc64_.dr[static_cast<std::size_t>(oi)] * rhs[oi];
    }
  };
  auto scale_out = [&](const double* w, double* x) {
    for (int j = 0; j < n; ++j) {
      const int oj = ord_.perm[static_cast<std::size_t>(j)];
      const int col = mc64_.col_of_row[static_cast<std::size_t>(oj)];
      x[col] = mc64_.dc[static_cast<std::size_t>(col)] * w[j];
    }
  };

  // Initial solves for every request: one interleaved sweep.
  std::vector<double> W(nz * static_cast<std::size_t>(nrhs));
  for (int j = 0; j < nrhs; ++j)
    scale_in(bs[static_cast<std::size_t>(j)].data(),
             W.data() + static_cast<std::size_t>(j) * nz);
  factor_->solve_many(W.data(), nrhs);

  // Requests still refining; they leave the batch individually under
  // exactly the per-request rules of solve_report() (cap, divergence
  // rollback, Higham's stagnation rule).
  struct Active {
    int req;
    std::vector<double> x, best;
    double berr, best_berr;
    int steps = 0;
  };
  std::vector<Active> act;
  const double tol = std::max(opts_.refine_tolerance, 0.0);
  for (int j = 0; j < nrhs; ++j) {
    const auto ju = static_cast<std::size_t>(j);
    std::vector<double> x(nz);
    scale_out(W.data() + ju * nz, x.data());
    const double berr = a_.componentwise_residual(x.data(), bs[ju].data());
    SolveReport& rep = reps[ju];
    rep.berr_history.push_back(berr);
    if (!std::isfinite(berr)) {
      rep.x = std::move(x);
      rep.berr = berr;
      rep.status = SolveStatus::kFailed;
      continue;
    }
    if (berr <= tol || opts_.max_refine_steps <= 0) {
      rep.x = std::move(x);
      rep.berr = berr;
      rep.status =
          berr <= tol ? SolveStatus::kConverged : SolveStatus::kDegraded;
      continue;
    }
    Active a;
    a.req = j;
    a.best = x;
    a.x = std::move(x);
    a.berr = a.best_berr = berr;
    act.push_back(std::move(a));
  }

  std::vector<double> r(nz);
  while (!act.empty()) {
    const int na = static_cast<int>(act.size());
    W.resize(nz * static_cast<std::size_t>(na));
    for (int k = 0; k < na; ++k) {
      const Active& a = act[static_cast<std::size_t>(k)];
      const auto& b = bs[static_cast<std::size_t>(a.req)];
      a_.multiply(a.x.data(), r.data());
      for (int i = 0; i < n; ++i)
        r[static_cast<std::size_t>(i)] =
            b[static_cast<std::size_t>(i)] - r[static_cast<std::size_t>(i)];
      scale_in(r.data(), W.data() + static_cast<std::size_t>(k) * nz);
    }
    factor_->solve_many(W.data(), na);

    std::vector<Active> next;
    for (int k = 0; k < na; ++k) {
      Active& a = act[static_cast<std::size_t>(k)];
      std::vector<double> dx(nz);
      scale_out(W.data() + static_cast<std::size_t>(k) * nz, dx.data());
      for (std::size_t i = 0; i < nz; ++i) a.x[i] += dx[i];
      ++a.steps;
      const double nb = a_.componentwise_residual(
          a.x.data(), bs[static_cast<std::size_t>(a.req)].data());
      SolveReport& rep = reps[static_cast<std::size_t>(a.req)];
      rep.berr_history.push_back(nb);
      bool stop = false;
      if (!std::isfinite(nb) || nb >= a.berr) {
        stop = true;  // diverged — roll back to the best iterate
      } else {
        const bool stagnated = nb > 0.5 * a.berr;
        a.berr = nb;
        if (nb < a.best_berr) {
          a.best_berr = nb;
          a.best = a.x;
        }
        if (stagnated || a.berr <= tol || a.steps >= opts_.max_refine_steps)
          stop = true;
      }
      if (stop) {
        rep.refine_steps = a.steps;
        rep.x = std::move(a.best);
        rep.berr = a.best_berr;
        rep.status = a.best_berr <= tol ? SolveStatus::kConverged
                                        : SolveStatus::kDegraded;
      } else {
        next.push_back(std::move(a));
      }
    }
    act = std::move(next);
  }
  return reps;
}

std::vector<std::vector<double>> SparseDirectSolver::solve(
    const std::vector<std::vector<double>>& bs) const {
  std::vector<SolveReport> reps = solve_report_many(bs);
  std::vector<std::vector<double>> xs;
  xs.reserve(reps.size());
  for (std::size_t k = 0; k < reps.size(); ++k) {
    IRRLU_CHECK_MSG(
        reps[k].status != SolveStatus::kFailed,
        "solve(bs): request " << k << " of " << reps.size()
                              << " is numerically unusable (solution contains "
                                 "NaN/Inf) — use solve_report_many() for "
                                 "non-throwing structured results");
    xs.push_back(std::move(reps[k].x));
  }
  return xs;
}

double SparseDirectSolver::residual(const std::vector<double>& x,
                                    const std::vector<double>& b) const {
  return a_.residual(x.data(), b.data());
}

double SparseDirectSolver::residual_componentwise(
    const std::vector<double>& x, const std::vector<double>& b) const {
  return a_.componentwise_residual(x.data(), b.data());
}

std::vector<LevelStats> SparseDirectSolver::level_stats() const {
  std::vector<LevelStats> out;
  for (std::size_t lvl = 0; lvl < sym_.levels.size(); ++lvl) {
    const auto& ids = sym_.levels[lvl];
    if (ids.empty()) continue;
    LevelStats st;
    st.level = static_cast<int>(lvl);
    st.batch = static_cast<int>(ids.size());
    st.min_dim = sym_.fronts[static_cast<std::size_t>(ids[0])].dim();
    double sum = 0;
    for (int id : ids) {
      const int d = sym_.fronts[static_cast<std::size_t>(id)].dim();
      st.min_dim = std::min(st.min_dim, d);
      st.max_dim = std::max(st.max_dim, d);
      sum += d;
    }
    st.avg_dim = sum / st.batch;
    out.push_back(st);
  }
  return out;
}

}  // namespace irrlu::sparse
