#include "sparse/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <tuple>
#include <vector>

#include "common/error.hpp"

namespace irrlu::sparse {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  IRRLU_CHECK_MSG(std::getline(in, line), "empty Matrix Market stream");
  std::istringstream header(line);
  std::string banner, object, format, field, symmetry;
  header >> banner >> object >> format >> field >> symmetry;
  IRRLU_CHECK_MSG(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  IRRLU_CHECK_MSG(lower(object) == "matrix" && lower(format) == "coordinate",
                  "only 'matrix coordinate' files are supported");
  const std::string f = lower(field);
  IRRLU_CHECK_MSG(f == "real" || f == "integer" || f == "pattern",
                  "unsupported field type '" << field << "'");
  const std::string sym = lower(symmetry);
  IRRLU_CHECK_MSG(sym == "general" || sym == "symmetric" ||
                      sym == "skew-symmetric",
                  "unsupported symmetry '" << symmetry << "'");

  // Skip comments.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream dims(line);
  long rows = 0, cols = 0, nnz = 0;
  dims >> rows >> cols >> nnz;
  IRRLU_CHECK_MSG(rows > 0 && rows == cols,
                  "only square matrices are supported (got "
                      << rows << "x" << cols << ")");

  std::vector<std::tuple<int, int, double>> t;
  t.reserve(static_cast<std::size_t>(nnz));
  for (long e = 0; e < nnz; ++e) {
    long i = 0, j = 0;
    double v = 1.0;
    IRRLU_CHECK_MSG(in >> i >> j, "truncated entry list at entry " << e);
    if (f != "pattern") IRRLU_CHECK_MSG(static_cast<bool>(in >> v),
                                        "missing value at entry " << e);
    IRRLU_CHECK_MSG(i >= 1 && i <= rows && j >= 1 && j <= cols,
                    "index out of range at entry " << e);
    t.emplace_back(static_cast<int>(i - 1), static_cast<int>(j - 1), v);
    if (sym != "general" && i != j)
      t.emplace_back(static_cast<int>(j - 1), static_cast<int>(i - 1),
                     sym == "symmetric" ? v : -v);
  }
  return CsrMatrix::from_triplets(static_cast<int>(rows), t);
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  IRRLU_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const CsrMatrix& a) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by irrlu\n";
  out << a.rows() << " " << a.rows() << " " << a.nnz() << "\n";
  out.precision(17);
  for (int i = 0; i < a.rows(); ++i)
    for (int k = a.ptr()[static_cast<std::size_t>(i)];
         k < a.ptr()[static_cast<std::size_t>(i) + 1]; ++k)
      out << i + 1 << " " << a.ind()[static_cast<std::size_t>(k)] + 1 << " "
          << a.val()[static_cast<std::size_t>(k)] << "\n";
}

void write_matrix_market_file(const std::string& path, const CsrMatrix& a) {
  std::ofstream out(path);
  IRRLU_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  write_matrix_market(out, a);
}

}  // namespace irrlu::sparse
