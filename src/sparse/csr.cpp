#include "sparse/csr.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <tuple>

namespace irrlu::sparse {

CsrMatrix CsrMatrix::from_triplets(
    int n, const std::vector<std::tuple<int, int, double>>& triplets) {
  std::vector<std::map<int, double>> rows(static_cast<std::size_t>(n));
  for (const auto& [i, j, v] : triplets) {
    IRRLU_CHECK(i >= 0 && i < n && j >= 0 && j < n);
    rows[static_cast<std::size_t>(i)][j] += v;
  }
  std::vector<int> ptr = {0};
  std::vector<int> ind;
  std::vector<double> val;
  for (int i = 0; i < n; ++i) {
    for (const auto& [j, v] : rows[static_cast<std::size_t>(i)]) {
      ind.push_back(j);
      val.push_back(v);
    }
    ptr.push_back(static_cast<int>(ind.size()));
  }
  return CsrMatrix(n, std::move(ptr), std::move(ind), std::move(val));
}

void CsrMatrix::multiply(const double* x, double* y) const {
  for (int i = 0; i < n_; ++i) {
    double acc = 0;
    for (int k = ptr_[static_cast<std::size_t>(i)];
         k < ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      acc += val_[static_cast<std::size_t>(k)] *
             x[ind_[static_cast<std::size_t>(k)]];
    y[i] = acc;
  }
}

void CsrMatrix::multiply_transpose(const double* x, double* y) const {
  for (int j = 0; j < n_; ++j) y[j] = 0;
  for (int i = 0; i < n_; ++i)
    for (int k = ptr_[static_cast<std::size_t>(i)];
         k < ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      y[ind_[static_cast<std::size_t>(k)]] +=
          val_[static_cast<std::size_t>(k)] * x[i];
}

double CsrMatrix::norm_inf() const {
  double best = 0;
  for (int i = 0; i < n_; ++i) {
    double s = 0;
    for (int k = ptr_[static_cast<std::size_t>(i)];
         k < ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      s += std::abs(val_[static_cast<std::size_t>(k)]);
    best = std::max(best, s);
  }
  return best;
}

double CsrMatrix::residual(const double* x, const double* b) const {
  double rmax = 0, xmax = 0, bmax = 0;
  for (int i = 0; i < n_; ++i) {
    double acc = 0;
    for (int k = ptr_[static_cast<std::size_t>(i)];
         k < ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      acc += val_[static_cast<std::size_t>(k)] *
             x[ind_[static_cast<std::size_t>(k)]];
    rmax = std::max(rmax, std::abs(b[i] - acc));
    xmax = std::max(xmax, std::abs(x[i]));
    bmax = std::max(bmax, std::abs(b[i]));
  }
  const double denom = norm_inf() * xmax + bmax;
  return denom > 0 ? rmax / denom : rmax;
}

double CsrMatrix::componentwise_residual(const double* x,
                                         const double* b) const {
  double berr = 0;
  for (int i = 0; i < n_; ++i) {
    double acc = 0, absacc = 0;
    for (int k = ptr_[static_cast<std::size_t>(i)];
         k < ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const double axk = val_[static_cast<std::size_t>(k)] *
                         x[ind_[static_cast<std::size_t>(k)]];
      acc += axk;
      absacc += std::abs(axk);
    }
    const double ri = std::abs(b[i] - acc);
    const double di = absacc + std::abs(b[i]);
    const double e = di > 0 ? ri / di : ri;
    // std::max would silently drop a NaN row (NaN comparisons are false);
    // a non-finite x MUST surface as a non-finite backward error.
    if (!std::isfinite(e)) return std::numeric_limits<double>::quiet_NaN();
    berr = std::max(berr, e);
  }
  return berr;
}

double CsrMatrix::norm_1() const {
  std::vector<double> colsum(static_cast<std::size_t>(n_), 0.0);
  for (std::size_t k = 0; k < ind_.size(); ++k)
    colsum[static_cast<std::size_t>(ind_[k])] += std::abs(val_[k]);
  double best = 0;
  for (double s : colsum) best = std::max(best, s);
  return best;
}

CsrMatrix CsrMatrix::scaled(const std::vector<double>& dr,
                            const std::vector<double>& dc) const {
  CsrMatrix out = *this;
  for (int i = 0; i < n_; ++i)
    for (int k = ptr_[static_cast<std::size_t>(i)];
         k < ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      out.val_[static_cast<std::size_t>(k)] =
          dr[static_cast<std::size_t>(i)] * val_[static_cast<std::size_t>(k)] *
          dc[static_cast<std::size_t>(ind_[static_cast<std::size_t>(k)])];
  return out;
}

CsrMatrix CsrMatrix::permute_columns(const std::vector<int>& q) const {
  // result(:, j) = A(:, q[j])  <=>  result(i, q_inv[j0]) = A(i, j0).
  std::vector<int> qinv(static_cast<std::size_t>(n_));
  for (int j = 0; j < n_; ++j)
    qinv[static_cast<std::size_t>(q[static_cast<std::size_t>(j)])] = j;
  CsrMatrix out = *this;
  for (int i = 0; i < n_; ++i) {
    const int lo = ptr_[static_cast<std::size_t>(i)];
    const int hi = ptr_[static_cast<std::size_t>(i) + 1];
    std::vector<std::pair<int, double>> row;
    row.reserve(static_cast<std::size_t>(hi - lo));
    for (int k = lo; k < hi; ++k)
      row.emplace_back(
          qinv[static_cast<std::size_t>(ind_[static_cast<std::size_t>(k)])],
          val_[static_cast<std::size_t>(k)]);
    std::sort(row.begin(), row.end());
    for (int k = lo; k < hi; ++k) {
      out.ind_[static_cast<std::size_t>(k)] =
          row[static_cast<std::size_t>(k - lo)].first;
      out.val_[static_cast<std::size_t>(k)] =
          row[static_cast<std::size_t>(k - lo)].second;
    }
  }
  return out;
}

CsrMatrix CsrMatrix::permute_symmetric(const std::vector<int>& perm) const {
  std::vector<int> iperm(static_cast<std::size_t>(n_));
  for (int i = 0; i < n_; ++i)
    iperm[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])] = i;
  std::vector<int> ptr(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<int> ind(ind_.size());
  std::vector<double> val(val_.size());
  for (int i = 0; i < n_; ++i) {
    const int oi = perm[static_cast<std::size_t>(i)];
    ptr[static_cast<std::size_t>(i) + 1] =
        ptr[static_cast<std::size_t>(i)] +
        (ptr_[static_cast<std::size_t>(oi) + 1] -
         ptr_[static_cast<std::size_t>(oi)]);
  }
  for (int i = 0; i < n_; ++i) {
    const int oi = perm[static_cast<std::size_t>(i)];
    std::vector<std::pair<int, double>> row;
    for (int k = ptr_[static_cast<std::size_t>(oi)];
         k < ptr_[static_cast<std::size_t>(oi) + 1]; ++k)
      row.emplace_back(
          iperm[static_cast<std::size_t>(ind_[static_cast<std::size_t>(k)])],
          val_[static_cast<std::size_t>(k)]);
    std::sort(row.begin(), row.end());
    int k0 = ptr[static_cast<std::size_t>(i)];
    for (const auto& [j, v] : row) {
      ind[static_cast<std::size_t>(k0)] = j;
      val[static_cast<std::size_t>(k0)] = v;
      ++k0;
    }
  }
  return CsrMatrix(n_, std::move(ptr), std::move(ind), std::move(val));
}

double CsrMatrix::at(int i, int j) const {
  const int lo = ptr_[static_cast<std::size_t>(i)];
  const int hi = ptr_[static_cast<std::size_t>(i) + 1];
  const auto it = std::lower_bound(ind_.begin() + lo, ind_.begin() + hi, j);
  if (it != ind_.begin() + hi && *it == j)
    return val_[static_cast<std::size_t>(it - ind_.begin())];
  return 0.0;
}

namespace {

/// FNV-1a over a span of 32-bit words (hashing the ints themselves, not
/// their byte layout, keeps the result independent of endianness).
std::uint64_t fnv1a_words(std::uint64_t h, const int* words, std::size_t n) {
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(words[i]));
    h *= kPrime;
  }
  return h;
}

}  // namespace

std::uint64_t CsrMatrix::pattern_hash() const {
  constexpr std::uint64_t kBasis = 0xcbf29ce484222325ull;
  std::uint64_t h = fnv1a_words(kBasis, &n_, 1);
  h = fnv1a_words(h, ptr_.data(), ptr_.size());
  h = fnv1a_words(h, ind_.data(), ind_.size());
  return h;
}

bool CsrMatrix::same_pattern(const CsrMatrix& other) const {
  return n_ == other.n_ && ptr_ == other.ptr_ && ind_ == other.ind_;
}

CsrMatrix laplacian2d(int nx, int ny, double shift) {
  std::vector<std::tuple<int, int, double>> t;
  auto id = [&](int x, int y) { return y * nx + x; };
  for (int y = 0; y < ny; ++y)
    for (int x = 0; x < nx; ++x) {
      const int v = id(x, y);
      t.emplace_back(v, v, 4.0 + shift);
      if (x > 0) t.emplace_back(v, id(x - 1, y), -1.0);
      if (x + 1 < nx) t.emplace_back(v, id(x + 1, y), -1.0);
      if (y > 0) t.emplace_back(v, id(x, y - 1), -1.0);
      if (y + 1 < ny) t.emplace_back(v, id(x, y + 1), -1.0);
    }
  return CsrMatrix::from_triplets(nx * ny, t);
}

CsrMatrix laplacian3d(int nx, int ny, int nz, double shift) {
  std::vector<std::tuple<int, int, double>> t;
  auto id = [&](int x, int y, int z) { return (z * ny + y) * nx + x; };
  for (int z = 0; z < nz; ++z)
    for (int y = 0; y < ny; ++y)
      for (int x = 0; x < nx; ++x) {
        const int v = id(x, y, z);
        t.emplace_back(v, v, 6.0 + shift);
        if (x > 0) t.emplace_back(v, id(x - 1, y, z), -1.0);
        if (x + 1 < nx) t.emplace_back(v, id(x + 1, y, z), -1.0);
        if (y > 0) t.emplace_back(v, id(x, y - 1, z), -1.0);
        if (y + 1 < ny) t.emplace_back(v, id(x, y + 1, z), -1.0);
        if (z > 0) t.emplace_back(v, id(x, y, z - 1), -1.0);
        if (z + 1 < nz) t.emplace_back(v, id(x, y, z + 1), -1.0);
      }
  return CsrMatrix::from_triplets(nx * ny * nz, t);
}

}  // namespace irrlu::sparse
