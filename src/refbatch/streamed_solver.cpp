// The streamed per-matrix solver models the *structure* of a vendor dense
// solver (cuSOLVER/rocSOLVER getrf): per panel, one optimized panel kernel
// (internally blocked, so its memory traffic stays proportional to the
// panel size), one pivot-application kernel, then triangular solve and a
// tiled multi-block trailing GEMM. Large matrices therefore spread across
// the whole device — which is why this baseline eventually overtakes
// irrLU-GPU for huge matrices (paper Fig. 11) while drowning in dispatch
// overhead for thousands of small ones (Fig. 10).
#include "refbatch/streamed_solver.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "lapack/blas.hpp"
#include "lapack/flops.hpp"
#include "lapack/lapack.hpp"

namespace irrlu::refbatch {

namespace {

/// Single-matrix blocked LU as a chain of launches on one stream.
template <typename T>
void ref_getrf_single(gpusim::Device& dev, gpusim::Stream& stream, int m,
                      int n, T* const* dA, const int* ldda,
                      const int* mv, const int* nv, const int* kv,
                      int* const* ipiv, int* info, int nb) {
  const int kmin = std::min(m, n);
  for (int j = 0; j < kmin; j += nb) {
    const int jb = std::min(nb, kmin - j);

    // Panel: one kernel, one block. Staged in shared memory when it fits;
    // otherwise factored in place with internally-blocked traffic (a
    // vendor panel re-reads the panel a small constant number of times).
    const std::size_t smem_need =
        batch::irr_getf2_smem_bytes<T>(m - j, jb);
    const bool staged = smem_need <= dev.model().shared_mem_per_block;
    const gpusim::LaunchConfig pcfg{"ref_getf2", 1,
                                    staged ? smem_need : std::size_t{0}};
    dev.launch(stream, pcfg, [=](gpusim::BlockCtx& ctx) {
      const int lda = ldda[0];
      T* A = dA[0] + static_cast<std::ptrdiff_t>(j) * lda + j;
      const int pm = m - j;
      int pinfo;
      if (staged) {
        // Factor in place: getf2 is ld-independent, so this matches the
        // former stage/factor/copy-back sequence bit for bit while the
        // LaunchConfig keeps charging the staged footprint.
        int* spiv = ctx.smem_alloc<int>(static_cast<std::size_t>(jb));
        pinfo = la::getf2(pm, jb, A, lda, spiv);
        for (int c = 0; c < jb; ++c) ipiv[0][j + c] = j + spiv[c];
        ctx.record(la::getrf_flops(pm, jb),
                   2.0 * pm * jb * sizeof(T));
      } else {
        int spiv[128];
        pinfo = la::getrf(pm, jb, A, lda, spiv, 16);
        for (int c = 0; c < jb; ++c) ipiv[0][j + c] = j + spiv[c];
        // Internally blocked (vendor recursive panel): ~3 panel passes.
        ctx.record(la::getrf_flops(pm, jb), 3.0 * pm * jb * sizeof(T));
      }
      if (pinfo != 0 && info[0] == 0) info[0] = j + pinfo;
    });

    // Row interchanges outside the panel.
    dev.launch(stream, {"ref_laswp", 1, 0}, [=](gpusim::BlockCtx& ctx) {
      const int lda = ldda[0];
      T* A = dA[0];
      double swaps = 0;
      for (int r = j; r < j + jb; ++r) {
        const int p = ipiv[0][r];
        if (p == r) continue;
        la::swap(j, A + r, lda, A + p, lda);
        if (j + jb < n)
          la::swap(n - j - jb,
                   A + static_cast<std::ptrdiff_t>(j + jb) * lda + r, lda,
                   A + static_cast<std::ptrdiff_t>(j + jb) * lda + p, lda);
        swaps += 1;
      }
      // A vendor LASWP moves each touched row once through a fused
      // permutation kernel: traffic comparable to irrLASWP's rehearsal
      // method (half the raw strided cache waste).
      ctx.record(0.0, swaps * 4.0 * (n - jb) * (64.0 / sizeof(T)) / 2.0 *
                          sizeof(T));
    });

    if (j + jb < n) {
      batch::irr_trsm<T>(dev, stream, la::Side::Left, la::Uplo::Lower,
                         la::Trans::No, la::Diag::Unit, jb, n - j - jb, T(1),
                         const_cast<T const* const*>(dA), ldda, j, j,
                         const_cast<T* const*>(dA), ldda, j, j + jb, kv, nv,
                         1);
      if (j + jb < m) {
        batch::irr_gemm<T>(dev, stream, la::Trans::No, la::Trans::No,
                           m - j - jb, n - j - jb, jb, T(-1),
                           const_cast<T const* const*>(dA), ldda, j + jb, j,
                           const_cast<T const* const*>(dA), ldda, j, j + jb,
                           T(1), const_cast<T* const*>(dA), ldda, j + jb,
                           j + jb, mv, nv, kv, 1);
      }
    }
  }
}

}  // namespace

template <typename T>
void streamed_getrf(gpusim::Device& dev, const std::vector<int>& m_sizes,
                    const std::vector<int>& n_sizes, T* const* dA_array,
                    const int* ldda, int* const* ipiv_array, int* info_array,
                    const StreamedOptions& opts) {
  const int bs = static_cast<int>(m_sizes.size());
  IRRLU_CHECK(n_sizes.size() == m_sizes.size());
  IRRLU_CHECK(opts.num_streams >= 1);
  IRRLU_CHECK_MSG(opts.nb <= 128, "panel width above ref kernel capacity");

  // Host-side setup: per-matrix dimension arrays on the device (a
  // per-matrix solver needs sizes on the host anyway).
  auto mv = dev.alloc<int>(static_cast<std::size_t>(bs));
  auto nv = dev.alloc<int>(static_cast<std::size_t>(bs));
  auto kv = dev.alloc<int>(static_cast<std::size_t>(bs));
  for (int i = 0; i < bs; ++i) {
    mv[i] = m_sizes[static_cast<std::size_t>(i)];
    nv[i] = n_sizes[static_cast<std::size_t>(i)];
    kv[i] = std::min(mv[i], nv[i]);
  }

  for (int i = 0; i < bs; ++i) {
    auto& s = dev.stream(i % opts.num_streams);
    ref_getrf_single<T>(dev, s, mv[i], nv[i], dA_array + i, ldda + i,
                        mv.data() + i, nv.data() + i, kv.data() + i,
                        ipiv_array + i, info_array + i, opts.nb);
  }
  dev.synchronize_all();
}

#define IRRLU_INSTANTIATE_STREAMED(T)                                      \
  template void streamed_getrf<T>(gpusim::Device&, const std::vector<int>&, \
                                  const std::vector<int>&, T* const*,       \
                                  const int*, int* const*, int*,            \
                                  const StreamedOptions&);

IRRLU_INSTANTIATE_STREAMED(float)
IRRLU_INSTANTIATE_STREAMED(double)

#undef IRRLU_INSTANTIATE_STREAMED

}  // namespace irrlu::refbatch
