// Baseline: per-matrix factorizations dispatched into parallel streams —
// the cuSOLVER/rocSOLVER-in-16-streams reference of the paper's Figures 10
// and 11. Each matrix gets its own sequence of kernel launches (sized for
// that matrix alone), round-robined over a configurable number of streams.
// For large batches of small matrices the host-serialized dispatch drowns
// the device in launch overhead; for a handful of huge matrices the
// per-matrix kernels use the whole device and win — both effects the paper
// measures.
#pragma once

#include <vector>

#include "gpusim/device.hpp"
#include "irrblas/irr_kernels.hpp"

namespace irrlu::refbatch {

struct StreamedOptions {
  int num_streams = 16;  ///< the paper's default
  int nb = 32;           ///< panel width of the per-matrix solver
};

/// Factors every matrix of the batch independently: matrix i runs as a
/// chain of launches on stream (i mod num_streams). `m_sizes`/`n_sizes`
/// are host-side copies of the dimensions (a per-matrix solver needs them
/// on the host — exactly the asymmetry the irregular-batch interface
/// removes). Device arrays follow the usual conventions.
template <typename T>
void streamed_getrf(gpusim::Device& dev, const std::vector<int>& m_sizes,
                    const std::vector<int>& n_sizes, T* const* dA_array,
                    const int* ldda, int* const* ipiv_array, int* info_array,
                    const StreamedOptions& opts = {});

}  // namespace irrlu::refbatch
